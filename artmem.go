// Package artmem is the public face of the ArtMem reproduction: an
// RL-enabled tiered-memory manager (ISCA 2025) together with the
// simulated two-tier machine, seven baseline tiering policies, the
// paper's workloads, and an experiment harness.
//
// Most users need three things:
//
//   - NewPolicy builds the ArtMem agent (or an ablation/variant of it);
//   - Baselines lists the comparison systems from the paper's Table 1;
//   - Simulate runs any registered workload under any policy at a chosen
//     DRAM:PM ratio and returns the measured Result.
//
// Example:
//
//	res, err := artmem.Simulate("XSBench", artmem.NewPolicy(artmem.Config{}),
//		artmem.Options{Ratio: artmem.Ratio{Fast: 1, Slow: 4}})
//	if err != nil { ... }
//	fmt.Println(res.ExecNs, res.DRAMRatio)
//
// For long-lived online use (background sampling/migration goroutines,
// the paper's §4.4 architecture) see NewSystem. The deeper layers —
// machine model, PEBS sampling, LRU lists, EMA histograms, tabular RL,
// the individual baselines, workload generators, trace recording and the
// per-figure experiments — live in the internal packages documented in
// the README.
package artmem

import (
	"fmt"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/policies"
	"artmem/internal/workloads"
)

// Re-exported core types. See the originating packages for full
// documentation.
type (
	// Config parameterizes the ArtMem agent (hyperparameters, action
	// ladders, ablation toggles). The zero value is the paper's tuned
	// configuration.
	Config = core.Config
	// ArtMem is the reinforcement-learning tiering policy.
	ArtMem = core.ArtMem
	// System is the online runtime with background sampling/migration
	// goroutines.
	System = core.System
	// SystemConfig parameterizes a System.
	SystemConfig = core.SystemConfig
	// Policy is the tiering-policy contract all systems implement.
	Policy = policies.Policy
	// Ratio is a DRAM:PM capacity split such as {Fast: 1, Slow: 4}.
	Ratio = harness.Ratio
	// Result is the outcome of one simulated run.
	Result = harness.Result
	// Profile scales workloads relative to the paper's footprints.
	Profile = workloads.Profile
	// Workload generates a memory-access trace.
	Workload = workloads.Workload
)

// NewPolicy returns a fresh ArtMem agent.
func NewPolicy(cfg Config) *ArtMem { return core.New(cfg) }

// NewSystem returns an online ArtMem runtime; call Start/Stop around use.
func NewSystem(cfg SystemConfig) *System { return core.NewSystem(cfg) }

// Baselines returns constructors for the paper's comparison systems
// (Static, MEMTIS, AutoTiering, TPP, AutoNUMA, Multi-clock, Nimble,
// Tiering-0.8).
func Baselines() []policies.Factory { return policies.Baselines() }

// BaselineByName returns one baseline policy by name.
func BaselineByName(name string) (Policy, error) {
	f, err := policies.ByName(name)
	if err != nil {
		return nil, err
	}
	return f.New(), nil
}

// Workloads returns the names of every registered workload: the paper's
// eight applications, the synthetic patterns S1–S4, and the mixed
// combinations.
func Workloads() []string {
	var names []string
	for _, s := range workloads.Apps {
		names = append(names, s.Name)
	}
	for _, s := range workloads.SyntheticSpecs() {
		names = append(names, s.Name)
	}
	for _, s := range workloads.MixedSpecs() {
		names = append(names, s.Name)
	}
	return names
}

// Options configures a Simulate call. The zero value uses the default
// scale profile and a 1:1 ratio.
type Options struct {
	// Ratio splits the footprint across the tiers (default 1:1).
	Ratio Ratio
	// Profile scales the workload (default workloads.DefaultProfile).
	Profile Profile
	// CollectSeries captures migration/ratio time series in the Result.
	CollectSeries bool
}

// Simulate runs the named workload under pol and returns the measured
// result. It returns an error only for an unknown workload name; the
// simulation itself is infallible.
func Simulate(workload string, pol Policy, opts Options) (Result, error) {
	spec, err := workloads.ByName(workload)
	if err != nil {
		return Result{}, fmt.Errorf("artmem: %w", err)
	}
	prof := opts.Profile
	if prof.Div == 0 {
		prof = workloads.DefaultProfile()
	}
	ratio := opts.Ratio
	if ratio.Fast == 0 && ratio.Slow == 0 {
		ratio = Ratio{Fast: 1, Slow: 1}
	}
	return harness.Run(spec.New(prof), pol, harness.Config{
		PageSize:      prof.PageSize(),
		Ratio:         ratio,
		CollectSeries: opts.CollectSeries,
	}), nil
}
