# Tier-1 verify (fast, what CI gates on): build + test.
# `make check` is the full gate: vet + build + test + race detector.

.PHONY: all build test check race vet

all: build

build:
	go build ./...

test: build
	go test ./...

vet:
	go vet ./...

race:
	go test -race -short ./...

check:
	sh scripts/check.sh
