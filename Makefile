# Tier-1 verify (fast, what CI gates on): build + test.
# `make check` is the full gate: vet + build + test + race detector.

SHA := $(shell git rev-parse --short=12 HEAD 2>/dev/null || echo dev)

.PHONY: all build test check race vet docs-check bench-baseline benchdiff loadtest

all: build

build:
	go build ./...

test: build
	go test ./...

vet:
	go vet ./...

race:
	go test -race -short ./...

check:
	sh scripts/check.sh

# Serving smoke: artload drives an in-process loopback server end to end
# — 8 concurrent clients, fixed seed, small batches so the default queue
# bound never sheds. artload exits non-zero if any batch is lost (sent
# but never acked or rejected) or any client fails, so this pins the
# zero-loss serving contract. Runs with 1-in-64 span sampling so the
# smoke also exercises the latency-attribution path; the run ledger
# (one JSON object incl. the span-derived stage breakdown) and the
# /spans + /slo drains land in loadtest_results/ (uploaded as CI
# artifacts).
loadtest:
	mkdir -p loadtest_results
	go run ./cmd/artload -loopback -clients 8 -accesses 20000 -batch 256 -div 4096 -seed 1 \
		-spans 64 -json \
		-spans-out loadtest_results/spans.jsonl \
		-slo-out loadtest_results/slo.json \
		> loadtest_results/ledger.json
	@echo "loadtest ledger:" && cat loadtest_results/ledger.json

# Documentation gate: every package and exported identifier needs a doc
# comment, and every relative link in *.md must resolve (cmd/docscheck).
docs-check:
	go run ./cmd/docscheck

# Regression watch: the simulation is deterministic, so the quick bench
# suite produces byte-stable tables and any drift is a real behaviour
# change. `bench-baseline` blesses the current tree's numbers;
# `benchdiff` reruns the suite and fails on >10% movement (or a vanished
# benchmark) against the committed baseline. Run bench-baseline and
# commit the result whenever a change intentionally moves the numbers.
bench-baseline:
	go run ./cmd/artbench -all -quick -parallel 4 -outdir bench_results
	cp bench_results/BENCH_$(SHA).json bench_results/BENCH_baseline.json
	@echo "baseline blessed: bench_results/BENCH_baseline.json (from $(SHA))"

benchdiff:
	go run ./cmd/artbench -all -quick -parallel 4 -outdir bench_results
	go run ./cmd/artdiff bench -threshold 0.10 \
		bench_results/BENCH_baseline.json bench_results/BENCH_$(SHA).json
