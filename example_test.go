package artmem_test

import (
	"fmt"

	"artmem"
	"artmem/internal/workloads"
)

// ExampleSimulate runs the paper's S3 pattern under ArtMem at a 1:2
// DRAM:PM split (miniature scale) and reports whether adaptive
// migration engaged.
func ExampleSimulate() {
	prof := workloads.QuickProfile()
	res, err := artmem.Simulate("S3", artmem.NewPolicy(artmem.Config{}),
		artmem.Options{
			Ratio:   artmem.Ratio{Fast: 1, Slow: 2},
			Profile: prof,
		})
	if err != nil {
		panic(err)
	}
	fmt.Println("ran:", res.Accesses > 0)
	fmt.Println("migrated pages:", res.Migrations > 0)
	fmt.Println("ratio in range:", res.DRAMRatio > 0 && res.DRAMRatio < 1)
	// Output:
	// ran: true
	// migrated pages: true
	// ratio in range: true
}

// ExampleBaselineByName compares ArtMem against a named baseline on the
// same workload and configuration.
func ExampleBaselineByName() {
	prof := workloads.QuickProfile()
	opts := artmem.Options{Ratio: artmem.Ratio{Fast: 1, Slow: 2}, Profile: prof}
	static, err := artmem.BaselineByName("Static")
	if err != nil {
		panic(err)
	}
	rs, _ := artmem.Simulate("S3", static, opts)
	ra, _ := artmem.Simulate("S3", artmem.NewPolicy(artmem.Config{}), opts)
	fmt.Println("ArtMem faster than Static:", ra.ExecNs < rs.ExecNs)
	// Output:
	// ArtMem faster than Static: true
}
