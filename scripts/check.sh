#!/bin/sh
# check.sh — the repo's full verification gate.
#
# Runs, in order:
#   1. go vet          static analysis over every package
#   2. go build        tier-1 compile check
#   3. go test         tier-1 test suite, with -shuffle=on so any
#                      test-order dependence (shared-state fixtures,
#                      package-level caches) fails loudly; the seed is
#                      printed on failure for replay via -shuffle=N
#   4. go test -race   the suite under the race detector, which
#                      exercises the online System's sampling/migration/
#                      watchdog goroutines and the chaos suite for data
#                      races. Runs with -short: the heavy experiment-
#                      shape tests in internal/exp take >10min under the
#                      ~15x race slowdown and have no concurrency of
#                      their own; the plain pass above covers them.
#   5. make loadtest   serving smoke: artload drives an in-process
#                      loopback server with 8 concurrent clients and a
#                      fixed seed, failing on any lost batch — the
#                      zero-loss serving contract, end to end over a
#                      real TCP socket.
#   6. exp tiers       N-tier chain smoke: the tier-crossover experiment
#                      at quick scale through the sched cache, so the
#                      chain machine + per-boundary agents + shadow-copy
#                      accounting run end to end on every gate.
#
# Usage: scripts/check.sh  (or: make check)
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "== go test -race -short ./..."
go test -race -short ./...

echo "== make loadtest (serving smoke)"
make loadtest

echo "== exp tiers smoke (quick)"
go run ./cmd/artbench -exp tiers -quick -parallel 4 -outdir bench_results

echo "check: all green"
