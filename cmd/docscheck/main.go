// Command docscheck is the documentation gate behind `make docs-check`.
// It fails (exit 1) when any Go package lacks a package comment, when
// any exported top-level identifier — function, method on an exported
// type, type, constant, or variable — lacks a doc comment, or when a
// Markdown file contains a relative link to a path that does not
// exist. Findings print one per line as file:line: message, so editors
// and CI logs can jump straight to them.
//
// The walk skips test files (Example functions double as documentation
// there), generated output directories, and absolute/external links.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var findings []string
	findings = append(findings, checkGo(root)...)
	findings = append(findings, checkMarkdown(root)...)
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("docscheck: OK")
}

// skipDir reports whether a directory never holds checked sources:
// VCS internals and generated benchmark output.
func skipDir(name string) bool {
	return strings.HasPrefix(name, ".") && name != "." ||
		name == "bench_results" || name == "testdata"
}

// ---- Go doc comments -------------------------------------------------------

// checkGo parses every package under root and reports missing package
// comments and undocumented exported identifiers.
func checkGo(root string) []string {
	var dirs []string
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})

	var findings []string
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			findings = append(findings, fmt.Sprintf("%s: parse: %v", dir, err))
			continue
		}
		for _, pkg := range pkgs {
			findings = append(findings, checkPackage(fset, dir, pkg)...)
		}
	}
	return findings
}

// checkPackage reports doc problems in one parsed package.
func checkPackage(fset *token.FileSet, dir string, pkg *ast.Package) []string {
	var findings []string

	pkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			pkgDoc = true
		}
	}
	if !pkgDoc {
		findings = append(findings,
			fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
	}

	// Exported types seen in this package, so methods on unexported
	// types are not flagged.
	exportedTypes := map[string]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				ts := s.(*ast.TypeSpec)
				if ts.Name.IsExported() {
					exportedTypes[ts.Name.Name] = true
				}
			}
		}
	}

	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		findings = append(findings,
			fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if recv := receiverType(d); recv != "" {
					if exportedTypes[recv] {
						report(d.Pos(), "exported method %s.%s has no doc comment", recv, d.Name.Name)
					}
					continue
				}
				report(d.Pos(), "exported function %s has no doc comment", d.Name.Name)
			case *ast.GenDecl:
				findings = append(findings, checkGenDecl(fset, d, report)...)
			}
		}
	}
	return findings
}

// receiverType returns the base type name of a method receiver, or ""
// for plain functions.
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// checkGenDecl reports undocumented exported specs in a type/const/var
// declaration. A doc comment on the grouped declaration covers every
// spec inside it (the idiomatic form for iota blocks); otherwise each
// exported spec needs its own doc or trailing line comment.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl, report func(token.Pos, string, ...any)) []string {
	if d.Tok == token.IMPORT || d.Doc != nil {
		return nil
	}
	for _, s := range d.Specs {
		switch sp := s.(type) {
		case *ast.TypeSpec:
			if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
				report(sp.Pos(), "exported type %s has no doc comment", sp.Name.Name)
			}
		case *ast.ValueSpec:
			if sp.Doc != nil || sp.Comment != nil {
				continue
			}
			for _, name := range sp.Names {
				if name.IsExported() {
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					report(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
				}
			}
		}
	}
	return nil
}

// ---- Markdown links --------------------------------------------------------

// mdLink matches inline links and images: [text](target). Angle-
// bracketed targets and titles are handled by trimming below.
var mdLink = regexp.MustCompile(`\]\(([^()\s]+?)(?:\s+"[^"]*")?\)`)

// checkMarkdown reports relative links in *.md files whose targets do
// not exist on disk.
func checkMarkdown(root string) []string {
	var findings []string
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			findings = append(findings, fmt.Sprintf("%s: %v", path, err))
			return nil
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := strings.Trim(m[1], "<>")
				if !relativeLink(target) {
					continue
				}
				if frag := strings.IndexByte(target, '#'); frag >= 0 {
					target = target[:frag]
				}
				if target == "" {
					continue // pure fragment, same file
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					findings = append(findings,
						fmt.Sprintf("%s:%d: dead link %s", path, i+1, m[1]))
				}
			}
		}
		return nil
	})
	return findings
}

// relativeLink reports whether a link target is a repo-relative path
// (as opposed to an external URL, an anchor, or an absolute path).
func relativeLink(target string) bool {
	return !strings.Contains(target, "://") &&
		!strings.HasPrefix(target, "mailto:") &&
		!strings.HasPrefix(target, "#") &&
		!strings.HasPrefix(target, "/")
}
