// Command masim is a standalone MASIM-style access-pattern runner: it
// replays one of the paper's synthetic patterns (S1–S4) — or a custom
// hot-region pattern — against the tiered-memory machine under a chosen
// policy and prints the outcome. It is the simulator-equivalent of the
// paper's motivation-study tooling (§3).
//
// Usage:
//
//	masim -pattern S3 -policy ArtMem -ratio 1:4
//	masim -pattern S2 -policy MEMTIS -v
//	masim -hot 0.25 -hotsize 0.1 -policy TPP    # custom single-region pattern
//	masim -config my-pattern.conf               # MASIM-style pattern file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/policies"
	"artmem/internal/workloads"
)

func main() {
	var (
		pattern = flag.String("pattern", "S1", "pattern: S1..S4, or 'custom'")
		config  = flag.String("config", "", "MASIM-style pattern configuration file (overrides -pattern)")
		policy  = flag.String("policy", "ArtMem", "tiering policy (ArtMem or a baseline)")
		ratio   = flag.String("ratio", "1:1", "DRAM:PM capacity ratio, e.g. 1:4")
		div     = flag.Int64("div", 64, "footprint divisor vs the paper's 32GB")
		acc     = flag.Int64("accesses", 16_000_000, "trace length")
		hotPos  = flag.Float64("hot", 0.25, "custom pattern: hot region position (fraction)")
		hotSize = flag.Float64("hotsize", 0.1, "custom pattern: hot region size (fraction)")
		hotWt   = flag.Float64("hotweight", 0.9, "custom pattern: hot region access share")
		verbose = flag.Bool("v", false, "print the behaviour over time")
	)
	flag.Parse()

	prof := workloads.Profile{Div: *div, PatternAccesses: *acc, AppAccesses: *acc, Seed: 1}

	var w workloads.Workload
	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			fatal(err)
		}
		pat, err := workloads.ParsePattern(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		w = workloads.WithInitSweep(pat.NewWorkload(1), 0)
	} else {
		switch strings.ToUpper(*pattern) {
		case "S1", "S2", "S3", "S4":
			spec, err := workloads.ByName(strings.ToUpper(*pattern))
			if err != nil {
				fatal(err)
			}
			w = spec.New(prof)
		case "CUSTOM":
			foot := prof.Bytes(32)
			pat := &workloads.Pattern{
				Name:      "custom",
				Footprint: foot,
				Phases: []workloads.Phase{{
					Name: "steady", Accesses: *acc, WriteFrac: 0.2,
					Regions: []workloads.Region{
						{Start: int64(float64(foot) * *hotPos),
							Size:   int64(float64(foot) * *hotSize),
							Weight: *hotWt},
						{Start: 0, Size: foot, Weight: 1 - *hotWt},
					},
				}},
			}
			w = workloads.WithInitSweep(pat.NewWorkload(1), 0)
		default:
			fatal(fmt.Errorf("unknown pattern %q", *pattern))
		}
	}

	var pol policies.Policy
	if strings.EqualFold(*policy, "artmem") {
		pol = core.New(core.Config{})
	} else {
		f, err := policies.ByName(*policy)
		if err != nil {
			fatal(err)
		}
		pol = f.New()
	}

	var fast, slow int
	if _, err := fmt.Sscanf(*ratio, "%d:%d", &fast, &slow); err != nil {
		fatal(fmt.Errorf("bad -ratio %q: %v", *ratio, err))
	}

	res := harness.Run(w, pol, harness.Config{
		PageSize:      prof.PageSize(),
		Ratio:         harness.Ratio{Fast: fast, Slow: slow},
		CollectSeries: *verbose,
	})

	fmt.Printf("pattern      %s\n", res.Workload)
	fmt.Printf("policy       %s\n", res.Policy)
	fmt.Printf("ratio        %s\n", res.Ratio)
	fmt.Printf("accesses     %d (%d memory, %d cache-absorbed)\n",
		res.Accesses, res.Misses, uint64(res.Accesses)-res.Misses)
	fmt.Printf("exec time    %.2f ms (virtual)\n", float64(res.ExecNs)/1e6)
	fmt.Printf("DRAM ratio   %.3f\n", res.DRAMRatio)
	fmt.Printf("migrations   %d (%d promoted, %d demoted, %.1f MB)\n",
		res.Migrations, res.Promotions, res.Demotions,
		float64(res.MigratedBytes)/(1<<20))
	fmt.Printf("hint faults  %d\n", res.Faults)
	fmt.Printf("bg CPU       %.2f ms (%.2f%% of exec)\n",
		res.BackgroundNs/1e6, 100*res.OverheadFraction())
	if *verbose && res.MigrationSeries.Len() > 0 {
		fmt.Println("\nmigrations per period:")
		for i, ts := range res.MigrationSeries.T {
			fmt.Printf("  t=%6.1fms  %6.0f pages", float64(ts)/1e6, res.MigrationSeries.V[i])
			if i < len(res.RatioSeries.V) {
				fmt.Printf("   ratio %.3f", res.RatioSeries.V[i])
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "masim:", err)
	os.Exit(1)
}
