// Command artmon is a live terminal monitor for a running artmemd: it
// polls the daemon's /metrics.json and /trace endpoints and redraws one
// dashboard frame per interval — tier occupancy, migration and access
// rates, sampler health, degraded status, and the tail of the RL
// decision trace. The missing `top` for the tiered-memory agent.
//
// Usage:
//
//	artmon                          # watch localhost:7600 at 1s cadence
//	artmon -url http://host:7600 -interval 250ms
//	artmon -once                    # print a single frame and exit
//
// Rates (migrations/s, accesses/s, ...) are derived from counter deltas
// between consecutive polls, so the first frame — and every -once frame
// — shows totals only.
//
// Against an N-tier chain daemon (artmemd -tiers) the monitor reads
// /tiers and swaps the fast/slow panel for per-tier occupancy bars and
// per-boundary migration rows; two-tier and older daemons serve no
// /tiers and keep the classic layout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"artmem/internal/core"
	"artmem/internal/telemetry"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:7600", "artmemd base URL")
		interval = flag.Duration("interval", time.Second, "poll interval")
		tail     = flag.Int("tail", 8, "RL decision-trace tail length")
		once     = flag.Bool("once", false, "print a single frame and exit (no screen clearing)")
	)
	flag.Parse()
	base := strings.TrimSuffix(*url, "/")

	var prev *sample
	for {
		cur, err := poll(base, *tail)
		if err != nil {
			if *once {
				fmt.Fprintln(os.Stderr, "artmon:", err)
				os.Exit(1)
			}
			// A daemon restart should not kill the monitor: report and
			// keep polling.
			fmt.Fprintf(os.Stderr, "artmon: %v (retrying in %s)\n", err, *interval)
			prev = nil
			time.Sleep(*interval)
			continue
		}
		frame := renderFrame(cur, prev, base)
		if *once {
			fmt.Print(frame)
			return
		}
		// Home the cursor and clear before each redraw.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		prev = cur
		time.Sleep(*interval)
	}
}

// sample is one poll of the daemon: the flattened metric snapshot plus
// the decision-trace tail, stamped with the local receive time (rates
// use wall-clock deltas between samples). tenants carries the
// multi-tenant control plane when the daemon serves /tenants; nil
// against a single-tenant (or older) daemon, which simply omits the
// per-tenant section from the frame.
type sample struct {
	at      time.Time
	vals    map[string]float64
	events  []telemetry.Event
	tenants *core.TenantsReport
	// slo carries the serving SLO burn-rate report when the daemon
	// serves /slo; nil against daemons without the endpoint (older
	// builds, or -serve off), which omit the burn panel.
	slo *telemetry.SLOReport
	// tiers carries the N-tier chain report when the daemon runs in
	// chain mode (-tiers) and serves /tiers; nil against two-tier and
	// older daemons, which keep the classic fast/slow panel.
	tiers *core.TiersReport
}

// metric returns the value of a series key ("name" or
// `name{label="v"}`), 0 when absent.
func (s *sample) metric(key string) float64 { return s.vals[key] }

func poll(base string, tail int) (*sample, error) {
	s := &sample{at: time.Now(), vals: map[string]float64{}}

	body, err := get(base + "/metrics.json")
	if err != nil {
		return nil, err
	}
	// Histograms snapshot as objects; everything numeric flattens into
	// vals and non-scalar series are skipped — the dashboard only needs
	// counters and gauges.
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		return nil, fmt.Errorf("%s/metrics.json: %w", base, err)
	}
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			s.vals[k] = f
		}
	}

	// Multi-tenant daemons serve /tenants; a 404 or any other failure
	// just means there is no per-tenant section to draw — the monitor
	// must keep working against single-tenant and older daemons.
	if body, err := get(base + "/tenants"); err == nil {
		var rep core.TenantsReport
		if json.Unmarshal(body, &rep) == nil && len(rep.Tenants) > 0 {
			s.tenants = &rep
		}
	}

	// Same degrade rule for the serving SLO monitor: daemons without
	// /slo (older builds, -serve off) simply get no burn panel.
	if body, err := get(base + "/slo"); err == nil {
		var rep telemetry.SLOReport
		if json.Unmarshal(body, &rep) == nil && len(rep.Tenants) > 0 {
			s.slo = &rep
		}
	}

	// Chain daemons (-tiers) serve /tiers; a two-tier or older daemon
	// 404s it and the frame keeps its fast/slow panel.
	if body, err := get(base + "/tiers"); err == nil {
		var rep core.TiersReport
		if json.Unmarshal(body, &rep) == nil && len(rep.Tiers) > 0 {
			s.tiers = &rep
		}
	}

	body, err = get(fmt.Sprintf("%s/trace?n=%d", base, tail))
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(string(body)))
	for {
		var e telemetry.Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("%s/trace: %w", base, err)
		}
		s.events = append(s.events, e)
	}
	return s, nil
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 4<<20))
}

// renderFrame draws one dashboard frame. prev supplies the counter
// baseline for rates; nil renders totals only.
func renderFrame(cur, prev *sample, base string) string {
	var b strings.Builder
	degraded := ""
	if cur.metric("artmem_degraded") > 0 {
		degraded = "  [DEGRADED: heuristic fallback active]"
	}
	fmt.Fprintf(&b, "artmon %s  %s%s\n\n", base,
		cur.at.Format("15:04:05"), degraded)

	dt := 0.0
	if prev != nil {
		dt = cur.at.Sub(prev.at).Seconds()
	}

	if cur.tiers != nil {
		// Chain daemon: per-tier occupancy bars and per-boundary agents
		// replace the two-tier panel, whose series the chain registry
		// does not export.
		b.WriteString(renderTiers(cur, prev, dt))
	} else {
		// Tier occupancy as used/capacity bars.
		for _, tier := range []string{"fast", "slow"} {
			used := cur.metric(fmt.Sprintf("artmem_tier_pages{tier=%q}", tier))
			capac := cur.metric(fmt.Sprintf("artmem_tier_capacity_pages{tier=%q}", tier))
			b.WriteString(gaugeBar(tier, used, capac))
		}
		b.WriteByte('\n')

		// Counters worth watching, with per-second rates when a previous
		// sample exists.
		rows := []struct{ label, key string }{
			{"accesses fast", `artmem_accesses_total{tier="fast"}`},
			{"accesses slow", `artmem_accesses_total{tier="slow"}`},
			{"migrations", "artmem_migrations_total"},
			{"promotions", "artmem_promotions_total"},
			{"demotions", "artmem_demotions_total"},
			{"migration fails", "artmem_migration_failures_total"},
			{"pebs samples", "artmem_pebs_samples_total"},
			{"pebs drops", "artmem_pebs_samples_dropped_total"},
			{"rl decisions", "artmem_decisions_total"},
		}
		fmt.Fprintf(&b, "%-16s %14s %12s\n", "counter", "total", "per second")
		for _, r := range rows {
			v := cur.metric(r.key)
			rate := "-"
			if prev != nil && dt > 0 {
				rate = fmt.Sprintf("%.1f", (v-prev.metric(r.key))/dt)
			}
			fmt.Fprintf(&b, "%-16s %14.0f %12s\n", r.label, v, rate)
		}
		b.WriteByte('\n')

		// Agent operating point.
		fmt.Fprintf(&b, "agent: state %.0f  threshold %.0f  epsilon %.2f  period %.0f\n",
			cur.metric("artmem_state"), cur.metric("artmem_threshold"),
			cur.metric("artmem_rl_epsilon"), cur.metric("artmem_pebs_sampling_period"))
		lru := []string{}
		for _, l := range []string{"fast_active", "fast_inactive", "slow_active", "slow_inactive"} {
			lru = append(lru, fmt.Sprintf("%s %.0f",
				l, cur.metric(fmt.Sprintf("artmem_lru_pages{list=%q}", l))))
		}
		fmt.Fprintf(&b, "lru:   %s\n\n", strings.Join(lru, "  "))
	}

	// Serving frontend, only when the daemon runs -serve (the section
	// keys off the connections gauge, which registers with the server).
	if _, serving := cur.vals["artmem_serve_connections"]; serving {
		b.WriteString(renderServing(cur, prev, dt))
	}

	// Serving SLO burn rates, only when the daemon serves /slo.
	if cur.slo != nil {
		b.WriteString(renderSLO(cur.slo))
	}

	// Per-tenant control plane, only when the daemon serves /tenants.
	if cur.tenants != nil {
		b.WriteString(renderTenants(cur.tenants))
	}

	// Decision-trace tail, newest last.
	fmt.Fprintln(&b, "recent decisions (state, reward, quota, threshold, promoted):")
	if len(cur.events) == 0 {
		fmt.Fprintln(&b, "  (none yet)")
	}
	sort.SliceStable(cur.events, func(i, j int) bool {
		return cur.events[i].Seq < cur.events[j].Seq
	})
	for _, e := range cur.events {
		if e.Kind != telemetry.KindDecision {
			fmt.Fprintf(&b, "  %6d  %-9s %s\n", e.Seq, e.Kind, e.Detail)
			continue
		}
		fmt.Fprintf(&b, "  %6d  s=%d r=%+.2f quota=%d thr=%d promoted=%d\n",
			e.Seq, e.State, e.Reward, e.Quota, e.Threshold, e.Promoted)
	}
	return b.String()
}

// renderServing draws the streaming access API section: open
// connections, queued records, batch outcomes (acked vs rejected by
// reason) with rates, and applied record throughput. Only rendered
// when the daemon exposes the artmem_serve_* series (-serve active).
func renderServing(cur, prev *sample, dt float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving: %0.f conns  %0.f records queued\n",
		cur.metric("artmem_serve_connections"),
		cur.metric("artmem_serve_queue_records"))
	rows := []struct{ label, key string }{
		{"batches acked", "artmem_serve_batches_acked_total"},
		{"shed overload", `artmem_serve_batches_rejected_total{reason="overloaded"}`},
		{"rej draining", `artmem_serve_batches_rejected_total{reason="draining"}`},
		{"rej bad tenant", `artmem_serve_batches_rejected_total{reason="bad_tenant"}`},
		{"rej throttled", `artmem_serve_batches_rejected_total{reason="throttled"}`},
		{"records applied", `artmem_serve_records_total{op="access"}`},
		{"decode errors", "artmem_serve_decode_errors_total"},
	}
	for _, r := range rows {
		v := cur.metric(r.key)
		rate := "-"
		if prev != nil && dt > 0 {
			rate = fmt.Sprintf("%.1f", (v-prev.metric(r.key))/dt)
		}
		fmt.Fprintf(&b, "  %-16s %12.0f %12s/s\n", r.label, v, rate)
	}
	// Interpolated latency quantiles, exported by newer daemons as
	// sibling gauges of the serve histograms; absent keys render
	// nothing so old daemons keep their shorter section.
	if _, ok := cur.vals["artmem_serve_batch_latency_ns_p50"]; ok {
		fmt.Fprintf(&b, "  batch latency    p50 %s  p99 %s  p999 %s\n",
			ms(cur.metric("artmem_serve_batch_latency_ns_p50")),
			ms(cur.metric("artmem_serve_batch_latency_ns_p99")),
			ms(cur.metric("artmem_serve_batch_latency_ns_p999")))
		fmt.Fprintf(&b, "  queue wait       p50 %s  p99 %s  p999 %s\n",
			ms(cur.metric("artmem_serve_queue_wait_ns_p50")),
			ms(cur.metric("artmem_serve_queue_wait_ns_p99")),
			ms(cur.metric("artmem_serve_queue_wait_ns_p999")))
	}
	b.WriteByte('\n')
	return b.String()
}

// ms formats a nanosecond quantity in milliseconds.
func ms(ns float64) string { return fmt.Sprintf("%.2fms", ns/1e6) }

// renderSLO draws the serving SLO burn panel: one row per tenant slot
// that has seen traffic, with its objective class and the latency/loss
// burn rate over each window. Burn 1.0 means the slot consumes error
// budget exactly as fast as the objective allows; sustained burn above
// 1 exhausts it.
func renderSLO(rep *telemetry.SLOReport) string {
	var b strings.Builder
	windows := make([]string, len(rep.WindowsNs))
	for i, w := range rep.WindowsNs {
		windows[i] = (time.Duration(w) * time.Nanosecond).String()
	}
	fmt.Fprintf(&b, "slo burn (windows %s):\n", strings.Join(windows, "/"))
	fmt.Fprintf(&b, "  %-6s %-8s %10s %10s  %-18s %-18s\n",
		"slot", "class", "batches", "lost", "latency burn", "loss burn")
	active := 0
	for _, t := range rep.Tenants {
		if len(t.Windows) == 0 {
			continue
		}
		widest := t.Windows[len(t.Windows)-1]
		if widest.Batches == 0 {
			continue
		}
		active++
		lat := make([]string, len(t.Windows))
		loss := make([]string, len(t.Windows))
		for i, w := range t.Windows {
			lat[i] = fmt.Sprintf("%.1f", w.LatencyBurn)
			loss[i] = fmt.Sprintf("%.1f", w.LossBurn)
		}
		fmt.Fprintf(&b, "  %-6d %-8s %10d %10d  %-18s %-18s\n",
			t.Slot, t.Class, widest.Batches, widest.Lost,
			strings.Join(lat, "/"), strings.Join(loss, "/"))
	}
	if active == 0 {
		fmt.Fprintln(&b, "  (no serving traffic yet)")
	}
	b.WriteByte('\n')
	return b.String()
}

// renderTiers draws the N-tier chain panel from the /tiers report: one
// occupancy bar per tier in chain order (with resident shadow copies
// when the chain runs non-exclusive), per-tier access totals, and one
// row per boundary with its migration counters, rates derived from the
// previous sample's report, and the boundary agent's operating point.
// Only rendered against chain daemons; two-tier daemons serve no /tiers
// and keep the classic panel.
func renderTiers(cur, prev *sample, dt float64) string {
	rep := cur.tiers
	var b strings.Builder
	mode := "exclusive"
	if rep.NonExclusive {
		mode = "non-exclusive"
	}
	fmt.Fprintf(&b, "chain (%d tiers, %s migration):\n", len(rep.Tiers), mode)

	// Rates diff against the previous poll's report, matched by index.
	prevTier := map[int]core.TierStatus{}
	prevBd := map[int]core.BoundaryStatus{}
	if prev != nil && prev.tiers != nil && dt > 0 {
		for _, t := range prev.tiers.Tiers {
			prevTier[t.Index] = t
		}
		for _, bd := range prev.tiers.Boundaries {
			prevBd[bd.Boundary] = bd
		}
	}
	rate := func(cur, prev uint64, have bool) string {
		if !have {
			return "-"
		}
		return fmt.Sprintf("%.1f", float64(cur-prev)/dt)
	}

	for _, t := range rep.Tiers {
		b.WriteString(gaugeBar(t.Name, float64(t.UsedPages), float64(t.Capacity)))
	}
	fmt.Fprintf(&b, "  %-6s %14s %10s %10s\n", "tier", "accesses", "per sec", "shadows")
	for _, t := range rep.Tiers {
		pt, ok := prevTier[t.Index]
		fmt.Fprintf(&b, "  %-6s %14d %10s %10d\n",
			t.Name, t.Accesses, rate(t.Accesses, pt.Accesses, ok), t.ShadowPages)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "  %-10s %10s %8s %10s %8s %9s %5s %6s\n",
		"boundary", "promos", "/s", "demos", "/s", "discards", "thr", "state")
	for _, bd := range rep.Boundaries {
		pb, ok := prevBd[bd.Boundary]
		state := "ok"
		if bd.Degraded {
			state = "DEGR"
		}
		fmt.Fprintf(&b, "  %-10s %10d %8s %10d %8s %9d %5d %6s\n",
			bd.Upper+"|"+bd.Lower,
			bd.Promotions, rate(bd.Promotions, pb.Promotions, ok),
			bd.Demotions, rate(bd.Demotions, pb.Demotions, ok),
			bd.ShadowDiscards, bd.Threshold, state)
	}
	if rep.NonExclusive {
		fmt.Fprintf(&b, "  shadow invalidates %d  reclaims %d\n",
			rep.ShadowInvalidates, rep.ShadowReclaims)
	}
	b.WriteByte('\n')
	return b.String()
}

// renderTenants draws the multi-tenant section: arbiter posture, slot
// occupancy and the lifecycle ledger, plus one row per tenant with its
// SLO class, fast-tier occupancy against quota, hit ratio, and
// admission-control pressure. Daemons predating the lifecycle plane
// serve /tenants without capacity or class fields; those unmarshal to
// zero values and the extra columns degrade to placeholders.
func renderTenants(rep *core.TenantsReport) string {
	var b strings.Builder
	occupancy := ""
	if rep.Capacity > 0 {
		occupancy = fmt.Sprintf("%d/%d active, ", rep.ActiveTenants, rep.Capacity)
	}
	fmt.Fprintf(&b, "tenants (%sarbiter %s, admission %v, rebalances %d):\n",
		occupancy, rep.ArbiterMode, rep.AdmissionControl, rep.Rebalances)
	if rep.Capacity > 0 {
		fmt.Fprintf(&b, "  lifecycle: regs %d  deregs %d  crashes %d  rollbacks %d  throttled %d\n",
			rep.Registrations, rep.Deregistrations, rep.Crashes,
			rep.ReclaimRollbacks, rep.Throttled)
	}
	fmt.Fprintf(&b, "  %-10s %-8s %9s %7s %10s %8s %8s %6s\n",
		"tenant", "class", "hit ratio", "fast", "quota", "promo", "denied", "state")
	for _, t := range rep.Tenants {
		class := t.SLOClass
		if class == "" {
			class = "-"
		}
		quota := "-"
		if t.QuotaPages > 0 {
			quota = fmt.Sprintf("%d", t.QuotaPages)
		}
		state := "ok"
		switch {
		case t.Degraded:
			state = "DEGR"
		case t.State == "draining":
			state = "drain"
		}
		fmt.Fprintf(&b, "  %-10s %-8s %9.3f %7d %10s %8d %8d %6s\n",
			t.Name, class, t.HitRatio, t.FastPages, quota, t.Promotions,
			t.AdmissionDenials, state)
	}
	b.WriteByte('\n')
	return b.String()
}

// gaugeBar renders a used/capacity occupancy bar.
func gaugeBar(label string, used, capac float64) string {
	const width = 40
	n := 0
	if capac > 0 {
		n = int(used / capac * width)
		if n > width {
			n = width
		}
	}
	pct := 0.0
	if capac > 0 {
		pct = 100 * used / capac
	}
	return fmt.Sprintf("%-5s [%-*s] %5.0f/%5.0f pages (%5.1f%%)\n",
		label, width, strings.Repeat("|", n), used, capac, pct)
}
