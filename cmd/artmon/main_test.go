package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"artmem/internal/core"
	"artmem/internal/memsim"
	"artmem/internal/telemetry"
	"artmem/internal/tenancy"
	"artmem/internal/tier"
)

// TestPollAndRenderAgainstSystem exercises the monitor end to end
// against a real System behind its ControlHandler: the poll flattens
// /metrics.json and parses the /trace tail, and the rendered frame
// carries the dashboard's fixtures.
func TestPollAndRenderAgainstSystem(t *testing.T) {
	mcfg := memsim.DefaultConfig(64*64*1024, 16*64*1024, 64*1024)
	mcfg.CacheLines = 0
	sys := core.NewSystem(core.SystemConfig{
		Machine:           mcfg,
		Policy:            core.Config{SamplePeriod: 1},
		SamplingInterval:  500 * time.Microsecond,
		MigrationInterval: time.Millisecond,
	})
	srv := httptest.NewServer(sys.ControlHandler())
	defer srv.Close()

	for p := uint64(0); p < 64; p++ {
		sys.Access(p*64*1024, false)
	}

	cur, err := poll(srv.URL, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.vals) == 0 {
		t.Fatal("poll flattened no metrics")
	}
	if v := cur.metric(`artmem_tier_pages{tier="fast"}`); v <= 0 {
		t.Errorf("fast tier pages = %v, want > 0", v)
	}
	if v := cur.metric(`artmem_tier_capacity_pages{tier="fast"}`); v != 16 {
		t.Errorf("fast capacity = %v, want 16", v)
	}

	frame := renderFrame(cur, nil, srv.URL)
	for _, want := range []string{
		"artmon " + srv.URL,
		"fast  [", "slow  [", // occupancy bars
		"counter", "migrations", "pebs samples",
		"agent: state", "lru:   fast_active",
		"recent decisions",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// No previous sample: every rate cell is the placeholder.
	if !strings.Contains(frame, " -\n") {
		t.Errorf("first frame should render '-' rates:\n%s", frame)
	}
	if strings.Contains(frame, "DEGRADED") {
		t.Errorf("healthy system rendered degraded:\n%s", frame)
	}
	// A single-tenant daemon serves no /tenants: the monitor must
	// degrade gracefully — no tenants field, no per-tenant section.
	if cur.tenants != nil {
		t.Error("poll against single-tenant daemon filled tenants")
	}
	if strings.Contains(frame, "tenants (arbiter") {
		t.Errorf("single-tenant frame rendered a tenants section:\n%s", frame)
	}
	// Likewise a daemon without -serve has no /slo: the sample must not
	// grow an SLO report and the frame must not draw the burn panel.
	if cur.slo != nil {
		t.Error("poll against serve-less daemon filled slo")
	}
	if strings.Contains(frame, "slo burn") {
		t.Errorf("serve-less frame rendered an SLO panel:\n%s", frame)
	}
	// And a two-tier daemon serves no /tiers: the classic fast/slow
	// panel stays, the chain panel never renders.
	if cur.tiers != nil {
		t.Error("poll against two-tier daemon filled tiers")
	}
	if strings.Contains(frame, "chain (") {
		t.Errorf("two-tier frame rendered a chain panel:\n%s", frame)
	}
}

// TestPollAndRenderAgainstTieredSystem drives the monitor against an
// N-tier chain daemon: /tiers is picked up, the chain panel replaces
// the fast/slow bars and two-tier counter table, and the decision tail
// drains the merged boundary traces.
func TestPollAndRenderAgainstTieredSystem(t *testing.T) {
	ch, err := tier.ParseChain("DRAM:cap=16/CXL:cap=24/PM")
	if err != nil {
		t.Fatal(err)
	}
	mcfg := memsim.DefaultConfig(64*64*1024, 0, 64*1024)
	mcfg.Chain = ch
	mcfg.NonExclusive = true
	mcfg.CacheLines = 0
	sys := core.NewTieredSystem(core.TieredSystemConfig{
		Machine:           mcfg,
		Policy:            core.Config{SamplePeriod: 1},
		SamplingInterval:  500 * time.Microsecond,
		MigrationInterval: time.Millisecond,
	})
	srv := httptest.NewServer(sys.ControlHandler())
	defer srv.Close()

	for p := uint64(0); p < 64; p++ {
		sys.Access(p*64*1024, false)
	}

	cur, err := poll(srv.URL, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cur.tiers == nil {
		t.Fatal("poll did not pick up /tiers")
	}
	if got := len(cur.tiers.Tiers); got != 3 {
		t.Fatalf("tiers report has %d tiers, want 3", got)
	}
	if cur.tiers.Tiers[0].UsedPages == 0 {
		t.Error("DRAM tier shows no resident pages after the sweep")
	}

	frame := renderFrame(cur, nil, srv.URL)
	for _, want := range []string{
		"chain (3 tiers, non-exclusive migration):",
		"DRAM  [", "CXL   [", "PM    [", // occupancy bars in chain order
		"boundary", "DRAM|CXL", "CXL|PM", // one row per boundary
		"shadow invalidates",
		"recent decisions",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// The two-tier sections must not render against a chain daemon:
	// their series do not exist in the chain registry.
	for _, absent := range []string{"fast  [", "slow  [", "lru:", "accesses fast"} {
		if strings.Contains(frame, absent) {
			t.Errorf("chain frame rendered two-tier section %q:\n%s", absent, frame)
		}
	}
}

// TestRenderTiersRates pins the chain panel's delta arithmetic and
// degrade cells against hand-built reports: totals-only on the first
// frame, per-second rates once a previous report exists, and the DEGR
// marker for a boundary agent in heuristic fallback.
func TestRenderTiersRates(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	mk := func(promos, acc uint64) *core.TiersReport {
		return &core.TiersReport{
			NonExclusive: true,
			Tiers: []core.TierStatus{
				{Index: 0, Name: "DRAM", UsedPages: 10, Capacity: 16, ShadowPages: 0, Accesses: acc},
				{Index: 1, Name: "PM", UsedPages: 40, Capacity: 0, ShadowPages: 3, Accesses: 7},
			},
			Boundaries: []core.BoundaryStatus{
				{Boundary: 0, Upper: "DRAM", Lower: "PM", Promotions: promos,
					Demotions: 4, ShadowDiscards: 2, Threshold: 8, Degraded: true},
			},
			ShadowInvalidates: 5,
			ShadowReclaims:    1,
		}
	}
	prev := &sample{at: t0, tiers: mk(100, 1000)}
	cur := &sample{at: t0.Add(2 * time.Second), tiers: mk(150, 1200)}

	first := renderTiers(cur, nil, 0)
	if !strings.Contains(first, " - ") {
		t.Errorf("first frame should render '-' rates:\n%s", first)
	}
	out := renderTiers(cur, prev, 2)
	for _, want := range []string{
		"25.0",  // (150-100)/2 promotions per second
		"100.0", // (1200-1000)/2 accesses per second
		"DEGR",
		"shadow invalidates 5  reclaims 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderTiers missing %q:\n%s", want, out)
		}
	}
}

// TestPollAndRenderAgainstMultiSystem drives the monitor against a
// multi-tenant daemon: /tenants is picked up and the frame grows the
// per-tenant section between the lru line and the decision tail.
func TestPollAndRenderAgainstMultiSystem(t *testing.T) {
	mcfg := memsim.DefaultConfig(128*64*1024, 32*64*1024, 64*1024)
	mcfg.CacheLines = 0
	sys := core.NewMultiSystem(core.MultiSystemConfig{
		Machine: mcfg,
		Tenants: []core.TenantConfig{
			{Name: "alpha", Weight: 1, Policy: core.Config{SamplePeriod: 1, Seed: 1}},
			{Name: "beta", Weight: 3, Policy: core.Config{SamplePeriod: 1, Seed: 2}},
		},
		Arbiter:           tenancy.ArbiterConfig{Mode: tenancy.ModeStatic, Admission: true},
		SamplingInterval:  500 * time.Microsecond,
		MigrationInterval: time.Millisecond,
	})
	srv := httptest.NewServer(sys.ControlHandler())
	defer srv.Close()
	for p := uint64(0); p < 40; p++ {
		sys.Access(0, p*64*1024, false)
		sys.Access(1, (64+p)*64*1024, false)
	}

	cur, err := poll(srv.URL, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cur.tenants == nil {
		t.Fatal("poll did not pick up /tenants")
	}
	frame := renderFrame(cur, nil, srv.URL)
	for _, want := range []string{
		"tenants (2/2 active, arbiter static, admission true",
		"lifecycle: regs 2  deregs 0  crashes 0",
		"alpha", "beta", "class", "hit ratio", "quota",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// The section sits above the decision tail.
	if i, j := strings.Index(frame, "tenants (arbiter"), strings.Index(frame, "recent decisions"); i > j {
		t.Errorf("tenants section after decision tail:\n%s", frame)
	}
}

// TestRenderTenants pins the per-tenant row format against a hand-built
// report that mimics a daemon predating the lifecycle plane: no
// capacity, no classes. The section must degrade — plain header, no
// lifecycle ledger, "-" class cells — while unlimited quotas print "-"
// and degraded agents flag DEGR.
func TestRenderTenants(t *testing.T) {
	out := renderTenants(&core.TenantsReport{
		ArbiterMode: "off",
		Rebalances:  2,
		Tenants: []core.TenantStatus{
			{Name: "a", HitRatio: 0.5, FastPages: 10, QuotaPages: 0, Promotions: 3},
			{Name: "b", HitRatio: 0.25, FastPages: 4, QuotaPages: 7, AdmissionDenials: 9, Degraded: true},
		},
	})
	for _, want := range []string{
		"tenants (arbiter off, admission false, rebalances 2):",
		"0.500", "0.250", "DEGR",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderTenants missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "active,") || strings.Contains(out, "lifecycle:") {
		t.Errorf("old-daemon report rendered lifecycle fields:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[2], " - ") {
		t.Errorf("unlimited quota not rendered as '-': %q", lines[2])
	}
	if !strings.Contains(lines[3], " 7 ") && !strings.HasSuffix(strings.TrimRight(lines[3], " "), "DEGR") {
		t.Errorf("row misrendered: %q", lines[3])
	}
}

// TestRenderTenantsLifecycle pins the lifecycle-aware section: slot
// occupancy in the header, the ledger line, SLO class cells, and the
// draining state marker.
func TestRenderTenantsLifecycle(t *testing.T) {
	out := renderTenants(&core.TenantsReport{
		ArbiterMode:      "static",
		AdmissionControl: true,
		Capacity:         8,
		ActiveTenants:    2,
		Registrations:    41,
		Deregistrations:  30,
		Crashes:          6,
		ReclaimRollbacks: 3,
		Throttled:        12,
		Tenants: []core.TenantStatus{
			{Name: "svc", SLOClass: "latency", State: "active", HitRatio: 0.9, QuotaPages: 12},
			{Name: "job", SLOClass: "batch", State: "draining", HitRatio: 0.4, QuotaPages: 4},
		},
	})
	for _, want := range []string{
		"tenants (2/8 active, arbiter static, admission true",
		"lifecycle: regs 41  deregs 30  crashes 6  rollbacks 3  throttled 12",
		"latency", "batch", "drain",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderTenants missing %q:\n%s", want, out)
		}
	}
}

// TestRenderSLO pins the burn-panel format against a hand-built
// report: window labels in the header, one row per slot with traffic,
// idle slots (the capacity-sized monitor pre-allocates them) skipped.
func TestRenderSLO(t *testing.T) {
	rep := &telemetry.SLOReport{
		WindowsNs: []int64{60e9, 300e9, 1800e9},
		Tenants: []telemetry.SLOTenantReport{
			{
				Slot:         0,
				SLOObjective: telemetry.LatencySLO(),
				Windows: []telemetry.SLOWindowReport{
					{WindowNs: 60e9, Batches: 100, LatencyBreaches: 4, LatencyBurn: 4.0, LossBurn: 0},
					{WindowNs: 300e9, Batches: 400, LatencyBreaches: 4, LatencyBurn: 1.0, LossBurn: 0},
					{WindowNs: 1800e9, Batches: 900, LatencyBreaches: 4, Lost: 2, LatencyBurn: 0.4, LossBurn: 2.2},
				},
			},
			{
				Slot:         1,
				SLOObjective: telemetry.BatchSLO(),
				Windows: []telemetry.SLOWindowReport{
					{WindowNs: 60e9}, {WindowNs: 300e9}, {WindowNs: 1800e9},
				},
			},
		},
	}
	out := renderSLO(rep)
	for _, want := range []string{
		"slo burn (windows 1m0s/5m0s/30m0s):",
		"latency burn", "loss burn",
		"latency", "900", // class and widest-window batch count
		"4.0/1.0/0.4", "0.0/0.0/2.2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderSLO missing %q:\n%s", want, out)
		}
	}
	// Slot 1 never saw traffic: no row for it.
	if strings.Contains(out, "\n  1 ") {
		t.Errorf("idle slot rendered a row:\n%s", out)
	}
	if !strings.Contains(renderSLO(&telemetry.SLOReport{WindowsNs: []int64{60e9}}), "no serving traffic yet") {
		t.Error("empty report missing placeholder line")
	}
}

// TestPollSLOFromCannedDaemon drives poll against a canned mux that
// serves the observability trio the way a -serve daemon does, and
// checks the burn panel lands in the frame between the serving and
// decision sections.
func TestPollSLOFromCannedDaemon(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"artmem_migrations_total": 5, "artmem_serve_connections": 1,
			"artmem_serve_batch_latency_ns_p50": 1000000,
			"artmem_serve_batch_latency_ns_p99": 2000000, "artmem_serve_batch_latency_ns_p999": 3000000,
			"artmem_serve_queue_wait_ns_p50": 100, "artmem_serve_queue_wait_ns_p99": 200,
			"artmem_serve_queue_wait_ns_p999": 300}`)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(telemetry.SLOReport{
			WindowsNs: []int64{60e9},
			Tenants: []telemetry.SLOTenantReport{{
				Slot:         0,
				SLOObjective: telemetry.BatchSLO(),
				Windows:      []telemetry.SLOWindowReport{{WindowNs: 60e9, Batches: 7, LatencyBurn: 1.5}},
			}},
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cur, err := poll(srv.URL, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cur.slo == nil {
		t.Fatal("poll did not pick up /slo")
	}
	frame := renderFrame(cur, nil, srv.URL)
	for _, want := range []string{
		"slo burn (windows 1m0s):", "batch", "1.5",
		"batch latency    p50 1.00ms  p99 2.00ms  p999 3.00ms",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	if i, j := strings.Index(frame, "slo burn"), strings.Index(frame, "recent decisions"); i > j {
		t.Errorf("SLO panel after decision tail:\n%s", frame)
	}
}

// TestRenderFrameRates checks the counter-delta arithmetic and the
// degraded banner against hand-built samples.
func TestRenderFrameRates(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	prev := &sample{at: t0, vals: map[string]float64{
		"artmem_migrations_total": 100,
	}}
	cur := &sample{at: t0.Add(2 * time.Second), vals: map[string]float64{
		"artmem_migrations_total": 150,
		"artmem_degraded":         1,
	}}
	frame := renderFrame(cur, prev, "http://x")
	if !strings.Contains(frame, "migrations") || !strings.Contains(frame, "25.0") {
		t.Errorf("missing 25.0/s migration rate:\n%s", frame)
	}
	if !strings.Contains(frame, "[DEGRADED") {
		t.Errorf("degraded banner missing:\n%s", frame)
	}
	if !strings.Contains(frame, "(none yet)") {
		t.Errorf("empty trace tail not reported:\n%s", frame)
	}
}

// TestRenderFrameDecisionTail pins the decision-line format and the
// seq ordering.
func TestRenderFrameDecisionTail(t *testing.T) {
	cur := &sample{at: time.Now(), vals: map[string]float64{}, events: []telemetry.Event{
		{Seq: 2, Kind: telemetry.KindDecision, State: 3, Reward: -0.5, Quota: 64, Threshold: 4, Promoted: 7},
		{Seq: 1, Kind: telemetry.KindDegraded, Detail: "entered fallback"},
	}}
	frame := renderFrame(cur, nil, "http://x")
	i := strings.Index(frame, "entered fallback")
	j := strings.Index(frame, "s=3 r=-0.50 quota=64 thr=4 promoted=7")
	if i < 0 || j < 0 {
		t.Fatalf("decision tail misrendered:\n%s", frame)
	}
	if i > j {
		t.Errorf("events not in seq order:\n%s", frame)
	}
}

func TestPollError(t *testing.T) {
	srv := httptest.NewServer(nil)
	srv.Close()
	if _, err := poll(srv.URL, 4); err == nil {
		t.Fatal("poll against a dead server succeeded")
	}
}

func TestGaugeBar(t *testing.T) {
	full := gaugeBar("fast", 40, 40)
	if !strings.Contains(full, "100.0%") || !strings.Contains(full, strings.Repeat("|", 40)) {
		t.Errorf("full bar = %q", full)
	}
	empty := gaugeBar("slow", 0, 40)
	if strings.Contains(empty, "|") {
		t.Errorf("empty bar drew ticks: %q", empty)
	}
	// Zero capacity (metrics not yet scraped) must not divide by zero.
	if z := gaugeBar("x", 5, 0); !strings.Contains(z, "0.0%") {
		t.Errorf("zero-capacity bar = %q", z)
	}
}
