package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"artmem/internal/core"
	"artmem/internal/memsim"
	"artmem/internal/telemetry"
)

// TestPollAndRenderAgainstSystem exercises the monitor end to end
// against a real System behind its ControlHandler: the poll flattens
// /metrics.json and parses the /trace tail, and the rendered frame
// carries the dashboard's fixtures.
func TestPollAndRenderAgainstSystem(t *testing.T) {
	mcfg := memsim.DefaultConfig(64*64*1024, 16*64*1024, 64*1024)
	mcfg.CacheLines = 0
	sys := core.NewSystem(core.SystemConfig{
		Machine:           mcfg,
		Policy:            core.Config{SamplePeriod: 1},
		SamplingInterval:  500 * time.Microsecond,
		MigrationInterval: time.Millisecond,
	})
	srv := httptest.NewServer(sys.ControlHandler())
	defer srv.Close()

	for p := uint64(0); p < 64; p++ {
		sys.Access(p*64*1024, false)
	}

	cur, err := poll(srv.URL, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.vals) == 0 {
		t.Fatal("poll flattened no metrics")
	}
	if v := cur.metric(`artmem_tier_pages{tier="fast"}`); v <= 0 {
		t.Errorf("fast tier pages = %v, want > 0", v)
	}
	if v := cur.metric(`artmem_tier_capacity_pages{tier="fast"}`); v != 16 {
		t.Errorf("fast capacity = %v, want 16", v)
	}

	frame := renderFrame(cur, nil, srv.URL)
	for _, want := range []string{
		"artmon " + srv.URL,
		"fast  [", "slow  [", // occupancy bars
		"counter", "migrations", "pebs samples",
		"agent: state", "lru:   fast_active",
		"recent decisions",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// No previous sample: every rate cell is the placeholder.
	if !strings.Contains(frame, " -\n") {
		t.Errorf("first frame should render '-' rates:\n%s", frame)
	}
	if strings.Contains(frame, "DEGRADED") {
		t.Errorf("healthy system rendered degraded:\n%s", frame)
	}
}

// TestRenderFrameRates checks the counter-delta arithmetic and the
// degraded banner against hand-built samples.
func TestRenderFrameRates(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	prev := &sample{at: t0, vals: map[string]float64{
		"artmem_migrations_total": 100,
	}}
	cur := &sample{at: t0.Add(2 * time.Second), vals: map[string]float64{
		"artmem_migrations_total": 150,
		"artmem_degraded":         1,
	}}
	frame := renderFrame(cur, prev, "http://x")
	if !strings.Contains(frame, "migrations") || !strings.Contains(frame, "25.0") {
		t.Errorf("missing 25.0/s migration rate:\n%s", frame)
	}
	if !strings.Contains(frame, "[DEGRADED") {
		t.Errorf("degraded banner missing:\n%s", frame)
	}
	if !strings.Contains(frame, "(none yet)") {
		t.Errorf("empty trace tail not reported:\n%s", frame)
	}
}

// TestRenderFrameDecisionTail pins the decision-line format and the
// seq ordering.
func TestRenderFrameDecisionTail(t *testing.T) {
	cur := &sample{at: time.Now(), vals: map[string]float64{}, events: []telemetry.Event{
		{Seq: 2, Kind: telemetry.KindDecision, State: 3, Reward: -0.5, Quota: 64, Threshold: 4, Promoted: 7},
		{Seq: 1, Kind: telemetry.KindDegraded, Detail: "entered fallback"},
	}}
	frame := renderFrame(cur, nil, "http://x")
	i := strings.Index(frame, "entered fallback")
	j := strings.Index(frame, "s=3 r=-0.50 quota=64 thr=4 promoted=7")
	if i < 0 || j < 0 {
		t.Fatalf("decision tail misrendered:\n%s", frame)
	}
	if i > j {
		t.Errorf("events not in seq order:\n%s", frame)
	}
}

func TestPollError(t *testing.T) {
	srv := httptest.NewServer(nil)
	srv.Close()
	if _, err := poll(srv.URL, 4); err == nil {
		t.Fatal("poll against a dead server succeeded")
	}
}

func TestGaugeBar(t *testing.T) {
	full := gaugeBar("fast", 40, 40)
	if !strings.Contains(full, "100.0%") || !strings.Contains(full, strings.Repeat("|", 40)) {
		t.Errorf("full bar = %q", full)
	}
	empty := gaugeBar("slow", 0, 40)
	if strings.Contains(empty, "|") {
		t.Errorf("empty bar drew ticks: %q", empty)
	}
	// Zero capacity (metrics not yet scraped) must not divide by zero.
	if z := gaugeBar("x", 5, 0); !strings.Contains(z, "0.0%") {
		t.Errorf("zero-capacity bar = %q", z)
	}
}
