// Command artmemviz dumps DAMON-style access-footprint heatmaps (the
// data behind the paper's Figures 1 and 10): access density per
// address-space region per time slice, for any workload in the registry.
//
// Usage:
//
//	artmemviz -workload CC
//	artmemviz -workload S2 -rows 32 -cols 16
//	artmemviz -workload SSSP -csv > sssp.csv
//
// With -qtable it instead renders a running agent's RL state — Q-value
// heatmaps for both tables plus the state-visit histogram — from a
// daemon's /qtable endpoint or a saved copy of its JSON:
//
//	artmemviz -qtable http://localhost:8080/qtable
//	artmemviz -qtable qtable.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"artmem/internal/core"
	"artmem/internal/damon"
	"artmem/internal/memsim"
	"artmem/internal/textplot"
	"artmem/internal/workloads"
)

func main() {
	var (
		name     = flag.String("workload", "CC", "workload name (see workloads registry: S1..S4, YCSB, CC, ...)")
		rows     = flag.Int("rows", 24, "address-space bins")
		cols     = flag.Int("cols", 12, "time bins")
		div      = flag.Int64("div", 128, "footprint divisor")
		acc      = flag.Int64("accesses", 4_000_000, "trace length")
		csv      = flag.Bool("csv", false, "emit raw counts as CSV instead of sparklines")
		useDamon = flag.Bool("damon", false, "estimate the footprint with the DAMON region monitor instead of exact counting")
		qtable   = flag.String("qtable", "", "render the RL Q-tables from this /qtable URL or JSON file instead of a workload heatmap")
	)
	flag.Parse()

	if *qtable != "" {
		if err := qtableViz(*qtable, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "artmemviz:", err)
			os.Exit(1)
		}
		return
	}

	spec, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "artmemviz:", err)
		os.Exit(1)
	}
	prof := workloads.Profile{Div: *div, PatternAccesses: *acc, AppAccesses: *acc, Seed: 1}
	w := spec.New(prof)
	defer w.Close()

	if *useDamon {
		damonHeatmap(w, prof, *rows, *cols)
		return
	}

	foot := uint64(w.FootprintBytes())
	counts := make([][]float64, *rows)
	for i := range counts {
		counts[i] = make([]float64, *cols)
	}
	// First drain the trace to learn its length, buffering addresses
	// compactly as region indices.
	var regionOf []uint8
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			r := int(a.Addr * uint64(*rows) / foot)
			if r >= *rows {
				r = *rows - 1
			}
			regionOf = append(regionOf, uint8(r))
		}
	}
	total := len(regionOf)
	if total == 0 {
		fmt.Fprintln(os.Stderr, "artmemviz: empty trace")
		os.Exit(1)
	}
	for i, r := range regionOf {
		c := i * *cols / total
		if c >= *cols {
			c = *cols - 1
		}
		counts[r][c]++
	}

	if *csv {
		fmt.Printf("region")
		for c := 0; c < *cols; c++ {
			fmt.Printf(",t%d", c)
		}
		fmt.Println()
		for r := 0; r < *rows; r++ {
			fmt.Printf("%d", r)
			for c := 0; c < *cols; c++ {
				fmt.Printf(",%.0f", counts[r][c])
			}
			fmt.Println()
		}
		return
	}

	fmt.Printf("%s access footprint (%d MB, %d accesses)\n",
		w.Name(), foot>>20, total)
	fmt.Printf("rows: address space in %d bins (top = low addresses); cols: run time in %d slices\n\n",
		*rows, *cols)
	for r := 0; r < *rows; r++ {
		rowTot := 0.0
		for _, v := range counts[r] {
			rowTot += v
		}
		fmt.Printf("%3d | %s | %5.1f%%\n", r, textplot.Sparkline(counts[r]),
			100*rowTot/float64(total))
	}
}

// qtableViz fetches a QTableReport (from a /qtable endpoint or a saved
// JSON file) and renders the agent's learning: one shaded heatmap per
// Q-table (row per state, column per action, current state marked with
// '>'), the per-state visit histogram, and the exploration/reward
// attribution the report carries.
func qtableViz(src string, w io.Writer) error {
	var r io.ReadCloser
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			resp.Body.Close()
			return fmt.Errorf("%s: %s: %s", src, resp.Status,
				strings.TrimSpace(string(body)))
		}
		r = resp.Body
	} else {
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		r = f
	}
	defer r.Close()
	var rep core.QTableReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return fmt.Errorf("%s: bad qtable json: %w", src, err)
	}
	if rep.States == 0 || len(rep.Migration.Q) == 0 {
		return fmt.Errorf("%s: empty qtable report", src)
	}

	mode := "learning"
	if rep.Degraded {
		mode = "DEGRADED (heuristic fallback, Q-tables idle)"
	}
	fmt.Fprintf(w, "%s: %d decisions, threshold %d (floor %d), beta %.1f, %s\n\n",
		rep.Policy, rep.Decisions, rep.Threshold, rep.MinThreshold, rep.Beta, mode)

	rows := stateLabels(rep)
	intLabels := func(vals []int) []string {
		signed := false
		for _, v := range vals {
			if v < 0 {
				signed = true
			}
		}
		out := make([]string, len(vals))
		for i, v := range vals {
			if signed {
				out[i] = fmt.Sprintf("%+d", v)
			} else {
				out[i] = fmt.Sprintf("%d", v)
			}
		}
		return out
	}
	fmt.Fprint(w, textplot.Heatmap(
		fmt.Sprintf("migration Q-table (%s, ε=%.2f, %d updates) — pages/period",
			rep.Migration.Algorithm, rep.Migration.Epsilon, rep.Migration.Updates),
		rows, intLabels(rep.MigrationPages), rep.Migration.Q))
	fmt.Fprintln(w)
	fmt.Fprint(w, textplot.Heatmap(
		fmt.Sprintf("threshold Q-table (%s, %d updates) — threshold delta",
			rep.ThresholdTable.Algorithm, rep.ThresholdTable.Updates),
		rows, intLabels(rep.ThresholdDeltas), rep.ThresholdTable.Q))
	fmt.Fprintln(w)

	visits := make([]float64, len(rep.Migration.Visits))
	for i, v := range rep.Migration.Visits {
		visits[i] = float64(v)
	}
	fmt.Fprint(w, textplot.Bars("state visits (migration table)", rows, visits, 40))

	tb := textplot.Table{
		Title:  "per-state learning",
		Header: []string{"state", "visits", "explored", "greedy_pages", "mean_reward"},
	}
	for s := 0; s < rep.States && s < len(rep.Migration.Visits); s++ {
		greedy := ""
		if g := rep.Migration.Greedy[s]; g < len(rep.MigrationPages) {
			greedy = fmt.Sprintf("%d", rep.MigrationPages[g])
		}
		tb.AddRow(rows[s], int(rep.Migration.Visits[s]),
			int(rep.Migration.Explorations[s]), greedy,
			rep.Migration.MeanReward[s])
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, tb.Render())
	return nil
}

// stateLabels names the agent's states: K+1 access-ratio bins plus the
// dedicated no-sample state, with the current state marked.
func stateLabels(rep core.QTableReport) []string {
	out := make([]string, rep.States)
	for s := range out {
		switch {
		case s == rep.NoSampleState:
			out[s] = "no-smp"
		default:
			out[s] = fmt.Sprintf("s%d", s)
		}
		if s == rep.CurrentState {
			out[s] = ">" + out[s]
		}
	}
	return out
}

// damonHeatmap replays the workload through a machine watched by the
// DAMON region monitor (one probe page per region per sampling step) and
// prints the estimated heat over time — the monitoring approach of the
// paper's Figure 10 source, with overhead bounded by the region count
// rather than the footprint.
func damonHeatmap(w workloads.Workload, prof workloads.Profile, rows, cols int) {
	mcfg := memsim.DefaultConfig(w.FootprintBytes(), w.FootprintBytes()/2, prof.PageSize())
	m := memsim.NewMachine(mcfg)
	cfg := damon.DefaultConfig()
	cfg.MaxRegions = 256
	mon := damon.NewMonitor(m, cfg)

	heat := make([][]float64, rows)
	for i := range heat {
		heat[i] = make([]float64, cols)
	}
	// Sampling cadence: one DAMON sampling step per chunk of accesses.
	const accessesPerSample = 2048
	var processed, total int64
	var snapshots int
	var batches [][]workloads.Access
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		cp := make([]workloads.Access, len(b))
		copy(cp, b)
		batches = append(batches, cp)
		total += int64(len(b))
	}
	col := 0
	for _, b := range batches {
		for _, a := range b {
			m.Access(a.Addr, a.Write)
			processed++
			if processed%accessesPerSample == 0 {
				mon.Sample()
				col = int(processed * int64(cols) / total)
				if col >= cols {
					col = cols - 1
				}
				snap := mon.Snapshot(rows)
				for r := 0; r < rows; r++ {
					heat[r][col] += snap[r]
				}
				snapshots++
			}
		}
	}
	fmt.Printf("%s DAMON-estimated footprint (%d regions, %d aggregations, %d samples)\n\n",
		w.Name(), len(mon.Regions()), mon.Aggregations(), snapshots)
	for r := 0; r < rows; r++ {
		rowTot := 0.0
		for _, v := range heat[r] {
			rowTot += v
		}
		fmt.Printf("%3d | %s | %8.0f\n", r, textplot.Sparkline(heat[r]), rowTot)
	}
}
