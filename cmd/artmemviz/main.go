// Command artmemviz dumps DAMON-style access-footprint heatmaps (the
// data behind the paper's Figures 1 and 10): access density per
// address-space region per time slice, for any workload in the registry.
//
// Usage:
//
//	artmemviz -workload CC
//	artmemviz -workload S2 -rows 32 -cols 16
//	artmemviz -workload SSSP -csv > sssp.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"artmem/internal/damon"
	"artmem/internal/memsim"
	"artmem/internal/textplot"
	"artmem/internal/workloads"
)

func main() {
	var (
		name     = flag.String("workload", "CC", "workload name (see workloads registry: S1..S4, YCSB, CC, ...)")
		rows     = flag.Int("rows", 24, "address-space bins")
		cols     = flag.Int("cols", 12, "time bins")
		div      = flag.Int64("div", 128, "footprint divisor")
		acc      = flag.Int64("accesses", 4_000_000, "trace length")
		csv      = flag.Bool("csv", false, "emit raw counts as CSV instead of sparklines")
		useDamon = flag.Bool("damon", false, "estimate the footprint with the DAMON region monitor instead of exact counting")
	)
	flag.Parse()

	spec, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "artmemviz:", err)
		os.Exit(1)
	}
	prof := workloads.Profile{Div: *div, PatternAccesses: *acc, AppAccesses: *acc, Seed: 1}
	w := spec.New(prof)
	defer w.Close()

	if *useDamon {
		damonHeatmap(w, prof, *rows, *cols)
		return
	}

	foot := uint64(w.FootprintBytes())
	counts := make([][]float64, *rows)
	for i := range counts {
		counts[i] = make([]float64, *cols)
	}
	// First drain the trace to learn its length, buffering addresses
	// compactly as region indices.
	var regionOf []uint8
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			r := int(a.Addr * uint64(*rows) / foot)
			if r >= *rows {
				r = *rows - 1
			}
			regionOf = append(regionOf, uint8(r))
		}
	}
	total := len(regionOf)
	if total == 0 {
		fmt.Fprintln(os.Stderr, "artmemviz: empty trace")
		os.Exit(1)
	}
	for i, r := range regionOf {
		c := i * *cols / total
		if c >= *cols {
			c = *cols - 1
		}
		counts[r][c]++
	}

	if *csv {
		fmt.Printf("region")
		for c := 0; c < *cols; c++ {
			fmt.Printf(",t%d", c)
		}
		fmt.Println()
		for r := 0; r < *rows; r++ {
			fmt.Printf("%d", r)
			for c := 0; c < *cols; c++ {
				fmt.Printf(",%.0f", counts[r][c])
			}
			fmt.Println()
		}
		return
	}

	fmt.Printf("%s access footprint (%d MB, %d accesses)\n",
		w.Name(), foot>>20, total)
	fmt.Printf("rows: address space in %d bins (top = low addresses); cols: run time in %d slices\n\n",
		*rows, *cols)
	for r := 0; r < *rows; r++ {
		rowTot := 0.0
		for _, v := range counts[r] {
			rowTot += v
		}
		fmt.Printf("%3d | %s | %5.1f%%\n", r, textplot.Sparkline(counts[r]),
			100*rowTot/float64(total))
	}
}

// damonHeatmap replays the workload through a machine watched by the
// DAMON region monitor (one probe page per region per sampling step) and
// prints the estimated heat over time — the monitoring approach of the
// paper's Figure 10 source, with overhead bounded by the region count
// rather than the footprint.
func damonHeatmap(w workloads.Workload, prof workloads.Profile, rows, cols int) {
	mcfg := memsim.DefaultConfig(w.FootprintBytes(), w.FootprintBytes()/2, prof.PageSize())
	m := memsim.NewMachine(mcfg)
	cfg := damon.DefaultConfig()
	cfg.MaxRegions = 256
	mon := damon.NewMonitor(m, cfg)

	heat := make([][]float64, rows)
	for i := range heat {
		heat[i] = make([]float64, cols)
	}
	// Sampling cadence: one DAMON sampling step per chunk of accesses.
	const accessesPerSample = 2048
	var processed, total int64
	var snapshots int
	var batches [][]workloads.Access
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		cp := make([]workloads.Access, len(b))
		copy(cp, b)
		batches = append(batches, cp)
		total += int64(len(b))
	}
	col := 0
	for _, b := range batches {
		for _, a := range b {
			m.Access(a.Addr, a.Write)
			processed++
			if processed%accessesPerSample == 0 {
				mon.Sample()
				col = int(processed * int64(cols) / total)
				if col >= cols {
					col = cols - 1
				}
				snap := mon.Snapshot(rows)
				for r := 0; r < rows; r++ {
					heat[r][col] += snap[r]
				}
				snapshots++
			}
		}
	}
	fmt.Printf("%s DAMON-estimated footprint (%d regions, %d aggregations, %d samples)\n\n",
		w.Name(), len(mon.Regions()), mon.Aggregations(), snapshots)
	for r := 0; r < rows; r++ {
		rowTot := 0.0
		for _, v := range heat[r] {
			rowTot += v
		}
		fmt.Printf("%3d | %s | %8.0f\n", r, textplot.Sparkline(heat[r]), rowTot)
	}
}
