// Command artdiff compares benchmark results and reports cells whose
// values moved by more than a threshold — the regression tracker for
// the reproduction itself. It has two modes:
//
// Directory mode diffs two result directories of rendered text tables
// (as written by `go test -bench .` into bench_results/):
//
//	go test -bench . -benchtime 1x            # baseline
//	mv bench_results bench_results.old
//	...change a model...
//	go test -bench . -benchtime 1x            # new results
//	artdiff -threshold 0.05 bench_results.old bench_results
//
// Bench mode diffs two BENCH_<revision>.json files written by artbench
// and exits non-zero when a regression (an above-threshold change, or a
// benchmark that disappeared) is found — the CI regression gate behind
// `make benchdiff`:
//
//	artdiff bench -threshold 0.10 bench_results/BENCH_baseline.json \
//	    bench_results/BENCH_$(git rev-parse --short=12 HEAD).json
//
// Benchmarks present only in the new file are reported but do not fail
// the gate, so adding an experiment does not require regenerating the
// baseline in the same change.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"artmem/internal/benchdiff"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		benchMode(os.Args[2:])
		return
	}
	threshold := flag.Float64("threshold", 0.05, "report cells changing by more than this fraction")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: artdiff [-threshold F] <old-dir> <new-dir>")
		fmt.Fprintln(os.Stderr, "       artdiff bench [-threshold F] <old.json> <new.json>")
		os.Exit(2)
	}
	oldDir, newDir := flag.Arg(0), flag.Arg(1)

	names := map[string]bool{}
	for _, dir := range []string{oldDir, newDir} {
		files, err := filepath.Glob(filepath.Join(dir, "*.txt"))
		if err != nil {
			fatal(err)
		}
		for _, f := range files {
			names[filepath.Base(f)] = true
		}
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no *.txt result files under %s or %s", oldDir, newDir))
	}

	totalDeltas := 0
	for _, name := range sortedSet(names) {
		oldTables, okOld := parseFile(filepath.Join(oldDir, name))
		newTables, okNew := parseFile(filepath.Join(newDir, name))
		switch {
		case !okOld:
			fmt.Printf("%s: only in %s\n", name, newDir)
			continue
		case !okNew:
			fmt.Printf("%s: only in %s\n", name, oldDir)
			continue
		}
		deltas := benchdiff.Compare(oldTables, newTables, *threshold)
		if len(deltas) == 0 {
			continue
		}
		totalDeltas += len(deltas)
		fmt.Printf("--- %s ---\n%s", name, benchdiff.Format(deltas))
	}
	if totalDeltas == 0 {
		fmt.Printf("no cells changed by more than %.0f%%\n", *threshold*100)
	}
}

// benchMode implements `artdiff bench`: compare two BENCH JSON files
// and exit 1 on regressions.
func benchMode(args []string) {
	fs := flag.NewFlagSet("artdiff bench", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.10, "fail on cells changing by more than this fraction")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: artdiff bench [-threshold F] <old.json> <new.json>")
		os.Exit(2)
	}
	oldTables := parseBenchFile(fs.Arg(0))
	newTables := parseBenchFile(fs.Arg(1))

	deltas := benchdiff.Compare(oldTables, newTables, *threshold)
	regs := benchdiff.Regressions(deltas)
	if len(deltas) == 0 {
		fmt.Printf("benchdiff: OK — no cells changed by more than %.0f%% (%d tables compared)\n",
			*threshold*100, len(oldTables))
		return
	}
	fmt.Print(benchdiff.Format(deltas))
	if len(regs) == 0 {
		fmt.Printf("benchdiff: OK — only additions, no regressions above %.0f%%\n", *threshold*100)
		return
	}
	fmt.Fprintf(os.Stderr, "benchdiff: FAIL — %d regression(s) above %.0f%% (threshold) vs %s\n",
		len(regs), *threshold*100, fs.Arg(0))
	os.Exit(1)
}

func parseBenchFile(path string) []benchdiff.Table {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tables, err := benchdiff.ParseBenchJSON(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if len(tables) == 0 {
		fatal(fmt.Errorf("%s: no result tables", path))
	}
	return tables
}

func parseFile(path string) ([]benchdiff.Table, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	tables, err := benchdiff.Parse(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return tables, true
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Simple insertion sort keeps this dependency-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "artdiff:", err)
	os.Exit(1)
}
