// Command artdiff compares two benchmark-result directories (as written
// by `go test -bench .` into bench_results/) and reports cells whose
// values moved by more than a threshold — the regression tracker for
// the reproduction itself.
//
// Usage:
//
//	go test -bench . -benchtime 1x            # baseline
//	mv bench_results bench_results.old
//	...change a model...
//	go test -bench . -benchtime 1x            # new results
//	artdiff -threshold 0.05 bench_results.old bench_results
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"artmem/internal/benchdiff"
)

func main() {
	threshold := flag.Float64("threshold", 0.05, "report cells changing by more than this fraction")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: artdiff [-threshold F] <old-dir> <new-dir>")
		os.Exit(2)
	}
	oldDir, newDir := flag.Arg(0), flag.Arg(1)

	names := map[string]bool{}
	for _, dir := range []string{oldDir, newDir} {
		files, err := filepath.Glob(filepath.Join(dir, "*.txt"))
		if err != nil {
			fatal(err)
		}
		for _, f := range files {
			names[filepath.Base(f)] = true
		}
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no *.txt result files under %s or %s", oldDir, newDir))
	}

	totalDeltas := 0
	for _, name := range sortedSet(names) {
		oldTables, okOld := parseFile(filepath.Join(oldDir, name))
		newTables, okNew := parseFile(filepath.Join(newDir, name))
		switch {
		case !okOld:
			fmt.Printf("%s: only in %s\n", name, newDir)
			continue
		case !okNew:
			fmt.Printf("%s: only in %s\n", name, oldDir)
			continue
		}
		deltas := benchdiff.Compare(oldTables, newTables, *threshold)
		if len(deltas) == 0 {
			continue
		}
		totalDeltas += len(deltas)
		fmt.Printf("--- %s ---\n%s", name, benchdiff.Format(deltas))
	}
	if totalDeltas == 0 {
		fmt.Printf("no cells changed by more than %.0f%%\n", *threshold*100)
	}
}

func parseFile(path string) ([]benchdiff.Table, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	tables, err := benchdiff.Parse(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return tables, true
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Simple insertion sort keeps this dependency-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "artdiff:", err)
	os.Exit(1)
}
