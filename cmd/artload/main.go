// Command artload is the load generator for artmemd's batched
// streaming access API (-serve): it replays internal/workloads traces
// from N concurrent clients, each streaming windowed batches over the
// serve wire protocol, and reports throughput and end-to-end batch
// latency percentiles.
//
// Against a live daemon:
//
//	artmemd -workload YCSB -serve 127.0.0.1:7700
//	artload -addr 127.0.0.1:7700 -clients 64 -workload YCSB
//
// Multi-tenant (clients round-robin the first -tenants slots):
//
//	artmemd -tenants SSSP,XSBench -serve 127.0.0.1:7700
//	artload -addr 127.0.0.1:7700 -clients 8 -tenants 2
//
// Self-contained smoke test (in-process server, no daemon):
//
//	artload -loopback -clients 8
//
// The exit status is non-zero if any batch was lost (sent but never
// acked or rejected) or any client failed — the zero-loss serving
// contract is what CI's loadtest step pins.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"artmem/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7700", "serve API address of a running artmemd")
		loopback = flag.Bool("loopback", false, "start an in-process single-tenant server and drive that instead of -addr")
		clients  = flag.Int("clients", 8, "concurrent client streams")
		workload = flag.String("workload", "YCSB", "workload trace each client replays (per-client decorrelated seeds)")
		div      = flag.Int64("div", 256, "workload footprint divisor")
		accesses = flag.Int64("accesses", 200_000, "accesses per client")
		batch    = flag.Int("batch", 4096, "records per batch frame")
		window   = flag.Int("window", 8, "in-flight batches per client")
		seed     = flag.Uint64("seed", 1, "base trace seed")
		tenant   = flag.Int("tenant", 0, "tenant slot to drive (multi-tenant daemons)")
		tenants  = flag.Int("tenants", 0, "round-robin clients over this many tenant slots (overrides -tenant; 0 = off)")
		retry    = flag.Bool("retry", false, "retry batches shed by backpressure until applied")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-client idle timeout waiting for server frames")
		queue    = flag.Int("queue", 0, "loopback server queue bound in records (0 = server default)")
	)
	flag.Parse()

	cfg := serve.LoadConfig{
		Addr:        *addr,
		Tenant:      uint32(*tenant),
		Clients:     *clients,
		Workload:    *workload,
		Div:         *div,
		Accesses:    *accesses,
		Batch:       *batch,
		Window:      *window,
		Seed:        *seed,
		Retry:       *retry,
		IdleTimeout: *timeout,
	}
	if *tenants > 0 {
		n := uint32(*tenants)
		cfg.TenantOf = func(client int) uint32 { return uint32(client) % n }
	}

	if *loopback {
		lb, err := serve.StartLoopback(*workload, *div, *queue)
		if err != nil {
			fatal(err)
		}
		defer lb.Stop()
		cfg.Addr = lb.Addr()
		fmt.Printf("artload: loopback server on %s (%s, div %d)\n", lb.Addr(), *workload, *div)
	}

	fmt.Printf("artload: %d clients x %d accesses of %s against %s (batch %d, window %d)\n",
		*clients, *accesses, *workload, cfg.Addr, *batch, *window)
	rep, err := serve.Run(cfg)
	fmt.Println(rep)
	if err != nil {
		fatal(err)
	}
	if rep.Lost != 0 {
		fatal(fmt.Errorf("%d batches lost (sent but never resolved)", rep.Lost))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "artload:", err)
	os.Exit(1)
}
