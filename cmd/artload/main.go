// Command artload is the load generator for artmemd's batched
// streaming access API (-serve): it replays internal/workloads traces
// from N concurrent clients, each streaming windowed batches over the
// serve wire protocol, and reports throughput and end-to-end batch
// latency percentiles.
//
// Against a live daemon:
//
//	artmemd -workload YCSB -serve 127.0.0.1:7700
//	artload -addr 127.0.0.1:7700 -clients 64 -workload YCSB
//
// Multi-tenant (clients round-robin the first -tenants slots):
//
//	artmemd -tenants SSSP,XSBench -serve 127.0.0.1:7700
//	artload -addr 127.0.0.1:7700 -clients 8 -tenants 2
//
// Self-contained smoke test (in-process server, no daemon):
//
//	artload -loopback -clients 8
//
// With -json the run ledger is printed as one JSON object (all
// progress chatter moves to stderr), so CI and scripts consume the
// outcome without scraping text. Loopback runs can additionally record
// latency spans (-spans N) and drain the observability surfaces to
// files (-spans-out, -slo-out) — the same JSONL and JSON payloads a
// daemon serves at /spans and /slo.
//
// The exit status is non-zero if any batch was lost (sent but never
// acked or rejected) or any client failed — the zero-loss serving
// contract is what CI's loadtest step pins.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"artmem/internal/serve"
)

// ledger is the -json output: the full load report plus the run's
// identifying parameters, one object on stdout.
type ledger struct {
	Addr     string `json:"addr"`
	Loopback bool   `json:"loopback"`
	Workload string `json:"workload"`
	Batch    int    `json:"batch"`
	Window   int    `json:"window"`
	Seed     uint64 `json:"seed"`
	serve.Report
	Error string `json:"error,omitempty"`
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7700", "serve API address of a running artmemd")
		loopback = flag.Bool("loopback", false, "start an in-process single-tenant server and drive that instead of -addr")
		clients  = flag.Int("clients", 8, "concurrent client streams")
		workload = flag.String("workload", "YCSB", "workload trace each client replays (per-client decorrelated seeds)")
		div      = flag.Int64("div", 256, "workload footprint divisor")
		accesses = flag.Int64("accesses", 200_000, "accesses per client")
		batch    = flag.Int("batch", 4096, "records per batch frame")
		window   = flag.Int("window", 8, "in-flight batches per client")
		seed     = flag.Uint64("seed", 1, "base trace seed")
		tenant   = flag.Int("tenant", 0, "tenant slot to drive (multi-tenant daemons)")
		tenants  = flag.Int("tenants", 0, "round-robin clients over this many tenant slots (overrides -tenant; 0 = off)")
		retry    = flag.Bool("retry", false, "retry batches shed by backpressure until applied")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-client idle timeout waiting for server frames")
		queue    = flag.Int("queue", 0, "loopback server queue bound in records (0 = server default)")
		spanRate = flag.Int("spans", 0, "loopback latency span sampling, 1-in-N accepted batches (0 = off; enables the stages line and -spans-out)")
		spansOut = flag.String("spans-out", "", "write the loopback span journal drain (JSONL, the /spans payload) to this file")
		sloOut   = flag.String("slo-out", "", "write the loopback SLO burn-rate report (JSON, the /slo payload) to this file")
		jsonOut  = flag.Bool("json", false, "print the run ledger as one JSON object on stdout (progress goes to stderr)")
	)
	flag.Parse()

	// In -json mode stdout carries exactly one JSON object; everything
	// conversational goes to stderr.
	chat := os.Stdout
	if *jsonOut {
		chat = os.Stderr
	}

	cfg := serve.LoadConfig{
		Addr:        *addr,
		Tenant:      uint32(*tenant),
		Clients:     *clients,
		Workload:    *workload,
		Div:         *div,
		Accesses:    *accesses,
		Batch:       *batch,
		Window:      *window,
		Seed:        *seed,
		Retry:       *retry,
		IdleTimeout: *timeout,
	}
	if *tenants > 0 {
		n := uint32(*tenants)
		cfg.TenantOf = func(client int) uint32 { return uint32(client) % n }
	}

	var lb *serve.Loopback
	if *loopback {
		var err error
		lb, err = serve.StartLoopbackCfg(serve.LoopbackConfig{
			Workload:     *workload,
			Div:          *div,
			QueueRecords: *queue,
			SpanRate:     *spanRate,
		})
		if err != nil {
			fatal(err)
		}
		defer lb.Stop()
		cfg.Addr = lb.Addr()
		fmt.Fprintf(chat, "artload: loopback server on %s (%s, div %d)\n", lb.Addr(), *workload, *div)
	} else if *spanRate > 0 || *spansOut != "" || *sloOut != "" {
		fatal(fmt.Errorf("-spans, -spans-out, and -slo-out need -loopback (drain a daemon's /spans and /slo over HTTP instead)"))
	}

	fmt.Fprintf(chat, "artload: %d clients x %d accesses of %s against %s (batch %d, window %d)\n",
		*clients, *accesses, *workload, cfg.Addr, *batch, *window)
	rep, err := serve.Run(cfg)

	if lb != nil {
		if lb.Spans != nil {
			rep.Stages = serve.StageBreakdownOf(lb.Spans.Spans(0))
		}
		if *spansOut != "" {
			if werr := writeFile(*spansOut, func(f *os.File) error {
				if lb.Spans == nil {
					return fmt.Errorf("span journal off (set -spans N)")
				}
				return lb.Spans.WriteJSONL(f, 0, -1)
			}); werr != nil {
				fatal(fmt.Errorf("-spans-out: %w", werr))
			}
		}
		if *sloOut != "" {
			if werr := writeFile(*sloOut, func(f *os.File) error {
				return lb.SLO.WriteJSON(f)
			}); werr != nil {
				fatal(fmt.Errorf("-slo-out: %w", werr))
			}
		}
	}

	if *jsonOut {
		led := ledger{
			Addr:     cfg.Addr,
			Loopback: *loopback,
			Workload: *workload,
			Batch:    *batch,
			Window:   *window,
			Seed:     *seed,
			Report:   rep,
		}
		if err != nil {
			led.Error = err.Error()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if eerr := enc.Encode(led); eerr != nil {
			fatal(eerr)
		}
	} else {
		fmt.Println(rep)
	}
	if err != nil {
		fatal(err)
	}
	if rep.Lost != 0 {
		fatal(fmt.Errorf("%d batches lost (sent but never resolved)", rep.Lost))
	}
}

// writeFile creates path and streams fill into it, returning the first
// error from create, fill, or close.
func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "artload:", err)
	os.Exit(1)
}
