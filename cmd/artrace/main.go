// Command artrace records workload access traces to disk and replays
// them through the simulator — capture a trace once, then evaluate every
// policy against the byte-identical access stream.
//
// Usage:
//
//	artrace record -workload CC -o cc.trace
//	artrace info cc.trace
//	artrace replay -policy ArtMem -ratio 1:4 cc.trace
//	artrace replay -decisions cc.trace        # print the RL decision timeline
//
// The pagetrace subcommand reconstructs per-page lifecycle timelines
// from the journal served by a live daemon's /pagetrace endpoint (or a
// saved copy of it):
//
//	artrace pagetrace http://localhost:8080/pagetrace   # list traced pages
//	artrace pagetrace -page 23 journal.jsonl            # one page's timeline
//
// The spans subcommand renders serving latency attribution from a span
// journal — a live daemon's /spans endpoint or a drain saved by
// artload -spans-out:
//
//	artrace spans http://localhost:7600/spans       # per-tenant stage summary
//	artrace spans -raw -n 20 spans.jsonl            # the last 20 spans verbatim
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/policies"
	"artmem/internal/telemetry"
	"artmem/internal/trace"
	"artmem/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "pagetrace":
		pagetrace(os.Args[2:])
	case "spans":
		spansCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  artrace record -workload <name> [-div N] [-accesses N] -o <file>
  artrace info <file>
  artrace replay [-policy P] [-ratio F:S] [-pagesize N] [-decisions] <file>
  artrace pagetrace [-page N] [-n M] <journal.jsonl | http://host/pagetrace>
  artrace spans [-tenant N] [-n M] [-raw] <spans.jsonl | http://host/spans>`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "artrace:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("workload", "S1", "workload to record")
	div := fs.Int64("div", 128, "footprint divisor")
	acc := fs.Int64("accesses", 4_000_000, "access budget")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		usage()
	}
	spec, err := workloads.ByName(*name)
	if err != nil {
		fatal(err)
	}
	prof := workloads.Profile{Div: *div, PatternAccesses: *acc, AppAccesses: *acc, Seed: 1}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	n, err := trace.Record(f, spec.New(prof))
	if err != nil {
		fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("recorded %d accesses of %s into %s (%.1f MB, %.2f bytes/access)\n",
		n, *name, *out, float64(st.Size())/(1<<20), float64(st.Size())/float64(n))
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	var n, writes int64
	for {
		b, ok := r.Next()
		if !ok {
			break
		}
		for _, a := range b {
			if a.Write {
				writes++
			}
		}
		n += int64(len(b))
	}
	if r.Err() != nil {
		fatal(r.Err())
	}
	h := r.Header()
	fmt.Printf("workload   %s\n", h.Name)
	fmt.Printf("footprint  %d MB\n", h.Footprint>>20)
	fmt.Printf("accesses   %d (%.1f%% writes)\n", n, 100*float64(writes)/float64(n))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	policy := fs.String("policy", "ArtMem", "tiering policy")
	ratio := fs.String("ratio", "1:1", "DRAM:PM ratio")
	pageSize := fs.Int64("pagesize", 16<<10, "migration page size (bytes)")
	decisions := fs.Bool("decisions", false, "print the RL decision timeline after the replay (ArtMem only)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	var pol policies.Policy
	var tel *telemetry.Set
	if strings.EqualFold(*policy, "artmem") {
		art := core.New(core.Config{})
		if *decisions {
			tel = telemetry.NewSet()
			art.SetTelemetry(tel)
		}
		pol = art
	} else if *decisions {
		fatal(fmt.Errorf("-decisions needs the ArtMem policy, not %s", *policy))
	} else {
		fct, err := policies.ByName(*policy)
		if err != nil {
			fatal(err)
		}
		pol = fct.New()
	}
	var fast, slow int
	if _, err := fmt.Sscanf(*ratio, "%d:%d", &fast, &slow); err != nil {
		fatal(fmt.Errorf("bad -ratio %q: %v", *ratio, err))
	}
	res := harness.Run(r, pol, harness.Config{
		PageSize: *pageSize,
		Ratio:    harness.Ratio{Fast: fast, Slow: slow},
	})
	if r.Err() != nil {
		fatal(r.Err())
	}
	fmt.Printf("%s under %s @ %s: exec %.1f ms, DRAM ratio %.3f, %d migrations\n",
		res.Workload, res.Policy, res.Ratio,
		float64(res.ExecNs)/1e6, res.DRAMRatio, res.Migrations)
	if tel != nil {
		printDecisions(tel)
	}
}

// pagetrace reads a page-lifecycle journal (JSONL, as served by
// /pagetrace) from a file or URL and reconstructs timelines. Without
// -page it lists every traced page with its event mix so the reader can
// pick a page worth following; with -page it prints that page's full
// lifecycle, one event per line in journal order.
func pagetrace(args []string) {
	fs := flag.NewFlagSet("pagetrace", flag.ExitOnError)
	page := fs.Int64("page", -1, "reconstruct this page's timeline (default: list pages)")
	n := fs.Int("n", 0, "read only the last N events (0 = all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	events, err := readPageEvents(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *n > 0 && len(events) > *n {
		events = events[len(events)-*n:]
	}
	if len(events) == 0 {
		fmt.Println("no page events (is tracing enabled? start artmemd with -pagetrace)")
		return
	}
	if *page >= 0 {
		printTimeline(uint64(*page), events)
		return
	}
	listPages(events)
}

// openSource opens a journal source: an http(s) URL (a live daemon
// endpoint) or a local file (a saved drain).
func openSource(src string) (io.ReadCloser, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			resp.Body.Close()
			return nil, fmt.Errorf("%s: %s: %s", src, resp.Status,
				strings.TrimSpace(string(body)))
		}
		return resp.Body, nil
	}
	return os.Open(src)
}

func readPageEvents(src string) ([]telemetry.PageEvent, error) {
	r, err := openSource(src)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var events []telemetry.PageEvent
	dec := json.NewDecoder(r)
	for {
		var e telemetry.PageEvent
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("%s: bad journal line after %d events: %w",
				src, len(events), err)
		}
		events = append(events, e)
	}
	return events, nil
}

// listPages summarises the journal per page: how many events of each
// kind, and where the page settled last.
func listPages(events []telemetry.PageEvent) {
	type pageSum struct {
		page            uint64
		total           int
		kinds           map[string]int
		lastTier        string
		firstNs, lastNs int64
	}
	byPage := map[uint64]*pageSum{}
	var order []uint64
	for _, e := range events {
		s := byPage[e.Page]
		if s == nil {
			s = &pageSum{page: e.Page, kinds: map[string]int{}, firstNs: e.TimeNs}
			byPage[e.Page] = s
			order = append(order, e.Page)
		}
		s.total++
		s.kinds[e.Kind]++
		s.lastNs = e.TimeNs
		switch {
		case e.Kind == telemetry.PageKindAlloc:
			s.lastTier = e.Tier
		case e.Kind == telemetry.PageKindMigration && e.Outcome == telemetry.OutcomeSettled:
			s.lastTier = e.To
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	fmt.Printf("%d events across %d traced pages\n\n", len(events), len(order))
	fmt.Println("    page  events  alloc  sample  lru  verdict  migration  tier      span_ms")
	for _, p := range order {
		s := byPage[p]
		tier := s.lastTier
		if tier == "" {
			tier = "?"
		}
		fmt.Printf("  %6d  %6d  %5d  %6d  %3d  %7d  %9d  %-8s  %7.2f\n",
			s.page, s.total,
			s.kinds[telemetry.PageKindAlloc], s.kinds[telemetry.PageKindSample],
			s.kinds[telemetry.PageKindLRU], s.kinds[telemetry.PageKindVerdict],
			s.kinds[telemetry.PageKindMigration], tier,
			float64(s.lastNs-s.firstNs)/1e6)
	}
	fmt.Println("\nrun `artrace pagetrace -page N <src>` for one page's full timeline")
}

// printTimeline renders one page's journal entries in order, formatting
// each kind with the fields that matter for it.
func printTimeline(page uint64, events []telemetry.PageEvent) {
	n := 0
	fmt.Printf("page %d lifecycle\n", page)
	fmt.Println("     seq   time_ms  kind       detail")
	for _, e := range events {
		if e.Page != page {
			continue
		}
		n++
		var detail string
		switch e.Kind {
		case telemetry.PageKindAlloc:
			detail = fmt.Sprintf("placed in %s", e.Tier)
		case telemetry.PageKindSample:
			detail = fmt.Sprintf("PEBS sample in %s (%s)", e.Tier, e.Outcome)
		case telemetry.PageKindLRU:
			detail = fmt.Sprintf("%s -> %s", orNone(e.From), orNone(e.To))
		case telemetry.PageKindVerdict:
			detail = fmt.Sprintf("%s: %s", e.Outcome, e.Reason)
		case telemetry.PageKindMigration:
			detail = fmt.Sprintf("%s -> %s: %s", orNone(e.From), orNone(e.To), e.Outcome)
			if e.Reason != "" {
				detail += " (" + e.Reason + ")"
			}
		default:
			detail = e.Outcome
		}
		fmt.Printf("  %6d  %8.2f  %-9s  %s\n",
			e.Seq, float64(e.TimeNs)/1e6, e.Kind, detail)
	}
	if n == 0 {
		fmt.Printf("  no events — page %d may not be in the sampled subset\n", page)
	}
}

func orNone(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// printDecisions renders the replay's decision trace as one line per
// event — the timeline the paper's Figure 10/11-style analyses read off
// (state, action, reward, threshold, migration outcome per period).
func printDecisions(tel *telemetry.Set) {
	events := tel.Trace.Events(0)
	if total := tel.Trace.Total(); total > uint64(len(events)) {
		fmt.Printf("decision trace: showing last %d of %d events (ring capacity)\n",
			len(events), total)
	}
	fmt.Println("     seq   time_ms  kind       state  reward  quota  thr   promoted  win f/s")
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindDecision:
			fmt.Printf("  %6d  %8.2f  %-9s  %5d  %6.2f  %5d  %3d   %8d  %d/%d\n",
				e.Seq, float64(e.TimeNs)/1e6, e.Kind, e.State, e.Reward,
				e.Quota, e.Threshold, e.Promoted, e.WinFast, e.WinSlow)
		default:
			fmt.Printf("  %6d  %8.2f  %-9s  %s\n",
				e.Seq, float64(e.TimeNs)/1e6, e.Kind, e.Detail)
		}
	}
}
