// Command artrace records workload access traces to disk and replays
// them through the simulator — capture a trace once, then evaluate every
// policy against the byte-identical access stream.
//
// Usage:
//
//	artrace record -workload CC -o cc.trace
//	artrace info cc.trace
//	artrace replay -policy ArtMem -ratio 1:4 cc.trace
//	artrace replay -decisions cc.trace        # print the RL decision timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/policies"
	"artmem/internal/telemetry"
	"artmem/internal/trace"
	"artmem/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  artrace record -workload <name> [-div N] [-accesses N] -o <file>
  artrace info <file>
  artrace replay [-policy P] [-ratio F:S] [-pagesize N] [-decisions] <file>`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "artrace:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("workload", "S1", "workload to record")
	div := fs.Int64("div", 128, "footprint divisor")
	acc := fs.Int64("accesses", 4_000_000, "access budget")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		usage()
	}
	spec, err := workloads.ByName(*name)
	if err != nil {
		fatal(err)
	}
	prof := workloads.Profile{Div: *div, PatternAccesses: *acc, AppAccesses: *acc, Seed: 1}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	n, err := trace.Record(f, spec.New(prof))
	if err != nil {
		fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("recorded %d accesses of %s into %s (%.1f MB, %.2f bytes/access)\n",
		n, *name, *out, float64(st.Size())/(1<<20), float64(st.Size())/float64(n))
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	var n, writes int64
	for {
		b, ok := r.Next()
		if !ok {
			break
		}
		for _, a := range b {
			if a.Write {
				writes++
			}
		}
		n += int64(len(b))
	}
	if r.Err() != nil {
		fatal(r.Err())
	}
	h := r.Header()
	fmt.Printf("workload   %s\n", h.Name)
	fmt.Printf("footprint  %d MB\n", h.Footprint>>20)
	fmt.Printf("accesses   %d (%.1f%% writes)\n", n, 100*float64(writes)/float64(n))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	policy := fs.String("policy", "ArtMem", "tiering policy")
	ratio := fs.String("ratio", "1:1", "DRAM:PM ratio")
	pageSize := fs.Int64("pagesize", 16<<10, "migration page size (bytes)")
	decisions := fs.Bool("decisions", false, "print the RL decision timeline after the replay (ArtMem only)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	var pol policies.Policy
	var tel *telemetry.Set
	if strings.EqualFold(*policy, "artmem") {
		art := core.New(core.Config{})
		if *decisions {
			tel = telemetry.NewSet()
			art.SetTelemetry(tel)
		}
		pol = art
	} else if *decisions {
		fatal(fmt.Errorf("-decisions needs the ArtMem policy, not %s", *policy))
	} else {
		fct, err := policies.ByName(*policy)
		if err != nil {
			fatal(err)
		}
		pol = fct.New()
	}
	var fast, slow int
	if _, err := fmt.Sscanf(*ratio, "%d:%d", &fast, &slow); err != nil {
		fatal(fmt.Errorf("bad -ratio %q: %v", *ratio, err))
	}
	res := harness.Run(r, pol, harness.Config{
		PageSize: *pageSize,
		Ratio:    harness.Ratio{Fast: fast, Slow: slow},
	})
	if r.Err() != nil {
		fatal(r.Err())
	}
	fmt.Printf("%s under %s @ %s: exec %.1f ms, DRAM ratio %.3f, %d migrations\n",
		res.Workload, res.Policy, res.Ratio,
		float64(res.ExecNs)/1e6, res.DRAMRatio, res.Migrations)
	if tel != nil {
		printDecisions(tel)
	}
}

// printDecisions renders the replay's decision trace as one line per
// event — the timeline the paper's Figure 10/11-style analyses read off
// (state, action, reward, threshold, migration outcome per period).
func printDecisions(tel *telemetry.Set) {
	events := tel.Trace.Events(0)
	if total := tel.Trace.Total(); total > uint64(len(events)) {
		fmt.Printf("decision trace: showing last %d of %d events (ring capacity)\n",
			len(events), total)
	}
	fmt.Println("     seq   time_ms  kind       state  reward  quota  thr   promoted  win f/s")
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindDecision:
			fmt.Printf("  %6d  %8.2f  %-9s  %5d  %6.2f  %5d  %3d   %8d  %d/%d\n",
				e.Seq, float64(e.TimeNs)/1e6, e.Kind, e.State, e.Reward,
				e.Quota, e.Threshold, e.Promoted, e.WinFast, e.WinSlow)
		default:
			fmt.Printf("  %6d  %8.2f  %-9s  %s\n",
				e.Seq, float64(e.TimeNs)/1e6, e.Kind, e.Detail)
		}
	}
}
