package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"

	"artmem/internal/telemetry"
)

// spans reads a latency span journal (JSONL, as served by a daemon's
// /spans endpoint or saved by artload -spans-out) from a file or URL
// and renders stage attribution: per-tenant averages for every
// pipeline stage plus end-to-end percentiles. With -raw each span is
// printed in journal order instead.
func spansCmd(args []string) {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	tenant := fs.Int("tenant", -1, "only this tenant slot (default: all)")
	n := fs.Int("n", 0, "read only the last N spans (0 = all)")
	raw := fs.Bool("raw", false, "print every span instead of the summary")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	spans, err := readSpans(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *tenant >= 0 {
		kept := spans[:0]
		for _, s := range spans {
			if s.Tenant == *tenant {
				kept = append(kept, s)
			}
		}
		spans = kept
	}
	if *n > 0 && len(spans) > *n {
		spans = spans[len(spans)-*n:]
	}
	if len(spans) == 0 {
		fmt.Println("no spans (is sampling enabled? start artmemd with -serve and -spans N)")
		return
	}
	if *raw {
		printSpans(spans)
		return
	}
	summarizeSpans(spans)
}

func readSpans(src string) ([]telemetry.Span, error) {
	r, err := openSource(src)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var spans []telemetry.Span
	dec := json.NewDecoder(r)
	for {
		var s telemetry.Span
		if err := dec.Decode(&s); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("%s: bad journal line after %d spans: %w",
				src, len(spans), err)
		}
		spans = append(spans, s)
	}
	return spans, nil
}

// summarizeSpans prints one row per tenant (plus a total row when more
// than one tenant appears): span count, per-stage averages, and exact
// end-to-end percentiles.
func summarizeSpans(spans []telemetry.Span) {
	type agg struct {
		n, rejected                                int64
		decode, queue, stall, coalesce, apply, ack int64
		totals                                     []int64
	}
	accumulate := func(a *agg, s telemetry.Span) {
		a.n++
		if s.Outcome == telemetry.SpanRejected {
			a.rejected++
		}
		a.decode += s.DecodeNs
		a.queue += s.QueueNs
		a.stall += s.StallNs
		a.coalesce += s.CoalesceNs
		a.apply += s.ApplyNs
		a.ack += s.AckNs
		a.totals = append(a.totals, s.TotalNs())
	}
	byTenant := map[int]*agg{}
	var order []int
	total := &agg{}
	for _, s := range spans {
		a := byTenant[s.Tenant]
		if a == nil {
			a = &agg{}
			byTenant[s.Tenant] = a
			order = append(order, s.Tenant)
		}
		accumulate(a, s)
		accumulate(total, s)
	}
	sort.Ints(order)

	fmt.Printf("%d spans, %d tenants\n\n", len(spans), len(order))
	fmt.Println("  tenant   spans  rejected  avg_decode  avg_queue  avg_stall  avg_coalesce  avg_apply  avg_ack    p50_total  p99_total")
	row := func(label string, a *agg) {
		sort.Slice(a.totals, func(i, j int) bool { return a.totals[i] < a.totals[j] })
		p50 := a.totals[len(a.totals)/2]
		p99 := a.totals[len(a.totals)*99/100]
		fmt.Printf("  %6s  %6d  %8d  %10d  %9d  %9d  %12d  %9d  %7d  %11d  %9d\n",
			label, a.n, a.rejected,
			a.decode/a.n, a.queue/a.n, a.stall/a.n,
			a.coalesce/a.n, a.apply/a.n, a.ack/a.n, p50, p99)
	}
	for _, t := range order {
		row(fmt.Sprintf("%d", t), byTenant[t])
	}
	if len(order) > 1 {
		row("all", total)
	}
	fmt.Println("\nall values in nanoseconds; stall is migration interference attributed out of queue wait")
}

// printSpans renders each span as one line in journal order.
func printSpans(spans []telemetry.Span) {
	fmt.Println("     seq  tenant  client_seq  records  outcome   decode   queue   stall  coalesce   apply     ack   total")
	for _, s := range spans {
		fmt.Printf("  %6d  %6d  %10d  %7d  %-8s  %6d  %6d  %6d  %8d  %6d  %6d  %6d\n",
			s.Seq, s.Tenant, s.ClientSeq, s.Records, s.Outcome,
			s.DecodeNs, s.QueueNs, s.StallNs, s.CoalesceNs, s.ApplyNs, s.AckNs, s.TotalNs())
	}
}
