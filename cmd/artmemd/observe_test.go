package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"artmem/internal/telemetry"
)

// TestObserveEndpointsDisabled pins the degrade contract: the routes
// exist on every daemon, but with the features off they answer 404
// with a hint — what cmd/artmon and cmd/artrace key off to treat the
// feature as absent.
func TestObserveEndpointsDisabled(t *testing.T) {
	mux := http.NewServeMux()
	var obs serveObs // -serve off: no journal, no monitor
	obs.mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, path := range []string{"/spans", "/slo"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("disabled %s = %d, want 404", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "disabled") {
			t.Errorf("disabled %s body lacks a hint: %s", path, body)
		}
	}
}

// TestObserveEndpointsEnabled drives the mounted /spans and /slo
// handlers with the features on: JSONL and JSON payloads, parameter
// validation, and the journal contents round-tripping through HTTP.
func TestObserveEndpointsEnabled(t *testing.T) {
	obs := newServeObs(1, []telemetry.SLOObjective{telemetry.BatchSLO(), telemetry.BatchSLO()})
	obs.spans.Append(telemetry.Span{Seq: 1, Tenant: 0, QueueNs: 100, ApplyNs: 50, Outcome: telemetry.SpanAcked})
	obs.spans.Append(telemetry.Span{Seq: 2, Tenant: 1, QueueNs: 200, ApplyNs: 70, Outcome: telemetry.SpanAcked})
	obs.slo.Observe(0, 1000, true)
	mux := http.NewServeMux()
	obs.mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ct := get("/spans")
	if code != 200 || ct != "application/x-ndjson" {
		t.Fatalf("/spans = %d %q", code, ct)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("/spans returned %d lines, want 2:\n%s", len(lines), body)
	}
	var sp telemetry.Span
	if err := json.Unmarshal([]byte(lines[0]), &sp); err != nil || sp.Seq != 1 {
		t.Errorf("first span line = %+v (%v)", sp, err)
	}

	// Tenant filter and tail limit.
	if _, body, _ := get("/spans?tenant=1"); strings.Count(body, "\n") != 1 {
		t.Errorf("tenant filter body:\n%s", body)
	}
	if _, body, _ := get("/spans?n=1"); !strings.Contains(body, `"seq":2`) {
		t.Errorf("tail limit did not keep the newest span:\n%s", body)
	}
	for _, bad := range []string{"/spans?n=x", "/spans?n=-1", "/spans?tenant=x"} {
		if code, _, _ := get(bad); code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", bad, code)
		}
	}

	code, body, ct = get("/slo")
	if code != 200 || ct != "application/json" {
		t.Fatalf("/slo = %d %q", code, ct)
	}
	var rep telemetry.SLOReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/slo not a report: %v", err)
	}
	if len(rep.Tenants) != 2 || rep.Tenants[0].Windows[0].Batches != 1 {
		t.Errorf("/slo report = %+v", rep)
	}
}

// TestRegisterSetsSLOObjective checks runtime tenant registration
// rewires the slot's SLO objective to its class.
func TestRegisterSetsSLOObjective(t *testing.T) {
	rs := testReplaySet(t)
	obs := newServeObs(0, []telemetry.SLOObjective{
		telemetry.BatchSLO(), telemetry.BatchSLO(), telemetry.BatchSLO(),
	})
	rs.slo = obs.slo

	if w := post(t, rs.handleRegister, "/register?workload=SSSP&class=latency"); w.Code != http.StatusOK {
		t.Fatalf("register = %d: %s", w.Code, w.Body)
	}
	rep := obs.slo.Report()
	if rep.Tenants[1].Class != "latency" {
		t.Errorf("slot 1 objective class = %q, want latency", rep.Tenants[1].Class)
	}
	if rep.Tenants[0].Class != "batch" {
		t.Errorf("slot 0 objective class = %q, want batch (untouched)", rep.Tenants[0].Class)
	}
}
