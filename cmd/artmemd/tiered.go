package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"artmem/internal/core"
	"artmem/internal/memsim"
	"artmem/internal/telemetry"
	"artmem/internal/tier"
	"artmem/internal/workloads"
)

// tieredMain is the N-tier daemon mode (-tiers): the workload replays
// against a chain machine under core.TieredSystem — one RL agent per
// tier boundary — and the daemon serves the chain surface (/tiers,
// tier-labelled /metrics) that artmon's per-tier panel reads.
func tieredMain(chainSpec string, nonExclusive bool, budget int,
	name string, prof workloads.Profile, listen string, drain time.Duration,
	build telemetry.BuildInfo) {

	ch, err := tier.ParseChain(chainSpec)
	if err != nil {
		fatal(fmt.Errorf("bad -tiers %q: %w", chainSpec, err))
	}
	spec, err := workloads.ByName(name)
	if err != nil {
		fatal(err)
	}
	probe := spec.New(prof)
	foot := probe.FootprintBytes()
	probe.Close()
	mcfg := memsim.DefaultConfig(foot, 0, prof.PageSize())
	mcfg.Chain = ch
	mcfg.NonExclusive = nonExclusive

	sys := core.NewTieredSystem(core.TieredSystemConfig{
		Machine:           mcfg,
		Policy:            core.Config{},
		SamplingInterval:  time.Millisecond,
		MigrationInterval: 10 * time.Millisecond,
		BoundaryBudget:    budget,
	})
	telemetry.RegisterRuntimeMetrics(sys.Telemetry().Registry)
	sys.Start()
	defer sys.Stop()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	srv := &http.Server{
		Addr:              listen,
		Handler:           hardened(sys.ControlHandler()),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go protect("http", func() {
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			fatal(err)
		}
	})

	fmt.Printf("artmemd: build %s\n", build)
	fmt.Printf("artmemd: %d-tier chain %s (%d boundary agents, non-exclusive=%v)\n",
		len(ch), chainSpec, sys.NumBoundaries(), nonExclusive)
	fmt.Printf("artmemd: serving /tiers, /stats, /metrics, /healthz on http://%s\n", listen)
	fmt.Printf("artmemd: replaying %s (%d MB) in a loop; SIGINT/SIGTERM to stop\n",
		name, foot>>20)

	replays := 0
loop:
	for {
		if !tieredReplay(sys, spec, prof, stop) {
			break loop
		}
		replays++
		c := sys.Counters()
		fmt.Printf("replay %d done: DRAM ratio %.3f, %d migrations, %d shadow discards\n",
			replays, c.DRAMRatio(), c.Migrations, c.ShadowDiscards)
	}

	sys.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "artmemd: http drain: %v\n", err)
	}
	sys.Stop()
	fmt.Println("artmemd: stopped")
}

// tieredReplay mirrors replay for the chain runtime.
func tieredReplay(sys *core.TieredSystem, spec workloads.Spec, prof workloads.Profile,
	stop <-chan os.Signal) (again bool) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "artmemd: replay panicked (recovered): %v\n", r)
			again = true
		}
	}()
	w := spec.New(prof)
	defer w.Close()
	for {
		b, ok := w.Next()
		if !ok {
			return true
		}
		for _, a := range b {
			sys.Access(a.Addr, a.Write)
		}
		select {
		case <-stop:
			return false
		default:
		}
	}
}
