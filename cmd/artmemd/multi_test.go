package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"artmem/internal/core"
	"artmem/internal/memsim"
	"artmem/internal/tenancy"
	"artmem/internal/workloads"
)

// testReplaySet mirrors multiMain's setup at test scale: a 3-slot plane
// with one resident SSSP tenant, slot regions sized to the probe
// footprint.
func testReplaySet(t *testing.T) *replaySet {
	t.Helper()
	prof := workloads.Profile{Div: 4096, PatternAccesses: 20_000, AppAccesses: 20_000, Seed: 1}
	spec, err := workloads.ByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	probe := spec.New(prof)
	slotBytes := probe.FootprintBytes()
	probe.Close()
	if slotBytes < prof.PageSize() {
		slotBytes = prof.PageSize()
	}
	const capacity = 3
	foot := slotBytes * capacity
	mcfg := memsim.DefaultConfig(foot, foot/5, prof.PageSize())
	mcfg.CacheLines = 0
	sys := core.NewMultiSystem(core.MultiSystemConfig{
		Machine:           mcfg,
		Tenants:           []core.TenantConfig{{Name: "SSSP", Weight: 1, Policy: core.Config{Seed: 1}}},
		Capacity:          capacity,
		Arbiter:           tenancy.ArbiterConfig{Mode: tenancy.ModeStatic, Admission: true},
		SamplingInterval:  time.Millisecond,
		MigrationInterval: 10 * time.Millisecond,
	})
	rs := &replaySet{sys: sys, prof: prof, slotBytes: slotBytes}
	rs.entries = append(rs.entries, &replayEntry{slot: 0, name: "SSSP", spec: spec, w: spec.New(prof)})
	return rs
}

func post(t *testing.T, h http.HandlerFunc, url string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h(w, httptest.NewRequest(http.MethodPost, url, nil))
	return w
}

// TestReplaySetLifecycle drives the daemon's runtime tenant lifecycle:
// register fills free slots and a full plane maps to 503, deregister
// and crash reclaim them, and the replay loop keeps stepping across
// membership changes until the plane is empty.
func TestReplaySetLifecycle(t *testing.T) {
	rs := testReplaySet(t)
	for i := 0; i < 5; i++ {
		if !rs.step() {
			t.Fatal("step with a resident tenant reported no progress")
		}
	}

	// Method and parameter validation.
	w := httptest.NewRecorder()
	rs.handleRegister(w, httptest.NewRequest(http.MethodGet, "/register?workload=SSSP", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /register = %d, want 405", w.Code)
	}
	if w := post(t, rs.handleRegister, "/register?workload=nope"); w.Code != http.StatusBadRequest {
		t.Errorf("unknown workload = %d, want 400", w.Code)
	}
	if w := post(t, rs.handleRegister, "/register?workload=SSSP&class=gold"); w.Code != http.StatusBadRequest {
		t.Errorf("bad class = %d, want 400", w.Code)
	}
	if w := post(t, rs.handleDeregister, "/deregister?slot=zero"); w.Code != http.StatusBadRequest {
		t.Errorf("bad slot = %d, want 400", w.Code)
	}

	// Fill the plane, then overflow: admission control maps to 503.
	var reg struct {
		Slot int    `json:"slot"`
		Name string `json:"name"`
	}
	w = post(t, rs.handleRegister, "/register?workload=SSSP&name=late&class=latency")
	if w.Code != http.StatusOK {
		t.Fatalf("register = %d: %s", w.Code, w.Body)
	}
	if json.Unmarshal(w.Body.Bytes(), &reg); reg.Slot != 1 || reg.Name != "late" {
		t.Fatalf("register reply = %+v", reg)
	}
	if w := post(t, rs.handleRegister, "/register?workload=SSSP"); w.Code != http.StatusOK {
		t.Fatalf("third register = %d: %s", w.Code, w.Body)
	}
	if w := post(t, rs.handleRegister, "/register?workload=SSSP"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("register on full plane = %d, want 503", w.Code)
	}
	rep := rs.sys.TenantsReport()
	if rep.ActiveTenants != 3 {
		t.Fatalf("active tenants = %d, want 3", rep.ActiveTenants)
	}
	if rep.Tenants[1].SLOClass != "latency" {
		t.Errorf("slot 1 class = %q, want latency", rep.Tenants[1].SLOClass)
	}
	for i := 0; i < 7; i++ {
		rs.step() // all three tenants replay
	}

	// Graceful deregister, crash with handoff, then drain the original.
	if w := post(t, rs.handleDeregister, "/deregister?slot=1"); w.Code != http.StatusOK {
		t.Fatalf("deregister = %d: %s", w.Code, w.Body)
	}
	if w := post(t, rs.handleDeregister, "/deregister?slot=2&crash=1&handoff=0"); w.Code != http.StatusOK {
		t.Fatalf("crash = %d: %s", w.Code, w.Body)
	}
	if w := post(t, rs.handleDeregister, "/deregister?slot=2"); w.Code != http.StatusConflict {
		t.Errorf("deregister of empty slot = %d, want 409", w.Code)
	}
	if !rs.step() {
		t.Fatal("step lost the surviving tenant")
	}
	if w := post(t, rs.handleDeregister, "/deregister?slot=0"); w.Code != http.StatusOK {
		t.Fatalf("final deregister = %d: %s", w.Code, w.Body)
	}
	if rs.step() {
		t.Error("step on an empty plane reported progress")
	}
	rep = rs.sys.TenantsReport()
	// Crashes count once in Deregistrations too (on reclaim commit).
	if rep.ActiveTenants != 0 || rep.Crashes != 1 || rep.Deregistrations != 3 {
		t.Errorf("final ledger: %+v", rep)
	}
	if err := rs.sys.Machine().CheckInvariants(); err != nil {
		t.Errorf("invariants after lifecycle churn: %v", err)
	}
}

// TestLifecycleErrorSchema pins the control plane's JSON error schema:
// every /register and /deregister failure body is exactly
// {"error": <message>, "code": <token>} with an unchanged status code —
// clients may dispatch on code without parsing prose.
func TestLifecycleErrorSchema(t *testing.T) {
	rs := testReplaySet(t)
	decode := func(t *testing.T, w *httptest.ResponseRecorder) (string, string) {
		t.Helper()
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q, want application/json", ct)
		}
		var m map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
			t.Fatalf("error body is not JSON: %v (%s)", err, w.Body)
		}
		if len(m) != 2 {
			t.Fatalf("error body has keys %v, want exactly {error, code}", m)
		}
		errMsg, ok := m["error"].(string)
		if !ok || errMsg == "" {
			t.Fatalf("error field = %#v, want non-empty string", m["error"])
		}
		code, ok := m["code"].(string)
		if !ok || code == "" {
			t.Fatalf("code field = %#v, want non-empty string", m["code"])
		}
		return errMsg, code
	}

	// 405: wrong method.
	w := httptest.NewRecorder()
	rs.handleRegister(w, httptest.NewRequest(http.MethodGet, "/register?workload=SSSP", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /register = %d, want 405", w.Code)
	}
	if _, code := decode(t, w); code != "method_not_allowed" {
		t.Errorf("405 code = %q, want method_not_allowed", code)
	}

	// 400: validation.
	w = post(t, rs.handleRegister, "/register?workload=nope")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown workload = %d, want 400", w.Code)
	}
	if _, code := decode(t, w); code != "bad_request" {
		t.Errorf("400 code = %q, want bad_request", code)
	}
	w = post(t, rs.handleDeregister, "/deregister?slot=zero")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad slot = %d, want 400", w.Code)
	}
	decode(t, w)

	// 503: plane full maps to the tenancy error vocabulary. Success
	// replies keep their original schema (no error/code keys).
	w = post(t, rs.handleRegister, "/register?workload=SSSP")
	if w.Code != http.StatusOK {
		t.Fatalf("register 2 = %d", w.Code)
	}
	var okBody map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &okBody); err != nil {
		t.Fatal(err)
	}
	if _, has := okBody["error"]; has {
		t.Errorf("success body carries an error key: %v", okBody)
	}
	if w := post(t, rs.handleRegister, "/register?workload=SSSP"); w.Code != http.StatusOK {
		t.Fatalf("register 3 = %d", w.Code)
	}
	w = post(t, rs.handleRegister, "/register?workload=SSSP")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("register on full plane = %d, want 503", w.Code)
	}
	if _, code := decode(t, w); code != tenancy.ErrorCode(tenancy.ErrPlaneFull) {
		t.Errorf("503 code = %q, want %q", code, tenancy.ErrorCode(tenancy.ErrPlaneFull))
	}

	// 409: deregister of an empty slot.
	w = post(t, rs.handleDeregister, "/deregister?slot=2")
	if w.Code != http.StatusOK {
		t.Fatalf("deregister = %d", w.Code)
	}
	w = post(t, rs.handleDeregister, "/deregister?slot=2")
	if w.Code != http.StatusConflict {
		t.Fatalf("deregister of empty slot = %d, want 409", w.Code)
	}
	decode(t, w)
}
