// Command artmemd runs the online ArtMem system against a workload and
// serves the paper's §5 interaction channels over HTTP — the simulator's
// analogue of the kernel prototype's cgroup pseudo-files:
//
//	curl localhost:7600/memory.hit_ratio_show
//	curl localhost:7600/memory.action_show
//	curl localhost:7600/memory.threshold_show
//	curl localhost:7600/stats
//
// plus the telemetry surface:
//
//	curl localhost:7600/metrics            # Prometheus text format
//	curl localhost:7600/metrics.json       # JSON snapshot
//	curl localhost:7600/trace?n=100        # decision trace, JSONL
//	curl localhost:7600/qtable             # RL explainability report, JSON
//	curl localhost:7600/pagetrace?page=23  # page-lifecycle journal (needs -pagetrace)
//	go tool pprof localhost:7600/debug/pprof/profile
//
// Usage:
//
//	artmemd -workload XSBench -ratio 1:4 -listen :7600
//
// The workload replays in a loop until interrupted, so the agent keeps
// learning and the endpoints always show live state.
//
// Multi-tenant mode runs one tenant per listed workload — each a memcg
// analogue with its own RL agent — under the fast-tier arbiter, and
// serves the per-tenant control plane at /tenants:
//
//	artmemd -tenants SSSP,XSBench -arbiter dynamic -ratio 1:4
//	curl localhost:7600/tenants
//
// N-tier mode replays against a tier-chain machine (one RL agent per
// tier boundary) and serves the chain surface at /tiers:
//
//	artmemd -tiers DRAM:12.5%/CXL:25%/PM -nonexclusive -workload S2
//	curl localhost:7600/tiers
//
// The daemon is built to survive: SIGINT and SIGTERM drain the HTTP
// server with a timeout before stopping the system, worker goroutines
// recover from panics, and (with -checkpoint) the agent's Q-tables are
// checkpointed periodically and at shutdown so a restart resumes
// learning instead of starting cold.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"artmem/internal/core"
	"artmem/internal/memsim"
	"artmem/internal/serve"
	"artmem/internal/telemetry"
	"artmem/internal/workloads"
)

// maxPostBody caps request bodies on the control-plane endpoints; no
// legitimate control request carries more than a few KB.
const maxPostBody = 1 << 20

// hardened wraps a control-plane handler with body-size enforcement:
// every request body is capped at maxPostBody, so a misbehaving client
// cannot buffer unbounded data into a POST endpoint.
func hardened(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxPostBody)
		}
		h.ServeHTTP(w, r)
	})
}

func main() {
	var (
		name      = flag.String("workload", "XSBench", "workload to drive the system with")
		ratio     = flag.String("ratio", "1:4", "DRAM:PM ratio")
		div       = flag.Int64("div", 256, "footprint divisor")
		acc       = flag.Int64("accesses", 3_000_000, "accesses per workload replay")
		listen    = flag.String("listen", "127.0.0.1:7600", "HTTP listen address")
		ckptPath  = flag.String("checkpoint", "", "Q-table snapshot path: restored at startup if present, saved periodically and at shutdown")
		ckptEvery = flag.Duration("checkpoint-interval", 30*time.Second, "interval between Q-table checkpoints")
		drain     = flag.Duration("shutdown-timeout", 5*time.Second, "HTTP drain timeout on SIGINT/SIGTERM")
		pagetrace = flag.Int("pagetrace", 0, "enable page-lifecycle tracing at 1-in-N page sampling (served at /pagetrace; 0 = off)")
		serveAddr = flag.String("serve", "", "listen address for the batched streaming access API (artload's target); empty = off")
		spanRate  = flag.Int("spans", 0, "latency span sampling: record 1-in-N accepted batches into the journal served at /spans (0 = off; needs -serve)")
		tiers     = flag.String("tiers", "", "tier chain spec for N-tier mode, e.g. DRAM:12.5%/CXL:25%/PM (one RL agent per boundary; serves /tiers)")
		nonExcl   = flag.Bool("nonexclusive", false, "N-tier mode: non-exclusive (Nomad-style) promotion, demotions discard onto clean shadow copies")
		bndBudget = flag.Int("boundary-budget", 0, "N-tier mode: migrations per boundary per decision period (0 = unmetered)")
		tenants   = flag.String("tenants", "", "comma-separated workload list for multi-tenant mode (one tenant + RL agent per workload; serves /tenants)")
		arbiter   = flag.String("arbiter", "dynamic", "multi-tenant fast-tier arbiter mode: off, static, or dynamic (quotas + admission control)")
		capacity  = flag.Int("capacity", 0, "multi-tenant slot capacity; 0 = number of listed tenants (extra slots admit runtime POST /register)")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	build := telemetry.ReadBuildInfo()
	if *version {
		fmt.Println("artmemd", build)
		return
	}

	prof := workloads.Profile{Div: *div, PatternAccesses: *acc, AppAccesses: *acc, Seed: 1}
	var fast, slow int
	if _, err := fmt.Sscanf(*ratio, "%d:%d", &fast, &slow); err != nil {
		fatal(fmt.Errorf("bad -ratio %q: %v", *ratio, err))
	}
	if *tenants != "" {
		multiMain(*tenants, *arbiter, prof, fast, slow, *capacity, *listen, *serveAddr, *spanRate, *drain, build)
		return
	}
	if *tiers != "" {
		tieredMain(*tiers, *nonExcl, *bndBudget, *name, prof, *listen, *drain, build)
		return
	}
	spec, err := workloads.ByName(*name)
	if err != nil {
		fatal(err)
	}
	// Size the machine from a probe instance of the workload.
	probe := spec.New(prof)
	foot := probe.FootprintBytes()
	probe.Close()
	mcfg := memsim.DefaultConfig(foot, foot*int64(fast)/int64(fast+slow), prof.PageSize())

	sys := core.NewSystem(core.SystemConfig{
		Machine:             mcfg,
		Policy:              core.Config{},
		SamplingInterval:    time.Millisecond,
		MigrationInterval:   10 * time.Millisecond,
		PageTraceSampleRate: *pagetrace,
	})
	// The Go runtime's own health (goroutines, heap, GC) rides along on
	// the same /metrics page as the simulator's.
	telemetry.RegisterRuntimeMetrics(sys.Telemetry().Registry)
	if *ckptPath != "" {
		switch err := sys.RestoreQTablesFile(*ckptPath); {
		case err == nil:
			fmt.Printf("artmemd: resumed Q-tables from %s\n", *ckptPath)
		case os.IsNotExist(err):
			fmt.Printf("artmemd: no checkpoint at %s, starting cold\n", *ckptPath)
		default:
			// A corrupt checkpoint must not kill the daemon: the restore
			// leaves the live tables untouched, so learning starts fresh.
			fmt.Fprintf(os.Stderr, "artmemd: ignoring unreadable checkpoint: %v\n", err)
		}
	}
	sys.Start()
	defer sys.Stop()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	// The control endpoints plus the standard pprof surface. The handlers
	// are registered explicitly (rather than importing net/http/pprof for
	// its DefaultServeMux side effect) so the daemon never serves
	// profiling endpoints it did not ask for.
	mux := http.NewServeMux()
	mux.Handle("/", sys.ControlHandler())
	// Serving observability (span journal + SLO monitor) exists only
	// when the streaming access API is on; the endpoints 404 otherwise.
	var obs serveObs
	if *serveAddr != "" {
		obs = newServeObs(*spanRate, []telemetry.SLOObjective{telemetry.BatchSLO()})
	}
	obs.mount(mux)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Addr:    *listen,
		Handler: hardened(mux),
		// Bound how long a client may dribble its request headers; without
		// it an idle connection pins a goroutine forever (slowloris).
		ReadHeaderTimeout: 10 * time.Second,
	}
	go protect("http", func() {
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			fatal(err)
		}
	})

	// The batched streaming access API: remote clients (cmd/artload)
	// stream access/alloc/free batches at the machine alongside the local
	// replay loop.
	var accessSrv *serve.Server
	if *serveAddr != "" {
		accessSrv = serve.NewServer(serve.Config{
			Backend:  serve.NewSystemBackend(sys),
			Registry: sys.Telemetry().Registry,
			Spans:    obs.spans,
			StallNs:  sys.ControlBusyNs,
			SLO:      obs.slo,
		})
		go protect("serve", func() {
			if err := accessSrv.ListenAndServe(*serveAddr); err != nil {
				fatal(fmt.Errorf("serve: %w", err))
			}
		})
		fmt.Printf("artmemd: streaming access API on %s (drive it with artload)\n", *serveAddr)
		if obs.spans != nil {
			fmt.Printf("artmemd: latency spans on at 1/%d sampling (/spans); SLO burn rates at /slo\n",
				obs.spans.Rate())
		}
	}

	// Periodic Q-table checkpointing: a daemon restart resumes learning
	// from the last snapshot instead of re-exploring from scratch.
	ckptDone := make(chan struct{})
	if *ckptPath != "" && *ckptEvery > 0 {
		go protect("checkpoint", func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ckptDone:
					return
				case <-tick.C:
					if err := sys.SaveQTablesFile(*ckptPath); err != nil {
						fmt.Fprintf(os.Stderr, "artmemd: checkpoint failed: %v\n", err)
					}
				}
			}
		})
	}

	fmt.Printf("artmemd: build %s\n", build)
	fmt.Printf("artmemd: serving interaction channels on http://%s\n", *listen)
	fmt.Printf("artmemd: telemetry at /metrics, /metrics.json, /trace, /qtable; profiling at /debug/pprof/\n")
	if *pagetrace > 0 {
		fmt.Printf("artmemd: page-lifecycle tracing on at 1/%d sampling (/pagetrace)\n",
			sys.Telemetry().PageTrace.Rate())
	}
	fmt.Printf("artmemd: replaying %s (%d MB) at %s in a loop; SIGINT/SIGTERM to stop\n",
		*name, foot>>20, *ratio)

	if *acc <= 0 {
		// Serve-only mode: no local replay loop, all traffic arrives
		// through the streaming access API (or not at all).
		fmt.Println("artmemd: -accesses 0, serve-only mode (no local replay)")
		<-stop
	} else {
		replays := 0
	loop:
		for {
			if !replay(sys, spec, prof, stop) {
				break loop
			}
			replays++
			c := sys.Counters()
			h := sys.Health()
			fmt.Printf("replay %d done: DRAM ratio %.3f, %d migrations, %d RL decisions, degraded=%v\n",
				replays, c.DRAMRatio(), c.Migrations, sys.Policy().Decisions(), h.Degraded)
		}
	}

	// Graceful shutdown: flip /healthz to draining (balancers stop
	// routing here), drain the streaming frontend (every accepted batch
	// acked or rejected) and in-flight HTTP requests with a deadline,
	// then stop the background threads and take a final checkpoint.
	sys.SetDraining(true)
	if accessSrv != nil {
		accessSrv.Shutdown()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "artmemd: http drain: %v\n", err)
	}
	close(ckptDone)
	sys.Stop()
	if *ckptPath != "" {
		if err := sys.SaveQTablesFile(*ckptPath); err != nil {
			fmt.Fprintf(os.Stderr, "artmemd: final checkpoint failed: %v\n", err)
		} else {
			fmt.Printf("artmemd: checkpointed Q-tables to %s\n", *ckptPath)
		}
	}
	fmt.Println("artmemd: stopped")
}

// replay runs one pass of the workload, returning false when a stop
// signal arrived. A panic inside the workload or the access path is
// recovered so one bad replay cannot take the daemon down.
func replay(sys *core.System, spec workloads.Spec, prof workloads.Profile, stop <-chan os.Signal) (again bool) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "artmemd: replay panicked (recovered): %v\n", r)
			again = true
		}
	}()
	w := spec.New(prof)
	defer w.Close()
	for {
		b, ok := w.Next()
		if !ok {
			return true
		}
		for _, a := range b {
			sys.Access(a.Addr, a.Write)
		}
		select {
		case <-stop:
			return false
		default:
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "artmemd:", err)
	os.Exit(1)
}

// protect runs f, recovering and reporting a panic instead of crashing.
func protect(name string, f func()) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "artmemd: %s goroutine panicked (recovered): %v\n", name, r)
		}
	}()
	f()
}
