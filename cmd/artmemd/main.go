// Command artmemd runs the online ArtMem system against a workload and
// serves the paper's §5 interaction channels over HTTP — the simulator's
// analogue of the kernel prototype's cgroup pseudo-files:
//
//	curl localhost:7600/memory.hit_ratio_show
//	curl localhost:7600/memory.action_show
//	curl localhost:7600/memory.threshold_show
//	curl localhost:7600/stats
//
// Usage:
//
//	artmemd -workload XSBench -ratio 1:4 -listen :7600
//
// The workload replays in a loop until interrupted, so the agent keeps
// learning and the endpoints always show live state.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"artmem/internal/core"
	"artmem/internal/memsim"
	"artmem/internal/workloads"
)

func main() {
	var (
		name   = flag.String("workload", "XSBench", "workload to drive the system with")
		ratio  = flag.String("ratio", "1:4", "DRAM:PM ratio")
		div    = flag.Int64("div", 256, "footprint divisor")
		acc    = flag.Int64("accesses", 3_000_000, "accesses per workload replay")
		listen = flag.String("listen", "127.0.0.1:7600", "HTTP listen address")
	)
	flag.Parse()

	spec, err := workloads.ByName(*name)
	if err != nil {
		fatal(err)
	}
	prof := workloads.Profile{Div: *div, PatternAccesses: *acc, AppAccesses: *acc, Seed: 1}
	var fast, slow int
	if _, err := fmt.Sscanf(*ratio, "%d:%d", &fast, &slow); err != nil {
		fatal(fmt.Errorf("bad -ratio %q: %v", *ratio, err))
	}
	// Size the machine from a probe instance of the workload.
	probe := spec.New(prof)
	foot := probe.FootprintBytes()
	probe.Close()
	mcfg := memsim.DefaultConfig(foot, foot*int64(fast)/int64(fast+slow), prof.PageSize())

	sys := core.NewSystem(core.SystemConfig{
		Machine:           mcfg,
		Policy:            core.Config{},
		SamplingInterval:  time.Millisecond,
		MigrationInterval: 10 * time.Millisecond,
	})
	sys.Start()
	defer sys.Stop()

	srv := &http.Server{Addr: *listen, Handler: sys.ControlHandler()}
	go func() {
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			fatal(err)
		}
	}()
	fmt.Printf("artmemd: serving interaction channels on http://%s\n", *listen)
	fmt.Printf("artmemd: replaying %s (%d MB) at %s in a loop; ctrl-c to stop\n",
		*name, foot>>20, *ratio)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	replays := 0
loop:
	for {
		w := spec.New(prof)
		for {
			b, ok := w.Next()
			if !ok {
				break
			}
			for _, a := range b {
				sys.Access(a.Addr, a.Write)
			}
			select {
			case <-stop:
				w.Close()
				break loop
			default:
			}
		}
		w.Close()
		replays++
		c := sys.Counters()
		fmt.Printf("replay %d done: DRAM ratio %.3f, %d migrations, %d RL decisions\n",
			replays, c.DRAMRatio(), c.Migrations, sys.Policy().Decisions())
	}
	srv.Close()
	fmt.Println("artmemd: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "artmemd:", err)
	os.Exit(1)
}
