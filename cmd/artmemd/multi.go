package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"artmem/internal/core"
	"artmem/internal/memsim"
	"artmem/internal/serve"
	"artmem/internal/telemetry"
	"artmem/internal/tenancy"
	"artmem/internal/workloads"
)

// jsonError writes a control-plane error as the pinned JSON schema
// {"error": ..., "code": ...} with the given HTTP status. code is a
// stable machine-readable token (see tenancy.ErrorCode for the plane's
// backpressure vocabulary).
func jsonError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": code})
}

// multiMain is artmemd's multi-tenant mode: one tenant per listed
// workload on a shared machine, each with its own RL agent, under the
// fast-tier arbiter. The machine is sized as `capacity` equal slot
// regions (each big enough for the largest listed workload), so tenants
// registered at runtime through POST /register get their own address
// region and replay alongside the initial set; POST /deregister retires
// a tenant through the plane's transactional reclamation. The control
// plane (including /tenants) is served on the same listen address the
// single-tenant daemon uses.
func multiMain(tenantList, arbMode string, prof workloads.Profile, fast, slow, capacity int,
	listen, serveAddr string, spanRate int, drain time.Duration, build telemetry.BuildInfo) {
	var mode tenancy.Mode
	switch arbMode {
	case "off":
		mode = tenancy.ModeOff
	case "static":
		mode = tenancy.ModeStatic
	case "dynamic":
		mode = tenancy.ModeDynamic
	default:
		fatal(fmt.Errorf("bad -arbiter %q: want off, static, or dynamic", arbMode))
	}

	names := strings.Split(tenantList, ",")
	specs := make([]workloads.Spec, len(names))
	tenants := make([]core.TenantConfig, len(names))
	var slotBytes int64
	for i, name := range names {
		name = strings.TrimSpace(name)
		names[i] = name
		spec, err := workloads.ByName(name)
		if err != nil {
			fatal(err)
		}
		specs[i] = spec
		probe := spec.New(prof)
		foot := probe.FootprintBytes()
		probe.Close()
		if foot > slotBytes {
			slotBytes = foot
		}
		weight := int(foot / prof.PageSize())
		if weight < 1 {
			weight = 1
		}
		tenants[i] = core.TenantConfig{
			Name:   name,
			Weight: weight,
			Policy: core.Config{Seed: prof.Seed + uint64(i)},
		}
	}
	if capacity < len(names) {
		capacity = len(names)
	}
	if slotBytes < prof.PageSize() {
		slotBytes = prof.PageSize()
	}

	foot := slotBytes * int64(capacity)
	mcfg := memsim.DefaultConfig(foot, foot*int64(fast)/int64(fast+slow), prof.PageSize())
	sys := core.NewMultiSystem(core.MultiSystemConfig{
		Machine:           mcfg,
		Tenants:           tenants,
		Capacity:          capacity,
		Arbiter:           tenancy.ArbiterConfig{Mode: mode, Admission: mode != tenancy.ModeOff},
		SamplingInterval:  time.Millisecond,
		MigrationInterval: 10 * time.Millisecond,
	})
	telemetry.RegisterRuntimeMetrics(sys.Telemetry().Registry)
	sys.Start()
	defer sys.Stop()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	rep := &replaySet{sys: sys, prof: prof, slotBytes: slotBytes}
	for i := range names {
		rep.entries = append(rep.entries, &replayEntry{
			slot: i, name: names[i], spec: specs[i], w: specs[i].New(prof),
		})
	}

	mux := http.NewServeMux()
	mux.Handle("/", sys.ControlHandler())
	// Serving observability: one SLO slot per tenant slot, batch class
	// by default — /register?class=latency tightens the new tenant's
	// objective (handleRegister).
	var obs serveObs
	if serveAddr != "" {
		objectives := make([]telemetry.SLOObjective, capacity)
		for i := range objectives {
			objectives[i] = telemetry.BatchSLO()
		}
		obs = newServeObs(spanRate, objectives)
		rep.slo = obs.slo
	}
	obs.mount(mux)
	mux.HandleFunc("/register", rep.handleRegister)
	mux.HandleFunc("/deregister", rep.handleDeregister)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Addr:    listen,
		Handler: hardened(mux),
		// See the single-tenant server: slowloris defence.
		ReadHeaderTimeout: 10 * time.Second,
	}
	go protect("http", func() {
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			fatal(err)
		}
	})

	// The batched streaming access API over the tenant slots: remote
	// clients address their slot region from 0, the backend rebases.
	var accessSrv *serve.Server
	if serveAddr != "" {
		accessSrv = serve.NewServer(serve.Config{
			Backend:  serve.NewMultiBackend(sys, slotBytes),
			Registry: sys.Telemetry().Registry,
			Spans:    obs.spans,
			StallNs:  sys.ControlBusyNs,
			SLO:      obs.slo,
		})
		go protect("serve", func() {
			if err := accessSrv.ListenAndServe(serveAddr); err != nil {
				fatal(fmt.Errorf("serve: %w", err))
			}
		})
		fmt.Printf("artmemd: streaming access API on %s (drive it with artload -tenant N)\n", serveAddr)
	}

	fmt.Printf("artmemd: build %s\n", build)
	fmt.Printf("artmemd: %d/%d tenant slots filled (%s), arbiter %s, admission=%v\n",
		len(names), capacity, strings.Join(names, ","), mode, mode != tenancy.ModeOff)
	fmt.Printf("artmemd: serving control plane on http://%s (/tenants, /stats, /metrics, /metrics.json, /trace)\n", listen)
	fmt.Printf("artmemd: tenant lifecycle at POST /register?workload=NAME[&name=..&weight=..&class=latency] and POST /deregister?slot=N[&handoff=M][&crash=1]\n")
	fmt.Printf("artmemd: replaying %d MB machine (%d slots x %d MB) at %d:%d in a loop; SIGINT/SIGTERM to stop\n",
		foot>>20, capacity, slotBytes>>20, fast, slow)

loop:
	for {
		select {
		case <-stop:
			break loop
		default:
		}
		if !rep.step() {
			// No resident tenants: wait for a registration or a signal.
			time.Sleep(10 * time.Millisecond)
		}
	}

	sys.SetDraining(true)
	if accessSrv != nil {
		accessSrv.Shutdown()
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "artmemd: http drain: %v\n", err)
	}
	sys.Stop()
	fmt.Println("artmemd: stopped")
}

// replayEntry is one resident tenant's replay state.
type replayEntry struct {
	slot    int
	name    string
	spec    workloads.Spec
	w       workloads.Workload
	replays int
}

// replaySet round-robins batches across the resident tenants' workloads
// and applies HTTP lifecycle requests between batches. The mutex spans
// each AccessBatch, so registration and deregistration never race a
// departing tenant's in-flight accesses.
type replaySet struct {
	mu        sync.Mutex
	sys       *core.MultiSystem
	prof      workloads.Profile
	slotBytes int64
	entries   []*replayEntry
	turn      int
	regSeq    uint64
	// slo, when non-nil, tracks per-slot objectives for the serving SLO
	// monitor; registration installs the admitted tenant's class.
	slo *telemetry.SLOMonitor
}

// step replays one batch of the next resident tenant, looping exhausted
// workloads in place. Returns false when no tenant is resident. Panics
// are recovered as in the single-tenant replay.
func (rs *replaySet) step() (progressed bool) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "artmemd: replay panicked (recovered): %v\n", r)
			progressed = true
		}
	}()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.entries) == 0 {
		return false
	}
	rs.turn %= len(rs.entries)
	e := rs.entries[rs.turn]
	rs.turn++
	b, ok := e.w.Next()
	if !ok {
		e.w.Close()
		e.w = e.spec.New(rs.prof)
		e.replays++
		tc := rs.sys.TenantCounters(e.slot)
		fmt.Printf("tenant %s (slot %d) replay %d done: ratio=%.3f promo=%d\n",
			e.name, e.slot, e.replays, tc.DRAMRatio(), tc.Promotions)
		return true
	}
	off := uint64(e.slot) * uint64(rs.slotBytes)
	addrs := make([]uint64, len(b))
	writes := make([]bool, len(b))
	for i, a := range b {
		addrs[i] = a.Addr + off
		writes[i] = a.Write
	}
	rs.sys.AccessBatch(e.slot, addrs, writes)
	return true
}

// handleRegister admits a tenant at runtime: POST /register?workload=
// NAME[&name=LABEL][&weight=W][&class=latency|batch]. The workload must
// fit one slot region; admission control (plane full, arrival
// backpressure) maps to 503 with the error in the body.
func (rs *replaySet) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	wlName := r.FormValue("workload")
	spec, err := workloads.ByName(wlName)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	name := r.FormValue("name")
	if name == "" {
		name = wlName
	}
	weight := 0
	if v := r.FormValue("weight"); v != "" {
		if weight, err = strconv.Atoi(v); err != nil || weight < 1 {
			jsonError(w, http.StatusBadRequest, "bad_request", "bad weight")
			return
		}
	}
	var class tenancy.SLOClass
	switch r.FormValue("class") {
	case "", "batch":
		class = tenancy.ClassBatch
	case "latency":
		class = tenancy.ClassLatency
	default:
		jsonError(w, http.StatusBadRequest, "bad_request", "bad class: want latency or batch")
		return
	}

	rs.mu.Lock()
	defer rs.mu.Unlock()
	probe := spec.New(rs.prof)
	foot := probe.FootprintBytes()
	probe.Close()
	if foot > rs.slotBytes {
		jsonError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("workload footprint %d exceeds slot region %d", foot, rs.slotBytes))
		return
	}
	if weight == 0 {
		weight = int(foot / rs.prof.PageSize())
		if weight < 1 {
			weight = 1
		}
	}
	rs.regSeq++
	slot, err := rs.sys.RegisterTenant(core.TenantConfig{
		Name:   name,
		Weight: weight,
		Class:  class,
		Policy: core.Config{Seed: rs.prof.Seed + 1000 + rs.regSeq},
	})
	if err != nil {
		jsonError(w, http.StatusServiceUnavailable, tenancy.ErrorCode(err), err.Error())
		return
	}
	rs.entries = append(rs.entries, &replayEntry{
		slot: slot, name: name, spec: spec, w: spec.New(rs.prof),
	})
	if rs.slo != nil {
		obj := telemetry.BatchSLO()
		if class == tenancy.ClassLatency {
			obj = telemetry.LatencySLO()
		}
		rs.slo.SetObjective(slot, obj)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"slot": slot, "name": name, "workload": wlName})
}

// handleDeregister retires a tenant: POST /deregister?slot=N[&handoff=M]
// [&crash=1]. An interrupted reclamation still succeeds from the
// client's view — the slot is left draining and the migration thread
// retries each period.
func (rs *replaySet) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	slot, err := strconv.Atoi(r.FormValue("slot"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad_request", "bad slot")
		return
	}
	handoff := -1
	if v := r.FormValue("handoff"); v != "" {
		if handoff, err = strconv.Atoi(v); err != nil {
			jsonError(w, http.StatusBadRequest, "bad_request", "bad handoff")
			return
		}
	}
	crash := r.FormValue("crash") != ""

	rs.mu.Lock()
	defer rs.mu.Unlock()
	for i, e := range rs.entries {
		if e.slot == slot {
			e.w.Close()
			rs.entries = append(rs.entries[:i], rs.entries[i+1:]...)
			break
		}
	}
	if crash {
		err = rs.sys.CrashTenant(slot, handoff)
	} else {
		err = rs.sys.DeregisterTenant(slot, handoff)
	}
	state := "empty"
	if errors.Is(err, tenancy.ErrReclaimInterrupted) {
		state, err = "draining", nil
	}
	if err != nil {
		jsonError(w, http.StatusConflict, tenancy.ErrorCode(err), err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"slot": slot, "state": state, "crash": crash})
}
