package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"artmem/internal/core"
	"artmem/internal/memsim"
	"artmem/internal/telemetry"
	"artmem/internal/tenancy"
	"artmem/internal/workloads"
)

// multiMain is artmemd's multi-tenant mode: one tenant per listed
// workload on a shared machine, each with its own RL agent, under the
// fast-tier arbiter. The control plane (including /tenants) is served
// on the same listen address the single-tenant daemon uses.
func multiMain(tenantList, arbMode string, prof workloads.Profile, fast, slow int,
	listen string, drain time.Duration, build telemetry.BuildInfo) {
	var mode tenancy.Mode
	switch arbMode {
	case "off":
		mode = tenancy.ModeOff
	case "static":
		mode = tenancy.ModeStatic
	case "dynamic":
		mode = tenancy.ModeDynamic
	default:
		fatal(fmt.Errorf("bad -arbiter %q: want off, static, or dynamic", arbMode))
	}

	names := strings.Split(tenantList, ",")
	specs := make([]workloads.Spec, len(names))
	offsets := make([]uint64, len(names))
	tenants := make([]core.TenantConfig, len(names))
	var foot int64
	for i, name := range names {
		name = strings.TrimSpace(name)
		names[i] = name
		spec, err := workloads.ByName(name)
		if err != nil {
			fatal(err)
		}
		specs[i] = spec
		probe := spec.New(prof)
		offsets[i] = uint64(foot)
		foot += probe.FootprintBytes()
		weight := int(probe.FootprintBytes() / prof.PageSize())
		probe.Close()
		if weight < 1 {
			weight = 1
		}
		tenants[i] = core.TenantConfig{
			Name:   name,
			Weight: weight,
			Policy: core.Config{Seed: prof.Seed + uint64(i)},
		}
	}

	mcfg := memsim.DefaultConfig(foot, foot*int64(fast)/int64(fast+slow), prof.PageSize())
	sys := core.NewMultiSystem(core.MultiSystemConfig{
		Machine:           mcfg,
		Tenants:           tenants,
		Arbiter:           tenancy.ArbiterConfig{Mode: mode, Admission: mode != tenancy.ModeOff},
		SamplingInterval:  time.Millisecond,
		MigrationInterval: 10 * time.Millisecond,
	})
	telemetry.RegisterRuntimeMetrics(sys.Telemetry().Registry)
	sys.Start()
	defer sys.Stop()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	mux := http.NewServeMux()
	mux.Handle("/", sys.ControlHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: listen, Handler: mux}
	go protect("http", func() {
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			fatal(err)
		}
	})

	fmt.Printf("artmemd: build %s\n", build)
	fmt.Printf("artmemd: %d tenants (%s), arbiter %s, admission=%v\n",
		len(names), strings.Join(names, ","), mode, mode != tenancy.ModeOff)
	fmt.Printf("artmemd: serving control plane on http://%s (/tenants, /stats, /metrics, /metrics.json, /trace)\n", listen)
	fmt.Printf("artmemd: replaying %d MB total footprint at %d:%d in a loop; SIGINT/SIGTERM to stop\n",
		foot>>20, fast, slow)

	replays := 0
loop:
	for {
		if !replayTenants(sys, specs, offsets, prof, stop) {
			break loop
		}
		replays++
		rep := sys.TenantsReport()
		parts := make([]string, len(rep.Tenants))
		for i, t := range rep.Tenants {
			parts[i] = fmt.Sprintf("%s ratio=%.3f fast=%d denied=%d",
				t.Name, t.HitRatio, t.FastPages, t.AdmissionDenials)
		}
		fmt.Printf("replay %d done: %s, rebalances=%d\n",
			replays, strings.Join(parts, "; "), rep.Rebalances)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "artmemd: http drain: %v\n", err)
	}
	sys.Stop()
	fmt.Println("artmemd: stopped")
}

// replayTenants runs one interleaved pass of every tenant's workload,
// returning false when a stop signal arrived. Panics are recovered as
// in the single-tenant replay.
func replayTenants(sys *core.MultiSystem, specs []workloads.Spec, offsets []uint64,
	prof workloads.Profile, stop <-chan os.Signal) (again bool) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "artmemd: replay panicked (recovered): %v\n", r)
			again = true
		}
	}()
	loads := make([]workloads.Workload, len(specs))
	for i, s := range specs {
		loads[i] = s.New(prof)
		defer loads[i].Close()
	}
	done := make([]bool, len(loads))
	live := len(loads)
	for turn := 0; live > 0; turn = (turn + 1) % len(loads) {
		if done[turn] {
			continue
		}
		b, ok := loads[turn].Next()
		if !ok {
			done[turn] = true
			live--
			continue
		}
		addrs := make([]uint64, len(b))
		writes := make([]bool, len(b))
		for i, a := range b {
			addrs[i] = a.Addr + offsets[turn]
			writes[i] = a.Write
		}
		sys.AccessBatch(turn, addrs, writes)
		select {
		case <-stop:
			return false
		default:
		}
	}
	return true
}
