package main

import (
	"net/http"
	"strconv"

	"artmem/internal/telemetry"
)

// serveObs bundles the daemon's serving-observability state: the
// hash-sampled latency span journal (served at /spans) and the
// per-tenant SLO burn-rate monitor (served at /slo). Both exist only
// when the streaming access API is enabled; the handlers answer 404
// otherwise, which clients (cmd/artmon, cmd/artrace) treat as "feature
// absent" — the same degrade convention as /pagetrace and /tenants.
type serveObs struct {
	spans *telemetry.SpanJournal
	slo   *telemetry.SLOMonitor
}

// newServeObs builds the journal (when spanRate > 0) and the monitor
// over the given per-slot objectives.
func newServeObs(spanRate int, objectives []telemetry.SLOObjective) serveObs {
	var obs serveObs
	if spanRate > 0 {
		obs.spans = telemetry.NewSpanJournal(0, spanRate)
	}
	obs.slo = telemetry.NewSLOMonitor(objectives, nil, nil)
	return obs
}

// mount registers the observability endpoints. Mounted unconditionally:
// a disabled feature answers 404 with a hint, keeping the route surface
// identical across configurations.
func (o serveObs) mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /spans", func(w http.ResponseWriter, r *http.Request) {
		if o.spans == nil {
			http.Error(w, "span journal disabled (enable with -serve and -spans N)", http.StatusNotFound)
			return
		}
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		tenant := -1
		if q := r.URL.Query().Get("tenant"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad tenant", http.StatusBadRequest)
				return
			}
			tenant = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		o.spans.WriteJSONL(w, n, tenant)
	})
	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) {
		if o.slo == nil {
			http.Error(w, "SLO monitor disabled (enable with -serve)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		o.slo.WriteJSON(w)
	})
}
