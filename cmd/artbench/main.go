// Command artbench regenerates the paper's tables and figures from the
// simulator. Each experiment prints the same rows/series the paper
// reports (see DESIGN.md §3 for the per-experiment index).
//
// Usage:
//
//	artbench -list                 # enumerate experiments
//	artbench -exp fig7             # run one experiment at full scale
//	artbench -exp fig2 -quick      # trimmed sweep at miniature scale
//	artbench -all                  # run everything (long)
//	artbench -exp fig7 -div 128 -accesses 3000000 -v
//	artbench -all -quick -parallel 4   # four cell workers
//	artbench -all -nocache             # force every cell to recompute
//
// Every experiment is a grid of independent cells (one simulation each)
// executed by the internal/sched scheduler: -parallel bounds the worker
// count for any run, single experiment or -all, and results are written
// back by cell index so the tables are byte-identical to a serial run
// at any worker count (DESIGN.md §7). Cells recurring across
// experiments are memoized in-process, and -cache (default on) adds an
// on-disk layer under <outdir>/cache/ keyed by a source stamp of the
// simulator packages, so a rerun on an unchanged tree replays results
// instead of recomputing them. The cache summary goes to stderr;
// -nocache disables both layers.
//
// Output goes to stdout as aligned text tables. Every run also records
// its tables as JSON under -outdir (default bench_results/), in a file
// named BENCH_<git-sha>.json (written atomically: temp file + rename),
// so results are diffable across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"artmem/internal/exp"
	"artmem/internal/sched"
	"artmem/internal/telemetry"
	"artmem/internal/textplot"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id to run (see -list)")
		list     = flag.Bool("list", false, "list available experiments")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "miniature scale, trimmed sweeps")
		verbose  = flag.Bool("v", false, "log every simulation run and cell progress")
		div      = flag.Int64("div", 0, "override the footprint divisor (paper scale / div)")
		accesses = flag.Int64("accesses", 0, "override the per-run access budget")
		seed     = flag.Uint64("seed", 0, "override the base RNG seed")
		par      = flag.Int("parallel", 0, "cell workers for any run (0 = GOMAXPROCS, 1 = serial)")
		cache    = flag.Bool("cache", true, "persist cell results under <outdir>/cache/ and reuse them")
		nocache  = flag.Bool("nocache", false, "disable the run cache entirely (memory and disk)")
		outdir   = flag.String("outdir", "bench_results", "directory for the JSON result file (empty disables)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (paper artifact → id):")
		for _, e := range exp.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
			fmt.Printf("  %-10s paper: %s\n", "", e.Paper)
		}
		return
	}

	o := exp.DefaultOptions()
	if *quick {
		o = exp.QuickOptions()
	}
	if *div > 0 {
		o.Profile.Div = *div
	}
	if *accesses > 0 {
		o.Profile.AppAccesses = *accesses
		o.Profile.PatternAccesses = 2 * *accesses
	}
	if *seed != 0 {
		o.Profile.Seed = *seed
	}
	if *verbose {
		o.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// Cell scheduler: one worker pool + run cache shared by every
	// experiment of this invocation, so cells recurring across
	// experiments compute once.
	var runCache *sched.Cache
	if !*nocache {
		runCache = sched.NewCache(cacheDir(*cache, *outdir))
	}
	reg := telemetry.NewRegistry()
	o.Sched = sched.New(sched.Config{
		Workers: *par,
		Cache:   runCache,
		Log:     o.Log,
		Metrics: sched.NewMetrics(reg),
	})

	render := func(e exp.Experiment) (string, expResult) {
		start := time.Now()
		var b strings.Builder
		fmt.Fprintf(&b, "### %s — %s\n", e.ID, e.Title)
		fmt.Fprintf(&b, "### paper: %s\n\n", e.Paper)
		tables := e.Run(o)
		for _, tb := range tables {
			fmt.Fprintln(&b, tb.Render())
		}
		elapsed := time.Since(start)
		fmt.Fprintf(&b, "### %s done in %s\n\n", e.ID, elapsed.Round(time.Millisecond))
		return b.String(), expResult{
			ID: e.ID, Title: e.Title, Paper: e.Paper,
			DurationMs: elapsed.Milliseconds(), Tables: tables,
		}
	}
	var results []expResult
	run := func(e exp.Experiment) {
		out, res := render(e)
		fmt.Print(out)
		results = append(results, res)
	}

	switch {
	case *all:
		// Experiments run in registry order; each one's cells fill the
		// scheduler's worker pool, and the shared cache deduplicates the
		// cells that recur across experiments.
		for _, e := range exp.All() {
			run(e)
		}
	case *expID != "":
		e, err := exp.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "use -list to see available experiments")
			os.Exit(1)
		}
		run(e)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if runCache != nil {
		st := runCache.Stats()
		fmt.Fprintf(os.Stderr,
			"artbench: cache %d hits (%d mem + %d disk), %d misses — hit rate %.0f%%\n",
			st.Hits(), st.MemHits, st.DiskHits, st.Misses, 100*st.HitRate())
	}
	writeResults(*outdir, *quick, results)
}

// cacheDir resolves the on-disk cache directory: <outdir>/cache/<stamp>
// where the stamp hashes the simulator source (so any code change cold-
// starts the cache). Returns "" — memory-only caching — when the disk
// layer is off, outdir is disabled, or the source tree is not visible
// from the working directory.
func cacheDir(enabled bool, outdir string) string {
	if !enabled || outdir == "" {
		return ""
	}
	stamp, err := sched.SourceStamp("internal")
	if err != nil {
		return ""
	}
	return filepath.Join(outdir, "cache", stamp)
}

// expResult is one experiment's machine-readable record.
type expResult struct {
	ID         string           `json:"id"`
	Title      string           `json:"title"`
	Paper      string           `json:"paper"`
	DurationMs int64            `json:"duration_ms"`
	Tables     []textplot.Table `json:"tables"`
}

// benchFile is the BENCH_<sha>.json document: the build that produced
// the numbers plus every experiment's tables verbatim.
type benchFile struct {
	Revision    string      `json:"revision"`
	Dirty       bool        `json:"dirty,omitempty"`
	GoVersion   string      `json:"go_version"`
	Timestamp   string      `json:"timestamp"`
	Quick       bool        `json:"quick,omitempty"`
	Experiments []expResult `json:"experiments"`
}

// writeResults records the run under dir as BENCH_<git-sha>.json. A
// rerun on the same commit overwrites — the file captures "the numbers
// this tree produces", not a history (git holds the history). The file
// is written atomically (temp file + rename) so an interrupted run can
// never leave a truncated document behind.
func writeResults(dir string, quick bool, results []expResult) {
	if dir == "" || len(results) == 0 {
		return
	}
	build := telemetry.ReadBuildInfo()
	if build.Revision == "dev" {
		// `go run` skips VCS stamping; ask git directly so the file is
		// still named after the commit when run from a checkout.
		if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
			if sha := strings.TrimSpace(string(out)); sha != "" {
				build.Revision = sha
			}
		}
	}
	doc := benchFile{
		Revision:    build.Revision,
		Dirty:       build.Dirty,
		GoVersion:   build.GoVersion,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Quick:       quick,
		Experiments: results,
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "artbench: cannot create %s: %v\n", dir, err)
		return
	}
	path := filepath.Join(dir, "BENCH_"+build.Revision+".json")
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "artbench: encoding results: %v\n", err)
		return
	}
	tmp, err := os.CreateTemp(dir, ".bench-*.tmp")
	if err != nil {
		fmt.Fprintf(os.Stderr, "artbench: writing %s: %v\n", path, err)
		return
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		fmt.Fprintf(os.Stderr, "artbench: writing %s: %v\n", path, firstErr(werr, cerr))
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		fmt.Fprintf(os.Stderr, "artbench: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("### results written to %s\n", path)
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
