// Command artbench regenerates the paper's tables and figures from the
// simulator. Each experiment prints the same rows/series the paper
// reports (see DESIGN.md §3 for the per-experiment index).
//
// Usage:
//
//	artbench -list                 # enumerate experiments
//	artbench -exp fig7             # run one experiment at full scale
//	artbench -exp fig2 -quick      # trimmed sweep at miniature scale
//	artbench -all                  # run everything (long)
//	artbench -exp fig7 -div 128 -accesses 3000000 -v
//
// Output goes to stdout as aligned text tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"artmem/internal/exp"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id to run (see -list)")
		list     = flag.Bool("list", false, "list available experiments")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "miniature scale, trimmed sweeps")
		verbose  = flag.Bool("v", false, "log every simulation run")
		div      = flag.Int64("div", 0, "override the footprint divisor (paper scale / div)")
		accesses = flag.Int64("accesses", 0, "override the per-run access budget")
		seed     = flag.Uint64("seed", 0, "override the base RNG seed")
		par      = flag.Int("parallel", 1, "with -all: run this many experiments concurrently")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (paper artifact → id):")
		for _, e := range exp.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
			fmt.Printf("  %-10s paper: %s\n", "", e.Paper)
		}
		return
	}

	o := exp.DefaultOptions()
	if *quick {
		o = exp.QuickOptions()
	}
	if *div > 0 {
		o.Profile.Div = *div
	}
	if *accesses > 0 {
		o.Profile.AppAccesses = *accesses
		o.Profile.PatternAccesses = 2 * *accesses
	}
	if *seed != 0 {
		o.Profile.Seed = *seed
	}
	if *verbose {
		o.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	render := func(e exp.Experiment) string {
		start := time.Now()
		var b strings.Builder
		fmt.Fprintf(&b, "### %s — %s\n", e.ID, e.Title)
		fmt.Fprintf(&b, "### paper: %s\n\n", e.Paper)
		for _, tb := range e.Run(o) {
			fmt.Fprintln(&b, tb.Render())
		}
		fmt.Fprintf(&b, "### %s done in %s\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		return b.String()
	}
	run := func(e exp.Experiment) { fmt.Print(render(e)) }

	switch {
	case *all:
		if *par > 1 {
			// Experiments are independent; shared caches (graphs, B-trees,
			// pretrained Q-tables) are mutex-protected. Render in
			// parallel, print in registry order.
			exps := exp.All()
			outs := make([]string, len(exps))
			sem := make(chan struct{}, *par)
			var wg sync.WaitGroup
			for i, e := range exps {
				wg.Add(1)
				go func(i int, e exp.Experiment) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					outs[i] = render(e)
				}(i, e)
			}
			wg.Wait()
			for _, out := range outs {
				fmt.Print(out)
			}
			return
		}
		for _, e := range exp.All() {
			run(e)
		}
	case *expID != "":
		e, err := exp.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "use -list to see available experiments")
			os.Exit(1)
		}
		run(e)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
