// Command artbench regenerates the paper's tables and figures from the
// simulator. Each experiment prints the same rows/series the paper
// reports (see DESIGN.md §3 for the per-experiment index).
//
// Usage:
//
//	artbench -list                 # enumerate experiments
//	artbench -exp fig7             # run one experiment at full scale
//	artbench -exp fig2 -quick      # trimmed sweep at miniature scale
//	artbench -all                  # run everything (long)
//	artbench -exp fig7 -div 128 -accesses 3000000 -v
//
// Output goes to stdout as aligned text tables. Every run also records
// its tables as JSON under -outdir (default bench_results/), in a file
// named BENCH_<git-sha>.json, so results are diffable across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"artmem/internal/exp"
	"artmem/internal/telemetry"
	"artmem/internal/textplot"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id to run (see -list)")
		list     = flag.Bool("list", false, "list available experiments")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "miniature scale, trimmed sweeps")
		verbose  = flag.Bool("v", false, "log every simulation run")
		div      = flag.Int64("div", 0, "override the footprint divisor (paper scale / div)")
		accesses = flag.Int64("accesses", 0, "override the per-run access budget")
		seed     = flag.Uint64("seed", 0, "override the base RNG seed")
		par      = flag.Int("parallel", 1, "with -all: run this many experiments concurrently")
		outdir   = flag.String("outdir", "bench_results", "directory for the JSON result file (empty disables)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (paper artifact → id):")
		for _, e := range exp.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
			fmt.Printf("  %-10s paper: %s\n", "", e.Paper)
		}
		return
	}

	o := exp.DefaultOptions()
	if *quick {
		o = exp.QuickOptions()
	}
	if *div > 0 {
		o.Profile.Div = *div
	}
	if *accesses > 0 {
		o.Profile.AppAccesses = *accesses
		o.Profile.PatternAccesses = 2 * *accesses
	}
	if *seed != 0 {
		o.Profile.Seed = *seed
	}
	if *verbose {
		o.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	render := func(e exp.Experiment) (string, expResult) {
		start := time.Now()
		var b strings.Builder
		fmt.Fprintf(&b, "### %s — %s\n", e.ID, e.Title)
		fmt.Fprintf(&b, "### paper: %s\n\n", e.Paper)
		tables := e.Run(o)
		for _, tb := range tables {
			fmt.Fprintln(&b, tb.Render())
		}
		elapsed := time.Since(start)
		fmt.Fprintf(&b, "### %s done in %s\n\n", e.ID, elapsed.Round(time.Millisecond))
		return b.String(), expResult{
			ID: e.ID, Title: e.Title, Paper: e.Paper,
			DurationMs: elapsed.Milliseconds(), Tables: tables,
		}
	}
	var results []expResult
	run := func(e exp.Experiment) {
		out, res := render(e)
		fmt.Print(out)
		results = append(results, res)
	}

	switch {
	case *all:
		if *par > 1 {
			// Experiments are independent; shared caches (graphs, B-trees,
			// pretrained Q-tables) are mutex-protected. Render in
			// parallel, print in registry order.
			exps := exp.All()
			outs := make([]string, len(exps))
			results = make([]expResult, len(exps))
			sem := make(chan struct{}, *par)
			var wg sync.WaitGroup
			for i, e := range exps {
				wg.Add(1)
				go func(i int, e exp.Experiment) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					outs[i], results[i] = render(e)
				}(i, e)
			}
			wg.Wait()
			for _, out := range outs {
				fmt.Print(out)
			}
			writeResults(*outdir, *quick, results)
			return
		}
		for _, e := range exp.All() {
			run(e)
		}
	case *expID != "":
		e, err := exp.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "use -list to see available experiments")
			os.Exit(1)
		}
		run(e)
	default:
		flag.Usage()
		os.Exit(2)
	}
	writeResults(*outdir, *quick, results)
}

// expResult is one experiment's machine-readable record.
type expResult struct {
	ID         string           `json:"id"`
	Title      string           `json:"title"`
	Paper      string           `json:"paper"`
	DurationMs int64            `json:"duration_ms"`
	Tables     []textplot.Table `json:"tables"`
}

// benchFile is the BENCH_<sha>.json document: the build that produced
// the numbers plus every experiment's tables verbatim.
type benchFile struct {
	Revision    string      `json:"revision"`
	Dirty       bool        `json:"dirty,omitempty"`
	GoVersion   string      `json:"go_version"`
	Timestamp   string      `json:"timestamp"`
	Quick       bool        `json:"quick,omitempty"`
	Experiments []expResult `json:"experiments"`
}

// writeResults records the run under dir as BENCH_<git-sha>.json. A
// rerun on the same commit overwrites — the file captures "the numbers
// this tree produces", not a history (git holds the history).
func writeResults(dir string, quick bool, results []expResult) {
	if dir == "" || len(results) == 0 {
		return
	}
	build := telemetry.ReadBuildInfo()
	if build.Revision == "dev" {
		// `go run` skips VCS stamping; ask git directly so the file is
		// still named after the commit when run from a checkout.
		if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
			if sha := strings.TrimSpace(string(out)); sha != "" {
				build.Revision = sha
			}
		}
	}
	doc := benchFile{
		Revision:    build.Revision,
		Dirty:       build.Dirty,
		GoVersion:   build.GoVersion,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Quick:       quick,
		Experiments: results,
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "artbench: cannot create %s: %v\n", dir, err)
		return
	}
	path := filepath.Join(dir, "BENCH_"+build.Revision+".json")
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "artbench: encoding results: %v\n", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "artbench: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("### results written to %s\n", path)
}
