// Top-level benchmark harness: one testing.B benchmark per table and
// figure of the paper (DESIGN.md §3 maps each to its experiment). Each
// benchmark regenerates its artifact at bench scale (BenchOptions) and
// writes the rendered tables to bench_results/<id>.txt so the outputs
// can be inspected and diffed against EXPERIMENTS.md.
//
// Run a single figure:
//
//	go test -bench BenchmarkFig7 -benchtime 1x
//
// Run everything (takes minutes — fig7 alone is hundreds of runs):
//
//	go test -bench . -benchtime 1x
package artmem_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"artmem/internal/exp"
)

// benchExperiment runs experiment id once per b.N iteration and persists
// the output of the final iteration.
func benchExperiment(b *testing.B, id string) {
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	o := exp.BenchOptions()
	var rendered strings.Builder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rendered.Reset()
		rendered.WriteString("# " + e.Title + "\n")
		rendered.WriteString("# paper: " + e.Paper + "\n\n")
		for _, tb := range e.Run(o) {
			rendered.WriteString(tb.Render())
			rendered.WriteByte('\n')
		}
	}
	b.StopTimer()
	if err := os.MkdirAll("bench_results", 0o755); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join("bench_results", id+".txt")
	if err := os.WriteFile(path, []byte(rendered.String()), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s", path)
}

// ---- motivation study -------------------------------------------------------

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }

// ---- main evaluation ---------------------------------------------------------

func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// ---- understanding ArtMem ----------------------------------------------------

func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// ---- scalability and robustness ----------------------------------------------

func BenchmarkFig16a(b *testing.B)    { benchExperiment(b, "fig16a") }
func BenchmarkFig16b(b *testing.B)    { benchExperiment(b, "fig16b") }
func BenchmarkFig16c(b *testing.B)    { benchExperiment(b, "fig16c") }
func BenchmarkFig17(b *testing.B)     { benchExperiment(b, "fig17") }
func BenchmarkOverheads(b *testing.B) { benchExperiment(b, "overheads") }

// ---- extensions ---------------------------------------------------------------

func BenchmarkLiblinearSampling(b *testing.B) { benchExperiment(b, "liblinear-sampling") }
func BenchmarkPageSize(b *testing.B)          { benchExperiment(b, "pagesize") }

// ---- serving frontend ----------------------------------------------------------

func BenchmarkServeBench(b *testing.B) { benchExperiment(b, "servebench") }
