// Package dist provides deterministic random number generation and the
// access-skew distributions used throughout the ArtMem simulation:
// uniform, Zipfian, scrambled Zipfian (YCSB-style), and Pareto.
//
// All generators are seeded explicitly and never touch global state, so
// every experiment in the repository is reproducible bit-for-bit.
package dist

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**). It is not safe for concurrent use; give each goroutine
// its own instance (see Split).
type RNG struct {
	s [4]uint64
}

// splitmix64 is used to seed the xoshiro state from a single word, as
// recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Two generators built from
// the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent generator from r. The derived stream is a
// deterministic function of r's current state, so splitting at the same
// point in two identical runs yields identical children.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("dist: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Multiply-shift with rejection to remove modulo bias.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n), like rand.Perm.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, like rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
