package dist

import "math"

// Zipf generates integers in [0, n) following a Zipfian distribution with
// exponent theta (0 < theta < 1 for the classic YCSB parameterization;
// theta near 1 is highly skewed). Item 0 is the most popular.
//
// The implementation follows Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases" (SIGMOD '94), the same derivation
// used by YCSB's ZipfianGenerator: constant-time draws after O(1) setup.
type Zipf struct {
	rng   *RNG
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	z2    float64 // zeta(2, theta)
}

// NewZipf returns a Zipfian generator over [0, n) with skew theta.
// It panics if n == 0 or theta is not in (0, 1).
func NewZipf(rng *RNG, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("dist: NewZipf with zero n")
	}
	if theta <= 0 || theta >= 1 {
		panic("dist: NewZipf theta must be in (0, 1)")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.z2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.z2/z.zetan)
	return z
}

// zeta computes the generalized harmonic number H_{n,theta}. O(n), done
// once at construction. For the footprint sizes used in this repository
// (≤ tens of millions of items) this is a few milliseconds.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// N returns the number of items.
func (z *Zipf) N() uint64 { return z.n }

// Next draws the next Zipfian-distributed value in [0, n), with 0 the
// hottest item.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// fnv64 scrambles a value with the 64-bit FNV-1a avalanche used by YCSB's
// ScrambledZipfian to spread hot items across the keyspace.
func fnv64(v uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 0x100000001B3
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// ScrambledZipf draws Zipfian-popular items whose identities are scattered
// uniformly over the keyspace (YCSB's ScrambledZipfianGenerator). This is
// the distribution used by the YCSB workload drivers: popularity is
// skewed, but the popular keys are not contiguous.
type ScrambledZipf struct {
	z *Zipf
}

// NewScrambledZipf returns a scrambled Zipfian generator over [0, n).
func NewScrambledZipf(rng *RNG, n uint64, theta float64) *ScrambledZipf {
	return &ScrambledZipf{z: NewZipf(rng, n, theta)}
}

// Next draws the next key in [0, n).
func (s *ScrambledZipf) Next() uint64 {
	return fnv64(s.z.Next()) % s.z.n
}

// Pareto draws values in [0, n) where the rank-frequency relationship
// follows a bounded Pareto distribution with shape alpha. Like Zipf, small
// values are the most frequent. Memory-access literature (and the ArtMem
// paper, §4.3) observes page heat follows Zipf/Pareto shapes; this
// generator backs the synthetic pattern engine.
type Pareto struct {
	rng   *RNG
	n     float64
	shape float64
	// Precomputed bounds of the inverse CDF for the bounded Pareto on
	// [1, n+1): la = L^alpha with L=1, ha = H^-alpha.
	ha float64
}

// NewPareto returns a bounded Pareto generator over [0, n) with the given
// shape (> 0). Larger shapes concentrate mass on small values.
func NewPareto(rng *RNG, n uint64, shape float64) *Pareto {
	if n == 0 {
		panic("dist: NewPareto with zero n")
	}
	if shape <= 0 {
		panic("dist: NewPareto shape must be positive")
	}
	return &Pareto{
		rng:   rng,
		n:     float64(n),
		shape: shape,
		ha:    math.Pow(float64(n)+1, -shape),
	}
}

// Next draws the next Pareto-distributed value in [0, n).
func (p *Pareto) Next() uint64 {
	u := p.rng.Float64()
	// Inverse CDF of bounded Pareto on [L=1, H=n+1].
	x := math.Pow(1-u*(1-p.ha), -1/p.shape)
	v := uint64(x - 1)
	if v >= uint64(p.n) {
		v = uint64(p.n) - 1
	}
	return v
}
