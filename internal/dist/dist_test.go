package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	// Must not be stuck at zero.
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// Child stream should not equal a fresh parent-seeded stream.
	fresh := NewRNG(7)
	match := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == fresh.Uint64() {
			match++
		}
	}
	if match > 2 {
		t.Errorf("split stream tracks the parent seed (%d matches)", match)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := NewRNG(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d has %d draws, want ~%g", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(r, 10000, 0.99)
	const draws = 200000
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v >= 10000 {
			t.Fatalf("Zipf value %d out of range", v)
		}
		counts[v]++
	}
	// Item 0 must be by far the hottest; top-10 items should take a large
	// share of accesses under theta=0.99.
	top10 := 0
	for i := uint64(0); i < 10; i++ {
		top10 += counts[i]
	}
	if counts[0] < counts[1] {
		t.Errorf("item 0 (%d) not hotter than item 1 (%d)", counts[0], counts[1])
	}
	if frac := float64(top10) / draws; frac < 0.3 {
		t.Errorf("top-10 share = %g, want skewed (>0.3)", frac)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n     uint64
		theta float64
	}{{0, 0.5}, {10, 0}, {10, 1}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %g) did not panic", tc.n, tc.theta)
				}
			}()
			NewZipf(NewRNG(1), tc.n, tc.theta)
		}()
	}
}

func TestScrambledZipfSpreadsHotKeys(t *testing.T) {
	r := NewRNG(5)
	s := NewScrambledZipf(r, 100000, 0.99)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		v := s.Next()
		if v >= 100000 {
			t.Fatalf("value %d out of range", v)
		}
		counts[v]++
	}
	// Find the two hottest keys: they must not be adjacent (scrambling).
	var k1, k2 uint64
	var c1, c2 int
	for k, c := range counts {
		if c > c1 {
			k2, c2 = k1, c1
			k1, c1 = k, c
		} else if c > c2 {
			k2, c2 = k, c
		}
	}
	if c1 < 100 {
		t.Fatalf("hottest key only %d draws; distribution not skewed", c1)
	}
	d := int64(k1) - int64(k2)
	if d < 0 {
		d = -d
	}
	if d == 1 {
		t.Errorf("two hottest keys are adjacent (%d, %d); not scrambled", k1, k2)
	}
}

func TestParetoSkewAndRange(t *testing.T) {
	r := NewRNG(13)
	p := NewPareto(r, 1000, 1.2)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		v := p.Next()
		if v >= 1000 {
			t.Fatalf("Pareto value %d out of range", v)
		}
		counts[v]++
	}
	low, high := 0, 0
	for i := 0; i < 100; i++ {
		low += counts[i]
	}
	for i := 900; i < 1000; i++ {
		high += counts[i]
	}
	if low <= high*5 {
		t.Errorf("low decile %d not ≫ high decile %d; not Pareto-skewed", low, high)
	}
}

func TestParetoPanics(t *testing.T) {
	for _, tc := range []struct {
		n     uint64
		shape float64
	}{{0, 1}, {10, 0}, {10, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPareto(%d, %g) did not panic", tc.n, tc.shape)
				}
			}()
			NewPareto(NewRNG(1), tc.n, tc.shape)
		}()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := NewZipf(NewRNG(1), 1<<20, 0.99)
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func TestShufflePermutes(t *testing.T) {
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r := NewRNG(5)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if v < 0 || v >= len(xs) || seen[v] {
			t.Fatalf("not a permutation: %v", xs)
		}
		seen[v] = true
	}
	// Same seed shuffles identically.
	ys := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r2 := NewRNG(5)
	r2.Shuffle(len(ys), func(i, j int) { ys[i], ys[j] = ys[j], ys[i] })
	for i := range xs {
		if xs[i] != ys[i] {
			t.Fatalf("same-seed shuffles differ: %v vs %v", xs, ys)
		}
	}
}
