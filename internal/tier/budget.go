package tier

// Budgets meters migrations per tier boundary. Boundary b is the edge
// between tier b and tier b+1; every promotion or demotion crossing
// that edge consumes one unit. A per-boundary limit of 0 means
// unmetered. Reset refills all boundaries at the start of a migration
// period.
//
// Budgets is plain bookkeeping (no locking); the consumer serializes.
type Budgets struct {
	limit []int
	left  []int
}

// NewBudgets returns budgets for nBoundaries boundaries, each with the
// given per-period limit (0 = unmetered), already filled.
func NewBudgets(nBoundaries, perBoundary int) *Budgets {
	b := &Budgets{
		limit: make([]int, nBoundaries),
		left:  make([]int, nBoundaries),
	}
	for i := range b.limit {
		b.limit[i] = perBoundary
	}
	b.Reset()
	return b
}

// Boundaries returns the number of boundaries tracked.
func (b *Budgets) Boundaries() int { return len(b.limit) }

// SetLimit changes boundary i's per-period limit (0 = unmetered). The
// new limit takes effect at the next Reset.
func (b *Budgets) SetLimit(i, pages int) { b.limit[i] = pages }

// Limit returns boundary i's per-period limit.
func (b *Budgets) Limit(i int) int { return b.limit[i] }

// Reset refills every boundary to its limit.
func (b *Budgets) Reset() {
	copy(b.left, b.limit)
}

// Take consumes one unit from boundary i, reporting false when the
// boundary is exhausted. Unmetered boundaries always succeed.
func (b *Budgets) Take(i int) bool {
	if b.limit[i] == 0 {
		return true
	}
	if b.left[i] <= 0 {
		return false
	}
	b.left[i]--
	return true
}

// Remaining returns boundary i's remaining units this period, or -1 if
// the boundary is unmetered.
func (b *Budgets) Remaining(i int) int {
	if b.limit[i] == 0 {
		return -1
	}
	return b.left[i]
}
