package tier

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseChain parses a compact chain spec of the form
//
//	tier[/tier...]
//	tier := name[:opt[,opt...]]
//	opt  := lat=<ns> | rbw=<GB/s> | wbw=<GB/s> | bw=<GB/s>
//	      | cap=<pages> | cap=<pct>% | <pct>%
//
// A name matching a Preset (DRAM, CXL, PM, NVMe; case-insensitive)
// starts from the preset's latency/bandwidth figures, which individual
// opts may override; any other name must spell out lat and bandwidth.
// "bw" sets read and write bandwidth together. A bare "25%" opt is
// shorthand for "cap=25%". Capacity left unset means unbounded, which
// Validate accepts only on the last tier.
//
// Examples:
//
//	DRAM:25%/PM                    — the seed machine's shape
//	DRAM:12.5%/CXL:25%/PM          — three-tier with a CXL middle
//	hbm:lat=50,bw=400,cap=1024/DRAM
//
// The returned chain always passes Validate.
func ParseChain(s string) (Chain, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("tier: empty chain spec")
	}
	parts := strings.Split(s, "/")
	c := make(Chain, 0, len(parts))
	for _, part := range parts {
		d, err := parseTier(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		c = append(c, d)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseTier(s string) (Desc, error) {
	name, opts, hasOpts := strings.Cut(s, ":")
	d, isPreset := Preset(name)
	if !isPreset {
		d = Desc{Name: name}
	}
	if err := checkName(name); err != nil {
		return Desc{}, err
	}
	if !isPreset {
		d.Name = name
	}
	if !hasOpts {
		return d, nil
	}
	for _, opt := range strings.Split(opts, ",") {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			return Desc{}, fmt.Errorf("tier %s: empty option", name)
		}
		key, val, hasEq := strings.Cut(opt, "=")
		if !hasEq {
			// Bare "25%" is capacity shorthand.
			key, val = "cap", opt
		}
		switch key {
		case "lat":
			f, err := parsePositive(name, "lat", val)
			if err != nil {
				return Desc{}, err
			}
			d.LatencyNs = f
		case "rbw":
			f, err := parsePositive(name, "rbw", val)
			if err != nil {
				return Desc{}, err
			}
			d.ReadBWGBs = f
		case "wbw":
			f, err := parsePositive(name, "wbw", val)
			if err != nil {
				return Desc{}, err
			}
			d.WriteBWGBs = f
		case "bw":
			f, err := parsePositive(name, "bw", val)
			if err != nil {
				return Desc{}, err
			}
			d.ReadBWGBs, d.WriteBWGBs = f, f
		case "cap":
			if pct, ok := strings.CutSuffix(val, "%"); ok {
				f, err := parsePositive(name, "cap", pct)
				if err != nil {
					return Desc{}, err
				}
				d.CapacityPct, d.CapacityPages = f, 0
			} else {
				n, err := strconv.Atoi(val)
				if err != nil || n <= 0 {
					return Desc{}, fmt.Errorf("tier %s: bad cap %q (want positive page count or pct%%)", name, val)
				}
				d.CapacityPages, d.CapacityPct = n, 0
			}
		default:
			return Desc{}, fmt.Errorf("tier %s: unknown option %q", name, key)
		}
	}
	return d, nil
}

func parsePositive(tierName, key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || f <= 0 || f != f || f > 1e18 {
		return 0, fmt.Errorf("tier %s: bad %s %q (want positive number)", tierName, key, val)
	}
	return f, nil
}

// Canonical renders the chain in fully explicit spec form — every
// latency, bandwidth and capacity spelled out, fixed option order — so
// that equal chains render identically regardless of how they were
// written. For a valid chain, ParseChain(c.Canonical()) reproduces c
// exactly; the canonical string is used as the cache-key ingredient by
// the harness.
func (c Chain) Canonical() string {
	var b strings.Builder
	for i := range c {
		d := &c[i]
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%s:lat=%s,rbw=%s,wbw=%s",
			d.Name, ftoa(d.LatencyNs), ftoa(d.ReadBWGBs), ftoa(d.WriteBWGBs))
		switch {
		case d.CapacityPages > 0:
			fmt.Fprintf(&b, ",cap=%d", d.CapacityPages)
		case d.CapacityPct > 0:
			fmt.Fprintf(&b, ",cap=%s%%", ftoa(d.CapacityPct))
		}
	}
	return b.String()
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
