package tier

// ShadowTable tracks the shadow copies created by non-exclusive
// (Nomad-style) promotion. When a page is promoted, its old frame in
// the source tier is not freed but kept as a *shadow*: a clean copy
// that lets a later demotion back to that tier complete as a free
// discard (flip the resident pointer, no transfer) instead of a full
// re-migration. A write to the page invalidates the shadow (the copy
// would be stale), and shadow frames are reclaimable on demand when
// their tier runs out of room.
//
// The table stores at most one shadow per page and a per-tier LIFO
// reclaim stack, so eviction under capacity pressure is deterministic.
// All methods are O(1). The zero table is not usable; use
// NewShadowTable.
type ShadowTable struct {
	// at[p] is the shadow tier + 1 for page p, 0 = no shadow.
	at []uint8
	// byTier[t] is the reclaim stack of pages whose shadow lives in
	// tier t; pos[p] is p's index in its stack.
	byTier [][]uint32
	pos    []uint32
	total  int
}

// NewShadowTable returns an empty table for numPages pages across
// numTiers tiers.
func NewShadowTable(numPages, numTiers int) *ShadowTable {
	return &ShadowTable{
		at:     make([]uint8, numPages),
		byTier: make([][]uint32, numTiers),
		pos:    make([]uint32, numPages),
	}
}

// At returns the tier holding page p's shadow copy, if any.
func (s *ShadowTable) At(p uint32) (int, bool) {
	t := s.at[p]
	if t == 0 {
		return 0, false
	}
	return int(t - 1), true
}

// Add records a shadow copy of page p in tier t. The page must not
// already have a shadow (callers invalidate first; see Machine).
func (s *ShadowTable) Add(p uint32, t int) {
	if s.at[p] != 0 {
		panic("tier: Add over existing shadow")
	}
	s.at[p] = uint8(t) + 1
	s.pos[p] = uint32(len(s.byTier[t]))
	s.byTier[t] = append(s.byTier[t], p)
	s.total++
}

// Remove drops page p's shadow entry. It is a no-op if p has none.
// The caller owns the freed frame's accounting.
func (s *ShadowTable) Remove(p uint32) {
	t := s.at[p]
	if t == 0 {
		return
	}
	s.at[p] = 0
	stack := s.byTier[t-1]
	i := s.pos[p]
	last := stack[len(stack)-1]
	stack[i] = last
	s.pos[last] = i
	s.byTier[t-1] = stack[:len(stack)-1]
	s.total--
}

// PopReclaim evicts and returns the most recently added shadow in tier
// t, for reclaiming its frame under capacity pressure. LIFO order keeps
// eviction deterministic and favors keeping long-lived shadows (the
// stable pages non-exclusive migration exists to protect).
func (s *ShadowTable) PopReclaim(t int) (uint32, bool) {
	stack := s.byTier[t]
	if len(stack) == 0 {
		return 0, false
	}
	p := stack[len(stack)-1]
	s.byTier[t] = stack[:len(stack)-1]
	s.at[p] = 0
	s.total--
	return p, true
}

// Count returns the number of shadow frames currently held in tier t.
func (s *ShadowTable) Count(t int) int { return len(s.byTier[t]) }

// Total returns the number of shadow frames across all tiers.
func (s *ShadowTable) Total() int { return s.total }
