// Package tier models an ordered chain of memory tiers — the
// generalization of the paper's two-tier (DRAM + Optane PM) evaluation
// machine to arbitrary DRAM / CXL / PM / NVMe hierarchies.
//
// A Chain is an ordered list of tier descriptors, fastest first. Each
// descriptor carries the tier's access latency, read/write bandwidth
// (the same cost-model inputs as the paper's Table 2) and a capacity,
// expressed either as an absolute page count or as a percentage of the
// machine footprint. The last tier may be unbounded ("the rest"), like
// the seed machine's slow tier.
//
// The package is pure model + bookkeeping: it has no dependency on the
// simulator. memsim consumes a Chain through Config.Chain and keeps its
// legacy two-tier configuration byte-identical when Chain is nil;
// ShadowTable implements the page bookkeeping for non-exclusive
// (Nomad-style) migration, and Budgets meters migrations per tier
// boundary. See DESIGN.md §13.
package tier

import (
	"fmt"
	"strings"
)

// MaxTiers bounds chain length. TierIDs are uint8 in the simulator and
// latency-class tables are sized per tier, so keep this comfortably small.
const MaxTiers = 8

// Desc describes one tier in a chain.
type Desc struct {
	// Name identifies the tier ("DRAM", "CXL", ...). Names must be
	// unique within a chain; they become telemetry label values.
	Name string
	// LatencyNs is the idle load-to-use latency in nanoseconds.
	// Latencies must increase strictly down the chain.
	LatencyNs float64
	// ReadBWGBs and WriteBWGBs are sequential bandwidths in GB/s. They
	// bound demand accesses and migration transfer speed; zero is
	// rejected by Validate.
	ReadBWGBs  float64
	WriteBWGBs float64
	// Capacity is one of:
	//   - CapacityPages > 0: absolute page count;
	//   - CapacityPct   > 0: percentage of the machine footprint;
	//   - both zero: unbounded (sized to the footprint) — legal only
	//     for the last tier of a chain.
	CapacityPages int
	CapacityPct   float64
}

// Unbounded reports whether the descriptor has no explicit capacity.
func (d *Desc) Unbounded() bool { return d.CapacityPages == 0 && d.CapacityPct == 0 }

// Chain is an ordered tier hierarchy, fastest tier first.
type Chain []Desc

// NumBoundaries returns the number of adjacent tier pairs.
func (c Chain) NumBoundaries() int {
	if len(c) < 2 {
		return 0
	}
	return len(c) - 1
}

// Names returns the tier names in chain order.
func (c Chain) Names() []string {
	out := make([]string, len(c))
	for i := range c {
		out[i] = c[i].Name
	}
	return out
}

// Validate checks the chain for structural soundness: 2..MaxTiers
// tiers, unique well-formed names, strictly increasing latency down the
// chain, positive bandwidths, and a positive capacity on every tier
// except (optionally) the last.
func (c Chain) Validate() error {
	if len(c) < 2 {
		return fmt.Errorf("tier: chain needs at least 2 tiers, got %d", len(c))
	}
	if len(c) > MaxTiers {
		return fmt.Errorf("tier: chain has %d tiers, max %d", len(c), MaxTiers)
	}
	seen := make(map[string]bool, len(c))
	for i := range c {
		d := &c[i]
		if err := checkName(d.Name); err != nil {
			return fmt.Errorf("tier %d: %w", i, err)
		}
		if seen[d.Name] {
			return fmt.Errorf("tier: duplicate tier name %q", d.Name)
		}
		seen[d.Name] = true
		if d.LatencyNs <= 0 {
			return fmt.Errorf("tier %s: latency must be positive, got %g", d.Name, d.LatencyNs)
		}
		if i > 0 && d.LatencyNs <= c[i-1].LatencyNs {
			return fmt.Errorf("tier: latency must increase strictly down the chain: %s (%gns) after %s (%gns)",
				d.Name, d.LatencyNs, c[i-1].Name, c[i-1].LatencyNs)
		}
		if d.ReadBWGBs <= 0 || d.WriteBWGBs <= 0 {
			return fmt.Errorf("tier %s: bandwidths must be positive, got read=%g write=%g",
				d.Name, d.ReadBWGBs, d.WriteBWGBs)
		}
		if d.CapacityPages < 0 || d.CapacityPct < 0 {
			return fmt.Errorf("tier %s: negative capacity", d.Name)
		}
		if d.CapacityPages > 0 && d.CapacityPct > 0 {
			return fmt.Errorf("tier %s: capacity given both as pages and percent", d.Name)
		}
		if d.CapacityPct > 100 {
			return fmt.Errorf("tier %s: capacity percent must be in (0,100], got %g", d.Name, d.CapacityPct)
		}
		if d.Unbounded() && i != len(c)-1 {
			return fmt.Errorf("tier %s: zero capacity is only legal for the last tier", d.Name)
		}
	}
	return nil
}

func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("tier: empty tier name")
	}
	for i, r := range name {
		ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			i > 0 && (r >= '0' && r <= '9' || r == '_' || r == '-')
		if !ok {
			return fmt.Errorf("tier: bad tier name %q (want [A-Za-z][A-Za-z0-9_-]*)", name)
		}
	}
	return nil
}

// Resolved is a Desc with its capacity fixed to a concrete page count.
// Pages==0 means unbounded (last tier only): the consumer sizes the
// tier to hold the whole footprint.
type Resolved struct {
	Desc
	Pages int
}

// Resolve fixes percentage capacities against a concrete footprint of
// totalPages pages. Percent capacities round down but never below one
// page. The chain must Validate.
func (c Chain) Resolve(totalPages int) ([]Resolved, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if totalPages <= 0 {
		return nil, fmt.Errorf("tier: Resolve needs a positive footprint, got %d pages", totalPages)
	}
	out := make([]Resolved, len(c))
	for i := range c {
		out[i] = Resolved{Desc: c[i], Pages: c[i].CapacityPages}
		if c[i].CapacityPct > 0 {
			p := int(c[i].CapacityPct / 100 * float64(totalPages))
			if p < 1 {
				p = 1
			}
			out[i].Pages = p
		}
	}
	return out, nil
}

// Preset returns the built-in descriptor for a well-known tier
// technology, capacity left unset. Matching is case-insensitive.
//
// DRAM and PM carry the paper's Table 2 numbers (PM writes derated 3x,
// matching memsim.DefaultConfig); CXL sits between them per typical
// CXL-attached DRAM measurements; NVMe models a cold flash tier.
func Preset(name string) (Desc, bool) {
	switch strings.ToUpper(name) {
	case "DRAM":
		return Desc{Name: "DRAM", LatencyNs: 92, ReadBWGBs: 81, WriteBWGBs: 81}, true
	case "CXL":
		return Desc{Name: "CXL", LatencyNs: 180, ReadBWGBs: 45, WriteBWGBs: 45}, true
	case "PM":
		// WriteBWGBs matches memsim.DefaultConfig's derated figure
		// exactly (26/3 in untyped-constant arithmetic = 8), so a
		// DRAM/PM chain reproduces the seed machine's cost model
		// byte for byte.
		return Desc{Name: "PM", LatencyNs: 323, ReadBWGBs: 26, WriteBWGBs: 8}, true
	case "NVME":
		return Desc{Name: "NVMe", LatencyNs: 25000, ReadBWGBs: 6, WriteBWGBs: 3}, true
	}
	return Desc{}, false
}
