package tier

import (
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, s string) Chain {
	t.Helper()
	c, err := ParseChain(s)
	if err != nil {
		t.Fatalf("ParseChain(%q): %v", s, err)
	}
	return c
}

func TestParseChainPresets(t *testing.T) {
	c := mustParse(t, "DRAM:25%/PM")
	if len(c) != 2 {
		t.Fatalf("got %d tiers, want 2", len(c))
	}
	if c[0].Name != "DRAM" || c[0].LatencyNs != 92 || c[0].ReadBWGBs != 81 || c[0].CapacityPct != 25 {
		t.Fatalf("bad DRAM tier: %+v", c[0])
	}
	if c[1].Name != "PM" || c[1].LatencyNs != 323 || !c[1].Unbounded() {
		t.Fatalf("bad PM tier: %+v", c[1])
	}
	if c[1].WriteBWGBs != 8 {
		t.Fatalf("PM write bandwidth %g, want the seed machine's derated 8", c[1].WriteBWGBs)
	}
	// Preset names are case-insensitive and normalize to the preset's
	// canonical spelling.
	c2 := mustParse(t, "dram:25%/pm")
	if !reflect.DeepEqual(c, c2) {
		t.Fatalf("case-insensitive preset mismatch:\n%+v\n%+v", c, c2)
	}
}

func TestParseChainCustomAndOverrides(t *testing.T) {
	c := mustParse(t, "hbm:lat=50,bw=400,cap=1024/DRAM:rbw=90,cap=25%/PM:lat=400")
	if c[0].Name != "hbm" || c[0].LatencyNs != 50 || c[0].ReadBWGBs != 400 ||
		c[0].WriteBWGBs != 400 || c[0].CapacityPages != 1024 {
		t.Fatalf("bad custom tier: %+v", c[0])
	}
	if c[1].ReadBWGBs != 90 || c[1].WriteBWGBs != 81 {
		t.Fatalf("override should touch only rbw: %+v", c[1])
	}
	if c[2].LatencyNs != 400 {
		t.Fatalf("preset latency override lost: %+v", c[2])
	}
}

func TestParseChainRejects(t *testing.T) {
	cases := map[string]string{
		"empty spec":            "",
		"one tier":              "DRAM",
		"unknown custom no lat": "DRAM:25%/mystery",
		"zero bandwidth":        "DRAM:25%/slow:lat=500,bw=0",
		"negative latency":      "DRAM:25%/slow:lat=-1,bw=5",
		"non-monotonic latency": "PM:25%/DRAM",
		"equal latency":         "DRAM:25%/DRAM2:lat=92,bw=45",
		"middle tier unbounded": "DRAM:25%/CXL/PM",
		"zero-capacity pages":   "DRAM:cap=0/PM",
		"pct over 100":          "DRAM:150%/PM",
		"duplicate names":       "DRAM:25%/DRAM:lat=100,bw=40",
		"bad name":              "1dram:lat=50,bw=10,cap=8/PM",
		"unknown option":        "DRAM:25%,zap=3/PM",
		"empty option":          "DRAM:25%,/PM",
		"too many tiers":        strings.Repeat("t", 1), // placeholder, replaced below
		"nan latency":           "DRAM:25%/slow:lat=NaN,bw=5",
		"inf bandwidth":         "DRAM:25%/slow:lat=500,bw=1e300",
		"negative cap":          "DRAM:cap=-5/PM",
	}
	// Build a >MaxTiers chain: strictly increasing latencies, unique names.
	var parts []string
	for i := 0; i <= MaxTiers; i++ {
		parts = append(parts, strings.ToLower("t"+string(rune('a'+i)))+":lat="+itoa(100+i)+",bw=10,cap=8")
	}
	cases["too many tiers"] = strings.Join(parts, "/")

	for name, spec := range cases {
		if _, err := ParseChain(spec); err == nil {
			t.Errorf("%s: ParseChain(%q) unexpectedly succeeded", name, spec)
		}
	}
}

func itoa(n int) string {
	return string(rune('0'+n/100)) + string(rune('0'+n/10%10)) + string(rune('0'+n%10))
}

func TestParseChainBothCapFormsLastWins(t *testing.T) {
	// "cap=5,cap=25%" is not an error at parse level — later options
	// override earlier ones, and each cap form clears the other, so the
	// result is a pure pct capacity that validates.
	c, err := ParseChain("DRAM:cap=5,cap=25%/PM")
	if err != nil {
		t.Fatalf("ParseChain: %v", err)
	}
	if c[0].CapacityPages != 0 || c[0].CapacityPct != 25 {
		t.Fatalf("want pct-only capacity, got %+v", c[0])
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"DRAM:25%/PM",
		"DRAM:12.5%/CXL:25%/PM",
		"DRAM:cap=4096/CXL:cap=8192/PM:cap=65536/NVMe",
		"hbm:lat=50,bw=400,cap=1024/DRAM",
	} {
		c := mustParse(t, spec)
		canon := c.Canonical()
		c2, err := ParseChain(canon)
		if err != nil {
			t.Fatalf("reparse Canonical(%q)=%q: %v", spec, canon, err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("round trip of %q changed chain:\n  %+v\n  %+v", spec, c, c2)
		}
		if c2.Canonical() != canon {
			t.Fatalf("Canonical not a fixed point for %q: %q vs %q", spec, canon, c2.Canonical())
		}
	}
}

func TestResolve(t *testing.T) {
	c := mustParse(t, "DRAM:12.5%/CXL:25%/PM")
	r, err := c.Resolve(1000)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if r[0].Pages != 125 || r[1].Pages != 250 || r[2].Pages != 0 {
		t.Fatalf("bad resolution: %d/%d/%d", r[0].Pages, r[1].Pages, r[2].Pages)
	}
	// Tiny footprints round down to at least one page.
	r, err = c.Resolve(3)
	if err != nil {
		t.Fatalf("Resolve(3): %v", err)
	}
	if r[0].Pages != 1 {
		t.Fatalf("12.5%% of 3 pages should clamp to 1, got %d", r[0].Pages)
	}
	if _, err := c.Resolve(0); err == nil {
		t.Fatal("Resolve(0) should fail")
	}
}

func TestShadowTable(t *testing.T) {
	s := NewShadowTable(16, 3)
	if _, ok := s.At(3); ok {
		t.Fatal("fresh table should have no shadows")
	}
	s.Add(3, 2)
	s.Add(5, 2)
	s.Add(7, 1)
	if got, ok := s.At(3); !ok || got != 2 {
		t.Fatalf("At(3) = %d,%v", got, ok)
	}
	if s.Count(2) != 2 || s.Count(1) != 1 || s.Total() != 3 {
		t.Fatalf("counts: tier2=%d tier1=%d total=%d", s.Count(2), s.Count(1), s.Total())
	}
	// Remove from the middle of the stack (swap-remove).
	s.Remove(3)
	if _, ok := s.At(3); ok {
		t.Fatal("removed shadow still present")
	}
	if s.Count(2) != 1 || s.Total() != 2 {
		t.Fatalf("after remove: tier2=%d total=%d", s.Count(2), s.Total())
	}
	s.Remove(3) // no-op
	if s.Total() != 2 {
		t.Fatal("double remove changed counts")
	}
	// LIFO reclaim.
	s.Add(9, 2)
	s.Add(11, 2)
	p, ok := s.PopReclaim(2)
	if !ok || p != 11 {
		t.Fatalf("PopReclaim = %d,%v, want 11 (LIFO)", p, ok)
	}
	if _, ok := s.At(11); ok {
		t.Fatal("reclaimed shadow still in table")
	}
	if _, ok := s.PopReclaim(0); ok {
		t.Fatal("PopReclaim on empty tier should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add over existing shadow should panic")
		}
	}()
	s.Add(9, 1)
}

func TestBudgets(t *testing.T) {
	b := NewBudgets(3, 2)
	if b.Boundaries() != 3 {
		t.Fatalf("Boundaries = %d", b.Boundaries())
	}
	if !b.Take(0) || !b.Take(0) || b.Take(0) {
		t.Fatal("boundary 0 should allow exactly 2 takes")
	}
	if b.Remaining(0) != 0 || b.Remaining(1) != 2 {
		t.Fatalf("remaining: %d/%d", b.Remaining(0), b.Remaining(1))
	}
	b.Reset()
	if b.Remaining(0) != 2 {
		t.Fatal("Reset did not refill")
	}
	// Unmetered boundaries never exhaust.
	b.SetLimit(2, 0)
	b.Reset()
	for i := 0; i < 100; i++ {
		if !b.Take(2) {
			t.Fatal("unmetered boundary exhausted")
		}
	}
	if b.Remaining(2) != -1 {
		t.Fatalf("unmetered Remaining = %d, want -1", b.Remaining(2))
	}
}

func TestChainHelpers(t *testing.T) {
	c := mustParse(t, "DRAM:12.5%/CXL:25%/PM")
	if c.NumBoundaries() != 2 {
		t.Fatalf("NumBoundaries = %d", c.NumBoundaries())
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"DRAM", "CXL", "PM"}) {
		t.Fatalf("Names = %v", got)
	}
	if Chain(nil).NumBoundaries() != 0 {
		t.Fatal("nil chain should have 0 boundaries")
	}
}
