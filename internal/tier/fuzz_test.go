package tier

import (
	"reflect"
	"testing"
)

// FuzzTierChain covers the chain parser/canonicalizer the way
// FuzzDecodeFrame covers the wire protocol: no input may panic, and
// every accepted input must obey the canonicalization contract —
// the parsed chain validates, Canonical re-parses to an identical
// chain, and Canonical is a fixed point.
func FuzzTierChain(f *testing.F) {
	for _, seed := range []string{
		"DRAM:25%/PM",
		"DRAM:12.5%/CXL:25%/PM",
		"DRAM:cap=4096/CXL:cap=8192/PM:cap=65536/NVMe",
		"hbm:lat=50,bw=400,cap=1024/DRAM",
		"dram:25%/pm",
		"DRAM:lat=92,rbw=81,wbw=81,cap=25%/PM:lat=323,rbw=26,wbw=8.666666666666666",
		"",
		"DRAM",
		"PM/DRAM",
		"a:lat=1,bw=1,cap=1/b:lat=2,bw=1",
		"DRAM:cap=0/PM",
		"DRAM:150%/PM",
		"x:lat=1e308,bw=1e-300,cap=1/y:lat=1e309,bw=1",
		"DRAM:25%//PM",
		"DRAM:25%,zap/PM",
		"DRAM:25%\x00/PM",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := ParseChain(spec)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("ParseChain(%q) accepted a chain that fails Validate: %v", spec, verr)
		}
		canon := c.Canonical()
		c2, err := ParseChain(canon)
		if err != nil {
			t.Fatalf("Canonical of accepted spec %q does not re-parse: %q: %v", spec, canon, err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("canonical round trip changed chain for %q:\n  %+v\n  %+v", spec, c, c2)
		}
		if c2.Canonical() != canon {
			t.Fatalf("Canonical not a fixed point for %q", spec)
		}
		if _, err := c.Resolve(1 << 16); err != nil {
			t.Fatalf("valid chain fails Resolve: %v", err)
		}
	})
}
