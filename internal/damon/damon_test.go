package damon

import (
	"testing"
	"testing/quick"

	"artmem/internal/memsim"
)

func testMachine(pages int) *memsim.Machine {
	cfg := memsim.DefaultConfig(int64(pages)*4096, int64(pages)*4096/2, 4096)
	cfg.CacheLines = 0
	return memsim.NewMachine(cfg)
}

func TestInitialRegionsPartitionSpace(t *testing.T) {
	m := testMachine(1000)
	mon := NewMonitor(m, DefaultConfig())
	if err := mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := len(mon.Regions()); got != 10 {
		t.Errorf("initial regions = %d, want MinRegions", got)
	}
}

func TestTinySpaceFewerRegionsThanMin(t *testing.T) {
	m := testMachine(4)
	mon := NewMonitor(m, DefaultConfig())
	if err := mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := len(mon.Regions()); got > 4 {
		t.Errorf("%d regions for a 4-page space", got)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	m := testMachine(100)
	mon := NewMonitor(m, Config{})
	if mon.cfg.MinRegions != 10 || mon.cfg.SamplesPerAggregation != 20 {
		t.Errorf("defaults not applied: %+v", mon.cfg)
	}
	if mon.cfg.MaxRegions < mon.cfg.MinRegions {
		t.Errorf("MaxRegions %d below MinRegions", mon.cfg.MaxRegions)
	}
}

func TestAggregationCadence(t *testing.T) {
	m := testMachine(100)
	cfg := DefaultConfig()
	cfg.SamplesPerAggregation = 5
	mon := NewMonitor(m, cfg)
	for i := 0; i < 4; i++ {
		mon.Sample()
	}
	if mon.Aggregations() != 0 {
		t.Fatalf("aggregated after %d samples", 4)
	}
	mon.Sample()
	if mon.Aggregations() != 1 {
		t.Errorf("no aggregation after %d samples", cfg.SamplesPerAggregation)
	}
}

func TestHotRegionGetsHighCount(t *testing.T) {
	m := testMachine(1024)
	cfg := DefaultConfig()
	cfg.MaxRegions = 64
	cfg.Seed = 3
	mon := NewMonitor(m, cfg)
	// Pages 0..127 are hot; touch them between samples for several
	// aggregation windows.
	for w := 0; w < 30*cfg.SamplesPerAggregation; w++ {
		for p := uint64(0); p < 128; p += 4 {
			m.Access(p*4096+uint64(w%4)*4096, false)
		}
		mon.Sample()
		if err := mon.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	// Estimate heat in the hot eighth vs the cold rest.
	snap := mon.Snapshot(8)
	cold := 0.0
	for _, v := range snap[1:] {
		cold += v
	}
	cold /= 7
	if snap[0] <= cold*2 {
		t.Errorf("hot bin %g not ≫ mean cold bin %g (snapshot %v)", snap[0], cold, snap)
	}
}

func TestRegionCountBounded(t *testing.T) {
	m := testMachine(4096)
	cfg := DefaultConfig()
	cfg.MinRegions = 8
	cfg.MaxRegions = 32
	mon := NewMonitor(m, cfg)
	for i := 0; i < 200; i++ {
		// Random traffic to drive splits and merges.
		m.Access(uint64(i*977%4096)*4096, false)
		mon.Sample()
		if got := len(mon.Regions()); got > 32 {
			t.Fatalf("region count %d exceeds max after %d samples", got, i)
		}
		if err := mon.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSampleChargesOverheadProportionalToRegions(t *testing.T) {
	m := testMachine(1 << 14)
	cfg := DefaultConfig()
	cfg.MaxRegions = 20
	mon := NewMonitor(m, cfg)
	before := m.BackgroundNs()
	mon.Sample()
	perSample := m.BackgroundNs() - before
	// Cost scales with regions (≤ 20·10ns), not the 16k-page footprint.
	if perSample > 20*10+1 {
		t.Errorf("sample cost %gns scales with footprint, want region-bounded", perSample)
	}
}

func TestSnapshotSpreadsRegionCounts(t *testing.T) {
	m := testMachine(100)
	mon := NewMonitor(m, Config{MinRegions: 2, MaxRegions: 2, SamplesPerAggregation: 1})
	mon.regions = []Region{
		{Start: 0, End: 50, NrAccesses: 10},
		{Start: 50, End: 100, NrAccesses: 0},
	}
	snap := mon.Snapshot(4)
	if snap[0] <= 0 || snap[1] <= 0 {
		t.Errorf("hot half missing heat: %v", snap)
	}
	if snap[2] != 0 || snap[3] != 0 {
		t.Errorf("cold half has heat: %v", snap)
	}
	// Degenerate bins.
	if got := mon.Snapshot(0); len(got) != 0 {
		t.Errorf("Snapshot(0) = %v", got)
	}
}

// Property: invariants hold under arbitrary access/sample interleavings.
func TestInvariantsProperty(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		m := testMachine(256)
		cfg := DefaultConfig()
		cfg.MinRegions = 4
		cfg.MaxRegions = 24
		cfg.SamplesPerAggregation = 3
		cfg.Seed = seed
		mon := NewMonitor(m, cfg)
		for _, op := range ops {
			if op%3 == 0 {
				mon.Sample()
			} else {
				m.Access(uint64(op%256)*4096, op%2 == 0)
			}
			if mon.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSample(b *testing.B) {
	m := testMachine(1 << 16)
	cfg := DefaultConfig()
	cfg.MaxRegions = 100
	mon := NewMonitor(m, cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mon.Sample()
	}
}
