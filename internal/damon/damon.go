// Package damon implements a DAMON-style region-based access monitor.
//
// DAMON (Data Access MONitor) is the kernel subsystem the paper uses to
// visualize workload access footprints (Figure 10, "as measured by
// DAMON"), and region-based scanning is one of the three monitoring
// classes its Background section surveys (§2.1: DAMON and MTM "collect
// page access information by periodically scanning page tables, and
// control overhead and accuracy by splitting and merging sampling
// regions").
//
// The algorithm follows DAMON's design:
//
//   - the address space is partitioned into contiguous regions;
//   - each sampling step probes ONE page per region (spatial-locality
//     assumption: one page's accessed bit stands in for the region);
//   - each aggregation step turns per-region probe hits into an access
//     count, adaptively SPLITS regions (to find sub-region structure)
//     and MERGES adjacent regions with similar counts (to bound
//     overhead), keeping the region count within [MinRegions,
//     MaxRegions].
//
// Overhead is therefore proportional to the region count, not the
// footprint — the property that makes DAMON practical on huge address
// spaces, reproduced faithfully here.
package damon

import (
	"fmt"

	"artmem/internal/dist"
	"artmem/internal/memsim"
)

// Region is one monitored address range with its access statistics.
type Region struct {
	// Start and End delimit the region in pages: [Start, End).
	Start, End memsim.PageID
	// NrAccesses is the number of sampling probes that found the region
	// accessed during the last aggregation window.
	NrAccesses int
	// Age counts aggregation windows since the region was created or its
	// access level changed materially (DAMON uses it for working-set
	// stability detection).
	Age int
}

// Pages returns the region's size in pages.
func (r Region) Pages() int { return int(r.End - r.Start) }

// Config parameterizes a Monitor.
type Config struct {
	// MinRegions and MaxRegions bound the region count (DAMON defaults:
	// 10 and 1000).
	MinRegions int
	MaxRegions int
	// SamplesPerAggregation is the number of sampling steps per
	// aggregation window (DAMON default: aggregation 100ms / sampling
	// 5ms = 20).
	SamplesPerAggregation int
	// MergeThreshold is the maximum |ΔNrAccesses| for two adjacent
	// regions to merge, as a fraction of SamplesPerAggregation (DAMON's
	// threshold; default 0.1).
	MergeThreshold float64
	// Seed drives probe-page selection.
	Seed uint64
}

// DefaultConfig returns DAMON's default parameters.
func DefaultConfig() Config {
	return Config{
		MinRegions:            10,
		MaxRegions:            1000,
		SamplesPerAggregation: 20,
		MergeThreshold:        0.1,
	}
}

// Monitor tracks access frequency per adaptive region over a machine.
type Monitor struct {
	cfg     Config
	m       *memsim.Machine
	rng     *dist.RNG
	regions []Region
	// probes holds the page currently being watched per region and
	// whether its bit was set when armed.
	probePage []memsim.PageID
	hits      []int
	samples   int
	aggs      uint64
}

// NewMonitor attaches a monitor to machine m covering its whole address
// space, initially split into MinRegions equal regions.
func NewMonitor(m *memsim.Machine, cfg Config) *Monitor {
	if cfg.MinRegions <= 0 {
		cfg.MinRegions = DefaultConfig().MinRegions
	}
	if cfg.MaxRegions < cfg.MinRegions {
		cfg.MaxRegions = cfg.MinRegions * 100
	}
	if cfg.SamplesPerAggregation <= 0 {
		cfg.SamplesPerAggregation = DefaultConfig().SamplesPerAggregation
	}
	if cfg.MergeThreshold <= 0 {
		cfg.MergeThreshold = DefaultConfig().MergeThreshold
	}
	mon := &Monitor{cfg: cfg, m: m, rng: dist.NewRNG(cfg.Seed ^ 0xda11011)}
	n := m.NumPages()
	regions := cfg.MinRegions
	if regions > n {
		regions = n
	}
	for i := 0; i < regions; i++ {
		start := memsim.PageID(i * n / regions)
		end := memsim.PageID((i + 1) * n / regions)
		if end > start {
			mon.regions = append(mon.regions, Region{Start: start, End: end})
		}
	}
	mon.probePage = make([]memsim.PageID, len(mon.regions))
	mon.hits = make([]int, len(mon.regions))
	mon.armProbes()
	return mon
}

// Regions returns a snapshot of the current regions.
func (mon *Monitor) Regions() []Region {
	out := make([]Region, len(mon.regions))
	copy(out, mon.regions)
	return out
}

// Aggregations returns how many aggregation windows have completed.
func (mon *Monitor) Aggregations() uint64 { return mon.aggs }

// armProbes picks a random page per region and clears its accessed bit
// so the next Sample observes fresh activity.
func (mon *Monitor) armProbes() {
	for i, r := range mon.regions {
		p := r.Start + memsim.PageID(mon.rng.Intn(r.Pages()))
		mon.probePage[i] = p
		mon.m.TestAndClearAccessed(p)
	}
}

// Sample performs one sampling step: check each region's probe page's
// accessed bit, then re-arm on a new page. Completing
// SamplesPerAggregation steps triggers an aggregation (split/merge).
// The per-step cost is proportional to the region count only.
func (mon *Monitor) Sample() {
	for i := range mon.regions {
		if mon.m.TestAndClearAccessed(mon.probePage[i]) {
			mon.hits[i]++
		}
	}
	mon.m.ChargeBackground(float64(len(mon.regions)) * 10)
	mon.samples++
	if mon.samples >= mon.cfg.SamplesPerAggregation {
		mon.aggregate()
		mon.samples = 0
	}
	mon.armProbes()
}

// aggregate publishes hit counts into the regions, merges similar
// neighbours, and splits regions to regain resolution.
func (mon *Monitor) aggregate() {
	for i := range mon.regions {
		old := mon.regions[i].NrAccesses
		mon.regions[i].NrAccesses = mon.hits[i]
		mon.hits[i] = 0
		diff := old - mon.regions[i].NrAccesses
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) <= mon.cfg.MergeThreshold*float64(mon.cfg.SamplesPerAggregation) {
			mon.regions[i].Age++
		} else {
			mon.regions[i].Age = 0
		}
	}
	mon.aggs++
	mon.merge()
	mon.split()
	mon.probePage = make([]memsim.PageID, len(mon.regions))
	mon.hits = make([]int, len(mon.regions))
}

// merge coalesces adjacent regions whose access counts differ by at
// most the merge threshold, as long as MinRegions remains satisfied.
func (mon *Monitor) merge() {
	thr := int(mon.cfg.MergeThreshold * float64(mon.cfg.SamplesPerAggregation))
	out := mon.regions[:0]
	for _, r := range mon.regions {
		if len(out) > 0 {
			last := &out[len(out)-1]
			diff := last.NrAccesses - r.NrAccesses
			if diff < 0 {
				diff = -diff
			}
			// Merging must not drop the (already-emitted) region count
			// below the minimum.
			if diff <= thr && len(out) > mon.cfg.MinRegions {
				// Weighted-average the counts into the merged region.
				total := last.Pages() + r.Pages()
				last.NrAccesses = (last.NrAccesses*last.Pages() + r.NrAccesses*r.Pages()) / total
				last.End = r.End
				if r.Age < last.Age {
					last.Age = r.Age
				}
				continue
			}
		}
		out = append(out, r)
	}
	mon.regions = out
}

// split halves regions (largest first implicitly — every region with
// more than one page splits) until the region count approaches
// MaxRegions, restoring resolution lost to merging. DAMON splits each
// region into two at a random point each aggregation, budget permitting.
func (mon *Monitor) split() {
	budget := mon.cfg.MaxRegions - len(mon.regions)
	if budget <= 0 {
		return
	}
	// DAMON splits every region into two (or three) while under budget;
	// we split into two at a random offset.
	var out []Region
	for _, r := range mon.regions {
		if budget > 0 && r.Pages() >= 2 {
			at := r.Start + 1 + memsim.PageID(mon.rng.Intn(r.Pages()-1))
			out = append(out,
				Region{Start: r.Start, End: at, NrAccesses: r.NrAccesses, Age: r.Age},
				Region{Start: at, End: r.End, NrAccesses: r.NrAccesses, Age: r.Age})
			budget--
		} else {
			out = append(out, r)
		}
	}
	mon.regions = out
}

// CheckInvariants verifies the region list partitions the address space
// exactly. Used by tests and safe to call at any time.
func (mon *Monitor) CheckInvariants() error {
	if len(mon.regions) == 0 {
		return fmt.Errorf("damon: no regions")
	}
	if mon.regions[0].Start != 0 {
		return fmt.Errorf("damon: first region starts at %d", mon.regions[0].Start)
	}
	for i, r := range mon.regions {
		if r.End <= r.Start {
			return fmt.Errorf("damon: empty region %d [%d,%d)", i, r.Start, r.End)
		}
		if i > 0 && r.Start != mon.regions[i-1].End {
			return fmt.Errorf("damon: gap/overlap between regions %d and %d", i-1, i)
		}
	}
	if last := mon.regions[len(mon.regions)-1].End; int(last) != mon.m.NumPages() {
		return fmt.Errorf("damon: coverage ends at %d of %d pages", last, mon.m.NumPages())
	}
	if len(mon.regions) > mon.cfg.MaxRegions {
		return fmt.Errorf("damon: %d regions exceed max %d", len(mon.regions), mon.cfg.MaxRegions)
	}
	return nil
}

// Snapshot returns per-page-bin access estimates by spreading each
// region's NrAccesses over its pages — the heatmap row data of Figure 10.
func (mon *Monitor) Snapshot(bins int) []float64 {
	out := make([]float64, bins)
	n := mon.m.NumPages()
	if n == 0 || bins == 0 {
		return out
	}
	for _, r := range mon.regions {
		perPage := float64(r.NrAccesses) / float64(r.Pages())
		for p := r.Start; p < r.End; p++ {
			out[int(p)*bins/n] += perPage
		}
	}
	return out
}
