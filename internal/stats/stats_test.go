package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !close(got, 2.5) {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %g", got)
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !close(got, 2) {
		t.Errorf("StdDev = %g, want 2", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !close(got, 4) {
		t.Errorf("GeoMean = %g, want 4", got)
	}
	// Non-positive values are ignored.
	if got := GeoMean([]float64{-1, 0, 4, 4}); !close(got, 4) {
		t.Errorf("GeoMean with junk = %g, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g", got)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %g", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %g", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("Median odd = %g", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); !close(got, 2.5) {
		t.Errorf("Median even = %g", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %g", got)
	}
	// Median must not mutate its input.
	if xs[0] != 3 {
		t.Errorf("Median sorted its input")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !close(got, 1) {
		t.Errorf("Pearson = %g, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !close(got, -1) {
		t.Errorf("Pearson = %g, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("zero-variance Pearson = %g, want 0", got)
	}
	if got := Pearson([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("single-point Pearson = %g, want 0", got)
	}
}

func TestPearsonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Pearson([]float64{1, 2}, []float64{1})
}

func TestPearsonBounded(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		if len(pairs) < 2 {
			return true
		}
		xs := make([]float64, len(pairs))
		ys := make([]float64, len(pairs))
		for i, p := range pairs {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) ||
				math.Abs(p[0]) > 1e150 || math.Abs(p[1]) > 1e150 {
				// Skip inputs whose squared sums overflow float64; the
				// correlation of physical metrics never approaches 1e150.
				return true
			}
			xs[i], ys[i] = p[0], p[1]
		}
		r := Pearson(xs, ys)
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if !close(got[i], want[i]) {
			t.Errorf("Normalize[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Zero base: unchanged copy.
	src := []float64{1, 2}
	got = Normalize(src, 0)
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("Normalize base 0 altered values: %v", got)
	}
	got[0] = 99
	if src[0] == 99 {
		t.Error("Normalize returned an aliased slice")
	}
}

func TestSeriesBin(t *testing.T) {
	var s Series
	s.Append(0, 1)
	s.Append(10, 2)
	s.Append(25, 3)
	s.Append(99, 4)
	bins := s.Bin(0, 100, 4) // width 25
	want := []float64{3, 3, 0, 4}
	for i := range want {
		if !close(bins[i], want[i]) {
			t.Errorf("Bin[%d] = %g, want %g (bins=%v)", i, bins[i], want[i], bins)
		}
	}
	// Out-of-range points clamp.
	var s2 Series
	s2.Append(-5, 1)
	s2.Append(1000, 2)
	b2 := s2.Bin(0, 100, 2)
	if b2[0] != 1 || b2[1] != 2 {
		t.Errorf("clamping failed: %v", b2)
	}
	// Degenerate parameters.
	if got := s.Bin(0, 0, 4); len(got) != 4 {
		t.Errorf("degenerate Bin length = %d", len(got))
	}
}

func TestSeriesBinMean(t *testing.T) {
	var s Series
	s.Append(0, 2)
	s.Append(10, 4)
	s.Append(60, 10)
	bins := s.BinMean(0, 100, 2)
	if !close(bins[0], 3) || !close(bins[1], 10) {
		t.Errorf("BinMean = %v, want [3 10]", bins)
	}
}

func TestSeriesLen(t *testing.T) {
	var s Series
	if s.Len() != 0 {
		t.Errorf("empty series Len = %d", s.Len())
	}
	s.Append(1, 1)
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}
