// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, Pearson correlation (Figure 3),
// normalization helpers, and time-series binning for the
// migrations-over-time plots (Figures 12 and 17).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when
// len(xs) < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// ignored; an empty (or all-ignored) slice yields 0. Used to summarize
// normalized-runtime ratios across workloads, the standard practice for
// speedup aggregation.
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It panics if the lengths differ, and returns 0 when either series has
// zero variance or fewer than two points. Figure 3 of the paper reports
// Pearson correlations of 0.89/0.81/0.87 between performance and DRAM
// access ratio.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Normalize returns xs scaled so that base maps to 1.0. A zero base
// yields a copy of xs unchanged.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Series is a sampled time series: parallel slices of timestamps
// (virtual nanoseconds) and values.
type Series struct {
	T []int64
	V []float64
}

// Append adds one point to the series.
func (s *Series) Append(t int64, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.T) }

// Bin aggregates the series into nbins equal-width time bins over
// [start, end), summing values within each bin. Points outside the range
// are clamped into the nearest bin. Used for migrations-over-time plots.
func (s *Series) Bin(start, end int64, nbins int) []float64 {
	out := make([]float64, nbins)
	if nbins == 0 || end <= start || s.Len() == 0 {
		return out
	}
	width := float64(end-start) / float64(nbins)
	for i, t := range s.T {
		b := int(float64(t-start) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		out[b] += s.V[i]
	}
	return out
}

// BinMean is like Bin but averages values within each bin instead of
// summing; empty bins are 0. Used for DRAM-access-ratio-over-time plots.
func (s *Series) BinMean(start, end int64, nbins int) []float64 {
	sums := s.Bin(start, end, nbins)
	counts := make([]float64, nbins)
	if nbins == 0 || end <= start {
		return sums
	}
	width := float64(end-start) / float64(nbins)
	for _, t := range s.T {
		b := int(float64(t-start) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	for i := range sums {
		if counts[i] > 0 {
			sums[i] /= counts[i]
		}
	}
	return sums
}
