// Package ema tracks per-page access frequency the way MEMTIS and ArtMem
// do (paper §4.3): each sampled access increments the page's count,
// pages are grouped into exponential bins with base 2 to compactly
// represent the access distribution, and a cooling operation periodically
// halves all counts so stale history decays — together an exponential
// moving average of access frequency.
//
// The histogram also provides the hotness-threshold machinery: the
// MEMTIS-style capacity-derived threshold (the smallest access count such
// that all pages at or above it fit in the fast tier) that ArtMem uses as
// its starting point and resets to after each cooling, before the RL
// agent refines it.
package ema

import "artmem/internal/memsim"

// NumBins is the number of exponential bins. Bin 0 holds never-sampled
// pages; bin i (i ≥ 1) holds pages with count in [2^(i-1), 2^i). 32 bins
// cover counts beyond any realistic sampling volume.
const NumBins = 32

// BinOf returns the bin index for an access count.
func BinOf(count uint32) int {
	if count == 0 {
		return 0
	}
	b := 1
	for count > 1 {
		count >>= 1
		b++
	}
	if b >= NumBins {
		return NumBins - 1
	}
	return b
}

// BinLower returns the smallest access count that falls in bin b
// (0 for bin 0).
func BinLower(b int) uint32 {
	if b <= 0 {
		return 0
	}
	return 1 << (b - 1)
}

// DefaultCoolingPeriod is the paper's cooling trigger: every two million
// samples, all bin counts and per-page records are halved (§4.3).
const DefaultCoolingPeriod = 2_000_000

// Histogram tracks per-page EMA access counts and the bin distribution.
// It is not safe for concurrent use.
type Histogram struct {
	counts []uint32
	bins   [NumBins]int

	coolingPeriod    uint64
	samplesSinceCool uint64
	coolings         uint64
	totalSamples     uint64
}

// New returns a Histogram over numPages pages. coolingPeriod is the
// number of recorded samples between cooling operations; 0 uses
// DefaultCoolingPeriod.
func New(numPages int, coolingPeriod uint64) *Histogram {
	if coolingPeriod == 0 {
		coolingPeriod = DefaultCoolingPeriod
	}
	h := &Histogram{
		counts:        make([]uint32, numPages),
		coolingPeriod: coolingPeriod,
	}
	h.bins[0] = numPages
	return h
}

// NumPages returns the size of the tracked page space.
func (h *Histogram) NumPages() int { return len(h.counts) }

// Record notes one sampled access to page p, updating its bin
// assignment, and performs a cooling pass when the cooling period
// elapses. It reports whether this call triggered a cooling.
func (h *Histogram) Record(p memsim.PageID) (cooled bool) {
	c := h.counts[p]
	oldBin := BinOf(c)
	c++
	h.counts[p] = c
	if nb := BinOf(c); nb != oldBin {
		h.bins[oldBin]--
		h.bins[nb]++
	}
	h.totalSamples++
	h.samplesSinceCool++
	if h.samplesSinceCool >= h.coolingPeriod {
		h.Cool()
		return true
	}
	return false
}

// Count returns page p's current EMA access count.
func (h *Histogram) Count(p memsim.PageID) uint32 { return h.counts[p] }

// Bin returns page p's current bin index.
func (h *Histogram) Bin(p memsim.PageID) int { return BinOf(h.counts[p]) }

// BinPages returns the number of pages currently in bin b.
func (h *Histogram) BinPages(b int) int { return h.bins[b] }

// Coolings returns how many cooling passes have run.
func (h *Histogram) Coolings() uint64 { return h.coolings }

// TotalSamples returns the number of recorded samples.
func (h *Histogram) TotalSamples() uint64 { return h.totalSamples }

// Cool halves every page's count and rebuilds the bin distribution —
// the paper's cooling operation that gradually discounts stale accesses.
func (h *Histogram) Cool() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	for p, c := range h.counts {
		c >>= 1
		h.counts[p] = c
		h.bins[BinOf(c)]++
	}
	h.coolings++
	h.samplesSinceCool = 0
}

// PagesAtOrAbove returns how many pages have count ≥ threshold. For
// thresholds on bin boundaries this is a bin-sum; otherwise the partial
// bin is counted exactly.
func (h *Histogram) PagesAtOrAbove(threshold uint32) int {
	if threshold == 0 {
		return len(h.counts)
	}
	b := BinOf(threshold)
	n := 0
	for i := b + 1; i < NumBins; i++ {
		n += h.bins[i]
	}
	if BinLower(b) == threshold {
		// Exactly on the bin's lower bound: the whole bin qualifies.
		return n + h.bins[b]
	}
	// Partial bin: count exactly.
	for _, c := range h.counts {
		if c >= threshold && BinOf(c) == b {
			n++
		}
	}
	return n
}

// CapacityThreshold returns the MEMTIS-style hotness threshold for a
// fast tier of capPages pages: the smallest bin lower-bound count T such
// that the pages with count ≥ T fit within capPages. If even the hottest
// bin alone overflows the capacity, the hottest occupied bin's lower
// bound is returned.
func (h *Histogram) CapacityThreshold(capPages int) uint32 {
	hottest := 0 // hottest occupied bin ≥ 1
	for b := NumBins - 1; b >= 1; b-- {
		if h.bins[b] > 0 {
			hottest = b
			break
		}
	}
	if hottest == 0 {
		// No page has been sampled yet.
		return 1
	}
	cum := 0
	// Walk from the hottest bin downward; stop before overflowing.
	lastFit := NumBins // sentinel: nothing fits
	for b := NumBins - 1; b >= 1; b-- {
		cum += h.bins[b]
		if cum > capPages {
			break
		}
		lastFit = b
	}
	if lastFit > hottest {
		// Even the hottest occupied bin overflows the capacity. Real
		// MEMTIS still classifies that bin as hot and migrates it — the
		// thrashing behaviour the paper observes on pattern S4 — so the
		// threshold admits it rather than admitting nothing.
		return BinLower(hottest)
	}
	return BinLower(lastFit)
}

// Reset zeroes all counts and bins (used when a policy detects a
// workload change, e.g. Tiering-0.8's threshold reset).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.bins[0] = len(h.counts)
	h.samplesSinceCool = 0
}
