package ema

import (
	"testing"
	"testing/quick"

	"artmem/internal/memsim"
)

func TestBinOf(t *testing.T) {
	cases := []struct {
		count uint32
		bin   int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{15, 4}, {16, 5}, {31, 5}, {32, 6}, {1 << 20, 21},
	}
	for _, tc := range cases {
		if got := BinOf(tc.count); got != tc.bin {
			t.Errorf("BinOf(%d) = %d, want %d", tc.count, got, tc.bin)
		}
	}
	// Saturation at the top bin.
	if got := BinOf(^uint32(0)); got != NumBins-1 {
		t.Errorf("BinOf(max) = %d, want %d", got, NumBins-1)
	}
}

func TestBinLowerInvertsBinOf(t *testing.T) {
	for b := 0; b < NumBins-1; b++ {
		lo := BinLower(b)
		if got := BinOf(lo); got != b {
			t.Errorf("BinOf(BinLower(%d)=%d) = %d", b, lo, got)
		}
		if b >= 1 && lo > 1 {
			if got := BinOf(lo - 1); got != b-1 {
				t.Errorf("BinOf(%d) = %d, want %d (just below bin %d)", lo-1, got, b-1, b)
			}
		}
	}
}

func TestRecordAndBins(t *testing.T) {
	h := New(4, 0)
	if h.BinPages(0) != 4 {
		t.Fatalf("initial bin0 = %d, want 4", h.BinPages(0))
	}
	for i := 0; i < 16; i++ {
		h.Record(0)
	}
	for i := 0; i < 3; i++ {
		h.Record(1)
	}
	if h.Count(0) != 16 || h.Bin(0) != 5 {
		t.Errorf("page 0: count=%d bin=%d, want 16/5", h.Count(0), h.Bin(0))
	}
	if h.Count(1) != 3 || h.Bin(1) != 2 {
		t.Errorf("page 1: count=%d bin=%d, want 3/2", h.Count(1), h.Bin(1))
	}
	if h.BinPages(0) != 2 || h.BinPages(2) != 1 || h.BinPages(5) != 1 {
		t.Errorf("bins: %d/%d/%d", h.BinPages(0), h.BinPages(2), h.BinPages(5))
	}
	if h.TotalSamples() != 19 {
		t.Errorf("TotalSamples = %d", h.TotalSamples())
	}
}

func TestCoolingHalves(t *testing.T) {
	h := New(2, 0)
	for i := 0; i < 17; i++ {
		h.Record(0)
	}
	h.Record(1)
	h.Cool()
	if h.Count(0) != 8 || h.Count(1) != 0 {
		t.Errorf("after cool: counts %d/%d, want 8/0", h.Count(0), h.Count(1))
	}
	if h.Bin(0) != 4 || h.Bin(1) != 0 {
		t.Errorf("after cool: bins %d/%d, want 4/0", h.Bin(0), h.Bin(1))
	}
	if h.Coolings() != 1 {
		t.Errorf("Coolings = %d", h.Coolings())
	}
}

func TestAutomaticCoolingTrigger(t *testing.T) {
	h := New(1, 10)
	cooled := false
	for i := 0; i < 10; i++ {
		if h.Record(0) {
			cooled = true
			if i != 9 {
				t.Errorf("cooled at sample %d, want 9", i)
			}
		}
	}
	if !cooled {
		t.Fatal("cooling never triggered")
	}
	if h.Count(0) != 5 {
		t.Errorf("count after auto-cool = %d, want 5", h.Count(0))
	}
	// Counter must reset: next cooling after 10 more samples.
	for i := 0; i < 9; i++ {
		if h.Record(0) {
			t.Fatalf("cooled early at %d", i)
		}
	}
	if !h.Record(0) {
		t.Error("second cooling did not trigger on schedule")
	}
}

func TestPagesAtOrAbove(t *testing.T) {
	h := New(10, 0)
	// Counts: page0=20, page1=16, page2=10, page3=3, rest 0.
	for i := 0; i < 20; i++ {
		h.Record(0)
	}
	for i := 0; i < 16; i++ {
		h.Record(1)
	}
	for i := 0; i < 10; i++ {
		h.Record(2)
	}
	for i := 0; i < 3; i++ {
		h.Record(3)
	}
	cases := []struct {
		thr  uint32
		want int
	}{
		{0, 10}, {1, 4}, {3, 4}, {4, 3}, {10, 3}, {11, 2}, {16, 2},
		{17, 1}, {20, 1}, {21, 0},
	}
	for _, tc := range cases {
		if got := h.PagesAtOrAbove(tc.thr); got != tc.want {
			t.Errorf("PagesAtOrAbove(%d) = %d, want %d", tc.thr, got, tc.want)
		}
	}
}

func TestCapacityThreshold(t *testing.T) {
	h := New(100, 0)
	// 2 pages at count 32 (bin 6), 10 pages at count 8 (bin 4),
	// 50 pages at count 2 (bin 2), rest cold.
	bump := func(p memsim.PageID, n int) {
		for i := 0; i < n; i++ {
			h.Record(p)
		}
	}
	bump(0, 32)
	bump(1, 32)
	for p := memsim.PageID(2); p < 12; p++ {
		bump(p, 8)
	}
	for p := memsim.PageID(12); p < 62; p++ {
		bump(p, 2)
	}
	// Capacity 12: bins 6 (2 pages) + 4 (10 pages) fit exactly; the walk
	// then slides through empty bin 3 → threshold 4 (admits the same 12
	// pages, since nothing has a count in [4,8)).
	if got := h.CapacityThreshold(12); got != 4 {
		t.Errorf("CapacityThreshold(12) = %d, want 4", got)
	}
	// Capacity 5: bins 6 and (empty) 5 fit → threshold 16 admits just the
	// two count-32 pages.
	if got := h.CapacityThreshold(5); got != 16 {
		t.Errorf("CapacityThreshold(5) = %d, want 16", got)
	}
	// Capacity 100: everything sampled fits → threshold at bin 1 (count 1).
	if got := h.CapacityThreshold(100); got != 1 {
		t.Errorf("CapacityThreshold(100) = %d, want 1", got)
	}
	// Capacity 1: hottest bin alone overflows → its lower bound.
	if got := h.CapacityThreshold(1); got != 32 {
		t.Errorf("CapacityThreshold(1) = %d, want 32", got)
	}
}

func TestCapacityThresholdEmpty(t *testing.T) {
	h := New(10, 0)
	if got := h.CapacityThreshold(5); got != 1 {
		t.Errorf("empty histogram threshold = %d, want 1", got)
	}
}

func TestReset(t *testing.T) {
	h := New(4, 0)
	for i := 0; i < 100; i++ {
		h.Record(memsim.PageID(i % 4))
	}
	h.Reset()
	for p := memsim.PageID(0); p < 4; p++ {
		if h.Count(p) != 0 {
			t.Errorf("page %d count %d after reset", p, h.Count(p))
		}
	}
	if h.BinPages(0) != 4 {
		t.Errorf("bin0 = %d after reset", h.BinPages(0))
	}
}

// Property: bin page-counts always sum to the page space size, and every
// page's stored bin matches BinOf(count), under arbitrary record/cool
// sequences.
func TestBinConsistencyProperty(t *testing.T) {
	const n = 8
	f := func(ops []uint8) bool {
		h := New(n, 1<<62) // no auto-cooling; we cool explicitly
		for _, op := range ops {
			if op%16 == 15 {
				h.Cool()
			} else {
				h.Record(memsim.PageID(op) % n)
			}
		}
		sum := 0
		for b := 0; b < NumBins; b++ {
			sum += h.BinPages(b)
		}
		if sum != n {
			return false
		}
		// Cross-check PagesAtOrAbove against a direct count for a few
		// thresholds.
		for _, thr := range []uint32{0, 1, 2, 3, 5, 8, 13} {
			direct := 0
			for p := memsim.PageID(0); p < n; p++ {
				if h.Count(p) >= thr {
					direct++
				}
			}
			if h.PagesAtOrAbove(thr) != direct {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: CapacityThreshold always admits at most capacity pages,
// unless even the hottest occupied bin overflows it.
func TestCapacityThresholdBoundProperty(t *testing.T) {
	const n = 32
	f := func(counts [n]uint8, capRaw uint8) bool {
		h := New(n, 1<<62)
		for p, c := range counts {
			for i := 0; i < int(c); i++ {
				h.Record(memsim.PageID(p))
			}
		}
		capacity := int(capRaw%n) + 1
		thr := h.CapacityThreshold(capacity)
		admitted := h.PagesAtOrAbove(thr)
		if admitted <= capacity {
			return true
		}
		// Overflow allowed only in the degenerate hottest-bin case: no
		// stricter bin-aligned threshold admits anything within capacity.
		b := BinOf(thr)
		for bb := b + 1; bb < NumBins; bb++ {
			if got := h.PagesAtOrAbove(BinLower(bb)); got > 0 && got <= capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New(1<<16, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(memsim.PageID(i & (1<<16 - 1)))
	}
}

func BenchmarkCool(b *testing.B) {
	h := New(1<<16, 0)
	for i := 0; i < 1<<20; i++ {
		h.Record(memsim.PageID(i & (1<<16 - 1)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Cool()
	}
}
