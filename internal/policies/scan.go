package policies

import (
	"sort"

	"artmem/internal/lru"
	"artmem/internal/memsim"
)

// This file implements the two page-table-scanning baselines. Both learn
// about accesses only from the page table's accessed bits, cleared on
// each scan — one bit of information per page per scan period, which is
// why the paper finds them "slower in recognizing hot regions when the
// hot areas are small but intensely accessed" (§3.1).

// ScanConfig parameterizes the scanning baselines.
type ScanConfig struct {
	// TickInterval is the scan period; 0 uses DefaultTickInterval.
	TickInterval int64
	// MigrateQuota caps pages migrated per scan; 0 derives from the
	// footprint.
	MigrateQuota int
	// BatchTicks (Nimble) is how many scan periods elapse between batch
	// migrations; 0 uses 4.
	BatchTicks int
}

func (c *ScanConfig) defaults() {
	if c.TickInterval == 0 {
		c.TickInterval = DefaultTickInterval
	}
	if c.BatchTicks == 0 {
		c.BatchTicks = 8
	}
}

// ---- Multi-clock -------------------------------------------------------------

// MultiClock models MULTI-CLOCK (Table 1: "candidate LRU lists"): each
// tier runs a CLOCK over its pages, and the slow tier keeps an extra
// *candidate* stage — a page referenced in one scan becomes a promotion
// candidate, and only if it is referenced again in a subsequent scan is
// it promoted. The double-confirmation makes promotions precise (no
// one-touch pages move up) but slow to cover large or warm hot sets:
// the paper observes it "fails to migrate 82% of the pages" on S4.
type MultiClock struct {
	base
	cfg       ScanConfig
	candidate []bool
}

// NewMultiClock returns the Multi-clock baseline.
func NewMultiClock(cfg ScanConfig) *MultiClock {
	return &MultiClock{cfg: cfg}
}

// Name implements Policy.
func (mc *MultiClock) Name() string { return "Multi-clock" }

// Interval implements Policy.
func (mc *MultiClock) Interval() int64 {
	mc.cfg.defaults()
	return mc.cfg.TickInterval
}

// Attach implements Policy.
func (mc *MultiClock) Attach(m *memsim.Machine) { mc.AttachEnv(m) }

// AttachEnv implements EnvPolicy.
func (mc *MultiClock) AttachEnv(m memsim.Env) {
	mc.cfg.defaults()
	mc.attach(m)
	mc.candidate = make([]bool, m.NumPages())
	if mc.cfg.MigrateQuota == 0 {
		mc.cfg.MigrateQuota = mc.migQuota
	}
}

// Tick implements Policy: one CLOCK sweep per tier.
func (mc *MultiClock) Tick(now int64) {
	m := mc.m
	// Fast tier: ordinary two-list aging; unreferenced pages drift to
	// the inactive tail where demotion picks them up.
	mc.lists.Age(memsim.Fast, mc.scanQuota, m.TestAndClearAccessed)
	// Slow tier: referenced pages climb the candidate ladder.
	promoted := 0
	scan := mc.lists.CollectTail(lru.SlowActive, mc.scanQuota)
	scan = append(scan, mc.lists.CollectTail(lru.SlowInactive, mc.scanQuota)...)
	m.ChargeBackground(float64(len(scan)+mc.scanQuota) * scanCostPerPageNs)
	for _, p := range scan {
		if m.TestAndClearAccessed(p) {
			if mc.candidate[p] {
				// Second confirmation: promote.
				if promoted < mc.cfg.MigrateQuota {
					if m.FreePages(memsim.Fast) == 0 {
						mc.demoteForHeadroom(1, 2)
					}
					if mc.promote(p) {
						mc.candidate[p] = false
						promoted++
						continue
					}
				}
				// Quota exhausted: stay a candidate.
				mc.lists.PushHead(lru.SlowActive, p)
			} else {
				mc.candidate[p] = true
				mc.lists.PushHead(lru.SlowActive, p)
			}
		} else {
			mc.candidate[p] = false
			mc.lists.PushHead(lru.SlowInactive, p)
		}
	}
}

// ---- Nimble --------------------------------------------------------------------

// Nimble models Nimble Page Management (Table 1: "batch migration"):
// accessed bits are folded into an n-bit per-page history each scan, and
// every few scans the hottest slow pages are exchanged wholesale with
// the coldest fast pages using Nimble's fast multi-page exchange path.
// Throughput is high, but hotness differentiation needs several scans of
// history — the weakness patterns S2/S3 expose ("Nimble's disadvantage
// of slow page hotness differentiation", §3.1).
type Nimble struct {
	base
	cfg     ScanConfig
	history []uint8
	ticks   int
}

// NewNimble returns the Nimble baseline.
func NewNimble(cfg ScanConfig) *Nimble {
	return &Nimble{cfg: cfg}
}

// Name implements Policy.
func (n *Nimble) Name() string { return "Nimble" }

// Interval implements Policy.
func (n *Nimble) Interval() int64 {
	n.cfg.defaults()
	return n.cfg.TickInterval
}

// Attach implements Policy.
func (n *Nimble) Attach(m *memsim.Machine) { n.AttachEnv(m) }

// AttachEnv implements EnvPolicy.
func (n *Nimble) AttachEnv(m memsim.Env) {
	n.cfg.defaults()
	n.attach(m)
	n.history = make([]uint8, m.NumPages())
	if n.cfg.MigrateQuota == 0 {
		// Batch migration: a larger per-batch budget, applied less often.
		n.cfg.MigrateQuota = n.migQuota * 2
	}
}

// hotness is the popcount of the history byte: scans-with-access out of
// the last eight.
func hotness(h uint8) int {
	c := 0
	for ; h != 0; h &= h - 1 {
		c++
	}
	return c
}

// Tick implements Policy.
func (n *Nimble) Tick(now int64) {
	m := n.m
	// Fold this scan's accessed bits into the history of every page.
	for p := 0; p < m.NumPages(); p++ {
		pid := memsim.PageID(p)
		if !m.Allocated(pid) {
			continue
		}
		bit := uint8(0)
		if m.TestAndClearAccessed(pid) {
			bit = 1
		}
		n.history[p] = n.history[p]<<1 | bit
	}
	m.ChargeBackground(float64(m.NumPages()) * scanCostPerPageNs)
	n.ticks++
	if n.ticks%n.cfg.BatchTicks != 0 {
		return
	}
	// Batch exchange: hottest slow pages vs coldest fast pages.
	type scored struct {
		p memsim.PageID
		h int
	}
	var hotSlow, fastPages []scored
	for p := 0; p < m.NumPages(); p++ {
		pid := memsim.PageID(p)
		if !m.Allocated(pid) {
			continue
		}
		s := scored{pid, hotness(n.history[p])}
		if m.TierOf(pid) == memsim.Slow {
			if s.h >= 4 { // needs half the history window: slow differentiation
				hotSlow = append(hotSlow, s)
			}
		} else {
			fastPages = append(fastPages, s)
		}
	}
	sort.Slice(hotSlow, func(i, j int) bool { return hotSlow[i].h > hotSlow[j].h })
	sort.Slice(fastPages, func(i, j int) bool { return fastPages[i].h < fastPages[j].h })
	quota := n.cfg.MigrateQuota
	vi := 0
	for _, s := range hotSlow {
		if quota == 0 {
			break
		}
		if m.FreePages(memsim.Fast) == 0 {
			// Exchange with the coldest fast page — but never evict a
			// page hotter than the one coming in.
			if vi >= len(fastPages) || fastPages[vi].h >= s.h {
				break
			}
			victim := fastPages[vi].p
			vi++
			if m.MovePage(victim, memsim.Slow) != nil {
				break
			}
			n.lists.PushHead(lru.SlowInactive, victim)
		}
		if n.promote(s.p) {
			quota--
		}
	}
}
