package policies

import (
	"artmem/internal/ema"
	"artmem/internal/lru"
	"artmem/internal/memsim"
	"artmem/internal/pebs"
)

// HeMem (SOSP '21) is the PEBS-based system of the paper's background
// section (§1: it "leverages hardware-based sampling to monitor memory
// accesses and makes migration decisions based on a precomputed hotness
// threshold"). It is not part of the paper's evaluated seven, but it
// completes the monitoring-design space the paper surveys — PEBS
// sampling with a *fixed* hotness threshold, against MEMTIS's
// capacity-derived threshold and ArtMem's learned one — and is available
// to every experiment via ExtraBaselines.
//
// The model: sampled access counts per page (with cooling); a page whose
// count crosses the precomputed threshold is hot and promoted; cold
// fast-tier pages (count below the threshold and LRU-inactive) are
// demoted asynchronously to keep allocation headroom.
type HeMem struct {
	base
	cfg     HeMemConfig
	sampler *pebs.Sampler
	hist    *ema.Histogram
}

// HeMemConfig parameterizes the HeMem baseline.
type HeMemConfig struct {
	// TickInterval is the policy period; 0 uses the default.
	TickInterval int64
	// SamplePeriod is the PEBS period; 0 uses 5 (scaled; see DESIGN.md).
	SamplePeriod uint64
	// HotThreshold is the precomputed access-count threshold; 0 uses 8.
	// HeMem's published configuration is a fixed small count tuned
	// offline — precisely what the paper criticizes as non-adaptive.
	HotThreshold uint32
	// CoolingSamples triggers count halving; 0 uses 500000.
	CoolingSamples uint64
	// MigrateQuota caps migrations per tick; 0 derives from footprint.
	MigrateQuota int
}

func (c *HeMemConfig) defaults() {
	if c.TickInterval == 0 {
		c.TickInterval = DefaultTickInterval
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = 5
	}
	if c.HotThreshold == 0 {
		c.HotThreshold = 8
	}
	if c.CoolingSamples == 0 {
		c.CoolingSamples = 500_000
	}
}

// NewHeMem returns the HeMem baseline.
func NewHeMem(cfg HeMemConfig) *HeMem {
	return &HeMem{cfg: cfg}
}

// Name implements Policy.
func (h *HeMem) Name() string { return "HeMem" }

// Interval implements Policy.
func (h *HeMem) Interval() int64 {
	h.cfg.defaults()
	return h.cfg.TickInterval
}

// Attach implements Policy.
func (h *HeMem) Attach(m *memsim.Machine) { h.AttachEnv(m) }

// AttachEnv implements EnvPolicy.
func (h *HeMem) AttachEnv(m memsim.Env) {
	h.cfg.defaults()
	h.attach(m)
	if h.cfg.MigrateQuota == 0 {
		h.cfg.MigrateQuota = h.migQuota * 2
	}
	h.sampler = pebs.New(pebs.Config{
		Period:       h.cfg.SamplePeriod,
		RingSize:     64 * 1024,
		SampleCostNs: 20,
		Charge:       m.ChargeBackground,
	})
	m.SetSampler(h.sampler)
	h.hist = ema.New(m.NumPages(), h.cfg.CoolingSamples)
}

// Tick implements Policy.
func (h *HeMem) Tick(now int64) {
	m := h.m
	// Promotion candidates surface directly from the sample stream: a
	// sampled slow page whose count crosses the fixed threshold is hot.
	var hot []memsim.PageID
	seen := map[memsim.PageID]bool{}
	h.sampler.Drain(func(s pebs.Sample) {
		h.hist.Record(s.Page)
		if s.Tier == memsim.Slow && !seen[s.Page] &&
			h.hist.Count(s.Page) >= h.cfg.HotThreshold {
			seen[s.Page] = true
			hot = append(hot, s.Page)
		}
	})
	h.age()
	quota := h.cfg.MigrateQuota
	for _, p := range hot {
		if quota == 0 {
			break
		}
		if m.TierOf(p) != memsim.Slow {
			continue
		}
		if m.FreePages(memsim.Fast) == 0 {
			// Asynchronous demotion of below-threshold inactive pages.
			victim := h.coldInactiveFast()
			if victim == memsim.NoPage {
				break
			}
			if m.MovePage(victim, memsim.Slow) != nil {
				break
			}
			h.lists.PushHead(lru.SlowInactive, victim)
		}
		if h.promote(p) {
			quota--
		}
	}
}

// coldInactiveFast returns a fast-tier inactive page whose count is
// below the hot threshold (never evict a hot page for another hot page —
// HeMem refuses to thrash on over-committed hot sets).
func (h *HeMem) coldInactiveFast() memsim.PageID {
	for p := h.lists.Tail(lru.FastInactive); p != memsim.NoPage; p = h.lists.Prev(p) {
		if h.hist.Count(p) < h.cfg.HotThreshold {
			return p
		}
	}
	return memsim.NoPage
}

// ExtraBaselines returns policies beyond the paper's evaluated seven
// (currently HeMem). They are available to masim/artrace and custom
// experiments but excluded from the paper-reproduction rosters.
func ExtraBaselines() []Factory {
	return []Factory{
		{Name: "HeMem", New: func() Policy { return NewHeMem(HeMemConfig{}) }},
	}
}
