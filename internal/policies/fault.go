package policies

import (
	"artmem/internal/lru"
	"artmem/internal/memsim"
)

// This file implements the four fault-driven baselines. All of them
// observe memory behaviour the way the kernel's NUMA balancing does: a
// scanner periodically arms ("poisons") a sliding window of the address
// space, and the next access to an armed page takes a hint fault, which
// is the policy's only per-access signal. The policies differ in what
// they do with those faults — exactly the design axis Table 1 compares.

// FaultConfig parameterizes the fault-driven baselines.
type FaultConfig struct {
	// TickInterval is the policy's period; 0 uses DefaultTickInterval.
	TickInterval int64
	// ScanDivisor: the poison window advances footprint/ScanDivisor pages
	// per tick (kernel NUMA balancing covers the address space over
	// several scan periods). 0 uses 16.
	ScanDivisor int
	// PromoteQuota caps promotions per tick; 0 derives from footprint.
	PromoteQuota int
}

func (c *FaultConfig) defaults() {
	if c.TickInterval == 0 {
		c.TickInterval = DefaultTickInterval
	}
	if c.ScanDivisor == 0 {
		c.ScanDivisor = 8
	}
}

// faultBase extends base with the poison-scanner and per-page fault
// counters shared by the fault-driven group.
type faultBase struct {
	base
	cfg        FaultConfig
	scanCursor memsim.PageID
	faultCnt   []uint8
	// pending collects slow-tier pages whose faults qualified them for
	// promotion; the tick migrates them (the kernel defers migration to
	// task_numa_work / kpromoted).
	pending []memsim.PageID
	queued  []bool
}

func (f *faultBase) attach(m memsim.Env) {
	f.cfg.defaults()
	f.base.attach(m)
	f.faultCnt = make([]uint8, m.NumPages())
	f.queued = make([]bool, m.NumPages())
	if f.cfg.PromoteQuota == 0 {
		f.cfg.PromoteQuota = f.migQuota
	}
	// Each concrete policy installs its own OnFault in its Attach.
}

// handler is set per-policy in attach wrappers; faultBase keeps the
// field so subtypes can supply their own OnFault.
type faultHandlerFunc func(p memsim.PageID, t memsim.TierID, write bool, now int64)

func (fn faultHandlerFunc) OnFault(p memsim.PageID, t memsim.TierID, write bool, now int64) {
	fn(p, t, write, now)
}

// advanceScanner poisons the next window of the address space.
func (f *faultBase) advanceScanner() {
	window := f.m.NumPages()/f.cfg.ScanDivisor + 1
	f.scanCursor = f.m.PoisonRange(f.scanCursor, window)
	f.m.ChargeBackground(float64(window) * scanCostPerPageNs)
}

// enqueue marks a slow-tier page for promotion at the next tick.
func (f *faultBase) enqueue(p memsim.PageID) {
	if !f.queued[p] {
		f.queued[p] = true
		f.pending = append(f.pending, p)
	}
}

// drainPromotions promotes queued pages (hottest-queued first come,
// first served), demoting for headroom as needed, up to the quota.
func (f *faultBase) drainPromotions() int {
	n := 0
	for _, p := range f.pending {
		f.queued[p] = false
		if n >= f.cfg.PromoteQuota {
			continue // stays unqueued; it can re-fault later
		}
		if f.m.TierOf(p) != memsim.Slow {
			continue
		}
		if f.m.FreePages(memsim.Fast) == 0 {
			f.demoteForHeadroom(1, 2)
		}
		if f.promote(p) {
			n++
		}
	}
	f.pending = f.pending[:0]
	return n
}

// decayFaults halves all fault counters (aging the frequency signal).
func (f *faultBase) decayFaults() {
	for i := range f.faultCnt {
		f.faultCnt[i] >>= 1
	}
}

// ---- AutoNUMA -------------------------------------------------------------

// AutoNUMA models the kernel's automatic NUMA balancing with memory
// tiering ("mostly frequently accessed", Table 1): a page is promoted
// after repeated hint faults (the two-fault filter), and cold fast-tier
// pages are demoted through the reclaim path. It adapts reliably to
// stable patterns but needs multiple scan windows to react to bursts of
// new hot pages — the paper's Figure 2 weakness on pattern S2.
type AutoNUMA struct {
	faultBase
	tick uint64
}

// NewAutoNUMA returns the AutoNUMA baseline.
func NewAutoNUMA(cfg FaultConfig) *AutoNUMA {
	a := &AutoNUMA{}
	a.cfg = cfg
	return a
}

// Name implements Policy.
func (a *AutoNUMA) Name() string { return "AutoNUMA" }

// Interval implements Policy.
func (a *AutoNUMA) Interval() int64 { return a.cfg.TickInterval }

// Attach implements Policy.
func (a *AutoNUMA) Attach(m *memsim.Machine) { a.AttachEnv(m) }

// AttachEnv implements EnvPolicy.
func (a *AutoNUMA) AttachEnv(m memsim.Env) {
	a.attach(m)
	m.SetFaultHandler(faultHandlerFunc(a.onFault))
}

func (a *AutoNUMA) onFault(p memsim.PageID, t memsim.TierID, _ bool, _ int64) {
	if a.faultCnt[p] < 255 {
		a.faultCnt[p]++
	}
	// Two-fault rule: only repeatedly faulting slow pages are promoted.
	if t == memsim.Slow && a.faultCnt[p] >= 2 {
		a.enqueue(p)
	}
}

// Tick implements Policy.
func (a *AutoNUMA) Tick(now int64) {
	a.tick++
	a.advanceScanner()
	a.age()
	a.drainPromotions()
	// Reclaim-style demotion keeps a little allocation headroom.
	a.demoteForHeadroom(a.m.CapacityPages(memsim.Fast)/50+1, a.migQuota/4+1)
	if a.tick%24 == 0 {
		a.decayFaults()
	}
}

// ---- TPP -------------------------------------------------------------------

// TPP models Transparent Page Placement (Table 1: "lightweight demotion,
// decoupled allocation and reclamation paths"): faults on recently
// active slow-tier pages promote immediately, while a background
// watermark keeps the fast tier from filling up, so promotions never
// stall on reclaim. Strong on stable patterns; the eager promotion
// filter still needs the page to prove recency, so bursts of new hot
// pages are its weak spot.
type TPP struct {
	faultBase
	// firstFault records the tick of a slow page's previous fault; a
	// re-fault within the window passes TPP's promotion filter.
	lastFaultTick []uint32
	tick          uint32
}

// NewTPP returns the TPP baseline.
func NewTPP(cfg FaultConfig) *TPP {
	t := &TPP{}
	t.cfg = cfg
	return t
}

// Name implements Policy.
func (t *TPP) Name() string { return "TPP" }

// Interval implements Policy.
func (t *TPP) Interval() int64 { return t.cfg.TickInterval }

// Attach implements Policy.
func (t *TPP) Attach(m *memsim.Machine) { t.AttachEnv(m) }

// AttachEnv implements EnvPolicy.
func (t *TPP) AttachEnv(m memsim.Env) {
	t.attach(m)
	t.lastFaultTick = make([]uint32, m.NumPages())
	m.SetFaultHandler(faultHandlerFunc(t.onFault))
}

func (t *TPP) onFault(p memsim.PageID, tier memsim.TierID, _ bool, _ int64) {
	if tier != memsim.Slow {
		return
	}
	// TPP's promotion filter: the page must be actively used, shown
	// either by LRU activity or by a recent prior fault.
	recent := t.lastFaultTick[p] != 0 && t.tick-t.lastFaultTick[p] <= 12
	t.lastFaultTick[p] = t.tick
	if recent || t.lists.ListOf(p) == lru.SlowActive {
		// Eager promotion: decoupled from reclaim, the watermark below
		// guarantees free pages, so promote right now.
		if t.m.FreePages(memsim.Fast) > 0 {
			t.promote(p)
		} else {
			t.enqueue(p)
		}
	}
}

// Tick implements Policy.
func (t *TPP) Tick(now int64) {
	t.tick++
	t.advanceScanner()
	t.age()
	t.drainPromotions()
	// Lightweight demotion: proactively maintain a free-page watermark
	// (TPP's decoupled reclaim) so allocation and promotion never block.
	head := t.m.CapacityPages(memsim.Fast)/25 + 1
	t.demoteForHeadroom(head, t.migQuota)
}

// ---- AutoTiering ------------------------------------------------------------

// AutoTiering models AutoTiering's OPM/CPM design (Table 1:
// "opportunistic promotion and migration"): the first hint fault on a
// slow-tier page promotes it immediately — exchanging it with the
// coldest fast-tier page when the fast tier is full. It reacts fastest
// of the fault group when hot and cold are easily distinguished, but
// warm data causes continuous swapping.
type AutoTiering struct {
	faultBase
	exchanges uint64
	// exchangeBudget bounds synchronous fault-path exchanges per tick
	// (AutoTiering rate-limits its migrations; unbounded access-path
	// copying would serialize the application behind page copies).
	exchangeBudget int
}

// NewAutoTiering returns the AutoTiering baseline.
func NewAutoTiering(cfg FaultConfig) *AutoTiering {
	a := &AutoTiering{}
	a.cfg = cfg
	return a
}

// Name implements Policy.
func (a *AutoTiering) Name() string { return "AutoTiering" }

// Interval implements Policy.
func (a *AutoTiering) Interval() int64 { return a.cfg.TickInterval }

// Attach implements Policy.
func (a *AutoTiering) Attach(m *memsim.Machine) { a.AttachEnv(m) }

// AttachEnv implements EnvPolicy.
func (a *AutoTiering) AttachEnv(m memsim.Env) {
	a.attach(m)
	m.SetFaultHandler(faultHandlerFunc(a.onFault))
}

func (a *AutoTiering) onFault(p memsim.PageID, tier memsim.TierID, _ bool, _ int64) {
	if a.faultCnt[p] < 255 {
		a.faultCnt[p]++
	}
	if tier != memsim.Slow {
		return
	}
	// Opportunistic promotion: act on the fault itself. The page copy is
	// synchronous — the faulting access waits for it (AutoTiering's OPM
	// runs on the access path, the cost the paper's Table 1 "warm data"
	// weakness stems from).
	if a.m.FreePages(memsim.Fast) > 0 {
		if a.m.MovePageSync(p, memsim.Fast) == nil {
			if a.lists.ListOf(p) == lru.SlowActive {
				a.lists.PushHead(lru.FastActive, p)
			} else {
				a.lists.PushHead(lru.FastInactive, p)
			}
		}
		return
	}
	// Exchange with the coldest fast page (tail of the inactive list).
	// AutoTiering sorts pages by NUMA fault counts (§3.1): the faulting
	// page swaps in unless the victim is strictly hotter — the
	// aggressiveness that wins on clearly-separated hot/cold data and
	// churns on warm data (Table 1). A per-tick budget bounds the churn:
	// AutoTiering rate-limits migration, and the first page copy of the
	// pair happens on the faulting access's critical path.
	if a.exchangeBudget <= 0 {
		return
	}
	victim := a.lists.Tail(lru.FastInactive)
	if victim == memsim.NoPage {
		victim = a.lists.Tail(lru.FastActive)
	}
	if victim == memsim.NoPage {
		return
	}
	if a.faultCnt[victim] > a.faultCnt[p] {
		return
	}
	a.exchangeBudget--
	// The incoming copy is synchronous (the access waits for its page);
	// the victim drains in the background.
	if a.m.MovePage(victim, memsim.Slow) != nil {
		return
	}
	a.lists.PushHead(lru.SlowInactive, victim)
	if a.m.MovePageSync(p, memsim.Fast) == nil {
		if a.lists.ListOf(p) == lru.SlowActive {
			a.lists.PushHead(lru.FastActive, p)
		} else {
			a.lists.PushHead(lru.FastInactive, p)
		}
		a.exchanges++
	}
}

// Tick implements Policy.
func (a *AutoTiering) Tick(now int64) {
	a.exchangeBudget = a.migQuota/2 + 1
	a.advanceScanner()
	a.age()
	a.drainPromotions()
	if now/a.cfg.TickInterval%24 == 0 {
		a.decayFaults()
	}
}

// ---- Tiering-0.8 -------------------------------------------------------------

// Tiering08 models the kernel tiering-0.8 development branch (Table 1:
// "reset hotness threshold once workload change"): promotion requires a
// page's fault count to pass a hotness threshold, and when the policy
// detects an access-pattern shift — the share of faults landing in the
// slow tier jumping — it resets its counters and threshold so stale
// frequency state cannot hold back the new working set.
type Tiering08 struct {
	faultBase
	threshold     uint8
	slowFaults    uint64
	totalFaults   uint64
	prevSlowShare float64
	resets        uint64
}

// NewTiering08 returns the Tiering-0.8 baseline.
func NewTiering08(cfg FaultConfig) *Tiering08 {
	t := &Tiering08{threshold: 2}
	t.cfg = cfg
	return t
}

// Name implements Policy.
func (t *Tiering08) Name() string { return "Tiering-0.8" }

// Interval implements Policy.
func (t *Tiering08) Interval() int64 { return t.cfg.TickInterval }

// Attach implements Policy.
func (t *Tiering08) Attach(m *memsim.Machine) { t.AttachEnv(m) }

// AttachEnv implements EnvPolicy.
func (t *Tiering08) AttachEnv(m memsim.Env) {
	t.attach(m)
	m.SetFaultHandler(faultHandlerFunc(t.onFault))
}

func (t *Tiering08) onFault(p memsim.PageID, tier memsim.TierID, _ bool, _ int64) {
	t.totalFaults++
	if t.faultCnt[p] < 255 {
		t.faultCnt[p]++
	}
	if tier == memsim.Slow {
		t.slowFaults++
		if t.faultCnt[p] >= t.threshold {
			t.enqueue(p)
		}
	}
}

// Tick implements Policy.
func (t *Tiering08) Tick(now int64) {
	t.advanceScanner()
	t.age()
	// Workload-change detection: when the slow-tier share of faults
	// jumps versus the previous window, reset the frequency state.
	var share float64
	if t.totalFaults > 0 {
		share = float64(t.slowFaults) / float64(t.totalFaults)
	}
	if share > t.prevSlowShare+0.3 {
		for i := range t.faultCnt {
			t.faultCnt[i] = 0
		}
		t.threshold = 1 // fast-track the new working set
		t.resets++
	} else if t.threshold < 2 {
		t.threshold = 2
	}
	t.prevSlowShare = share
	t.slowFaults, t.totalFaults = 0, 0
	t.drainPromotions()
	t.demoteForHeadroom(t.m.CapacityPages(memsim.Fast)/50+1, t.migQuota/4+1)
}
