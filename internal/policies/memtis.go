package policies

import (
	"sort"

	"artmem/internal/ema"
	"artmem/internal/lru"
	"artmem/internal/memsim"
	"artmem/internal/pebs"
)

// MEMTIS (SOSP '23) is the strongest prior PEBS-based system and the
// paper's main quantitative foil. Its key design (Table 1): per-page
// access counts tracked as an exponential moving average in base-2 bins,
// with the hotness threshold *derived from the DRAM capacity* — the
// smallest count such that all pages at or above it fit in the fast
// tier. Everything at/above the threshold is classified hot and actively
// migrated up; cooling halves counts periodically.
//
// The capacity-derived threshold is exactly what the paper's motivation
// study attacks: on S1 it admits every page (15GB migrated where 1GB
// would do), and on S4 — where the equally-hot set exceeds DRAM — it
// thrashes (47GB migrated). The model reproduces both behaviours.

// MEMTISConfig parameterizes the MEMTIS baseline.
type MEMTISConfig struct {
	// TickInterval is the migration daemon period; 0 uses the default.
	TickInterval int64
	// SamplePeriod is the PEBS sampling period; 0 uses 20 (the paper's
	// 200 scaled to the simulator's shorter runs — see DESIGN.md).
	SamplePeriod uint64
	// CoolingSamples is the cooling trigger in recorded samples; 0 uses
	// 50000 (2M scaled).
	CoolingSamples uint64
	// MigrateQuota caps migrations per tick; 0 derives a deliberately
	// generous budget (MEMTIS migrates aggressively).
	MigrateQuota int
	// ThresholdOverride, when non-zero, pins the hotness threshold
	// instead of deriving it from DRAM capacity — the manual tuning
	// experiment of Figure 4.
	ThresholdOverride uint32
}

func (c *MEMTISConfig) defaults() {
	if c.TickInterval == 0 {
		c.TickInterval = DefaultTickInterval
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = 5
	}
	if c.CoolingSamples == 0 {
		c.CoolingSamples = 500_000
	}
}

// MEMTIS is the MEMTIS baseline policy.
type MEMTIS struct {
	base
	cfg     MEMTISConfig
	sampler *pebs.Sampler
	hist    *ema.Histogram
}

// NewMEMTIS returns the MEMTIS baseline.
func NewMEMTIS(cfg MEMTISConfig) *MEMTIS {
	return &MEMTIS{cfg: cfg}
}

// Name implements Policy.
func (mt *MEMTIS) Name() string { return "MEMTIS" }

// Interval implements Policy.
func (mt *MEMTIS) Interval() int64 {
	mt.cfg.defaults()
	return mt.cfg.TickInterval
}

// Attach implements Policy.
func (mt *MEMTIS) Attach(m *memsim.Machine) { mt.AttachEnv(m) }

// AttachEnv implements EnvPolicy.
func (mt *MEMTIS) AttachEnv(m memsim.Env) {
	mt.cfg.defaults()
	mt.attach(m)
	if mt.cfg.MigrateQuota == 0 {
		mt.cfg.MigrateQuota = mt.migQuota * 8
	}
	mt.sampler = pebs.New(pebs.Config{
		Period:       mt.cfg.SamplePeriod,
		RingSize:     64 * 1024,
		SampleCostNs: 20,
		Charge:       m.ChargeBackground,
	})
	m.SetSampler(mt.sampler)
	mt.hist = ema.New(m.NumPages(), mt.cfg.CoolingSamples)
}

// Threshold returns the hotness threshold MEMTIS is currently using.
func (mt *MEMTIS) Threshold() uint32 {
	if mt.cfg.ThresholdOverride != 0 {
		return mt.cfg.ThresholdOverride
	}
	return mt.hist.CapacityThreshold(mt.m.CapacityPages(memsim.Fast))
}

// Histogram exposes the access histogram (used by tests and the Figure 4
// experiment).
func (mt *MEMTIS) Histogram() *ema.Histogram { return mt.hist }

// Tick implements Policy.
func (mt *MEMTIS) Tick(now int64) {
	m := mt.m
	// Drain PEBS into the histogram (the sampling thread's work).
	mt.sampler.Drain(func(s pebs.Sample) {
		mt.hist.Record(s.Page)
	})
	mt.age()
	thr := mt.Threshold()
	// Classify and migrate: every slow page at/above the threshold is
	// hot and belongs in DRAM.
	type scored struct {
		p memsim.PageID
		c uint32
	}
	var hot []scored
	for p := 0; p < m.NumPages(); p++ {
		pid := memsim.PageID(p)
		if !m.Allocated(pid) || m.TierOf(pid) != memsim.Slow {
			continue
		}
		if c := mt.hist.Count(pid); c >= thr {
			hot = append(hot, scored{pid, c})
		}
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].c > hot[j].c })
	quota := mt.cfg.MigrateQuota
	for _, s := range hot {
		if quota == 0 {
			break
		}
		if m.FreePages(memsim.Fast) == 0 {
			// Demote the coldest fast page by EMA count. MEMTIS demotes
			// below-threshold pages to make room for hot ones; if the
			// coldest resident is itself at/above the threshold the hot
			// set simply exceeds DRAM, and swapping equal-heat pages is
			// the thrashing behaviour the paper documents on S4 — so only
			// a strictly colder victim is evicted.
			victim, vc := mt.coldestFast()
			if victim == memsim.NoPage || vc >= s.c {
				break
			}
			if m.MovePage(victim, memsim.Slow) != nil {
				break
			}
			mt.lists.PushHead(lru.SlowInactive, victim)
		}
		if mt.promote(s.p) {
			quota--
		}
	}
}

// coldestFast returns the fast-tier page with the lowest EMA count,
// preferring the LRU-inactive tail among ties.
func (mt *MEMTIS) coldestFast() (memsim.PageID, uint32) {
	m := mt.m
	// The inactive tail is usually cold; verify by count and fall back
	// to a full scan when the tail looks hot.
	if p := mt.lists.Tail(lru.FastInactive); p != memsim.NoPage {
		if c := mt.hist.Count(p); c == 0 {
			return p, 0
		}
	}
	best := memsim.NoPage
	bestC := ^uint32(0)
	for p := 0; p < m.NumPages(); p++ {
		pid := memsim.PageID(p)
		if !m.Allocated(pid) || m.TierOf(pid) != memsim.Fast {
			continue
		}
		if c := mt.hist.Count(pid); c < bestC {
			best, bestC = pid, c
			if c == 0 {
				break
			}
		}
	}
	return best, bestC
}
