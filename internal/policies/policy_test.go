package policies

import (
	"testing"

	"artmem/internal/lru"
	"artmem/internal/memsim"
)

// testMachine builds a 64-page machine (64KiB pages) with fastPages of
// fast-tier capacity and no CPU cache.
func testMachine(fastPages int) *memsim.Machine {
	cfg := memsim.DefaultConfig(64*64*1024, int64(fastPages)*64*1024, 64*1024)
	cfg.CacheLines = 0
	return memsim.NewMachine(cfg)
}

// fillHotCold first-touches pages 0..15 (cold, land in fast) then 16..31
// (hot, land in slow), and returns an access function that re-touches the
// hot set.
func fillHotCold(m *memsim.Machine) func(rounds int) {
	ps := uint64(m.PageSize())
	for p := uint64(0); p < 32; p++ {
		m.Access(p*ps, false)
	}
	return func(rounds int) {
		for r := 0; r < rounds; r++ {
			for p := uint64(16); p < 32; p++ {
				m.Access(p*ps, false)
			}
		}
	}
}

// drive runs the policy for n ticks, touching the hot set between ticks.
func drive(m *memsim.Machine, pol Policy, touch func(int), ticks int) {
	for i := 0; i < ticks; i++ {
		touch(20)
		pol.Tick(int64(i+1) * pol.Interval())
	}
}

func TestBaselinesRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, f := range Baselines() {
		if names[f.Name] {
			t.Errorf("duplicate baseline %q", f.Name)
		}
		names[f.Name] = true
		pol := f.New()
		if pol.Name() != f.Name {
			t.Errorf("factory %q builds policy named %q", f.Name, pol.Name())
		}
		if pol.Interval() <= 0 {
			// Interval may be resolved at Attach; attach and re-check.
			pol.Attach(testMachine(16))
			if pol.Interval() <= 0 {
				t.Errorf("%s: non-positive interval", f.Name)
			}
		}
	}
	for _, want := range []string{"Static", "MEMTIS", "AutoTiering", "TPP",
		"AutoNUMA", "Multi-clock", "Nimble", "Tiering-0.8"} {
		if !names[want] {
			t.Errorf("baseline %q missing", want)
		}
	}
	if _, err := ByName("MEMTIS"); err != nil {
		t.Errorf("ByName(MEMTIS): %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestStaticNeverMigrates(t *testing.T) {
	m := testMachine(16)
	pol := NewStatic()
	pol.Attach(m)
	touch := fillHotCold(m)
	drive(m, pol, touch, 20)
	if got := m.Counters().Migrations; got != 0 {
		t.Errorf("static migrated %d pages", got)
	}
}

// Every adaptive baseline must eventually move a persistently hot
// slow-tier working set into the fast tier.
func TestAllBaselinesPromoteHotSet(t *testing.T) {
	for _, f := range Baselines() {
		if f.Name == "Static" {
			continue
		}
		f := f
		t.Run(f.Name, func(t *testing.T) {
			m := testMachine(16)
			pol := f.New()
			pol.Attach(m)
			touch := fillHotCold(m)
			drive(m, pol, touch, 60)
			inFast := 0
			for p := memsim.PageID(16); p < 32; p++ {
				if m.TierOf(p) == memsim.Fast {
					inFast++
				}
			}
			if inFast < 8 {
				t.Errorf("%s: only %d of 16 hot pages in fast tier after 60 ticks",
					f.Name, inFast)
			}
			if m.Counters().Promotions == 0 {
				t.Errorf("%s: no promotions recorded", f.Name)
			}
		})
	}
}

func TestDemoteForHeadroomSkipsActivePages(t *testing.T) {
	m := testMachine(16)
	b := &base{}
	b.attach(m)
	fillHotCold(m)
	// All fast pages are on the active list (first touch): demotion must
	// refuse to evict them.
	if freed := b.demoteForHeadroom(4, 10); freed != 0 {
		t.Errorf("demoted %d active pages", freed)
	}
	// Move two pages to the inactive list: now exactly those are fair game.
	b.lists.PushHead(lru.FastInactive, 0)
	b.lists.PushHead(lru.FastInactive, 1)
	if freed := b.demoteForHeadroom(4, 10); freed != 2 {
		t.Errorf("freed %d, want 2", freed)
	}
	if m.TierOf(0) != memsim.Slow || m.TierOf(1) != memsim.Slow {
		t.Errorf("victims not demoted")
	}
	// Conservative status transfer: demoted pages stay inactive.
	if b.lists.ListOf(0) != lru.SlowInactive {
		t.Errorf("demoted page on %v, want slow-inactive", b.lists.ListOf(0))
	}
}

func TestPromotePreservesStatus(t *testing.T) {
	m := testMachine(16)
	b := &base{}
	b.attach(m)
	fillHotCold(m)
	// Demote page 0 so there is room, then promote a slow-active and a
	// slow-inactive page.
	b.lists.PushHead(lru.FastInactive, 0)
	b.demoteForHeadroom(1, 1)
	active := memsim.PageID(16)
	b.lists.PushHead(lru.SlowActive, active)
	if !b.promote(active) {
		t.Fatal("promote failed with free space")
	}
	if b.lists.ListOf(active) != lru.FastActive {
		t.Errorf("active page promoted to %v", b.lists.ListOf(active))
	}
	// Full tier: promote fails.
	if b.promote(17) {
		t.Error("promote succeeded into a full tier")
	}
	// Promoting a fast page is a no-op success.
	if !b.promote(active) {
		t.Error("same-tier promote reported failure")
	}
}

func TestMEMTISThresholdOverride(t *testing.T) {
	m := testMachine(16)
	mt := NewMEMTIS(MEMTISConfig{ThresholdOverride: 42})
	mt.Attach(m)
	if got := mt.Threshold(); got != 42 {
		t.Errorf("Threshold = %d, want override 42", got)
	}
	mt2 := NewMEMTIS(MEMTISConfig{})
	mt2.Attach(testMachine(16))
	if got := mt2.Threshold(); got == 42 {
		t.Errorf("default threshold suspiciously equals the override")
	}
}

func TestMEMTISOverMigratesWhenEverythingFits(t *testing.T) {
	// Pattern-S1 behaviour: DRAM large enough for all sampled pages →
	// the capacity threshold admits everything, so MEMTIS promotes every
	// sampled slow page.
	m := testMachine(48) // fast tier holds 48 of 64 pages
	mt := NewMEMTIS(MEMTISConfig{SamplePeriod: 1})
	mt.Attach(m)
	ps := uint64(m.PageSize())
	// Touch all 64 pages: 48 fast, 16 slow, then access the slow ones a
	// couple of times.
	for p := uint64(0); p < 64; p++ {
		m.Access(p*ps, false)
	}
	for r := 0; r < 3; r++ {
		for p := uint64(48); p < 64; p++ {
			m.Access(p*ps, false)
		}
	}
	mt.Tick(1)
	if got := m.Counters().Promotions; got < 10 {
		t.Errorf("MEMTIS promoted only %d pages; capacity threshold should admit all", got)
	}
}

func TestMultiClockRequiresDoubleConfirmation(t *testing.T) {
	m := testMachine(16)
	mc := NewMultiClock(ScanConfig{})
	mc.Attach(m)
	touch := fillHotCold(m)
	// Make room so promotion is unconstrained.
	mc.lists.PushHead(lru.FastInactive, 0)
	mc.demoteForHeadroom(1, 1)
	// One referenced scan: pages become candidates, no promotion yet.
	touch(1)
	mc.Tick(1)
	if got := m.Counters().Promotions; got != 0 {
		t.Fatalf("promoted %d pages after a single confirmation", got)
	}
	// Second referenced scan: now they promote.
	touch(1)
	mc.Tick(2)
	if got := m.Counters().Promotions; got == 0 {
		t.Error("no promotion after double confirmation")
	}
}

func TestNimbleBatchCadence(t *testing.T) {
	m := testMachine(16)
	n := NewNimble(ScanConfig{BatchTicks: 4})
	n.Attach(m)
	touch := fillHotCold(m)
	// Ticks 1..3: history builds, no batch yet.
	for i := 1; i <= 3; i++ {
		touch(5)
		n.Tick(int64(i))
	}
	if got := m.Counters().Migrations; got != 0 {
		t.Fatalf("Nimble migrated %d pages before its batch tick", got)
	}
	// Tick 4 completes the batch window; with 4 scans of history the hot
	// pages qualify (h ≥ 4) and exchange with cold fast pages.
	touch(5)
	n.Tick(4)
	if got := m.Counters().Promotions; got == 0 {
		t.Error("Nimble batch did not promote")
	}
}

func TestAutoTieringExchangesOnFault(t *testing.T) {
	m := testMachine(16)
	at := NewAutoTiering(FaultConfig{})
	at.Attach(m)
	touch := fillHotCold(m)
	// Age the cold fast pages onto the inactive list so exchange victims
	// exist, then arm the hot pages and touch them.
	at.Tick(1)
	at.Tick(2)
	for p := memsim.PageID(16); p < 32; p++ {
		m.PoisonPage(p)
	}
	touch(1)
	if got := m.Counters().Promotions; got == 0 {
		t.Error("no opportunistic promotion on fault")
	}
	if got := m.Counters().Demotions; got == 0 {
		t.Error("no exchange demotion (fast tier was full)")
	}
}

func TestTiering08ResetsOnWorkloadChange(t *testing.T) {
	m := testMachine(16)
	tr := NewTiering08(FaultConfig{})
	tr.Attach(m)
	fillHotCold(m)
	// Phase 1: all faults on fast pages.
	for p := memsim.PageID(0); p < 8; p++ {
		m.PoisonPage(p)
	}
	for p := uint64(0); p < 8; p++ {
		m.Access(p*uint64(m.PageSize()), false)
	}
	tr.Tick(1)
	// Phase 2: faults shift to the slow tier → slow share jumps → reset.
	for p := memsim.PageID(16); p < 32; p++ {
		m.PoisonPage(p)
	}
	for p := uint64(16); p < 32; p++ {
		m.Access(p*uint64(m.PageSize()), false)
	}
	tr.Tick(2)
	if tr.resets == 0 {
		t.Error("workload change did not trigger a threshold reset")
	}
}

func TestFaultPoliciesChargeFaultCost(t *testing.T) {
	m := testMachine(16)
	an := NewAutoNUMA(FaultConfig{})
	an.Attach(m)
	fillHotCold(m)
	an.Tick(1) // poisons a window
	t0 := m.Now()
	// Touch everything: armed pages take hint faults, which cost time.
	for p := uint64(0); p < 32; p++ {
		m.Access(p*uint64(m.PageSize()), false)
	}
	if m.Counters().Faults == 0 {
		t.Fatal("no faults fired after poisoning")
	}
	if m.Now() == t0 {
		t.Error("faults did not advance time")
	}
}

func TestHottestPagesRanksByScore(t *testing.T) {
	m := testMachine(16)
	b := &base{}
	b.attach(m)
	fillHotCold(m)
	score := func(p memsim.PageID) uint32 { return uint32(p) }
	got := b.hottestPages(4, 20, score)
	if len(got) != 4 {
		t.Fatalf("got %d pages", len(got))
	}
	// Highest PageIDs (in slow tier, ≥ min 20) first.
	want := []memsim.PageID{31, 30, 29, 28}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rank %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Min filter.
	if got := b.hottestPages(10, 30, score); len(got) != 2 {
		t.Errorf("min filter kept %d pages, want 2", len(got))
	}
}

func TestPoliciesChargeBackgroundCPU(t *testing.T) {
	for _, f := range Baselines() {
		if f.Name == "Static" {
			continue
		}
		m := testMachine(16)
		pol := f.New()
		pol.Attach(m)
		touch := fillHotCold(m)
		drive(m, pol, touch, 5)
		if m.BackgroundNs() <= 0 {
			t.Errorf("%s: no background CPU charged", f.Name)
		}
	}
}

func TestHeMemPromotesAtFixedThreshold(t *testing.T) {
	m := testMachine(16)
	h := NewHeMem(HeMemConfig{SamplePeriod: 1, HotThreshold: 8})
	h.Attach(m)
	touch := fillHotCold(m)
	// Below threshold: 4 rounds → counts ~4 → no promotion.
	touch(4)
	h.Tick(1)
	if got := m.Counters().Promotions; got != 0 {
		t.Fatalf("promoted %d pages below the fixed threshold", got)
	}
	// Crossing the threshold promotes.
	drive(m, h, touch, 10)
	if got := m.Counters().Promotions; got == 0 {
		t.Error("never promoted above the fixed threshold")
	}
}

func TestHeMemRefusesToThrashHotOverHot(t *testing.T) {
	// Every fast page is hot (above threshold) and active: demotion must
	// find no victim and promotion must stall rather than swap hot pages.
	m := testMachine(16)
	h := NewHeMem(HeMemConfig{SamplePeriod: 1, HotThreshold: 2})
	h.Attach(m)
	ps := uint64(m.PageSize())
	for p := uint64(0); p < 32; p++ {
		m.Access(p*ps, false)
	}
	for round := 0; round < 10; round++ {
		for p := uint64(0); p < 32; p++ { // everything equally hot
			m.Access(p*ps, false)
		}
		h.Tick(int64(round))
	}
	c := m.Counters()
	if c.Demotions > 0 {
		// Any demoted page must have been genuinely below threshold at
		// demotion time — with uniform heat there should be none after
		// the counts warm up.
		t.Logf("note: %d early demotions before counts warmed", c.Demotions)
	}
	inFast := 0
	for p := memsim.PageID(0); p < 16; p++ {
		if m.TierOf(p) == memsim.Fast {
			inFast++
		}
	}
	if inFast < 12 {
		t.Errorf("hot-over-hot thrashing evicted the resident set: %d of 16 remain", inFast)
	}
}

func TestExtraBaselinesRegistry(t *testing.T) {
	extras := ExtraBaselines()
	if len(extras) == 0 {
		t.Fatal("no extra baselines")
	}
	for _, f := range extras {
		pol := f.New()
		if pol.Name() != f.Name {
			t.Errorf("factory %q builds %q", f.Name, pol.Name())
		}
		pol.Attach(testMachine(16))
		pol.Tick(1)
	}
	// Extras are not in the paper roster.
	if _, err := ByName("HeMem"); err == nil {
		t.Error("HeMem leaked into the paper's evaluated baselines")
	}
}
