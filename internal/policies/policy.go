// Package policies implements the tiering policy framework and the seven
// state-of-the-art baselines the paper compares against (Table 1):
// Static (no migration), AutoNUMA, TPP, AutoTiering, Tiering-0.8,
// Multi-clock, Nimble, and MEMTIS. ArtMem itself lives in internal/core.
//
// Each baseline is a faithful behavioural model of the original system's
// *key design* — the mechanism Table 1 credits it with — driven only by
// the signals its real counterpart can see: NUMA-hint faults for the
// fault-driven group (AutoNUMA, TPP, AutoTiering, Tiering-0.8),
// accessed-bit scanning for the CLOCK group (Multi-clock, Nimble), and
// PEBS sampling for MEMTIS. The models are simplified (no THP splitting,
// no per-cgroup accounting) but reproduce the workload-dependent
// strengths and weaknesses the paper's motivation study observes.
package policies

import (
	"fmt"
	"sort"

	"artmem/internal/lru"
	"artmem/internal/memsim"
)

// Policy is a tiered-memory management policy. The harness attaches it
// to a machine, then calls Tick on the policy's interval in virtual
// time. Policies are single-use: one Attach, one run.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Attach binds the policy to the machine before the run starts,
	// installing whatever hooks (sampler, fault handler, alloc hook) the
	// policy's real counterpart relies on.
	Attach(m *memsim.Machine)
	// Interval returns the desired virtual time between Tick calls.
	Interval() int64
	// Tick runs the policy's periodic work (scanning, aging, deciding
	// and executing migrations) at virtual time now.
	Tick(now int64)
}

// EnvPolicy is implemented by policies that can also attach to a
// tenant-scoped machine view (memsim.Env) instead of a whole machine —
// the per-tenant baseline mode of the multi-tenant control plane
// (internal/tenancy). Every baseline in this package implements it;
// Attach(m) is equivalent to AttachEnv(m).
type EnvPolicy interface {
	Policy
	// AttachEnv binds the policy to an arbitrary machine surface.
	AttachEnv(e memsim.Env)
}

// Factory constructs a fresh policy instance for one run.
type Factory struct {
	Name string
	New  func() Policy
}

// Baselines returns factories for the seven comparison systems, in the
// paper's Table 1 order plus the static baseline used for normalization
// in Figure 2.
func Baselines() []Factory {
	return []Factory{
		{Name: "Static", New: func() Policy { return NewStatic() }},
		{Name: "MEMTIS", New: func() Policy { return NewMEMTIS(MEMTISConfig{}) }},
		{Name: "AutoTiering", New: func() Policy { return NewAutoTiering(FaultConfig{}) }},
		{Name: "TPP", New: func() Policy { return NewTPP(FaultConfig{}) }},
		{Name: "AutoNUMA", New: func() Policy { return NewAutoNUMA(FaultConfig{}) }},
		{Name: "Multi-clock", New: func() Policy { return NewMultiClock(ScanConfig{}) }},
		{Name: "Nimble", New: func() Policy { return NewNimble(ScanConfig{}) }},
		{Name: "Tiering-0.8", New: func() Policy { return NewTiering08(FaultConfig{}) }},
	}
}

// ByName returns the factory with the given name.
func ByName(name string) (Factory, error) {
	for _, f := range Baselines() {
		if f.Name == name {
			return f, nil
		}
	}
	return Factory{}, fmt.Errorf("policies: unknown policy %q", name)
}

// DefaultTickInterval is the policies' periodic-work cadence in virtual
// nanoseconds. The paper's systems run their daemons on 1–10s periods
// against runs of many minutes; scaled to our second-long simulations
// this corresponds to ~10ms.
const DefaultTickInterval = 10_000_000 // 10ms

// base carries the machinery shared by every baseline: the machine
// surface (a whole machine or a tenant view), the per-tier
// active/inactive LRU lists maintained from accessed bits, and
// rate-limit bookkeeping.
type base struct {
	m     memsim.Env
	lists *lru.PageLists
	// scanQuota is the number of pages inspected per aging pass and per
	// accessed-bit scan, derived from the footprint.
	scanQuota int
	// migQuota caps pages migrated per tick.
	migQuota int
}

func (b *base) attach(m memsim.Env) {
	b.m = m
	b.lists = lru.New(m.NumPages())
	m.SetAllocHook(func(p memsim.PageID, t memsim.TierID) {
		// New pages start on their tier's active list, as in Linux
		// (first touch implies recency).
		b.lists.PushHead(lru.ActiveOf(t), p)
	})
	if b.scanQuota == 0 {
		b.scanQuota = m.NumPages()/4 + 1
	}
	if b.migQuota == 0 {
		b.migQuota = m.NumPages()/32 + 1
	}
}

// age runs one second-chance aging pass over both tiers using the page
// table's accessed bits, charging the scan to background CPU.
func (b *base) age() {
	b.lists.Age(memsim.Fast, b.scanQuota, b.m.TestAndClearAccessed)
	b.lists.Age(memsim.Slow, b.scanQuota, b.m.TestAndClearAccessed)
	b.m.ChargeBackground(float64(b.scanQuota) * 4 * scanCostPerPageNs)
}

const scanCostPerPageNs = 15

// demoteForHeadroom demotes pages from the fast tier's inactive tail
// until at least want pages are free, or the demotion budget is
// exhausted. It never evicts active pages: reclaim-style demotion is
// "lightweight" — it only moves pages that have demonstrably gone cold.
// When the whole fast tier is actively used (pattern S4's oversized hot
// set), demotion stalls rather than thrashing, which is precisely the
// behaviour that gives AutoNUMA and TPP their S4 advantage (§3.1). It
// returns pages freed.
func (b *base) demoteForHeadroom(want, budget int) int {
	freed := 0
	for b.m.FreePages(memsim.Fast) < want && freed < budget {
		victim := b.lists.Tail(lru.FastInactive)
		if victim == memsim.NoPage {
			break
		}
		if err := b.m.MovePage(victim, memsim.Slow); err != nil {
			break
		}
		// Conservative status transfer (the default in Linux and prior
		// systems): the demoted page keeps its (inactive) activity level.
		b.lists.PushHead(lru.SlowInactive, victim)
		freed++
	}
	return freed
}

// promote moves page p to the fast tier, conservatively preserving its
// activity status (the behaviour ArtMem's page sorting deliberately
// replaces with head-of-active insertion). Returns false when the fast
// tier is full.
func (b *base) promote(p memsim.PageID) bool {
	if b.m.TierOf(p) == memsim.Fast {
		return true
	}
	if err := b.m.MovePage(p, memsim.Fast); err != nil {
		return false
	}
	if b.lists.ListOf(p) == lru.SlowActive {
		b.lists.PushHead(lru.FastActive, p)
	} else {
		b.lists.PushHead(lru.FastInactive, p)
	}
	return true
}

// hottestPages returns up to n allocated slow-tier pages sorted by the
// score function, hottest first, skipping pages scoring below min.
func (b *base) hottestPages(n int, min uint32, score func(memsim.PageID) uint32) []memsim.PageID {
	type scored struct {
		p memsim.PageID
		s uint32
	}
	var cands []scored
	for p := 0; p < b.m.NumPages(); p++ {
		pid := memsim.PageID(p)
		if !b.m.Allocated(pid) || b.m.TierOf(pid) != memsim.Slow {
			continue
		}
		if s := score(pid); s >= min {
			cands = append(cands, scored{pid, s})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].s > cands[j].s })
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]memsim.PageID, len(cands))
	for i, c := range cands {
		out[i] = c.p
	}
	return out
}

// Static is the no-migration baseline: pages stay wherever first touch
// placed them. Figure 2 normalizes the synthetic-pattern results to it.
type Static struct{ base }

// NewStatic returns the static policy.
func NewStatic() *Static { return &Static{} }

// Name implements Policy.
func (s *Static) Name() string { return "Static" }

// Attach implements Policy.
func (s *Static) Attach(m *memsim.Machine) { s.AttachEnv(m) }

// AttachEnv implements EnvPolicy.
func (s *Static) AttachEnv(e memsim.Env) { s.attach(e) }

// Interval implements Policy.
func (s *Static) Interval() int64 { return DefaultTickInterval }

// Tick implements Policy: nothing to do.
func (s *Static) Tick(now int64) {}
