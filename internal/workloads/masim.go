package workloads

import (
	"fmt"

	"artmem/internal/dist"
)

// This file implements the MASIM-style synthetic pattern engine. MASIM
// ("memory access simulator") is the trace generator the paper uses for
// its motivation study: the user describes phases of weighted region
// accesses in a configuration, and the tool produces a dense access
// stream. The paper's four constructed patterns S1–S4 (Figure 1) are
// provided as ready-made constructors.

// Region is a weighted address range within a pattern phase. Accesses
// assigned to the region are uniform within it.
type Region struct {
	// Start and Size delimit the region in bytes.
	Start int64
	Size  int64
	// Weight is the region's share of the phase's accesses, relative to
	// the other regions' weights.
	Weight float64
}

// Phase is one stage of a pattern: a fixed number of accesses drawn from
// a weighted set of regions.
type Phase struct {
	Name string
	// Accesses is the number of accesses in this phase.
	Accesses int64
	// WriteFrac is the fraction of accesses that are writes.
	WriteFrac float64
	// Regions are the weighted target regions. Weights need not sum to 1.
	Regions []Region
}

// Pattern is a multi-phase synthetic access pattern.
type Pattern struct {
	Name      string
	Footprint int64
	Phases    []Phase
}

// Validate reports whether the pattern is well-formed: at least one
// phase, positive-size regions inside the footprint, positive weights.
func (p *Pattern) Validate() error {
	if p.Footprint <= 0 {
		return fmt.Errorf("masim: pattern %q: non-positive footprint", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("masim: pattern %q: no phases", p.Name)
	}
	for _, ph := range p.Phases {
		if ph.Accesses <= 0 {
			return fmt.Errorf("masim: pattern %q phase %q: non-positive accesses", p.Name, ph.Name)
		}
		if len(ph.Regions) == 0 {
			return fmt.Errorf("masim: pattern %q phase %q: no regions", p.Name, ph.Name)
		}
		total := 0.0
		for _, r := range ph.Regions {
			if r.Size <= 0 || r.Start < 0 || r.Start+r.Size > p.Footprint {
				return fmt.Errorf("masim: pattern %q phase %q: region [%d,+%d) outside footprint %d",
					p.Name, ph.Name, r.Start, r.Size, p.Footprint)
			}
			if r.Weight < 0 {
				return fmt.Errorf("masim: pattern %q phase %q: negative weight", p.Name, ph.Name)
			}
			total += r.Weight
		}
		if total <= 0 {
			return fmt.Errorf("masim: pattern %q phase %q: zero total weight", p.Name, ph.Name)
		}
	}
	return nil
}

// TotalAccesses returns the trace length of the pattern.
func (p *Pattern) TotalAccesses() int64 {
	var n int64
	for _, ph := range p.Phases {
		n += ph.Accesses
	}
	return n
}

// NewWorkload compiles the pattern into a Workload. It panics on an
// invalid pattern (patterns are constructed in code).
func (p *Pattern) NewWorkload(seed uint64) Workload {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := dist.NewRNG(seed)
	phase := 0
	left := p.Phases[0].Accesses
	cum := cumWeights(p.Phases[0].Regions)
	gen := func() (Access, bool) {
		for left == 0 {
			phase++
			if phase >= len(p.Phases) {
				return Access{}, false
			}
			left = p.Phases[phase].Accesses
			cum = cumWeights(p.Phases[phase].Regions)
		}
		left--
		ph := &p.Phases[phase]
		r := &ph.Regions[pickRegion(rng, cum)]
		addr := uint64(r.Start) + rng.Uint64n(uint64(r.Size))
		return Access{Addr: addr, Write: rng.Float64() < ph.WriteFrac}, true
	}
	return NewGenerator(p.Name, p.Footprint, gen)
}

func cumWeights(regions []Region) []float64 {
	cum := make([]float64, len(regions))
	total := 0.0
	for i, r := range regions {
		total += r.Weight
		cum[i] = total
	}
	// Normalize to [0,1] for direct comparison with Float64 draws.
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

func pickRegion(rng *dist.RNG, cum []float64) int {
	u := rng.Float64()
	// Linear scan: pattern phases have a handful of regions.
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

// ---- the paper's synthetic patterns S1–S4 (Figure 1) ---------------------

// The patterns are expressed against the paper's 32GB footprint and
// scaled by the profile. Region placements follow Figure 1's geometry.

const paperPatternGB = 32.0

// PatternS1 is the paper's high-locality pattern: over 90% of accesses
// fall in two 500MB hot regions; the rest is uniform background.
func PatternS1(p Profile) *Pattern {
	foot := p.Bytes(paperPatternGB)
	hot := p.Bytes(500.0 / 1024)
	return &Pattern{
		Name:      "S1",
		Footprint: foot,
		Phases: []Phase{{
			Name:      "steady",
			Accesses:  p.PatternAccesses,
			WriteFrac: 0.2,
			Regions: []Region{
				{Start: foot / 8, Size: hot, Weight: 0.46},
				{Start: foot * 5 / 8, Size: hot, Weight: 0.46},
				{Start: 0, Size: foot, Weight: 0.08},
			},
		}},
	}
}

// PatternS2 models a region that is intensely accessed during one period
// and never again: a 10GB hot region shifts each quarter of the run.
// Two consecutive epochs' regions together exceed a 16GB fast tier, so
// systems that cannot shed *stale* heat (accumulated access frequency)
// cannot make room for the current working set — the failure mode the
// paper observes for MEMTIS and Nimble on this pattern (§3.1).
func PatternS2(p Profile) *Pattern {
	foot := p.Bytes(paperPatternGB)
	hot := p.Bytes(10)
	const phases = 4
	pat := &Pattern{Name: "S2", Footprint: foot}
	for i := 0; i < phases; i++ {
		start := p.Bytes(7 * float64(i))
		if start+hot > foot {
			start = foot - hot
		}
		pat.Phases = append(pat.Phases, Phase{
			Name:      fmt.Sprintf("epoch-%d", i),
			Accesses:  p.PatternAccesses / phases,
			WriteFrac: 0.2,
			Regions: []Region{
				{Start: start, Size: hot, Weight: 0.9},
				{Start: 0, Size: foot, Weight: 0.1},
			},
		})
	}
	return pat
}

// PatternS3 has a single 12GB hot region: improvement depends on how
// quickly a system identifies and migrates the (large) hot set.
func PatternS3(p Profile) *Pattern {
	foot := p.Bytes(paperPatternGB)
	hot := p.Bytes(12)
	return &Pattern{
		Name:      "S3",
		Footprint: foot,
		Phases: []Phase{{
			Name:      "steady",
			Accesses:  p.PatternAccesses,
			WriteFrac: 0.2,
			Regions: []Region{
				{Start: foot / 4, Size: hot, Weight: 0.92},
				{Start: 0, Size: foot, Weight: 0.08},
			},
		}},
	}
}

// PatternS4 has a 20GB hot region at half the per-byte heat of S3's —
// the hot set exceeds a 16GB DRAM tier, so systems must avoid thrashing.
func PatternS4(p Profile) *Pattern {
	foot := p.Bytes(paperPatternGB)
	hot := p.Bytes(20)
	// Per-byte heat half of S3: weight scales with size/2 relative to S3
	// (0.92 × (20/12) / 2 ≈ 0.77).
	return &Pattern{
		Name:      "S4",
		Footprint: foot,
		Phases: []Phase{{
			Name:      "steady",
			Accesses:  p.PatternAccesses,
			WriteFrac: 0.2,
			Regions: []Region{
				{Start: foot / 8, Size: hot, Weight: 0.77},
				{Start: 0, Size: foot, Weight: 0.23},
			},
		}},
	}
}

// Patterns returns S1–S4 in order.
func Patterns(p Profile) []*Pattern {
	return []*Pattern{PatternS1(p), PatternS2(p), PatternS3(p), PatternS4(p)}
}
