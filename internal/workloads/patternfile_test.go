package workloads

import (
	"fmt"
	"strings"
	"testing"
)

const goodPattern = `
# Two-phase pattern: hot region moves.
name moving-hot
footprint 64M

phase early accesses=1000 write=0.25
region start=0   size=8M  weight=0.9
region start=0   size=64M weight=0.1

phase late accesses=2000
region start=32M size=8M  weight=1.0
`

func TestParsePattern(t *testing.T) {
	p, err := ParsePattern(strings.NewReader(goodPattern))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "moving-hot" || p.Footprint != 64<<20 {
		t.Errorf("header = %q/%d", p.Name, p.Footprint)
	}
	if len(p.Phases) != 2 {
		t.Fatalf("phases = %d", len(p.Phases))
	}
	early := p.Phases[0]
	if early.Name != "early" || early.Accesses != 1000 || early.WriteFrac != 0.25 {
		t.Errorf("early = %+v", early)
	}
	if len(early.Regions) != 2 || early.Regions[0].Size != 8<<20 ||
		early.Regions[0].Weight != 0.9 {
		t.Errorf("early regions = %+v", early.Regions)
	}
	late := p.Phases[1]
	if late.Accesses != 2000 || late.WriteFrac != 0 ||
		late.Regions[0].Start != 32<<20 {
		t.Errorf("late = %+v", late)
	}
	if p.TotalAccesses() != 3000 {
		t.Errorf("TotalAccesses = %d", p.TotalAccesses())
	}
	// The parsed pattern actually runs.
	w := p.NewWorkload(1)
	defer w.Close()
	if got := Drain(w); got != 3000 {
		t.Errorf("drained %d accesses", got)
	}
}

func TestParsePatternSizeSuffixes(t *testing.T) {
	for in, want := range map[string]int64{
		"123": 123, "4K": 4 << 10, "2k": 2 << 10, "7M": 7 << 20,
		"3m": 3 << 20, "1G": 1 << 30, "2g": 2 << 30,
	} {
		got, err := parseSize(in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseSize(%q) = %d, want %d", in, got, want)
		}
	}
	if _, err := parseSize("12X"); err == nil {
		t.Error("bad suffix accepted")
	}
	if _, err := parseSize("G"); err == nil {
		t.Error("bare suffix accepted")
	}
}

func TestParsePatternErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "bogus 1 2 3",
		"region first":      "footprint 1M\nregion size=1K weight=1",
		"bad phase option":  "footprint 1M\nphase p accesses=10 color=red\nregion size=1K weight=1",
		"bad write":         "footprint 1M\nphase p accesses=10 write=2\nregion size=1K weight=1",
		"missing weight":    "footprint 1M\nphase p accesses=10\nregion size=1K",
		"region oob":        "footprint 1M\nphase p accesses=10\nregion start=1M size=1K weight=1",
		"no phases":         "footprint 1M",
		"zero accesses":     "footprint 1M\nphase p\nregion size=1K weight=1",
		"bad kv":            "footprint 1M\nphase p accesses=10\nregion size weight=1",
		"name arity":        "name a b",
	}
	for label, src := range cases {
		if _, err := ParsePattern(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted:\n%s", label, src)
		}
	}
}

func TestParsePatternDefaultsName(t *testing.T) {
	p, err := ParsePattern(strings.NewReader(
		"footprint 1M\nphase p accesses=5\nregion size=1K weight=1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "pattern" {
		t.Errorf("default name = %q", p.Name)
	}
}

// ExampleParsePattern shows the MASIM-style pattern file format.
func ExampleParsePattern() {
	src := `
name demo
footprint 16M
phase warm accesses=100 write=0.5
region start=0  size=4M  weight=0.8
region start=0  size=16M weight=0.2
`
	p, err := ParsePattern(strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d phases, %d accesses over %dMB\n",
		p.Name, len(p.Phases), p.TotalAccesses(), p.Footprint>>20)
	// Output:
	// demo: 1 phases, 100 accesses over 16MB
}
