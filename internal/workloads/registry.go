package workloads

import "fmt"

// Spec describes one constructible workload.
type Spec struct {
	// Name is the workload's registry key (matches Table 3).
	Name string
	// PaperGB is the paper's reported memory footprint in GB.
	PaperGB float64
	// New constructs a fresh single-use workload at the given scale.
	New func(p Profile) Workload
}

// NewSeeded constructs the workload at profile p with p.Seed offset by
// `offset` — the load generator's per-client trace derivation: N
// concurrent clients replay the same workload shape with decorrelated
// access orders, so the server sees N distinct streams rather than N
// copies of one.
func (s Spec) NewSeeded(p Profile, offset uint64) Workload {
	p.Seed += offset
	return s.New(p)
}

// Apps lists the paper's eight applications (Table 3) in its order.
var Apps = []Spec{
	{Name: "YCSB", PaperGB: paperYCSBGB, New: NewYCSB},
	{Name: "CC", PaperGB: paperCCGB, New: NewCC},
	{Name: "SSSP", PaperGB: paperSSSPGB, New: NewSSSP},
	{Name: "PR", PaperGB: paperPRGB, New: NewPR},
	{Name: "XSBench", PaperGB: paperXSBenchGB, New: NewXSBench},
	{Name: "DLRM", PaperGB: paperDLRMGB, New: NewDLRM},
	{Name: "Btree", PaperGB: paperBtreeGB, New: NewBtree},
	{Name: "Liblinear", PaperGB: paperLiblinearGB, New: NewLiblinear},
}

// SyntheticSpecs lists the four MASIM patterns S1–S4 as Specs.
func SyntheticSpecs() []Spec {
	mk := func(name string, f func(Profile) *Pattern) Spec {
		return Spec{
			Name:    name,
			PaperGB: paperPatternGB,
			New: func(p Profile) Workload {
				// Real programs initialize their memory before the access
				// phase; see WithInitSweep.
				return WithInitSweep(f(p).NewWorkload(p.Seed^uint64(name[1])), 0)
			},
		}
	}
	return []Spec{
		mk("S1", PatternS1),
		mk("S2", PatternS2),
		mk("S3", PatternS3),
		mk("S4", PatternS4),
	}
}

// ByName finds a workload spec among the applications, the synthetic
// patterns, and the mixed combinations.
func ByName(name string) (Spec, error) {
	for _, s := range Apps {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range SyntheticSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range MixedSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// MixedSpecs lists the concurrent combinations of §6.3.10 (three
// workloads from different application domains, run together).
func MixedSpecs() []Spec {
	pair := func(name string, a, b func(Profile) Workload) Spec {
		return Spec{
			Name: name,
			New: func(p Profile) Workload {
				// Split the budget so the mix's length matches a single
				// workload's.
				half := p
				half.AppAccesses = p.AppAccesses / 2
				return Mixed(name, a(half), b(half))
			},
		}
	}
	triple := Spec{
		Name: "SSSP+XSBench+DLRM",
		New: func(p Profile) Workload {
			third := p
			third.AppAccesses = p.AppAccesses / 3
			return Mixed("SSSP+XSBench+DLRM",
				NewSSSP(third), NewXSBench(third), NewDLRM(third))
		},
	}
	return []Spec{
		pair("SSSP+XSBench", NewSSSP, NewXSBench),
		pair("SSSP+DLRM", NewSSSP, NewDLRM),
		pair("XSBench+DLRM", NewXSBench, NewDLRM),
		triple,
	}
}
