package workloads

import (
	"sync"

	"artmem/internal/btreeidx"
	"artmem/internal/dist"
)

// The Btree workload (Table 3: "In-Memory Index Lookup", 24GB): populate
// a B-tree, then perform random lookups of existing keys — the
// mitosis-project BTree benchmark the paper uses ("We populated the
// Btree with 300 million key-value pairs and performed 8 billion random
// lookup operations").

const (
	paperBtreeGB   = 24.0
	paperBtreeKeys = 300_000_000
)

type btreeCacheEntry struct {
	tree *btreeidx.Tree
	keys []uint64
}

var (
	btreeCacheMu sync.Mutex
	btreeCache   = map[[2]uint64]*btreeCacheEntry{}
)

// builtTree returns a populated tree with numKeys random keys and node
// virtual size nodeBytes, memoized across runs (lookups never mutate it).
func builtTree(numKeys int, nodeBytes uint64, seed uint64) *btreeCacheEntry {
	key := [2]uint64{uint64(numKeys)<<16 | nodeBytes, seed}
	btreeCacheMu.Lock()
	defer btreeCacheMu.Unlock()
	if e, ok := btreeCache[key]; ok {
		return e
	}
	tr := btreeidx.New(btreeidx.Config{Base: 0, Order: 64, NodeBytes: nodeBytes})
	rng := dist.NewRNG(seed)
	keys := make([]uint64, 0, numKeys)
	for len(keys) < numKeys {
		k := rng.Uint64()
		if tr.Insert(k, nil) {
			keys = append(keys, k)
		}
	}
	e := &btreeCacheEntry{tree: tr, keys: keys}
	btreeCache[key] = e
	return e
}

// NewBtree builds the index-lookup workload at the profile's scale.
func NewBtree(p Profile) Workload {
	numKeys := p.ScaleCount(paperBtreeKeys)
	if numKeys < 1024 {
		numKeys = 1024
	}
	target := p.Bytes(paperBtreeGB)
	// Order-64 nodes average ~2/3 full: estimate the node count to pick
	// a virtual node size that reaches the target footprint.
	estNodes := int64(float64(numKeys)/42*1.06) + 2
	nodeBytes := uint64(target / estNodes)
	if nodeBytes < 64 {
		nodeBytes = 64
	}
	nodeBytes &^= 63 // cacheline-align
	e := builtTree(numKeys, nodeBytes, p.Seed^0xb7ee)
	run := func(emit func(addr uint64, write bool)) {
		rng := dist.NewRNG(p.Seed ^ 0x100c)
		for {
			// Random lookups of existing keys, forever; the Limit
			// wrapper ends the trace at the access budget.
			k := e.keys[rng.Intn(len(e.keys))]
			if !e.tree.Lookup(k, emit) {
				panic("workloads: btree lost a key")
			}
		}
	}
	return Limit(WithInitSweep(NewTrace("Btree", e.tree.Footprint(), run), 0), p.AppAccesses)
}
