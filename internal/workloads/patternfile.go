package workloads

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a MASIM-style pattern configuration format, so
// custom access patterns can be described in text files rather than
// code — mirroring how the paper's motivation study drives MASIM
// ("a simulator for dense memory access that allows users to specify
// data access patterns through configuration files", §3).
//
// Format (line-oriented; '#' starts a comment):
//
//	name     <pattern name>
//	footprint <size>                      # e.g. 32G, 512M, 4096
//	phase    <name> accesses=<n> [write=<frac>]
//	region   start=<size> size=<size> weight=<float>
//	...
//
// Each `region` line attaches to the most recent `phase`. Sizes accept
// K/M/G suffixes (binary units).

// ParsePattern reads a pattern description from r.
func ParsePattern(r io.Reader) (*Pattern, error) {
	p := &Pattern{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("pattern line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, errf("name wants one argument")
			}
			p.Name = fields[1]
		case "footprint":
			if len(fields) != 2 {
				return nil, errf("footprint wants one argument")
			}
			v, err := parseSize(fields[1])
			if err != nil {
				return nil, errf("footprint: %v", err)
			}
			p.Footprint = v
		case "phase":
			if len(fields) < 2 {
				return nil, errf("phase wants a name")
			}
			ph := Phase{Name: fields[1]}
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, errf("phase: bad option %q", kv)
				}
				switch k {
				case "accesses":
					n, err := parseSize(v)
					if err != nil {
						return nil, errf("phase accesses: %v", err)
					}
					ph.Accesses = n
				case "write":
					f, err := strconv.ParseFloat(v, 64)
					if err != nil || f < 0 || f > 1 {
						return nil, errf("phase write fraction %q", v)
					}
					ph.WriteFrac = f
				default:
					return nil, errf("phase: unknown option %q", k)
				}
			}
			p.Phases = append(p.Phases, ph)
		case "region":
			if len(p.Phases) == 0 {
				return nil, errf("region before any phase")
			}
			reg := Region{}
			seen := map[string]bool{}
			for _, kv := range fields[1:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, errf("region: bad option %q", kv)
				}
				seen[k] = true
				switch k {
				case "start":
					n, err := parseSize(v)
					if err != nil {
						return nil, errf("region start: %v", err)
					}
					reg.Start = n
				case "size":
					n, err := parseSize(v)
					if err != nil {
						return nil, errf("region size: %v", err)
					}
					reg.Size = n
				case "weight":
					f, err := strconv.ParseFloat(v, 64)
					if err != nil {
						return nil, errf("region weight %q", v)
					}
					reg.Weight = f
				default:
					return nil, errf("region: unknown option %q", k)
				}
			}
			if !seen["size"] || !seen["weight"] {
				return nil, errf("region needs size= and weight=")
			}
			ph := &p.Phases[len(p.Phases)-1]
			ph.Regions = append(ph.Regions, reg)
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.Name == "" {
		p.Name = "pattern"
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseSize parses an integer with an optional binary K/M/G suffix.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
