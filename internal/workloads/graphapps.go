package workloads

import (
	"sync"

	"artmem/internal/dist"
	"artmem/internal/graph"
)

// Graph-analytics workloads (GAP benchmark suite): CC on a uniform
// random graph (the "Urand" input), SSSP on a locality-heavy web graph,
// PR on a power-law social graph (the "Twitter" input) — the three
// algorithm/input pairs of Table 3.
//
// Graph sizes are chosen so a full run is a few multiples of the
// profile's access budget (several complete passes appear in the trace),
// and the CSR layout is stretched with virtual strides to reach the
// paper's scaled footprint (see DESIGN.md).

const (
	paperCCGB   = 69.0
	paperSSSPGB = 64.0
	paperPRGB   = 25.0
)

// graphKey memoizes generated graphs: generation is the expensive part
// of constructing a graph workload, and experiments construct the same
// workload hundreds of times. Graphs are read-only after generation.
type graphKey struct {
	kind     string
	n, m     int
	weighted bool
	seed     uint64
}

var (
	graphCacheMu sync.Mutex
	graphCache   = map[graphKey]*graph.Graph{}
)

func cachedGraph(kind string, n, m int, weighted bool, seed uint64) *graph.Graph {
	key := graphKey{kind, n, m, weighted, seed}
	graphCacheMu.Lock()
	defer graphCacheMu.Unlock()
	if g, ok := graphCache[key]; ok {
		return g
	}
	rng := dist.NewRNG(seed)
	var g *graph.Graph
	switch kind {
	case "uniform":
		g = graph.GenUniform(rng, n, m, weighted)
	case "web":
		g = graph.GenWeb(rng, n, m, weighted)
	case "powerlaw":
		g = graph.GenPowerLaw(rng, n, m, weighted)
	default:
		panic("workloads: unknown graph kind " + kind)
	}
	graphCache[key] = g
	return g
}

// stretchLayout builds a Layout whose footprint approximates target by
// scaling the base strides (8B offsets, 4B edges, 8B properties)
// uniformly.
func stretchLayout(g *graph.Graph, target int64) *graph.Layout {
	n := int64(g.NumVertices())
	m := int64(g.NumEdges())
	base := (n+1)*8 + m*4 + 2*n*8
	scale := target / base
	if scale < 1 {
		scale = 1
	}
	return graph.NewLayout(g, 0, uint64(8*scale), uint64(4*scale), uint64(8*scale))
}

// graphScale derives vertex/edge counts from the access budget so the
// full algorithm takes roughly passes×budget accesses.
func graphScale(budget int64, touchesPerEdge int64, degree int) (n, m int) {
	m = int(budget / touchesPerEdge)
	if m < 1024 {
		m = 1024
	}
	n = m / degree
	if n < 64 {
		n = 64
	}
	return n, m
}

// NewCC builds the connected-components workload (Urand input class).
func NewCC(p Profile) Workload {
	// One CC pass costs ≈ 3 touches per edge; size for ~3 passes within
	// the budget.
	n, m := graphScale(p.AppAccesses, 9, 8)
	g := cachedGraph("uniform", n, m, false, p.Seed^0xcc)
	l := stretchLayout(g, p.Bytes(paperCCGB))
	run := func(emit func(addr uint64, write bool)) {
		graph.ConnectedComponents(g, l, emit)
	}
	return Limit(WithInitSweep(NewTrace("CC", l.Footprint(), run), 0), p.AppAccesses)
}

// NewSSSP builds the single-source-shortest-paths workload (Web input
// class, weighted).
func NewSSSP(p Profile) Workload {
	// SSSP touches each edge a small number of times across rounds.
	n, m := graphScale(p.AppAccesses, 5, 8)
	g := cachedGraph("web", n, m, true, p.Seed^0x5559)
	l := stretchLayout(g, p.Bytes(paperSSSPGB))
	run := func(emit func(addr uint64, write bool)) {
		// GAP runs several trials from different sources; two sources
		// give the trace a mid-run locality shift.
		graph.SSSP(g, l, 0, emit)
		graph.SSSP(g, l, uint32(g.NumVertices()/2), emit)
	}
	return Limit(WithInitSweep(NewTrace("SSSP", l.Footprint(), run), 0), p.AppAccesses)
}

// NewPR builds the PageRank workload (Twitter/power-law input class).
func NewPR(p Profile) Workload {
	// One PR iteration costs ≈ 3 touches per edge + 3 per vertex; size
	// for ~4 iterations within the budget.
	n, m := graphScale(p.AppAccesses, 13, 8)
	g := cachedGraph("powerlaw", n, m, false, p.Seed^0x9812)
	l := stretchLayout(g, p.Bytes(paperPRGB))
	run := func(emit func(addr uint64, write bool)) {
		graph.PageRank(g, l, 4, 0.85, emit)
	}
	return Limit(WithInitSweep(NewTrace("PR", l.Footprint(), run), 0), p.AppAccesses)
}
