package workloads

import "artmem/internal/dist"

// Models of the paper's three remaining applications. Each reproduces
// the access-pattern *shape* the paper attributes to the real program
// (see the per-workload comments), generated procedurally so footprints
// can be large without real allocation.

const (
	paperXSBenchGB   = 69.0
	paperDLRMGB      = 72.0
	paperLiblinearGB = 68.0
)

// NewXSBench models the XSBench Monte Carlo neutron-transport kernel:
// each macroscopic cross-section lookup binary-searches the unionized
// energy grid (a small region whose upper binary-search levels are
// extremely hot) and then gathers per-nuclide cross-section rows
// scattered across a huge table (uniform, low locality). The paper
// observes ArtMem "promptly places the hot regions in the fast memory
// tier" (§6.2).
func NewXSBench(p Profile) Workload {
	foot := p.Bytes(paperXSBenchGB)
	gridBytes := foot * 15 / 100  // unionized energy grid + index
	dataBytes := foot - gridBytes // nuclide cross-section data
	const (
		gridEntry = 64 // bytes per grid node
		isotopes  = 8  // nuclides gathered per lookup
		rowBytes  = 128
	)
	gridEntries := uint64(gridBytes / gridEntry)
	rng := dist.NewRNG(p.Seed ^ 0x7853) // "xs"
	var remaining = p.AppAccesses
	// State machine: emit the touch sequence of one lookup at a time.
	var pending []Access
	pos := 0
	lookup := func() {
		pending = pending[:0]
		// Binary search over the energy grid: the probe sequence visits
		// midpoint, quarter points, ... — upper levels are shared by
		// every lookup and become the hot region.
		lo, hi := uint64(0), gridEntries
		target := rng.Uint64n(gridEntries)
		for lo < hi {
			mid := (lo + hi) / 2
			pending = append(pending, Access{Addr: mid * gridEntry})
			if mid == target {
				break
			}
			if mid < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		// Gather per-isotope rows: pseudo-random rows in the data region,
		// two consecutive gridpoints each (interpolation).
		h := target * 0x9e3779b97f4a7c15
		for i := 0; i < isotopes; i++ {
			h ^= h >> 29
			h *= 0xbf58476d1ce4e5b9
			row := h % uint64(dataBytes/rowBytes-1)
			base := uint64(gridBytes) + row*rowBytes
			pending = append(pending,
				Access{Addr: base},
				Access{Addr: base + 64},
				Access{Addr: base + rowBytes})
		}
	}
	gen := func() (Access, bool) {
		if remaining <= 0 {
			return Access{}, false
		}
		for pos >= len(pending) {
			lookup()
			pos = 0
		}
		a := pending[pos]
		pos++
		remaining--
		return a, true
	}
	return WithInitSweep(NewGenerator("XSBench", foot, gen), 0)
}

// NewDLRM models the DLRM training loop (§6.2): embedding tables occupy
// most of the footprint and are hit by "largely unskewed" random row
// lookups, while the dense MLP parameters and activations are small,
// sequentially swept, and hot — the part "ArtMem can learn and leverage
// effectively".
func NewDLRM(p Profile) Workload {
	foot := p.Bytes(paperDLRMGB)
	denseBytes := foot * 3 / 100
	actBytes := foot * 5 / 100
	embBytes := foot - denseBytes - actBytes
	const (
		tables       = 8
		lookupsPerTb = 16
		rowBytes     = 256
		denseStride  = 64
	)
	tableBytes := uint64(embBytes / tables)
	rowsPerTable := tableBytes / rowBytes
	rng := dist.NewRNG(p.Seed ^ 0xd124)
	remaining := p.AppAccesses
	var pending []Access
	pos := 0
	iteration := func() {
		pending = pending[:0]
		embBase := uint64(denseBytes + actBytes)
		// Sparse feature lookups: uniform rows in each table (forward),
		// written back during the backward pass (gradient update).
		for t := uint64(0); t < tables; t++ {
			base := embBase + t*tableBytes
			for l := 0; l < lookupsPerTb; l++ {
				row := rng.Uint64n(rowsPerTable)
				addr := base + row*rowBytes
				pending = append(pending,
					Access{Addr: addr},
					Access{Addr: addr + 64},
					Access{Addr: addr, Write: true},
					Access{Addr: addr + 64, Write: true})
			}
		}
		// Dense forward+backward: sequential sweep of MLP parameters
		// (read on forward, written by the optimizer).
		for off := int64(0); off < denseBytes; off += denseStride * 8 {
			pending = append(pending,
				Access{Addr: uint64(off)},
				Access{Addr: uint64(off), Write: true})
		}
		// Activations: sequential writes then reads within a rotating
		// slice of the activation region.
		actSlice := actBytes / 8
		start := uint64(denseBytes) + uint64(rng.Uint64n(8))*uint64(actSlice)
		for off := int64(0); off < actSlice; off += denseStride * 16 {
			pending = append(pending,
				Access{Addr: start + uint64(off), Write: true},
				Access{Addr: start + uint64(off)})
		}
	}
	gen := func() (Access, bool) {
		if remaining <= 0 {
			return Access{}, false
		}
		for pos >= len(pending) {
			iteration()
			pos = 0
		}
		a := pending[pos]
		pos++
		remaining--
		return a, true
	}
	return WithInitSweep(NewGenerator("DLRM", foot, gen), 0)
}

// NewLiblinear models Liblinear training on KDD12 (§6.2): an early phase
// whose accesses are "relatively uniform ... with no extremely hot
// pages" (sequential epochs over the whole training matrix), followed by
// a skewed phase where a subset of features dominates (the behaviour
// that lets MEMTIS pre-promote warm pages and trips up threshold-based
// systems).
func NewLiblinear(p Profile) Workload {
	foot := p.Bytes(paperLiblinearGB)
	weightBytes := foot * 2 / 100
	dataBytes := foot - weightBytes
	dataBase := uint64(weightBytes)
	budget := p.AppAccesses
	loadBudget := budget * 15 / 100
	uniformBudget := budget * 35 / 100
	rng := dist.NewRNG(p.Seed ^ 0x11b1)
	zip := dist.NewZipf(rng.Split(), uint64(dataBytes/4096), 0.7)
	var emitted int64
	seq := int64(0)
	gen := func() (Access, bool) {
		if emitted >= budget {
			return Access{}, false
		}
		emitted++
		switch {
		case emitted <= loadBudget:
			// Data loading: sequential sweep, stride 64B.
			addr := dataBase + uint64(seq*64)%uint64(dataBytes)
			seq++
			return Access{Addr: addr, Write: true}, true
		case emitted <= loadBudget+uniformBudget:
			// Early gradient descent: uniform sweeps with a touch of the
			// weight vector every few samples.
			if emitted%8 == 0 {
				return Access{Addr: rng.Uint64n(uint64(weightBytes)), Write: true}, true
			}
			addr := dataBase + uint64(seq*64)%uint64(dataBytes)
			seq++
			return Access{Addr: addr}, true
		default:
			// Later epochs: skewed feature popularity (active set shrinks
			// as the solver focuses on informative examples).
			if emitted%6 == 0 {
				return Access{Addr: rng.Uint64n(uint64(weightBytes)), Write: true}, true
			}
			page := zip.Next()
			return Access{Addr: dataBase + page*4096 + rng.Uint64n(4096)&^63}, true
		}
	}
	return WithInitSweep(NewGenerator("Liblinear", foot, gen), 0)
}
