package workloads

import (
	"strings"
	"testing"
)

// FuzzParsePattern verifies the pattern-file parser never panics on
// arbitrary input and that accepted patterns are always valid.
func FuzzParsePattern(f *testing.F) {
	f.Add(goodPattern)
	f.Add("footprint 1M\nphase p accesses=10\nregion size=1K weight=1\n")
	f.Add("name x\n# only a comment\n")
	f.Add("region size=1K weight=1")
	f.Add("phase\nfootprint G\n")
	f.Add(strings.Repeat("phase p accesses=1\n", 50))

	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePattern(strings.NewReader(src))
		if err != nil {
			return
		}
		// Anything the parser accepts must satisfy Validate (the parser
		// promises to return only valid patterns).
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted invalid pattern: %v\ninput:\n%s", verr, src)
		}
	})
}
