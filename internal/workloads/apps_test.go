package workloads

import (
	"testing"
)

// drainStats consumes a workload and returns basic trace statistics.
type traceStats struct {
	total   int64
	writes  int64
	maxAddr uint64
}

func drainStats(t *testing.T, w Workload) traceStats {
	t.Helper()
	defer w.Close()
	var st traceStats
	foot := uint64(w.FootprintBytes())
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			if a.Addr >= foot {
				t.Fatalf("%s: address %#x outside footprint %#x", w.Name(), a.Addr, foot)
			}
			if a.Addr > st.maxAddr {
				st.maxAddr = a.Addr
			}
			if a.Write {
				st.writes++
			}
			st.total++
		}
	}
	return st
}

func TestAllAppsProduceBoundedTraces(t *testing.T) {
	p := QuickProfile()
	for _, spec := range Apps {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			w := spec.New(p)
			if w.Name() != spec.Name {
				t.Errorf("name = %q, want %q", w.Name(), spec.Name)
			}
			if w.FootprintBytes() <= 0 {
				t.Fatalf("footprint = %d", w.FootprintBytes())
			}
			st := drainStats(t, w)
			if st.total == 0 {
				t.Fatal("empty trace")
			}
			// The budget bounds the application phase; the init sweep
			// adds one access per 4KB of footprint on top.
			sweep := w.FootprintBytes()/4096 + 1
			if st.total > p.AppAccesses+sweep {
				t.Errorf("trace length %d exceeds budget %d + sweep %d",
					st.total, p.AppAccesses, sweep)
			}
			// Every application at least touches a large share of its
			// address space eventually (footprint is honest).
			if st.maxAddr < uint64(w.FootprintBytes())/4 {
				t.Errorf("max address %#x touches < 1/4 of footprint %#x",
					st.maxAddr, w.FootprintBytes())
			}
		})
	}
}

func TestYCSBHasWritesAndReads(t *testing.T) {
	w := NewYCSB(QuickProfile())
	st := drainStats(t, w)
	if st.writes == 0 || st.writes == st.total {
		t.Errorf("YCSB writes = %d of %d; expected a mix", st.writes, st.total)
	}
}

func TestLiblinearPhaseShift(t *testing.T) {
	p := QuickProfile()
	w := NewLiblinear(p)
	defer w.Close()
	// Collect per-16KB-chunk access counts for the uniform phase and the
	// skewed phase separately.
	loadEnd := p.AppAccesses * 15 / 100
	uniformEnd := loadEnd + p.AppAccesses*35/100
	const chunk = 16 * 1024
	uniformCounts := map[uint64]int{}
	skewCounts := map[uint64]int{}
	i := int64(0)
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			switch {
			case i < loadEnd:
			case i < uniformEnd:
				uniformCounts[a.Addr/chunk]++
			default:
				skewCounts[a.Addr/chunk]++
			}
			i++
		}
	}
	maxShare := func(m map[uint64]int) float64 {
		total, max := 0, 0
		for _, c := range m {
			total += c
			if c > max {
				max = c
			}
		}
		if total == 0 {
			return 0
		}
		return float64(max) / float64(total)
	}
	if u, s := maxShare(uniformCounts), maxShare(skewCounts); s < u*2 {
		t.Errorf("late phase not skewed: uniform max-share %g, skew max-share %g", u, s)
	}
}

func TestXSBenchHasHotGridRegion(t *testing.T) {
	p := QuickProfile()
	w := NewXSBench(p)
	defer w.Close()
	gridBytes := uint64(w.FootprintBytes() * 15 / 100)
	inGrid, total := 0, 0
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			if a.Addr < gridBytes {
				inGrid++
			}
			total++
		}
	}
	// The grid is 15% of the space; binary-search probes concentrate far
	// more than 15% of the accesses there.
	if f := float64(inGrid) / float64(total); f < 0.3 {
		t.Errorf("grid share = %g, want well above its 0.15 size share", f)
	}
}

func TestDLRMDenseRegionIsHot(t *testing.T) {
	p := QuickProfile()
	w := NewDLRM(p)
	defer w.Close()
	foot := w.FootprintBytes()
	denseBytes := uint64(foot * 3 / 100)
	inDense, total := 0, 0
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			if a.Addr < denseBytes {
				inDense++
			}
			total++
		}
	}
	if f := float64(inDense) / float64(total); f < 0.1 {
		t.Errorf("dense-region share = %g, want ≫ its 0.03 size share", f)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"YCSB", "CC", "S1", "S4", "SSSP+XSBench"} {
		spec, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if spec.Name != name {
			t.Errorf("ByName(%q) → %q", name, spec.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestMixedSpecBudgetsAndRegions(t *testing.T) {
	p := QuickProfile()
	spec, err := ByName("SSSP+XSBench")
	if err != nil {
		t.Fatal(err)
	}
	w := spec.New(p)
	sweep := w.FootprintBytes()/4096 + 2
	st := drainStats(t, w)
	if st.total == 0 || st.total > p.AppAccesses+sweep {
		t.Errorf("mixed trace length %d outside (0, %d]", st.total, p.AppAccesses+sweep)
	}
}

func TestGraphWorkloadsDeterministic(t *testing.T) {
	p := QuickProfile()
	run := func() (int64, uint64) {
		w := NewCC(p)
		defer w.Close()
		var n int64
		var sum uint64
		for {
			b, ok := w.Next()
			if !ok {
				break
			}
			for _, a := range b {
				sum += a.Addr
				n++
			}
		}
		return n, sum
	}
	n1, s1 := run()
	n2, s2 := run()
	if n1 != n2 || s1 != s2 {
		t.Errorf("CC traces differ across runs: %d/%d vs %d/%d", n1, s1, n2, s2)
	}
}

func TestBtreeWorkloadRootIsHottest(t *testing.T) {
	p := QuickProfile()
	w := NewBtree(p)
	defer w.Close()
	counts := map[uint64]int{} // per 64KB chunk
	total := 0
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			counts[a.Addr/(64*1024)]++
			total++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if len(counts) < 2 {
		t.Skip("tree too small at this scale to span chunks")
	}
	mean := total / len(counts)
	if max < mean*3 {
		t.Errorf("hottest chunk %d not ≫ mean %d; index levels should be top-heavy",
			max, mean)
	}
}
