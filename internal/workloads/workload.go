// Package workloads defines the Workload abstraction — a generator of
// memory-access traces — and implements every workload the paper
// evaluates: the four synthetic MASIM patterns S1–S4 (Figure 1), the
// eight applications of Table 3 (YCSB, CC, SSSP, PR, XSBench, DLRM,
// Btree, Liblinear), and the mixed concurrent combinations of §6.3.10.
//
// A Workload produces batches of Access records. The harness replays
// them into a memsim.Machine under a tiering policy; because the trace is
// generated open-loop (independent of policy decisions), every policy
// sees the identical access sequence, and differences in simulated
// execution time are attributable purely to page placement.
package workloads

import "sync"

// Access is one memory reference.
type Access struct {
	Addr  uint64
	Write bool
}

// Workload generates an access trace.
type Workload interface {
	// Name identifies the workload.
	Name() string
	// FootprintBytes is the size of the virtual address space the
	// workload touches; the harness sizes the machine from it.
	FootprintBytes() int64
	// Next returns the next batch of accesses. The returned slice is
	// only valid until the following Next call. ok is false when the
	// trace is exhausted (the batch is empty then).
	Next() (batch []Access, ok bool)
	// Close releases any resources (e.g. a producer goroutine). The
	// workload must not be used afterwards. Close is idempotent.
	Close()
}

// BatchSize is the number of accesses per batch produced by the helpers
// in this package.
const BatchSize = 16384

// ---- producer-goroutine adapter ----------------------------------------

// abortTrace is the sentinel panic used to unwind a producer's run
// function when the consumer closes the workload early.
type abortTrace struct{}

// traceWorkload adapts a run-to-completion function that emits touches
// (the graph/kvstore/btreeidx substrates) into an incrementally consumed
// Workload, using a producer goroutine and a two-buffer exchange.
type traceWorkload struct {
	name      string
	footprint int64
	batches   chan []Access
	free      chan []Access
	stop      chan struct{}
	prev      []Access // batch handed out by the last Next, to recycle
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewTrace returns a Workload whose accesses are produced by run, which
// must call emit for every access and return when the trace is complete.
// run executes on its own goroutine; if the workload is closed early,
// run is unwound at its next emit call.
func NewTrace(name string, footprint int64, run func(emit func(addr uint64, write bool))) Workload {
	w := &traceWorkload{
		name:      name,
		footprint: footprint,
		batches:   make(chan []Access, 1),
		free:      make(chan []Access, 2),
		stop:      make(chan struct{}),
	}
	w.free <- make([]Access, 0, BatchSize)
	w.free <- make([]Access, 0, BatchSize)
	w.wg.Add(1)
	go w.produce(run)
	return w
}

func (w *traceWorkload) produce(run func(emit func(addr uint64, write bool))) {
	defer w.wg.Done()
	defer close(w.batches)
	defer func() {
		// Swallow only our own abort sentinel; real panics propagate.
		if r := recover(); r != nil {
			if _, ok := r.(abortTrace); !ok {
				panic(r)
			}
		}
	}()
	var buf []Access
	select {
	case buf = <-w.free:
	case <-w.stop:
		return
	}
	buf = buf[:0]
	emit := func(addr uint64, write bool) {
		buf = append(buf, Access{Addr: addr, Write: write})
		if len(buf) == cap(buf) {
			select {
			case w.batches <- buf:
			case <-w.stop:
				panic(abortTrace{})
			}
			select {
			case buf = <-w.free:
				buf = buf[:0]
			case <-w.stop:
				panic(abortTrace{})
			}
		}
	}
	run(emit)
	if len(buf) > 0 {
		select {
		case w.batches <- buf:
		case <-w.stop:
		}
	}
}

func (w *traceWorkload) Name() string          { return w.name }
func (w *traceWorkload) FootprintBytes() int64 { return w.footprint }

func (w *traceWorkload) Next() ([]Access, bool) {
	if w.prev != nil {
		// Recycle the previously handed-out buffer.
		select {
		case w.free <- w.prev[:0:cap(w.prev)]:
		default:
		}
		w.prev = nil
	}
	b, ok := <-w.batches
	if !ok {
		return nil, false
	}
	w.prev = b
	return b, true
}

func (w *traceWorkload) Close() {
	w.closeOnce.Do(func() {
		close(w.stop)
		// Drain so the producer is never blocked on the batches channel.
		for range w.batches {
		}
		w.wg.Wait()
	})
}

// ---- generator adapter ---------------------------------------------------

// genWorkload adapts a pull-style generator function (fill one access,
// report done) into a Workload without goroutines. Used by the pure
// synthetic generators.
type genWorkload struct {
	name      string
	footprint int64
	buf       []Access
	gen       func() (Access, bool)
	done      bool
}

// NewGenerator returns a Workload producing accesses by repeatedly
// calling gen until it reports done.
func NewGenerator(name string, footprint int64, gen func() (Access, bool)) Workload {
	return &genWorkload{
		name:      name,
		footprint: footprint,
		buf:       make([]Access, 0, BatchSize),
		gen:       gen,
	}
}

func (g *genWorkload) Name() string          { return g.name }
func (g *genWorkload) FootprintBytes() int64 { return g.footprint }
func (g *genWorkload) Close()                { g.done = true }

func (g *genWorkload) Next() ([]Access, bool) {
	if g.done {
		return nil, false
	}
	g.buf = g.buf[:0]
	for len(g.buf) < cap(g.buf) {
		a, ok := g.gen()
		if !ok {
			g.done = true
			break
		}
		g.buf = append(g.buf, a)
	}
	if len(g.buf) == 0 {
		return nil, false
	}
	return g.buf, true
}

// ---- wrappers -------------------------------------------------------------

// Limit caps a workload at most max accesses. A non-positive max leaves
// the workload unlimited.
func Limit(w Workload, max int64) Workload {
	if max <= 0 {
		return w
	}
	return &limitWorkload{Workload: w, remaining: max}
}

type limitWorkload struct {
	Workload
	remaining int64
}

func (l *limitWorkload) Next() ([]Access, bool) {
	if l.remaining <= 0 {
		return nil, false
	}
	b, ok := l.Workload.Next()
	if !ok {
		return nil, false
	}
	if int64(len(b)) > l.remaining {
		b = b[:l.remaining]
	}
	l.remaining -= int64(len(b))
	return b, true
}

// Mixed interleaves several workloads in fixed-size slices, modelling
// concurrent execution (§6.3.10: "We simulate a scenario with dynamic
// and complex access patterns by running multiple workloads
// concurrently"). Each child is placed in its own region of the combined
// address space. The mix ends when every child has finished.
func Mixed(name string, children ...Workload) Workload {
	m := &mixedWorkload{name: name, children: children}
	var off uint64
	for _, c := range children {
		m.offsets = append(m.offsets, off)
		off += uint64(c.FootprintBytes())
	}
	m.footprint = int64(off)
	m.live = len(children)
	m.done = make([]bool, len(children))
	return m
}

type mixedWorkload struct {
	name      string
	children  []Workload
	offsets   []uint64
	footprint int64
	turn      int
	live      int
	done      []bool
}

func (m *mixedWorkload) Name() string          { return m.name }
func (m *mixedWorkload) FootprintBytes() int64 { return m.footprint }

func (m *mixedWorkload) Next() ([]Access, bool) {
	for m.live > 0 {
		i := m.turn
		m.turn = (m.turn + 1) % len(m.children)
		if m.done[i] {
			continue
		}
		b, ok := m.children[i].Next()
		if !ok {
			m.done[i] = true
			m.live--
			continue
		}
		off := m.offsets[i]
		if off != 0 {
			for j := range b {
				b[j].Addr += off
			}
		}
		return b, true
	}
	return nil, false
}

func (m *mixedWorkload) Close() {
	for _, c := range m.children {
		c.Close()
	}
}

// WithInitSweep prefixes a workload with one sequential write sweep over
// its whole footprint at the given stride (0 uses 4096). Real programs
// allocate memory by initializing it — reading input files into arrays,
// zeroing buffers — so first-touch placement follows *address* order, not
// the later access pattern's popularity order. Without this phase, the
// simulator's first-touch allocator would hand the fast tier exactly the
// hot pages and leave nothing for tiering policies to do.
func WithInitSweep(w Workload, stride int64) Workload {
	if stride <= 0 {
		stride = 4096
	}
	return &sweepWorkload{Workload: w, stride: stride}
}

type sweepWorkload struct {
	Workload
	stride int64
	pos    int64
	buf    []Access
}

func (s *sweepWorkload) Next() ([]Access, bool) {
	if s.pos < s.Workload.FootprintBytes() {
		if s.buf == nil {
			s.buf = make([]Access, 0, BatchSize)
		}
		s.buf = s.buf[:0]
		for len(s.buf) < cap(s.buf) && s.pos < s.Workload.FootprintBytes() {
			s.buf = append(s.buf, Access{Addr: uint64(s.pos), Write: true})
			s.pos += s.stride
		}
		return s.buf, true
	}
	return s.Workload.Next()
}

// Drain consumes and discards the whole workload, returning the number
// of accesses. Useful in tests and for sizing traces.
func Drain(w Workload) int64 {
	var n int64
	for {
		b, ok := w.Next()
		if !ok {
			return n
		}
		n += int64(len(b))
	}
}
