package workloads

import (
	"artmem/internal/dist"
	"artmem/internal/kvstore"
)

// YCSB drives the kvstore substrate with the Yahoo! Cloud Serving
// Benchmark core workloads, reproducing the paper's in-memory-database
// evaluation (§6.2): "We ran YCSB workloads A, B, C, D, and F in
// Memcached, executing them sequentially in the order of A B C F D."
//
// Request popularity uses YCSB's scrambled-Zipfian distribution
// (theta = 0.99) for A/B/C/F and the latest-distribution for D (reads
// concentrate on recently inserted records).

const paperYCSBGB = 32.0

// ycsbOp describes one workload letter's operation mix.
type ycsbOp struct {
	name       string
	readFrac   float64 // plain reads
	updateFrac float64 // overwrites of existing keys
	rmwFrac    float64 // read-modify-write (workload F)
	insertFrac float64 // new keys (workload D)
	latest     bool    // use the latest distribution instead of zipfian
}

// The YCSB core mixes, in the paper's execution order.
var ycsbMixes = []ycsbOp{
	{name: "A", readFrac: 0.5, updateFrac: 0.5},
	{name: "B", readFrac: 0.95, updateFrac: 0.05},
	{name: "C", readFrac: 1.0},
	{name: "F", readFrac: 0.5, rmwFrac: 0.5},
	{name: "D", readFrac: 0.95, insertFrac: 0.05, latest: true},
}

// NewYCSB builds the YCSB workload at the profile's scale.
func NewYCSB(p Profile) Workload {
	foot := p.Bytes(paperYCSBGB)
	// One item ≈ 1KB value + a 64B index bucket.
	numItems := int(foot / (1024 + 64))
	cfg := kvstore.Config{
		Base:        0,
		NumBuckets:  numItems,
		BucketBytes: 64,
		ValueBytes:  1024,
	}
	store := kvstore.New(cfg)
	opsPerPhase := p.AppAccesses / 10 / int64(len(ycsbMixes)) // ~10 touches per op
	if opsPerPhase < 1 {
		opsPerPhase = 1
	}
	run := func(emit func(addr uint64, write bool)) {
		rng := dist.NewRNG(p.Seed ^ 0x79635362) // "ycsb"
		// Load phase: populate every record sequentially.
		for k := 0; k < numItems; k++ {
			store.Put(uint64(k), emit)
		}
		nextKey := uint64(numItems)
		zip := dist.NewScrambledZipf(rng.Split(), uint64(numItems), 0.99)
		latest := dist.NewZipf(rng.Split(), uint64(numItems), 0.99)
		for _, mix := range ycsbMixes {
			for op := int64(0); op < opsPerPhase; op++ {
				var key uint64
				if mix.latest {
					// Latest distribution: offsets back from the newest key.
					off := latest.Next()
					key = nextKey - 1 - off%nextKey
				} else {
					key = zip.Next()
				}
				u := rng.Float64()
				switch {
				case u < mix.readFrac:
					store.Get(key, emit)
				case u < mix.readFrac+mix.updateFrac:
					store.Put(key, emit)
				case u < mix.readFrac+mix.updateFrac+mix.rmwFrac:
					store.ReadModifyWrite(key, emit)
				default:
					store.Put(nextKey, emit)
					nextKey++
				}
			}
		}
	}
	// Inserts in workload D grow the footprint slightly past the load
	// size; reserve 6% headroom (5% inserts of one phase).
	headroom := cfg.FootprintFor(numItems + int(opsPerPhase/10) + 1)
	return Limit(NewTrace("YCSB", headroom, run), p.AppAccesses)
}
