package workloads

// Profile scales the paper's experiments down to laptop size. The paper
// runs tens-of-GB footprints on real hardware for minutes; the simulator
// divides every footprint by Div and shrinks the migration page size by
// the same factor, so page counts — and therefore the behaviour of
// page-granularity policies — match the paper's setup (see DESIGN.md §4).
type Profile struct {
	// Div divides the paper's footprints (and the 2MB page size).
	Div int64
	// PatternAccesses is the trace length for the synthetic patterns.
	PatternAccesses int64
	// AppAccesses caps each application workload's trace.
	AppAccesses int64
	// Seed is the base RNG seed for workload construction.
	Seed uint64
}

// DefaultProfile is the standard experiment scale: 1/64 of the paper.
func DefaultProfile() Profile {
	return Profile{
		Div:             64,
		PatternAccesses: 16_000_000,
		AppAccesses:     8_000_000,
		Seed:            1,
	}
}

// QuickProfile is a miniature scale for unit tests and smoke runs.
func QuickProfile() Profile {
	return Profile{
		Div:             512,
		PatternAccesses: 800_000,
		AppAccesses:     400_000,
		Seed:            1,
	}
}

// Bytes converts a size in paper-GB to scaled bytes, rounded up to 4KB.
func (p Profile) Bytes(paperGB float64) int64 {
	b := int64(paperGB * (1 << 30) / float64(p.Div))
	if b < 4096 {
		b = 4096
	}
	return (b + 4095) &^ 4095
}

// PageSize returns the scaled migration page size: the paper's 2MB huge
// page divided by Div, floored at 4KB.
func (p Profile) PageSize() int64 {
	ps := (2 << 20) / p.Div
	if ps < 4096 {
		ps = 4096
	}
	return ps
}

// ScaleCount scales an item count (keys, vertices) by the footprint
// divisor, with a floor of 1.
func (p Profile) ScaleCount(paperCount int64) int {
	c := paperCount / p.Div
	if c < 1 {
		c = 1
	}
	return int(c)
}
