package workloads

import (
	"testing"
)

func TestNewGeneratorBatches(t *testing.T) {
	n := 0
	w := NewGenerator("g", 100, func() (Access, bool) {
		if n >= 100 {
			return Access{}, false
		}
		a := Access{Addr: uint64(n)}
		n++
		return a, true
	})
	defer w.Close()
	if w.Name() != "g" || w.FootprintBytes() != 100 {
		t.Errorf("metadata wrong: %s/%d", w.Name(), w.FootprintBytes())
	}
	total := int64(0)
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for i, a := range b {
			if a.Addr != uint64(total)+uint64(i) {
				t.Fatalf("access %d addr %d", total+int64(i), a.Addr)
			}
		}
		total += int64(len(b))
	}
	if total != 100 {
		t.Errorf("drained %d accesses, want 100", total)
	}
	// Exhausted workloads stay exhausted.
	if _, ok := w.Next(); ok {
		t.Error("Next returned ok after exhaustion")
	}
}

func TestNewTraceProducesAll(t *testing.T) {
	const n = 3*BatchSize + 17
	w := NewTrace("t", 1<<20, func(emit func(uint64, bool)) {
		for i := 0; i < n; i++ {
			emit(uint64(i), i%2 == 0)
		}
	})
	defer w.Close()
	var total int64
	var last Access
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		total += int64(len(b))
		last = b[len(b)-1]
	}
	if total != n {
		t.Errorf("drained %d, want %d", total, n)
	}
	if last.Addr != n-1 {
		t.Errorf("last addr %d, want %d", last.Addr, n-1)
	}
}

func TestNewTraceEarlyCloseUnblocksProducer(t *testing.T) {
	done := make(chan struct{})
	w := NewTrace("t", 1<<20, func(emit func(uint64, bool)) {
		defer close(done)
		for i := uint64(0); ; i++ { // infinite producer
			emit(i, false)
		}
	})
	if _, ok := w.Next(); !ok {
		t.Fatal("no first batch")
	}
	w.Close()
	select {
	case <-done:
	default:
		t.Error("producer goroutine still running after Close")
	}
	// Close is idempotent.
	w.Close()
}

func TestNewTraceCloseBeforeNext(t *testing.T) {
	w := NewTrace("t", 1, func(emit func(uint64, bool)) {
		for i := uint64(0); i < 1_000_000; i++ {
			emit(i, false)
		}
	})
	w.Close() // must not deadlock or leak
}

func TestLimit(t *testing.T) {
	mk := func() Workload {
		n := 0
		return NewGenerator("g", 1, func() (Access, bool) {
			n++
			return Access{Addr: uint64(n)}, true // infinite
		})
	}
	w := Limit(mk(), 100)
	defer w.Close()
	if got := Drain(w); got != 100 {
		t.Errorf("limited drain = %d, want 100", got)
	}
	// Limit spanning multiple batches.
	w2 := Limit(mk(), BatchSize+5)
	defer w2.Close()
	if got := Drain(w2); got != BatchSize+5 {
		t.Errorf("limited drain = %d, want %d", got, BatchSize+5)
	}
	// Non-positive limit: unlimited (same workload back).
	inner := mk()
	if Limit(inner, 0) != inner {
		t.Error("Limit(0) wrapped the workload")
	}
	inner.Close()
}

func TestMixedInterleavesAndOffsets(t *testing.T) {
	mk := func(name string, count int, foot int64) Workload {
		n := 0
		return NewGenerator(name, foot, func() (Access, bool) {
			if n >= count {
				return Access{}, false
			}
			n++
			return Access{Addr: 0}, true
		})
	}
	a := mk("a", BatchSize*2, 1000)
	b := mk("b", BatchSize, 2000)
	m := Mixed("a+b", a, b)
	defer m.Close()
	if m.FootprintBytes() != 3000 {
		t.Errorf("mixed footprint = %d, want 3000", m.FootprintBytes())
	}
	// Drain, tracking which child each batch came from via its address
	// offset (child a at 0, child b at 1000).
	var fromA, fromB int64
	order := []int{}
	for {
		batch, ok := m.Next()
		if !ok {
			break
		}
		if batch[0].Addr == 0 {
			fromA += int64(len(batch))
			order = append(order, 0)
		} else if batch[0].Addr == 1000 {
			fromB += int64(len(batch))
			order = append(order, 1)
		} else {
			t.Fatalf("unexpected offset %d", batch[0].Addr)
		}
	}
	if fromA != BatchSize*2 || fromB != BatchSize {
		t.Errorf("drained %d/%d, want %d/%d", fromA, fromB, BatchSize*2, BatchSize)
	}
	// Batches must alternate while both children are live.
	if len(order) < 3 || order[0] == order[1] {
		t.Errorf("no interleaving: %v", order)
	}
}

func TestMixedFinishesWhenAllChildrenDo(t *testing.T) {
	empty := NewGenerator("e", 1, func() (Access, bool) { return Access{}, false })
	m := Mixed("solo", empty)
	defer m.Close()
	if got := Drain(m); got != 0 {
		t.Errorf("empty mix drained %d", got)
	}
}

func TestDrain(t *testing.T) {
	n := 0
	w := NewGenerator("g", 1, func() (Access, bool) {
		if n >= 37 {
			return Access{}, false
		}
		n++
		return Access{}, true
	})
	defer w.Close()
	if got := Drain(w); got != 37 {
		t.Errorf("Drain = %d", got)
	}
}
