package workloads

import (
	"fmt"

	"artmem/internal/dist"
)

// Churn-experiment workloads: many short-lived clients arriving and
// departing against one long-running antagonist. Both are deliberately
// tiny per instance — the churn experiment runs hundreds to a thousand
// of them through a handful of tenant slots, so the interesting scale
// is the client count, not any one footprint.

// NewChurnClient models one short-lived service instance: a sharply
// skewed working set where 99.5% of accesses hit a hot 10% of the
// footprint (hot-region position seeded per client, so co-resident
// clients do not share hot offsets), prefixed by the usual init sweep
// so first-touch placement follows address order. The skew is above the
// 99th percentile on purpose: a client whose hot set gets promoted sees
// a fast-tier p99, one stuck in the slow tier a slow-tier p99, which is
// what makes per-client p99 a discriminative churn metric. The trace is
// `accesses` long plus the sweep.
func NewChurnClient(name string, footprint, accesses int64, seed uint64) Workload {
	rng := dist.NewRNG(seed ^ 0xc1137) // "cli"
	hotBytes := footprint / 10
	if hotBytes < 64 {
		hotBytes = 64
	}
	hotBase := uint64(rng.Uint64n(uint64(footprint-hotBytes)) &^ 63)
	remaining := accesses
	gen := func() (Access, bool) {
		if remaining <= 0 {
			return Access{}, false
		}
		remaining--
		var addr uint64
		if rng.Uint64n(200) != 0 {
			addr = hotBase + rng.Uint64n(uint64(hotBytes))
		} else {
			addr = rng.Uint64n(uint64(footprint))
		}
		return Access{Addr: addr, Write: rng.Uint64n(4) == 0}, true
	}
	return WithInitSweep(NewGenerator(name, footprint, gen), 4096)
}

// NewChurnAntagonist models the long-running noisy neighbour: a hot
// region of a quarter of the footprint that jumps to a new position
// every epoch, so its policy promotes forever and keeps steady pressure
// on the shared migration bandwidth (the same role S2 plays in the
// fairness study, sized for the churn grid).
func NewChurnAntagonist(footprint, accesses int64, seed uint64) Workload {
	rng := dist.NewRNG(seed ^ 0xa27a6) // "ant"
	hotBytes := footprint / 4
	if hotBytes < 64 {
		hotBytes = 64
	}
	epoch := accesses / 16
	if epoch < 1 {
		epoch = 1
	}
	hotBase := uint64(0)
	remaining := accesses
	gen := func() (Access, bool) {
		if remaining <= 0 {
			return Access{}, false
		}
		if remaining%epoch == 0 {
			hotBase = rng.Uint64n(uint64(footprint-hotBytes)) &^ 63
		}
		remaining--
		var addr uint64
		if rng.Uint64n(5) != 0 {
			addr = hotBase + rng.Uint64n(uint64(hotBytes))
		} else {
			addr = rng.Uint64n(uint64(footprint))
		}
		return Access{Addr: addr, Write: rng.Uint64n(8) == 0}, true
	}
	return WithInitSweep(NewGenerator(fmt.Sprintf("churn-antagonist/%d", seed), footprint, gen), 4096)
}
