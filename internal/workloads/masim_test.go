package workloads

import (
	"testing"
)

func quickProf() Profile { return QuickProfile() }

func TestPatternValidate(t *testing.T) {
	good := &Pattern{
		Name:      "ok",
		Footprint: 1000,
		Phases: []Phase{{
			Name: "p", Accesses: 10,
			Regions: []Region{{Start: 0, Size: 1000, Weight: 1}},
		}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid pattern rejected: %v", err)
	}
	bads := []*Pattern{
		{Name: "nofoot", Footprint: 0, Phases: good.Phases},
		{Name: "nophases", Footprint: 10},
		{Name: "noacc", Footprint: 10, Phases: []Phase{{Regions: good.Phases[0].Regions}}},
		{Name: "noregions", Footprint: 10, Phases: []Phase{{Accesses: 1}}},
		{Name: "oob", Footprint: 10, Phases: []Phase{{Accesses: 1,
			Regions: []Region{{Start: 5, Size: 10, Weight: 1}}}}},
		{Name: "negweight", Footprint: 100, Phases: []Phase{{Accesses: 1,
			Regions: []Region{{Start: 0, Size: 10, Weight: -1}}}}},
		{Name: "zeroweight", Footprint: 100, Phases: []Phase{{Accesses: 1,
			Regions: []Region{{Start: 0, Size: 10, Weight: 0}}}}},
	}
	for _, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("pattern %q accepted, want error", b.Name)
		}
	}
}

func TestPatternHotRegionShare(t *testing.T) {
	foot := int64(1 << 20)
	pat := &Pattern{
		Name:      "hot",
		Footprint: foot,
		Phases: []Phase{{
			Name: "p", Accesses: 50000, WriteFrac: 0.5,
			Regions: []Region{
				{Start: 0, Size: foot / 16, Weight: 0.9},
				{Start: 0, Size: foot, Weight: 0.1},
			},
		}},
	}
	w := pat.NewWorkload(1)
	defer w.Close()
	inHot, writes, total := 0, 0, 0
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			if a.Addr >= uint64(foot) {
				t.Fatalf("address %d outside footprint", a.Addr)
			}
			if a.Addr < uint64(foot/16) {
				inHot++
			}
			if a.Write {
				writes++
			}
			total++
		}
	}
	if total != 50000 {
		t.Fatalf("total = %d", total)
	}
	// Hot region share: 0.9 + 0.1/16 ≈ 0.906.
	if f := float64(inHot) / float64(total); f < 0.85 || f > 0.95 {
		t.Errorf("hot share = %g, want ≈ 0.906", f)
	}
	if f := float64(writes) / float64(total); f < 0.45 || f > 0.55 {
		t.Errorf("write fraction = %g, want ≈ 0.5", f)
	}
}

func TestPatternPhaseTransitions(t *testing.T) {
	foot := int64(1 << 16)
	pat := &Pattern{
		Name:      "phased",
		Footprint: foot,
		Phases: []Phase{
			{Name: "a", Accesses: 100,
				Regions: []Region{{Start: 0, Size: 100, Weight: 1}}},
			{Name: "b", Accesses: 100,
				Regions: []Region{{Start: 1000, Size: 100, Weight: 1}}},
		},
	}
	if pat.TotalAccesses() != 200 {
		t.Errorf("TotalAccesses = %d", pat.TotalAccesses())
	}
	w := pat.NewWorkload(2)
	defer w.Close()
	var addrs []uint64
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			addrs = append(addrs, a.Addr)
		}
	}
	if len(addrs) != 200 {
		t.Fatalf("got %d accesses", len(addrs))
	}
	for i, a := range addrs[:100] {
		if a >= 100 {
			t.Fatalf("access %d (addr %d) outside phase-a region", i, a)
		}
	}
	for i, a := range addrs[100:] {
		if a < 1000 || a >= 1100 {
			t.Fatalf("access %d (addr %d) outside phase-b region", i+100, a)
		}
	}
}

func TestPatternS1Shape(t *testing.T) {
	p := quickProf()
	pat := PatternS1(p)
	if err := pat.Validate(); err != nil {
		t.Fatal(err)
	}
	w := pat.NewWorkload(1)
	defer w.Close()
	foot := pat.Footprint
	hotSize := p.Bytes(500.0 / 1024)
	h1lo, h1hi := uint64(foot/8), uint64(foot/8+hotSize)
	h2lo, h2hi := uint64(foot*5/8), uint64(foot*5/8+hotSize)
	inHot, total := 0, 0
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			if (a.Addr >= h1lo && a.Addr < h1hi) || (a.Addr >= h2lo && a.Addr < h2hi) {
				inHot++
			}
			total++
		}
	}
	if f := float64(inHot) / float64(total); f < 0.88 {
		t.Errorf("S1 hot-region share = %g, want > 0.9 per the paper", f)
	}
}

func TestPatternS2HotRegionMoves(t *testing.T) {
	p := quickProf()
	pat := PatternS2(p)
	w := pat.NewWorkload(1)
	defer w.Close()
	quarter := pat.TotalAccesses() / 4
	var firstQuarter, lastQuarter []uint64
	i := int64(0)
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			if i < quarter {
				firstQuarter = append(firstQuarter, a.Addr)
			} else if i >= 3*quarter {
				lastQuarter = append(lastQuarter, a.Addr)
			}
			i++
		}
	}
	mean := func(xs []uint64) float64 {
		s := 0.0
		for _, x := range xs {
			s += float64(x)
		}
		return s / float64(len(xs))
	}
	// The hot region shifts from the start toward the end of the space.
	if mean(lastQuarter) < mean(firstQuarter)*1.5 {
		t.Errorf("S2 hot region did not move: first mean %g, last mean %g",
			mean(firstQuarter), mean(lastQuarter))
	}
}

func TestPatternsAllValidAndScaled(t *testing.T) {
	for _, prof := range []Profile{QuickProfile(), DefaultProfile()} {
		for _, pat := range Patterns(prof) {
			if err := pat.Validate(); err != nil {
				t.Errorf("div %d: %v", prof.Div, err)
			}
			if pat.Footprint != prof.Bytes(32) {
				t.Errorf("%s footprint = %d, want %d", pat.Name, pat.Footprint,
					prof.Bytes(32))
			}
		}
	}
}

func TestProfileScaling(t *testing.T) {
	p := DefaultProfile()
	if got := p.Bytes(64); got != 1<<30 {
		t.Errorf("Bytes(64GB)/64 = %d, want 1GB", got)
	}
	if got := p.PageSize(); got != 32*1024 {
		t.Errorf("PageSize = %d, want 32KB", got)
	}
	if got := p.ScaleCount(6400); got != 100 {
		t.Errorf("ScaleCount = %d", got)
	}
	// Floors.
	tiny := Profile{Div: 1 << 30}
	if tiny.Bytes(0.001) != 4096 {
		t.Errorf("Bytes floor = %d", tiny.Bytes(0.001))
	}
	if tiny.PageSize() != 4096 {
		t.Errorf("PageSize floor = %d", tiny.PageSize())
	}
	if tiny.ScaleCount(5) != 1 {
		t.Errorf("ScaleCount floor = %d", tiny.ScaleCount(5))
	}
	// 4KB alignment.
	odd := Profile{Div: 3}
	if b := odd.Bytes(0.01); b%4096 != 0 {
		t.Errorf("Bytes not 4KB-aligned: %d", b)
	}
}

func TestPatternS3SingleWideHotRegion(t *testing.T) {
	p := quickProf()
	pat := PatternS3(p)
	w := pat.NewWorkload(1)
	defer w.Close()
	lo := uint64(pat.Footprint / 4)
	hi := lo + uint64(p.Bytes(12))
	inHot, total := 0, 0
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			if a.Addr >= lo && a.Addr < hi {
				inHot++
			}
			total++
		}
	}
	// 0.92 weight + the background share that falls inside the region.
	if f := float64(inHot) / float64(total); f < 0.9 {
		t.Errorf("S3 hot share = %g, want ≥ 0.9", f)
	}
}

func TestPatternS4HalfTheHeatOfS3(t *testing.T) {
	p := quickProf()
	heat := func(pat *Pattern, start, size int64) float64 {
		w := pat.NewWorkload(1)
		defer w.Close()
		lo, hi := uint64(start), uint64(start+size)
		in, total := 0, 0
		for {
			b, ok := w.Next()
			if !ok {
				break
			}
			for _, a := range b {
				if a.Addr >= lo && a.Addr < hi {
					in++
				}
				total++
			}
		}
		// Per-byte heat: share of accesses divided by region size.
		return float64(in) / float64(total) / float64(size)
	}
	s3 := PatternS3(p)
	s4 := PatternS4(p)
	h3 := heat(s3, s3.Footprint/4, p.Bytes(12))
	h4 := heat(s4, s4.Footprint/8, p.Bytes(20))
	// The paper: S4's region has "half the heat" of S3's per byte.
	ratio := h4 / h3
	if ratio < 0.4 || ratio > 0.65 {
		t.Errorf("S4/S3 per-byte heat ratio = %g, want ≈ 0.5", ratio)
	}
}
