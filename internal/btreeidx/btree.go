// Package btreeidx implements an in-memory B-tree index over a virtual
// address space — the substrate behind the paper's Btree workload
// (Table 3: "In-Memory Index Lookup", the mitosis-project BTree benchmark:
// populate with keys, then hammer it with random lookups).
//
// The tree is a real B-tree: inserts split nodes, lookups descend with
// binary search. Every node has a virtual address, and traversals report
// the key slots they probe through a touch callback, producing the
// pointer-chasing, top-heavy access pattern of index lookups: root and
// upper levels are extremely hot, leaves are cold and uniformly touched.
package btreeidx

import "fmt"

// Touch reports one logical memory access at a virtual address.
type Touch func(addr uint64, write bool)

// Config sizes a Tree.
type Config struct {
	// Base is the first virtual address used for nodes.
	Base uint64
	// Order is the maximum number of keys per node (≥ 3).
	Order int
	// NodeBytes is the virtual size of one node; nodes are laid out
	// consecutively from Base in allocation order. 0 derives it from the
	// order (16 bytes per key slot, covering key + child pointer).
	NodeBytes uint64
}

// Tree is the B-tree. It is not safe for concurrent use.
type Tree struct {
	cfg  Config
	root *node
	next uint64 // next node address
	n    int    // number of keys stored
}

type node struct {
	addr     uint64
	keys     []uint64
	children []*node // nil for leaves
}

func (n *node) leaf() bool { return n.children == nil }

// New returns an empty tree. It panics if the order is below 3.
func New(cfg Config) *Tree {
	if cfg.Order < 3 {
		panic(fmt.Sprintf("btreeidx: order %d below 3", cfg.Order))
	}
	if cfg.NodeBytes == 0 {
		cfg.NodeBytes = uint64(cfg.Order) * 16
	}
	t := &Tree{cfg: cfg, next: cfg.Base}
	t.root = t.newNode(true)
	return t
}

func (t *Tree) newNode(leaf bool) *node {
	n := &node{addr: t.next}
	t.next += t.cfg.NodeBytes
	if !leaf {
		n.children = make([]*node, 0, t.cfg.Order+1)
	}
	return n
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.n }

// Footprint returns the virtual bytes spanned by allocated nodes.
func (t *Tree) Footprint() int64 { return int64(t.next - t.cfg.Base) }

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		h++
	}
	return h
}

// keyAddr returns the virtual address of key slot i in node n.
func (t *Tree) keyAddr(n *node, i int) uint64 {
	return n.addr + uint64(i)*8
}

// search binary-searches key within n's keys, reporting the probed
// slots, and returns (index, found): index is the child to descend into
// (or insertion point).
func (t *Tree) search(n *node, key uint64, touch Touch) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if touch != nil {
			touch(t.keyAddr(n, mid), false)
		}
		switch {
		case n.keys[mid] == key:
			return mid, true
		case n.keys[mid] < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// Lookup probes for key, reporting touches, and returns whether it is
// present.
func (t *Tree) Lookup(key uint64, touch Touch) bool {
	n := t.root
	for {
		i, found := t.search(n, key, touch)
		if found {
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
}

// Insert adds key (duplicates are ignored), reporting the accesses of
// the descent and any splits. It returns true if the key was new.
func (t *Tree) Insert(key uint64, touch Touch) bool {
	if len(t.root.keys) == t.cfg.Order {
		// Preemptive root split keeps the insert path single-pass.
		old := t.root
		t.root = t.newNode(false)
		t.root.children = append(t.root.children, old)
		t.splitChild(t.root, 0, touch)
	}
	return t.insertNonFull(t.root, key, touch)
}

func (t *Tree) insertNonFull(n *node, key uint64, touch Touch) bool {
	for {
		i, found := t.search(n, key, touch)
		if found {
			return false
		}
		if n.leaf() {
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = key
			if touch != nil {
				touch(t.keyAddr(n, i), true)
			}
			t.n++
			return true
		}
		child := n.children[i]
		if len(child.keys) == t.cfg.Order {
			t.splitChild(n, i, touch)
			// The separator moved up; re-route around it.
			if key == n.keys[i] {
				return false
			}
			if key > n.keys[i] {
				i++
			}
			child = n.children[i]
		}
		n = child
	}
}

// splitChild splits parent.children[i] (which must be full) into two
// nodes, hoisting the median key into parent.
func (t *Tree) splitChild(parent *node, i int, touch Touch) {
	child := parent.children[i]
	mid := len(child.keys) / 2
	median := child.keys[mid]

	right := t.newNode(child.leaf())
	right.keys = append(right.keys, child.keys[mid+1:]...)
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.keys = child.keys[:mid]

	parent.keys = append(parent.keys, 0)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = median
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
	if touch != nil {
		// A split rewrites both halves and the parent slot.
		touch(t.keyAddr(parent, i), true)
		touch(child.addr, true)
		touch(right.addr, true)
	}
}

// check verifies B-tree invariants; used by tests.
func (t *Tree) check() error {
	var walk func(n *node, lo, hi uint64, depth int) (int, error)
	walk = func(n *node, lo, hi uint64, depth int) (int, error) {
		for i := 0; i < len(n.keys); i++ {
			k := n.keys[i]
			if k < lo || k > hi {
				return 0, fmt.Errorf("key %d outside [%d,%d]", k, lo, hi)
			}
			if i > 0 && n.keys[i-1] >= k {
				return 0, fmt.Errorf("unsorted keys at depth %d", depth)
			}
		}
		if len(n.keys) > t.cfg.Order {
			return 0, fmt.Errorf("node overfull: %d keys", len(n.keys))
		}
		if n.leaf() {
			return 1, nil
		}
		if len(n.children) != len(n.keys)+1 {
			return 0, fmt.Errorf("children %d != keys+1 %d",
				len(n.children), len(n.keys)+1)
		}
		want := -1
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1] + 1
			}
			if i < len(n.keys) {
				chi = n.keys[i] - 1
			}
			h, err := walk(c, clo, chi, depth+1)
			if err != nil {
				return 0, err
			}
			if want == -1 {
				want = h
			} else if h != want {
				return 0, fmt.Errorf("uneven leaf depth")
			}
		}
		return want + 1, nil
	}
	_, err := walk(t.root, 0, ^uint64(0), 0)
	return err
}
