package btreeidx

import (
	"testing"
	"testing/quick"

	"artmem/internal/dist"
)

func testTree(order int) *Tree {
	return New(Config{Base: 1 << 16, Order: order})
}

func TestNewPanicsOnSmallOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("order 2 accepted")
		}
	}()
	New(Config{Order: 2})
}

func TestInsertLookupSmall(t *testing.T) {
	tr := testTree(4)
	keys := []uint64{5, 3, 8, 1, 9, 7, 2, 6, 4, 0}
	for _, k := range keys {
		if !tr.Insert(k, nil) {
			t.Fatalf("Insert(%d) reported duplicate", k)
		}
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, k := range keys {
		if !tr.Lookup(k, nil) {
			t.Errorf("Lookup(%d) missed", k)
		}
	}
	if tr.Lookup(100, nil) {
		t.Error("Lookup(100) hit")
	}
	if err := tr.check(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestDuplicateInsertIgnored(t *testing.T) {
	tr := testTree(4)
	tr.Insert(1, nil)
	if tr.Insert(1, nil) {
		t.Error("duplicate insert returned true")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after duplicate", tr.Len())
	}
}

func TestSplitsGrowHeight(t *testing.T) {
	tr := testTree(3)
	for k := uint64(0); k < 100; k++ {
		tr.Insert(k, nil)
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d after 100 sequential inserts at order 3", tr.Height())
	}
	if err := tr.check(); err != nil {
		t.Errorf("invariants: %v", err)
	}
	for k := uint64(0); k < 100; k++ {
		if !tr.Lookup(k, nil) {
			t.Fatalf("Lookup(%d) missed after splits", k)
		}
	}
}

func TestFootprintGrowsWithNodes(t *testing.T) {
	tr := testTree(8)
	f0 := tr.Footprint()
	if f0 != int64(8*16) {
		t.Errorf("initial footprint = %d (one node)", f0)
	}
	for k := uint64(0); k < 1000; k++ {
		tr.Insert(k, nil)
	}
	if tr.Footprint() <= f0 {
		t.Error("footprint did not grow with splits")
	}
}

func TestLookupTouchesDescend(t *testing.T) {
	tr := testTree(4)
	rng := dist.NewRNG(1)
	for i := 0; i < 500; i++ {
		tr.Insert(rng.Uint64()%10000, nil)
	}
	var addrs []uint64
	tr.Lookup(4242, func(a uint64, w bool) {
		if w {
			t.Error("lookup produced a write")
		}
		addrs = append(addrs, a)
	})
	if len(addrs) == 0 {
		t.Fatal("lookup produced no touches")
	}
	// All touches stay within the allocated node region.
	lo, hi := uint64(1<<16), uint64(1<<16)+uint64(tr.Footprint())
	for _, a := range addrs {
		if a < lo || a >= hi {
			t.Errorf("touch %#x outside node region", a)
		}
	}
	// The first probes must hit the root node (lowest address region is
	// the first allocated node — the original leaf; root changes after
	// splits, but every touch sequence must begin at the current root).
	root := tr.root.addr
	if addrs[0] < root || addrs[0] >= root+tr.cfg.NodeBytes {
		t.Errorf("first touch %#x not in root node [%#x,%#x)", addrs[0], root,
			root+tr.cfg.NodeBytes)
	}
}

func TestInsertTouchesIncludeWrite(t *testing.T) {
	tr := testTree(4)
	sawWrite := false
	tr.Insert(7, func(_ uint64, w bool) {
		if w {
			sawWrite = true
		}
	})
	if !sawWrite {
		t.Error("insert produced no write touch")
	}
}

func TestNodeBytesDefault(t *testing.T) {
	tr := New(Config{Base: 0, Order: 16})
	if tr.cfg.NodeBytes != 16*16 {
		t.Errorf("NodeBytes = %d, want 256", tr.cfg.NodeBytes)
	}
	tr2 := New(Config{Base: 0, Order: 16, NodeBytes: 4096})
	if tr2.cfg.NodeBytes != 4096 {
		t.Errorf("explicit NodeBytes overridden: %d", tr2.cfg.NodeBytes)
	}
}

// Property: after inserting an arbitrary key set, every inserted key is
// found, absent keys are not, Len matches, and invariants hold.
func TestTreePropertyRandomKeys(t *testing.T) {
	f := func(keys []uint64, probes []uint64, orderRaw uint8) bool {
		order := int(orderRaw%14) + 3
		tr := New(Config{Base: 0, Order: order})
		set := map[uint64]bool{}
		for _, k := range keys {
			want := !set[k]
			if tr.Insert(k, nil) != want {
				return false
			}
			set[k] = true
		}
		if tr.Len() != len(set) {
			return false
		}
		if err := tr.check(); err != nil {
			return false
		}
		for _, k := range keys {
			if !tr.Lookup(k, nil) {
				return false
			}
		}
		for _, p := range probes {
			if tr.Lookup(p, nil) != set[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestLargeSequentialAndRandom(t *testing.T) {
	tr := testTree(64)
	rng := dist.NewRNG(99)
	for i := 0; i < 20000; i++ {
		tr.Insert(rng.Uint64()%1000000, nil)
	}
	if err := tr.check(); err != nil {
		t.Fatalf("invariants after 20k inserts: %v", err)
	}
	h := tr.Height()
	if h < 2 || h > 6 {
		t.Errorf("height = %d, implausible for 20k keys at order 64", h)
	}
}

func BenchmarkLookup(b *testing.B) {
	tr := New(Config{Base: 0, Order: 64})
	rng := dist.NewRNG(1)
	for i := 0; i < 1<<18; i++ {
		tr.Insert(rng.Uint64(), nil)
	}
	nop := func(uint64, bool) {}
	probe := dist.NewRNG(2)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Lookup(probe.Uint64(), nop)
	}
}
