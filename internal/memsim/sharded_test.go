package memsim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// testShardCfg builds a small machine config: 256 pages, half of them
// fast-tier, a small cache so the cache model participates.
func testShardCfg() Config {
	cfg := DefaultConfig(1<<20, 1<<19, 4096)
	cfg.CacheLines = 1024
	return cfg
}

// lcg is the deterministic address stream all sharding tests replay.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// stream generates n (addr, write) pairs over a footprint with a
// skewed hot set: half the stream hits the low quarter of the space.
func stream(seed uint64, n int, footprint uint64) ([]uint64, []bool) {
	r := lcg(seed)
	addrs := make([]uint64, n)
	writes := make([]bool, n)
	for i := range addrs {
		v := r.next()
		if v&1 == 0 {
			addrs[i] = (v >> 1) % (footprint / 4)
		} else {
			addrs[i] = (v >> 1) % footprint
		}
		writes[i] = v&7 == 0
	}
	return addrs, writes
}

// TestShardedOneShardByteIdentical is the N=1 compatibility criterion:
// a one-shard machine replaying the same access and migration stream
// as a bare Machine must land on identical counters, clock, and
// background time — the guarantee that keeps every deterministic
// experiment and the benchdiff baseline stable with sharding off.
func TestShardedOneShardByteIdentical(t *testing.T) {
	cfg := testShardCfg()
	m := NewMachine(cfg)
	sm := NewShardedMachine(cfg, 1)

	addrs, writes := stream(1, 200_000, uint64(cfg.FootprintBytes))
	for i, a := range addrs {
		m.Access(a, writes[i])
	}
	sm.AccessBatch(addrs, writes)
	// A deterministic migration stream through the facade.
	for p := PageID(0); int(p) < m.NumPages(); p += 3 {
		em := m.MovePage(p, Slow)
		es := sm.MovePage(p, Slow)
		if (em == nil) != (es == nil) {
			t.Fatalf("page %d: MovePage divergence: %v vs %v", p, em, es)
		}
	}
	if m.Counters() != sm.Counters() {
		t.Errorf("counters diverge:\nmachine: %+v\nsharded: %+v", m.Counters(), sm.Counters())
	}
	if m.Now() != sm.Now() {
		t.Errorf("clock diverges: %d vs %d", m.Now(), sm.Now())
	}
	if m.BackgroundNs() != sm.BackgroundNs() {
		t.Errorf("background diverges: %g vs %g", m.BackgroundNs(), sm.BackgroundNs())
	}
	if err := sm.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestShardedAggregatesIndependentOfGoroutines pins the determinism
// law AccessBatchParallel rests on: whole-shard goroutine ownership
// keeps each shard's sub-stream in batch order, so the aggregate
// counters are identical for every goroutine count — and identical to
// the serial AccessBatch split.
func TestShardedAggregatesIndependentOfGoroutines(t *testing.T) {
	cfg := testShardCfg()
	addrs, writes := stream(7, 150_000, uint64(cfg.FootprintBytes))

	run := func(gs int) (Counters, int64) {
		sm := NewShardedMachine(cfg, 8)
		if gs == 0 {
			sm.AccessBatch(addrs, writes)
		} else {
			sm.AccessBatchParallel(addrs, writes, gs)
		}
		return sm.Counters(), sm.Now()
	}
	wantC, wantNow := run(0)
	for _, gs := range []int{1, 2, 3, 8, 16} {
		c, now := run(gs)
		if c != wantC {
			t.Errorf("gs=%d: counters diverge from serial:\nserial:   %+v\nparallel: %+v", gs, wantC, c)
		}
		if now != wantNow {
			t.Errorf("gs=%d: makespan clock %d != serial %d", gs, now, wantNow)
		}
	}
}

// TestShardedRouting covers the page-space bijection: every global
// page maps to exactly one (shard, local) pair and back, and per-page
// state set through the facade reads back through it.
func TestShardedRouting(t *testing.T) {
	cfg := testShardCfg()
	sm := NewShardedMachine(cfg, 4)
	seen := map[[2]int]bool{}
	for p := PageID(0); int(p) < sm.NumPages(); p++ {
		s, lp := sm.ShardOf(p), sm.LocalPage(p)
		if sm.GlobalPage(s, lp) != p {
			t.Fatalf("page %d: round trip via (%d,%d) failed", p, s, lp)
		}
		key := [2]int{s, int(lp)}
		if seen[key] {
			t.Fatalf("page %d: (shard,local) collision at %v", p, key)
		}
		seen[key] = true
		if int(lp) >= sm.Shard(s).NumPages() {
			t.Fatalf("page %d: local %d out of range for shard %d (%d pages)",
				p, lp, s, sm.Shard(s).NumPages())
		}
	}
	// Per-page bits route: poison + accessed bits set through the facade.
	sm.PoisonPage(5)
	sm.Access(5*uint64(cfg.PageSize), true)
	if sm.Counters().Faults != 1 {
		t.Errorf("poisoned page fault not routed: %+v", sm.Counters())
	}
	if !sm.Accessed(5) || !sm.Dirty(5) {
		t.Error("accessed/dirty bits not routed")
	}
	if !sm.TestAndClearAccessed(5) || sm.Accessed(5) {
		t.Error("TestAndClearAccessed not routed")
	}
}

// TestShardedCapacityTransfer exercises the epoch-based cross-shard
// protocol: a transfer conserves machine-wide capacity, bumps both
// epochs, spends the recipient's budget, refuses to strand resident
// pages, and refuses once the budget runs dry.
func TestShardedCapacityTransfer(t *testing.T) {
	cfg := testShardCfg()
	sm := NewShardedMachine(cfg, 4)
	totalFast := sm.CapacityPages(Fast)

	sm.BeginPeriod(3)
	if err := sm.TransferCapacity(1, 0, Fast, 2); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if got := sm.ShardEpoch(0); got != 1 {
		t.Errorf("shard 0 epoch = %d, want 1", got)
	}
	if got := sm.ShardEpoch(1); got != 1 {
		t.Errorf("shard 1 epoch = %d, want 1", got)
	}
	if sm.CapacityPages(Fast) != totalFast {
		t.Errorf("capacity not conserved: %d != %d", sm.CapacityPages(Fast), totalFast)
	}
	if err := sm.TransferCapacity(1, 0, Fast, 2); !errors.Is(err, ErrBorrowBudget) {
		t.Errorf("over-budget transfer: got %v, want ErrBorrowBudget", err)
	}
	if err := sm.CheckInvariants(); err != nil {
		t.Error(err)
	}

	// Fill shard 2's fast tier, then try to take its capacity away: the
	// shrink must refuse rather than strand resident pages.
	m2 := sm.Shard(2)
	for lp := PageID(0); int(lp) < m2.NumPages() && m2.FreePages(Fast) > 0; lp++ {
		m2.Access(uint64(lp)*uint64(cfg.PageSize), false)
	}
	sm.BeginPeriod(1000)
	if err := sm.TransferCapacity(2, 3, Fast, 1); !errors.Is(err, ErrTierFull) {
		t.Errorf("stranding transfer: got %v, want ErrTierFull", err)
	}
	if err := sm.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// failNext fails the next n MovePage attempts — the rollback trigger.
type failNext struct{ n int }

func (f *failNext) FailMigration(int64) bool {
	if f.n > 0 {
		f.n--
		return true
	}
	return false
}
func (f *failNext) BandwidthFactor(int64) float64 { return 1 }

// TestShardedBorrowMovePage covers the borrowed-migration transaction:
// commit moves the page and conserves capacity; a mid-transaction
// migration failure rolls the borrowed capacity back to the donor and
// spends no budget.
func TestShardedBorrowMovePage(t *testing.T) {
	cfg := testShardCfg()
	sm := NewShardedMachine(cfg, 4)
	// Touch every page: fast tiers fill, the rest overflows to slow.
	for p := 0; p < sm.NumPages(); p++ {
		sm.Access(uint64(p)*uint64(cfg.PageSize), false)
	}
	// Free one fast page on shard 3 only: every other shard's fast tier
	// stays full, so promoting a shard-0 page must borrow from shard 3.
	m3 := sm.Shard(3)
	var freed bool
	for lp := PageID(0); int(lp) < m3.NumPages(); lp++ {
		if m3.TierOf(lp) == Fast {
			if err := m3.FreePage(lp); err != nil {
				t.Fatal(err)
			}
			freed = true
			break
		}
	}
	if !freed {
		t.Fatal("no fast page on shard 3 to free")
	}

	// A slow page on shard 0.
	var victim PageID = NoPage
	for p := PageID(0); int(p) < sm.NumPages(); p++ {
		if sm.ShardOf(p) == 0 && sm.TierOf(p) == Slow {
			victim = p
			break
		}
	}
	if victim == NoPage {
		t.Fatal("no slow page on shard 0")
	}
	if err := sm.MovePage(victim, Fast); !errors.Is(err, ErrTierFull) {
		t.Fatalf("local promote should be tier-full, got %v", err)
	}

	sm.BeginPeriod(5)
	epochBefore := sm.ShardEpoch(0)

	// Rollback path first: the injector fails the move after capacity
	// transferred; the transaction must restore the donor's capacity.
	sm.SetFaultInjector(&failNext{n: 1})
	if err := sm.BorrowMovePage(victim, Fast); !errors.Is(err, ErrMigrationBusy) {
		t.Fatalf("injected borrow failure: got %v, want ErrMigrationBusy", err)
	}
	if err := sm.CheckInvariants(); err != nil {
		t.Errorf("after rollback: %v", err)
	}
	if sm.TierOf(victim) != Slow {
		t.Error("rollback left the page migrated")
	}
	if sm.ShardEpoch(0) != epochBefore {
		t.Error("failed borrow bumped the epoch")
	}

	// Commit path.
	if err := sm.BorrowMovePage(victim, Fast); err != nil {
		t.Fatalf("borrow: %v", err)
	}
	if sm.TierOf(victim) != Fast {
		t.Error("borrowed promotion did not move the page")
	}
	if sm.ShardEpoch(0) != epochBefore+1 || sm.ShardEpoch(3) == 0 {
		t.Error("committed borrow did not bump both epochs")
	}
	if err := sm.CheckInvariants(); err != nil {
		t.Error(err)
	}

	// Every fast tier is full again: a borrow for another slow page on
	// shard 0 finds no donor.
	var second PageID = NoPage
	for p := victim + 1; int(p) < sm.NumPages(); p++ {
		if sm.ShardOf(p) == 0 && sm.TierOf(p) == Slow {
			second = p
			break
		}
	}
	if second == NoPage {
		t.Fatal("no second slow page on shard 0")
	}
	if err := sm.BorrowMovePage(second, Fast); !errors.Is(err, ErrNoDonor) {
		t.Errorf("donor-less borrow: got %v, want ErrNoDonor", err)
	}
}

// TestConcurrentShardedAccessAndMigration is the cross-shard migration
// property test (ISSUE 9 satellite): several goroutines drive tenant
// access batches while another performs borrowed migrations and
// capacity transfers, and after every epoch-advancing round a Quiesce
// barrier asserts CheckInvariants (per-shard recounts, capacity
// conservation) plus the per-tenant RSS and quota sums. Run under
// -race by make check and the CI parallel smoke step.
func TestConcurrentShardedAccessAndMigration(t *testing.T) {
	cfg := testShardCfg()
	const (
		shards  = 8
		tenants = 3
		writers = 4
		rounds  = 30
	)
	sm := NewShardedMachine(cfg, shards)
	sm.EnableTenants(tenants)
	quota := make([]int, tenants)
	for i := range quota {
		quota[i] = sm.CapacityPages(Fast) / (tenants + 1)
		sm.SetFastQuota(TenantID(i), quota[i])
	}
	sm.BeginPeriod(sm.NumPages())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ten := TenantID(w % tenants)
			addrs, writes := stream(uint64(w)+100, 2000, uint64(cfg.FootprintBytes))
			for {
				select {
				case <-stop:
					return
				default:
					sm.AccessBatchTenant(ten, addrs, writes)
				}
			}
		}(w)
	}

	check := func(round int) {
		sm.Quiesce(func() {
			if err := sm.CheckInvariants(); err != nil {
				t.Errorf("round %d: %v", round, err)
			}
			var sum [NumTiers]int
			for ten := 0; ten < tenants; ten++ {
				for tier := 0; tier < NumTiers; tier++ {
					sum[tier] += sm.TenantUsedPages(TenantID(ten), TierID(tier))
				}
				if used := sm.TenantUsedPages(TenantID(ten), Fast); used > quota[ten] {
					t.Errorf("round %d: tenant %d fast RSS %d over quota %d",
						round, ten, used, quota[ten])
				}
			}
			for tier := 0; tier < NumTiers; tier++ {
				if sum[tier] != sm.UsedPages(TierID(tier)) {
					t.Errorf("round %d: tenant %s RSS sums to %d, machine has %d",
						round, TierID(tier), sum[tier], sm.UsedPages(TierID(tier)))
				}
			}
		})
	}

	r := lcg(42)
	for round := 0; round < rounds; round++ {
		for i := 0; i < 20; i++ {
			v := r.next()
			p := PageID(v % uint64(sm.NumPages()))
			if v&1 == 0 {
				sm.BorrowMovePage(p, Fast)
			} else {
				sm.BorrowMovePage(p, Slow)
			}
		}
		from, to := int(r.next()%shards), int(r.next()%shards)
		if from != to {
			sm.TransferCapacity(from, to, Fast, 1)
		}
		check(round)
	}
	close(stop)
	wg.Wait()
	check(rounds)
}

// TestShardedConstructionPanics pins the constructor's contract.
func TestShardedConstructionPanics(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("nshards=%d did not panic", n)
				}
			}()
			NewShardedMachine(testShardCfg(), n)
		}()
	}
}

// TestShardedCapacitySplit checks the deterministic split: per-tier
// capacities, cache lines, and page counts sum exactly to the
// unsharded totals for several shard counts.
func TestShardedCapacitySplit(t *testing.T) {
	cfg := testShardCfg()
	whole := NewMachine(cfg)
	for _, n := range []int{1, 2, 4, 8, 16} {
		sm := NewShardedMachine(cfg, n)
		if sm.NumPages() != whole.NumPages() {
			t.Errorf("n=%d: %d pages, want %d", n, sm.NumPages(), whole.NumPages())
		}
		pages := 0
		for s := 0; s < n; s++ {
			pages += sm.Shard(s).NumPages()
		}
		if pages != whole.NumPages() {
			t.Errorf("n=%d: shard pages sum to %d, want %d", n, pages, whole.NumPages())
		}
		for tier := 0; tier < NumTiers; tier++ {
			if got, want := sm.CapacityPages(TierID(tier)), whole.CapacityPages(TierID(tier)); got != want {
				t.Errorf("n=%d: %s capacity %d, want %d", n, TierID(tier), got, want)
			}
		}
	}
}

// TestShardedEnvFacade smoke-tests the Env surface a policy programs
// against on a multi-shard machine: hooks fire with global page IDs.
func TestShardedEnvFacade(t *testing.T) {
	cfg := testShardCfg()
	sm := NewShardedMachine(cfg, 4)
	var allocd []PageID
	sm.SetAllocHook(func(p PageID, tier TierID) { allocd = append(allocd, p) })
	got := map[PageID]bool{}
	sm.SetSampler(samplerFunc(func(p PageID, tier TierID, w bool, now int64) { got[p] = true }))

	addrs, writes := stream(3, 50_000, uint64(cfg.FootprintBytes))
	sm.AccessBatch(addrs, writes)

	if len(allocd) == 0 || len(got) == 0 {
		t.Fatalf("hooks did not fire: %d allocs, %d sampled", len(allocd), len(got))
	}
	for _, p := range allocd {
		if int(p) >= sm.NumPages() {
			t.Fatalf("alloc hook got out-of-range global page %d", p)
		}
	}
	for p := range got {
		if int(p) >= sm.NumPages() {
			t.Fatalf("sampler got out-of-range global page %d", p)
		}
		if !sm.Allocated(p) {
			t.Fatalf("sampled page %d not allocated via facade", p)
		}
	}
}

// samplerFunc adapts a function to the Sampler interface.
type samplerFunc func(PageID, TierID, bool, int64)

func (f samplerFunc) OnMiss(p PageID, t TierID, w bool, now int64) { f(p, t, w, now) }

func ExampleShardedMachine() {
	cfg := DefaultConfig(1<<20, 1<<19, 4096)
	sm := NewShardedMachine(cfg, 4)
	sm.AccessBatch([]uint64{0, 4096, 8192}, []bool{false, true, false})
	fmt.Println(sm.NumShards(), sm.UsedPages(Fast))
	// Output: 4 3
}
