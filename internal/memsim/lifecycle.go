package memsim

import (
	"fmt"

	"artmem/internal/telemetry"
)

// Page lifecycle primitives for tenant reclamation. A departing
// tenant's resident set is either drained (FreePage) or handed off to a
// surviving tenant (TransferPage); RestorePage is the exact inverse of
// FreePage so an interrupted reclamation can roll back and leave every
// accounting invariant intact. All three are control-plane operations —
// they never appear on the access hot path.

// ErrPageAllocated is returned by RestorePage when the target page is
// already resident (the slot was re-allocated between free and restore,
// which cannot happen inside one reclamation transaction).
var ErrPageAllocated = fmt.Errorf("memsim: page already allocated")

// FreePage unallocates page p: the page leaves its tier, its accessed,
// dirty, and poison state is cleared, and its cache lines are
// invalidated (a freed page does not arrive cache-hot for the next
// owner of the address range). The page's owner tag is deliberately
// left in place so RestorePage can undo the free with the original
// ownership; the tag is overwritten by the next first touch anyway.
func (m *Machine) FreePage(p PageID) error {
	if !m.allocated[p] {
		return ErrNotAllocated
	}
	t := m.tier[p]
	m.allocated[p] = false
	m.accessed[p] = false
	m.dirty[p] = false
	m.poisoned[p] = false
	m.used[t]--
	if m.sh != nil {
		// A freed page's shadow copy frees with it.
		if st, ok := m.sh.At(uint32(p)); ok {
			m.sh.Remove(uint32(p))
			m.used[st]--
		}
	}
	m.ctr.Freed++
	if m.ts != nil {
		m.ts.used[m.ts.owner[p]][t]--
	}
	lines := m.cfg.PageSize / 64
	if lines > 0 {
		m.cache.evictLines(uint64(p)*uint64(m.cfg.PageSize)>>6, lines)
	}
	if m.pageTrace.Sampled(uint64(p)) {
		m.pageTrace.Append(telemetry.PageEvent{
			TimeNs: m.clock,
			Page:   uint64(p),
			Kind:   telemetry.PageKindFree,
			Tier:   m.labels[t],
		})
	}
	return nil
}

// RestorePage re-allocates page p into tier t, undoing a FreePage. The
// page returns to its pre-free owner (FreePage preserves the owner
// tag). It is strictly a rollback primitive: restoring a page that was
// never freed corrupts the Freed counter, so callers pair every
// RestorePage with exactly one preceding FreePage.
func (m *Machine) RestorePage(p PageID, t TierID) error {
	if m.allocated[p] {
		return ErrPageAllocated
	}
	if int(t) >= m.nt {
		return fmt.Errorf("memsim: RestorePage into invalid tier %d", t)
	}
	if m.used[t] >= m.cap[t] {
		return ErrTierFull
	}
	m.allocated[p] = true
	m.tier[p] = t
	m.used[t]++
	if m.ctr.Freed > 0 {
		m.ctr.Freed--
	}
	if m.ts != nil {
		m.ts.used[m.ts.owner[p]][t]++
	}
	return nil
}

// TransferPage hands ownership of page p to tenant `to` without moving
// it between tiers — the reclamation handoff path (a departing tenant's
// shared pages are re-charged to the inheriting tenant, the memcg
// recharging analogue). The inheritor may end up over its fast-tier
// quota; like a dynamic quota shrink, that only gates new growth and is
// not an invariant violation. Panics without EnableTenants (handoff is
// meaningless on a single-tenant machine).
func (m *Machine) TransferPage(p PageID, to TenantID) error {
	if m.ts == nil {
		panic("memsim: TransferPage without EnableTenants")
	}
	if int(to) >= len(m.ts.used) {
		panic(fmt.Sprintf("memsim: TransferPage to tenant %d with %d tenants", to, len(m.ts.used)))
	}
	if !m.allocated[p] {
		return ErrNotAllocated
	}
	from := m.ts.owner[p]
	if from == to {
		return nil
	}
	t := m.tier[p]
	m.ts.used[from][t]--
	m.ts.used[to][t]++
	m.ts.owner[p] = to
	return nil
}

// ResetTenant clears tenant t's counters and quota so its slot can be
// reused by a future registration. It refuses while the tenant still
// owns resident pages — reclamation must finish first. Stale owner tags
// on freed pages are fine: only allocated pages have meaningful owners.
func (m *Machine) ResetTenant(t TenantID) error {
	if m.ts == nil {
		panic("memsim: ResetTenant without EnableTenants")
	}
	if int(t) >= len(m.ts.used) {
		panic(fmt.Sprintf("memsim: ResetTenant(%d) with %d tenants", t, len(m.ts.used)))
	}
	for tier := TierID(0); tier < NumTiers; tier++ {
		if m.ts.used[t][tier] != 0 {
			return fmt.Errorf("memsim: ResetTenant(%d): tenant still owns %d %s pages",
				t, m.ts.used[t][tier], tier)
		}
	}
	m.ts.ctr[t] = TenantCounters{}
	m.ts.quota[t] = 0
	return nil
}

// ReadCostNs returns the model cost of a cache-missing read served by
// tier t. Together with Config().CacheHitNs and the per-tenant access
// counters this reconstructs a tenant's read-latency distribution
// without any per-access bookkeeping (the same five-constant-costs
// property AccessLatencyData exploits machine-wide).
func (m *Machine) ReadCostNs(t TierID) float64 { return m.readCostNs[t] }

// WriteCostNs returns the model cost of a cache-missing write served by
// tier t.
func (m *Machine) WriteCostNs(t TierID) float64 { return m.writeCostNs[t] }
