package memsim

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"artmem/internal/tier"
)

// chainCfg builds a chain-machine config with the given spec and
// footprint/page geometry.
func chainCfg(t *testing.T, spec string, footprint, pageSize int64) Config {
	t.Helper()
	c, err := tier.ParseChain(spec)
	if err != nil {
		t.Fatalf("ParseChain(%q): %v", spec, err)
	}
	cfg := DefaultConfig(footprint, 0, pageSize)
	cfg.Chain = c
	return cfg
}

// TestChainTwoTierByteIdentical pins the tentpole compatibility
// contract: a two-tier chain carrying the seed machine's Table 2
// numbers produces byte-identical virtual time, counters, and latency
// distribution to the legacy Fast/Slow machine — the same way
// ShardedMachine N=1 is pinned against Machine.
func TestChainTwoTierByteIdentical(t *testing.T) {
	const (
		pageSize  = 4096
		footprint = 512 * pageSize
		fastBytes = 128 * pageSize
	)
	legacy := NewMachine(DefaultConfig(footprint, fastBytes, pageSize))

	ccfg := DefaultConfig(footprint, fastBytes, pageSize)
	ccfg.Chain = tier.Chain{
		{Name: "DRAM", LatencyNs: FastLatencyNs, ReadBWGBs: FastBWGBs,
			WriteBWGBs: FastBWGBs, CapacityPages: 128},
		{Name: "PM", LatencyNs: SlowLatencyNs, ReadBWGBs: SlowBWGBs,
			WriteBWGBs: SlowBWGBs / 3},
	}
	chain := NewMachine(ccfg)
	if chain.Tiers() != 2 || chain.TierName(0) != "DRAM" {
		t.Fatalf("chain machine shape: %d tiers, tier0 %q", chain.Tiers(), chain.TierName(0))
	}

	// The "DRAM:25%/PM" parse-level spec must also reproduce the same
	// cost model (the preset carries the derated write figure).
	pcfg := chainCfg(t, "DRAM:cap=128/PM", footprint, pageSize)
	parsed := NewMachine(pcfg)

	rng := uint64(42)
	step := func(m *Machine) {
		r := rng
		for i := 0; i < 20000; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			addr := (r >> 11) % footprint
			m.Access(addr, r&7 == 0)
			if i%512 == 100 {
				m.AdvanceIdle(50)
			}
			if i%997 == 0 {
				p := m.PageOf(addr)
				if m.TierOf(p) == Slow {
					_ = m.MovePage(p, Fast)
				} else if i%1994 == 0 {
					_ = m.MovePage(p, Slow)
				}
			}
		}
	}
	step(legacy)
	step(chain)
	step(parsed)

	for name, m := range map[string]*Machine{"chain": chain, "parsed-chain": parsed} {
		if got, want := m.Counters(), legacy.Counters(); got != want {
			t.Errorf("%s counters diverge:\n got %+v\nwant %+v", name, got, want)
		}
		if got, want := m.Now(), legacy.Now(); got != want {
			t.Errorf("%s clock %d != legacy %d", name, got, want)
		}
		if got, want := m.BackgroundNs(), legacy.BackgroundNs(); got != want {
			t.Errorf("%s background %g != legacy %g", name, got, want)
		}
		if got, want := m.AccessLatencyData(), legacy.AccessLatencyData(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s latency data diverge:\n got %+v\nwant %+v", name, got, want)
		}
		for tr := TierID(0); tr < 2; tr++ {
			if m.UsedPages(tr) != legacy.UsedPages(tr) {
				t.Errorf("%s tier %d used %d != legacy %d", name, tr, m.UsedPages(tr), legacy.UsedPages(tr))
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Errorf("%s invariants: %v", name, err)
		}
	}
}

func TestChainThreeTierAllocationAndBoundaries(t *testing.T) {
	const pageSize = 4096
	cfg := chainCfg(t, "DRAM:cap=4/CXL:cap=4/PM:cap=4", 12*pageSize, pageSize)
	m := NewMachine(cfg)
	if m.Tiers() != 3 || m.NumBoundaries() != 2 {
		t.Fatalf("shape: %d tiers, %d boundaries", m.Tiers(), m.NumBoundaries())
	}
	// First touch fills tiers in chain order.
	for p := 0; p < 12; p++ {
		m.Access(uint64(p)*pageSize, false)
	}
	for tr, want := range []int{4, 4, 4} {
		if got := m.UsedPages(TierID(tr)); got != want {
			t.Fatalf("tier %d used %d, want %d", tr, got, want)
		}
	}
	c := m.Counters()
	if c.AllocFast != 4 || c.AllocSlow != 8 {
		t.Fatalf("alloc split %d/%d, want 4/8", c.AllocFast, c.AllocSlow)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Migrations attribute to the destination-side boundary.
	p8 := m.PageOf(8 * pageSize) // resident in PM (tier 2)
	if m.TierOf(p8) != 2 {
		t.Fatalf("page 8 in tier %d, want 2", m.TierOf(p8))
	}
	// PM→CXL needs a CXL frame: demote a CXL page down first.
	p4 := m.PageOf(4 * pageSize)
	if err := m.MovePage(p4, 2); err == nil {
		t.Fatal("PM is full; demotion should fail")
	} else if !errors.Is(err, ErrTierFull) {
		t.Fatalf("want ErrTierFull, got %v", err)
	}
	// Promote a PM page straight to DRAM? DRAM is full too.
	if err := m.MovePage(p8, 0); !errors.Is(err, ErrTierFull) {
		t.Fatalf("want ErrTierFull, got %v", err)
	}
	// Make room: DRAM→CXL would also hit a full CXL, so free a page.
	if err := m.FreePage(p4); err != nil {
		t.Fatal(err)
	}
	if err := m.MovePage(p8, 1); err != nil { // PM→CXL: promotion over boundary 1
		t.Fatal(err)
	}
	p0 := m.PageOf(0)
	if err := m.MovePage(p0, 1); err == nil {
		t.Fatal("CXL refilled; DRAM→CXL should fail")
	}
	if err := m.FreePage(m.PageOf(5 * pageSize)); err != nil {
		t.Fatal(err)
	}
	if err := m.MovePage(p0, 1); err != nil { // DRAM→CXL: demotion over boundary 0
		t.Fatal(err)
	}
	if err := m.MovePage(m.PageOf(9*pageSize), 0); err != nil { // PM→DRAM: skip-level promotion, boundary 0
		t.Fatal(err)
	}
	b0, b1 := m.BoundaryStatsAt(0), m.BoundaryStatsAt(1)
	if b0.Promotions != 1 || b0.Demotions != 1 {
		t.Fatalf("boundary 0 stats %+v, want 1 promotion, 1 demotion", b0)
	}
	if b1.Promotions != 1 || b1.Demotions != 0 {
		t.Fatalf("boundary 1 stats %+v, want 1 promotion", b1)
	}
	c = m.Counters()
	if c.Promotions != 2 || c.Demotions != 1 {
		t.Fatalf("promotions/demotions %d/%d, want 2/1", c.Promotions, c.Demotions)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChainMigrationCostModel checks that per-pair migration costs use
// the bottleneck bandwidth of the (source read, destination write)
// pair, per the seed cost model.
func TestChainMigrationCostModel(t *testing.T) {
	const pageSize = 1 << 20
	cfg := chainCfg(t, "DRAM:cap=4/CXL:cap=4,lat=180,bw=45/PM", 12*pageSize, pageSize)
	cfg.MigrationInterference = 1 // charge everything to app time for easy reading
	cfg.CacheLines = 0
	m := NewMachine(cfg)
	for p := 0; p < 12; p++ {
		m.Access(uint64(p)*pageSize, false)
	}
	if err := m.FreePage(m.PageOf(4 * pageSize)); err != nil { // open a CXL frame
		t.Fatal(err)
	}
	before := m.Now()
	if err := m.MovePageSync(m.PageOf(8*pageSize), 1); err != nil { // PM→CXL
		t.Fatal(err)
	}
	elapsed := float64(m.Now() - before)
	// Bottleneck of PM read (26 GB/s) vs CXL write (45 GB/s) is 26.
	want := float64(pageSize)/26 + cfg.MigrationFixedNs
	if diff := elapsed - want; diff < -1 || diff > 1 {
		t.Fatalf("PM→CXL cost %g ns, want ~%g", elapsed, want)
	}
}

func shadowCfg(t *testing.T, spec string, pages int) Config {
	t.Helper()
	cfg := chainCfg(t, spec, int64(pages)*4096, 4096)
	cfg.NonExclusive = true
	cfg.CacheLines = 0 // make every access visible
	return cfg
}

func TestShadowPromoteDiscardCycle(t *testing.T) {
	// DRAM cap 2, PM cap 3, 4 pages: 0,1 land in DRAM; 2,3 in PM.
	m := NewMachine(shadowCfg(t, "DRAM:cap=2/PM:cap=3", 4))
	for p := 0; p < 4; p++ {
		m.Access(uint64(p)*4096, false)
	}
	p0, p2 := m.PageOf(0), m.PageOf(2*4096)
	if err := m.MovePage(p0, Slow); err != nil { // make a DRAM frame free
		t.Fatal(err)
	}
	base := m.Counters()
	if err := m.MovePage(p2, Fast); err != nil { // promotion leaves a shadow
		t.Fatal(err)
	}
	if got := m.ShadowPages(Slow); got != 1 {
		t.Fatalf("shadow pages %d, want 1", got)
	}
	if st, ok := m.ShadowOf(p2); !ok || st != Slow {
		t.Fatalf("ShadowOf(p2) = %d,%v", st, ok)
	}
	if used := m.UsedPages(Slow); used != 3 { // residents 0,3 + shadow 2
		t.Fatalf("slow used %d, want 3", used)
	}
	if m.ResidentPages(Slow) != 2 {
		t.Fatalf("slow residents %d, want 2", m.ResidentPages(Slow))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	afterPromo := m.Counters()
	if afterPromo.MigratedBytes != base.MigratedBytes+4096 {
		t.Fatalf("promotion should transfer one page")
	}

	// Demotion onto the clean shadow is a free discard: no bytes, no
	// virtual time.
	clock := m.Now()
	if err := m.MovePage(p2, Slow); err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	if c.ShadowDiscards != 1 {
		t.Fatalf("ShadowDiscards %d, want 1", c.ShadowDiscards)
	}
	if c.MigratedBytes != afterPromo.MigratedBytes {
		t.Fatalf("discard transferred bytes: %d -> %d", afterPromo.MigratedBytes, c.MigratedBytes)
	}
	if c.Demotions != afterPromo.Demotions+1 || c.Migrations != afterPromo.Migrations+1 {
		t.Fatalf("discard should count as a demotion migration: %+v", c)
	}
	if m.Now() != clock {
		t.Fatalf("discard advanced the clock by %d ns", m.Now()-clock)
	}
	if m.ShadowPages(Slow) != 0 || m.UsedPages(Slow) != 3 {
		t.Fatalf("post-discard slow state: %d shadows, %d used", m.ShadowPages(Slow), m.UsedPages(Slow))
	}
	if bs := m.BoundaryStatsAt(0); bs.ShadowDiscards != 1 {
		t.Fatalf("boundary stats %+v, want 1 discard", bs)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShadowInvalidateOnWrite(t *testing.T) {
	m := NewMachine(shadowCfg(t, "DRAM:cap=2/PM:cap=3", 4))
	for p := 0; p < 4; p++ {
		m.Access(uint64(p)*4096, false)
	}
	p2 := m.PageOf(2 * 4096)
	if err := m.MovePage(m.PageOf(0), Slow); err != nil {
		t.Fatal(err)
	}
	if err := m.MovePage(p2, Fast); err != nil {
		t.Fatal(err)
	}
	if m.ShadowPages(Slow) != 1 {
		t.Fatal("promotion should leave a shadow")
	}
	m.Access(2*4096, true) // write invalidates
	c := m.Counters()
	if c.ShadowInvalidates != 1 || m.ShadowPages(Slow) != 0 {
		t.Fatalf("invalidate: %d invalidates, %d shadows", c.ShadowInvalidates, m.ShadowPages(Slow))
	}
	if m.UsedPages(Slow) != 2 { // the shadow frame freed
		t.Fatalf("slow used %d, want 2", m.UsedPages(Slow))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The demotion now needs a real transfer again.
	before := m.Counters().MigratedBytes
	if err := m.MovePage(p2, Slow); err != nil {
		t.Fatal(err)
	}
	if got := m.Counters().MigratedBytes; got != before+4096 {
		t.Fatalf("post-invalidate demotion should transfer: %d -> %d", before, got)
	}
}

func TestShadowReclaimUnderPressure(t *testing.T) {
	// DRAM 2 / PM 3, 5 pages, but only touch 4 up front.
	m := NewMachine(shadowCfg(t, "DRAM:cap=2/PM:cap=3", 5))
	for p := 0; p < 4; p++ {
		m.Access(uint64(p)*4096, false)
	}
	p1, p2 := m.PageOf(1*4096), m.PageOf(2*4096)
	if err := m.MovePage(p1, Slow); err != nil { // PM: 1,2,3 (3/3)
		t.Fatal(err)
	}
	if err := m.MovePage(p2, Fast); err != nil { // shadow keeps PM at 3/3
		t.Fatal(err)
	}
	if m.ShadowPages(Slow) != 1 || m.UsedPages(Slow) != 3 {
		t.Fatalf("setup: %d shadows, %d used", m.ShadowPages(Slow), m.UsedPages(Slow))
	}
	// First-touch of page 4: DRAM is full, PM is full but one frame is
	// a reclaimable shadow — the allocation evicts it instead of
	// overflowing.
	m.Access(4*4096, false)
	c := m.Counters()
	if c.ShadowReclaims != 1 {
		t.Fatalf("ShadowReclaims %d, want 1", c.ShadowReclaims)
	}
	if m.ShadowPages(Slow) != 0 || m.UsedPages(Slow) != 3 {
		t.Fatalf("post-alloc: %d shadows, %d used", m.ShadowPages(Slow), m.UsedPages(Slow))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// With the shadow reclaimed PM is genuinely full: both a promotion
	// into full DRAM and a demotion into full PM must fail.
	if err := m.MovePage(m.PageOf(4*4096), Fast); err == nil {
		t.Fatal("DRAM is full; promotion should fail")
	}
	if err := m.MovePage(p2, Slow); !errors.Is(err, ErrTierFull) {
		t.Fatalf("demotion into full PM: %v, want ErrTierFull", err)
	}
	if err := m.FreePage(p1); err != nil {
		t.Fatal(err)
	}
	if err := m.MovePage(p2, Slow); err != nil { // full transfer (shadow gone)
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShadowFreePageDropsShadow(t *testing.T) {
	m := NewMachine(shadowCfg(t, "DRAM:cap=2/PM:cap=3", 4))
	for p := 0; p < 4; p++ {
		m.Access(uint64(p)*4096, false)
	}
	p2 := m.PageOf(2 * 4096)
	if err := m.MovePage(m.PageOf(0), Slow); err != nil {
		t.Fatal(err)
	}
	if err := m.MovePage(p2, Fast); err != nil {
		t.Fatal(err)
	}
	if err := m.FreePage(p2); err != nil {
		t.Fatal(err)
	}
	if m.ShadowPages(Slow) != 0 {
		t.Fatal("FreePage left the shadow frame behind")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestShadowDeepChain exercises multi-level shadows: promoting twice
// keeps at most one shadow (the older, deeper one frees), and demoting
// below a live shadow invalidates it.
func TestShadowDeepChain(t *testing.T) {
	m := NewMachine(shadowCfg(t, "DRAM:cap=2/CXL:cap=2,lat=180,bw=45/PM:cap=4", 6))
	for p := 0; p < 6; p++ {
		m.Access(uint64(p)*4096, false)
	}
	// Layout: DRAM {0,1}, CXL {2,3}, PM {4,5}.
	p4 := m.PageOf(4 * 4096)
	if err := m.MovePage(m.PageOf(2*4096), 2); err != nil { // CXL→PM frees a CXL frame (PM 3/4)
		t.Fatal(err)
	}
	if err := m.MovePage(p4, 1); err != nil { // PM→CXL, shadow in PM
		t.Fatal(err)
	}
	if m.ShadowPages(2) != 1 {
		t.Fatal("want shadow in PM")
	}
	if err := m.MovePage(m.PageOf(0), 1); err != nil { // DRAM→CXL? CXL is full (2/2)
		// CXL full: expected; free a DRAM frame differently.
		if !errors.Is(err, ErrTierFull) {
			t.Fatal(err)
		}
		if err := m.MovePage(m.PageOf(0), 2); err != nil { // DRAM→PM直接 (PM 4/4 incl shadow → reclaims)
			t.Fatal(err)
		}
	}
	// Promote p4 again, CXL→DRAM: the PM shadow (if it survived) must
	// be dropped and replaced by a CXL shadow.
	if err := m.MovePage(p4, 0); err != nil {
		t.Fatal(err)
	}
	if st, ok := m.ShadowOf(p4); !ok || st != 1 {
		t.Fatalf("ShadowOf(p4) = %d,%v; want CXL shadow", st, ok)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Demote p4 all the way to PM, past its CXL shadow: the shadow
	// would sit above the resident copy, so it must be invalidated.
	if err := m.MovePage(p4, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.ShadowOf(p4); ok {
		t.Fatal("stale shadow above the resident survived a deep demotion")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestChainInvariantViolationsDetected(t *testing.T) {
	m := NewMachine(shadowCfg(t, "DRAM:cap=2/PM:cap=3", 4))
	for p := 0; p < 4; p++ {
		m.Access(uint64(p)*4096, false)
	}
	if err := m.MovePage(m.PageOf(0), Slow); err != nil {
		t.Fatal(err)
	}
	p2 := m.PageOf(2 * 4096)
	if err := m.MovePage(p2, Fast); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the used counter.
	m.used[0]++
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("used-counter drift not detected")
	}
	m.used[0]--
	// Break the shadow-below-resident invariant by teleporting the
	// resident copy under its own shadow.
	m.used[m.tier[p2]]--
	m.tier[p2] = Slow
	m.used[Slow]++
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("shadow-above-resident not detected")
	}
}

// TestConcurrentChainShadowMigration extends the -race property test to
// the chain machine: goroutines hammer a 3-tier non-exclusive sharded
// machine with access batches (writes invalidate shadows) while the main
// goroutine performs cross-tier migrations, and a Quiesce barrier
// asserts CheckInvariants — which now recounts shadow frames per tier —
// after every round.
func TestConcurrentChainShadowMigration(t *testing.T) {
	const pageSize = 4096
	cfg := chainCfg(t, "DRAM:cap=96/CXL:cap=96,lat=180,bw=45/PM", 512*pageSize, pageSize)
	cfg.NonExclusive = true
	const (
		shards  = 4
		writers = 4
		rounds  = 30
	)
	sm := NewShardedMachine(cfg, shards)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			addrs, writes := stream(uint64(w)+900, 2000, uint64(cfg.FootprintBytes))
			for {
				select {
				case <-stop:
					return
				default:
					sm.AccessBatch(addrs, writes)
				}
			}
		}(w)
	}

	check := func(round int) {
		sm.Quiesce(func() {
			if err := sm.CheckInvariants(); err != nil {
				t.Errorf("round %d: %v", round, err)
			}
			for tr := TierID(0); int(tr) < sm.Tiers(); tr++ {
				if sm.ResidentPages(tr) < 0 {
					t.Errorf("round %d: tier %d negative residents", round, tr)
				}
			}
		})
	}

	r := lcg(7)
	for round := 0; round < rounds; round++ {
		for i := 0; i < 20; i++ {
			v := r.next()
			p := PageID(v % uint64(sm.NumPages()))
			cur := sm.TierOf(p)
			if v&1 == 0 && cur > 0 {
				sm.MovePage(p, cur-1)
			} else if int(cur) < sm.Tiers()-1 {
				sm.MovePage(p, cur+1)
			}
		}
		check(round)
	}
	close(stop)
	wg.Wait()
	check(rounds)
}

func TestChainSharded(t *testing.T) {
	const pageSize = 4096
	cfg := chainCfg(t, "DRAM:cap=64/CXL:cap=64,lat=180,bw=45/PM", 512*pageSize, pageSize)
	cfg.NonExclusive = true
	sm := NewShardedMachine(cfg, 4)
	if sm.Tiers() != 3 || sm.TierName(1) != "CXL" {
		t.Fatalf("sharded chain shape: %d tiers", sm.Tiers())
	}
	if got := sm.CapacityPages(0); got != 64 {
		t.Fatalf("sharded DRAM capacity %d, want 64", got)
	}
	rng := uint64(7)
	for i := 0; i < 30000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		sm.Access((rng>>11)%(512*pageSize), rng&7 == 0)
	}
	// Promote and demote across shards through the Env surface.
	for p := PageID(0); p < 256; p += 3 {
		if sm.TierOf(p) > 0 {
			_ = sm.MovePage(p, sm.TierOf(p)-1)
		}
	}
	for p := PageID(1); p < 256; p += 5 {
		if int(sm.TierOf(p)) < sm.Tiers()-1 {
			_ = sm.MovePage(p, sm.TierOf(p)+1)
		}
	}
	if err := sm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var acc uint64
	for tr := TierID(0); int(tr) < sm.Tiers(); tr++ {
		acc += sm.TierAccesses(tr)
	}
	c := sm.Counters()
	if acc != c.FastAccesses+c.SlowAccesses {
		t.Fatalf("per-tier accesses %d != counter total %d", acc, c.FastAccesses+c.SlowAccesses)
	}
}
