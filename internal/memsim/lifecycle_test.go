package memsim

import (
	"errors"
	"testing"
)

func TestFreeRestoreRoundTripPreservesInvariants(t *testing.T) {
	m := NewMachine(testConfig(0))
	m.EnableTenants(2)
	m.SetCurrentTenant(0)
	touch(m, 0, 8)
	m.SetCurrentTenant(1)
	touch(m, 20, 8)

	preUsed := [NumTiers]int{m.TenantUsedPages(0, Fast), m.TenantUsedPages(0, Slow)}
	var freed []struct {
		p PageID
		t TierID
	}
	for p := PageID(0); p < 8; p++ {
		tier := m.TierOf(p)
		if err := m.FreePage(p); err != nil {
			t.Fatalf("FreePage(%d): %v", p, err)
		}
		freed = append(freed, struct {
			p PageID
			t TierID
		}{p, tier})
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("after freeing %d pages: %v", p+1, err)
		}
	}
	if m.TenantUsedPages(0, Fast)+m.TenantUsedPages(0, Slow) != 0 {
		t.Fatal("tenant 0 still has resident pages after draining")
	}
	if got := m.Counters().Freed; got != 8 {
		t.Fatalf("Freed = %d, want 8", got)
	}
	if err := m.FreePage(0); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("double free = %v, want ErrNotAllocated", err)
	}

	// Roll back: restore in reverse order, invariants at every step.
	for i := len(freed) - 1; i >= 0; i-- {
		if err := m.RestorePage(freed[i].p, freed[i].t); err != nil {
			t.Fatalf("RestorePage(%d): %v", freed[i].p, err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("after restoring page %d: %v", freed[i].p, err)
		}
	}
	if got := [NumTiers]int{m.TenantUsedPages(0, Fast), m.TenantUsedPages(0, Slow)}; got != preUsed {
		t.Fatalf("tenant 0 RSS after rollback = %v, want %v", got, preUsed)
	}
	if got := m.Counters().Freed; got != 0 {
		t.Fatalf("Freed after full rollback = %d, want 0", got)
	}
	if err := m.RestorePage(freed[0].p, freed[0].t); !errors.Is(err, ErrPageAllocated) {
		t.Fatalf("double restore = %v, want ErrPageAllocated", err)
	}
}

func TestTransferPageRechargesOwnership(t *testing.T) {
	m := NewMachine(testConfig(0))
	m.EnableTenants(2)
	m.SetCurrentTenant(0)
	touch(m, 0, 6)
	m.SetCurrentTenant(1)
	touch(m, 30, 4)

	before1 := m.TenantUsedPages(1, Fast) + m.TenantUsedPages(1, Slow)
	for p := PageID(0); p < 6; p++ {
		if err := m.TransferPage(p, 1); err != nil {
			t.Fatalf("TransferPage(%d): %v", p, err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("after transferring page %d: %v", p, err)
		}
	}
	if got := m.TenantUsedPages(0, Fast) + m.TenantUsedPages(0, Slow); got != 0 {
		t.Fatalf("tenant 0 RSS after handoff = %d, want 0", got)
	}
	if got := m.TenantUsedPages(1, Fast) + m.TenantUsedPages(1, Slow); got != before1+6 {
		t.Fatalf("tenant 1 RSS after handoff = %d, want %d", got, before1+6)
	}
	for p := PageID(0); p < 6; p++ {
		if m.OwnerOf(p) != 1 {
			t.Fatalf("page %d owner = %d, want 1", p, m.OwnerOf(p))
		}
	}
	// Self-transfer and unallocated pages.
	if err := m.TransferPage(0, 1); err != nil {
		t.Fatalf("self transfer: %v", err)
	}
	if err := m.TransferPage(PageID(50), 1); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("transfer of unallocated page = %v, want ErrNotAllocated", err)
	}
}

func TestResetTenantRefusesUntilDrained(t *testing.T) {
	m := NewMachine(testConfig(0))
	m.EnableTenants(2)
	m.SetFastQuota(1, 5)
	m.SetCurrentTenant(1)
	touch(m, 0, 4)

	if err := m.ResetTenant(1); err == nil {
		t.Fatal("ResetTenant succeeded while tenant owns pages")
	}
	for p := PageID(0); p < 4; p++ {
		if err := m.FreePage(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ResetTenant(1); err != nil {
		t.Fatalf("ResetTenant after drain: %v", err)
	}
	if c := m.TenantCounters(1); c != (TenantCounters{}) {
		t.Fatalf("counters after reset = %+v, want zero", c)
	}
	if q := m.FastQuota(1); q != 0 {
		t.Fatalf("quota after reset = %d, want 0", q)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreePageEvictsCacheLines(t *testing.T) {
	m := NewMachine(testConfig(1024))
	addr := uint64(0)
	m.Access(addr, false) // install line
	pre := m.Counters().CacheHits
	m.Access(addr, false)
	if hits := m.Counters().CacheHits - pre; hits != 1 {
		t.Fatalf("second access hits = %d, want 1 (line resident)", hits)
	}
	if err := m.FreePage(m.PageOf(addr)); err != nil {
		t.Fatal(err)
	}
	pre = m.Counters().CacheHits
	m.Access(addr, false) // re-allocates; line must have been evicted
	if hits := m.Counters().CacheHits - pre; hits != 0 {
		t.Fatalf("access after free hit the cache; freed pages must not stay cache-hot")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadCostAccessorsMatchLatencyData(t *testing.T) {
	m := NewMachine(testConfig(0))
	if m.ReadCostNs(Fast) >= m.ReadCostNs(Slow) {
		t.Fatalf("fast read cost %v !< slow read cost %v",
			m.ReadCostNs(Fast), m.ReadCostNs(Slow))
	}
	if m.WriteCostNs(Fast) <= 0 || m.WriteCostNs(Slow) <= 0 {
		t.Fatal("write costs must be positive")
	}
}
