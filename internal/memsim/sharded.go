package memsim

import (
	"errors"
	"fmt"
	"sync"

	"artmem/internal/telemetry"
	"artmem/internal/tier"
)

// ShardedMachine partitions one simulated machine into N independently
// locked shards so the access hot path scales across goroutines. Each
// shard is a complete *Machine — its own page-state arrays, per-tier
// capacity split, CPU cache slice, fractional virtual clock, and
// counter set — holding the global pages whose low shard-index bits
// select it (page p lives on shard p mod N, as local page p div N).
// Striding by the low bits spreads every contiguous hot range across
// all shards, so shard load tracks access volume rather than address
// layout; DESIGN.md §12 derives the key and the determinism argument.
//
// Concurrency contract, in two halves:
//
//   - The data plane — Access, AccessBatch, AccessBatchTenant,
//     AccessBatchParallel, RunShard, RunShardOf, TransferCapacity,
//     BorrowMovePage, BeginPeriod, Quiesce — takes the per-shard locks
//     and is safe to drive from any number of goroutines.
//   - The control plane — every other method, including the whole
//     memsim.Env surface — is deliberately lock-free, mirroring
//     Machine's single-threaded contract, so a policy hook fired
//     inside a locked access replay (a NUMA-hint fault handler calling
//     MovePageSync on the faulting page's own shard) never deadlocks
//     on a lock its caller already holds. Control-plane calls must be
//     externally synchronized against the data plane: either
//     single-threaded use (the harness), inside RunShard/Quiesce, or
//     with all access goroutines stopped.
//
// N must be a power of two. N=1 is the compatibility mode: exactly one
// inner Machine built from the unmodified Config, with every address
// and page ID passed through untranslated — byte-identical to a bare
// Machine, which is what keeps the deterministic experiment tables and
// the benchdiff gate stable when sharding is off.
type ShardedMachine struct {
	cfg       Config // the original, pre-split configuration
	numPages  int
	pageShift uint // 0 when PageSize is not a power of two
	nshards   int
	log2      uint   // log2(nshards)
	mask      uint64 // nshards-1

	shards []*Machine
	mu     []paddedMutex

	// epoch[s] counts cross-shard transactions shard s participated in
	// (capacity transfers and borrowed moves). Guarded by mu[s].
	epoch []uint64
	// borrowLeft[s] is shard s's remaining cross-shard borrow budget
	// this control period — the per-shard arbiter admission counter
	// (TierBPF-style: a shard may only pull capacity toward itself
	// while it has budget). Guarded by mu[s].
	borrowLeft []int

	// origCap pins the machine-wide capacity totals at construction
	// (one entry per tier of the chain); capacity transfers conserve
	// them and CheckInvariants recounts.
	origCap []int

	splitPool sync.Pool // *splitScratch, sized to nshards
}

// paddedMutex keeps neighbouring shard locks on separate cache lines so
// uncontended shards do not false-share.
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

// splitScratch holds per-shard sub-batches during batch splitting; it
// is pooled so steady-state batch replay does not allocate.
type splitScratch struct {
	addrs  [][]uint64
	writes [][]bool
}

// Cross-shard transaction errors.
var (
	// ErrBorrowBudget reports a cross-shard capacity borrow denied
	// because the pulling shard exhausted its per-period budget.
	ErrBorrowBudget = errors.New("memsim: shard borrow budget exhausted")
	// ErrNoDonor reports a borrow attempt that found no shard with
	// spare capacity to lend.
	ErrNoDonor = errors.New("memsim: no shard has spare capacity to lend")
)

// NewShardedMachine builds a machine partitioned into nshards shards.
// It panics when nshards is not a positive power of two or exceeds the
// configured page count (a harness programming error, exactly like an
// invalid Config in NewMachine).
func NewShardedMachine(cfg Config, nshards int) *ShardedMachine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if nshards < 1 || nshards&(nshards-1) != 0 {
		panic(fmt.Sprintf("memsim: shard count %d is not a positive power of two", nshards))
	}
	total := cfg.NumPagesFor()
	if nshards > total {
		panic(fmt.Sprintf("memsim: %d shards for %d pages", nshards, total))
	}
	sm := &ShardedMachine{
		cfg:      cfg,
		numPages: total,
		nshards:  nshards,
		mask:     uint64(nshards - 1),
	}
	for 1<<sm.log2 < nshards {
		sm.log2++
	}
	sm.pageShift = 0
	for int64(1)<<sm.pageShift < cfg.PageSize {
		sm.pageShift++
	}
	if int64(1)<<sm.pageShift != cfg.PageSize {
		sm.pageShift = 0
	}
	sm.shards = make([]*Machine, nshards)
	sm.mu = make([]paddedMutex, nshards)
	sm.epoch = make([]uint64, nshards)
	sm.borrowLeft = make([]int, nshards)
	if nshards == 1 {
		// Compatibility mode: the one shard IS the seed machine.
		sm.shards[0] = NewMachine(cfg)
	} else if cfg.Chain != nil {
		// Chain machine: resolve percentage capacities against the
		// whole footprint once, then hand each shard an explicit
		// per-tier page split. An unbounded last tier stays unbounded
		// per shard (each sizes it to its local footprint), mirroring
		// the legacy slow-tier split below.
		resolved, err := cfg.Chain.Resolve(total)
		if err != nil {
			panic(err)
		}
		for _, r := range resolved {
			// A bounded tier must give every shard at least one page:
			// a zero split is invalid for middle tiers and would
			// silently mean "unbounded" for the last one.
			if r.Pages > 0 && r.Pages < nshards {
				panic(fmt.Sprintf("memsim: chain tier %s has %d pages, too small for %d shards",
					r.Name, r.Pages, nshards))
			}
		}
		lines := cfg.CacheLines
		for s := 0; s < nshards; s++ {
			local := (total - s + nshards - 1) / nshards // pages ≡ s (mod N)
			scfg := cfg
			scfg.FootprintBytes = int64(local) * cfg.PageSize
			chain := make([]tier.Desc, len(resolved))
			for i, r := range resolved {
				chain[i] = r.Desc
				chain[i].CapacityPct = 0
				chain[i].CapacityPages = r.Pages/nshards + extra(r.Pages, nshards, s)
			}
			scfg.Chain = chain
			scfg.CacheLines = lines/nshards + extra(lines, nshards, s)
			sm.shards[s] = NewMachine(scfg)
		}
	} else {
		fastCap := cfg.Fast.CapacityPages
		slowCap := cfg.Slow.CapacityPages
		lines := cfg.CacheLines
		for s := 0; s < nshards; s++ {
			local := (total - s + nshards - 1) / nshards // pages ≡ s (mod N)
			scfg := cfg
			scfg.FootprintBytes = int64(local) * cfg.PageSize
			scfg.Fast.CapacityPages = fastCap/nshards + extra(fastCap, nshards, s)
			if slowCap > 0 {
				scfg.Slow.CapacityPages = slowCap/nshards + extra(slowCap, nshards, s)
			}
			scfg.CacheLines = lines/nshards + extra(lines, nshards, s)
			sm.shards[s] = NewMachine(scfg)
		}
	}
	sm.origCap = make([]int, sm.shards[0].Tiers())
	for t := range sm.origCap {
		for _, m := range sm.shards {
			sm.origCap[t] += m.CapacityPages(TierID(t))
		}
	}
	// Until a control plane installs per-period budgets (BeginPeriod),
	// borrowing is effectively unmetered.
	for s := range sm.borrowLeft {
		sm.borrowLeft[s] = total
	}
	sm.splitPool.New = func() any {
		return &splitScratch{
			addrs:  make([][]uint64, nshards),
			writes: make([][]bool, nshards),
		}
	}
	return sm
}

// extra distributes a split's remainder deterministically: the low
// rem shards get one extra unit.
func extra(total, n, s int) int {
	if s < total%n {
		return 1
	}
	return 0
}

// NumShards returns the shard count.
func (sm *ShardedMachine) NumShards() int { return sm.nshards }

// Shard returns shard s's inner machine, for attach-time wiring
// (per-shard policies bind to it directly). All use of the returned
// machine after access goroutines start must happen under RunShard.
func (sm *ShardedMachine) Shard(s int) *Machine { return sm.shards[s] }

// ShardOf returns the shard that owns global page p.
func (sm *ShardedMachine) ShardOf(p PageID) int { return int(uint64(p) & sm.mask) }

// LocalPage returns p's page ID within its owning shard.
func (sm *ShardedMachine) LocalPage(p PageID) PageID { return p >> sm.log2 }

// GlobalPage returns the global ID of shard s's local page lp.
func (sm *ShardedMachine) GlobalPage(s int, lp PageID) PageID {
	return lp<<sm.log2 | PageID(s)
}

// globalPageOf mirrors Machine.PageOf on the pre-split address space.
func (sm *ShardedMachine) globalPageOf(addr uint64) PageID {
	var p uint64
	if sm.pageShift != 0 {
		p = addr >> sm.pageShift
	} else {
		p = addr / uint64(sm.cfg.PageSize)
	}
	if p >= uint64(sm.numPages) {
		p %= uint64(sm.numPages)
	}
	return PageID(p)
}

// localAddr rebases addr (whose global page is p) into p's shard-local
// address space, preserving the in-page offset so the shard's CPU
// cache model sees distinct lines for distinct global lines.
func (sm *ShardedMachine) localAddr(p PageID, addr uint64) uint64 {
	lp := uint64(p >> sm.log2)
	if sm.pageShift != 0 {
		return lp<<sm.pageShift | addr&(uint64(sm.cfg.PageSize)-1)
	}
	return lp*uint64(sm.cfg.PageSize) + addr%uint64(sm.cfg.PageSize)
}

// PageOf returns the global page containing byte address addr, with
// Machine.PageOf's wraparound semantics.
func (sm *ShardedMachine) PageOf(addr uint64) PageID { return sm.globalPageOf(addr) }

// Access performs one application access under the owning shard's
// lock. Safe for concurrent use.
func (sm *ShardedMachine) Access(addr uint64, write bool) {
	if sm.nshards == 1 {
		sm.mu[0].Lock()
		sm.shards[0].Access(addr, write)
		sm.mu[0].Unlock()
		return
	}
	p := sm.globalPageOf(addr)
	s := int(uint64(p) & sm.mask)
	la := sm.localAddr(p, addr)
	sm.mu[s].Lock()
	sm.shards[s].Access(la, write)
	sm.mu[s].Unlock()
}

// AccessBatch splits a batch into per-shard sub-batches and replays
// each under its shard's lock, preserving per-shard access order (the
// property the determinism argument rests on: shards share no state,
// so any interleaving of whole per-shard streams yields identical
// aggregate counters). Safe for concurrent use; concurrent batches
// interleave at shard granularity.
func (sm *ShardedMachine) AccessBatch(addrs []uint64, writes []bool) {
	sm.accessBatch(NoTenant, addrs, writes)
}

// NoTenant tells the batch replay paths to leave the shard's current
// tenant untouched (single-tenant machines, or pre-set tenancy).
const NoTenant = TenantID(^uint16(0))

// AccessBatchTenant replays a batch on behalf of tenant t: each
// touched shard's current tenant is set to t under the shard lock
// before its sub-batch replays, so concurrent batches from different
// tenants attribute correctly. Safe for concurrent use.
func (sm *ShardedMachine) AccessBatchTenant(t TenantID, addrs []uint64, writes []bool) {
	sm.accessBatch(t, addrs, writes)
}

func (sm *ShardedMachine) accessBatch(t TenantID, addrs []uint64, writes []bool) {
	if sm.nshards == 1 {
		sm.mu[0].Lock()
		if t != NoTenant {
			sm.shards[0].SetCurrentTenant(t)
		}
		for i, a := range addrs {
			sm.shards[0].Access(a, writes[i])
		}
		sm.mu[0].Unlock()
		return
	}
	sc := sm.split(addrs, writes)
	for s := 0; s < sm.nshards; s++ {
		if len(sc.addrs[s]) == 0 {
			continue
		}
		sm.replayShard(s, t, sc.addrs[s], sc.writes[s])
	}
	sm.putSplit(sc)
}

// AccessBatchParallel replays one batch across up to `goroutines`
// goroutines, each owning a fixed subset of shards (goroutine g runs
// shards g, g+G, ...). Whole-shard ownership keeps each shard's
// sub-stream in batch order, so the aggregate counters are identical
// for every G — the lockstep shardscale experiment pins this. Safe
// for concurrent use, though concurrent callers contend shard locks.
func (sm *ShardedMachine) AccessBatchParallel(addrs []uint64, writes []bool, goroutines int) {
	if goroutines < 1 {
		goroutines = 1
	}
	if sm.nshards == 1 || goroutines == 1 {
		sm.accessBatch(NoTenant, addrs, writes)
		return
	}
	if goroutines > sm.nshards {
		goroutines = sm.nshards
	}
	sc := sm.split(addrs, writes)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for s := g; s < sm.nshards; s += goroutines {
				if len(sc.addrs[s]) == 0 {
					continue
				}
				sm.replayShard(s, NoTenant, sc.addrs[s], sc.writes[s])
			}
		}(g)
	}
	wg.Wait()
	sm.putSplit(sc)
}

// split partitions a batch into pooled per-shard sub-batches of
// shard-local addresses.
func (sm *ShardedMachine) split(addrs []uint64, writes []bool) *splitScratch {
	sc := sm.splitPool.Get().(*splitScratch)
	for i, a := range addrs {
		p := sm.globalPageOf(a)
		s := int(uint64(p) & sm.mask)
		sc.addrs[s] = append(sc.addrs[s], sm.localAddr(p, a))
		sc.writes[s] = append(sc.writes[s], writes[i])
	}
	return sc
}

func (sm *ShardedMachine) putSplit(sc *splitScratch) {
	for s := range sc.addrs {
		sc.addrs[s] = sc.addrs[s][:0]
		sc.writes[s] = sc.writes[s][:0]
	}
	sm.splitPool.Put(sc)
}

// replayShard replays one shard's sub-batch under its lock.
func (sm *ShardedMachine) replayShard(s int, t TenantID, addrs []uint64, writes []bool) {
	m := sm.shards[s]
	sm.mu[s].Lock()
	if t != NoTenant {
		m.SetCurrentTenant(t)
	}
	for i, a := range addrs {
		m.Access(a, writes[i])
	}
	sm.mu[s].Unlock()
}

// RunShard runs f on shard s's inner machine under the shard lock —
// the primitive per-shard control planes (core.ShardedSystem) build
// their sampling and migration passes on. f must not call back into
// any ShardedMachine locking method.
func (sm *ShardedMachine) RunShard(s int, f func(m *Machine)) {
	sm.mu[s].Lock()
	defer sm.mu[s].Unlock()
	f(sm.shards[s])
}

// RunShardOf locks the shard owning global page p and runs f with the
// inner machine and p's shard-local ID.
func (sm *ShardedMachine) RunShardOf(p PageID, f func(m *Machine, local PageID)) {
	s := sm.ShardOf(p)
	sm.mu[s].Lock()
	defer sm.mu[s].Unlock()
	f(sm.shards[s], p>>sm.log2)
}

// Quiesce locks every shard (in ascending index order) and runs f on
// the fully stopped machine — the barrier the property tests use to
// assert invariants between epochs while access goroutines run.
func (sm *ShardedMachine) Quiesce(f func()) {
	for s := 0; s < sm.nshards; s++ {
		sm.mu[s].Lock()
	}
	defer func() {
		for s := sm.nshards - 1; s >= 0; s-- {
			sm.mu[s].Unlock()
		}
	}()
	f()
}

// ShardEpoch returns shard s's cross-shard transaction epoch.
func (sm *ShardedMachine) ShardEpoch(s int) uint64 {
	sm.mu[s].Lock()
	defer sm.mu[s].Unlock()
	return sm.epoch[s]
}

// BeginPeriod starts a cross-shard control period: every shard's
// borrow budget is reset to n pages. The migration control plane calls
// this once per decision period, making capacity borrowing a metered,
// per-shard-admission-controlled operation rather than a free-for-all.
func (sm *ShardedMachine) BeginPeriod(n int) {
	for s := 0; s < sm.nshards; s++ {
		sm.mu[s].Lock()
		sm.borrowLeft[s] = n
		sm.mu[s].Unlock()
	}
}

// SetShardBudget is BeginPeriod's per-shard form: it sets shard s's
// remaining borrow budget for the current period. Control planes that
// split a machine-wide budget by demand (tenancy.SplitBudget) install
// the shares with this.
func (sm *ShardedMachine) SetShardBudget(s, n int) {
	sm.mu[s].Lock()
	sm.borrowLeft[s] = n
	sm.mu[s].Unlock()
}

// ShardBudget returns shard s's remaining borrow budget.
func (sm *ShardedMachine) ShardBudget(s int) int {
	sm.mu[s].Lock()
	defer sm.mu[s].Unlock()
	return sm.borrowLeft[s]
}

// lockPair locks two distinct shards in ascending index order (the
// deadlock-freedom rule: every multi-shard lock acquisition in this
// file is ascending, and single-shard holders never take a second).
func (sm *ShardedMachine) lockPair(a, b int) {
	if a > b {
		a, b = b, a
	}
	sm.mu[a].Lock()
	sm.mu[b].Lock()
}

func (sm *ShardedMachine) unlockPair(a, b int) {
	if a > b {
		a, b = b, a
	}
	sm.mu[b].Unlock()
	sm.mu[a].Unlock()
}

// TransferCapacity moves n pages of tier t capacity from shard `from`
// to shard `to` as one epoch-bumping transaction: both shards are
// locked (quiescing them), the donor's capacity is shrunk — refused
// outright if that would strand resident pages — and the recipient's
// grown. The recipient spends n of its borrow budget. Machine-wide
// capacity is conserved exactly.
func (sm *ShardedMachine) TransferCapacity(from, to int, t TierID, n int) error {
	if from == to || n <= 0 {
		return fmt.Errorf("memsim: bad capacity transfer %d→%d n=%d", from, to, n)
	}
	sm.lockPair(from, to)
	defer sm.unlockPair(from, to)
	if sm.borrowLeft[to] < n {
		return ErrBorrowBudget
	}
	if err := sm.shards[from].AdjustCapacity(t, -n); err != nil {
		return err
	}
	if err := sm.shards[to].AdjustCapacity(t, n); err != nil {
		// Roll the donor back; growing it again cannot fail.
		sm.shards[from].AdjustCapacity(t, n)
		return err
	}
	sm.borrowLeft[to] -= n
	sm.epoch[from]++
	sm.epoch[to]++
	return nil
}

// BorrowMovePage migrates global page p to tier dst even when p's own
// shard has no free dst capacity, by borrowing one page of capacity
// from the shard with the most spare dst capacity. The whole move is
// one transaction under both shards' locks: capacity transfers in,
// the page moves, and any failure rolls the capacity back so the
// machine-wide total is conserved on every path. The borrowing shard
// spends one unit of its budget only when the move commits.
func (sm *ShardedMachine) BorrowMovePage(p PageID, dst TierID) error {
	s := sm.ShardOf(p)
	lp := p >> sm.log2
	if sm.nshards == 1 {
		sm.mu[0].Lock()
		defer sm.mu[0].Unlock()
		return sm.shards[0].MovePage(p, dst)
	}

	// Fast path: the home shard has room (or the page is already there).
	sm.mu[s].Lock()
	if sm.shards[s].FreePages(dst) > 0 || sm.shards[s].TierOf(lp) == dst {
		err := sm.shards[s].MovePage(lp, dst)
		sm.mu[s].Unlock()
		return err
	}
	// Donor selection: scan the other shards one lock at a time (never
	// holding two during the scan) for the one with the most spare dst
	// capacity; the choice is advisory and rechecked under the pair lock.
	sm.mu[s].Unlock()
	donor, best := -1, 0
	for d := 0; d < sm.nshards; d++ {
		if d == s {
			continue
		}
		sm.mu[d].Lock()
		free := sm.shards[d].FreePages(dst)
		sm.mu[d].Unlock()
		if free > best {
			donor, best = d, free
		}
	}
	if donor < 0 {
		return ErrNoDonor
	}

	sm.lockPair(s, donor)
	defer sm.unlockPair(s, donor)
	if sm.borrowLeft[s] < 1 {
		return ErrBorrowBudget
	}
	if sm.shards[donor].FreePages(dst) < 1 {
		return ErrNoDonor // donor filled up between the scan and the lock
	}
	if err := sm.shards[donor].AdjustCapacity(dst, -1); err != nil {
		return err
	}
	if err := sm.shards[s].AdjustCapacity(dst, 1); err != nil {
		sm.shards[donor].AdjustCapacity(dst, 1)
		return err
	}
	if err := sm.shards[s].MovePage(lp, dst); err != nil {
		// Rollback: return the borrowed capacity to the donor.
		sm.shards[s].AdjustCapacity(dst, -1)
		sm.shards[donor].AdjustCapacity(dst, 1)
		return err
	}
	sm.borrowLeft[s]--
	sm.epoch[s]++
	sm.epoch[donor]++
	return nil
}

// ---------------------------------------------------------------------
// Control-plane facade: the memsim.Env surface plus the tenant and
// lifecycle extensions, all lock-free per the contract above. With one
// shard every method delegates untranslated.
// ---------------------------------------------------------------------

// Config returns the original (pre-split) configuration.
func (sm *ShardedMachine) Config() Config { return sm.cfg }

// NumPages returns the size of the global page space.
func (sm *ShardedMachine) NumPages() int { return sm.numPages }

// PageSize returns the page size in bytes.
func (sm *ShardedMachine) PageSize() int64 { return sm.cfg.PageSize }

// Now returns the machine's virtual time: the maximum shard clock (the
// makespan view — every shard has reached at least this point when the
// shards run in parallel).
func (sm *ShardedMachine) Now() int64 {
	now := sm.shards[0].Now()
	for _, m := range sm.shards[1:] {
		if t := m.Now(); t > now {
			now = t
		}
	}
	return now
}

// Counters returns the sum of all shard counters.
func (sm *ShardedMachine) Counters() Counters {
	var c Counters
	for _, m := range sm.shards {
		c.add(m.Counters())
	}
	return c
}

// add accumulates o into c field-by-field.
func (c *Counters) add(o Counters) {
	c.FastAccesses += o.FastAccesses
	c.SlowAccesses += o.SlowAccesses
	c.CacheHits += o.CacheHits
	c.Migrations += o.Migrations
	c.Promotions += o.Promotions
	c.Demotions += o.Demotions
	c.MigratedBytes += o.MigratedBytes
	c.Faults += o.Faults
	c.MigrationFailures += o.MigrationFailures
	c.AllocFast += o.AllocFast
	c.AllocSlow += o.AllocSlow
	c.Freed += o.Freed
	c.ShadowDiscards += o.ShadowDiscards
	c.ShadowInvalidates += o.ShadowInvalidates
	c.ShadowReclaims += o.ShadowReclaims
	c.MigrationStallNs += o.MigrationStallNs
}

// BackgroundNs returns the summed background CPU time of all shards.
func (sm *ShardedMachine) BackgroundNs() float64 {
	var ns float64
	for _, m := range sm.shards {
		ns += m.BackgroundNs()
	}
	return ns
}

// AccessLatencyData merges the shards' latency histograms. Every shard
// shares one cost model, so the bucket bounds are identical and the
// cumulative counts sum elementwise.
func (sm *ShardedMachine) AccessLatencyData() telemetry.HistogramData {
	d := sm.shards[0].AccessLatencyData()
	for _, m := range sm.shards[1:] {
		o := m.AccessLatencyData()
		for i := range d.Counts {
			d.Counts[i] += o.Counts[i]
		}
		d.Sum += o.Sum
	}
	return d
}

// TierOf returns the tier of global page p.
func (sm *ShardedMachine) TierOf(p PageID) TierID {
	return sm.shards[sm.ShardOf(p)].TierOf(p >> sm.log2)
}

// Allocated reports whether global page p has been first-touched.
func (sm *ShardedMachine) Allocated(p PageID) bool {
	return sm.shards[sm.ShardOf(p)].Allocated(p >> sm.log2)
}

// UsedPages returns resident pages in tier t across all shards.
func (sm *ShardedMachine) UsedPages(t TierID) int {
	n := 0
	for _, m := range sm.shards {
		n += m.UsedPages(t)
	}
	return n
}

// FreePages returns the remaining tier-t capacity across all shards.
// A policy can see aggregate free space that no single shard has;
// local MovePage then fails with ErrTierFull and the caller escalates
// to BorrowMovePage (or a control-plane rebalance).
func (sm *ShardedMachine) FreePages(t TierID) int {
	n := 0
	for _, m := range sm.shards {
		n += m.FreePages(t)
	}
	return n
}

// CapacityPages returns tier t's total capacity across all shards.
func (sm *ShardedMachine) CapacityPages(t TierID) int {
	n := 0
	for _, m := range sm.shards {
		n += m.CapacityPages(t)
	}
	return n
}

// MovePage migrates global page p within its own shard on the
// background path. It does not borrow capacity: a shard-full result
// surfaces as ErrTierFull even when other shards have room, so the
// single-threaded policy surface stays hook-reentrant (see the
// concurrency contract). BorrowMovePage is the cross-shard escalation.
func (sm *ShardedMachine) MovePage(p PageID, dst TierID) error {
	return sm.shards[sm.ShardOf(p)].MovePage(p>>sm.log2, dst)
}

// MovePageSync migrates global page p within its shard on the
// application's critical path.
func (sm *ShardedMachine) MovePageSync(p PageID, dst TierID) error {
	return sm.shards[sm.ShardOf(p)].MovePageSync(p>>sm.log2, dst)
}

// ChargeBackground adds non-application CPU time to shard 0's
// overhead accounting (BackgroundNs sums shards, so attribution to a
// specific shard is immaterial).
func (sm *ShardedMachine) ChargeBackground(ns float64) {
	sm.shards[0].ChargeBackground(ns)
}

// TestAndClearAccessed reads and clears global page p's accessed bit.
func (sm *ShardedMachine) TestAndClearAccessed(p PageID) bool {
	return sm.shards[sm.ShardOf(p)].TestAndClearAccessed(p >> sm.log2)
}

// Accessed returns global page p's accessed bit without clearing it.
func (sm *ShardedMachine) Accessed(p PageID) bool {
	return sm.shards[sm.ShardOf(p)].Accessed(p >> sm.log2)
}

// Dirty reports whether global page p has been written.
func (sm *ShardedMachine) Dirty(p PageID) bool {
	return sm.shards[sm.ShardOf(p)].Dirty(p >> sm.log2)
}

// PoisonPage arms global page p for a NUMA-hint fault.
func (sm *ShardedMachine) PoisonPage(p PageID) {
	sm.shards[sm.ShardOf(p)].PoisonPage(p >> sm.log2)
}

// PoisonRange arms n pages starting at global page start, wrapping at
// the end of the global space, and returns the page after the last
// armed one — Machine.PoisonRange semantics over the global space.
func (sm *ShardedMachine) PoisonRange(start PageID, n int) PageID {
	p := uint64(start)
	for i := 0; i < n; i++ {
		sm.PoisonPage(PageID(p % uint64(sm.numPages)))
		p++
	}
	return PageID(p % uint64(sm.numPages))
}

// shardSampler forwards a shard's miss stream to a global-page-space
// sampler. The timestamp is the shard's own clock (per-shard clocks
// are the deal sharding strikes; each shard's stream stays monotonic).
type shardSampler struct {
	s     Sampler
	shard PageID
	log2  uint
}

func (w shardSampler) OnMiss(p PageID, t TierID, write bool, now int64) {
	w.s.OnMiss(p<<w.log2|w.shard, t, write, now)
}

// SetSampler installs s on every shard, translating shard-local page
// IDs to global ones (nil removes). A sampler installed this way must
// tolerate calls from multiple goroutines if the data plane is driven
// concurrently; per-shard control planes instead install one sampler
// per shard via Shard(i).
func (sm *ShardedMachine) SetSampler(s Sampler) {
	for i, m := range sm.shards {
		if s == nil {
			m.SetSampler(nil)
		} else if sm.nshards == 1 {
			m.SetSampler(s)
		} else {
			m.SetSampler(shardSampler{s, PageID(i), sm.log2})
		}
	}
}

// shardFaults forwards a shard's NUMA-hint faults with global page IDs.
type shardFaults struct {
	h     FaultHandler
	shard PageID
	log2  uint
}

func (w shardFaults) OnFault(p PageID, t TierID, write bool, now int64) {
	w.h.OnFault(p<<w.log2|w.shard, t, write, now)
}

// SetFaultHandler installs h on every shard with global page IDs (nil
// removes); the same concurrency caveat as SetSampler applies.
func (sm *ShardedMachine) SetFaultHandler(h FaultHandler) {
	for i, m := range sm.shards {
		if h == nil {
			m.SetFaultHandler(nil)
		} else if sm.nshards == 1 {
			m.SetFaultHandler(h)
		} else {
			m.SetFaultHandler(shardFaults{h, PageID(i), sm.log2})
		}
	}
}

// SetAllocHook installs h on every shard with global page IDs (nil
// removes); the same concurrency caveat as SetSampler applies.
func (sm *ShardedMachine) SetAllocHook(h func(PageID, TierID)) {
	for i, m := range sm.shards {
		switch {
		case h == nil:
			m.SetAllocHook(nil)
		case sm.nshards == 1:
			m.SetAllocHook(h)
		default:
			shard := PageID(i)
			m.SetAllocHook(func(p PageID, t TierID) {
				h(p<<sm.log2|shard, t)
			})
		}
	}
}

// SetPageTrace installs a page-lifecycle trace on every shard (nil
// removes). With more than one shard the journaled page IDs are
// shard-local — the trace rings are per-shard diagnostics, not a
// global-address journal; DESIGN.md §12 notes the caveat.
func (sm *ShardedMachine) SetPageTrace(pt *telemetry.PageTrace) {
	for _, m := range sm.shards {
		m.SetPageTrace(pt)
	}
}

// SetFaultInjector installs fi on every shard's migration path (nil
// removes). Injector schedules are keyed by per-shard clocks.
func (sm *ShardedMachine) SetFaultInjector(fi FaultInjector) {
	for _, m := range sm.shards {
		m.SetFaultInjector(fi)
	}
}

// FaultInjector returns the installed injector, or nil.
func (sm *ShardedMachine) FaultInjector() FaultInjector {
	return sm.shards[0].FaultInjector()
}

// EnableTenants enables n-tenant accounting on every shard. Machine's
// contract carries over: call before the first allocation, at most
// once.
func (sm *ShardedMachine) EnableTenants(n int) {
	for _, m := range sm.shards {
		m.EnableTenants(n)
	}
}

// NumTenants returns the tenant-table size (0 when tenancy is off).
func (sm *ShardedMachine) NumTenants() int { return sm.shards[0].NumTenants() }

// SetCurrentTenant sets the accounting tenant on every shard — the
// single-threaded facade path; concurrent batch replay uses
// AccessBatchTenant, which scopes the setting per shard lock.
func (sm *ShardedMachine) SetCurrentTenant(t TenantID) {
	for _, m := range sm.shards {
		m.SetCurrentTenant(t)
	}
}

// SetFastQuota splits tenant t's fast-tier quota across shards the
// same way tier capacity splits (even, remainder to low shards); 0
// clears the quota everywhere. Tenant pages hash across shards like
// everything else, so a proportional split enforces the aggregate
// quota to within the per-shard rounding.
func (sm *ShardedMachine) SetFastQuota(t TenantID, pages int) {
	for s, m := range sm.shards {
		if pages <= 0 {
			m.SetFastQuota(t, 0)
			continue
		}
		q := pages/sm.nshards + extra(pages, sm.nshards, s)
		if q < 1 {
			q = 1 // a zero share would mean "unlimited" on that shard
		}
		m.SetFastQuota(t, q)
	}
}

// TenantUsedPages returns tenant t's resident pages in tier `tier`
// summed across shards.
func (sm *ShardedMachine) TenantUsedPages(t TenantID, tier TierID) int {
	n := 0
	for _, m := range sm.shards {
		n += m.TenantUsedPages(t, tier)
	}
	return n
}

// TenantCounters returns tenant t's counters summed across shards.
func (sm *ShardedMachine) TenantCounters(t TenantID) TenantCounters {
	var c TenantCounters
	for _, m := range sm.shards {
		o := m.TenantCounters(t)
		c.FastAccesses += o.FastAccesses
		c.SlowAccesses += o.SlowAccesses
		c.CacheHits += o.CacheHits
		c.AllocFast += o.AllocFast
		c.AllocSlow += o.AllocSlow
		c.Promotions += o.Promotions
		c.Demotions += o.Demotions
		c.Faults += o.Faults
		c.AppNs += o.AppNs
	}
	return c
}

// OwnerOf returns the tenant owning global page p.
func (sm *ShardedMachine) OwnerOf(p PageID) TenantID {
	return sm.shards[sm.ShardOf(p)].OwnerOf(p >> sm.log2)
}

// FreePage unallocates global page p (Machine.FreePage semantics).
func (sm *ShardedMachine) FreePage(p PageID) error {
	return sm.shards[sm.ShardOf(p)].FreePage(p >> sm.log2)
}

// CheckInvariants verifies every shard's page accounting plus the
// cross-shard conservation law: capacity transfers move capacity
// between shards but the machine-wide per-tier totals must equal the
// constructed totals on every path (commit and rollback alike). Like
// Machine.CheckInvariants it reads without locking — quiesce first
// (Quiesce) when access goroutines are running.
func (sm *ShardedMachine) CheckInvariants() error {
	for s, m := range sm.shards {
		if err := m.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	for t := range sm.origCap {
		total := 0
		for _, m := range sm.shards {
			total += m.CapacityPages(TierID(t))
		}
		if total != sm.origCap[t] {
			return fmt.Errorf("memsim: %s capacity not conserved: %d != %d",
				sm.shards[0].TierName(TierID(t)), total, sm.origCap[t])
		}
	}
	return nil
}

// Tiers returns the number of memory tiers.
func (sm *ShardedMachine) Tiers() int { return sm.shards[0].Tiers() }

// NumBoundaries returns the number of adjacent tier pairs.
func (sm *ShardedMachine) NumBoundaries() int { return sm.shards[0].NumBoundaries() }

// TierName returns tier t's label (see Machine.TierName).
func (sm *ShardedMachine) TierName(t TierID) string { return sm.shards[0].TierName(t) }

// TierSpecAt returns tier t's spec with the machine-wide capacity.
func (sm *ShardedMachine) TierSpecAt(t TierID) TierSpec {
	s := sm.shards[0].TierSpecAt(t)
	s.CapacityPages = sm.CapacityPages(t)
	return s
}

// TierAccesses returns cache-missing accesses served by tier t across
// all shards.
func (sm *ShardedMachine) TierAccesses(t TierID) uint64 {
	var n uint64
	for _, m := range sm.shards {
		n += m.TierAccesses(t)
	}
	return n
}

// ShadowPages returns shadow frames held in tier t across all shards.
func (sm *ShardedMachine) ShadowPages(t TierID) int {
	n := 0
	for _, m := range sm.shards {
		n += m.ShadowPages(t)
	}
	return n
}

// ResidentPages returns pages resident in tier t across all shards.
func (sm *ShardedMachine) ResidentPages(t TierID) int {
	n := 0
	for _, m := range sm.shards {
		n += m.ResidentPages(t)
	}
	return n
}

// BoundaryStatsAt returns boundary b's migration counters summed
// across shards.
func (sm *ShardedMachine) BoundaryStatsAt(b int) BoundaryStats {
	var s BoundaryStats
	for _, m := range sm.shards {
		o := m.BoundaryStatsAt(b)
		s.Promotions += o.Promotions
		s.Demotions += o.Demotions
		s.ShadowDiscards += o.ShadowDiscards
	}
	return s
}

var _ Env = (*ShardedMachine)(nil)
