package memsim

import "fmt"

// TenantID identifies one tenant — the simulator's memory-cgroup
// analogue. Tenant 0 is the implicit owner of everything on machines
// that never call EnableTenants.
type TenantID uint16

// DefaultTenant is the tenant that owns all pages on a single-tenant
// machine.
const DefaultTenant TenantID = 0

// TenantCounters aggregates one tenant's observable activity — the
// per-memcg slice of Counters. AppNs additionally accumulates the
// application time the machine charged while the tenant was current,
// which is the per-tenant throughput denominator (accesses / AppNs).
type TenantCounters struct {
	FastAccesses uint64
	SlowAccesses uint64
	CacheHits    uint64
	AllocFast    uint64
	AllocSlow    uint64
	Promotions   uint64
	Demotions    uint64
	Faults       uint64
	AppNs        float64
}

// DRAMRatio returns the tenant's fast-tier share of cache-missing
// accesses, in [0,1]; 0 when there were none.
func (c TenantCounters) DRAMRatio() float64 {
	tot := c.FastAccesses + c.SlowAccesses
	if tot == 0 {
		return 0
	}
	return float64(c.FastAccesses) / float64(tot)
}

// tenantState holds all multi-tenant bookkeeping behind one nilable
// pointer, so single-tenant machines pay exactly one predictable
// branch per accounting site (the zero-cost requirement pinned by the
// AccessBatch benchmark).
type tenantState struct {
	// current is the tenant charged for accesses and first touches —
	// the "faulting task's cgroup". The runtime sets it before each
	// tenant's batch.
	current TenantID
	// owner tags every page with the tenant that first touched it.
	owner []TenantID
	// used counts resident pages per tenant per tier (the RSS split).
	used [][NumTiers]int
	// quota caps each tenant's fast-tier pages; 0 means unlimited.
	// Enforced on first touch and on promotion, never retroactively: a
	// quota lowered below current usage only gates new growth.
	quota []int
	ctr   []TenantCounters
}

// ErrTenantQuota is returned by MovePage when the page owner's
// fast-tier quota is exhausted. It wraps ErrTierFull so policies that
// stop their migration period on a full tier (errors.Is(err,
// ErrTierFull)) handle quota exhaustion the same way.
var ErrTenantQuota = fmt.Errorf("memsim: tenant fast-tier quota exhausted: %w", ErrTierFull)

// EnableTenants switches the machine into multi-tenant accounting with
// n tenants (IDs 0..n-1). It must be called on a fresh machine, before
// any page is allocated, and at most once; violations panic (tenancy
// is wired by the control plane at construction, so a late call is a
// programming error).
func (m *Machine) EnableTenants(n int) {
	if n < 1 {
		panic("memsim: EnableTenants needs at least one tenant")
	}
	if m.ts != nil {
		panic("memsim: tenants already enabled")
	}
	if m.ctr.AllocFast+m.ctr.AllocSlow != 0 {
		panic("memsim: EnableTenants after first allocation")
	}
	if m.nt != 2 || m.sh != nil {
		// Tenant RSS accounting is a fixed two-tier split and quotas
		// gate the fast tier only; composing tenancy with tier chains
		// or non-exclusive shadows is future work (see DESIGN.md §13).
		panic("memsim: tenancy requires the two-tier exclusive machine")
	}
	m.ts = &tenantState{
		owner: make([]TenantID, m.numPages),
		used:  make([][NumTiers]int, n),
		quota: make([]int, n),
		ctr:   make([]TenantCounters, n),
	}
}

// NumTenants returns the number of tenants, or 1 when multi-tenant
// accounting is disabled.
func (m *Machine) NumTenants() int {
	if m.ts == nil {
		return 1
	}
	return len(m.ts.used)
}

// SetCurrentTenant sets the tenant charged for subsequent accesses and
// first-touch allocations — the analogue of which cgroup's task is on
// CPU. A no-op on single-tenant machines.
func (m *Machine) SetCurrentTenant(t TenantID) {
	if m.ts == nil {
		return
	}
	if int(t) >= len(m.ts.used) {
		panic(fmt.Sprintf("memsim: SetCurrentTenant(%d) with %d tenants", t, len(m.ts.used)))
	}
	m.ts.current = t
}

// CurrentTenant returns the tenant currently charged for accesses.
func (m *Machine) CurrentTenant() TenantID {
	if m.ts == nil {
		return DefaultTenant
	}
	return m.ts.current
}

// OwnerOf returns the tenant that owns page p (first-touch ownership).
// DefaultTenant on single-tenant machines and for untouched pages.
func (m *Machine) OwnerOf(p PageID) TenantID {
	if m.ts == nil {
		return DefaultTenant
	}
	return m.ts.owner[p]
}

// SetFastQuota caps tenant t's fast-tier residency at pages (0 =
// unlimited). The arbiter adjusts quotas at run time; shrinking below
// current usage is legal and only gates new allocations/promotions.
func (m *Machine) SetFastQuota(t TenantID, pages int) {
	if m.ts == nil {
		panic("memsim: SetFastQuota without EnableTenants")
	}
	if pages < 0 {
		pages = 0
	}
	m.ts.quota[t] = pages
}

// FastQuota returns tenant t's fast-tier quota in pages (0 =
// unlimited).
func (m *Machine) FastQuota(t TenantID) int {
	if m.ts == nil {
		return 0
	}
	return m.ts.quota[t]
}

// TenantUsedPages returns tenant t's resident pages in the given tier.
// On single-tenant machines tenant 0 reports the machine totals.
func (m *Machine) TenantUsedPages(t TenantID, tier TierID) int {
	if m.ts == nil {
		if t == DefaultTenant {
			return m.used[tier]
		}
		return 0
	}
	return m.ts.used[t][tier]
}

// TenantCounters returns a snapshot of tenant t's cumulative counters.
// On single-tenant machines tenant 0 reports the machine-wide view.
func (m *Machine) TenantCounters(t TenantID) TenantCounters {
	if m.ts == nil {
		if t != DefaultTenant {
			return TenantCounters{}
		}
		c := m.ctr
		return TenantCounters{
			FastAccesses: c.FastAccesses,
			SlowAccesses: c.SlowAccesses,
			CacheHits:    c.CacheHits,
			AllocFast:    c.AllocFast,
			AllocSlow:    c.AllocSlow,
			Promotions:   c.Promotions,
			Demotions:    c.Demotions,
			Faults:       c.Faults,
			AppNs:        float64(m.clock),
		}
	}
	return m.ts.ctr[t]
}
