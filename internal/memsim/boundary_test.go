package memsim

import (
	"errors"
	"testing"

	"artmem/internal/tier"
)

type recSampler struct {
	events []struct {
		p     PageID
		t     TierID
		write bool
	}
}

func (r *recSampler) OnMiss(p PageID, t TierID, write bool, now int64) {
	r.events = append(r.events, struct {
		p     PageID
		t     TierID
		write bool
	}{p, t, write})
}

func boundaryFixture(t *testing.T) (*Machine, *BoundaryHub) {
	t.Helper()
	cfg := chainCfg(t, "DRAM:cap=4/CXL:cap=4,lat=180,bw=45/PM:cap=8", 12*4096, 4096)
	cfg.CacheLines = 0 // every access misses the LLC model and samples
	m := NewMachine(cfg)
	return m, NewBoundaryHub(m)
}

func TestBoundaryHubDemux(t *testing.T) {
	m, hub := boundaryFixture(t)
	if hub.NumBoundaries() != 2 {
		t.Fatalf("boundaries %d, want 2", hub.NumBoundaries())
	}
	s0, s1 := &recSampler{}, &recSampler{}
	hub.View(0).SetSampler(s0)
	hub.View(1).SetSampler(s1)
	for p := 0; p < 12; p++ {
		m.Access(uint64(p)*4096, false)
	}
	s0.events, s1.events = nil, nil

	// Tier 0 access: boundary 0 sees it as Fast; boundary 1 is blind.
	m.Access(0, false)
	if len(s0.events) != 1 || s0.events[0].t != Fast {
		t.Fatalf("tier-0 access at boundary 0: %+v", s0.events)
	}
	if len(s1.events) != 0 {
		t.Fatalf("tier-0 access leaked to boundary 1: %+v", s1.events)
	}
	s0.events = nil

	// Tier 1 access: slow side of boundary 0, fast side of boundary 1.
	m.Access(4*4096, true)
	if len(s0.events) != 1 || s0.events[0].t != Slow || !s0.events[0].write {
		t.Fatalf("tier-1 access at boundary 0: %+v", s0.events)
	}
	if len(s1.events) != 1 || s1.events[0].t != Fast {
		t.Fatalf("tier-1 access at boundary 1: %+v", s1.events)
	}
	s0.events, s1.events = nil, nil

	// Tier 2 access: only boundary 1 sees it, as Slow.
	m.Access(9*4096, false)
	if len(s0.events) != 0 {
		t.Fatalf("tier-2 access leaked to boundary 0: %+v", s0.events)
	}
	if len(s1.events) != 1 || s1.events[0].t != Slow {
		t.Fatalf("tier-2 access at boundary 1: %+v", s1.events)
	}
}

func TestBoundaryViewConfigAndCounters(t *testing.T) {
	m, hub := boundaryFixture(t)
	for p := 0; p < 12; p++ {
		m.Access(uint64(p)*4096, false)
	}
	v1 := hub.View(1) // CXL|PM
	cfg := v1.Config()
	if cfg.Fast.LatencyNs != 180 || cfg.Slow.LatencyNs != SlowLatencyNs {
		t.Fatalf("view config latencies %g/%g", cfg.Fast.LatencyNs, cfg.Slow.LatencyNs)
	}
	if cfg.Fast.CapacityPages != 4 || cfg.Slow.CapacityPages != 8 {
		t.Fatalf("view config capacities %d/%d", cfg.Fast.CapacityPages, cfg.Slow.CapacityPages)
	}
	if cfg.Chain != nil || cfg.NonExclusive {
		t.Fatal("view config should be a plain two-tier config")
	}
	// Tier mapping: CXL and above are Fast, PM is Slow.
	if v1.TierOf(m.PageOf(0)) != Fast { // DRAM page: above the boundary
		t.Fatal("DRAM page should read as Fast at boundary 1")
	}
	if v1.TierOf(m.PageOf(9*4096)) != Slow {
		t.Fatal("PM page should read as Slow at boundary 1")
	}
	if v1.UsedPages(Fast) != 4 || v1.UsedPages(Slow) != 4 {
		t.Fatalf("view used %d/%d", v1.UsedPages(Fast), v1.UsedPages(Slow))
	}
	if v1.CapacityPages(Slow) != 8 || v1.FreePages(Slow) != 4 {
		t.Fatalf("view slow cap/free %d/%d", v1.CapacityPages(Slow), v1.FreePages(Slow))
	}

	// A PM→CXL move via the view is a promotion attributed to boundary 1
	// and visible in the view's counters.
	if err := m.FreePage(m.PageOf(5 * 4096)); err != nil {
		t.Fatal(err)
	}
	if err := v1.MovePage(m.PageOf(9*4096), Fast); err != nil {
		t.Fatal(err)
	}
	c := v1.Counters()
	if c.Promotions != 1 || c.Migrations != 1 || c.MigratedBytes != 4096 {
		t.Fatalf("view counters after promotion: %+v", c)
	}
	if c0 := hub.View(0).Counters(); c0.Promotions != 0 {
		t.Fatalf("boundary 0 saw boundary 1's promotion: %+v", c0)
	}
	// Per-tier access split: the view's fast accesses are CXL's.
	if c.FastAccesses != m.TierAccesses(1) || c.SlowAccesses != m.TierAccesses(2) {
		t.Fatalf("view access split %d/%d", c.FastAccesses, c.SlowAccesses)
	}
}

func TestBoundaryViewMoveGuards(t *testing.T) {
	m, hub := boundaryFixture(t)
	for p := 0; p < 12; p++ {
		m.Access(uint64(p)*4096, false)
	}
	v0, v1 := hub.View(0), hub.View(1)
	dramPage := m.PageOf(0)
	pmPage := m.PageOf(9 * 4096)

	// Boundary 0 cannot see a PM page at all: stale candidate.
	if err := v0.MovePage(pmPage, Fast); !errors.Is(err, ErrNotInBoundary) {
		t.Fatalf("PM page at boundary 0: %v, want ErrNotInBoundary", err)
	}
	if errors.Is(ErrNotInBoundary, ErrTierFull) {
		t.Fatal("ErrNotInBoundary must not read as a full tier")
	}
	// Promoting a page already on the fast side is a no-op, not an error
	// (mirrors Machine.MovePage onto the current tier).
	if err := v0.MovePage(dramPage, Fast); err != nil {
		t.Fatalf("no-op promotion: %v", err)
	}
	// A DRAM page is "Fast" to boundary 1 as well; demoting it through
	// boundary 1 would skip CXL, so the view refuses it.
	if err := v1.MovePage(dramPage, Slow); !errors.Is(err, ErrNotInBoundary) {
		t.Fatalf("DRAM page demoted via boundary 1: %v, want ErrNotInBoundary", err)
	}
	if m.TierOf(dramPage) != 0 {
		t.Fatal("guarded moves must not relocate the page")
	}
}

func TestBoundaryBudgets(t *testing.T) {
	m, hub := boundaryFixture(t)
	for p := 0; p < 12; p++ {
		m.Access(uint64(p)*4096, false)
	}
	b := tier.NewBudgets(hub.NumBoundaries(), 0)
	b.SetLimit(1, 2) // meter boundary 1 only
	b.Reset()
	hub.SetBudgets(b)

	v1 := hub.View(1)
	// Two demotions CXL→PM fit the budget; the third trips it.
	if err := v1.MovePage(m.PageOf(4*4096), Slow); err != nil {
		t.Fatal(err)
	}
	if err := v1.MovePage(m.PageOf(5*4096), Slow); err != nil {
		t.Fatal(err)
	}
	err := v1.MovePage(m.PageOf(6*4096), Slow)
	if !errors.Is(err, ErrBoundaryBudget) {
		t.Fatalf("third move: %v, want ErrBoundaryBudget", err)
	}
	if !errors.Is(err, ErrTierFull) {
		t.Fatal("budget exhaustion must read as ErrTierFull to end migration periods")
	}
	// Boundary 0 is unmetered.
	if err := v1.MovePage(m.PageOf(0), Slow); !errors.Is(err, ErrNotInBoundary) {
		t.Fatal("sanity: DRAM page is not boundary 1's")
	}
	if err := hub.View(0).MovePage(m.PageOf(0), Slow); err != nil {
		t.Fatalf("unmetered boundary 0: %v", err)
	}
	// Refusals must not burn budget: remaining is 0 only from the two
	// successful takes.
	if got := b.Remaining(1); got != 0 {
		t.Fatalf("boundary 1 remaining %d, want 0", got)
	}
	if got := b.Remaining(0); got != -1 {
		t.Fatalf("boundary 0 remaining %d, want unmetered (-1)", got)
	}
	// A period reset restores the limit.
	b.Reset()
	if err := v1.MovePage(m.PageOf(6*4096), Slow); err != nil {
		t.Fatalf("post-reset move: %v", err)
	}
}

func TestBoundaryViewOnLegacyMachine(t *testing.T) {
	// A legacy two-tier machine exposes exactly one boundary whose view
	// behaves like the machine itself.
	m := NewMachine(DefaultConfig(64*4096, 16*4096, 4096))
	hub := NewBoundaryHub(m)
	if hub.NumBoundaries() != 1 {
		t.Fatalf("legacy machine boundaries %d, want 1", hub.NumBoundaries())
	}
	v := hub.View(0)
	for p := 0; p < 64; p++ {
		m.Access(uint64(p)*4096, false)
	}
	if v.UsedPages(Fast) != m.UsedPages(Fast) || v.UsedPages(Slow) != m.UsedPages(Slow) {
		t.Fatal("legacy view used-pages mismatch")
	}
	p := m.PageOf(40 * 4096)
	if m.TierOf(p) != Slow {
		t.Fatal("expected a slow page")
	}
	if err := m.MovePage(m.PageOf(0), Slow); err != nil {
		t.Fatal(err)
	}
	if err := v.MovePage(p, Fast); err != nil {
		t.Fatal(err)
	}
	if got := v.Counters().Promotions; got != m.Counters().Promotions {
		t.Fatalf("legacy view promotions %d != machine %d", got, m.Counters().Promotions)
	}
}
