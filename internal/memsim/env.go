package memsim

import "artmem/internal/telemetry"

// Env is the machine surface a tiering policy programs against: page
// queries, migration, hook installation, and cost accounting. A policy
// written against Env runs unchanged on a whole *Machine (the
// single-tenant case) or on a tenant-scoped view of one
// (internal/tenancy.TenantView), which is how per-tenant agents are
// built without the policy knowing tenancy exists. The method
// contracts are those documented on Machine; a tenant view narrows
// them to the tenant's pages, quota, and signal streams.
type Env interface {
	// Config returns the machine configuration (cost model, page size).
	Config() Config
	// NumPages returns the size of the page-indexable address space.
	// Views report the machine's full space: page IDs are global, and
	// per-page policy state is indexed by them.
	NumPages() int
	// PageSize returns the page size in bytes.
	PageSize() int64
	// Now returns the virtual clock in nanoseconds.
	Now() int64
	// Counters returns cumulative activity counters; a tenant view
	// reports the tenant's share.
	Counters() Counters

	// TierOf, Allocated, UsedPages, FreePages and CapacityPages expose
	// residency and capacity. A tenant view scopes UsedPages to the
	// tenant's resident pages and Fast-tier Free/CapacityPages to its
	// arbiter quota.
	TierOf(p PageID) TierID
	Allocated(p PageID) bool
	UsedPages(t TierID) int
	FreePages(t TierID) int
	CapacityPages(t TierID) int

	// MovePage migrates on the background path, MovePageSync on the
	// application's critical path. Tenant views additionally pass
	// promotions through the arbiter's admission control; denials
	// surface as errors wrapping ErrTierFull.
	MovePage(p PageID, dst TierID) error
	MovePageSync(p PageID, dst TierID) error

	// ChargeBackground adds non-application CPU time to the overhead
	// accounting.
	ChargeBackground(ns float64)
	// TestAndClearAccessed reads and clears a page's accessed bit.
	TestAndClearAccessed(p PageID) bool
	// PoisonPage and PoisonRange arm NUMA-hint faults; a tenant view
	// arms only pages the tenant owns.
	PoisonPage(p PageID)
	PoisonRange(start PageID, n int) PageID

	// SetSampler, SetFaultHandler and SetAllocHook install the policy's
	// signal hooks; a tenant view registers them with the tenancy demux
	// so the policy sees only its tenant's events.
	SetSampler(s Sampler)
	SetFaultHandler(h FaultHandler)
	SetAllocHook(h func(PageID, TierID))
	// SetPageTrace installs a page-lifecycle trace. Page tracing is a
	// machine-wide facility; tenant views ignore it.
	SetPageTrace(pt *telemetry.PageTrace)
	// FaultInjector returns the machine's chaos injector, or nil.
	FaultInjector() FaultInjector
}

var _ Env = (*Machine)(nil)
