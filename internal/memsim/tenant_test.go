package memsim

import (
	"errors"
	"testing"
)

// touch accesses n distinct pages starting at page base for the current
// tenant.
func touch(m *Machine, base, n int) {
	ps := m.PageSize()
	for i := 0; i < n; i++ {
		m.Access(uint64(int64(base+i)*ps), false)
	}
}

func TestTenantFirstTouchOwnershipAndRSS(t *testing.T) {
	m := NewMachine(testConfig(0))
	m.EnableTenants(2)

	m.SetCurrentTenant(0)
	touch(m, 0, 10)
	m.SetCurrentTenant(1)
	touch(m, 10, 10)

	for p := 0; p < 10; p++ {
		if got := m.OwnerOf(PageID(p)); got != 0 {
			t.Errorf("page %d owner = %d, want 0", p, got)
		}
	}
	for p := 10; p < 20; p++ {
		if got := m.OwnerOf(PageID(p)); got != 1 {
			t.Errorf("page %d owner = %d, want 1", p, got)
		}
	}

	// Per-tenant RSS must sum to the machine totals in every tier.
	for _, tier := range []TierID{Fast, Slow} {
		sum := m.TenantUsedPages(0, tier) + m.TenantUsedPages(1, tier)
		if sum != m.UsedPages(tier) {
			t.Errorf("%s: tenant pages sum to %d, machine has %d",
				tier, sum, m.UsedPages(tier))
		}
	}
	c0, c1 := m.TenantCounters(0), m.TenantCounters(1)
	if c0.AllocFast+c0.AllocSlow != 10 || c1.AllocFast+c1.AllocSlow != 10 {
		t.Errorf("alloc split = %d/%d, want 10/10",
			c0.AllocFast+c0.AllocSlow, c1.AllocFast+c1.AllocSlow)
	}
	mc := m.Counters()
	if c0.FastAccesses+c1.FastAccesses != mc.FastAccesses ||
		c0.SlowAccesses+c1.SlowAccesses != mc.SlowAccesses {
		t.Error("per-tenant access counters do not sum to machine counters")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTenantQuotaGatesFirstTouchNotResidency(t *testing.T) {
	m := NewMachine(testConfig(0)) // 16 fast pages
	m.EnableTenants(2)
	m.SetFastQuota(0, 4)

	// Tenant 0 touches 8 pages with a 4-page quota: the overflow must
	// spill to the slow tier even though the fast tier has room.
	m.SetCurrentTenant(0)
	touch(m, 0, 8)
	if got := m.TenantUsedPages(0, Fast); got != 4 {
		t.Errorf("tenant 0 fast pages = %d, want 4 (quota)", got)
	}
	if got := m.TenantUsedPages(0, Slow); got != 4 {
		t.Errorf("tenant 0 slow pages = %d, want 4 (spilled)", got)
	}
	// An unlimited tenant still fills the remaining fast pages.
	m.SetCurrentTenant(1)
	touch(m, 8, 14)
	if got := m.TenantUsedPages(1, Fast); got != 12 {
		t.Errorf("tenant 1 fast pages = %d, want 12", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTenantQuotaBlocksPromotionWithTierFullError(t *testing.T) {
	m := NewMachine(testConfig(0))
	m.EnableTenants(1)
	m.SetCurrentTenant(0)
	m.SetFastQuota(0, 4)
	touch(m, 0, 8) // 4 fast, 4 slow

	var slow PageID
	for p := 0; p < 8; p++ {
		if m.TierOf(PageID(p)) == Slow {
			slow = PageID(p)
			break
		}
	}
	err := m.MovePage(slow, Fast)
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("promotion over quota = %v, want ErrTenantQuota", err)
	}
	// Policies key their "stop promoting this period" path on
	// ErrTierFull; a quota denial must take the same branch.
	if !errors.Is(err, ErrTierFull) {
		t.Error("ErrTenantQuota does not wrap ErrTierFull")
	}

	// Raising the quota unblocks the promotion; demotions are never
	// quota-checked.
	m.SetFastQuota(0, 5)
	if err := m.MovePage(slow, Fast); err != nil {
		t.Fatalf("promotion under raised quota: %v", err)
	}
	if err := m.MovePage(slow, Slow); err != nil {
		t.Fatalf("demotion: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTenantQuotaShrinkOnlyGatesGrowth(t *testing.T) {
	m := NewMachine(testConfig(0))
	m.EnableTenants(1)
	m.SetCurrentTenant(0)
	touch(m, 0, 8) // 8 fast pages, no quota

	// Shrinking the quota below current residency is legal and must not
	// evict anything — it only gates new growth.
	m.SetFastQuota(0, 2)
	if got := m.TenantUsedPages(0, Fast); got != 8 {
		t.Errorf("fast pages after quota shrink = %d, want 8 (no eviction)", got)
	}
	touch(m, 8, 1)
	if got := m.TenantUsedPages(0, Slow); got != 1 {
		t.Errorf("new first touch over quota landed in fast, want slow")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSingleTenantPathUnchanged pins the zero-cost contract: a machine
// that never calls EnableTenants answers every tenant query from the
// machine-wide state, with tenant 0 as the implicit owner of all pages.
func TestSingleTenantPathUnchanged(t *testing.T) {
	m := NewMachine(testConfig(0))
	m.SetCurrentTenant(0) // no-op, must not panic
	touch(m, 0, 20)

	if n := m.NumTenants(); n != 1 {
		t.Errorf("NumTenants = %d, want 1", n)
	}
	if o := m.OwnerOf(3); o != DefaultTenant {
		t.Errorf("OwnerOf = %d, want DefaultTenant", o)
	}
	if got, want := m.TenantUsedPages(DefaultTenant, Fast), m.UsedPages(Fast); got != want {
		t.Errorf("tenant 0 fast pages = %d, want machine total %d", got, want)
	}
	tc, c := m.TenantCounters(DefaultTenant), m.Counters()
	if tc.FastAccesses != c.FastAccesses || tc.SlowAccesses != c.SlowAccesses {
		t.Error("tenant 0 counters do not mirror machine counters")
	}
	if tc := m.TenantCounters(5); tc != (TenantCounters{}) {
		t.Error("out-of-range tenant on single-tenant machine not zero")
	}
	if q := m.FastQuota(DefaultTenant); q != 0 {
		t.Errorf("single-tenant quota = %d, want 0 (unlimited)", q)
	}
}

func TestEnableTenantsMisusePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("zero tenants", func() { NewMachine(testConfig(0)).EnableTenants(0) })
	expectPanic("twice", func() {
		m := NewMachine(testConfig(0))
		m.EnableTenants(2)
		m.EnableTenants(2)
	})
	expectPanic("after allocation", func() {
		m := NewMachine(testConfig(0))
		m.Access(0, false)
		m.EnableTenants(2)
	})
	expectPanic("current tenant out of range", func() {
		m := NewMachine(testConfig(0))
		m.EnableTenants(2)
		m.SetCurrentTenant(2)
	})
}

func TestTenantDRAMRatio(t *testing.T) {
	if r := (TenantCounters{}).DRAMRatio(); r != 0 {
		t.Errorf("empty DRAMRatio = %v, want 0", r)
	}
	c := TenantCounters{FastAccesses: 3, SlowAccesses: 1}
	if r := c.DRAMRatio(); r != 0.75 {
		t.Errorf("DRAMRatio = %v, want 0.75", r)
	}
}
