package memsim

import (
	"errors"
	"fmt"

	"artmem/internal/telemetry"
	"artmem/internal/tier"
)

// Sampler receives a callback for every cache-missing memory access. The
// PEBS model in internal/pebs implements it; the sampler itself decides
// which events to record (sampling period, buffer space).
type Sampler interface {
	OnMiss(page PageID, tier TierID, write bool, now int64)
}

// FaultHandler receives NUMA-hint faults: the first access to a page that
// has been armed with PoisonPage/PoisonRange fires a fault, after which
// the page is disarmed until re-poisoned. Fault-driven policies
// (AutoNUMA, TPP, AutoTiering, Tiering-0.8) implement this.
type FaultHandler interface {
	OnFault(page PageID, tier TierID, write bool, now int64)
}

// FaultInjector lets a chaos harness perturb the machine's migration
// path. internal/faultinject implements it; the machine consults it (when
// installed) on every MovePage attempt. Both hooks receive the virtual
// clock so schedules are expressed in simulated time.
type FaultInjector interface {
	// FailMigration reports whether the current migration attempt should
	// fail transiently with ErrMigrationBusy.
	FailMigration(now int64) bool
	// BandwidthFactor returns a multiplier (>= 1) applied to the
	// migration transfer cost — bandwidth degradation under contention.
	BandwidthFactor(now int64) float64
}

// Counters aggregates the machine's observable activity. Access counters
// count cache-missing memory accesses (the events a real PMU would see).
type Counters struct {
	// FastAccesses and SlowAccesses count cache-missing accesses served
	// by each tier. Their ratio is the ground-truth DRAM access ratio
	// (the "perf" view in the paper's evaluation).
	FastAccesses uint64
	SlowAccesses uint64
	// CacheHits counts accesses absorbed by the CPU cache model.
	CacheHits uint64
	// Migrations counts pages moved between tiers; Promotions (slow→fast)
	// and Demotions (fast→slow) break it down. MigratedBytes is the total
	// volume moved.
	Migrations    uint64
	Promotions    uint64
	Demotions     uint64
	MigratedBytes uint64
	// Faults counts NUMA-hint faults taken.
	Faults uint64
	// MigrationFailures counts MovePage attempts that failed transiently
	// with ErrMigrationBusy (only injected faults produce these today).
	MigrationFailures uint64
	// Allocations counts first-touch page allocations, split by tier.
	AllocFast uint64
	AllocSlow uint64
	// Freed counts pages unallocated by FreePage (tenant reclamation);
	// a rolled-back free (RestorePage) is not counted.
	Freed uint64
	// Non-exclusive (Nomad-style) migration activity, all zero unless
	// Config.NonExclusive is set. ShadowDiscards counts demotions that
	// completed as free discards onto a clean shadow copy (counted in
	// Migrations/Demotions but transferring no bytes);
	// ShadowInvalidates counts shadows dropped because their page was
	// written; ShadowReclaims counts shadow frames evicted to make room
	// for an allocation or migration.
	ShadowDiscards    uint64
	ShadowInvalidates uint64
	ShadowReclaims    uint64
	// MigrationStallNs is the cumulative application-visible migration
	// interference in whole virtual nanoseconds: the interference share
	// of every migration's transfer cost, exactly the amount the
	// virtual clock advanced on the app's behalf during migrations.
	// The serving layer differences it to attribute migration stall
	// out of a batch's queue wait (telemetry spans).
	MigrationStallNs uint64
}

// DRAMRatio returns the fraction of cache-missing accesses served by the
// fast tier, in [0,1]; 0 when there were no accesses.
func (c Counters) DRAMRatio() float64 {
	tot := c.FastAccesses + c.SlowAccesses
	if tot == 0 {
		return 0
	}
	return float64(c.FastAccesses) / float64(tot)
}

// Machine is the simulated tiered memory system: the seed's fast/slow
// pair by default, or an arbitrary tier chain when Config.Chain is set
// (tier 0 fastest). It is not safe for concurrent use; the online
// runtime in internal/core serializes access to it.
type Machine struct {
	cfg       Config
	pageShift uint
	numPages  int
	nt        int // number of tiers (2 unless Config.Chain says otherwise)

	clock int64 // virtual time, ns

	// Per-page state, indexed by PageID.
	tier      []TierID
	allocated []bool
	accessed  []bool // page-table accessed ("young") bits
	dirty     []bool
	poisoned  []bool // armed for a NUMA-hint fault

	// Resolved per-tier specs (capacities concrete) and the tier labels
	// used in traces and telemetry ("fast"/"slow" on legacy machines,
	// chain names otherwise). All per-tier slices have length nt.
	specs  []TierSpec
	labels []string

	used []int // frames in use per tier: residents + shadow copies
	cap  []int

	// Cost model, precomputed per tier: latency + 64B transfer.
	readCostNs  []float64
	writeCostNs []float64
	// Migration transfer cost per page between tiers, ns.
	migCostNs [][]float64

	// sh tracks shadow copies under non-exclusive migration; nil unless
	// Config.NonExclusive, costing the exclusive mode one branch per
	// write and per migration.
	sh *tier.ShadowTable

	// Per-boundary migration counters (boundary b = edge between tiers
	// b and b+1), length nt-1. A move is attributed to the boundary on
	// its destination side: promotions to boundary dst, demotions to
	// boundary dst-1.
	bndProm []uint64
	bndDem  []uint64
	bndDisc []uint64

	cache cacheModel

	sampler   Sampler
	faults    FaultHandler
	injector  FaultInjector
	onAlloc   func(PageID, TierID)
	pageTrace *telemetry.PageTrace

	ctr Counters
	// Background (non-application) virtual CPU time consumed by
	// migrations, in ns. The interference share is already folded into
	// the clock.
	backgroundNs float64
	// fractional ns accumulator so sub-ns costs are not lost.
	clockFrac float64
	// fractional ns accumulator for Counters.MigrationStallNs.
	stallFrac float64

	// Access-latency accounting. Every access is served at one of five
	// constant model costs (cache hit, fast/slow × read/write), so the
	// latency distribution is fully described by five plain counters —
	// the same cost as the existing counter increments, which is what
	// keeps default telemetry off the hot path (see DESIGN.md §6). The
	// optional push histogram observes every access individually
	// (atomic ops per access) for callers that want one.
	latCounts  []uint64 // 1 + 2*nt classes: cache hit, then read/write per tier
	accessHist *telemetry.Histogram

	// ts holds multi-tenant accounting (owner tags, per-tenant RSS and
	// counters, fast-tier quotas); nil on single-tenant machines, where
	// every accounting site reduces to one branch. See tenant.go.
	ts *tenantState
}

// Latency classes indexing latCounts. Tier t's read class is
// latFastRead + 2*t, its write class one above; chains extend the
// ladder downward tier by tier.
const (
	latCacheHit = iota
	latFastRead
	latFastWrite
	latSlowRead
	latSlowWrite
)

// NewMachine builds a Machine from cfg. It panics on an invalid
// configuration (configs are built by the harness; an invalid one is a
// programming error, not an input error).
func NewMachine(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.NumPagesFor()
	m := &Machine{
		cfg:       cfg,
		numPages:  n,
		tier:      make([]TierID, n),
		allocated: make([]bool, n),
		accessed:  make([]bool, n),
		dirty:     make([]bool, n),
		poisoned:  make([]bool, n),
	}
	m.pageShift = uint(0)
	for int64(1)<<m.pageShift < cfg.PageSize {
		m.pageShift++
	}
	if int64(1)<<m.pageShift != cfg.PageSize {
		// Non-power-of-two page size: fall back to division in addrToPage.
		m.pageShift = 0
	}
	if cfg.Chain != nil {
		rs, err := cfg.Chain.Resolve(n)
		if err != nil {
			panic(err)
		}
		m.specs = make([]TierSpec, len(rs))
		m.labels = make([]string, len(rs))
		for i, r := range rs {
			m.specs[i] = TierSpec{
				Name:          r.Name,
				LatencyNs:     r.LatencyNs,
				ReadBWGBs:     r.ReadBWGBs,
				WriteBWGBs:    r.WriteBWGBs,
				CapacityPages: r.Pages,
			}
			m.labels[i] = r.Name
		}
	} else {
		m.specs = []TierSpec{cfg.Fast, cfg.Slow}
		m.labels = []string{"fast", "slow"}
	}
	m.nt = len(m.specs)
	m.used = make([]int, m.nt)
	m.cap = make([]int, m.nt)
	for t := range m.specs {
		m.cap[t] = m.specs[t].CapacityPages
	}
	if m.cap[m.nt-1] == 0 {
		// Unbounded last tier: size it so the footprint always fits.
		m.cap[m.nt-1] = n
	}
	m.readCostNs = make([]float64, m.nt)
	m.writeCostNs = make([]float64, m.nt)
	m.migCostNs = make([][]float64, m.nt)
	for t := 0; t < m.nt; t++ {
		m.readCostNs[t] = m.specs[t].LatencyNs + 64/gbsToBytesPerNs(m.specs[t].ReadBWGBs)
		m.writeCostNs[t] = m.specs[t].LatencyNs + 64/gbsToBytesPerNs(m.specs[t].WriteBWGBs)
	}
	for src := 0; src < m.nt; src++ {
		m.migCostNs[src] = make([]float64, m.nt)
		for dst := 0; dst < m.nt; dst++ {
			read := gbsToBytesPerNs(m.specs[src].ReadBWGBs)
			write := gbsToBytesPerNs(m.specs[dst].WriteBWGBs)
			bw := read
			if write < bw {
				bw = write
			}
			m.migCostNs[src][dst] = float64(cfg.PageSize)/bw + cfg.MigrationFixedNs
		}
	}
	m.latCounts = make([]uint64, 1+2*m.nt)
	m.bndProm = make([]uint64, m.nt-1)
	m.bndDem = make([]uint64, m.nt-1)
	m.bndDisc = make([]uint64, m.nt-1)
	if cfg.NonExclusive {
		m.sh = tier.NewShadowTable(n, m.nt)
	}
	if cfg.CacheLines > 0 {
		m.cache.init(cfg.CacheLines)
	}
	return m
}

func gbsToBytesPerNs(gbs float64) float64 {
	// 1 GB/s == 1 byte/ns (decimal GB). Table 2 uses GB/s.
	return gbs
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumPages returns the size of the simulated address space in pages.
func (m *Machine) NumPages() int { return m.numPages }

// PageSize returns the page size in bytes.
func (m *Machine) PageSize() int64 { return m.cfg.PageSize }

// Now returns the current virtual time in nanoseconds.
func (m *Machine) Now() int64 { return m.clock }

// BackgroundNs returns virtual CPU time consumed off the application's
// critical path (migration transfer time not charged as interference).
func (m *Machine) BackgroundNs() float64 { return m.backgroundNs }

// Counters returns a snapshot of the machine's cumulative counters.
func (m *Machine) Counters() Counters { return m.ctr }

// SetSampler installs the hardware-sampling hook (nil to remove).
func (m *Machine) SetSampler(s Sampler) { m.sampler = s }

// SetAccessHistogram installs a push histogram observed on every access
// with the access's model latency (nil to remove). This is the
// expensive instrumentation mode — a few atomic operations per access;
// the default telemetry wiring uses AccessLatencyData instead, which
// costs nothing on the access path. The overhead benchmark in
// telemetry_bench_test.go compares the two.
func (m *Machine) SetAccessHistogram(h *telemetry.Histogram) { m.accessHist = h }

// AccessLatencyData returns the access-latency distribution as
// histogram buckets. Every access is served at one of 1+2N constant
// model costs (cache hit, read/write per tier), so the exact
// distribution is reconstructed from per-class counters with zero
// hot-path overhead. Not safe to call concurrently with Access; the
// online runtime reads it under its lock.
func (m *Machine) AccessLatencyData() telemetry.HistogramData {
	type bin struct {
		cost float64
		n    uint64
	}
	bins := make([]bin, 0, 1+2*m.nt)
	bins = append(bins, bin{m.cfg.CacheHitNs, m.latCounts[latCacheHit]})
	for t := 0; t < m.nt; t++ {
		bins = append(bins, bin{m.readCostNs[t], m.latCounts[latFastRead+2*t]})
		bins = append(bins, bin{m.writeCostNs[t], m.latCounts[latFastWrite+2*t]})
	}
	// Sort by cost and merge classes that share one (e.g. symmetric
	// read/write bandwidth), keeping bucket bounds strictly increasing.
	for i := 1; i < len(bins); i++ {
		for j := i; j > 0 && bins[j].cost < bins[j-1].cost; j-- {
			bins[j], bins[j-1] = bins[j-1], bins[j]
		}
	}
	d := telemetry.HistogramData{}
	var acc uint64
	for _, b := range bins {
		acc += b.n
		d.Sum += b.cost * float64(b.n)
		if n := len(d.Bounds); n > 0 && d.Bounds[n-1] == b.cost {
			d.Counts[n-1] = acc
			continue
		}
		d.Bounds = append(d.Bounds, b.cost)
		d.Counts = append(d.Counts, acc)
	}
	// Trailing +Inf bucket: nothing lands above the largest model cost.
	d.Counts = append(d.Counts, acc)
	return d
}

// SetFaultHandler installs the NUMA-hint-fault hook (nil to remove).
func (m *Machine) SetFaultHandler(h FaultHandler) { m.faults = h }

// SetFaultInjector installs a fault injector consulted on the migration
// path (nil to remove). Install it before attaching a policy: policies
// that sample (ArtMem) wire the injector into their sampler at Attach.
func (m *Machine) SetFaultInjector(fi FaultInjector) { m.injector = fi }

// FaultInjector returns the installed fault injector, or nil.
func (m *Machine) FaultInjector() FaultInjector { return m.injector }

// SetAllocHook installs a callback invoked on every first-touch page
// allocation. Tiering policies use it to enroll new pages in their LRU
// structures.
func (m *Machine) SetAllocHook(h func(PageID, TierID)) { m.onAlloc = h }

// SetPageTrace installs a page-lifecycle trace (nil to remove). The
// machine journals first-touch placement and migration outcomes for
// pages in the trace's hash-selected subset.
func (m *Machine) SetPageTrace(pt *telemetry.PageTrace) { m.pageTrace = pt }

// PageOf returns the page containing byte address addr. Addresses beyond
// the footprint wrap (workload generators keep addresses in range; the
// wrap keeps a stray address from corrupting memory accounting).
func (m *Machine) PageOf(addr uint64) PageID {
	var p uint64
	if m.pageShift != 0 {
		p = addr >> m.pageShift
	} else {
		p = addr / uint64(m.cfg.PageSize)
	}
	if p >= uint64(m.numPages) {
		p %= uint64(m.numPages)
	}
	return PageID(p)
}

// TierOf returns the tier a page resides in. Unallocated pages report
// their future first-touch placement (Fast if it has room).
func (m *Machine) TierOf(p PageID) TierID { return m.tier[p] }

// Allocated reports whether the page has been first-touched.
func (m *Machine) Allocated(p PageID) bool { return m.allocated[p] }

// UsedPages returns the number of resident pages in tier t.
func (m *Machine) UsedPages(t TierID) int { return m.used[t] }

// FreePages returns the remaining capacity of tier t in pages.
func (m *Machine) FreePages(t TierID) int { return m.cap[t] - m.used[t] }

// CapacityPages returns the capacity of tier t in pages.
func (m *Machine) CapacityPages(t TierID) int { return m.cap[t] }

// Access simulates one memory access to byte address addr and advances
// the virtual clock. This is the simulation's hot path.
func (m *Machine) Access(addr uint64, write bool) {
	p := m.PageOf(addr)
	if !m.allocated[p] {
		m.allocate(p)
	}
	m.accessed[p] = true
	if write {
		m.dirty[p] = true
		if m.sh != nil {
			// Invalidate-on-write: the shadow copy is stale now. Its
			// frame frees immediately.
			if st, ok := m.sh.At(uint32(p)); ok {
				m.sh.Remove(uint32(p))
				m.used[st]--
				m.ctr.ShadowInvalidates++
			}
		}
	}
	if m.poisoned[p] {
		m.poisoned[p] = false
		m.ctr.Faults++
		if m.ts != nil {
			m.ts.ctr[m.ts.current].Faults++
		}
		m.advance(m.cfg.FaultCostNs)
		if m.faults != nil {
			m.faults.OnFault(p, m.tier[p], write, m.clock)
		}
	}
	if m.cache.lookup(addr >> 6) {
		m.ctr.CacheHits++
		m.latCounts[latCacheHit]++
		m.advance(m.cfg.CacheHitNs)
		m.accessHist.Observe(m.cfg.CacheHitNs)
		if m.ts != nil {
			tc := &m.ts.ctr[m.ts.current]
			tc.CacheHits++
			tc.AppNs += m.cfg.CacheHitNs
		}
		return
	}
	t := m.tier[p]
	var cost float64
	cls := latFastRead + 2*int(t)
	if write {
		cost = m.writeCostNs[t]
		cls++
	} else {
		cost = m.readCostNs[t]
	}
	m.latCounts[cls]++
	m.advance(cost)
	m.accessHist.Observe(cost)
	if t == Fast {
		m.ctr.FastAccesses++
	} else {
		m.ctr.SlowAccesses++
	}
	if m.ts != nil {
		tc := &m.ts.ctr[m.ts.current]
		if t == Fast {
			tc.FastAccesses++
		} else {
			tc.SlowAccesses++
		}
		tc.AppNs += cost
	}
	if m.sampler != nil {
		m.sampler.OnMiss(p, t, write, m.clock)
	}
}

// advance adds ns of application time, carrying fractional nanoseconds.
func (m *Machine) advance(ns float64) {
	m.clockFrac += ns
	whole := int64(m.clockFrac)
	m.clock += whole
	m.clockFrac -= float64(whole)
}

// AdvanceIdle advances the virtual clock by ns without any memory
// activity (compute-only phases in workload models).
func (m *Machine) AdvanceIdle(ns float64) {
	if ns > 0 {
		m.advance(ns)
	}
}

// allocate performs first-touch placement: fastest tier first,
// overflowing down the chain tier by tier (the paper's setup: "ArtMem
// first places pages in fast memory before overflowing to the slower
// tier", §6.2 — the same policy applies to every evaluated system).
// Under non-exclusive migration a tier full only of shadow frames still
// accepts allocations: shadows are reclaimable on demand.
func (m *Machine) allocate(p PageID) {
	last := TierID(m.nt - 1)
	t := last
	for i := TierID(0); i < last; i++ {
		if m.used[i] < m.cap[i] || m.reclaimShadow(i) {
			t = i
			break
		}
	}
	if t == last && m.used[last] >= m.cap[last] {
		m.reclaimShadow(last)
	}
	if m.ts != nil {
		cur := m.ts.current
		if t == Fast {
			if q := m.ts.quota[cur]; q > 0 && m.ts.used[cur][Fast] >= q {
				// Quota exhausted: first touch overflows to the slow
				// tier — the memcg analogue of allocating past the
				// fast-tier limit.
				t = Slow
			}
		}
		m.ts.owner[p] = cur
		m.ts.used[cur][t]++
		if t == Fast {
			m.ts.ctr[cur].AllocFast++
		} else {
			m.ts.ctr[cur].AllocSlow++
		}
	}
	if t == Fast {
		m.ctr.AllocFast++
	} else {
		m.ctr.AllocSlow++
	}
	m.tier[p] = t
	m.allocated[p] = true
	m.used[t]++
	if m.pageTrace.Sampled(uint64(p)) {
		m.pageTrace.Append(telemetry.PageEvent{
			TimeNs: m.clock,
			Page:   uint64(p),
			Kind:   telemetry.PageKindAlloc,
			Tier:   m.labels[t],
		})
	}
	if m.onAlloc != nil {
		m.onAlloc(p, t)
	}
	if m.used[last] > m.cap[last] {
		// The footprint exceeded total machine capacity; this is a
		// harness configuration error worth failing loudly on.
		panic(fmt.Sprintf("memsim: %s tier overflow (%d > %d pages)",
			m.labels[last], m.used[last], m.cap[last]))
	}
}

// reclaimShadow evicts one shadow frame from tier t to free a frame,
// reporting whether it did. Shadow eviction is free (the resident copy
// is elsewhere; nothing transfers).
func (m *Machine) reclaimShadow(t TierID) bool {
	if m.sh == nil {
		return false
	}
	if _, ok := m.sh.PopReclaim(int(t)); ok {
		m.used[t]--
		m.ctr.ShadowReclaims++
		return true
	}
	return false
}

// ErrTierFull is returned by MovePage when the destination tier has no
// free capacity.
var ErrTierFull = errors.New("memsim: destination tier full")

// AdjustCapacity grows (delta > 0) or shrinks (delta < 0) tier t's
// capacity by delta pages. A shrink that would strand resident pages
// (capacity below current use) is refused with an error wrapping
// ErrTierFull and leaves the machine unchanged. This is the primitive
// the sharded machine's cross-shard capacity-transfer transactions are
// built from; it never moves pages, only the budget they count against.
func (m *Machine) AdjustCapacity(t TierID, delta int) error {
	nc := m.cap[t] + delta
	if nc < m.used[t] {
		return fmt.Errorf("memsim: cannot shrink %s capacity to %d with %d pages resident: %w",
			t, nc, m.used[t], ErrTierFull)
	}
	m.cap[t] = nc
	return nil
}

// ErrNotAllocated is returned by MovePage for pages never touched.
var ErrNotAllocated = errors.New("memsim: page not allocated")

// ErrMigrationBusy is returned by MovePage when an installed fault
// injector fails the attempt transiently — the simulator's analogue of
// migrate_pages returning -EAGAIN on a busy or pinned page. Callers
// should retry or skip the page; the machine's state is unchanged.
var ErrMigrationBusy = errors.New("memsim: page busy, migration failed transiently")

// MovePage migrates page p to tier dst on the background migration
// path: the configured interference fraction of the transfer time is
// charged to the application, the rest overlaps with execution. Moving
// a page to its current tier is a no-op.
func (m *Machine) MovePage(p PageID, dst TierID) error {
	return m.movePage(p, dst, m.cfg.MigrationInterference)
}

// MovePageSync migrates page p synchronously on the application's
// critical path: the full transfer time is charged to application time.
// This models access-path migration — e.g. AutoTiering's opportunistic
// exchange, which copies pages during the fault that triggered it.
func (m *Machine) MovePageSync(p PageID, dst TierID) error {
	return m.movePage(p, dst, 1)
}

func (m *Machine) movePage(p PageID, dst TierID, appFrac float64) error {
	if !m.allocated[p] {
		return ErrNotAllocated
	}
	src := m.tier[p]
	if src == dst {
		return nil
	}
	if m.sh != nil {
		if st, ok := m.sh.At(uint32(p)); ok && TierID(st) == dst {
			// Non-exclusive discard-on-demote: the destination already
			// holds a clean copy of the page (the shadow left by its
			// promotion), so the demotion is a pointer flip — the fast
			// frame frees, the shadow becomes the resident copy, and
			// nothing transfers. This is the re-migration Nomad avoids.
			m.sh.Remove(uint32(p))
			m.used[src]--
			m.tier[p] = dst
			m.ctr.Migrations++
			m.ctr.Demotions++
			m.ctr.ShadowDiscards++
			m.bndDem[int(dst)-1]++
			m.bndDisc[int(dst)-1]++
			m.tracePageMove(p, src, dst, telemetry.OutcomeDiscarded)
			return nil
		}
	}
	if m.used[dst] >= m.cap[dst] {
		if !m.reclaimShadow(dst) {
			m.tracePageMove(p, src, dst, telemetry.OutcomeTierFull)
			return ErrTierFull
		}
	}
	var owner TenantID
	if m.ts != nil {
		owner = m.ts.owner[p]
		if dst == Fast {
			if q := m.ts.quota[owner]; q > 0 && m.ts.used[owner][Fast] >= q {
				m.tracePageMove(p, src, dst, telemetry.OutcomeQuotaFull)
				return ErrTenantQuota
			}
		}
	}
	cost := m.migCostNs[src][dst]
	if m.injector != nil {
		if m.injector.FailMigration(m.clock) {
			m.ctr.MigrationFailures++
			m.tracePageMove(p, src, dst, telemetry.OutcomeBusy)
			return ErrMigrationBusy
		}
		if f := m.injector.BandwidthFactor(m.clock); f > 1 {
			cost *= f
		}
	}
	if m.sh != nil && dst < src {
		// Non-exclusive promotion: copy up, keep the source frame as a
		// clean shadow. A page carries at most one shadow — promoting
		// from a tier while an older, deeper shadow exists drops the
		// old one first (its frame frees).
		if st, ok := m.sh.At(uint32(p)); ok {
			m.sh.Remove(uint32(p))
			m.used[st]--
			m.ctr.ShadowInvalidates++
		}
		m.sh.Add(uint32(p), int(src))
	} else {
		m.used[src]--
		if m.sh != nil {
			// Demotion: a shadow strictly below the new residence is
			// still a valid clean copy and stays; one at or above it
			// would invert the invariant, so it frees.
			if st, ok := m.sh.At(uint32(p)); ok && TierID(st) <= dst {
				m.sh.Remove(uint32(p))
				m.used[st]--
				m.ctr.ShadowInvalidates++
			}
		}
	}
	m.used[dst]++
	m.tier[p] = dst
	m.advance(cost * appFrac)
	m.stallFrac += cost * appFrac
	whole := uint64(m.stallFrac)
	m.ctr.MigrationStallNs += whole
	m.stallFrac -= float64(whole)
	m.backgroundNs += cost * (1 - appFrac)
	m.ctr.Migrations++
	m.ctr.MigratedBytes += uint64(m.cfg.PageSize)
	if dst < src {
		m.ctr.Promotions++
		m.bndProm[dst]++
	} else {
		m.ctr.Demotions++
		m.bndDem[int(dst)-1]++
	}
	if m.ts != nil {
		m.ts.used[owner][src]--
		m.ts.used[owner][dst]++
		if dst == Fast {
			m.ts.ctr[owner].Promotions++
		} else {
			m.ts.ctr[owner].Demotions++
		}
	}
	m.tracePageMove(p, src, dst, telemetry.OutcomeSettled)
	return nil
}

// tracePageMove journals one migration-attempt outcome for a sampled
// page. A nil trace or an unsampled page costs one branch.
func (m *Machine) tracePageMove(p PageID, src, dst TierID, outcome string) {
	if !m.pageTrace.Sampled(uint64(p)) {
		return
	}
	m.pageTrace.Append(telemetry.PageEvent{
		TimeNs:  m.clock,
		Page:    uint64(p),
		Kind:    telemetry.PageKindMigration,
		From:    m.labels[src],
		To:      m.labels[dst],
		Outcome: outcome,
	})
}

// ChargeBackground adds ns of background CPU time (sampling threads,
// policy computation) to the overhead accounting without delaying the
// application. The paper's §6.4 reports these as CPU overheads.
func (m *Machine) ChargeBackground(ns float64) { m.backgroundNs += ns }

// TestAndClearAccessed returns the page's accessed bit and clears it —
// the primitive used by page-table-scanning policies (Nimble,
// Multi-clock), mirroring the kernel's test_and_clear_young.
func (m *Machine) TestAndClearAccessed(p PageID) bool {
	a := m.accessed[p]
	m.accessed[p] = false
	return a
}

// Accessed returns the page's accessed bit without clearing it.
func (m *Machine) Accessed(p PageID) bool { return m.accessed[p] }

// Dirty returns whether the page has been written since allocation.
func (m *Machine) Dirty(p PageID) bool { return m.dirty[p] }

// CheckInvariants verifies the machine's page accounting: per-tier used
// counters match a full recount of the tier map over allocated pages
// (each page is in exactly one tier by construction; the recount catches
// counter drift), no tier exceeds its capacity, and the allocation
// counters agree with the number of allocated pages. Under non-exclusive
// migration it additionally recounts the shadow table: every shadow
// belongs to an allocated page resident in a strictly faster tier (a
// write would have invalidated it; a demotion onto it would have
// discarded it), and each tier's used counter equals residents plus
// shadow frames. It is O(pages) and intended for tests and chaos
// harnesses, not hot paths. It returns nil when all invariants hold.
func (m *Machine) CheckInvariants() error {
	used := make([]int, m.nt)
	allocated := 0
	for p, ok := range m.allocated {
		if !ok {
			continue
		}
		allocated++
		t := m.tier[p]
		if int(t) >= m.nt {
			return fmt.Errorf("memsim: page %d in invalid tier %d", p, t)
		}
		used[t]++
	}
	shadows := make([]int, m.nt)
	if m.sh != nil {
		for p := 0; p < m.numPages; p++ {
			st, ok := m.sh.At(uint32(p))
			if !ok {
				continue
			}
			if !m.allocated[p] {
				return fmt.Errorf("memsim: shadow copy of unallocated page %d in %s", p, m.labels[st])
			}
			if int(m.tier[p]) >= st {
				return fmt.Errorf("memsim: page %d resident in %s but shadowed in %s (shadow must be strictly below)",
					p, m.labels[m.tier[p]], m.labels[st])
			}
			shadows[st]++
		}
		for t := 0; t < m.nt; t++ {
			if shadows[t] != m.sh.Count(t) {
				return fmt.Errorf("memsim: %s shadow stack holds %d pages, recounted %d",
					m.labels[t], m.sh.Count(t), shadows[t])
			}
		}
	}
	for t := 0; t < m.nt; t++ {
		if used[t]+shadows[t] != m.used[t] {
			return fmt.Errorf("memsim: %s tier counter %d != recounted %d residents + %d shadows",
				m.labels[t], m.used[t], used[t], shadows[t])
		}
		if m.used[t] > m.cap[t] {
			return fmt.Errorf("memsim: %s tier over capacity (%d > %d pages)",
				m.labels[t], m.used[t], m.cap[t])
		}
	}
	if total := m.ctr.AllocFast + m.ctr.AllocSlow - m.ctr.Freed; total != uint64(allocated) {
		return fmt.Errorf("memsim: allocation counters %d (net of %d freed) != %d allocated pages",
			total, m.ctr.Freed, allocated)
	}
	if m.ts != nil {
		// Per-tenant RSS: recount (owner, tier) over allocated pages and
		// check both the per-tenant counters and that the tenant split
		// sums back to the machine totals. Over-quota residency is NOT a
		// violation — a dynamically shrunk quota only gates new growth.
		n := len(m.ts.used)
		tused := make([][NumTiers]int, n)
		for p, ok := range m.allocated {
			if !ok {
				continue
			}
			o := m.ts.owner[p]
			if int(o) >= n {
				return fmt.Errorf("memsim: page %d owned by invalid tenant %d", p, o)
			}
			tused[o][m.tier[p]]++
		}
		var sum [NumTiers]int
		for i := range tused {
			for t := 0; t < NumTiers; t++ {
				if tused[i][t] != m.ts.used[i][t] {
					return fmt.Errorf("memsim: tenant %d %s counter %d != recounted %d",
						i, TierID(t), m.ts.used[i][t], tused[i][t])
				}
				sum[t] += tused[i][t]
			}
		}
		for t := 0; t < NumTiers; t++ {
			if sum[t] != m.used[t] {
				return fmt.Errorf("memsim: tenant %s pages sum to %d, machine has %d",
					TierID(t), sum[t], m.used[t])
			}
		}
	}
	return nil
}

// PoisonPage arms page p so its next access raises a NUMA-hint fault.
func (m *Machine) PoisonPage(p PageID) { m.poisoned[p] = true }

// PoisonRange arms n pages starting at page start, wrapping at the end of
// the address space — the moving scan window of the kernel's NUMA
// balancing. It returns the page after the last armed page.
func (m *Machine) PoisonRange(start PageID, n int) PageID {
	p := uint64(start)
	for i := 0; i < n; i++ {
		m.poisoned[p%uint64(m.numPages)] = true
		p++
	}
	return PageID(p % uint64(m.numPages))
}
