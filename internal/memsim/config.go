// Package memsim implements the tiered-memory machine model that replaces
// the paper's DRAM+Optane hardware and Linux-kernel substrate.
//
// A Machine simulates a two-tier memory system (a fast tier and a slow
// capacity tier) at page granularity, with:
//
//   - a virtual clock advanced by a per-access cost model built from the
//     paper's measured tier latencies and bandwidths (Table 2);
//   - first-touch page allocation that fills the fast tier before
//     overflowing to the slow tier (matching the paper's evaluation setup);
//   - a reuse-distance CPU cache model, so that cache-hitting accesses are
//     invisible to hardware sampling (required for ArtMem's "no sampled
//     events" RL state);
//   - page-table accessed bits with scan-and-clear semantics (the signal
//     consumed by Nimble and Multi-clock);
//   - NUMA-hint-fault arming (the signal consumed by AutoNUMA, TPP,
//     AutoTiering and Tiering-0.8);
//   - a sampler hook on the cache-miss path (the signal consumed by PEBS
//     based systems: MEMTIS and ArtMem);
//   - a migration engine that charges transfer time to tier bandwidth and
//     a configurable interference fraction to application time.
//
// Machine itself is single-threaded. For a concurrent access hot path,
// ShardedMachine (sharded.go, DESIGN.md §12) splits one logical machine
// by page-hash into N independently locked shards — each a full Machine
// with its own page state, LRU lists, sampler hook and virtual clock —
// behind the same Machine/Env surface, with an epoch-based transactional
// protocol for cross-shard capacity transfer. One shard delegates
// verbatim, so N=1 reproduces Machine byte for byte.
//
// The simulation is deterministic: identical configurations and access
// streams produce identical virtual timings and counters.
package memsim

import (
	"fmt"

	"artmem/internal/tier"
)

// TierID identifies one of the two memory tiers.
type TierID uint8

// The two tiers of the machine. Fast is the DRAM-class tier, Slow the
// PM/CXL-class capacity tier.
const (
	Fast TierID = 0
	Slow TierID = 1
	// NumTiers is the number of memory tiers in the machine.
	NumTiers = 2
)

// String returns "fast" or "slow".
func (t TierID) String() string {
	if t == Fast {
		return "fast"
	}
	return "slow"
}

// PageID indexes a page within the machine's simulated address space.
type PageID uint32

// NoPage is a sentinel PageID used by list structures.
const NoPage PageID = ^PageID(0)

// TierSpec describes the performance and capacity of one memory tier.
type TierSpec struct {
	Name string
	// LatencyNs is the idle load-to-use latency of the tier in
	// nanoseconds.
	LatencyNs float64
	// ReadBWGBs and WriteBWGBs are the tier's sequential read and write
	// bandwidth in GB/s. They bound both demand accesses and migration
	// transfer speed.
	ReadBWGBs  float64
	WriteBWGBs float64
	// CapacityPages is the number of pages the tier can hold.
	CapacityPages int
}

// The paper's measured tier characteristics (Table 2). Optane PM write
// bandwidth is well below read bandwidth (an empirically documented
// idiosyncrasy); the paper reports a single 26 GB/s figure, which we use
// for reads, with writes derated by the commonly measured ~3x factor.
const (
	// FastLatencyNs is the fast-tier (DRAM) load latency from Table 2.
	FastLatencyNs = 92
	// SlowLatencyNs is the slow-tier (Optane PM) load latency from Table 2.
	SlowLatencyNs = 323
	// FastBWGBs is the fast-tier bandwidth from Table 2.
	FastBWGBs = 81
	// SlowBWGBs is the slow-tier bandwidth from Table 2.
	SlowBWGBs = 26
)

// Config parameterizes a Machine.
type Config struct {
	// PageSize is the migration granularity in bytes. The paper uses 2MB
	// huge pages; scaled-down experiments shrink the page proportionally
	// with the footprint so page *counts* match the paper (see DESIGN.md).
	PageSize int64
	// FootprintBytes is the size of the simulated application address
	// space. It is rounded up to a whole number of pages.
	FootprintBytes int64
	// Fast and Slow describe the two tiers. Fast.CapacityPages bounds the
	// fast tier; Slow.CapacityPages of 0 means "unbounded" (sized to fit
	// the whole footprint).
	Fast TierSpec
	Slow TierSpec
	// CacheLines is the number of 64-byte lines in the reuse-distance CPU
	// cache model. 0 disables the cache model (every access misses).
	CacheLines int
	// CacheHitNs is the cost of a cache hit.
	CacheHitNs float64
	// MigrationInterference is the fraction of a migration's transfer
	// time charged to application virtual time (the rest overlaps with
	// execution but is tracked as background cost). The kernel migrates
	// pages on background threads, but migrations still contend with the
	// application for memory bandwidth.
	MigrationInterference float64
	// MigrationFixedNs is the per-page fixed migration overhead (page
	// table manipulation, TLB shootdown).
	MigrationFixedNs float64
	// FaultCostNs is charged to application time when an armed
	// NUMA-hint fault fires (minor fault handling on the critical path).
	FaultCostNs float64
	// Chain, when non-nil, replaces the Fast/Slow pair with an ordered
	// N-tier hierarchy (DRAM/CXL/PM/NVMe chains; see internal/tier and
	// DESIGN.md §13). Tier 0 is the fastest; the legacy Fast/Slow specs
	// are ignored. A nil Chain keeps the seed two-tier machine, byte
	// for byte.
	Chain tier.Chain
	// NonExclusive enables Nomad-style non-exclusive migration: a
	// promotion leaves a reclaimable shadow copy in the source tier, a
	// demotion back onto a clean shadow is a free discard (no
	// transfer), and a write invalidates the shadow. Shadow frames
	// count against their tier's capacity but are reclaimed on demand
	// by allocations and migrations that need the room.
	NonExclusive bool
}

// DefaultConfig returns a Config with the paper's Table 2 tier
// characteristics and sensible model defaults, for a machine with the
// given footprint, fast-tier size, and page size (all in bytes).
func DefaultConfig(footprint, fastBytes, pageSize int64) Config {
	if pageSize <= 0 {
		pageSize = 2 << 20
	}
	fastPages := int(fastBytes / pageSize)
	return Config{
		PageSize:       pageSize,
		FootprintBytes: footprint,
		Fast: TierSpec{
			Name:          "DRAM",
			LatencyNs:     FastLatencyNs,
			ReadBWGBs:     FastBWGBs,
			WriteBWGBs:    FastBWGBs,
			CapacityPages: fastPages,
		},
		Slow: TierSpec{
			Name:       "PM",
			LatencyNs:  SlowLatencyNs,
			ReadBWGBs:  SlowBWGBs,
			WriteBWGBs: SlowBWGBs / 3,
			// CapacityPages 0: sized to fit the footprint.
		},
		CacheLines:            1 << 18, // models a 16MB last-level cache
		CacheHitNs:            2,
		MigrationInterference: 0.3,
		MigrationFixedNs:      1500,
		FaultCostNs:           300,
	}
}

// Validate reports whether the configuration is usable.
func (c *Config) Validate() error {
	if c.PageSize <= 0 {
		return fmt.Errorf("memsim: PageSize must be positive, got %d", c.PageSize)
	}
	if c.FootprintBytes <= 0 {
		return fmt.Errorf("memsim: FootprintBytes must be positive, got %d", c.FootprintBytes)
	}
	if c.MigrationInterference < 0 || c.MigrationInterference > 1 {
		return fmt.Errorf("memsim: MigrationInterference must be in [0,1], got %g",
			c.MigrationInterference)
	}
	if c.Chain != nil {
		// Chain machines take their tier model from the chain; the
		// legacy Fast/Slow specs are ignored entirely.
		return c.Chain.Validate()
	}
	if c.Fast.CapacityPages < 0 || c.Slow.CapacityPages < 0 {
		return fmt.Errorf("memsim: negative tier capacity")
	}
	if c.Fast.LatencyNs <= 0 || c.Slow.LatencyNs <= 0 {
		return fmt.Errorf("memsim: tier latencies must be positive")
	}
	if c.Fast.ReadBWGBs <= 0 || c.Slow.ReadBWGBs <= 0 ||
		c.Fast.WriteBWGBs <= 0 || c.Slow.WriteBWGBs <= 0 {
		return fmt.Errorf("memsim: tier bandwidths must be positive")
	}
	return nil
}

// NumPagesFor returns the number of pages needed to back the footprint.
func (c *Config) NumPagesFor() int {
	return int((c.FootprintBytes + c.PageSize - 1) / c.PageSize)
}
