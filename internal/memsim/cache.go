package memsim

// cacheModel approximates a CPU last-level cache with a direct-mapped tag
// array over 64-byte lines. An access hits when the line's tag is still
// resident at its slot; conflicting lines evict each other, which makes
// the model behave like a cache of roughly `lines` lines under typical
// mixing of addresses.
//
// The model exists so that accesses with high temporal locality are
// absorbed before they reach memory, exactly as on real hardware — PEBS
// only samples memory loads, and ArtMem's state machine has a dedicated
// state for "no events sampled (most accesses hit in the CPU cache)"
// (paper §4.2). It deliberately stays cheap: one array read and write per
// access.
type cacheModel struct {
	tags []uint64
	mask uint64
}

// init sizes the tag array to the next power of two ≥ lines.
func (c *cacheModel) init(lines int) {
	sz := 1
	for sz < lines {
		sz <<= 1
	}
	c.tags = make([]uint64, sz)
	c.mask = uint64(sz - 1)
	for i := range c.tags {
		c.tags[i] = ^uint64(0) // invalid tag: never matches a real line
	}
}

// lookup returns true on a cache hit for the given line address and
// installs the line on a miss.
func (c *cacheModel) lookup(line uint64) bool {
	if c.tags == nil {
		return false
	}
	// Mix the bits so pages do not all map to the same region of the tag
	// array (line addresses are strongly structured).
	h := line * 0x9e3779b97f4a7c15
	slot := h & c.mask
	if c.tags[slot] == line {
		return true
	}
	c.tags[slot] = line
	return false
}

// evictLines invalidates n consecutive line addresses starting at
// startLine, leaving unrelated resident lines alone. Used when a page
// is freed so its contents do not survive into the address range's next
// owner. O(n) hashes; only the reclamation path calls it.
func (c *cacheModel) evictLines(startLine uint64, n int64) {
	if c.tags == nil {
		return
	}
	for i := int64(0); i < n; i++ {
		line := startLine + uint64(i)
		slot := (line * 0x9e3779b97f4a7c15) & c.mask
		if c.tags[slot] == line {
			c.tags[slot] = ^uint64(0)
		}
	}
}

// flush invalidates the whole cache. Used by tests and by workload phase
// changes that model context switches.
func (c *cacheModel) flush() {
	for i := range c.tags {
		c.tags[i] = ^uint64(0)
	}
}

// FlushCache invalidates the machine's CPU cache model.
func (m *Machine) FlushCache() { m.cache.flush() }
