package memsim

import (
	"fmt"

	"artmem/internal/telemetry"
	"artmem/internal/tier"
)

// Boundary decomposition: an N-tier chain machine is presented to
// two-tier policies as N-1 independent Env views, one per adjacent tier
// pair. View b ("boundary b") sees tier b as its fast tier and tier b+1
// as its slow tier; everything at or above b maps to Fast, everything
// below to Slow. A BoundaryHub owns the machine's sampler, fault, and
// alloc hooks and demuxes each event to the (at most two) boundaries
// that can see its tier — the same shape tenancy's demux gives
// per-tenant agents and ShardedSystem gives per-shard agents. See
// DESIGN.md §13.

// ChainEnv is the machine surface the boundary decomposition needs: a
// policy Env plus the chain introspection accessors. *Machine and
// *ShardedMachine both implement it.
type ChainEnv interface {
	Env
	Tiers() int
	NumBoundaries() int
	TierName(TierID) string
	TierSpecAt(TierID) TierSpec
	TierAccesses(TierID) uint64
	ShadowPages(TierID) int
	BoundaryStatsAt(int) BoundaryStats
	BackgroundNs() float64
	AccessLatencyData() telemetry.HistogramData
}

var (
	_ ChainEnv = (*Machine)(nil)
	_ ChainEnv = (*ShardedMachine)(nil)
)

// ErrNotInBoundary is returned by a BoundaryView's MovePage when the
// page does not currently reside on the source side of the boundary —
// a sibling boundary agent moved it since the caller last saw it. It is
// non-transient and does not wrap ErrTierFull: policies skip the page
// and move on, exactly how they treat a stale candidate.
var ErrNotInBoundary = fmt.Errorf("memsim: page not resident on this side of the tier boundary")

// ErrBoundaryBudget is returned by a BoundaryView's MovePage when the
// boundary's per-period migration budget is exhausted. It wraps
// ErrTierFull so budget exhaustion ends a policy's migration period the
// same way a full destination tier does.
var ErrBoundaryBudget = fmt.Errorf("memsim: boundary migration budget exhausted: %w", ErrTierFull)

// BoundaryHub demuxes one chain machine's signal hooks onto per-
// boundary views. Construct it, take View(b) for each boundary, and
// attach one two-tier policy per view; the hub installs itself as the
// machine's sampler/fault/alloc hook. Optional per-boundary budgets
// (SetBudgets) meter MovePage calls through the views.
//
// The hub is as thread-safe as its machine: hooks fire on the access
// path, so whoever serializes Access serializes the hub.
type BoundaryHub struct {
	m        ChainEnv
	nb       int
	samplers []Sampler
	faults   []FaultHandler
	allocs   []func(PageID, TierID)
	budgets  *tier.Budgets
}

// NewBoundaryHub builds a hub over m and installs its demux hooks.
func NewBoundaryHub(m ChainEnv) *BoundaryHub {
	nb := m.NumBoundaries()
	h := &BoundaryHub{
		m:        m,
		nb:       nb,
		samplers: make([]Sampler, nb),
		faults:   make([]FaultHandler, nb),
		allocs:   make([]func(PageID, TierID), nb),
	}
	m.SetSampler(hubSampler{h})
	m.SetFaultHandler(hubFaults{h})
	m.SetAllocHook(h.onAlloc)
	return h
}

// NumBoundaries returns the number of boundary views the hub serves.
func (h *BoundaryHub) NumBoundaries() int { return h.nb }

// SetBudgets installs per-boundary migration budgets consulted by every
// view MovePage/MovePageSync (nil to remove). The caller refills them
// per period (Budgets.Reset); the hub only spends.
func (h *BoundaryHub) SetBudgets(b *tier.Budgets) {
	if b != nil && b.Boundaries() != h.nb {
		panic(fmt.Sprintf("memsim: budgets for %d boundaries on a %d-boundary hub",
			b.Boundaries(), h.nb))
	}
	h.budgets = b
}

// Budgets returns the installed budgets, or nil.
func (h *BoundaryHub) Budgets() *tier.Budgets { return h.budgets }

// View returns boundary b's two-tier Env (tier b = Fast, b+1 = Slow).
func (h *BoundaryHub) View(b int) *BoundaryView {
	if b < 0 || b >= h.nb {
		panic(fmt.Sprintf("memsim: boundary %d of %d", b, h.nb))
	}
	base := h.m.Config()
	fast := h.m.TierSpecAt(TierID(b))
	fast.CapacityPages = h.m.CapacityPages(TierID(b))
	slow := h.m.TierSpecAt(TierID(b + 1))
	slow.CapacityPages = h.m.CapacityPages(TierID(b + 1))
	base.Chain = nil
	base.NonExclusive = false
	base.Fast, base.Slow = fast, slow
	return &BoundaryView{m: h.m, hub: h, lo: TierID(b), cfg: base}
}

// An event in tier t is visible to boundary t-1 (as its slow side) and
// boundary t (as its fast side); delivery is in ascending boundary
// order, deterministically.

type hubSampler struct{ h *BoundaryHub }

func (s hubSampler) OnMiss(p PageID, t TierID, write bool, now int64) {
	h := s.h
	if t > 0 && h.samplers[t-1] != nil {
		h.samplers[t-1].OnMiss(p, Slow, write, now)
	}
	if int(t) < h.nb && h.samplers[t] != nil {
		h.samplers[t].OnMiss(p, Fast, write, now)
	}
}

type hubFaults struct{ h *BoundaryHub }

func (f hubFaults) OnFault(p PageID, t TierID, write bool, now int64) {
	h := f.h
	if t > 0 && h.faults[t-1] != nil {
		h.faults[t-1].OnFault(p, Slow, write, now)
	}
	if int(t) < h.nb && h.faults[t] != nil {
		h.faults[t].OnFault(p, Fast, write, now)
	}
}

func (h *BoundaryHub) onAlloc(p PageID, t TierID) {
	if t > 0 && h.allocs[t-1] != nil {
		h.allocs[t-1](p, Slow)
	}
	if int(t) < h.nb && h.allocs[t] != nil {
		h.allocs[t](p, Fast)
	}
}

// BoundaryView adapts one tier boundary of a chain machine to the
// two-tier Env surface. Policies written against Env (ArtMem, the
// baselines) run on it unchanged; stale candidates that a sibling
// boundary moved away are refused with ErrNotInBoundary.
type BoundaryView struct {
	m   ChainEnv
	hub *BoundaryHub
	lo  TierID // the boundary's fast side; slow side is lo+1
	cfg Config // synthesized two-tier view of the pair
}

// Boundary returns the boundary index the view covers.
func (v *BoundaryView) Boundary() int { return int(v.lo) }

// Config returns a two-tier Config describing the boundary's tier pair
// (latency, bandwidth, and capacity of tiers lo and lo+1).
func (v *BoundaryView) Config() Config { return v.cfg }

// NumPages returns the machine's full page space: page IDs are global.
func (v *BoundaryView) NumPages() int { return v.m.NumPages() }

// PageSize returns the page size in bytes.
func (v *BoundaryView) PageSize() int64 { return v.m.PageSize() }

// Now returns the machine's virtual clock.
func (v *BoundaryView) Now() int64 { return v.m.Now() }

// Counters reports the boundary's share of machine activity: accesses
// served by its two tiers, migrations crossing it. Machine-global
// counters with no per-boundary attribution (cache hits, faults,
// allocations) are reported as seen machine-wide.
func (v *BoundaryView) Counters() Counters {
	mc := v.m.Counters()
	bs := v.m.BoundaryStatsAt(int(v.lo))
	return Counters{
		FastAccesses:      v.m.TierAccesses(v.lo),
		SlowAccesses:      v.m.TierAccesses(v.lo + 1),
		CacheHits:         mc.CacheHits,
		Migrations:        bs.Promotions + bs.Demotions,
		Promotions:        bs.Promotions,
		Demotions:         bs.Demotions,
		ShadowDiscards:    bs.ShadowDiscards,
		Faults:            mc.Faults,
		MigrationFailures: mc.MigrationFailures,
		AllocFast:         mc.AllocFast,
		AllocSlow:         mc.AllocSlow,
		Freed:             mc.Freed,
		MigratedBytes:     (bs.Promotions + bs.Demotions - bs.ShadowDiscards) * uint64(v.m.PageSize()),
		MigrationStallNs:  mc.MigrationStallNs,
	}
}

// TierOf maps the page's chain tier onto the boundary's two-tier view:
// at or above the fast side reports Fast, below reports Slow.
func (v *BoundaryView) TierOf(p PageID) TierID {
	if v.m.TierOf(p) <= v.lo {
		return Fast
	}
	return Slow
}

// Allocated reports whether the page has been first-touched.
func (v *BoundaryView) Allocated(p PageID) bool { return v.m.Allocated(p) }

// UsedPages reports resident pages of the boundary's tier pair
// (Fast = tier lo, Slow = tier lo+1).
func (v *BoundaryView) UsedPages(t TierID) int { return v.m.UsedPages(v.global(t)) }

// FreePages reports free frames of the boundary's tier pair.
func (v *BoundaryView) FreePages(t TierID) int { return v.m.FreePages(v.global(t)) }

// CapacityPages reports the capacity of the boundary's tier pair.
func (v *BoundaryView) CapacityPages(t TierID) int { return v.m.CapacityPages(v.global(t)) }

func (v *BoundaryView) global(t TierID) TierID {
	if t == Fast {
		return v.lo
	}
	return v.lo + 1
}

// MovePage migrates p across the boundary on the background path. The
// page must reside on the source side (ErrNotInBoundary otherwise), and
// installed budgets must have room (ErrBoundaryBudget otherwise).
func (v *BoundaryView) MovePage(p PageID, dst TierID) error {
	return v.move(p, dst, false)
}

// MovePageSync migrates p across the boundary on the critical path.
func (v *BoundaryView) MovePageSync(p PageID, dst TierID) error {
	return v.move(p, dst, true)
}

func (v *BoundaryView) move(p PageID, dst TierID, sync bool) error {
	cur := v.m.TierOf(p)
	var want, to TierID
	if dst == Fast {
		want, to = v.lo+1, v.lo
	} else {
		want, to = v.lo, v.lo+1
	}
	if cur != want {
		if cur == to {
			// Already where the caller wants it: a no-op, like
			// Machine.MovePage onto the current tier.
			return nil
		}
		return ErrNotInBoundary
	}
	if b := v.hub.budgets; b != nil && !b.Take(int(v.lo)) {
		return ErrBoundaryBudget
	}
	if sync {
		return v.m.MovePageSync(p, to)
	}
	return v.m.MovePage(p, to)
}

// ChargeBackground adds non-application CPU time to the machine.
func (v *BoundaryView) ChargeBackground(ns float64) { v.m.ChargeBackground(ns) }

// TestAndClearAccessed reads and clears the page's accessed bit.
func (v *BoundaryView) TestAndClearAccessed(p PageID) bool { return v.m.TestAndClearAccessed(p) }

// PoisonPage arms a NUMA-hint fault on one page, machine-wide.
func (v *BoundaryView) PoisonPage(p PageID) { v.m.PoisonPage(p) }

// PoisonRange arms NUMA-hint faults over a wrapping page window,
// machine-wide.
func (v *BoundaryView) PoisonRange(start PageID, n int) PageID {
	return v.m.PoisonRange(start, n)
}

// SetSampler registers the boundary's sampler with the hub demux.
func (v *BoundaryView) SetSampler(s Sampler) { v.hub.samplers[v.lo] = s }

// SetFaultHandler registers the boundary's fault handler with the hub.
func (v *BoundaryView) SetFaultHandler(h FaultHandler) { v.hub.faults[v.lo] = h }

// SetAllocHook registers the boundary's alloc hook with the hub. The
// hook sees allocations into either of the boundary's tiers, with the
// tier mapped to the two-tier view.
func (v *BoundaryView) SetAllocHook(h func(PageID, TierID)) { v.hub.allocs[v.lo] = h }

// SetPageTrace installs a machine-wide page trace.
func (v *BoundaryView) SetPageTrace(pt *telemetry.PageTrace) { v.m.SetPageTrace(pt) }

// FaultInjector returns the machine's chaos injector, or nil.
func (v *BoundaryView) FaultInjector() FaultInjector { return v.m.FaultInjector() }

var _ Env = (*BoundaryView)(nil)
