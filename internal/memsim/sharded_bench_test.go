package memsim

import (
	"fmt"
	"sync"
	"testing"
)

// benchShardCfg sizes a machine large enough that shard state does not
// all fit in one cache line's worth of hot pages: 64Ki pages of 4KiB.
func benchShardCfg() Config {
	cfg := DefaultConfig(1<<28, 1<<27, 4096)
	cfg.CacheLines = 1 << 14
	return cfg
}

// benchBatch is one pre-generated access batch replayed per iteration.
const benchBatch = 1 << 16

// BenchmarkAccessParallelPumps is the aggregate-throughput benchmark
// the sharding tentpole targets: G goroutines, each owning a fixed
// subset of shards and replaying that subset's pre-split sub-batches —
// the serving-frontend shape, where per-shard pumps arrive with their
// traffic already partitioned. The timed region contains no serial
// section, so throughput scales with min(G, shards, cores); the
// per-op metric is ns per *aggregate* access. Run on a multi-core
// host, gs=8 vs gs=1 is the ISSUE 9 ≥4x acceptance measurement (CI
// executes it once under -race as a smoke test; single-core hosts
// serialize the goroutines and show flat numbers).
func BenchmarkAccessParallelPumps(b *testing.B) {
	cfg := benchShardCfg()
	for _, shards := range []int{8, 16} {
		for _, gs := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("shards=%d/gs=%d", shards, gs), func(b *testing.B) {
				sm := NewShardedMachine(cfg, shards)
				addrs, writes := stream(11, benchBatch, uint64(cfg.FootprintBytes))
				sc := sm.split(addrs, writes)
				defer sm.putSplit(sc)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					wg.Add(gs)
					for g := 0; g < gs; g++ {
						go func(g int) {
							defer wg.Done()
							for s := g; s < shards; s += gs {
								if len(sc.addrs[s]) == 0 {
									continue
								}
								sm.replayShard(s, NoTenant, sc.addrs[s], sc.writes[s])
							}
						}(g)
					}
					wg.Wait()
				}
				b.StopTimer()
				perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / benchBatch
				b.ReportMetric(perOp, "ns/access")
			})
		}
	}
}

// BenchmarkAccessParallelSplit measures the full AccessBatchParallel
// path — per-call batch splitting plus parallel replay — the cost a
// caller pays when traffic arrives unpartitioned. The split loop is
// serial, so this family bounds the Amdahl overhead the pre-split
// pump path avoids.
func BenchmarkAccessParallelSplit(b *testing.B) {
	cfg := benchShardCfg()
	for _, shards := range []int{1, 8} {
		for _, gs := range []int{1, 8} {
			b.Run(fmt.Sprintf("shards=%d/gs=%d", shards, gs), func(b *testing.B) {
				sm := NewShardedMachine(cfg, shards)
				addrs, writes := stream(11, benchBatch, uint64(cfg.FootprintBytes))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sm.AccessBatchParallel(addrs, writes, gs)
				}
				b.StopTimer()
				perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / benchBatch
				b.ReportMetric(perOp, "ns/access")
			})
		}
	}
}

// BenchmarkAccessShardedSerial pins the single-goroutine sharding tax:
// the same batch through a bare Machine, a one-shard machine (lock,
// no translation), and an 8-shard machine (lock + translation) — the
// cost sharding adds when concurrency is off.
func BenchmarkAccessShardedSerial(b *testing.B) {
	cfg := benchShardCfg()
	addrs, writes := stream(11, benchBatch, uint64(cfg.FootprintBytes))
	b.Run("machine", func(b *testing.B) {
		m := NewMachine(cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, a := range addrs {
				m.Access(a, writes[j])
			}
		}
		b.StopTimer()
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / benchBatch
		b.ReportMetric(perOp, "ns/access")
	})
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("sharded=%d", shards), func(b *testing.B) {
			sm := NewShardedMachine(cfg, shards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sm.AccessBatch(addrs, writes)
			}
			b.StopTimer()
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / benchBatch
			b.ReportMetric(perOp, "ns/access")
		})
	}
}
