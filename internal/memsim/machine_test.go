package memsim

import (
	"testing"
	"testing/quick"

	"artmem/internal/telemetry"
)

// testConfig returns a small machine: 64 pages of 64KiB, 16 fast pages,
// no CPU cache (deterministic misses) unless cacheLines > 0.
func testConfig(cacheLines int) Config {
	cfg := DefaultConfig(64*64*1024, 16*64*1024, 64*1024)
	cfg.CacheLines = cacheLines
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero page size", func(c *Config) { c.PageSize = 0 }},
		{"zero footprint", func(c *Config) { c.FootprintBytes = 0 }},
		{"negative fast capacity", func(c *Config) { c.Fast.CapacityPages = -1 }},
		{"zero fast latency", func(c *Config) { c.Fast.LatencyNs = 0 }},
		{"zero slow read bw", func(c *Config) { c.Slow.ReadBWGBs = 0 }},
		{"interference > 1", func(c *Config) { c.MigrationInterference = 1.5 }},
	}
	for _, tc := range cases {
		cfg := testConfig(0)
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: config accepted, want error", tc.name)
		}
	}
}

func TestFirstTouchFillsFastFirst(t *testing.T) {
	m := NewMachine(testConfig(0))
	ps := m.PageSize()
	// Touch 20 distinct pages; first 16 must land in fast, rest in slow.
	for i := 0; i < 20; i++ {
		m.Access(uint64(int64(i)*ps), false)
	}
	if got := m.UsedPages(Fast); got != 16 {
		t.Errorf("fast used = %d, want 16", got)
	}
	if got := m.UsedPages(Slow); got != 4 {
		t.Errorf("slow used = %d, want 4", got)
	}
	for i := 0; i < 16; i++ {
		if m.TierOf(PageID(i)) != Fast {
			t.Errorf("page %d in %v, want fast", i, m.TierOf(PageID(i)))
		}
	}
	for i := 16; i < 20; i++ {
		if m.TierOf(PageID(i)) != Slow {
			t.Errorf("page %d in %v, want slow", i, m.TierOf(PageID(i)))
		}
	}
	c := m.Counters()
	if c.AllocFast != 16 || c.AllocSlow != 4 {
		t.Errorf("alloc counters = %d/%d, want 16/4", c.AllocFast, c.AllocSlow)
	}
}

func TestAccessAdvancesClockByTierCost(t *testing.T) {
	m := NewMachine(testConfig(0))
	m.Access(0, false) // first touch → fast
	fastRead := m.Now()
	if fastRead <= 0 {
		t.Fatalf("clock did not advance on fast read")
	}
	before := m.Now()
	// Fill the fast tier so the next new page lands in slow.
	for i := 1; i < 16; i++ {
		m.Access(uint64(int64(i)*m.PageSize()), false)
	}
	before = m.Now()
	m.Access(uint64(16*m.PageSize()), false) // slow read
	slowRead := m.Now() - before
	if slowRead <= fastRead {
		t.Errorf("slow read cost %dns not greater than fast read cost %dns",
			slowRead, fastRead)
	}
}

func TestWriteCostsAtLeastRead(t *testing.T) {
	cfg := testConfig(0)
	m := NewMachine(cfg)
	// Land a page in slow (fill fast first).
	for i := 0; i < 17; i++ {
		m.Access(uint64(int64(i)*m.PageSize()), false)
	}
	p := uint64(16 * m.PageSize())
	t0 := m.Now()
	m.Access(p, false)
	readCost := m.Now() - t0
	t1 := m.Now()
	m.Access(p, true)
	writeCost := m.Now() - t1
	if writeCost < readCost {
		t.Errorf("slow write cost %d < read cost %d (write BW is derated)",
			writeCost, readCost)
	}
}

func TestDRAMRatioCounters(t *testing.T) {
	m := NewMachine(testConfig(0))
	ps := uint64(m.PageSize())
	for i := 0; i < 17; i++ { // 16 fast pages + 1 slow page
		m.Access(uint64(i)*ps, false)
	}
	// 3 more accesses to a fast page, 1 more to the slow page.
	for i := 0; i < 3; i++ {
		m.Access(0, false)
	}
	m.Access(16*ps, false)
	c := m.Counters()
	if c.FastAccesses != 19 || c.SlowAccesses != 2 {
		t.Fatalf("accesses = %d fast / %d slow, want 19/2",
			c.FastAccesses, c.SlowAccesses)
	}
	want := 19.0 / 21.0
	if got := c.DRAMRatio(); got != want {
		t.Errorf("DRAMRatio = %g, want %g", got, want)
	}
}

func TestDRAMRatioEmpty(t *testing.T) {
	var c Counters
	if got := c.DRAMRatio(); got != 0 {
		t.Errorf("empty DRAMRatio = %g, want 0", got)
	}
}

func TestMovePage(t *testing.T) {
	m := NewMachine(testConfig(0))
	ps := m.PageSize()
	for i := 0; i < 17; i++ {
		m.Access(uint64(int64(i)*ps), false)
	}
	// Fast tier is full: promoting the slow page must fail.
	if err := m.MovePage(16, Fast); err != ErrTierFull {
		t.Fatalf("promote into full tier: err = %v, want ErrTierFull", err)
	}
	// Demote page 0, then promotion succeeds.
	if err := m.MovePage(0, Slow); err != nil {
		t.Fatalf("demote: %v", err)
	}
	if err := m.MovePage(16, Fast); err != nil {
		t.Fatalf("promote after demote: %v", err)
	}
	if m.TierOf(0) != Slow || m.TierOf(16) != Fast {
		t.Errorf("tiers after swap: page0=%v page16=%v", m.TierOf(0), m.TierOf(16))
	}
	c := m.Counters()
	if c.Migrations != 2 || c.Promotions != 1 || c.Demotions != 1 {
		t.Errorf("migration counters = %+v", c)
	}
	if c.MigratedBytes != 2*uint64(ps) {
		t.Errorf("MigratedBytes = %d, want %d", c.MigratedBytes, 2*ps)
	}
	// Moving to the same tier is a no-op.
	before := m.Counters().Migrations
	if err := m.MovePage(16, Fast); err != nil {
		t.Fatalf("same-tier move: %v", err)
	}
	if m.Counters().Migrations != before {
		t.Errorf("same-tier move counted as migration")
	}
	// Unallocated page cannot move.
	if err := m.MovePage(40, Fast); err != ErrNotAllocated {
		t.Errorf("move unallocated: err = %v, want ErrNotAllocated", err)
	}
}

func TestMigrationChargesInterferenceAndBackground(t *testing.T) {
	cfg := testConfig(0)
	cfg.MigrationInterference = 0.5
	m := NewMachine(cfg)
	m.Access(0, false)
	t0, bg0 := m.Now(), m.BackgroundNs()
	if err := m.MovePage(0, Slow); err != nil {
		t.Fatal(err)
	}
	appDelta := float64(m.Now() - t0)
	bgDelta := m.BackgroundNs() - bg0
	if appDelta <= 0 || bgDelta <= 0 {
		t.Fatalf("migration charged app=%g bg=%g, want both positive", appDelta, bgDelta)
	}
	// With interference 0.5 the two shares are equal (±1ns rounding).
	if diff := appDelta - bgDelta; diff > 1 || diff < -1 {
		t.Errorf("app share %g and background share %g differ beyond rounding",
			appDelta, bgDelta)
	}
}

func TestAccessedBits(t *testing.T) {
	m := NewMachine(testConfig(0))
	m.Access(0, false)
	if !m.Accessed(0) {
		t.Fatal("accessed bit not set by access")
	}
	if !m.TestAndClearAccessed(0) {
		t.Fatal("TestAndClearAccessed returned false for touched page")
	}
	if m.TestAndClearAccessed(0) {
		t.Fatal("accessed bit not cleared")
	}
	m.Access(0, false)
	if !m.Accessed(0) {
		t.Fatal("accessed bit not re-set after clear")
	}
}

func TestDirtyBit(t *testing.T) {
	m := NewMachine(testConfig(0))
	m.Access(0, false)
	if m.Dirty(0) {
		t.Fatal("read marked page dirty")
	}
	m.Access(1, true)
	p := m.PageOf(1)
	if !m.Dirty(p) {
		t.Fatal("write did not mark page dirty")
	}
}

type recordingFaultHandler struct {
	pages []PageID
}

func (r *recordingFaultHandler) OnFault(p PageID, _ TierID, _ bool, _ int64) {
	r.pages = append(r.pages, p)
}

func TestPoisonFaultsOnceUntilRearmed(t *testing.T) {
	m := NewMachine(testConfig(0))
	h := &recordingFaultHandler{}
	m.SetFaultHandler(h)
	m.Access(0, false) // allocate, unpoisoned: no fault
	m.PoisonPage(0)
	m.Access(0, false) // fault fires
	m.Access(0, false) // disarmed: no fault
	if len(h.pages) != 1 || h.pages[0] != 0 {
		t.Fatalf("faults = %v, want exactly one on page 0", h.pages)
	}
	if got := m.Counters().Faults; got != 1 {
		t.Errorf("fault counter = %d, want 1", got)
	}
	m.PoisonPage(0)
	m.Access(0, false)
	if len(h.pages) != 2 {
		t.Errorf("re-armed fault did not fire")
	}
}

func TestPoisonRangeWraps(t *testing.T) {
	m := NewMachine(testConfig(0)) // 64 pages
	next := m.PoisonRange(60, 8)   // arms 60..63, 0..3
	if next != 4 {
		t.Errorf("PoisonRange next = %d, want 4", next)
	}
	h := &recordingFaultHandler{}
	m.SetFaultHandler(h)
	m.Access(0, false)                       // page 0 is armed
	m.Access(uint64(62*m.PageSize()), false) // page 62 armed
	m.Access(uint64(10*m.PageSize()), false) // page 10 not armed
	if len(h.pages) != 2 {
		t.Fatalf("faults = %v, want pages 0 and 62", h.pages)
	}
}

type recordingSampler struct{ n int }

func (r *recordingSampler) OnMiss(PageID, TierID, bool, int64) { r.n++ }

func TestSamplerSeesOnlyMisses(t *testing.T) {
	cfg := testConfig(1 << 10)
	m := NewMachine(cfg)
	s := &recordingSampler{}
	m.SetSampler(s)
	// Access the same line repeatedly: 1 miss + N-1 cache hits.
	for i := 0; i < 100; i++ {
		m.Access(128, false)
	}
	if s.n != 1 {
		t.Errorf("sampler saw %d events, want 1 (cache hits are invisible)", s.n)
	}
	if got := m.Counters().CacheHits; got != 99 {
		t.Errorf("cache hits = %d, want 99", got)
	}
}

func TestCacheFlush(t *testing.T) {
	m := NewMachine(testConfig(1 << 10))
	m.Access(128, false)
	m.FlushCache()
	s := &recordingSampler{}
	m.SetSampler(s)
	m.Access(128, false)
	if s.n != 1 {
		t.Errorf("access after flush should miss")
	}
}

func TestPageOfWraps(t *testing.T) {
	m := NewMachine(testConfig(0)) // 64 pages
	if got := m.PageOf(uint64(m.PageSize()) * 100); got != PageID(100%64) {
		t.Errorf("PageOf out-of-range = %d, want %d", got, 100%64)
	}
}

func TestAdvanceIdle(t *testing.T) {
	m := NewMachine(testConfig(0))
	m.AdvanceIdle(1000)
	if m.Now() != 1000 {
		t.Errorf("Now = %d after AdvanceIdle(1000)", m.Now())
	}
	m.AdvanceIdle(-5) // ignored
	if m.Now() != 1000 {
		t.Errorf("negative idle advanced the clock")
	}
	// Fractional costs accumulate without being lost.
	for i := 0; i < 10; i++ {
		m.AdvanceIdle(0.25)
	}
	if m.Now() != 1002 {
		t.Errorf("Now = %d, want 1002 (fractional ns must accumulate)", m.Now())
	}
}

// Property: page residency accounting is conserved under arbitrary
// sequences of accesses and migrations.
func TestPageConservationProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMachine(testConfig(0))
		for _, op := range ops {
			p := PageID(op % 64)
			switch (op / 64) % 3 {
			case 0:
				m.Access(uint64(int64(p)*m.PageSize()), op%2 == 0)
			case 1:
				_ = m.MovePage(p, Fast)
			case 2:
				_ = m.MovePage(p, Slow)
			}
			// Invariants after every step.
			if m.UsedPages(Fast) > m.CapacityPages(Fast) {
				return false
			}
			total := 0
			for q := 0; q < m.NumPages(); q++ {
				if m.Allocated(PageID(q)) {
					total++
				}
			}
			if total != m.UsedPages(Fast)+m.UsedPages(Slow) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the clock is monotonically non-decreasing.
func TestClockMonotonicProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		m := NewMachine(testConfig(1 << 8))
		last := int64(0)
		for _, a := range addrs {
			m.Access(uint64(a), a%2 == 0)
			if m.Now() < last {
				return false
			}
			last = m.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, Counters) {
		m := NewMachine(testConfig(1 << 8))
		for i := 0; i < 10000; i++ {
			m.Access(uint64(i*977)%uint64(m.Config().FootprintBytes), i%3 == 0)
			if i%100 == 0 {
				_ = m.MovePage(m.PageOf(uint64(i)), Slow)
			}
		}
		return m.Now(), m.Counters()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Errorf("identical runs diverged: %d/%+v vs %d/%+v", t1, c1, t2, c2)
	}
}

func BenchmarkAccessHotPath(b *testing.B) {
	m := NewMachine(DefaultConfig(1<<30, 1<<29, 128<<10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Access(uint64(i*4099)&(1<<30-1), false)
	}
}

// BenchmarkAccessHotPathPushHistogram measures the opt-in push
// histogram on the access path, against BenchmarkAccessHotPath as the
// default (pull-instrumented) baseline. The default latency-class
// counting is plain integer increments and is always on; the atomic
// histogram is what SetAccessHistogram adds.
func BenchmarkAccessHotPathPushHistogram(b *testing.B) {
	m := NewMachine(DefaultConfig(1<<30, 1<<29, 128<<10))
	reg := telemetry.NewRegistry()
	m.SetAccessHistogram(reg.Histogram("bench_access_latency_ns", "", telemetry.DefBuckets))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Access(uint64(i*4099)&(1<<30-1), false)
	}
}

func TestMovePageSyncChargesAppFully(t *testing.T) {
	cfg := testConfig(0)
	m := NewMachine(cfg)
	m.Access(0, false)
	t0, bg0 := m.Now(), m.BackgroundNs()
	if err := m.MovePageSync(0, Slow); err != nil {
		t.Fatal(err)
	}
	if m.BackgroundNs() != bg0 {
		t.Errorf("sync move charged background time")
	}
	syncCost := m.Now() - t0
	// A background move of the same page charges only the interference
	// fraction to the app.
	t1 := m.Now()
	if err := m.MovePage(0, Fast); err != nil {
		t.Fatal(err)
	}
	asyncCost := m.Now() - t1
	if asyncCost >= syncCost {
		t.Errorf("async app cost %d not below sync cost %d", asyncCost, syncCost)
	}
	if m.BackgroundNs() == bg0 {
		t.Errorf("async move charged no background time")
	}
	// Errors propagate identically.
	if err := m.MovePageSync(40, Fast); err != ErrNotAllocated {
		t.Errorf("sync move of unallocated page: %v", err)
	}
}

// scriptedInjector is a deterministic FaultInjector for tests: it fails
// exactly the attempts whose (0-based) index is in failAt, and applies
// factor to every migration.
type scriptedInjector struct {
	failAt  map[int]bool
	factor  float64
	attempt int
}

func (s *scriptedInjector) FailMigration(now int64) bool {
	fail := s.failAt[s.attempt]
	s.attempt++
	return fail
}

func (s *scriptedInjector) BandwidthFactor(now int64) float64 {
	if s.factor > 1 {
		return s.factor
	}
	return 1
}

func TestInjectedMigrationBusy(t *testing.T) {
	m := NewMachine(testConfig(0))
	m.Access(0, false) // allocate page 0 in the fast tier
	inj := &scriptedInjector{failAt: map[int]bool{0: true}}
	m.SetFaultInjector(inj)

	if err := m.MovePage(0, Slow); err != ErrMigrationBusy {
		t.Fatalf("first attempt = %v, want ErrMigrationBusy", err)
	}
	// A failed attempt leaves state untouched.
	if m.TierOf(0) != Fast || m.UsedPages(Slow) != 0 {
		t.Error("failed migration mutated tier state")
	}
	if got := m.Counters().MigrationFailures; got != 1 {
		t.Errorf("MigrationFailures = %d, want 1", got)
	}
	if got := m.Counters().Migrations; got != 0 {
		t.Errorf("Migrations = %d after failure, want 0", got)
	}
	// The retry succeeds.
	if err := m.MovePage(0, Slow); err != nil {
		t.Fatalf("retry = %v", err)
	}
	if m.TierOf(0) != Slow {
		t.Error("retry did not move the page")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Errorf("invariants after injected fault: %v", err)
	}
}

func TestInjectedBandwidthDegradation(t *testing.T) {
	base := NewMachine(testConfig(0))
	base.Access(0, false)
	if err := base.MovePage(0, Slow); err != nil {
		t.Fatal(err)
	}
	baseTime := base.Now()

	slow := NewMachine(testConfig(0))
	slow.Access(0, false)
	slow.SetFaultInjector(&scriptedInjector{factor: 4})
	if err := slow.MovePage(0, Slow); err != nil {
		t.Fatal(err)
	}
	if slow.Now() <= baseTime {
		t.Errorf("degraded migration not slower: %d <= %d", slow.Now(), baseTime)
	}
}

func TestCheckInvariantsHolds(t *testing.T) {
	m := NewMachine(testConfig(0))
	if err := m.CheckInvariants(); err != nil {
		t.Errorf("fresh machine: %v", err)
	}
	// Fill both tiers and shuffle pages around.
	for p := 0; p < 64; p++ {
		m.Access(uint64(p)*64*1024, p%3 == 0)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Errorf("after allocation: %v", err)
	}
	for p := 0; p < 16; p++ {
		if err := m.MovePage(PageID(p), Slow); err != nil {
			break // slow tier sized to footprint; should not fail here
		}
		m.Access(uint64(p+32)*64*1024, false)
		m.MovePage(PageID(p+32), Fast)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Errorf("after migrations: %v", err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	m := NewMachine(testConfig(0))
	for p := 0; p < 8; p++ {
		m.Access(uint64(p)*64*1024, false)
	}
	// Corrupt the used counter directly (white-box: simulates the
	// accounting drift the invariant exists to catch).
	m.used[Fast]++
	if err := m.CheckInvariants(); err == nil {
		t.Error("counter drift not detected")
	}
	m.used[Fast]--

	// A page recorded in two tiers at once is impossible with a single
	// tier array; the equivalent corruption is a tier/counter mismatch.
	m.tier[0] = Slow
	if err := m.CheckInvariants(); err == nil {
		t.Error("tier map / counter mismatch not detected")
	}
	m.tier[0] = Fast

	// Over-capacity detection.
	savedCap := m.cap[Fast]
	m.cap[Fast] = 2
	if err := m.CheckInvariants(); err == nil {
		t.Error("over-capacity tier not detected")
	}
	m.cap[Fast] = savedCap

	if err := m.CheckInvariants(); err != nil {
		t.Errorf("restored machine still failing: %v", err)
	}
}

func TestMachinePageTrace(t *testing.T) {
	m := NewMachine(testConfig(0))
	pt := telemetry.NewPageTrace(64, 1)
	m.SetPageTrace(pt)

	m.Access(0, false) // first touch: alloc event, fast tier
	p := m.PageOf(0)
	if err := m.MovePage(p, Slow); err != nil {
		t.Fatal(err)
	}
	if err := m.MovePage(p, Fast); err != nil {
		t.Fatal(err)
	}
	ev := pt.PageEvents(uint64(p))
	if len(ev) != 3 {
		t.Fatalf("traced %d events, want 3 (alloc + 2 migrations): %+v", len(ev), ev)
	}
	if ev[0].Kind != telemetry.PageKindAlloc || ev[0].Tier != "fast" {
		t.Errorf("alloc event = %+v", ev[0])
	}
	if ev[1].Kind != telemetry.PageKindMigration || ev[1].From != "fast" ||
		ev[1].To != "slow" || ev[1].Outcome != telemetry.OutcomeSettled {
		t.Errorf("demotion event = %+v", ev[1])
	}
	if ev[2].From != "slow" || ev[2].To != "fast" || ev[2].Outcome != telemetry.OutcomeSettled {
		t.Errorf("promotion event = %+v", ev[2])
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].TimeNs < ev[i-1].TimeNs || ev[i].Seq <= ev[i-1].Seq {
			t.Errorf("events out of order: %+v then %+v", ev[i-1], ev[i])
		}
	}
}

func TestMachinePageTraceTierFull(t *testing.T) {
	cfg := testConfig(0)
	m := NewMachine(cfg)
	pt := telemetry.NewPageTrace(256, 1)
	m.SetPageTrace(pt)
	// Fill the fast tier, then allocate one page in slow and try to
	// promote it: the attempt must journal a tier_full outcome.
	for i := 0; i <= m.CapacityPages(Fast); i++ {
		m.Access(uint64(i)*uint64(cfg.PageSize), false)
	}
	var slow PageID = NoPage
	for p := 0; p < m.NumPages(); p++ {
		if m.Allocated(PageID(p)) && m.TierOf(PageID(p)) == Slow {
			slow = PageID(p)
			break
		}
	}
	if slow == NoPage {
		t.Fatal("no slow-tier page allocated")
	}
	if err := m.MovePage(slow, Fast); err != ErrTierFull {
		t.Fatalf("MovePage = %v, want ErrTierFull", err)
	}
	var found bool
	for _, e := range pt.PageEvents(uint64(slow)) {
		if e.Kind == telemetry.PageKindMigration && e.Outcome == telemetry.OutcomeTierFull {
			found = true
		}
	}
	if !found {
		t.Error("no tier_full migration event journaled")
	}
}
