package memsim

// Chain-machine introspection: per-tier and per-boundary accessors that
// generalize the fast/slow counter pairs. They work on every machine —
// a legacy two-tier machine reports tiers "fast" and "slow" with one
// boundary — which is what lets telemetry, the harness, and the
// boundary-decomposed RL runtime treat both shapes uniformly.

// Tiers returns the number of memory tiers (2 unless Config.Chain).
func (m *Machine) Tiers() int { return m.nt }

// NumBoundaries returns the number of adjacent tier pairs.
func (m *Machine) NumBoundaries() int { return m.nt - 1 }

// TierName returns tier t's label: "fast"/"slow" on legacy machines,
// the chain tier's name otherwise.
func (m *Machine) TierName(t TierID) string { return m.labels[t] }

// TierSpecAt returns tier t's resolved spec (capacity concrete).
func (m *Machine) TierSpecAt(t TierID) TierSpec { return m.specs[t] }

// TierAccesses returns the number of cache-missing accesses served by
// tier t, derived from the latency-class counters (so it costs nothing
// on the access path).
func (m *Machine) TierAccesses(t TierID) uint64 {
	return m.latCounts[latFastRead+2*int(t)] + m.latCounts[latFastWrite+2*int(t)]
}

// ShadowPages returns the number of shadow frames held in tier t
// (always 0 without Config.NonExclusive).
func (m *Machine) ShadowPages(t TierID) int {
	if m.sh == nil {
		return 0
	}
	return m.sh.Count(int(t))
}

// ResidentPages returns the pages whose authoritative copy lives in
// tier t — UsedPages minus shadow frames.
func (m *Machine) ResidentPages(t TierID) int {
	return m.used[t] - m.ShadowPages(t)
}

// ShadowOf reports the tier holding page p's shadow copy, if any.
func (m *Machine) ShadowOf(p PageID) (TierID, bool) {
	if m.sh == nil {
		return 0, false
	}
	st, ok := m.sh.At(uint32(p))
	return TierID(st), ok
}

// BoundaryStats is migration activity across one tier boundary
// (boundary b = the edge between tiers b and b+1).
type BoundaryStats struct {
	// Promotions and Demotions count moves crossing the boundary,
	// attributed to the destination side (promotion into tier b,
	// demotion into tier b+1). ShadowDiscards is the subset of
	// Demotions that completed as free discards onto a clean shadow.
	Promotions     uint64
	Demotions      uint64
	ShadowDiscards uint64
}

// BoundaryStatsAt returns cumulative migration counters for boundary b.
func (m *Machine) BoundaryStatsAt(b int) BoundaryStats {
	return BoundaryStats{
		Promotions:     m.bndProm[b],
		Demotions:      m.bndDem[b],
		ShadowDiscards: m.bndDisc[b],
	}
}
