// Package faultinject provides a deterministic, seedable fault injector
// for the ArtMem stack. The paper's kernel prototype runs against real
// hardware where migrations fail (busy or pinned pages make
// migrate_pages return -EAGAIN), PEBS buffers overflow, sampling goes
// dry, and memory bandwidth degrades under contention. The simulator's
// happy path models none of that, so this package supplies the fault
// surface the resilience machinery is tested against:
//
//   - transient migration failures (memsim.ErrMigrationBusy), with a
//     probability-plus-burst model — busy pages stay busy for a while —
//     and scheduled outage windows during which every migration fails;
//   - PEBS sample drops (the event is lost entirely, as when the PMU is
//     reprogrammed or the sampling interrupt is throttled) by
//     probability, by window, or on a periodic schedule;
//   - PEBS ring-buffer overflow windows, during which the buffer behaves
//     as full (records are lost but the PMU's window counters survive);
//   - bandwidth-degradation intervals that multiply migration transfer
//     cost, modelling a contended or throttled memory bus.
//
// All decisions derive from an explicitly seeded RNG and the machine's
// virtual clock, so a fault schedule replays bit-for-bit: identical
// configurations and access streams produce identical fault sequences,
// which is what makes chaos tests reproducible.
//
// The Injector implements memsim.FaultInjector (migration + bandwidth
// hooks) and pebs.Injector (sample-drop + overflow hooks). Like the
// Machine it instruments, it is not safe for concurrent use; the online
// runtime serializes access to it behind the System mutex.
package faultinject

import (
	"math"

	"artmem/internal/dist"
)

// Window is a half-open interval [StartNs, EndNs) of virtual time.
type Window struct {
	StartNs int64
	EndNs   int64
}

// Contains reports whether now falls inside the window.
func (w Window) Contains(now int64) bool {
	return now >= w.StartNs && now < w.EndNs
}

// Periodic describes a repeating fault window: within every PeriodNs of
// virtual time (phase-shifted by OffsetNs), the fault is active for the
// first DurationNs. The zero value is never active.
type Periodic struct {
	PeriodNs   int64
	DurationNs int64
	OffsetNs   int64
}

// Active reports whether the periodic fault is active at virtual time now.
func (p Periodic) Active(now int64) bool {
	if p.PeriodNs <= 0 || p.DurationNs <= 0 {
		return false
	}
	phase := (now - p.OffsetNs) % p.PeriodNs
	if phase < 0 {
		phase += p.PeriodNs
	}
	return phase < p.DurationNs
}

func anyActive(windows []Window, periodic Periodic, now int64) bool {
	for _, w := range windows {
		if w.Contains(now) {
			return true
		}
	}
	return periodic.Active(now)
}

// Config parameterizes an Injector. The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic decision. Two injectors built from
	// the same Config observe identical fault sequences when consulted
	// with identical call sequences.
	Seed uint64

	// MigrationFailProb is the per-attempt probability that a MovePage
	// call fails transiently with memsim.ErrMigrationBusy.
	MigrationFailProb float64
	// MigrationBurstMean, when > 1, turns independent failures into
	// bursts: once a failure fires, a geometric number of subsequent
	// attempts (mean MigrationBurstMean) also fail — a busy page stays
	// busy across immediate retries, as on real hardware.
	MigrationBurstMean float64
	// MigrationOutages are windows during which every migration fails.
	MigrationOutages []Window
	// MigrationOutagePeriodic is a repeating migration outage.
	MigrationOutagePeriodic Periodic

	// SampleDropProb is the per-sample probability that a PEBS record is
	// lost entirely (not even counted toward the sampled window ratio).
	SampleDropProb float64
	// SampleDropWindows are total sampling outages: every sample in the
	// window is lost, so the agent's signal goes dry.
	SampleDropWindows []Window
	// SampleDropPeriodic is a repeating sampling outage.
	SampleDropPeriodic Periodic

	// RingOverflowWindows are intervals during which the PEBS ring buffer
	// behaves as full: records are dropped (counted as overflow) but the
	// per-tier window counters still accumulate.
	RingOverflowWindows []Window
	// RingOverflowPeriodic is a repeating overflow window.
	RingOverflowPeriodic Periodic

	// BandwidthDegradeFactor multiplies migration transfer cost during
	// degradation windows. Values <= 1 disable degradation.
	BandwidthDegradeFactor float64
	// BandwidthDegradeWindows are the degradation intervals.
	BandwidthDegradeWindows []Window
	// BandwidthDegradePeriodic is a repeating degradation interval.
	BandwidthDegradePeriodic Periodic

	// TenantCrashProb is the per-lifecycle-boundary probability that a
	// tenant crashes (is force-deregistered mid-migration-period).
	TenantCrashProb float64
	// TenantCrashWindows are crash storms: a crash fires at every
	// lifecycle boundary inside the window.
	TenantCrashWindows []Window
	// TenantCrashPeriodic is a repeating crash storm.
	TenantCrashPeriodic Periodic

	// ReclaimInterruptProb is the per-page probability that a tenant
	// reclamation transaction is interrupted and rolled back.
	ReclaimInterruptProb float64
	// ReclaimInterruptWindows are intervals during which every
	// reclamation step is interrupted (drains cannot complete).
	ReclaimInterruptWindows []Window
	// ReclaimInterruptPeriodic is a repeating reclamation outage.
	ReclaimInterruptPeriodic Periodic

	// ArrivalBurstProb is the per-opportunity probability that a burst
	// of extra tenant registrations arrives (a thundering herd).
	ArrivalBurstProb float64
	// ArrivalBurstMax caps the extra arrivals per burst; < 1 means 1.
	ArrivalBurstMax int
	// ArrivalBurstWindows are intervals during which every registration
	// opportunity bursts.
	ArrivalBurstWindows []Window
	// ArrivalBurstPeriodic is a repeating arrival-burst schedule.
	ArrivalBurstPeriodic Periodic
}

// Stats counts the faults an Injector has delivered.
type Stats struct {
	// MigrationFailures is the number of MovePage attempts failed.
	MigrationFailures uint64
	// DroppedSamples is the number of PEBS records lost entirely.
	DroppedSamples uint64
	// OverflowedSamples is the number of records lost to injected ring
	// overflow.
	OverflowedSamples uint64
	// DegradedMigrations is the number of migrations that paid the
	// bandwidth-degradation penalty.
	DegradedMigrations uint64
	// TenantCrashes is the number of tenant-crash faults delivered.
	TenantCrashes uint64
	// ReclaimInterrupts is the number of reclamation steps interrupted.
	ReclaimInterrupts uint64
	// ArrivalBurstEvents counts arrival bursts; ArrivalBurstExtra is
	// the total extra registrations those bursts injected.
	ArrivalBurstEvents uint64
	ArrivalBurstExtra  uint64
}

// Injector delivers faults according to a Config. It implements
// memsim.FaultInjector and pebs.Injector.
type Injector struct {
	cfg Config

	// Independent streams per fault class keep decisions reproducible
	// even when call interleavings differ between runs.
	rngMig   *dist.RNG
	rngSmp   *dist.RNG
	rngCrash *dist.RNG
	rngRcl   *dist.RNG
	rngArr   *dist.RNG

	burstLeft int // remaining forced failures of the current burst

	stats Stats
}

// New returns an Injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:      cfg,
		rngMig:   dist.NewRNG(cfg.Seed ^ 0xfa117a11),
		rngSmp:   dist.NewRNG(cfg.Seed ^ 0x5a3b1edb),
		rngCrash: dist.NewRNG(cfg.Seed ^ 0xc4a5bdea),
		rngRcl:   dist.NewRNG(cfg.Seed ^ 0x4ec1a132),
		rngArr:   dist.NewRNG(cfg.Seed ^ 0xa441b075),
	}
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config { return i.cfg }

// Stats returns a snapshot of the fault counters.
func (i *Injector) Stats() Stats { return i.stats }

// FailMigration reports whether the current MovePage attempt should fail
// transiently. Implements memsim.FaultInjector.
func (i *Injector) FailMigration(now int64) bool {
	if anyActive(i.cfg.MigrationOutages, i.cfg.MigrationOutagePeriodic, now) {
		i.stats.MigrationFailures++
		return true
	}
	if i.burstLeft > 0 {
		i.burstLeft--
		i.stats.MigrationFailures++
		return true
	}
	if i.cfg.MigrationFailProb <= 0 || i.rngMig.Float64() >= i.cfg.MigrationFailProb {
		return false
	}
	if mean := i.cfg.MigrationBurstMean; mean > 1 {
		// Geometric burst length with the configured mean: the failure
		// that fires now plus burstLeft forced follow-ups.
		u := i.rngMig.Float64()
		if u < math.SmallestNonzeroFloat64 {
			u = math.SmallestNonzeroFloat64
		}
		i.burstLeft = int(math.Log(u) / math.Log(1-1/mean))
	}
	i.stats.MigrationFailures++
	return true
}

// BandwidthFactor returns the multiplier applied to migration transfer
// cost at virtual time now (1 outside degradation windows). Implements
// memsim.FaultInjector.
func (i *Injector) BandwidthFactor(now int64) float64 {
	if i.cfg.BandwidthDegradeFactor <= 1 {
		return 1
	}
	if !anyActive(i.cfg.BandwidthDegradeWindows, i.cfg.BandwidthDegradePeriodic, now) {
		return 1
	}
	i.stats.DegradedMigrations++
	return i.cfg.BandwidthDegradeFactor
}

// DropSample reports whether the PEBS record at virtual time now is lost
// entirely. Implements pebs.Injector.
func (i *Injector) DropSample(now int64) bool {
	if anyActive(i.cfg.SampleDropWindows, i.cfg.SampleDropPeriodic, now) {
		i.stats.DroppedSamples++
		return true
	}
	if i.cfg.SampleDropProb > 0 && i.rngSmp.Float64() < i.cfg.SampleDropProb {
		i.stats.DroppedSamples++
		return true
	}
	return false
}

// RingOverflow reports whether the PEBS ring buffer behaves as full at
// virtual time now. Implements pebs.Injector.
func (i *Injector) RingOverflow(now int64) bool {
	if anyActive(i.cfg.RingOverflowWindows, i.cfg.RingOverflowPeriodic, now) {
		i.stats.OverflowedSamples++
		return true
	}
	return false
}
