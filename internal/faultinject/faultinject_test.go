package faultinject

import "testing"

func TestZeroConfigInjectsNothing(t *testing.T) {
	i := New(Config{})
	for now := int64(0); now < 1_000_000; now += 997 {
		if i.FailMigration(now) {
			t.Fatalf("zero config failed a migration at %d", now)
		}
		if i.DropSample(now) {
			t.Fatalf("zero config dropped a sample at %d", now)
		}
		if i.RingOverflow(now) {
			t.Fatalf("zero config overflowed at %d", now)
		}
		if f := i.BandwidthFactor(now); f != 1 {
			t.Fatalf("zero config bandwidth factor %g at %d", f, now)
		}
	}
	if s := i.Stats(); s != (Stats{}) {
		t.Errorf("zero config accumulated stats %+v", s)
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{StartNs: 100, EndNs: 200}
	cases := []struct {
		now  int64
		want bool
	}{{99, false}, {100, true}, {199, true}, {200, false}}
	for _, c := range cases {
		if got := w.Contains(c.now); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.now, got, c.want)
		}
	}
}

func TestPeriodicSchedule(t *testing.T) {
	p := Periodic{PeriodNs: 1000, DurationNs: 100, OffsetNs: 50}
	cases := []struct {
		now  int64
		want bool
	}{
		{49, false}, {50, true}, {149, true}, {150, false},
		{1049, false}, {1050, true}, {1150, false},
		{-950, true}, // phase wraps correctly before the offset
	}
	for _, c := range cases {
		if got := p.Active(c.now); got != c.want {
			t.Errorf("Active(%d) = %v, want %v", c.now, got, c.want)
		}
	}
	if (Periodic{}).Active(0) {
		t.Error("zero Periodic is active")
	}
}

func TestMigrationFailProbability(t *testing.T) {
	i := New(Config{Seed: 7, MigrationFailProb: 0.1})
	const trials = 100_000
	fails := 0
	for k := 0; k < trials; k++ {
		if i.FailMigration(int64(k)) {
			fails++
		}
	}
	frac := float64(fails) / trials
	if frac < 0.08 || frac > 0.12 {
		t.Errorf("failure fraction %g, want ~0.1", frac)
	}
	if got := i.Stats().MigrationFailures; got != uint64(fails) {
		t.Errorf("stats count %d != observed %d", got, fails)
	}
}

func TestMigrationBurstsClumpFailures(t *testing.T) {
	// With a burst mean of 8, the same overall failure *initiations*
	// produce runs of consecutive failures.
	i := New(Config{Seed: 3, MigrationFailProb: 0.02, MigrationBurstMean: 8})
	const trials = 200_000
	fails, runs, inRun := 0, 0, false
	maxRun, cur := 0, 0
	for k := 0; k < trials; k++ {
		if i.FailMigration(int64(k)) {
			fails++
			cur++
			if !inRun {
				runs++
				inRun = true
			}
			if cur > maxRun {
				maxRun = cur
			}
		} else {
			inRun = false
			cur = 0
		}
	}
	if runs == 0 {
		t.Fatal("no failure runs at all")
	}
	meanRun := float64(fails) / float64(runs)
	if meanRun < 3 {
		t.Errorf("mean run length %g, want clumped (>= 3) with burst mean 8", meanRun)
	}
	if maxRun < 4 {
		t.Errorf("max run %d, want bursty behaviour", maxRun)
	}
}

func TestMigrationOutageWindow(t *testing.T) {
	i := New(Config{MigrationOutages: []Window{{StartNs: 1000, EndNs: 2000}}})
	if i.FailMigration(999) {
		t.Error("failed before the outage")
	}
	for now := int64(1000); now < 2000; now += 100 {
		if !i.FailMigration(now) {
			t.Errorf("survived inside the outage at %d", now)
		}
	}
	if i.FailMigration(2000) {
		t.Error("failed after the outage")
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{
		Seed:               42,
		MigrationFailProb:  0.2,
		MigrationBurstMean: 4,
		SampleDropProb:     0.3,
	}
	a, b := New(cfg), New(cfg)
	for k := 0; k < 50_000; k++ {
		now := int64(k * 13)
		if a.FailMigration(now) != b.FailMigration(now) {
			t.Fatalf("migration decision diverged at call %d", k)
		}
		if a.DropSample(now) != b.DropSample(now) {
			t.Fatalf("sample decision diverged at call %d", k)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestIndependentStreamsPerFaultClass(t *testing.T) {
	// Interleaving sampling calls must not perturb migration decisions:
	// each fault class draws from its own RNG stream.
	cfg := Config{Seed: 9, MigrationFailProb: 0.15, SampleDropProb: 0.5}
	pure := New(cfg)
	mixed := New(cfg)
	var pureSeq, mixedSeq []bool
	for k := 0; k < 10_000; k++ {
		now := int64(k)
		pureSeq = append(pureSeq, pure.FailMigration(now))
		mixed.DropSample(now) // extra interleaved consultation
		mixedSeq = append(mixedSeq, mixed.FailMigration(now))
	}
	for k := range pureSeq {
		if pureSeq[k] != mixedSeq[k] {
			t.Fatalf("migration stream perturbed by sampling calls at %d", k)
		}
	}
}

func TestBandwidthDegradation(t *testing.T) {
	i := New(Config{
		BandwidthDegradeFactor:  3,
		BandwidthDegradeWindows: []Window{{StartNs: 0, EndNs: 500}},
	})
	if f := i.BandwidthFactor(100); f != 3 {
		t.Errorf("factor inside window = %g, want 3", f)
	}
	if f := i.BandwidthFactor(600); f != 1 {
		t.Errorf("factor outside window = %g, want 1", f)
	}
	if got := i.Stats().DegradedMigrations; got != 1 {
		t.Errorf("degraded migrations = %d, want 1", got)
	}
	// Factor <= 1 disables degradation entirely.
	off := New(Config{BandwidthDegradeFactor: 0.5,
		BandwidthDegradeWindows: []Window{{StartNs: 0, EndNs: 500}}})
	if f := off.BandwidthFactor(100); f != 1 {
		t.Errorf("sub-unity factor applied: %g", f)
	}
}

func TestSampleDropAndOverflowWindows(t *testing.T) {
	i := New(Config{
		SampleDropPeriodic:  Periodic{PeriodNs: 100, DurationNs: 50},
		RingOverflowWindows: []Window{{StartNs: 1000, EndNs: 1100}},
	})
	if !i.DropSample(25) {
		t.Error("sample survived inside the periodic drop window")
	}
	if i.DropSample(75) {
		t.Error("sample dropped outside the periodic window")
	}
	if !i.RingOverflow(1050) {
		t.Error("no overflow inside the window")
	}
	if i.RingOverflow(1150) {
		t.Error("overflow outside the window")
	}
	s := i.Stats()
	if s.DroppedSamples != 1 || s.OverflowedSamples != 1 {
		t.Errorf("stats = %+v", s)
	}
}
