package faultinject

import "testing"

func TestChurnClassesAreDeterministic(t *testing.T) {
	cfg := Config{
		Seed:                 7,
		TenantCrashProb:      0.3,
		ReclaimInterruptProb: 0.2,
		ArrivalBurstProb:     0.25,
		ArrivalBurstMax:      4,
	}
	a, b := New(cfg), New(cfg)
	for now := int64(0); now < 200; now++ {
		if ga, gb := a.CrashTenant(now), b.CrashTenant(now); ga != gb {
			t.Fatalf("CrashTenant diverged at %d: %v vs %v", now, ga, gb)
		}
		if ga, gb := a.FailReclaim(now), b.FailReclaim(now); ga != gb {
			t.Fatalf("FailReclaim diverged at %d: %v vs %v", now, ga, gb)
		}
		if ga, gb := a.ArrivalBurst(now), b.ArrivalBurst(now); ga != gb {
			t.Fatalf("ArrivalBurst diverged at %d: %d vs %d", now, ga, gb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if s := a.Stats(); s.TenantCrashes == 0 || s.ReclaimInterrupts == 0 ||
		s.ArrivalBurstEvents == 0 || s.ArrivalBurstExtra < s.ArrivalBurstEvents {
		t.Fatalf("expected all churn classes to fire, got %+v", s)
	}
}

func TestChurnStreamsAreIndependentOfOtherClasses(t *testing.T) {
	cfg := Config{Seed: 11, TenantCrashProb: 0.5, MigrationFailProb: 0.5}
	// Injector a interleaves migration-fault draws; b does not. The
	// crash stream must be identical either way.
	a, b := New(cfg), New(cfg)
	var seqA, seqB []bool
	for now := int64(0); now < 100; now++ {
		a.FailMigration(now)
		seqA = append(seqA, a.CrashTenant(now))
		seqB = append(seqB, b.CrashTenant(now))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("crash stream shifted by migration draws at step %d", i)
		}
	}
}

func TestChurnWindowsForceFaults(t *testing.T) {
	cfg := Config{
		Seed:                    1,
		TenantCrashWindows:      []Window{{StartNs: 100, EndNs: 200}},
		ReclaimInterruptWindows: []Window{{StartNs: 100, EndNs: 200}},
		ArrivalBurstPeriodic:    Periodic{PeriodNs: 100, DurationNs: 10},
		ArrivalBurstMax:         3,
	}
	i := New(cfg)
	if i.CrashTenant(50) || i.FailReclaim(50) {
		t.Fatal("faults fired outside window with zero probability")
	}
	if !i.CrashTenant(150) || !i.FailReclaim(150) {
		t.Fatal("window did not force churn faults")
	}
	if got := i.ArrivalBurst(50); got != 0 {
		t.Fatalf("burst outside periodic window = %d, want 0", got)
	}
	if got := i.ArrivalBurst(205); got < 1 || got > 3 {
		t.Fatalf("burst inside periodic window = %d, want 1..3", got)
	}
}
