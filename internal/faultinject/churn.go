package faultinject

// Churn fault classes: tenant crashes, reclamation interruptions, and
// registration arrival bursts. These follow the package's per-class RNG
// stream pattern — each class draws from its own seeded stream, keyed
// to the virtual clock, so a churn schedule replays bit-for-bit no
// matter how other fault classes interleave with it. The injector only
// *decides*; the churn harness (harness.RunChurn, the chaos suite)
// applies the decisions: it consults CrashTenant once per lifecycle
// boundary, FailReclaim once per page of a reclamation transaction, and
// ArrivalBurst once per registration opportunity.

// CrashTenant reports whether a tenant crash fires at virtual time now.
// The churn harness consults it at lifecycle boundaries and, when it
// fires, force-deregisters a victim tenant mid-migration-period.
func (i *Injector) CrashTenant(now int64) bool {
	if anyActive(i.cfg.TenantCrashWindows, i.cfg.TenantCrashPeriodic, now) {
		i.stats.TenantCrashes++
		return true
	}
	if i.cfg.TenantCrashProb > 0 && i.rngCrash.Float64() < i.cfg.TenantCrashProb {
		i.stats.TenantCrashes++
		return true
	}
	return false
}

// FailReclaim reports whether the current reclamation step should be
// interrupted. The tenancy plane consults it once per page inside a
// reclamation transaction; an interruption rolls the whole transaction
// back (the tenant stays draining and the plane retries later).
func (i *Injector) FailReclaim(now int64) bool {
	if anyActive(i.cfg.ReclaimInterruptWindows, i.cfg.ReclaimInterruptPeriodic, now) {
		i.stats.ReclaimInterrupts++
		return true
	}
	if i.cfg.ReclaimInterruptProb > 0 && i.rngRcl.Float64() < i.cfg.ReclaimInterruptProb {
		i.stats.ReclaimInterrupts++
		return true
	}
	return false
}

// ArrivalBurst returns how many extra tenant registrations arrive on
// top of the scheduled one at virtual time now (0 outside bursts) — a
// thundering herd of tenants appearing within one control period.
func (i *Injector) ArrivalBurst(now int64) int {
	fired := anyActive(i.cfg.ArrivalBurstWindows, i.cfg.ArrivalBurstPeriodic, now)
	if !fired && i.cfg.ArrivalBurstProb > 0 && i.rngArr.Float64() < i.cfg.ArrivalBurstProb {
		fired = true
	}
	if !fired {
		return 0
	}
	max := i.cfg.ArrivalBurstMax
	if max < 1 {
		max = 1
	}
	extra := 1 + int(i.rngArr.Uint64n(uint64(max)))
	i.stats.ArrivalBurstEvents++
	i.stats.ArrivalBurstExtra += uint64(extra)
	return extra
}
