package graph

// This file contains the three GAP algorithms the paper evaluates (CC,
// SSSP, PR), instrumented to report every logical memory reference.
// Each algorithm walks the CSR arrays sequentially (high spatial
// locality) while reading and writing per-vertex state indexed by
// neighbor ID (data-dependent, scattered) — the combination that makes
// graph analytics interesting for tiered memory (paper §6.2: "the
// performance of graph processing algorithms largely depends on data
// locality").

// ConnectedComponents runs label-propagation connected components
// (the Shiloach-Vishkin flavour used by GAP's cc_sv) over g, reporting
// every reference through touch. It returns the component label of each
// vertex and the number of full passes performed.
func ConnectedComponents(g *Graph, l *Layout, touch Touch) ([]uint32, int) {
	n := g.NumVertices()
	labels := make([]uint32, n)
	for v := range labels {
		labels[v] = uint32(v)
		touch(l.PropAddr(uint32(v)), true)
	}
	passes := 0
	for changed := true; changed; {
		changed = false
		passes++
		var ei uint64
		for v := 0; v < n; v++ {
			touch(l.OffsetAddr(uint32(v)), false)
			lv := labels[v]
			touch(l.PropAddr(uint32(v)), false)
			for _, w := range g.Neighbors(uint32(v)) {
				touch(l.EdgeAddr(ei), false)
				ei++
				touch(l.PropAddr(w), false)
				lw := labels[w]
				switch {
				case lw < lv:
					lv = lw
					labels[v] = lv
					touch(l.PropAddr(uint32(v)), true)
					changed = true
				case lv < lw:
					labels[w] = lv
					touch(l.PropAddr(w), true)
					changed = true
				}
			}
		}
	}
	return labels, passes
}

// inf is the SSSP "unreached" distance.
const inf = ^uint32(0)

// SSSP runs single-source shortest paths from source using frontier-based
// Bellman-Ford (the data-access skeleton of GAP's delta-stepping: each
// round scans the CSR rows of the active frontier and relaxes per-vertex
// distances). It returns the distance array and the number of rounds.
func SSSP(g *Graph, l *Layout, source uint32, touch Touch) ([]uint32, int) {
	n := g.NumVertices()
	distArr := make([]uint32, n)
	for v := range distArr {
		distArr[v] = inf
		touch(l.PropAddr(uint32(v)), true)
	}
	distArr[source] = 0
	touch(l.PropAddr(source), true)

	frontier := []uint32{source}
	inNext := make([]bool, n)
	rounds := 0
	for len(frontier) > 0 {
		rounds++
		var next []uint32
		for _, v := range frontier {
			touch(l.OffsetAddr(v), false)
			dv := distArr[v]
			touch(l.PropAddr(v), false)
			nbrs := g.Neighbors(v)
			ws := g.Weights(v)
			base := l.Base // avoid unused when unweighted
			_ = base
			for i, w := range nbrs {
				touch(l.EdgeAddr(g.offsets[v]+uint64(i)), false)
				weight := uint32(1)
				if ws != nil {
					weight = uint32(ws[i])
				}
				nd := dv + weight
				touch(l.PropAddr(w), false)
				if nd < distArr[w] {
					distArr[w] = nd
					touch(l.PropAddr(w), true)
					touch(l.Prop2Addr(w), false)
					if !inNext[w] {
						inNext[w] = true
						touch(l.Prop2Addr(w), true)
						next = append(next, w)
					}
				}
			}
		}
		for _, v := range next {
			inNext[v] = false
			touch(l.Prop2Addr(v), true)
		}
		frontier = next
	}
	return distArr, rounds
}

// PageRank runs iters iterations of synchronous PageRank with damping
// factor d, reporting every reference. It returns the final ranks.
func PageRank(g *Graph, l *Layout, iters int, d float64, touch Touch) []float64 {
	n := g.NumVertices()
	ranks := make([]float64, n)
	next := make([]float64, n)
	initial := 1 / float64(n)
	for v := range ranks {
		ranks[v] = initial
		touch(l.PropAddr(uint32(v)), true)
	}
	base := (1 - d) / float64(n)
	for it := 0; it < iters; it++ {
		for v := range next {
			next[v] = base
			touch(l.Prop2Addr(uint32(v)), true)
		}
		var ei uint64
		for v := 0; v < n; v++ {
			touch(l.OffsetAddr(uint32(v)), false)
			deg := g.Degree(uint32(v))
			if deg == 0 {
				continue
			}
			touch(l.PropAddr(uint32(v)), false)
			share := d * ranks[v] / float64(deg)
			for _, w := range g.Neighbors(uint32(v)) {
				touch(l.EdgeAddr(ei), false)
				ei++
				touch(l.Prop2Addr(w), false)
				next[w] += share
				touch(l.Prop2Addr(w), true)
			}
		}
		ranks, next = next, ranks
	}
	return ranks
}
