package graph

import (
	"testing"
	"testing/quick"

	"artmem/internal/dist"
)

func countingTouch() (Touch, *int) {
	n := new(int)
	return func(uint64, bool) { *n++ }, n
}

func TestGenUniformShape(t *testing.T) {
	g := GenUniform(dist.NewRNG(1), 100, 1000, false)
	if g.NumVertices() != 100 {
		t.Errorf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 1000 {
		t.Errorf("edges = %d, want 1000", g.NumEdges())
	}
	// All targets must be valid vertex IDs.
	for v := uint32(0); v < 100; v++ {
		for _, w := range g.Neighbors(v) {
			if w >= 100 {
				t.Fatalf("edge %d→%d out of range", v, w)
			}
		}
	}
	if g.Weights(0) != nil {
		t.Error("unweighted graph has weights")
	}
}

func TestGenWeighted(t *testing.T) {
	g := GenUniform(dist.NewRNG(1), 50, 500, true)
	total := 0
	for v := uint32(0); v < 50; v++ {
		ws := g.Weights(v)
		if len(ws) != g.Degree(v) {
			t.Fatalf("weights len %d != degree %d", len(ws), g.Degree(v))
		}
		for _, w := range ws {
			if w < 1 || w >= 64 {
				t.Fatalf("weight %d out of [1,64)", w)
			}
		}
		total += len(ws)
	}
	if total != 500 {
		t.Errorf("total weights %d", total)
	}
}

func TestGenPowerLawSkew(t *testing.T) {
	g := GenPowerLaw(dist.NewRNG(2), 1000, 20000, false)
	indeg := make([]int, 1000)
	for v := uint32(0); v < 1000; v++ {
		for _, w := range g.Neighbors(v) {
			indeg[w]++
		}
	}
	maxDeg, sum := 0, 0
	for _, d := range indeg {
		if d > maxDeg {
			maxDeg = d
		}
		sum += d
	}
	mean := sum / 1000
	if maxDeg < mean*5 {
		t.Errorf("max in-degree %d not ≫ mean %d; degree distribution not skewed",
			maxDeg, mean)
	}
}

func TestGenWebLocality(t *testing.T) {
	g := GenWeb(dist.NewRNG(3), 100000, 200000, false)
	local, total := 0, 0
	for v := uint32(0); v < 100000; v++ {
		for _, w := range g.Neighbors(v) {
			d := int(v) - int(w)
			if d < 0 {
				d = -d
			}
			if d <= 4096 || d >= 100000-4096 {
				local++
			}
			total++
		}
	}
	if frac := float64(local) / float64(total); frac < 0.7 {
		t.Errorf("local edge fraction = %g, want high locality", frac)
	}
}

func TestGeneratorsPanicOnBadSize(t *testing.T) {
	for name, fn := range map[string]func(){
		"uniform":  func() { GenUniform(dist.NewRNG(1), 0, 10, false) },
		"powerlaw": func() { GenPowerLaw(dist.NewRNG(1), 10, -1, false) },
		"web":      func() { GenWeb(dist.NewRNG(1), -1, 10, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLayoutDisjointRegions(t *testing.T) {
	g := GenUniform(dist.NewRNG(1), 100, 500, false)
	l := NewLayout(g, 4096, 8, 8, 16)
	// offsets end where edges begin, etc.
	if l.OffsetAddr(100)+8 != l.EdgeAddr(0) {
		t.Errorf("offsets/edges regions overlap or gap: %d vs %d",
			l.OffsetAddr(100)+8, l.EdgeAddr(0))
	}
	if l.EdgeAddr(499)+8 != l.PropAddr(0) {
		t.Errorf("edges/prop boundary wrong")
	}
	if l.PropAddr(99)+16 != l.Prop2Addr(0) {
		t.Errorf("prop/prop2 boundary wrong")
	}
	wantFoot := int64((100+1)*8 + 500*8 + 100*16*2)
	if l.Footprint() != wantFoot {
		t.Errorf("Footprint = %d, want %d", l.Footprint(), wantFoot)
	}
}

func TestLayoutDefaultStrides(t *testing.T) {
	g := GenUniform(dist.NewRNG(1), 10, 10, false)
	l := NewLayout(g, 0, 0, 0, 0)
	if l.OffsetsStride != 8 || l.EdgesStride != 8 || l.PropStride != 8 {
		t.Errorf("default strides = %d/%d/%d", l.OffsetsStride, l.EdgesStride, l.PropStride)
	}
}

// A small graph with two components: {0,1,2} in a triangle, {3,4} an edge.
func twoComponentGraph() *Graph {
	adj := [][]uint32{
		{1, 2}, {0, 2}, {0, 1}, {4}, {3},
	}
	return fromAdjacency(adj, false, dist.NewRNG(1))
}

func TestConnectedComponentsCorrect(t *testing.T) {
	g := twoComponentGraph()
	l := NewLayout(g, 0, 8, 8, 8)
	touch, n := countingTouch()
	labels, passes := ConnectedComponents(g, l, touch)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("triangle labels differ: %v", labels[:3])
	}
	if labels[3] != labels[4] {
		t.Errorf("edge labels differ: %v", labels[3:])
	}
	if labels[0] == labels[3] {
		t.Errorf("distinct components share a label: %v", labels)
	}
	if passes < 1 {
		t.Errorf("passes = %d", passes)
	}
	if *n == 0 {
		t.Error("CC produced no touches")
	}
}

func TestCCOnRandomGraphSingleLabelPerComponent(t *testing.T) {
	g := GenUniform(dist.NewRNG(4), 200, 3000, false)
	l := NewLayout(g, 0, 8, 8, 8)
	labels, _ := ConnectedComponents(g, l, func(uint64, bool) {})
	// Verify the CC invariant: every edge connects same-label vertices.
	for v := uint32(0); v < 200; v++ {
		for _, w := range g.Neighbors(v) {
			if labels[v] != labels[w] {
				t.Fatalf("edge %d→%d crosses labels %d/%d", v, w, labels[v], labels[w])
			}
		}
	}
}

func TestSSSPCorrectOnKnownGraph(t *testing.T) {
	// 0 →(1) 1 →(1) 2, and 0 →(4) 2 directly: shortest 0→2 is 2.
	adj := [][]uint32{{1, 2}, {2}, {}}
	g := fromAdjacency(adj, false, dist.NewRNG(1))
	g.weights = []uint16{1, 4, 1}
	l := NewLayout(g, 0, 8, 8, 8)
	d, rounds := SSSP(g, l, 0, func(uint64, bool) {})
	if d[0] != 0 || d[1] != 1 || d[2] != 2 {
		t.Errorf("distances = %v, want [0 1 2]", d)
	}
	if rounds < 1 {
		t.Errorf("rounds = %d", rounds)
	}
}

func TestSSSPUnweightedIsBFS(t *testing.T) {
	adj := [][]uint32{{1}, {2}, {3}, {}}
	g := fromAdjacency(adj, false, dist.NewRNG(1))
	l := NewLayout(g, 0, 8, 8, 8)
	d, _ := SSSP(g, l, 0, func(uint64, bool) {})
	for i, want := range []uint32{0, 1, 2, 3} {
		if d[i] != want {
			t.Errorf("d[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestSSSPUnreachable(t *testing.T) {
	adj := [][]uint32{{}, {}}
	g := fromAdjacency(adj, false, dist.NewRNG(1))
	l := NewLayout(g, 0, 8, 8, 8)
	d, _ := SSSP(g, l, 0, func(uint64, bool) {})
	if d[1] != inf {
		t.Errorf("unreachable vertex distance = %d, want inf", d[1])
	}
}

func TestPageRankConservesMass(t *testing.T) {
	g := GenUniform(dist.NewRNG(5), 100, 1000, false)
	l := NewLayout(g, 0, 8, 8, 8)
	ranks := PageRank(g, l, 5, 0.85, func(uint64, bool) {})
	sum := 0.0
	for _, r := range ranks {
		if r < 0 {
			t.Fatalf("negative rank %g", r)
		}
		sum += r
	}
	// With no dangling-mass redistribution, total mass stays ≤ 1 and
	// positive; for a degree-regular random graph it should stay near 1.
	if sum < 0.5 || sum > 1.01 {
		t.Errorf("rank mass = %g, want ≈ 1", sum)
	}
}

func TestPageRankHubGetsHighRank(t *testing.T) {
	// Star: all vertices point to 0.
	adj := make([][]uint32, 50)
	for v := 1; v < 50; v++ {
		adj[v] = []uint32{0}
	}
	adj[0] = []uint32{1}
	g := fromAdjacency(adj, false, dist.NewRNG(1))
	l := NewLayout(g, 0, 8, 8, 8)
	ranks := PageRank(g, l, 10, 0.85, func(uint64, bool) {})
	// Vertex 1 receives all of the hub's rank, so compare against the
	// ordinary leaves only.
	for v := 2; v < 50; v++ {
		if ranks[0] <= ranks[v] {
			t.Fatalf("hub rank %g not above leaf %d rank %g", ranks[0], v, ranks[v])
		}
	}
}

func TestAlgorithmTouchesStayInLayout(t *testing.T) {
	g := GenPowerLaw(dist.NewRNG(6), 300, 4000, true)
	l := NewLayout(g, 1<<20, 8, 8, 8)
	lo, hi := uint64(1<<20), uint64(1<<20)+uint64(l.Footprint())
	check := func(addr uint64, _ bool) {
		if addr < lo || addr >= hi {
			t.Fatalf("touch at %#x outside layout [%#x, %#x)", addr, lo, hi)
		}
	}
	ConnectedComponents(g, l, check)
	SSSP(g, l, 0, check)
	PageRank(g, l, 2, 0.85, check)
}

// Property: CC labels are the same regardless of the trace callback, and
// are idempotent (running twice gives identical labels).
func TestCCDeterministicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := GenUniform(dist.NewRNG(seed), 64, 256, false)
		l := NewLayout(g, 0, 8, 8, 8)
		a, _ := ConnectedComponents(g, l, func(uint64, bool) {})
		b, _ := ConnectedComponents(g, l, func(uint64, bool) {})
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPageRankTrace(b *testing.B) {
	g := GenUniform(dist.NewRNG(1), 10000, 160000, false)
	l := NewLayout(g, 0, 8, 8, 8)
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRank(g, l, 1, 0.85, func(uint64, bool) { sink++ })
	}
}
