// Package graph provides the graph-analytics substrate used to reproduce
// the paper's GAP workloads (CC, SSSP, PageRank — Table 3).
//
// A Graph is stored in compressed sparse row (CSR) form, like GAP. The
// algorithms are real implementations (Shiloach-Vishkin style label
// propagation for CC, Bellman-Ford with an active frontier for SSSP,
// iterative PageRank); each one reports every logical memory reference it
// makes through a Touch callback, mapping its data structures onto a
// virtual address-space layout. Feeding those touches into the memsim
// machine yields the same kind of address trace the paper's kernel saw
// from the real GAP binaries: sequential sweeps over the CSR arrays mixed
// with data-dependent scattered reads of per-vertex state.
//
// Graph generators cover the paper's three input classes: uniform random
// (Erdős–Rényi, the "Urand" input), power-law (Kronecker-like, standing
// in for the Twitter graph), and a grid-ish "web" graph with strong
// locality.
package graph

import (
	"fmt"

	"artmem/internal/dist"
)

// Touch reports one logical memory access at a virtual address.
type Touch func(addr uint64, write bool)

// Graph is a directed graph in CSR form. Vertex IDs are dense [0, N).
type Graph struct {
	// offsets has N+1 entries; the out-neighbors of vertex v are
	// edges[offsets[v]:offsets[v+1]].
	offsets []uint64
	edges   []uint32
	// weights, when non-nil, parallels edges (for SSSP).
	weights []uint16
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v uint32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the out-neighbor slice of v. The slice aliases the
// graph; callers must not modify it.
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}

// Weights returns the edge-weight slice of v (nil for unweighted graphs).
func (g *Graph) Weights(v uint32) []uint16 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// fromAdjacency builds CSR from an adjacency list, attaching uniform
// random weights in [1, 64) when weighted is set.
func fromAdjacency(adj [][]uint32, weighted bool, rng *dist.RNG) *Graph {
	n := len(adj)
	g := &Graph{offsets: make([]uint64, n+1)}
	total := 0
	for _, a := range adj {
		total += len(a)
	}
	g.edges = make([]uint32, 0, total)
	if weighted {
		g.weights = make([]uint16, 0, total)
	}
	for v, a := range adj {
		g.offsets[v] = uint64(len(g.edges))
		g.edges = append(g.edges, a...)
		if weighted {
			for range a {
				g.weights = append(g.weights, uint16(1+rng.Intn(63)))
			}
		}
		_ = v
	}
	g.offsets[n] = uint64(len(g.edges))
	return g
}

// GenUniform generates an Erdős–Rényi style random graph with n vertices
// and approximately m directed edges — the GAP "Urand" input class, which
// has essentially no locality and a flat degree distribution.
func GenUniform(rng *dist.RNG, n, m int, weighted bool) *Graph {
	if n <= 0 || m < 0 {
		panic(fmt.Sprintf("graph: invalid size n=%d m=%d", n, m))
	}
	adj := make([][]uint32, n)
	per := m / n
	for v := range adj {
		d := per
		// Spread the remainder.
		if v < m%n {
			d++
		}
		a := make([]uint32, d)
		for i := range a {
			a[i] = uint32(rng.Intn(n))
		}
		adj[v] = a
	}
	return fromAdjacency(adj, weighted, rng)
}

// GenPowerLaw generates a graph with a Zipfian in-degree distribution —
// the class the Twitter social graph belongs to. A few celebrity vertices
// receive a large share of the edges, producing a small, very hot region
// of per-vertex state.
func GenPowerLaw(rng *dist.RNG, n, m int, weighted bool) *Graph {
	if n <= 0 || m < 0 {
		panic(fmt.Sprintf("graph: invalid size n=%d m=%d", n, m))
	}
	z := dist.NewZipf(rng, uint64(n), 0.75)
	// Scatter the popular endpoints across the ID space deterministically
	// so "hot vertices" are not all page-adjacent.
	perm := rng.Perm(n)
	adj := make([][]uint32, n)
	per := m / n
	for v := range adj {
		d := per
		if v < m%n {
			d++
		}
		a := make([]uint32, d)
		for i := range a {
			a[i] = uint32(perm[z.Next()])
		}
		adj[v] = a
	}
	return fromAdjacency(adj, weighted, rng)
}

// GenWeb generates a locality-heavy graph: most edges connect to nearby
// vertex IDs (as in crawled web graphs, where lexicographic URL ordering
// makes links local). This is the "Web" input class.
func GenWeb(rng *dist.RNG, n, m int, weighted bool) *Graph {
	if n <= 0 || m < 0 {
		panic(fmt.Sprintf("graph: invalid size n=%d m=%d", n, m))
	}
	adj := make([][]uint32, n)
	per := m / n
	for v := range adj {
		d := per
		if v < m%n {
			d++
		}
		a := make([]uint32, d)
		for i := range a {
			if rng.Float64() < 0.85 {
				// Local edge within a ±4096 window, wrapped onto [0, n).
				// Go's % keeps the dividend's sign, so normalize after —
				// on graphs smaller than the window (tiny test profiles)
				// v+delta can sit below -n.
				delta := rng.Intn(8192) - 4096
				t := (v + delta) % n
				if t < 0 {
					t += n
				}
				a[i] = uint32(t)
			} else {
				a[i] = uint32(rng.Intn(n))
			}
		}
		adj[v] = a
	}
	return fromAdjacency(adj, weighted, rng)
}

// Layout maps the graph's data structures and per-vertex algorithm state
// onto a virtual address space, so algorithm touches become addresses.
// Strides are virtual bytes per element; they let a modest in-memory
// graph stand in for the paper's tens-of-GB inputs while preserving the
// shape of the page-level access pattern (see DESIGN.md).
type Layout struct {
	// Base is the first virtual address of the graph region.
	Base uint64
	// OffsetsStride, EdgesStride, PropStride are virtual bytes per
	// offsets entry, per edge entry, and per vertex-property entry.
	OffsetsStride uint64
	EdgesStride   uint64
	PropStride    uint64

	offsetsBase uint64
	edgesBase   uint64
	propBase    uint64
	prop2Base   uint64
	end         uint64
}

// NewLayout lays out graph g starting at base with the given strides
// (zero strides default to 8/8/8).
func NewLayout(g *Graph, base uint64, offStride, edgeStride, propStride uint64) *Layout {
	if offStride == 0 {
		offStride = 8
	}
	if edgeStride == 0 {
		edgeStride = 8
	}
	if propStride == 0 {
		propStride = 8
	}
	l := &Layout{
		Base:          base,
		OffsetsStride: offStride,
		EdgesStride:   edgeStride,
		PropStride:    propStride,
	}
	n := uint64(g.NumVertices())
	m := uint64(g.NumEdges())
	l.offsetsBase = base
	l.edgesBase = l.offsetsBase + (n+1)*offStride
	l.propBase = l.edgesBase + m*edgeStride
	l.prop2Base = l.propBase + n*propStride
	l.end = l.prop2Base + n*propStride
	return l
}

// Footprint returns the number of virtual bytes the layout spans.
func (l *Layout) Footprint() int64 { return int64(l.end - l.Base) }

// OffsetAddr returns the virtual address of offsets[v].
func (l *Layout) OffsetAddr(v uint32) uint64 {
	return l.offsetsBase + uint64(v)*l.OffsetsStride
}

// EdgeAddr returns the virtual address of edges[i].
func (l *Layout) EdgeAddr(i uint64) uint64 {
	return l.edgesBase + i*l.EdgesStride
}

// PropAddr returns the virtual address of the primary per-vertex
// property of v (labels for CC, distances for SSSP, ranks for PR).
func (l *Layout) PropAddr(v uint32) uint64 {
	return l.propBase + uint64(v)*l.PropStride
}

// Prop2Addr returns the virtual address of the secondary per-vertex
// property (next-iteration ranks for PR, frontier flags for SSSP).
func (l *Layout) Prop2Addr(v uint32) uint64 {
	return l.prop2Base + uint64(v)*l.PropStride
}
