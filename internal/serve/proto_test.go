package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

// decodeWire strips the length prefix off one encoded frame and
// decodes the body — the test-side composition of ReadFrame+Decode.
func decodeWire(t *testing.T, wire []byte) Frame {
	t.Helper()
	body, err := ReadFrame(bytes.NewReader(wire))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	f, err := DecodeFrame(body)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	return f
}

func TestProtoRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: OpAccess, Addr: 0x1000},
		{Op: OpAccess, Write: true, Addr: 0xdeadbeefcafe},
		{Op: OpAlloc, Addr: 1 << 21, Size: 8 << 20},
		{Op: OpFree, Addr: 0, Size: 4096},
	}
	cases := []struct {
		name string
		wire []byte
		want Frame
	}{
		{"hello", AppendHello(nil, 7, "artload-3"),
			Frame{Type: FrameHello, Version: ProtoVersion, Tenant: 7, ClientID: "artload-3"}},
		{"hello ack", AppendHelloAck(nil, CodeDraining, "server draining"),
			Frame{Type: FrameHelloAck, Code: CodeDraining, Msg: "server draining"}},
		{"batch", AppendBatch(nil, 42, recs),
			Frame{Type: FrameBatch, Seq: 42, Records: recs}},
		{"empty batch", AppendBatch(nil, 1, nil),
			Frame{Type: FrameBatch, Seq: 1, Records: []Record{}}},
		{"ack", AppendAck(nil, 42, 4096, 12345),
			Frame{Type: FrameAck, Seq: 42, Count: 4096, QueueNs: 12345}},
		{"reject", AppendReject(nil, 9, CodeOverloaded, "queue full"),
			Frame{Type: FrameReject, Seq: 9, Code: CodeOverloaded, Msg: "queue full"}},
		{"bye", AppendBye(nil), Frame{Type: FrameBye}},
		{"drain", AppendDrain(nil), Frame{Type: FrameDrain}},
	}
	for _, c := range cases {
		got := decodeWire(t, c.wire)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: decoded %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestProtoAccessBatchFastPath(t *testing.T) {
	addrs := []uint64{1, 4096, 1 << 40}
	writes := []bool{false, true, false}
	fast := AppendAccessBatch(nil, 5, addrs, writes)
	var recs []Record
	for i := range addrs {
		recs = append(recs, Record{Op: OpAccess, Addr: addrs[i], Write: writes[i]})
	}
	if want := AppendBatch(nil, 5, recs); !bytes.Equal(fast, want) {
		t.Fatalf("AppendAccessBatch wire differs from AppendBatch:\n%x\n%x", fast, want)
	}
}

// TestProtoGarbage pins the robustness contract: truncated frames,
// oversized lengths, bad opcodes, and structural lies all error
// cleanly.
func TestProtoGarbage(t *testing.T) {
	t.Run("oversized length", func(t *testing.T) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
		_, err := ReadFrame(bytes.NewReader(hdr[:]))
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("zero length", func(t *testing.T) {
		_, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}))
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("err = %v, want ErrMalformed", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil {
			t.Fatal("short header decoded")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		wire := AppendBatch(nil, 1, []Record{{Op: OpAccess, Addr: 7}})
		_, err := ReadFrame(bytes.NewReader(wire[:len(wire)-3]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
		}
	})

	bad := [][]byte{
		{},                                     // empty body
		{0x7f},                                 // unknown type
		{FrameHello},                           // short hello
		{FrameHello, 1, 0, 0, 0, 1, 0, 9, 'x'}, // id length lies
		{FrameHelloAck},                        // short hello ack
		{FrameBatch, 0, 0},                     // short batch header
		{FrameBye, 1},                          // body on a control frame
		{FrameDrain, 0},                        // body on a control frame
		{FrameAck, 1, 2, 3},                    // short ack
		{FrameReject, 0, 0, 0, 0, 0, 0, 0, 0},  // short reject
	}
	// Batch whose count exceeds what the payload can hold.
	{
		b := []byte{FrameBatch}
		b = binary.BigEndian.AppendUint64(b, 1)
		b = binary.BigEndian.AppendUint32(b, 1000)
		b = append(b, 0, 0, 0, 0, 0, 0, 0, 0, 0)
		bad = append(bad, b)
	}
	// Record with an undefined op.
	{
		b := []byte{FrameBatch}
		b = binary.BigEndian.AppendUint64(b, 1)
		b = binary.BigEndian.AppendUint32(b, 1)
		b = append(b, 0x05) // op 5: not access/alloc/free
		b = binary.BigEndian.AppendUint64(b, 0)
		bad = append(bad, b)
	}
	// Alloc record missing its size field.
	{
		b := []byte{FrameBatch}
		b = binary.BigEndian.AppendUint64(b, 1)
		b = binary.BigEndian.AppendUint32(b, 1)
		b = append(b, OpAlloc)
		b = binary.BigEndian.AppendUint64(b, 0)
		bad = append(bad, b)
	}
	// Valid batch with trailing garbage.
	{
		wire := AppendBatch(nil, 1, []Record{{Op: OpAccess, Addr: 7}})
		bad = append(bad, append(wire[4:len(wire):len(wire)], 0xff))
	}
	for i, body := range bad {
		if _, err := DecodeFrame(body); !errors.Is(err, ErrMalformed) {
			t.Errorf("garbage case %d (% x): err = %v, want ErrMalformed", i, body, err)
		}
	}
}

// TestProtoStream pins that back-to-back frames decode in sequence off
// one buffered reader, as the conn read loops consume them.
func TestProtoStream(t *testing.T) {
	var wire []byte
	wire = AppendHello(wire, 0, "c")
	wire = AppendBatch(wire, 1, []Record{{Op: OpAccess, Addr: 64}})
	wire = AppendBye(wire)
	br := bufio.NewReader(bytes.NewReader(wire))
	types := []byte{}
	for {
		f, err := ReadDecode(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, f.Type)
	}
	if want := []byte{FrameHello, FrameBatch, FrameBye}; !bytes.Equal(types, want) {
		t.Fatalf("stream types = %v, want %v", types, want)
	}
}

func TestCodeString(t *testing.T) {
	for code, want := range map[byte]string{
		CodeOK: "ok", CodeOverloaded: "overloaded", CodeBadTenant: "bad_tenant",
		CodeDraining: "draining", CodeThrottled: "throttled", CodeMalformed: "malformed",
		99: "code99",
	} {
		if got := CodeString(code); got != want {
			t.Errorf("CodeString(%d) = %q, want %q", code, got, want)
		}
	}
}
