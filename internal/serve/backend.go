package serve

import (
	"errors"
	"fmt"

	"artmem/internal/core"
	"artmem/internal/tenancy"
)

// Serving errors. CodeFromError folds these — and the tenancy control
// plane's backpressure errors — onto wire status codes.
var (
	// ErrOverloaded is Submit's backpressure signal: the tenant's
	// ingress queue is at capacity and the batch was shed, not queued.
	ErrOverloaded = errors.New("serve: tenant queue full")
	// ErrDraining reports work refused because the server (or the
	// tenant's slot) is draining.
	ErrDraining = errors.New("serve: draining")
	// ErrBadTenant reports an out-of-range or unoccupied tenant slot.
	ErrBadTenant = errors.New("serve: no such tenant")
)

// CodeFromError maps a serving or tenancy error onto the wire status
// code a Reject frame carries. The tenancy plane's backpressure errors
// (ErrRegistrationThrottled, ErrAdmissionDenied, ErrPlaneFull) all
// surface as CodeThrottled — "retry next control period" — so a remote
// client sees the arbiter's admission semantics, not a generic failure.
func CodeFromError(err error) byte {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrDraining):
		return CodeDraining
	case errors.Is(err, ErrBadTenant):
		return CodeBadTenant
	case errors.Is(err, ErrMalformed):
		return CodeMalformed
	case errors.Is(err, tenancy.ErrRegistrationThrottled),
		errors.Is(err, tenancy.ErrAdmissionDenied),
		errors.Is(err, tenancy.ErrPlaneFull):
		return CodeThrottled
	}
	return CodeBadTenant
}

// Backend is the machine surface the server pumps coalesced request
// batches into. core.System (single-tenant, slot 0) and
// core.MultiSystem (slot = plane slot) both adapt to it; tests use toy
// implementations.
type Backend interface {
	// Slots is the number of tenant slots the backend serves.
	Slots() int
	// Check reports whether slot currently accepts traffic: nil for an
	// active slot, ErrBadTenant / ErrDraining (or a tenancy error) for
	// one that does not. Called per batch on the submit path.
	Check(slot int) error
	// AccessBatch applies a batch of accesses on behalf of slot.
	AccessBatch(slot int, addrs []uint64, writes []bool)
	// AllocRange first-touch allocates [addr, addr+size) for slot,
	// returning pages touched.
	AllocRange(slot int, addr, size uint64) int
	// FreeRange unallocates slot's pages of [addr, addr+size),
	// returning pages freed.
	FreeRange(slot int, addr, size uint64) int
}

// systemBackend adapts the single-tenant runtime: one slot, always
// active.
type systemBackend struct{ s *core.System }

// NewSystemBackend wraps a single-tenant System as a one-slot Backend.
func NewSystemBackend(s *core.System) Backend { return systemBackend{s} }

func (b systemBackend) Slots() int { return 1 }

func (b systemBackend) Check(slot int) error {
	if slot != 0 {
		return fmt.Errorf("%w: slot %d on a single-tenant system", ErrBadTenant, slot)
	}
	return nil
}

func (b systemBackend) AccessBatch(slot int, addrs []uint64, writes []bool) {
	b.s.AccessBatch(addrs, writes)
}

func (b systemBackend) AllocRange(slot int, addr, size uint64) int {
	return b.s.AllocRange(addr, size)
}

func (b systemBackend) FreeRange(slot int, addr, size uint64) int {
	return b.s.FreeRange(addr, size)
}

// shardedBackend adapts the scale-out runtime: one slot, whose
// AccessBatch is safe to call concurrently — the pairing for
// Config.PumpsPerSlot > 1, where several pump goroutines apply the
// slot's coalesced passes at once and the sharded machine's per-shard
// locks let passes touching different shards proceed in parallel.
type shardedBackend struct{ s *core.ShardedSystem }

// NewShardedBackend wraps a ShardedSystem as a one-slot Backend. The
// slot refuses traffic with ErrDraining while the runtime drains.
func NewShardedBackend(s *core.ShardedSystem) Backend { return shardedBackend{s} }

func (b shardedBackend) Slots() int { return 1 }

func (b shardedBackend) Check(slot int) error {
	if slot != 0 {
		return fmt.Errorf("%w: slot %d on a sharded system", ErrBadTenant, slot)
	}
	if b.s.Draining() {
		return fmt.Errorf("%w: sharded system draining", ErrDraining)
	}
	return nil
}

func (b shardedBackend) AccessBatch(slot int, addrs []uint64, writes []bool) {
	b.s.AccessBatch(addrs, writes)
}

func (b shardedBackend) AllocRange(slot int, addr, size uint64) int {
	return b.s.AllocRange(addr, size)
}

func (b shardedBackend) FreeRange(slot int, addr, size uint64) int {
	return b.s.FreeRange(addr, size)
}

// multiBackend adapts the multi-tenant runtime: one slot per plane
// slot, admission gated on the slot's lifecycle state.
type multiBackend struct {
	s         *core.MultiSystem
	slotBytes int64
}

// NewMultiBackend wraps a MultiSystem as a Backend whose slots are the
// tenancy plane's slots. Only Active slots accept traffic: an Empty
// slot rejects with ErrBadTenant, a Draining one with ErrDraining —
// a departing tenant's stream stops at the boundary instead of
// re-growing the resident set mid-reclamation.
//
// slotBytes, when > 0, is the per-slot address-region size: client
// addresses are tenant-relative and the backend rebases slot i's
// traffic to [i*slotBytes, ...), matching artmemd's slot-region
// machine layout, so every client addresses its own region from 0.
// 0 passes addresses through machine-global.
func NewMultiBackend(s *core.MultiSystem, slotBytes int64) Backend {
	return multiBackend{s, slotBytes}
}

// rebase maps a tenant-relative address to the slot's machine region.
func (b multiBackend) rebase(slot int, addr uint64) uint64 {
	if b.slotBytes <= 0 {
		return addr
	}
	return addr%uint64(b.slotBytes) + uint64(slot)*uint64(b.slotBytes)
}

func (b multiBackend) Slots() int { return b.s.NumTenants() }

func (b multiBackend) Check(slot int) error {
	if slot < 0 || slot >= b.s.NumTenants() {
		return fmt.Errorf("%w: slot %d of %d", ErrBadTenant, slot, b.s.NumTenants())
	}
	switch b.s.TenantState(slot) {
	case tenancy.StateActive:
		return nil
	case tenancy.StateDraining:
		return fmt.Errorf("%w: tenant slot %d is draining", ErrDraining, slot)
	}
	return fmt.Errorf("%w: tenant slot %d is empty", ErrBadTenant, slot)
}

func (b multiBackend) AccessBatch(slot int, addrs []uint64, writes []bool) {
	if b.slotBytes > 0 {
		// The server's pump owns addrs (its coalescing scratch), so
		// rebasing in place is safe.
		for i, a := range addrs {
			addrs[i] = b.rebase(slot, a)
		}
	}
	b.s.AccessBatch(slot, addrs, writes)
}

func (b multiBackend) AllocRange(slot int, addr, size uint64) int {
	if b.slotBytes > 0 && size > uint64(b.slotBytes) {
		size = uint64(b.slotBytes)
	}
	return b.s.AllocRange(slot, b.rebase(slot, addr), size)
}

func (b multiBackend) FreeRange(slot int, addr, size uint64) int {
	if b.slotBytes > 0 && size > uint64(b.slotBytes) {
		size = uint64(b.slotBytes)
	}
	return b.s.FreeRange(slot, b.rebase(slot, addr), size)
}
