package serve

import (
	"testing"

	"artmem/internal/telemetry"
)

// BenchmarkServeDecode measures the decoder on a full 4096-record
// access batch — the wire hot path.
func BenchmarkServeDecode(b *testing.B) {
	addrs := make([]uint64, 4096)
	writes := make([]bool, 4096)
	for i := range addrs {
		addrs[i] = uint64(i) * 4096
		writes[i] = i%4 == 0
	}
	wire := AppendAccessBatch(nil, 1, addrs, writes)
	body := wire[4:]
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeEncode measures the access-batch fast-path encoder.
func BenchmarkServeEncode(b *testing.B) {
	addrs := make([]uint64, 4096)
	writes := make([]bool, 4096)
	for i := range addrs {
		addrs[i] = uint64(i) * 4096
	}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendAccessBatch(buf[:0], uint64(i), addrs, writes)
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkServeLockstep measures the server core without the network:
// Submit + Pump over a fake backend, the pure queueing/coalescing cost
// per record.
func BenchmarkServeLockstep(b *testing.B) {
	s := NewServer(Config{Backend: newFakeBenchBackend()})
	recs := accessRecs(256, 0)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Submit(0, uint64(i), recs, nil); err != nil {
			b.Fatal(err)
		}
		if i%16 == 15 {
			s.Pump(0)
		}
	}
	s.Drain()
}

// BenchmarkServeSpans measures the span-recording overhead on the
// lockstep path at three settings: journal off (the default), the
// default 1-in-64 sampling, and rate 1 (every batch). The off/sampled
// delta is the number DESIGN.md §11 quotes; the benchdiff gate holds
// the sampled case within 10% of its committed baseline.
func BenchmarkServeSpans(b *testing.B) {
	cases := []struct {
		name string
		rate int
	}{
		{"off", 0},
		{"sampled64", 64},
		{"rate1", 1},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			cfg := Config{Backend: newFakeBenchBackend()}
			if tc.rate > 0 {
				var stall int64
				cfg.Spans = telemetry.NewSpanJournal(0, tc.rate)
				cfg.StallNs = func() int64 { return stall }
			}
			s := NewServer(cfg)
			recs := accessRecs(256, 0)
			b.SetBytes(256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Submit(0, uint64(i), recs, nil); err != nil {
					b.Fatal(err)
				}
				if i%16 == 15 {
					s.Pump(0)
				}
			}
			s.Drain()
		})
	}
}

// fakeBenchBackend is a no-op backend for core-only benchmarks (the
// recording fakeBackend's string building would dominate).
type fakeBenchBackend struct{ n int }

func newFakeBenchBackend() *fakeBenchBackend { return &fakeBenchBackend{} }

func (f *fakeBenchBackend) Slots() int      { return 1 }
func (f *fakeBenchBackend) Check(int) error { return nil }
func (f *fakeBenchBackend) AccessBatch(_ int, addrs []uint64, _ []bool) {
	f.n += len(addrs)
}
func (f *fakeBenchBackend) AllocRange(int, uint64, uint64) int { return 0 }
func (f *fakeBenchBackend) FreeRange(int, uint64, uint64) int  { return 0 }

// BenchmarkServeLoopback measures the full stack end to end: one TCP
// loopback client streaming windowed access batches into a live System.
// Reported ns/op is per record (batch of 256, window 8).
func BenchmarkServeLoopback(b *testing.B) {
	lb, err := StartLoopback("YCSB", 4096, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	defer lb.Stop()
	cl, err := Dial(lb.Addr(), ClientConfig{ClientID: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	const batch = 256
	addrs := make([]uint64, batch)
	writes := make([]bool, batch)
	for i := range addrs {
		addrs[i] = uint64(i) * 4096
	}
	b.SetBytes(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.SendAccessBatch(addrs, writes); err != nil {
			b.Fatal(err)
		}
	}
	st, err := cl.Close()
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if st.Lost != 0 {
		b.Fatalf("lost %d batches", st.Lost)
	}
}
