package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a windowed streaming client: it pipelines up to Window
// batch frames before blocking on acks, matching seqs to send times so
// every resolved batch yields an end-to-end latency sample. It is the
// engine under cmd/artload and the loopback tests; one goroutine sends,
// an internal reader goroutine resolves.
type Client struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	window      int
	idleTimeout time.Duration
	onResolve   func(seq uint64, code byte, latNs float64)

	mu       sync.Mutex
	cond     *sync.Cond
	inflight map[uint64]time.Time
	nextSeq  uint64
	err      error // terminal reader error (nil on clean Bye)
	done     bool  // reader exited
	drain    bool  // server announced drain

	sent, acked, shed, lost uint64
	ackedRecords            uint64
	latNs                   []float64
	sheds                   map[byte]uint64
}

// ClientConfig parameterizes Dial.
type ClientConfig struct {
	// Tenant is the tenant slot the stream drives.
	Tenant uint32
	// ClientID labels the stream on the server (logs only).
	ClientID string
	// Window is the maximum number of unresolved batches in flight
	// before Send blocks. 0 uses 8.
	Window int
	// IdleTimeout bounds the wait for any single frame from the
	// server; an idle stream past it fails rather than hanging a load
	// run forever. 0 uses 30s; negative disables.
	IdleTimeout time.Duration
	// OnResolve, when non-nil, is invoked from the reader goroutine
	// for every resolved batch with its status code and end-to-end
	// latency — the load generator's retry hook.
	OnResolve func(seq uint64, code byte, latNs float64)
}

// Dial connects, handshakes, and starts the reader. A server that
// refuses the Hello (bad tenant, draining) fails here with the
// server's code in the error.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 30 * time.Second
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		c:           nc,
		br:          bufio.NewReaderSize(nc, 64<<10),
		bw:          bufio.NewWriterSize(nc, 64<<10),
		window:      cfg.Window,
		idleTimeout: cfg.IdleTimeout,
		onResolve:   cfg.OnResolve,
		inflight:    make(map[uint64]time.Time),
		nextSeq:     1,
		sheds:       make(map[byte]uint64),
	}
	cl.cond = sync.NewCond(&cl.mu)
	if _, err := nc.Write(AppendHello(nil, cfg.Tenant, cfg.ClientID)); err != nil {
		nc.Close()
		return nil, err
	}
	if cfg.IdleTimeout > 0 {
		nc.SetReadDeadline(time.Now().Add(cfg.IdleTimeout))
	}
	f, err := ReadDecode(cl.br)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("serve: handshake: %w", err)
	}
	if f.Type != FrameHelloAck || f.Code != CodeOK {
		nc.Close()
		return nil, fmt.Errorf("serve: server refused stream: %s (%s)",
			CodeString(f.Code), f.Msg)
	}
	nc.SetReadDeadline(time.Time{})
	go cl.readLoop()
	return cl, nil
}

// readLoop resolves acks and rejects until Bye, error, or idle
// timeout.
func (c *Client) readLoop() {
	var terminal error
	for {
		if c.idleTimeout > 0 {
			c.c.SetReadDeadline(time.Now().Add(c.idleTimeout))
		}
		f, err := ReadDecode(c.br)
		if err != nil {
			terminal = err
			break
		}
		switch f.Type {
		case FrameAck:
			c.resolve(f.Seq, CodeOK, f.Count)
			continue
		case FrameReject:
			if f.Seq == 0 {
				terminal = fmt.Errorf("serve: stream rejected: %s (%s)",
					CodeString(f.Code), f.Msg)
			} else {
				c.resolve(f.Seq, f.Code, 0)
				continue
			}
		case FrameDrain:
			c.mu.Lock()
			c.drain = true
			c.mu.Unlock()
			continue
		case FrameBye:
			terminal = nil
		default:
			terminal = fmt.Errorf("serve: unexpected frame type 0x%02x", f.Type)
		}
		break
	}
	c.mu.Lock()
	c.err = terminal
	c.done = true
	// Whatever is still in flight will never resolve: it is lost.
	c.lost += uint64(len(c.inflight))
	c.inflight = map[uint64]time.Time{}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// resolve settles one in-flight batch.
func (c *Client) resolve(seq uint64, code byte, records uint32) {
	now := time.Now()
	c.mu.Lock()
	start, ok := c.inflight[seq]
	if !ok {
		c.mu.Unlock()
		return
	}
	delete(c.inflight, seq)
	lat := float64(now.Sub(start))
	if code == CodeOK {
		c.acked++
		c.ackedRecords += uint64(records)
		c.latNs = append(c.latNs, lat)
	} else {
		c.shed++
		c.sheds[code]++
	}
	cb := c.onResolve
	c.cond.Broadcast()
	c.mu.Unlock()
	if cb != nil {
		cb(seq, code, lat)
	}
}

// reserve blocks until there is window room, then registers a new seq.
func (c *Client) reserve() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.inflight) >= c.window && !c.done {
		c.cond.Wait()
	}
	if c.done {
		if c.err != nil {
			return 0, c.err
		}
		return 0, fmt.Errorf("serve: stream closed")
	}
	seq := c.nextSeq
	c.nextSeq++
	c.inflight[seq] = time.Now()
	c.sent++
	return seq, nil
}

// abandon rolls back a reserve whose write failed.
func (c *Client) abandon(seq uint64) {
	c.mu.Lock()
	if _, ok := c.inflight[seq]; ok {
		delete(c.inflight, seq)
		c.sent--
		c.lost++
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// SendAccessBatch streams one batch of pure accesses, blocking while
// the window is full. Returns the batch's seq. Shed batches surface
// through Stats (and OnResolve), not as an error.
func (c *Client) SendAccessBatch(addrs []uint64, writes []bool) (uint64, error) {
	seq, err := c.reserve()
	if err != nil {
		return 0, err
	}
	if err := c.write(AppendAccessBatch(nil, seq, addrs, writes)); err != nil {
		c.abandon(seq)
		return 0, err
	}
	return seq, nil
}

// SendBatch streams one batch of arbitrary records (access, alloc,
// free), blocking while the window is full. Returns the batch's seq.
func (c *Client) SendBatch(recs []Record) (uint64, error) {
	seq, err := c.reserve()
	if err != nil {
		return 0, err
	}
	if err := c.write(AppendBatch(nil, seq, recs)); err != nil {
		c.abandon(seq)
		return 0, err
	}
	return seq, nil
}

// write sends one encoded frame and flushes (a batch frame is larger
// than the buffer's useful coalescing window anyway, and acks only
// flow once the server has the bytes).
func (c *Client) write(frame []byte) error {
	if _, err := c.bw.Write(frame); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Draining reports whether the server announced a drain; a polite
// client stops submitting new batches then.
func (c *Client) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drain
}

// ClientStats is a stream's outcome ledger. Sent = Acked + Shed + Lost
// after Close; Lost must be zero against a healthy server.
type ClientStats struct {
	// Sent counts batches written; Acked those fully applied; Shed
	// those explicitly rejected (backpressure or tenant state); Lost
	// those that never resolved (server or connection died).
	Sent, Acked, Shed, Lost uint64
	// AckedRecords totals the records of acked batches.
	AckedRecords uint64
	// Sheds breaks Shed down by reject code.
	Sheds map[byte]uint64
	// LatNs holds one end-to-end latency sample (ns) per acked batch.
	LatNs []float64
}

// Stats snapshots the ledger.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ClientStats{
		Sent: c.sent, Acked: c.acked, Shed: c.shed, Lost: c.lost,
		AckedRecords: c.ackedRecords,
		Sheds:        make(map[byte]uint64, len(c.sheds)),
		LatNs:        append([]float64(nil), c.latNs...),
	}
	for k, v := range c.sheds {
		st.Sheds[k] = v
	}
	return st
}

// Close finishes the stream politely: Bye, wait for every in-flight
// batch to resolve and the server's Bye to arrive, then close. The
// returned stats are final.
func (c *Client) Close() (ClientStats, error) {
	c.mu.Lock()
	done := c.done
	c.mu.Unlock()
	if !done {
		// Ignore write errors: a dead connection resolves via the
		// reader's EOF, and stats still settle.
		c.write(AppendBye(nil))
		c.mu.Lock()
		for !c.done {
			c.cond.Wait()
		}
		c.mu.Unlock()
	}
	c.c.Close()
	c.mu.Lock()
	err := c.err
	c.mu.Unlock()
	return c.Stats(), err
}
