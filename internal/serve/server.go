package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"artmem/internal/telemetry"
)

// Config parameterizes a Server.
type Config struct {
	// Backend is the machine surface batches are pumped into. Required.
	Backend Backend
	// Registry, when non-nil, receives the serving metrics
	// (artmem_serve_*). Metric names are fixed, so one registry carries
	// at most one Server.
	Registry *telemetry.Registry
	// QueueRecords bounds each tenant's ingress queue in records — the
	// admission-control knob. A batch that would push the queue past
	// the bound is shed with ErrOverloaded instead of queued (a batch
	// arriving at an empty queue is always admitted, so a batch larger
	// than the bound cannot starve). 0 uses 65536.
	QueueRecords int
	// CoalesceRecords caps how many records one pump iteration merges
	// into a single backend AccessBatch pass. Whole batches only — a
	// pump takes at least one batch regardless. 0 uses 16384.
	CoalesceRecords int
	// PumpsPerSlot is how many pump goroutines Start launches per
	// tenant slot. 0 and 1 keep the single-pump discipline (and the
	// lockstep byte-identity of the Pump path). Values > 1 fan the
	// slot's apply work out across concurrent pumps and require a
	// backend whose AccessBatch is safe to call concurrently for the
	// same slot — the sharded runtime (NewShardedBackend over
	// core.ShardedSystem); the single-Machine backends are not.
	// Batches carrying alloc/free records are ordering barriers: they
	// apply exclusively, after every earlier-taken batch and before
	// every later-taken one, so access-after-free stays ordered even
	// across pumps.
	PumpsPerSlot int
	// Clock supplies the stage timestamps for spans, SLO windows, and
	// the latency metrics, in nanoseconds. Nil uses the wall clock;
	// deterministic experiments inject the machine's virtual clock so
	// every recorded duration is an exact replayable integer.
	Clock func() int64
	// Spans, when non-nil, records a hash-sampled latency span per
	// accepted batch (decode → queue → stall → coalesce → apply → ack)
	// into the journal served at /spans. Nil — the default — keeps
	// span recording off and the serving hooks one-branch no-ops, the
	// same discipline as telemetry.PageTrace.
	Spans *telemetry.SpanJournal
	// StallNs, when non-nil, returns a cumulative stall counter in
	// clock nanoseconds — core.System.ControlBusyNs live, the
	// machine's MigrationStallNs in lockstep. The server differences
	// it across a sampled batch's residency to attribute migration
	// stall out of its queue wait. Ignored unless Spans is set.
	StallNs func() int64
	// SLO, when non-nil, receives every resolved batch's outcome
	// (end-to-end latency, acked or lost) for per-tenant burn-rate
	// accounting, served at /slo.
	SLO *telemetry.SLOMonitor
}

// Result reports a batch's fate to its submitter's done callback:
// Err == nil means every record was applied (ack); a non-nil Err means
// the batch was rejected after queueing (for example its tenant slot
// started draining between submit and pump).
type Result struct {
	// Err is nil on ack.
	Err error
	// Count is the number of records applied.
	Count uint32
	// QueueNs is the batch's queue residency in wall nanoseconds.
	QueueNs uint64
}

// spanStart is the submit-side state of a sampled batch's span: the
// global batch id the sampler keyed on, and the stall counter at
// enqueue. Only sampled batches allocate one.
type spanStart struct {
	id     uint64
	stall0 int64
}

// batch is one queued request batch. enq and decode are clock
// nanoseconds; span is nil unless the batch was sampled for the span
// journal.
type batch struct {
	seq    uint64
	recs   []Record
	enq    int64
	decode int64
	done   func(Result)
	span   *spanStart
	// barrier marks a batch carrying alloc/free records; under pump
	// fan-out it applies exclusively (write-locked) in take order.
	// Computed at submit only when PumpsPerSlot > 1.
	barrier bool
}

// pumpScratch is one pump's coalescing buffers. Each pump goroutine
// owns a private scratch (fan-out safe); the synchronous Pump path
// uses the queue-resident one, preserving the lockstep allocation
// behavior exactly.
type pumpScratch struct {
	addrs  []uint64
	writes []bool
}

// tenantQueue is one tenant's bounded ingress queue. With
// PumpsPerSlot == 1 (the default) the queue's pump is single-threaded
// — one pump goroutine per slot, or the lockstep driver — and sc is
// its unshared apply scratch. With fan-out, concurrent pumps hold
// applyMu around their backend passes: shared for access-only takes,
// exclusive for barrier takes. applyMu is always acquired while mu is
// still held, so apply-lock acquisition happens in take order — a
// barrier batch applies after every batch taken before it and before
// every batch taken after it, with no deadlock (apply never touches
// mu).
type tenantQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	batches []batch
	records int
	stopped bool

	applyMu sync.RWMutex

	// Coalescing scratch for the synchronous Pump path.
	sc pumpScratch
}

// Server is the batched streaming server core: per-tenant bounded
// ingress queues on the submit side, one pump per tenant slot
// coalescing queued batches into backend AccessBatch calls on the
// drain side. The network layer (conn.go) feeds Submit from decoded
// frames; the deterministic servebench experiment feeds it directly
// and pumps synchronously (no Start, no goroutines, no wall clock in
// any reported number).
//
// Lifecycle: NewServer → [Start] → Submit/Pump → Drain. Drain is the
// airtight-shutdown barrier: after it returns, every batch ever
// accepted by Submit has had its done callback invoked — acked if its
// records were applied, rejected otherwise — and later Submits fail
// with ErrDraining. Nothing is silently dropped.
type Server struct {
	backend  Backend
	queueCap int
	coalesce int
	fanout   int // pump goroutines per slot (Config.PumpsPerSlot)
	queues   []*tenantQueue

	// Latency attribution (nil-safe when disabled): the injected
	// clock, the span journal with its global batch-id counter, the
	// stall attribution source, and the SLO monitor.
	clock   func() int64
	spans   *telemetry.SpanJournal
	stallNs func() int64
	slo     *telemetry.SLOMonitor
	batchID atomic.Uint64

	draining atomic.Bool

	mu      sync.Mutex
	started bool
	pumps   sync.WaitGroup

	// net is the network frontend's state (conn.go); unused in
	// lockstep mode.
	net netState

	// Telemetry (nil-safe when no registry is configured).
	connections *telemetry.Gauge
	frames      map[byte]*telemetry.Counter
	records     [3]*telemetry.Counter
	acked       *telemetry.Counter
	rejected    map[byte]*telemetry.Counter
	coalesced   *telemetry.Histogram
	queueWait   *telemetry.Histogram
	batchLat    *telemetry.Histogram
	decodeErrs  *telemetry.Counter
}

// latencyBuckets is the HDR-style ladder the serve-path latency
// histograms share: ~6% relative error from 256ns to ~8.6s, tight
// enough for meaningful p99/p999 interpolation at both lockstep
// (virtual microseconds) and network (wall milliseconds) scales.
var latencyBuckets = telemetry.HDRBuckets(256, 8_589_934_592, 4)

// NewServer builds a server over cfg.Backend, one ingress queue per
// backend slot.
func NewServer(cfg Config) *Server {
	if cfg.Backend == nil {
		panic("serve: Config.Backend is required")
	}
	if cfg.QueueRecords <= 0 {
		cfg.QueueRecords = 65536
	}
	if cfg.CoalesceRecords <= 0 {
		cfg.CoalesceRecords = 16384
	}
	if cfg.Clock == nil {
		cfg.Clock = func() int64 { return time.Now().UnixNano() }
	}
	if cfg.PumpsPerSlot <= 0 {
		cfg.PumpsPerSlot = 1
	}
	s := &Server{
		backend:  cfg.Backend,
		queueCap: cfg.QueueRecords,
		coalesce: cfg.CoalesceRecords,
		fanout:   cfg.PumpsPerSlot,
		queues:   make([]*tenantQueue, cfg.Backend.Slots()),
		clock:    cfg.Clock,
		spans:    cfg.Spans,
		stallNs:  cfg.StallNs,
		slo:      cfg.SLO,
	}
	for i := range s.queues {
		q := &tenantQueue{}
		q.cond = sync.NewCond(&q.mu)
		s.queues[i] = q
	}
	s.register(cfg.Registry)
	return s
}

// register instruments reg with the serving series. Nil-safe: a nil
// registry leaves every handle nil and all recording no-ops.
func (s *Server) register(reg *telemetry.Registry) {
	s.connections = reg.Gauge("artmem_serve_connections",
		"Open client connections on the serving frontend.")
	s.frames = map[byte]*telemetry.Counter{}
	for _, t := range []byte{FrameHello, FrameBatch, FrameBye} {
		s.frames[t] = reg.Counter("artmem_serve_frames_total",
			"Frames received from clients, by type.",
			telemetry.L("type", frameName(t)))
	}
	ops := [...]string{OpAccess: "access", OpAlloc: "alloc", OpFree: "free"}
	for op, name := range ops {
		s.records[op] = reg.Counter("artmem_serve_records_total",
			"Request records applied to the machine, by op.",
			telemetry.L("op", name))
	}
	s.acked = reg.Counter("artmem_serve_batches_acked_total",
		"Request batches fully applied and acknowledged.")
	s.rejected = map[byte]*telemetry.Counter{}
	for _, c := range []byte{CodeOverloaded, CodeBadTenant, CodeDraining, CodeThrottled, CodeMalformed} {
		s.rejected[c] = reg.Counter("artmem_serve_batches_rejected_total",
			"Request batches refused, by reason (overloaded = backpressure shed).",
			telemetry.L("reason", CodeString(c)))
	}
	reg.GaugeFunc("artmem_serve_queue_records",
		"Records currently waiting in the per-tenant ingress queues.",
		func() float64 {
			total := 0
			for _, q := range s.queues {
				q.mu.Lock()
				total += q.records
				q.mu.Unlock()
			}
			return float64(total)
		})
	s.coalesced = reg.Histogram("artmem_serve_coalesced_records",
		"Records merged into one backend pass per pump iteration.",
		telemetry.ExpBuckets(1, 2, 18))
	// The latency series are log-bucketed HDR histograms with
	// server-side quantile exposition (name_p50/_p90/_p99/_p999) —
	// interpolated tails, not fixed-class counting.
	s.queueWait = reg.HistogramQuantiles("artmem_serve_queue_wait_ns",
		"Queue residency of acknowledged batches in nanoseconds.",
		latencyBuckets)
	s.batchLat = reg.HistogramQuantiles("artmem_serve_batch_latency_ns",
		"End-to-end latency of acknowledged batches in nanoseconds (decode + queue + apply).",
		latencyBuckets)
	s.decodeErrs = reg.Counter("artmem_serve_decode_errors_total",
		"Undecodable or oversized frames received (connection dropped).")
}

// frameName names a frame type for the frames_total label.
func frameName(t byte) string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameBatch:
		return "batch"
	case FrameBye:
		return "bye"
	}
	return fmt.Sprintf("type%d", t)
}

// countReject bumps the rejected counter for a status code.
func (s *Server) countReject(code byte) {
	if c := s.rejected[code]; c != nil {
		c.Inc()
	}
}

// Slots returns the number of tenant slots served.
func (s *Server) Slots() int { return len(s.queues) }

// Submit offers one batch to slot's ingress queue. A nil return means
// the batch was accepted: done (if non-nil) will be invoked exactly
// once by the slot's pump — with Result.Err nil once every record is
// applied, non-nil if the slot stopped accepting work while the batch
// waited. A non-nil return means the batch was refused at the door
// (done is never called): ErrOverloaded is the admission-control shed,
// ErrDraining the shutdown refusal, ErrBadTenant / tenancy errors a
// slot that cannot take traffic.
//
// The caller must not mutate recs after a nil return.
func (s *Server) Submit(slot int, seq uint64, recs []Record, done func(Result)) error {
	return s.SubmitTimed(slot, seq, recs, 0, done)
}

// SubmitTimed is Submit with the frame-decode duration that produced
// recs, in clock nanoseconds — the network layer measures it around
// ReadDecode so spans and the end-to-end latency metrics can attribute
// it. Direct submitters (lockstep experiments, tests) use Submit,
// which passes zero.
func (s *Server) SubmitTimed(slot int, seq uint64, recs []Record, decodeNs int64, done func(Result)) error {
	if slot < 0 || slot >= len(s.queues) {
		s.countReject(CodeBadTenant)
		return fmt.Errorf("%w: slot %d of %d", ErrBadTenant, slot, len(s.queues))
	}
	if s.draining.Load() {
		s.countReject(CodeDraining)
		return ErrDraining
	}
	if err := s.backend.Check(slot); err != nil {
		s.countReject(CodeFromError(err))
		return err
	}
	q := s.queues[slot]
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		s.countReject(CodeDraining)
		return ErrDraining
	}
	// Admission control: a batch that would overflow the bound is shed
	// at the boundary — the queue never grows past QueueRecords, so an
	// overloading client costs bounded memory, not unbounded buffering.
	// The empty-queue exception keeps an oversized batch admittable.
	if q.records > 0 && q.records+len(recs) > s.queueCap {
		queued := q.records
		q.mu.Unlock()
		s.countReject(CodeOverloaded)
		return fmt.Errorf("%w: %d records queued, cap %d", ErrOverloaded, queued, s.queueCap)
	}
	b := batch{seq: seq, recs: recs, enq: s.clock(), decode: decodeNs, done: done}
	// Barrier classification costs one scan per record, paid only when
	// fan-out can interleave applies; the single-pump path already
	// orders everything.
	if s.fanout > 1 {
		for _, r := range recs {
			if r.Op != OpAccess {
				b.barrier = true
				break
			}
		}
	}
	// Span sampling keys on a server-global accepted-batch counter; a
	// nil journal costs exactly this one branch.
	if s.spans != nil {
		if id := s.batchID.Add(1); s.spans.Sampled(id) {
			sp := &spanStart{id: id}
			if s.stallNs != nil {
				sp.stall0 = s.stallNs()
			}
			b.span = sp
		}
	}
	q.batches = append(q.batches, b)
	q.records += len(recs)
	q.cond.Signal()
	q.mu.Unlock()
	return nil
}

// QueuedRecords returns the records currently queued for slot.
func (s *Server) QueuedRecords(slot int) int {
	q := s.queues[slot]
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.records
}

// Pump runs one coalescing iteration for slot: it takes whole batches
// from the head of the queue up to CoalesceRecords records (always at
// least one batch), applies their records to the backend in merged
// AccessBatch passes, and fires the done callbacks. Returns the number
// of batches retired (0 when the queue is empty).
//
// Pump is the deterministic drive point: the lockstep experiment calls
// it directly, the per-slot pump goroutines (Start) call it in a loop.
// At most one *external* caller may pump a given slot at a time (it
// uses the queue-resident scratch); Start's fan-out pumps carry
// private scratches and may run concurrently among themselves.
func (s *Server) Pump(slot int) int {
	return s.pump(slot, &s.queues[slot].sc)
}

// pump runs one coalescing iteration for slot using sc as the apply
// scratch. The applyMu acquisition happens while q.mu is still held,
// which serializes apply-lock acquisition in take order: a pump that
// took a barrier batch blocks later takes (it holds q.mu while waiting
// for the write lock), so barriers order strictly against both earlier
// and later takes. Deadlock-free because apply never acquires q.mu and
// read-lock holders never wait on it either.
func (s *Server) pump(slot int, sc *pumpScratch) int {
	q := s.queues[slot]
	q.mu.Lock()
	if len(q.batches) == 0 {
		q.mu.Unlock()
		return 0
	}
	n, recs := 0, 0
	barrier := false
	for _, b := range q.batches {
		if n > 0 && recs+len(b.recs) > s.coalesce {
			break
		}
		recs += len(b.recs)
		barrier = barrier || b.barrier
		n++
	}
	took := q.batches[:n:n]
	q.batches = q.batches[n:]
	if len(q.batches) == 0 {
		q.batches = nil
	}
	q.records -= recs
	if barrier {
		q.applyMu.Lock()
	} else {
		q.applyMu.RLock()
	}
	q.mu.Unlock()

	deq := s.clock()
	// Re-check the slot at apply time: it may have started draining
	// while the batch waited. Its batches are rejected, not silently
	// applied to a reclaiming tenant (and not silently dropped).
	err := s.backend.Check(slot)
	applyStart := deq
	if err == nil {
		applyStart = s.clock()
		s.apply(slot, sc, took)
		s.coalesced.Observe(float64(recs))
	}
	if barrier {
		q.applyMu.Unlock()
	} else {
		q.applyMu.RUnlock()
	}
	now := s.clock()
	var stallNow int64
	if s.spans != nil && s.stallNs != nil {
		stallNow = s.stallNs()
	}
	for _, b := range took {
		qns := uint64(now - b.enq)
		if err != nil {
			s.countReject(CodeFromError(err))
			if b.done != nil {
				b.done(Result{Err: err, QueueNs: qns})
			}
		} else {
			s.acked.Inc()
			s.queueWait.Observe(float64(qns))
			s.batchLat.Observe(float64(int64(qns) + b.decode))
			if b.done != nil {
				b.done(Result{Count: uint32(len(b.recs)), QueueNs: qns})
			}
		}
		if b.span != nil {
			s.recordSpan(slot, b, err, deq, applyStart, now, stallNow)
		}
		s.slo.Observe(slot, int64(qns)+b.decode, err == nil)
	}
	return n
}

// recordSpan assembles and journals a sampled batch's span after its
// done callback resolved. Stage semantics: stall is the delta of the
// attribution counter across the batch's residency (enqueue → apply
// end); queue is dequeue-wait minus that stall, clamped at zero;
// coalesce the dequeue→apply merge; apply the coalesced backend pass
// the batch rode (shared by every batch in the pass); ack the
// done-callback flush, measured per sampled batch.
func (s *Server) recordSpan(slot int, b batch, err error, deq, applyStart, applyEnd, stallNow int64) {
	sp := telemetry.Span{
		Batch:     b.span.id,
		StartNs:   b.enq,
		Tenant:    slot,
		ClientSeq: b.seq,
		Records:   len(b.recs),
		Outcome:   telemetry.SpanAcked,
		DecodeNs:  b.decode,
		AckNs:     s.clock() - applyEnd,
	}
	if err != nil {
		sp.Outcome = telemetry.SpanRejected
	} else {
		sp.CoalesceNs = applyStart - deq
		sp.ApplyNs = applyEnd - applyStart
	}
	if s.stallNs != nil {
		if d := stallNow - b.span.stall0; d > 0 {
			sp.StallNs = d
		}
	}
	if qn := deq - b.enq - sp.StallNs; qn > 0 {
		sp.QueueNs = qn
	}
	s.spans.Append(sp)
}

// apply replays the taken batches' records into the backend, merging
// runs of access records across batch boundaries into single
// AccessBatch calls. Alloc and free records are ordering barriers: the
// pending access run flushes first, then the range op executes, so a
// client's access-after-free lands after the free.
func (s *Server) apply(slot int, sc *pumpScratch, took []batch) {
	addrs, writes := sc.addrs[:0], sc.writes[:0]
	flush := func() {
		if len(addrs) > 0 {
			s.backend.AccessBatch(slot, addrs, writes)
			s.records[OpAccess].Add(uint64(len(addrs)))
			addrs, writes = addrs[:0], writes[:0]
		}
	}
	for _, b := range took {
		for _, r := range b.recs {
			switch r.Op {
			case OpAccess:
				addrs = append(addrs, r.Addr)
				writes = append(writes, r.Write)
			case OpAlloc:
				flush()
				s.backend.AllocRange(slot, r.Addr, r.Size)
				s.records[OpAlloc].Inc()
			case OpFree:
				flush()
				s.backend.FreeRange(slot, r.Addr, r.Size)
				s.records[OpFree].Inc()
			}
		}
	}
	flush()
	sc.addrs, sc.writes = addrs, writes
}

// Start launches PumpsPerSlot pump goroutines per tenant slot, each
// with a private apply scratch. No-op if already started; the lockstep
// driver simply never calls it.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := range s.queues {
		for k := 0; k < s.fanout; k++ {
			s.pumps.Add(1)
			go func(slot int) {
				defer s.pumps.Done()
				s.pumpLoop(slot, &pumpScratch{})
			}(i)
		}
	}
}

// pumpLoop drains slot's queue until stopped AND empty — the order
// that makes Drain airtight: stop is observed only once there is
// nothing left to retire. Under fan-out several loops share one
// queue; each carries its own scratch.
func (s *Server) pumpLoop(slot int, sc *pumpScratch) {
	q := s.queues[slot]
	for {
		q.mu.Lock()
		for len(q.batches) == 0 && !q.stopped {
			q.cond.Wait()
		}
		if len(q.batches) == 0 && q.stopped {
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()
		s.pump(slot, sc)
	}
}

// Drain shuts the core down airtight: new Submits fail with
// ErrDraining, every already-accepted batch is pumped to its done
// callback (acked or rejected, never dropped), and the pump goroutines
// exit. Idempotent; works both started and lockstep.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.mu.Lock()
	started := s.started
	s.started = false
	s.mu.Unlock()
	for _, q := range s.queues {
		q.mu.Lock()
		q.stopped = true
		q.cond.Broadcast()
		q.mu.Unlock()
	}
	if started {
		s.pumps.Wait()
		return
	}
	// Lockstep mode: no pump goroutines, drain synchronously.
	for i := range s.queues {
		for s.Pump(i) > 0 {
		}
	}
}
