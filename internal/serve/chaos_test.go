package serve

import (
	"testing"
	"time"

	"artmem/internal/core"
	"artmem/internal/faultinject"
	"artmem/internal/memsim"
	"artmem/internal/workloads"
)

// TestChaosServeMigrationOutage drives the full serving stack — TCP
// loopback, multi-tenant backend with slot-region rebasing, concurrent
// clients on two tenants — while fault injection forces migration
// outages underneath. The serving contract must hold through the
// chaos: every batch resolves (zero lost), the ledger balances, and
// the machine's invariants survive.
func TestChaosServeMigrationOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e in -short")
	}
	const div = 4096
	prof := workloads.Profile{Div: div, PatternAccesses: 1, AppAccesses: 1, Seed: 1}
	spec, err := workloads.ByName("YCSB")
	if err != nil {
		t.Fatal(err)
	}
	probe := spec.New(prof)
	slotBytes := probe.FootprintBytes()
	probe.Close()
	if slotBytes < prof.PageSize() {
		slotBytes = prof.PageSize()
	}

	const tenants = 2
	foot := slotBytes * tenants
	sys := core.NewMultiSystem(core.MultiSystemConfig{
		Machine: memsim.DefaultConfig(foot, foot/5, prof.PageSize()),
		Tenants: []core.TenantConfig{
			{Name: "chaos-a"},
			{Name: "chaos-b"},
		},
		SamplingInterval:  time.Millisecond,
		MigrationInterval: 5 * time.Millisecond,
		Faults: &faultinject.Config{
			Seed: 42,
			// Repeating 20ms-on / 20ms-off migration outages for the whole
			// run: the migration engine keeps failing mid-load.
			MigrationOutages: []faultinject.Window{
				{StartNs: 0, EndNs: 20 * int64(time.Millisecond)},
			},
			MigrationOutagePeriodic: faultinject.Periodic{
				PeriodNs:   40 * int64(time.Millisecond),
				DurationNs: 20 * int64(time.Millisecond),
			},
			MigrationFailProb: 0.2,
		},
	})
	sys.Start()
	defer sys.Stop()

	srv := NewServer(Config{
		Backend:      NewMultiBackend(sys, slotBytes),
		QueueRecords: 1 << 20, // above worst-case in-flight: no sheds
	})
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	rep, err := Run(LoadConfig{
		Addr:     ln.Addr().String(),
		TenantOf: func(client int) uint32 { return uint32(client % tenants) },
		Clients:  8,
		Workload: "YCSB",
		Div:      div,
		Accesses: 4000,
		Batch:    256,
		Seed:     99,
	})
	srv.Shutdown()
	if serveErr := <-served; serveErr != nil {
		t.Fatalf("Serve: %v", serveErr)
	}
	if err != nil {
		t.Fatalf("Run under chaos: %v", err)
	}
	if rep.Lost != 0 {
		t.Fatalf("lost %d batches under migration outages, want 0\n%s", rep.Lost, rep)
	}
	if rep.Sent != rep.Acked+rep.Shed {
		t.Fatalf("ledger broken: sent %d != acked %d + shed %d",
			rep.Sent, rep.Acked, rep.Shed)
	}
	if rep.AckedRecords == 0 {
		t.Fatal("no records applied under chaos")
	}
	if err := sys.Machine().CheckInvariants(); err != nil {
		t.Fatalf("machine invariants broken after chaos run: %v", err)
	}
}

// TestChaosServeDrainingTenant pins multi-tenant admission through the
// serving path: traffic for a draining/empty slot is refused at the
// handshake with the tenant-state code, while the healthy slot streams
// on.
func TestChaosServeDrainingTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("network test in -short")
	}
	pageSize := int64(4096)
	slotBytes := int64(1 << 20)
	foot := slotBytes * 2
	sys := core.NewMultiSystem(core.MultiSystemConfig{
		Machine:  memsim.DefaultConfig(foot, foot/5, pageSize),
		Tenants:  []core.TenantConfig{{Name: "live"}},
		Capacity: 2, // slot 1 stays empty
	})
	sys.Start()
	defer sys.Stop()
	srv := NewServer(Config{Backend: NewMultiBackend(sys, slotBytes)})
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	defer func() { srv.Shutdown(); <-served }()

	// Empty slot: the handshake must refuse the stream.
	if _, err := Dial(ln.Addr().String(), ClientConfig{Tenant: 1}); err == nil {
		t.Fatal("Dial for an empty tenant slot succeeded")
	}
	// Live slot: accesses flow and ack.
	cl, err := Dial(ln.Addr().String(), ClientConfig{Tenant: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SendAccessBatch([]uint64{0, 4096, 8192}, make([]bool, 3)); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Acked != 1 || st.AckedRecords != 3 {
		t.Fatalf("live tenant stats %+v, want 1 batch / 3 records acked", st)
	}
}
