// Package serve is the network serving frontend for the ArtMem stack:
// a dependency-free batched streaming request layer through which
// remote clients submit access streams and allocation requests for
// their tenant. It turns the simulator from a control/observability
// daemon into a service — the production-shaped traffic path the
// ROADMAP's north star asks for.
//
// The layer has four parts:
//
//   - a wire protocol (this file): length-prefixed binary frames
//     carrying batches of {op: access|alloc|free, addr/size} records
//     with client-chosen sequence numbers, acked per batch;
//   - a server core (server.go): per-tenant bounded ingress queues,
//     request coalescing into one AccessBatch call per pump, admission
//     control (a full queue sheds the batch with a backpressure frame
//     instead of buffering without bound — the TierBPF posture applied
//     at the request boundary), graceful drain on shutdown, and
//     optional pump fan-out (Config.PumpsPerSlot > 1) that drives a
//     concurrency-safe backend — NewShardedBackend over a
//     core.ShardedSystem (DESIGN.md §12) — from several goroutines per
//     slot, with alloc/free batches acting as write barriers;
//   - a client + load generator (client.go, loadgen.go): the engine
//     behind cmd/artload, replaying internal/workloads traces from N
//     concurrent simulated clients with a bounded in-flight window;
//   - a deterministic lockstep harness: the same server core driven
//     synchronously (Submit + Pump, no Start, no goroutines), so the
//     servebench experiment's tables are byte-stable and
//     benchdiff-gateable.
//
// Framing. Every frame is
//
//	uint32 length | uint8 type | body
//
// (big-endian), where length counts the type byte plus the body and is
// capped at MaxFrameSize. Batch records are variable-length by op:
// an access record is 9 bytes (opflags + addr), alloc and free records
// are 17 (opflags + addr + size). The decoder is hardened against
// garbage: truncated frames, oversized lengths, bad opcodes and short
// record bodies all return errors, never panic (fuzz-tested).
package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ProtoVersion is the wire protocol version carried in Hello frames.
// Servers reject clients speaking a different version.
const ProtoVersion = 1

// MaxFrameSize caps the length prefix of any frame (type byte + body).
// A peer announcing a larger frame is malformed and disconnected —
// the first line of defence against memory-exhaustion by a bad client.
const MaxFrameSize = 1 << 20

// Frame types.
const (
	// FrameHello opens a stream: the client declares its protocol
	// version, tenant slot, and a client id string.
	FrameHello = 0x01
	// FrameHelloAck answers a Hello with a status code.
	FrameHelloAck = 0x02
	// FrameBatch carries one sequenced batch of records.
	FrameBatch = 0x03
	// FrameAck acknowledges one batch: every record was applied.
	FrameAck = 0x04
	// FrameReject refuses one batch (or, with Seq 0, the stream): the
	// code says why — backpressure, bad tenant, draining, malformed.
	FrameReject = 0x05
	// FrameBye is a clean end-of-stream notice, either direction.
	FrameBye = 0x06
	// FrameDrain is the server's shutdown notice: queued batches will
	// still be acked, new ones are rejected with CodeDraining.
	FrameDrain = 0x07
)

// Record ops.
const (
	// OpAccess is one memory reference of the tenant's address space.
	OpAccess = 0
	// OpAlloc asks for first-touch allocation of [Addr, Addr+Size): the
	// server touches each page once (a write), the machine's first-touch
	// allocator does the rest.
	OpAlloc = 1
	// OpFree unallocates the pages of [Addr, Addr+Size) owned by the
	// tenant.
	OpFree = 2
)

// Status codes for HelloAck and Reject frames.
const (
	// CodeOK accepts the Hello.
	CodeOK = 0
	// CodeOverloaded is the backpressure signal: the tenant's ingress
	// queue is at capacity and this batch was shed (the protocol's 429).
	// The client may retry after draining its window.
	CodeOverloaded = 1
	// CodeBadTenant rejects a Hello or batch naming an out-of-range or
	// unoccupied tenant slot.
	CodeBadTenant = 2
	// CodeDraining rejects new work while the server shuts down.
	CodeDraining = 3
	// CodeThrottled mirrors the tenancy plane's registration/admission
	// backpressure (tenancy.ErrRegistrationThrottled and friends) onto
	// the wire: retry next control period.
	CodeThrottled = 4
	// CodeMalformed reports an undecodable frame; the server closes the
	// connection after sending it.
	CodeMalformed = 5
)

// CodeString names a status code for telemetry labels and logs.
func CodeString(code byte) string {
	switch code {
	case CodeOK:
		return "ok"
	case CodeOverloaded:
		return "overloaded"
	case CodeBadTenant:
		return "bad_tenant"
	case CodeDraining:
		return "draining"
	case CodeThrottled:
		return "throttled"
	case CodeMalformed:
		return "malformed"
	}
	return fmt.Sprintf("code%d", code)
}

// Record is one decoded request record.
type Record struct {
	// Op is OpAccess, OpAlloc, or OpFree.
	Op byte
	// Write marks an access as a store (ignored for alloc/free).
	Write bool
	// Addr is the tenant-relative byte address.
	Addr uint64
	// Size is the byte length of an alloc/free range (0 for access).
	Size uint64
}

// Frame is one decoded protocol frame; the fields populated depend on
// Type.
type Frame struct {
	// Type is the frame type (FrameHello ... FrameDrain).
	Type byte

	// Version and Tenant are Hello fields; ClientID labels the stream.
	Version  byte
	Tenant   uint32
	ClientID string

	// Seq is the batch sequence number (Batch, Ack, Reject).
	Seq uint64
	// Records is the decoded batch payload.
	Records []Record
	// Count is the acked record count (Ack).
	Count uint32
	// QueueNs is the server-side queue residency of the acked batch in
	// wall nanoseconds — informational, for client-side breakdowns.
	QueueNs uint64

	// Code and Msg explain a HelloAck or Reject.
	Code byte
	Msg  string
}

// Protocol errors.
var (
	// ErrFrameTooLarge reports a length prefix above MaxFrameSize.
	ErrFrameTooLarge = errors.New("serve: frame exceeds MaxFrameSize")
	// ErrMalformed reports an undecodable frame body.
	ErrMalformed = errors.New("serve: malformed frame")
)

// flagWrite marks an access record as a store in the opflags byte.
const flagWrite = 0x80

// ---- encoding ------------------------------------------------------------

// appendFrame wraps body (starting with its type byte) in a length
// prefix.
func appendFrame(dst, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	return append(dst, body...)
}

// AppendHello encodes a Hello frame.
func AppendHello(dst []byte, tenant uint32, clientID string) []byte {
	body := make([]byte, 0, 8+len(clientID))
	body = append(body, FrameHello, ProtoVersion)
	body = binary.BigEndian.AppendUint32(body, tenant)
	body = binary.BigEndian.AppendUint16(body, uint16(len(clientID)))
	body = append(body, clientID...)
	return appendFrame(dst, body)
}

// AppendHelloAck encodes a HelloAck frame.
func AppendHelloAck(dst []byte, code byte, msg string) []byte {
	body := make([]byte, 0, 4+len(msg))
	body = append(body, FrameHelloAck, code)
	body = binary.BigEndian.AppendUint16(body, uint16(len(msg)))
	body = append(body, msg...)
	return appendFrame(dst, body)
}

// AppendBatch encodes a Batch frame carrying recs under sequence seq.
func AppendBatch(dst []byte, seq uint64, recs []Record) []byte {
	body := make([]byte, 0, 13+17*len(recs))
	body = append(body, FrameBatch)
	body = binary.BigEndian.AppendUint64(body, seq)
	body = binary.BigEndian.AppendUint32(body, uint32(len(recs)))
	for _, r := range recs {
		of := r.Op
		if r.Write {
			of |= flagWrite
		}
		body = append(body, of)
		body = binary.BigEndian.AppendUint64(body, r.Addr)
		if r.Op != OpAccess {
			body = binary.BigEndian.AppendUint64(body, r.Size)
		}
	}
	return appendFrame(dst, body)
}

// AppendAccessBatch encodes a Batch frame of pure access records given
// parallel addr/write slices — the load generator's hot path, one
// append pass without building []Record.
func AppendAccessBatch(dst []byte, seq uint64, addrs []uint64, writes []bool) []byte {
	body := make([]byte, 0, 13+9*len(addrs))
	body = append(body, FrameBatch)
	body = binary.BigEndian.AppendUint64(body, seq)
	body = binary.BigEndian.AppendUint32(body, uint32(len(addrs)))
	for i, a := range addrs {
		of := byte(OpAccess)
		if writes[i] {
			of |= flagWrite
		}
		body = append(body, of)
		body = binary.BigEndian.AppendUint64(body, a)
	}
	return appendFrame(dst, body)
}

// AppendAck encodes an Ack frame.
func AppendAck(dst []byte, seq uint64, count uint32, queueNs uint64) []byte {
	body := make([]byte, 0, 22)
	body = append(body, FrameAck)
	body = binary.BigEndian.AppendUint64(body, seq)
	body = binary.BigEndian.AppendUint32(body, count)
	body = binary.BigEndian.AppendUint64(body, queueNs)
	return appendFrame(dst, body)
}

// AppendReject encodes a Reject frame.
func AppendReject(dst []byte, seq uint64, code byte, msg string) []byte {
	body := make([]byte, 0, 13+len(msg))
	body = append(body, FrameReject)
	body = binary.BigEndian.AppendUint64(body, seq)
	body = append(body, code)
	body = binary.BigEndian.AppendUint16(body, uint16(len(msg)))
	body = append(body, msg...)
	return appendFrame(dst, body)
}

// AppendBye encodes a Bye frame.
func AppendBye(dst []byte) []byte { return appendFrame(dst, []byte{FrameBye}) }

// AppendDrain encodes a Drain frame.
func AppendDrain(dst []byte) []byte { return appendFrame(dst, []byte{FrameDrain}) }

// ---- decoding ------------------------------------------------------------

// ReadFrame reads one length-prefixed frame body (type byte included)
// from r. It returns ErrFrameTooLarge for oversized announcements and
// io.EOF / io.ErrUnexpectedEOF on truncation; the returned buffer is
// freshly allocated and owned by the caller.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrMalformed)
	}
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: announced %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}

// DecodeFrame parses one frame body produced by ReadFrame (or an
// Append* encoder without its length prefix). Any structural problem —
// unknown type, short body, record count that disagrees with the
// payload — returns an error wrapping ErrMalformed; DecodeFrame never
// panics on garbage.
func DecodeFrame(body []byte) (Frame, error) {
	var f Frame
	if len(body) == 0 {
		return f, fmt.Errorf("%w: empty body", ErrMalformed)
	}
	f.Type = body[0]
	p := body[1:]
	switch f.Type {
	case FrameHello:
		if len(p) < 7 {
			return f, fmt.Errorf("%w: short hello", ErrMalformed)
		}
		f.Version = p[0]
		f.Tenant = binary.BigEndian.Uint32(p[1:5])
		n := int(binary.BigEndian.Uint16(p[5:7]))
		if len(p) != 7+n {
			return f, fmt.Errorf("%w: hello id length", ErrMalformed)
		}
		f.ClientID = string(p[7:])
	case FrameHelloAck:
		if len(p) < 3 {
			return f, fmt.Errorf("%w: short hello ack", ErrMalformed)
		}
		f.Code = p[0]
		n := int(binary.BigEndian.Uint16(p[1:3]))
		if len(p) != 3+n {
			return f, fmt.Errorf("%w: hello ack msg length", ErrMalformed)
		}
		f.Msg = string(p[3:])
	case FrameBatch:
		if len(p) < 12 {
			return f, fmt.Errorf("%w: short batch header", ErrMalformed)
		}
		f.Seq = binary.BigEndian.Uint64(p[:8])
		count := binary.BigEndian.Uint32(p[8:12])
		p = p[12:]
		// A count the remaining payload cannot possibly hold (records
		// are ≥ 9 bytes) is rejected before allocating for it.
		if uint64(count)*9 > uint64(len(p)) {
			return f, fmt.Errorf("%w: batch count %d exceeds payload", ErrMalformed, count)
		}
		recs := make([]Record, 0, count)
		for i := uint32(0); i < count; i++ {
			if len(p) < 9 {
				return f, fmt.Errorf("%w: short record", ErrMalformed)
			}
			of := p[0]
			r := Record{Op: of &^ flagWrite, Write: of&flagWrite != 0}
			r.Addr = binary.BigEndian.Uint64(p[1:9])
			p = p[9:]
			switch r.Op {
			case OpAccess:
			case OpAlloc, OpFree:
				if len(p) < 8 {
					return f, fmt.Errorf("%w: short range record", ErrMalformed)
				}
				r.Size = binary.BigEndian.Uint64(p[:8])
				p = p[8:]
			default:
				return f, fmt.Errorf("%w: bad op %d", ErrMalformed, r.Op)
			}
			recs = append(recs, r)
		}
		if len(p) != 0 {
			return f, fmt.Errorf("%w: %d trailing bytes after batch", ErrMalformed, len(p))
		}
		f.Records = recs
	case FrameAck:
		if len(p) != 20 {
			return f, fmt.Errorf("%w: ack body length %d", ErrMalformed, len(p))
		}
		f.Seq = binary.BigEndian.Uint64(p[:8])
		f.Count = binary.BigEndian.Uint32(p[8:12])
		f.QueueNs = binary.BigEndian.Uint64(p[12:20])
	case FrameReject:
		if len(p) < 11 {
			return f, fmt.Errorf("%w: short reject", ErrMalformed)
		}
		f.Seq = binary.BigEndian.Uint64(p[:8])
		f.Code = p[8]
		n := int(binary.BigEndian.Uint16(p[9:11]))
		if len(p) != 11+n {
			return f, fmt.Errorf("%w: reject msg length", ErrMalformed)
		}
		f.Msg = string(p[11:])
	case FrameBye, FrameDrain:
		if len(p) != 0 {
			return f, fmt.Errorf("%w: unexpected body on control frame", ErrMalformed)
		}
	default:
		return f, fmt.Errorf("%w: unknown frame type 0x%02x", ErrMalformed, f.Type)
	}
	return f, nil
}

// ReadDecode reads and decodes the next frame from r; the composition
// every receive loop uses.
func ReadDecode(r *bufio.Reader) (Frame, error) {
	body, err := ReadFrame(r)
	if err != nil {
		return Frame{}, err
	}
	return DecodeFrame(body)
}
