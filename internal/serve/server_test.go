package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// listenLoopback binds an ephemeral loopback port.
func listenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// dialLoopback opens a raw connection for protocol-abuse tests.
func dialLoopback(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

// fakeBackend records every call for coalescing/ordering assertions.
type fakeBackend struct {
	mu    sync.Mutex
	slots int
	err   map[int]error // Check result per slot
	calls []string      // "access:n", "alloc:addr:size", "free:addr:size"
	addrs []uint64      // all access addrs in apply order
}

func newFakeBackend(slots int) *fakeBackend {
	return &fakeBackend{slots: slots, err: map[int]error{}}
}

func (b *fakeBackend) Slots() int { return b.slots }

func (b *fakeBackend) Check(slot int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err[slot]
}

func (b *fakeBackend) setErr(slot int, err error) {
	b.mu.Lock()
	b.err[slot] = err
	b.mu.Unlock()
}

func (b *fakeBackend) AccessBatch(slot int, addrs []uint64, writes []bool) {
	b.mu.Lock()
	b.calls = append(b.calls, fmt.Sprintf("access:%d", len(addrs)))
	b.addrs = append(b.addrs, addrs...)
	b.mu.Unlock()
}

func (b *fakeBackend) AllocRange(slot int, addr, size uint64) int {
	b.mu.Lock()
	b.calls = append(b.calls, fmt.Sprintf("alloc:%d:%d", addr, size))
	b.mu.Unlock()
	return 1
}

func (b *fakeBackend) FreeRange(slot int, addr, size uint64) int {
	b.mu.Lock()
	b.calls = append(b.calls, fmt.Sprintf("free:%d:%d", addr, size))
	b.mu.Unlock()
	return 1
}

func (b *fakeBackend) snapshot() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.calls...)
}

func accessRecs(n int, base uint64) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Op: OpAccess, Addr: base + uint64(i)*4096}
	}
	return recs
}

// TestServerCoalescing pins that queued batches merge into one backend
// AccessBatch pass per pump, and that results carry per-batch counts.
func TestServerCoalescing(t *testing.T) {
	fb := newFakeBackend(1)
	s := NewServer(Config{Backend: fb})
	var results []Result
	for seq := uint64(1); seq <= 3; seq++ {
		err := s.Submit(0, seq, accessRecs(10, seq<<20), func(r Result) {
			results = append(results, r)
		})
		if err != nil {
			t.Fatalf("Submit seq %d: %v", seq, err)
		}
	}
	if got := s.QueuedRecords(0); got != 30 {
		t.Fatalf("QueuedRecords = %d, want 30", got)
	}
	if n := s.Pump(0); n != 3 {
		t.Fatalf("Pump retired %d batches, want 3", n)
	}
	if calls := fb.snapshot(); len(calls) != 1 || calls[0] != "access:30" {
		t.Fatalf("backend calls = %v, want one coalesced access:30", calls)
	}
	if len(results) != 3 {
		t.Fatalf("done callbacks = %d, want 3", len(results))
	}
	for i, r := range results {
		if r.Err != nil || r.Count != 10 {
			t.Fatalf("result %d = %+v, want 10 records acked", i, r)
		}
	}
	if got := s.QueuedRecords(0); got != 0 {
		t.Fatalf("QueuedRecords after pump = %d, want 0", got)
	}
}

// TestServerCoalesceCap pins the cap: one pump takes whole batches up
// to CoalesceRecords but always at least one batch.
func TestServerCoalesceCap(t *testing.T) {
	fb := newFakeBackend(1)
	s := NewServer(Config{Backend: fb, CoalesceRecords: 25})
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.Submit(0, seq, accessRecs(10, 0), nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Pump(0); n != 2 { // 10+10 fits, +10 would exceed 25
		t.Fatalf("first pump retired %d, want 2", n)
	}
	if n := s.Pump(0); n != 1 {
		t.Fatalf("second pump retired %d, want 1", n)
	}
	// An oversized single batch still pumps (at least one batch rule).
	if err := s.Submit(0, 4, accessRecs(40, 0), nil); err != nil {
		t.Fatal(err)
	}
	if n := s.Pump(0); n != 1 {
		t.Fatalf("oversized pump retired %d, want 1", n)
	}
}

// TestServerOrderingBarriers pins that alloc/free records flush the
// pending access run first, preserving client op order.
func TestServerOrderingBarriers(t *testing.T) {
	fb := newFakeBackend(1)
	s := NewServer(Config{Backend: fb})
	recs := []Record{
		{Op: OpAccess, Addr: 1},
		{Op: OpAccess, Addr: 2},
		{Op: OpAlloc, Addr: 100, Size: 8192},
		{Op: OpAccess, Addr: 3},
		{Op: OpFree, Addr: 100, Size: 4096},
	}
	if err := s.Submit(0, 1, recs, nil); err != nil {
		t.Fatal(err)
	}
	// A following pure-access batch coalesces after the free.
	if err := s.Submit(0, 2, accessRecs(2, 1000), nil); err != nil {
		t.Fatal(err)
	}
	s.Pump(0)
	want := []string{"access:2", "alloc:100:8192", "access:1", "free:100:4096", "access:2"}
	got := fb.snapshot()
	if len(got) != len(want) {
		t.Fatalf("calls = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestServerAdmissionControl pins the shed-at-boundary contract: the
// queue never exceeds QueueRecords, overflowing batches shed with
// ErrOverloaded and their done callback never fires, and an oversized
// batch is still admitted to an empty queue.
func TestServerAdmissionControl(t *testing.T) {
	fb := newFakeBackend(1)
	s := NewServer(Config{Backend: fb, QueueRecords: 100})
	var fired int
	done := func(Result) { fired++ }
	if err := s.Submit(0, 1, accessRecs(60, 0), done); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(0, 2, accessRecs(40, 0), done); err != nil {
		t.Fatal(err)
	}
	err := s.Submit(0, 3, accessRecs(1, 0), done)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow Submit err = %v, want ErrOverloaded", err)
	}
	if CodeFromError(err) != CodeOverloaded {
		t.Fatalf("CodeFromError = %d, want CodeOverloaded", CodeFromError(err))
	}
	if got := s.QueuedRecords(0); got > 100 {
		t.Fatalf("queue %d records exceeds cap 100", got)
	}
	s.Pump(0)
	if fired != 2 {
		t.Fatalf("done fired %d times, want 2 (shed batch must not resolve)", fired)
	}
	// Empty-queue exception: a batch larger than the cap still admits.
	if err := s.Submit(0, 4, accessRecs(200, 0), done); err != nil {
		t.Fatalf("oversized batch on empty queue: %v", err)
	}
	s.Pump(0)
	if fired != 3 {
		t.Fatalf("done fired %d times, want 3", fired)
	}
}

// TestServerPumpTimeRecheck pins that a batch queued for a slot that
// stops accepting work before its pump is rejected, not applied.
func TestServerPumpTimeRecheck(t *testing.T) {
	fb := newFakeBackend(1)
	s := NewServer(Config{Backend: fb})
	var res Result
	if err := s.Submit(0, 1, accessRecs(5, 0), func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	fb.setErr(0, ErrDraining) // tenant starts draining while queued
	if n := s.Pump(0); n != 1 {
		t.Fatalf("Pump retired %d, want 1", n)
	}
	if !errors.Is(res.Err, ErrDraining) {
		t.Fatalf("result err = %v, want ErrDraining", res.Err)
	}
	if calls := fb.snapshot(); len(calls) != 0 {
		t.Fatalf("backend saw %v, want nothing (batch rejected at pump)", calls)
	}
}

// TestServerSubmitRefusals pins the at-the-door errors.
func TestServerSubmitRefusals(t *testing.T) {
	fb := newFakeBackend(2)
	fb.setErr(1, ErrBadTenant)
	s := NewServer(Config{Backend: fb})
	if err := s.Submit(5, 1, nil, nil); !errors.Is(err, ErrBadTenant) {
		t.Fatalf("out-of-range slot err = %v", err)
	}
	if err := s.Submit(1, 1, nil, nil); !errors.Is(err, ErrBadTenant) {
		t.Fatalf("backend-refused slot err = %v", err)
	}
	s.Drain()
	if err := s.Submit(0, 1, nil, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain err = %v, want ErrDraining", err)
	}
}

// TestServerDrainAirtight floods a started server from many goroutines
// while draining and pins the accounting identity: every batch either
// refused at Submit or resolved by exactly one done callback — none
// dropped, none double-resolved.
func TestServerDrainAirtight(t *testing.T) {
	fb := newFakeBackend(4)
	s := NewServer(Config{Backend: fb, QueueRecords: 1 << 20})
	s.Start()
	const (
		writers = 8
		perW    = 200
	)
	var (
		refused, resolved int64
		mu                sync.Mutex
		wg                sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				err := s.Submit(w%4, uint64(i), accessRecs(3, 0), func(Result) {
					mu.Lock()
					resolved++
					mu.Unlock()
				})
				if err != nil {
					mu.Lock()
					refused++
					mu.Unlock()
				}
				if i == perW/2 && w == 0 {
					// One writer triggers the drain mid-flood.
					s.Drain()
				}
			}
		}(w)
	}
	wg.Wait()
	s.Drain() // idempotent; also the barrier for the last resolutions
	mu.Lock()
	defer mu.Unlock()
	if refused+resolved != writers*perW {
		t.Fatalf("refused %d + resolved %d != submitted %d",
			refused, resolved, writers*perW)
	}
	if resolved == 0 {
		t.Fatal("nothing resolved before drain — test lost its teeth")
	}
}

// throttleBackend wraps a Backend, slowing every access pass so queues
// actually fill under load.
type throttleBackend struct {
	Backend
	delay time.Duration
}

func (b throttleBackend) AccessBatch(slot int, addrs []uint64, writes []bool) {
	time.Sleep(b.delay)
	b.Backend.AccessBatch(slot, addrs, writes)
}

// TestServeLoopbackE2E is the end-to-end demo pin: a real TCP loopback
// server, 64 concurrent clients replaying a workload trace, zero lost
// batches, ledger identity Sent = Acked + Shed.
func TestServeLoopbackE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback e2e in -short")
	}
	// Queue cap above the worst-case in-flight records
	// (clients × window × batch = 64·8·256) so no batch can shed and the
	// zero-shed assertion below is deterministic, not timing-dependent.
	lb, err := StartLoopback("YCSB", 4096, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Stop()
	rep, err := Run(LoadConfig{
		Addr:     lb.Addr(),
		Clients:  64,
		Workload: "YCSB",
		Div:      4096,
		Accesses: 2000,
		Batch:    256,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Lost != 0 {
		t.Fatalf("lost %d batches, want 0\n%s", rep.Lost, rep)
	}
	if rep.Sent != rep.Acked+rep.Shed {
		t.Fatalf("ledger broken: sent %d != acked %d + shed %d",
			rep.Sent, rep.Acked, rep.Shed)
	}
	wantBatches := uint64(64 * (2000 / 256))
	if rep.Sent < wantBatches {
		t.Fatalf("sent %d batches, want >= %d", rep.Sent, wantBatches)
	}
	if rep.Shed != 0 {
		t.Fatalf("unloaded server shed %d batches, want 0", rep.Shed)
	}
	if rep.AckedRecords != uint64(64*2000) {
		t.Fatalf("acked %d records, want %d", rep.AckedRecords, 64*2000)
	}
	if rep.P99 <= 0 || rep.AccessesPerSec <= 0 {
		t.Fatalf("report missing latency/throughput: %+v", rep)
	}
}

// TestServeOverloadSheds pins backpressure under a deliberately slow
// backend with a tiny queue: batches shed with CodeOverloaded, nothing
// is lost, and queue memory stays bounded.
func TestServeOverloadSheds(t *testing.T) {
	if testing.Short() {
		t.Skip("overload e2e in -short")
	}
	lb, err := StartLoopback("YCSB", 4096, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Stop()
	// Re-wrap the running server's backend: not possible after the fact,
	// so instead drive a second server on the same runtime with the
	// throttled backend.
	slow := NewServer(Config{
		Backend:      throttleBackend{NewSystemBackend(lb.Sys), 2 * time.Millisecond},
		QueueRecords: 512,
	})
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- slow.Serve(ln) }()
	defer func() { slow.Shutdown(); <-served }()

	rep, err := Run(LoadConfig{
		Addr:     ln.Addr().String(),
		Clients:  8,
		Workload: "YCSB",
		Div:      4096,
		Accesses: 4000,
		Batch:    256,
		Window:   16,
		Seed:     11,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Lost != 0 {
		t.Fatalf("lost %d batches under overload, want 0\n%s", rep.Lost, rep)
	}
	if rep.Shed == 0 {
		t.Fatal("slow backend shed nothing — overload path untested")
	}
	if rep.Sent != rep.Acked+rep.Shed {
		t.Fatalf("ledger broken: sent %d != acked %d + shed %d",
			rep.Sent, rep.Acked, rep.Shed)
	}
}

// TestServeRetryDeliversAll pins retry mode: with backpressure retries
// on, every record eventually applies even against a throttled server.
func TestServeRetryDeliversAll(t *testing.T) {
	if testing.Short() {
		t.Skip("retry e2e in -short")
	}
	lb, err := StartLoopback("YCSB", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Stop()
	slow := NewServer(Config{
		Backend:      throttleBackend{NewSystemBackend(lb.Sys), time.Millisecond},
		QueueRecords: 512,
	})
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- slow.Serve(ln) }()
	defer func() { slow.Shutdown(); <-served }()

	const clients, accesses = 4, 2048
	rep, err := Run(LoadConfig{
		Addr:     ln.Addr().String(),
		Clients:  clients,
		Workload: "YCSB",
		Div:      4096,
		Accesses: accesses,
		Batch:    256,
		Window:   8,
		Seed:     3,
		Retry:    true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Lost != 0 {
		t.Fatalf("lost %d batches, want 0", rep.Lost)
	}
	if rep.AckedRecords != uint64(clients*accesses) {
		t.Fatalf("retry mode applied %d records, want %d (shed %d)",
			rep.AckedRecords, clients*accesses, rep.Shed)
	}
}

// TestServeShutdownRefusesNewStreams pins the drain handshake: a
// draining server answers Hello with CodeDraining.
func TestServeShutdownRefusesNewStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("network test in -short")
	}
	lb, err := StartLoopback("YCSB", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	addr := lb.Addr()
	lb.Stop()
	if _, err := Dial(addr, ClientConfig{}); err == nil {
		t.Fatal("Dial succeeded against a stopped server")
	}
}

// TestServeBadTenantHandshake pins the handshake refusal for a slot the
// backend does not serve.
func TestServeBadTenantHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("network test in -short")
	}
	lb, err := StartLoopback("YCSB", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Stop()
	_, err = Dial(lb.Addr(), ClientConfig{Tenant: 9})
	if err == nil {
		t.Fatal("Dial with bad tenant succeeded")
	}
}

// TestServeGarbageConnection pins that a connection sending garbage is
// rejected and dropped without disturbing the server (which then still
// serves a well-behaved client).
func TestServeGarbageConnection(t *testing.T) {
	if testing.Short() {
		t.Skip("network test in -short")
	}
	lb, err := StartLoopback("YCSB", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Stop()
	nc, err := dialLoopback(lb.Addr())
	if err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff, 0xff})
	buf := make([]byte, 256)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	nc.Read(buf) // server answers (hello ack or reject) then closes
	nc.Close()

	cl, err := Dial(lb.Addr(), ClientConfig{})
	if err != nil {
		t.Fatalf("clean client after garbage one: %v", err)
	}
	if _, err := cl.SendAccessBatch([]uint64{0}, []bool{false}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Close()
	if err != nil || st.Acked != 1 {
		t.Fatalf("post-garbage stream: stats %+v err %v", st, err)
	}
}
