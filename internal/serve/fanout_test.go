package serve

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"artmem/internal/core"
	"artmem/internal/memsim"
)

// TestPumpFanoutAllRecordsApplied drives a fanned-out slot (4 pumps)
// from concurrent submitters and checks nothing is lost or doubled:
// every record reaches the backend exactly once and every batch's done
// callback fires exactly once.
func TestPumpFanoutAllRecordsApplied(t *testing.T) {
	fb := newFakeBackend(1)
	s := NewServer(Config{Backend: fb, PumpsPerSlot: 4, CoalesceRecords: 32})
	s.Start()
	const (
		submitters = 4
		perG       = 50
		recsEach   = 8
	)
	var acked atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				recs := accessRecs(recsEach, uint64(g)<<32|uint64(i)<<16)
				for {
					err := s.Submit(0, uint64(i), recs, func(r Result) {
						if r.Err == nil {
							acked.Add(1)
						}
					})
					if err == nil {
						break
					}
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("Submit: %v", err)
						return
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(g)
	}
	wg.Wait()
	s.Drain()
	if got := acked.Load(); got != submitters*perG {
		t.Errorf("acked %d batches, want %d", got, submitters*perG)
	}
	fb.mu.Lock()
	applied := len(fb.addrs)
	fb.mu.Unlock()
	if want := submitters * perG * recsEach; applied != want {
		t.Errorf("backend saw %d access records, want %d", applied, want)
	}
}

// barrierBackend checks the fan-out exclusivity contract: range ops
// (barrier batches, write-locked) must never overlap an access pass or
// another range op, and access passes may overlap each other.
type barrierBackend struct {
	mu       sync.Mutex
	log      []string
	readers  atomic.Int32
	writerIn atomic.Bool
	violated atomic.Bool
}

func (b *barrierBackend) Slots() int      { return 1 }
func (b *barrierBackend) Check(int) error { return nil }
func (b *barrierBackend) note(s string)   { b.mu.Lock(); b.log = append(b.log, s); b.mu.Unlock() }
func (b *barrierBackend) snapshot() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.log...)
}

func (b *barrierBackend) AccessBatch(slot int, addrs []uint64, writes []bool) {
	if b.writerIn.Load() {
		b.violated.Store(true)
	}
	b.readers.Add(1)
	time.Sleep(100 * time.Microsecond)
	b.note("access")
	b.readers.Add(-1)
}

func (b *barrierBackend) AllocRange(slot int, addr, size uint64) int {
	if b.writerIn.Swap(true) || b.readers.Load() != 0 {
		b.violated.Store(true)
	}
	time.Sleep(100 * time.Microsecond)
	if b.readers.Load() != 0 {
		b.violated.Store(true)
	}
	b.note("alloc")
	b.writerIn.Store(false)
	return 1
}

func (b *barrierBackend) FreeRange(slot int, addr, size uint64) int {
	if b.writerIn.Swap(true) || b.readers.Load() != 0 {
		b.violated.Store(true)
	}
	b.note("free")
	b.writerIn.Store(false)
	return 1
}

// TestPumpFanoutBarrierOrdering pins the barrier protocol under real
// fan-out: with 4 concurrent pumps, a batch carrying an alloc/free
// record applies exclusively (no overlapping access pass) and in take
// order — every batch submitted before it lands before it in the
// backend log, every batch after it lands after.
func TestPumpFanoutBarrierOrdering(t *testing.T) {
	bb := &barrierBackend{}
	// CoalesceRecords below a batch size → one queued batch per take,
	// so takes (and applyMu acquisitions) map 1:1 to submits.
	s := NewServer(Config{Backend: bb, PumpsPerSlot: 4, CoalesceRecords: 1})
	const pre, post = 12, 12
	for i := 0; i < pre; i++ {
		if err := s.Submit(0, uint64(i), accessRecs(4, uint64(i)<<16), nil); err != nil {
			t.Fatalf("Submit pre %d: %v", i, err)
		}
	}
	if err := s.Submit(0, 100, []Record{{Op: OpAlloc, Addr: 0, Size: 4096}}, nil); err != nil {
		t.Fatalf("Submit barrier: %v", err)
	}
	for i := 0; i < post; i++ {
		if err := s.Submit(0, uint64(200+i), accessRecs(4, uint64(i)<<16), nil); err != nil {
			t.Fatalf("Submit post %d: %v", i, err)
		}
	}
	s.Start()
	s.Drain()
	if bb.violated.Load() {
		t.Fatalf("barrier exclusivity violated: a range op overlapped another apply")
	}
	log := bb.snapshot()
	joined := strings.Join(log, ",")
	idx := -1
	for i, e := range log {
		if e == "alloc" {
			idx = i
		}
	}
	if idx != pre {
		t.Errorf("barrier applied at position %d of log %s, want %d", idx, joined, pre)
	}
	if len(log) != pre+post+1 {
		t.Errorf("backend log has %d entries (%s), want %d", len(log), joined, pre+post+1)
	}
}

// TestPumpFanoutDrainAirtight pins that Drain under fan-out retires
// every accepted batch exactly once even while submitters race it.
func TestPumpFanoutDrainAirtight(t *testing.T) {
	fb := newFakeBackend(1)
	s := NewServer(Config{Backend: fb, PumpsPerSlot: 3})
	s.Start()
	var resolved atomic.Int64
	accepted := 0
	for i := 0; i < 500; i++ {
		err := s.Submit(0, uint64(i), accessRecs(2, uint64(i)<<12), func(Result) {
			resolved.Add(1)
		})
		if err == nil {
			accepted++
		}
	}
	s.Drain()
	if got := resolved.Load(); got != int64(accepted) {
		t.Errorf("resolved %d of %d accepted batches", got, accepted)
	}
	if err := s.Submit(0, 9999, accessRecs(1, 0), nil); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain Submit err = %v, want ErrDraining", err)
	}
}

// TestServerShardedBackendConcurrent is the end-to-end stack test:
// concurrent submitters → fanned-out pumps → shardedBackend →
// core.ShardedSystem → memsim.ShardedMachine, with the machine's
// counter sums and invariants checked after drain.
func TestServerShardedBackendConcurrent(t *testing.T) {
	mcfg := memsim.DefaultConfig(64*64*1024, 16*64*1024, 64*1024)
	mcfg.CacheLines = 0
	sys := core.NewShardedSystem(core.ShardedSystemConfig{
		Machine: mcfg,
		Shards:  4,
		Policy:  core.Config{SamplePeriod: 1},
	})
	s := NewServer(Config{Backend: NewShardedBackend(sys), PumpsPerSlot: 4})
	s.Start()
	const submitters, perG, recsEach = 4, 30, 16
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				recs := make([]Record, recsEach)
				for j := range recs {
					addr := uint64((g*perG*recsEach+i*recsEach+j)*64*1024) % uint64(mcfg.FootprintBytes)
					recs[j] = Record{Op: OpAccess, Addr: addr, Write: j%3 == 0}
				}
				for s.Submit(0, uint64(i), recs, nil) != nil {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(g)
	}
	wg.Wait()
	s.Drain()
	c := sys.Counters()
	if want := uint64(submitters * perG * recsEach); c.FastAccesses+c.SlowAccesses != want {
		t.Errorf("machine saw %d accesses, want %d", c.FastAccesses+c.SlowAccesses, want)
	}
	sys.Machine().Quiesce(func() {
		if err := sys.Machine().CheckInvariants(); err != nil {
			t.Fatalf("invariants after concurrent serving: %v", err)
		}
	})
	// Draining system refuses at Check.
	sys.SetDraining(true)
	if err := NewShardedBackend(sys).Check(0); !errors.Is(err, ErrDraining) {
		t.Errorf("draining Check err = %v, want ErrDraining", err)
	}
}
