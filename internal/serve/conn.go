package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Network front of the Server: an accept loop, one reader goroutine per
// connection (the connection's main loop), and one writer goroutine
// flushing encoded frames. Done callbacks fire on pump goroutines and
// must never block, so outgoing frames go through a mutex-guarded
// pending list the writer drains — its size is bounded by the client's
// in-flight window plus the tenant queue bound, never by a slow socket.

// netState is the Server's network-side state, separate from the core
// so the lockstep driver carries none of it.
type netState struct {
	mu    sync.Mutex
	ln    net.Listener
	conns map[*conn]struct{}
	wg    sync.WaitGroup
}

// Serve accepts connections on ln until Shutdown closes it (returning
// nil) or Accept fails (returning the error). It starts the pump
// goroutines itself; callers typically run it via `go`.
func (s *Server) Serve(ln net.Listener) error {
	s.Start()
	s.net.mu.Lock()
	if s.net.conns == nil {
		s.net.conns = make(map[*conn]struct{})
	}
	s.net.ln = ln
	s.net.mu.Unlock()
	// Shutdown may have run before the listener was registered (it then
	// found no listener to close): the draining flag is already set, so
	// close it here — whoever observes both the listener and the flag
	// shuts the accept loop down.
	if s.draining.Load() {
		ln.Close()
		return nil
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		c := &conn{s: s, c: nc, br: bufio.NewReaderSize(nc, 64<<10)}
		c.cond = sync.NewCond(&c.mu)
		s.net.mu.Lock()
		if s.net.conns == nil || s.draining.Load() {
			s.net.mu.Unlock()
			nc.Close()
			continue
		}
		s.net.conns[c] = struct{}{}
		s.net.wg.Add(2)
		s.net.mu.Unlock()
		s.connections.Add(1)
		go c.writeLoop()
		go c.readLoop()
	}
}

// ListenAndServe listens on addr and serves. The returned listener is
// already bound when Serve starts, so callers needing the bound address
// (port 0) should listen themselves and call Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains the whole frontend gracefully: stop accepting, warn
// every client with a Drain frame, drain the server core (every
// accepted batch acked or rejected — see Drain), then flush and close
// the connections. Safe to call without Serve (it just drains the
// core) and idempotent.
func (s *Server) Shutdown() {
	s.draining.Store(true)
	s.net.mu.Lock()
	ln := s.net.ln
	s.net.ln = nil
	conns := make([]*conn, 0, len(s.net.conns))
	for c := range s.net.conns {
		conns = append(conns, c)
	}
	s.net.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.send(AppendDrain(nil))
	}
	s.Drain()
	for _, c := range conns {
		c.finish()
	}
	s.net.wg.Wait()
}

// conn is one client connection.
type conn struct {
	s  *Server
	c  net.Conn
	br *bufio.Reader

	mu   sync.Mutex
	cond *sync.Cond
	// out is the pending encoded-frame list the writer drains.
	out [][]byte
	// closed stops new frames from being enqueued; the writer exits
	// once the pending list is flushed, closing the socket.
	closed bool
	// dead marks a failed write: pending and future frames are dropped
	// (the peer is gone; its batches still drain through the pumps).
	dead bool
	// outstanding counts accepted batches whose done callback has not
	// fired yet — the Bye handshake waits for it to reach zero so every
	// ack is on the wire before the stream closes.
	outstanding int
	tenant      int
	// decodeNs is the last frame's decode duration, measured by the
	// readLoop (only the reader touches it) and handed to SubmitTimed
	// for latency attribution.
	decodeNs int64
}

// send enqueues one encoded frame for the writer. Never blocks.
func (c *conn) send(frame []byte) {
	c.mu.Lock()
	if c.closed || c.dead {
		c.mu.Unlock()
		return
	}
	c.out = append(c.out, frame)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// finish stops the connection's writer after it flushes the pending
// list; the socket close then unblocks the reader. Idempotent.
func (c *conn) finish() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// writeLoop flushes pending frames until finish() and an empty list.
func (c *conn) writeLoop() {
	defer c.s.net.wg.Done()
	defer c.c.Close()
	bw := bufio.NewWriterSize(c.c, 64<<10)
	for {
		c.mu.Lock()
		for len(c.out) == 0 && !c.closed {
			c.cond.Wait()
		}
		frames := c.out
		c.out = nil
		closed := c.closed
		c.mu.Unlock()
		ok := true
		for _, f := range frames {
			if _, err := bw.Write(f); err != nil {
				ok = false
				break
			}
		}
		if ok && bw.Flush() != nil {
			ok = false
		}
		if !ok {
			c.mu.Lock()
			c.dead = true
			c.out = nil
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		if closed {
			c.mu.Lock()
			done := len(c.out) == 0
			c.mu.Unlock()
			if done {
				return
			}
		}
	}
}

// readLoop is the connection's main loop: handshake, then batches
// until Bye, EOF, or garbage.
func (c *conn) readLoop() {
	defer c.s.net.wg.Done()
	defer func() {
		c.finish()
		c.s.net.mu.Lock()
		delete(c.s.net.conns, c)
		c.s.net.mu.Unlock()
		c.s.connections.Add(-1)
	}()
	if !c.handshake() {
		return
	}
	for {
		// Read and decode separately so the decode stage is timed on
		// its own: the blocking read is network idle, not decode cost.
		body, err := ReadFrame(c.br)
		var f Frame
		if err == nil {
			t0 := c.s.clock()
			f, err = DecodeFrame(body)
			c.decodeNs = c.s.clock() - t0
		}
		if err != nil {
			if errors.Is(err, ErrMalformed) || errors.Is(err, ErrFrameTooLarge) {
				c.s.decodeErrs.Inc()
				c.send(AppendReject(nil, 0, CodeMalformed, err.Error()))
			}
			return
		}
		if ctr := c.s.frames[f.Type]; ctr != nil {
			ctr.Inc()
		}
		switch f.Type {
		case FrameBatch:
			c.submit(f)
		case FrameBye:
			// Let every accepted batch resolve so its ack or reject is
			// enqueued (and flushed by the writer) before we answer.
			c.mu.Lock()
			for c.outstanding > 0 && !c.dead {
				c.cond.Wait()
			}
			c.mu.Unlock()
			c.send(AppendBye(nil))
			return
		default:
			c.s.decodeErrs.Inc()
			c.send(AppendReject(nil, 0, CodeMalformed,
				fmt.Sprintf("unexpected frame type 0x%02x", f.Type)))
			return
		}
	}
}

// handshake runs the Hello exchange, fixing the connection's tenant.
func (c *conn) handshake() bool {
	f, err := ReadDecode(c.br)
	if err != nil || f.Type != FrameHello {
		if err == nil || errors.Is(err, ErrMalformed) || errors.Is(err, ErrFrameTooLarge) {
			c.s.decodeErrs.Inc()
			c.send(AppendHelloAck(nil, CodeMalformed, "expected hello"))
		}
		return false
	}
	if ctr := c.s.frames[FrameHello]; ctr != nil {
		ctr.Inc()
	}
	if f.Version != ProtoVersion {
		c.send(AppendHelloAck(nil, CodeMalformed,
			fmt.Sprintf("protocol version %d, want %d", f.Version, ProtoVersion)))
		return false
	}
	if c.s.draining.Load() {
		c.send(AppendHelloAck(nil, CodeDraining, "server draining"))
		return false
	}
	slot := int(f.Tenant)
	if slot < 0 || slot >= len(c.s.queues) {
		c.s.countReject(CodeBadTenant)
		c.send(AppendHelloAck(nil, CodeBadTenant,
			fmt.Sprintf("tenant %d of %d", f.Tenant, len(c.s.queues))))
		return false
	}
	if err := c.s.backend.Check(slot); err != nil {
		c.s.countReject(CodeFromError(err))
		c.send(AppendHelloAck(nil, CodeFromError(err), err.Error()))
		return false
	}
	c.tenant = slot
	c.send(AppendHelloAck(nil, CodeOK, ""))
	return true
}

// submit hands one batch frame to the server core and arranges the ack
// or reject on the way back.
func (c *conn) submit(f Frame) {
	seq := f.Seq
	c.mu.Lock()
	c.outstanding++
	c.mu.Unlock()
	resolve := func(frame []byte) {
		c.send(frame)
		c.mu.Lock()
		c.outstanding--
		c.cond.Broadcast()
		c.mu.Unlock()
	}
	err := c.s.SubmitTimed(c.tenant, seq, f.Records, c.decodeNs, func(res Result) {
		if res.Err != nil {
			resolve(AppendReject(nil, seq, CodeFromError(res.Err), res.Err.Error()))
			return
		}
		resolve(AppendAck(nil, seq, res.Count, res.QueueNs))
	})
	if err != nil {
		resolve(AppendReject(nil, seq, CodeFromError(err), err.Error()))
	}
}
