package serve

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"artmem/internal/core"
	"artmem/internal/memsim"
	"artmem/internal/telemetry"
	"artmem/internal/workloads"
)

// LoadConfig parameterizes a load-generation run: N concurrent clients
// each replaying a seed-decorrelated instance of one workload trace
// against a serving frontend.
type LoadConfig struct {
	// Addr is the server's address.
	Addr string
	// Tenant is the tenant slot every client drives; TenantOf, when
	// non-nil, overrides it per client (e.g. round-robin over slots).
	Tenant   uint32
	TenantOf func(client int) uint32
	// Clients is the number of concurrent streams. 0 uses 1.
	Clients int
	// Workload names the internal/workloads trace each client replays.
	Workload string
	// Div is the workload footprint divisor. 0 uses 256.
	Div int64
	// Accesses caps each client's trace. 0 uses 200_000.
	Accesses int64
	// Batch is the records per batch frame. 0 uses 4096.
	Batch int
	// Window is each client's in-flight batch window. 0 uses 8.
	Window int
	// Seed is the base trace seed; client i uses Seed+i.
	Seed uint64
	// Retry resends batches shed by backpressure (with linear backoff)
	// instead of dropping them.
	Retry bool
	// IdleTimeout bounds each client's wait for any server frame.
	// 0 uses 30s.
	IdleTimeout time.Duration
}

// Report aggregates a run: the batch ledger summed over clients plus
// throughput and end-to-end latency percentiles. Lost must be 0
// against a healthy server — every batch either acked or explicitly
// shed. The JSON field set is the `artload -json` ledger schema;
// durations serialize as integer nanoseconds.
type Report struct {
	Clients int    `json:"clients"`
	Sent    uint64 `json:"sent"`
	Acked   uint64 `json:"acked"`
	Shed    uint64 `json:"shed"`
	Lost    uint64 `json:"lost"`
	// AckedRecords is the number of access records applied end to end.
	AckedRecords uint64        `json:"acked_records"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	// AccessesPerSec is AckedRecords / Elapsed.
	AccessesPerSec float64 `json:"accesses_per_sec"`
	// P50 and P99 are batch end-to-end latency percentiles.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Errors carries per-client terminal errors (empty on a clean run).
	Errors []string `json:"errors"`
	// Stages is the server-side stage-latency breakdown reconstructed
	// from the span journal; nil when span sampling was off or the
	// server is remote (the journal is in its process, not ours).
	Stages *StageBreakdown `json:"stages"`
}

// String renders the report as the artload summary block.
func (r Report) String() string {
	s := fmt.Sprintf(
		"clients %d  batches sent %d acked %d shed %d lost %d\n"+
			"accesses %d in %.2fs  →  %.0f accesses/sec\n"+
			"batch e2e latency p50 %s  p99 %s",
		r.Clients, r.Sent, r.Acked, r.Shed, r.Lost,
		r.AckedRecords, r.Elapsed.Seconds(), r.AccessesPerSec, r.P50, r.P99)
	if r.Stages != nil {
		s += "\n" + r.Stages.String()
	}
	return s
}

// StageBreakdown is the per-batch mean of each serving-pipeline stage,
// averaged over the sampled spans of a run.
type StageBreakdown struct {
	// Spans is the number of sampled spans the means are over.
	Spans int64 `json:"spans"`
	// Mean stage durations per sampled batch, clock nanoseconds.
	AvgDecodeNs   int64 `json:"avg_decode_ns"`
	AvgQueueNs    int64 `json:"avg_queue_ns"`
	AvgStallNs    int64 `json:"avg_stall_ns"`
	AvgCoalesceNs int64 `json:"avg_coalesce_ns"`
	AvgApplyNs    int64 `json:"avg_apply_ns"`
	AvgAckNs      int64 `json:"avg_ack_ns"`
}

// String renders the breakdown as one summary line.
func (b StageBreakdown) String() string {
	return fmt.Sprintf(
		"stage means over %d spans  decode %s  queue %s  stall %s  coalesce %s  apply %s  ack %s",
		b.Spans,
		time.Duration(b.AvgDecodeNs), time.Duration(b.AvgQueueNs),
		time.Duration(b.AvgStallNs), time.Duration(b.AvgCoalesceNs),
		time.Duration(b.AvgApplyNs), time.Duration(b.AvgAckNs))
}

// StageBreakdownOf averages the stage durations of spans; nil when
// spans is empty.
func StageBreakdownOf(spans []telemetry.Span) *StageBreakdown {
	if len(spans) == 0 {
		return nil
	}
	b := &StageBreakdown{Spans: int64(len(spans))}
	for _, s := range spans {
		b.AvgDecodeNs += s.DecodeNs
		b.AvgQueueNs += s.QueueNs
		b.AvgStallNs += s.StallNs
		b.AvgCoalesceNs += s.CoalesceNs
		b.AvgApplyNs += s.ApplyNs
		b.AvgAckNs += s.AckNs
	}
	b.AvgDecodeNs /= b.Spans
	b.AvgQueueNs /= b.Spans
	b.AvgStallNs /= b.Spans
	b.AvgCoalesceNs /= b.Spans
	b.AvgApplyNs /= b.Spans
	b.AvgAckNs /= b.Spans
	return b
}

// Run executes the load generation and blocks until every client
// finishes its trace and closes cleanly.
func Run(cfg LoadConfig) (Report, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Div == 0 {
		cfg.Div = 256
	}
	if cfg.Accesses <= 0 {
		cfg.Accesses = 200_000
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 4096
	}
	spec, err := workloads.ByName(cfg.Workload)
	if err != nil {
		return Report{}, err
	}
	stats := make([]ClientStats, cfg.Clients)
	errs := make([]error, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = runClient(cfg, spec, i)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{Clients: cfg.Clients, Elapsed: elapsed}
	var lat []float64
	for i, st := range stats {
		rep.Sent += st.Sent
		rep.Acked += st.Acked
		rep.Shed += st.Shed
		rep.Lost += st.Lost
		rep.AckedRecords += st.AckedRecords
		lat = append(lat, st.LatNs...)
		if errs[i] != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("client %d: %v", i, errs[i]))
		}
	}
	if elapsed > 0 {
		rep.AccessesPerSec = float64(rep.AckedRecords) / elapsed.Seconds()
	}
	rep.P50 = percentile(lat, 0.50)
	rep.P99 = percentile(lat, 0.99)
	if len(rep.Errors) > 0 {
		return rep, fmt.Errorf("serve: %d of %d clients failed: %s",
			len(rep.Errors), cfg.Clients, rep.Errors[0])
	}
	return rep, nil
}

// percentile returns the p-quantile of latNs as a duration (0 when
// empty). Sorts a copy.
func percentile(latNs []float64, p float64) time.Duration {
	if len(latNs) == 0 {
		return 0
	}
	s := append([]float64(nil), latNs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return time.Duration(s[i])
}

// pending tracks unresolved batch payloads for retry mode.
type pending struct {
	mu     sync.Mutex
	bySeq  map[uint64]payload
	retryq []payload
}

type payload struct {
	addrs    []uint64
	writes   []bool
	attempts int
}

// runClient replays one client's trace: batch the workload's accesses,
// stream them windowed, optionally retry backpressure sheds, and close
// politely.
func runClient(cfg LoadConfig, spec workloads.Spec, i int) (ClientStats, error) {
	prof := workloads.Profile{
		Div:             cfg.Div,
		PatternAccesses: cfg.Accesses,
		AppAccesses:     cfg.Accesses,
		Seed:            cfg.Seed,
	}
	w := workloads.Limit(spec.NewSeeded(prof, uint64(i)), cfg.Accesses)
	defer w.Close()

	tenant := cfg.Tenant
	if cfg.TenantOf != nil {
		tenant = cfg.TenantOf(i)
	}
	var pend *pending
	ccfg := ClientConfig{
		Tenant:      tenant,
		ClientID:    fmt.Sprintf("artload-%d", i),
		Window:      cfg.Window,
		IdleTimeout: cfg.IdleTimeout,
	}
	if cfg.Retry {
		pend = &pending{bySeq: make(map[uint64]payload)}
		ccfg.OnResolve = func(seq uint64, code byte, _ float64) {
			pend.mu.Lock()
			p, ok := pend.bySeq[seq]
			delete(pend.bySeq, seq)
			// Only backpressure sheds retry; hard rejects (bad tenant,
			// draining) stay shed. Give up after 50 attempts so an
			// unrecoverable overload cannot spin forever.
			if ok && code == CodeOverloaded && p.attempts < 50 {
				p.attempts++
				pend.retryq = append(pend.retryq, p)
			}
			pend.mu.Unlock()
		}
	}
	cl, err := Dial(cfg.Addr, ccfg)
	if err != nil {
		return ClientStats{}, err
	}

	send := func(addrs []uint64, writes []bool, attempts int) error {
		if attempts > 0 {
			// Linear backoff before a retransmit, capped: let the
			// server's queues drain instead of hammering them.
			d := time.Duration(attempts) * time.Millisecond
			if d > 10*time.Millisecond {
				d = 10 * time.Millisecond
			}
			time.Sleep(d)
		}
		seq, err := cl.SendAccessBatch(addrs, writes)
		if err != nil {
			return err
		}
		if pend != nil {
			pend.mu.Lock()
			pend.bySeq[seq] = payload{addrs: addrs, writes: writes, attempts: attempts}
			pend.mu.Unlock()
		}
		return nil
	}
	drainRetries := func(final bool) error {
		if pend == nil {
			return nil
		}
		for {
			pend.mu.Lock()
			if len(pend.retryq) == 0 {
				inflight := len(pend.bySeq)
				pend.mu.Unlock()
				if !final || inflight == 0 {
					return nil
				}
				// Batches are still in flight and may yet land on the
				// retry queue; yield until they resolve.
				time.Sleep(time.Millisecond)
				continue
			}
			p := pend.retryq[0]
			pend.retryq = pend.retryq[1:]
			pend.mu.Unlock()
			if err := send(p.addrs, p.writes, p.attempts); err != nil {
				return err
			}
		}
	}

	addrs := make([]uint64, 0, cfg.Batch)
	writes := make([]bool, 0, cfg.Batch)
	flush := func() error {
		if len(addrs) == 0 {
			return nil
		}
		// Retry mode retains payloads past the send, so each flush
		// needs fresh buffers; without retry the encoder copies
		// synchronously and the buffers recycle.
		a, wr := addrs, writes
		if err := send(a, wr, 0); err != nil {
			return err
		}
		if pend != nil {
			addrs = make([]uint64, 0, cfg.Batch)
			writes = make([]bool, 0, cfg.Batch)
		} else {
			addrs, writes = addrs[:0], writes[:0]
		}
		return nil
	}

	var runErr error
stream:
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			addrs = append(addrs, a.Addr)
			writes = append(writes, a.Write)
			if len(addrs) == cfg.Batch {
				if runErr = flush(); runErr != nil {
					break stream
				}
			}
		}
		if runErr = drainRetries(false); runErr != nil {
			break
		}
	}
	if runErr == nil {
		runErr = flush()
	}
	if runErr == nil {
		runErr = drainRetries(true)
	}
	st, closeErr := cl.Close()
	if runErr == nil {
		runErr = closeErr
	}
	return st, runErr
}

// Loopback is an in-process single-tenant serving stack for smoke
// tests and `artload -loopback`: a System sized for the named
// workload, a Server over it, both wired to a fresh registry, listening
// on a loopback port.
type Loopback struct {
	// Sys is the backing runtime and Srv the frontend; Registry holds
	// both components' metrics.
	Sys      *core.System
	Srv      *Server
	Registry *telemetry.Registry
	// Spans is the span journal when LoopbackConfig.SpanRate was set;
	// nil otherwise. SLO is the monitor (always on for loopback — one
	// slot, negligible cost).
	Spans  *telemetry.SpanJournal
	SLO    *telemetry.SLOMonitor
	addr   string
	served chan error
}

// LoopbackConfig parameterizes StartLoopbackCfg.
type LoopbackConfig struct {
	// Workload names the trace the stack is sized for; Div scales its
	// footprint (0 uses 256).
	Workload string
	Div      int64
	// QueueRecords is the per-tenant admission bound (0 uses the
	// server default).
	QueueRecords int
	// SpanRate, when > 0, enables span recording for roughly one
	// accepted batch in SpanRate (1 records every batch), with
	// migration-stall attribution wired to the runtime's control-loop
	// busy counter. 0 keeps spans off (the default-off discipline).
	SpanRate int
	// SpanCap bounds the journal (0 uses telemetry.DefaultSpanCap).
	SpanCap int
}

// StartLoopback builds and starts a loopback stack with spans off —
// the original smoke-test surface; see StartLoopbackCfg for the
// instrumented form.
func StartLoopback(workload string, div int64, queueRecords int) (*Loopback, error) {
	return StartLoopbackCfg(LoopbackConfig{Workload: workload, Div: div, QueueRecords: queueRecords})
}

// StartLoopbackCfg builds and starts a loopback stack.
func StartLoopbackCfg(cfg LoopbackConfig) (*Loopback, error) {
	spec, err := workloads.ByName(cfg.Workload)
	if err != nil {
		return nil, err
	}
	if cfg.Div == 0 {
		cfg.Div = 256
	}
	prof := workloads.Profile{Div: cfg.Div, PatternAccesses: 1, AppAccesses: 1, Seed: 1}
	probe := spec.New(prof)
	foot := probe.FootprintBytes()
	probe.Close()

	reg := telemetry.NewRegistry()
	sys := core.NewSystem(core.SystemConfig{
		Machine: memsim.DefaultConfig(foot, foot/5, prof.PageSize()),
		Telemetry: &telemetry.Set{
			Registry: reg,
			Trace:    telemetry.NewTrace(0),
		},
	})
	sys.Start()
	scfg := Config{
		Backend:      NewSystemBackend(sys),
		Registry:     reg,
		QueueRecords: cfg.QueueRecords,
		SLO:          telemetry.NewSLOMonitor([]telemetry.SLOObjective{telemetry.BatchSLO()}, nil, nil),
	}
	if cfg.SpanRate > 0 {
		scfg.Spans = telemetry.NewSpanJournal(cfg.SpanCap, cfg.SpanRate)
		scfg.StallNs = sys.ControlBusyNs
	}
	srv := NewServer(scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sys.Stop()
		return nil, err
	}
	lb := &Loopback{Sys: sys, Srv: srv, Registry: reg,
		Spans: scfg.Spans, SLO: scfg.SLO,
		addr: ln.Addr().String(), served: make(chan error, 1)}
	go func() { lb.served <- srv.Serve(ln) }()
	return lb, nil
}

// Addr returns the bound loopback address.
func (l *Loopback) Addr() string { return l.addr }

// Stop drains the frontend and stops the runtime.
func (l *Loopback) Stop() {
	l.Srv.Shutdown()
	<-l.served
	l.Sys.Stop()
}
