package serve

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame pins the decoder's no-panic contract: any byte
// string either decodes to a frame that re-encodes consistently or
// errors cleanly.
func FuzzDecodeFrame(f *testing.F) {
	seed := [][]byte{
		AppendHello(nil, 3, "fuzz"),
		AppendHelloAck(nil, CodeOK, ""),
		AppendBatch(nil, 7, []Record{
			{Op: OpAccess, Addr: 4096, Write: true},
			{Op: OpAlloc, Addr: 0, Size: 1 << 20},
			{Op: OpFree, Addr: 1 << 30, Size: 4096},
		}),
		AppendAck(nil, 7, 3, 999),
		AppendReject(nil, 7, CodeOverloaded, "queue full"),
		AppendBye(nil),
		AppendDrain(nil),
		{},
		{0xff, 0xff, 0xff},
	}
	for _, wire := range seed {
		if len(wire) > 4 {
			f.Add(wire[4:]) // frame body sans length prefix
		} else {
			f.Add(wire)
		}
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := DecodeFrame(body)
		if err != nil {
			return
		}
		// A decodable body must re-encode to the identical wire bytes:
		// encode(decode(x)) == x for every accepted input.
		var wire []byte
		switch fr.Type {
		case FrameHello:
			// The decoder accepts any version byte (the handshake rejects
			// mismatches); the encoder only writes ProtoVersion, so the
			// re-encode identity only holds for current-version hellos.
			if fr.Version != ProtoVersion {
				return
			}
			wire = AppendHello(nil, fr.Tenant, fr.ClientID)
		case FrameHelloAck:
			wire = AppendHelloAck(nil, fr.Code, fr.Msg)
		case FrameBatch:
			wire = AppendBatch(nil, fr.Seq, fr.Records)
		case FrameAck:
			wire = AppendAck(nil, fr.Seq, fr.Count, fr.QueueNs)
		case FrameReject:
			wire = AppendReject(nil, fr.Seq, fr.Code, fr.Msg)
		case FrameBye:
			wire = AppendBye(nil)
		case FrameDrain:
			wire = AppendDrain(nil)
		default:
			t.Fatalf("decoded unknown frame type 0x%02x", fr.Type)
		}
		if !bytes.Equal(wire[4:], body) {
			t.Fatalf("re-encode mismatch:\n in % x\nout % x", body, wire[4:])
		}
	})
}
