package serve

import (
	"errors"
	"testing"

	"artmem/internal/telemetry"
)

// vClock is a hand-advanced deterministic clock plus a stall counter —
// the lockstep stand-ins for the machine's virtual time and the core's
// control-busy counter.
type vClock struct {
	now   int64
	stall int64
}

func (c *vClock) clock() func() int64 { return func() int64 { return c.now } }
func (c *vClock) stallFn() func() int64 {
	return func() int64 { return c.stall }
}

// spanServer builds a lockstep server over a fake backend with span
// recording at rate 1 and the virtual clock installed.
func spanServer(t *testing.T, clk *vClock) (*Server, *fakeBackend, *telemetry.SpanJournal, *telemetry.SLOMonitor) {
	t.Helper()
	fb := newFakeBackend(2)
	j := telemetry.NewSpanJournal(64, 1)
	slo := telemetry.NewSLOMonitor(
		[]telemetry.SLOObjective{telemetry.LatencySLO(), telemetry.BatchSLO()},
		nil, clk.clock())
	s := NewServer(Config{
		Backend: fb,
		Clock:   clk.clock(),
		Spans:   j,
		StallNs: clk.stallFn(),
		SLO:     slo,
	})
	return s, fb, j, slo
}

func TestSpanStageAttribution(t *testing.T) {
	clk := &vClock{now: 1000}
	s, _, j, _ := spanServer(t, clk)

	recs := []Record{{Op: OpAccess, Addr: 1}, {Op: OpAccess, Addr: 2}}
	if err := s.SubmitTimed(0, 7, recs, 40, nil); err != nil {
		t.Fatal(err)
	}
	// While queued: 300ns pass, 100 of them control-loop stall.
	clk.now += 300
	clk.stall += 100
	if s.Pump(0) != 1 {
		t.Fatal("pump retired nothing")
	}
	if j.Len() != 1 {
		t.Fatalf("journal holds %d spans, want 1", j.Len())
	}
	sp := j.Spans(0)[0]
	if sp.Outcome != telemetry.SpanAcked || sp.Tenant != 0 || sp.ClientSeq != 7 || sp.Records != 2 {
		t.Fatalf("span header wrong: %+v", sp)
	}
	if sp.StartNs != 1000 {
		t.Fatalf("start = %d, want 1000", sp.StartNs)
	}
	if sp.DecodeNs != 40 {
		t.Fatalf("decode = %d, want 40", sp.DecodeNs)
	}
	if sp.StallNs != 100 {
		t.Fatalf("stall = %d, want 100", sp.StallNs)
	}
	if sp.QueueNs != 200 {
		t.Fatalf("queue = %d, want 300-100=200", sp.QueueNs)
	}
	// The static clock makes coalesce/apply/ack zero-length here.
	if sp.CoalesceNs != 0 || sp.ApplyNs != 0 || sp.AckNs != 0 {
		t.Fatalf("static-clock stages nonzero: %+v", sp)
	}
}

func TestSpanRejectedOutcome(t *testing.T) {
	clk := &vClock{}
	s, fb, j, slo := spanServer(t, clk)
	if err := s.Submit(0, 1, []Record{{Op: OpAccess, Addr: 9}}, nil); err != nil {
		t.Fatal(err)
	}
	fb.setErr(0, errors.New("slot draining"))
	clk.now += 50
	s.Pump(0)
	sp := j.Spans(0)[0]
	if sp.Outcome != telemetry.SpanRejected {
		t.Fatalf("outcome = %q, want rejected", sp.Outcome)
	}
	if sp.ApplyNs != 0 || sp.CoalesceNs != 0 {
		t.Fatalf("rejected span has apply stages: %+v", sp)
	}
	if sp.QueueNs != 50 {
		t.Fatalf("queue = %d, want 50", sp.QueueNs)
	}
	// The loss lands in the SLO monitor.
	rep := slo.Report()
	if rep.Tenants[0].Windows[0].Lost != 1 {
		t.Fatalf("SLO lost = %d, want 1", rep.Tenants[0].Windows[0].Lost)
	}
}

func TestSpanSamplingDisabledIsNil(t *testing.T) {
	fb := newFakeBackend(1)
	s := NewServer(Config{Backend: fb})
	done := 0
	if err := s.Submit(0, 1, []Record{{Op: OpAccess, Addr: 1}}, func(Result) { done++ }); err != nil {
		t.Fatal(err)
	}
	s.Pump(0)
	if done != 1 {
		t.Fatal("batch did not resolve with spans disabled")
	}
	if s.spans.Len() != 0 {
		t.Fatal("nil journal recorded a span")
	}
}

func TestSpanSLOLatencyBreach(t *testing.T) {
	clk := &vClock{}
	s, _, _, slo := spanServer(t, clk)
	// Tenant 0 is the latency class (2ms objective): a 5ms queue wait
	// breaches; tenant 1 (batch, 50ms) does not.
	for slot := 0; slot < 2; slot++ {
		if err := s.Submit(slot, 1, []Record{{Op: OpAccess, Addr: 1}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	clk.now += 5_000_000
	s.Pump(0)
	s.Pump(1)
	rep := slo.Report()
	if got := rep.Tenants[0].Windows[0].LatencyBreaches; got != 1 {
		t.Fatalf("latency-class breaches = %d, want 1", got)
	}
	if got := rep.Tenants[1].Windows[0].LatencyBreaches; got != 0 {
		t.Fatalf("batch-class breaches = %d, want 0", got)
	}
	if b := rep.Tenants[0].Windows[0].LatencyBurn; b <= 1 {
		t.Fatalf("latency burn = %v, want > 1", b)
	}
}

// TestSpanJournalOverLoopback drives the full network stack with
// rate-1 sampling and checks every acked batch produced a span whose
// stages are consistent.
func TestSpanJournalOverLoopback(t *testing.T) {
	lb, err := StartLoopbackCfg(LoopbackConfig{
		Workload: "YCSB", Div: 4096, SpanRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Stop()
	rep, err := Run(LoadConfig{
		Addr: lb.Addr(), Clients: 2, Workload: "YCSB",
		Div: 4096, Accesses: 4096, Batch: 256, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 {
		t.Fatalf("lost %d batches", rep.Lost)
	}
	spans := lb.Spans.Spans(0)
	if uint64(lb.Spans.Total()) < rep.Acked {
		t.Fatalf("journal total %d < acked %d at rate 1", lb.Spans.Total(), rep.Acked)
	}
	for _, sp := range spans {
		if sp.Outcome != telemetry.SpanAcked {
			t.Fatalf("loopback span not acked: %+v", sp)
		}
		if sp.QueueNs < 0 || sp.StallNs < 0 || sp.ApplyNs < 0 || sp.AckNs < 0 || sp.DecodeNs < 0 {
			t.Fatalf("negative stage: %+v", sp)
		}
	}
	if b := StageBreakdownOf(spans); b == nil || b.Spans == 0 {
		t.Fatal("no stage breakdown from a rate-1 run")
	}
	// The SLO monitor saw the traffic.
	if lb.SLO.Report().Tenants[0].Windows[0].Batches == 0 {
		t.Fatal("SLO monitor observed no batches")
	}
	// Quantile series materialized on the shared registry.
	snap := lb.Registry.Snapshot()
	if _, ok := snap["artmem_serve_batch_latency_ns_p99"]; !ok {
		t.Fatal("registry missing artmem_serve_batch_latency_ns_p99")
	}
}
