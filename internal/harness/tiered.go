package harness

import (
	"fmt"

	"artmem/internal/faultinject"
	"artmem/internal/memsim"
	"artmem/internal/policies"
	"artmem/internal/tier"
	"artmem/internal/workloads"
)

// TierStats captures the per-tier and per-boundary outcome of an
// N-tier (RunTiered) run. Slices are indexed by tier (0 = fastest) and
// by boundary (b = the edge between tiers b and b+1).
type TierStats struct {
	// Names are the chain tier names ("DRAM", "CXL", ...).
	Names []string
	// Used, Capacity, and ShadowPages are the end-of-run occupancy per
	// tier; Accesses the cache-missing accesses each tier served.
	Used        []int
	Capacity    []int
	ShadowPages []int
	Accesses    []uint64
	// BoundaryPromotions/Demotions/Discards are cumulative migration
	// counts per boundary; Discards is the subset of demotions that
	// completed as free shadow discards (non-exclusive mode).
	BoundaryPromotions []uint64
	BoundaryDemotions  []uint64
	BoundaryDiscards   []uint64
	// Shadow-transaction totals (all zero in exclusive mode).
	ShadowDiscards    uint64
	ShadowInvalidates uint64
	ShadowReclaims    uint64
}

// chainMachineConfig derives the memsim configuration of a TierChain
// run: the shared defaults from machineConfig with the parsed chain
// installed. Percentage capacities in the spec resolve against the
// workload footprint inside memsim.NewMachine.
func chainMachineConfig(foot int64, cfg Config) (memsim.Config, Config) {
	mcfg, cfg := machineConfig(foot, cfg)
	ch, err := tier.ParseChain(cfg.TierChain)
	if err != nil {
		panic(fmt.Sprintf("harness: bad tier chain %q: %v", cfg.TierChain, err))
	}
	mcfg.Chain = ch
	mcfg.NonExclusive = cfg.NonExclusive
	return mcfg, cfg
}

// RunTiered replays workload w on an N-tier chain machine (Config.
// TierChain) with one two-tier policy agent per tier boundary,
// decomposed through a memsim.BoundaryHub. mk constructs boundary b's
// agent — callers decorrelate seeds per boundary there, the way
// ShardedSystem offsets per-shard seeds. The replay loop, purity
// contract, and Result semantics match Run; Result.Tiers additionally
// carries the per-tier occupancy and per-boundary migration outcome.
//
// A two-tier chain is the compatibility control: one boundary, one
// agent, and (for a chain carrying the default tier parameters)
// results byte-identical to Run on the legacy machine — pinned by
// TestRunTieredTwoTierMatchesRun.
func RunTiered(w workloads.Workload, mk func(b int) policies.EnvPolicy, cfg Config) Result {
	defer w.Close()
	if cfg.TierChain == "" {
		panic("harness: RunTiered requires Config.TierChain")
	}
	mcfg, cfg := chainMachineConfig(w.FootprintBytes(), cfg)
	m := memsim.NewMachine(mcfg)
	var inj *faultinject.Injector
	if cfg.Faults != nil {
		inj = faultinject.New(*cfg.Faults)
		m.SetFaultInjector(inj)
	}
	hub := memsim.NewBoundaryHub(m)
	var budgets *tier.Budgets
	if cfg.BoundaryBudget > 0 {
		budgets = tier.NewBudgets(hub.NumBoundaries(), cfg.BoundaryBudget)
		budgets.Reset()
		hub.SetBudgets(budgets)
	}
	agents := make([]policies.EnvPolicy, hub.NumBoundaries())
	var interval int64
	for b := range agents {
		agents[b] = mk(b)
		agents[b].AttachEnv(hub.View(b))
		if iv := agents[b].Interval(); iv > interval {
			interval = iv
		}
	}
	if interval <= 0 {
		interval = policies.DefaultTickInterval
	}

	res := Result{Workload: w.Name(), Policy: agents[0].Name(), Ratio: cfg.Ratio}
	nextTick := interval
	var prevMig uint64
	var prevFast, prevSlow uint64

	// tick runs one decision period: refill the per-boundary budgets,
	// then every boundary agent in ascending order — promotions into
	// tier b land before boundary b+1 considers what remains, so hot
	// pages relay up the chain deterministically.
	tick := func() {
		if budgets != nil {
			budgets.Reset()
		}
		now := m.Now()
		for _, a := range agents {
			a.Tick(now)
		}
	}

	for {
		batch, ok := w.Next()
		if !ok {
			break
		}
		for _, acc := range batch {
			m.Access(acc.Addr, acc.Write)
			if m.Now() >= nextTick {
				tick()
				res.Ticks++
				nextTick = m.Now() + interval
				if cfg.CheckInvariants && res.InvariantErr == nil {
					res.InvariantErr = m.CheckInvariants()
				}
				if cfg.CollectSeries {
					c := m.Counters()
					res.MigrationSeries.Append(m.Now(), float64(c.Migrations-prevMig))
					prevMig = c.Migrations
					df := c.FastAccesses - prevFast
					ds := c.SlowAccesses - prevSlow
					prevFast, prevSlow = c.FastAccesses, c.SlowAccesses
					if df+ds > 0 {
						res.RatioSeries.Append(m.Now(), float64(df)/float64(df+ds))
					}
				}
			}
		}
		res.Accesses += int64(len(batch))
	}

	c := m.Counters()
	res.ExecNs = m.Now()
	res.Misses = c.FastAccesses + c.SlowAccesses
	res.DRAMRatio = c.DRAMRatio()
	res.Migrations = c.Migrations
	res.Promotions = c.Promotions
	res.Demotions = c.Demotions
	res.MigratedBytes = c.MigratedBytes
	res.Faults = c.Faults
	res.MigrationFailures = c.MigrationFailures
	res.BackgroundNs = m.BackgroundNs()
	if inj != nil {
		res.FaultStats = inj.Stats()
	}
	if cfg.CheckInvariants && res.InvariantErr == nil {
		res.InvariantErr = m.CheckInvariants()
	}

	ts := &TierStats{
		ShadowDiscards:    c.ShadowDiscards,
		ShadowInvalidates: c.ShadowInvalidates,
		ShadowReclaims:    c.ShadowReclaims,
	}
	for t := 0; t < m.Tiers(); t++ {
		tid := memsim.TierID(t)
		ts.Names = append(ts.Names, m.TierName(tid))
		ts.Used = append(ts.Used, m.UsedPages(tid))
		ts.Capacity = append(ts.Capacity, m.CapacityPages(tid))
		ts.ShadowPages = append(ts.ShadowPages, m.ShadowPages(tid))
		ts.Accesses = append(ts.Accesses, m.TierAccesses(tid))
	}
	for b := 0; b < m.NumBoundaries(); b++ {
		bs := m.BoundaryStatsAt(b)
		ts.BoundaryPromotions = append(ts.BoundaryPromotions, bs.Promotions)
		ts.BoundaryDemotions = append(ts.BoundaryDemotions, bs.Demotions)
		ts.BoundaryDiscards = append(ts.BoundaryDiscards, bs.ShadowDiscards)
	}
	res.Tiers = ts
	return res
}
