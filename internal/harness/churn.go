package harness

import (
	"errors"
	"fmt"
	"sort"

	"artmem/internal/memsim"
	"artmem/internal/policies"
	"artmem/internal/tenancy"
	"artmem/internal/workloads"
)

// ChurnClient is one short-lived tenant of a churn run: it arrives
// through the plane's admission control, replays its workload, and
// departs gracefully — unless an injected TenantCrash kills it first.
type ChurnClient struct {
	// Name labels the client; "" uses the workload name.
	Name string
	// Weight is the arbiter share; 0 means 1.
	Weight int
	// Class is the client's SLO class.
	Class tenancy.SLOClass
	// Workload is the client's trace; RunChurn closes it. Its footprint
	// must fit the spec's SlotBytes.
	Workload workloads.Workload
	// Policy manages the client's pages while it is resident.
	Policy policies.EnvPolicy
}

// ChurnSpec describes one churn run: a slot-limited plane that a queue
// of clients cycles through, optionally against a permanent antagonist.
type ChurnSpec struct {
	// Capacity is the plane's slot count.
	Capacity int
	// SlotBytes is the address region per slot; every client's footprint
	// must fit in it. The machine is sized Capacity*SlotBytes.
	SlotBytes int64
	// Clients is the arrival queue, admitted in order — one per control
	// period, more under an injected ArrivalBurst, fewer under
	// registration backpressure.
	Clients []ChurnClient
	// Antagonist, when non-nil, is registered first (slot 0) and never
	// departs or crashes: the permanent noisy neighbour every client
	// cohort contends with.
	Antagonist *ChurnClient
	// ChunkAccesses is the number of accesses one scheduling turn
	// replays per resident tenant, bounding how long any tenant runs
	// between lifecycle events; 0 uses 512.
	ChunkAccesses int
	// PeriodNs overrides the control-period length (arrival pacing,
	// crash rolls, budget refills, drain retries). 0 uses the fastest
	// policy interval in the spec — usually far too coarse for churn,
	// where many lifecycle events must fit one short run.
	PeriodNs int64
}

// ChurnStats aggregates a churn run's lifecycle outcomes (Result.Churn).
type ChurnStats struct {
	Capacity   int
	Clients    int
	Completed  int
	Crashed    int
	PeakActive int
	// Plane lifecycle counters at end of run.
	Registrations    uint64
	Deregistrations  uint64
	Throttled        uint64
	ReclaimRollbacks uint64
	PagesDrained     uint64
	PagesHandedOff   uint64
	// UnresolvedDrains counts slots still draining when the run ended
	// (possible only when reclamation faults never clear).
	UnresolvedDrains int
	// Unadmitted counts clients never admitted (plane wedged by
	// permanent reclamation faults).
	Unadmitted int
	// Per-class tails and fairness: mean reconstructed p99 access cost
	// and Jain's index over per-client cache-missing hit ratios, per SLO
	// class (zero/1 when the class is empty). Caveat: when placement is
	// so good that a class's clients barely miss the CPU cache, the hit
	// ratio's denominator shrinks to a handful of warm-up misses and its
	// Jain turns noisy — read it together with the class's mean p99.
	LatencyP99Ns float64
	BatchP99Ns   float64
	JainLatency  float64
	JainBatch    float64
}

// churnRun carries one client's in-flight replay state.
type churnRun struct {
	client int // index into results rows
	w      workloads.Workload
	pol    policies.EnvPolicy
	batch  []workloads.Access
	pos    int
	next   int64 // next policy tick
	intv   int64
}

// RunChurn replays a churn schedule: clients arrive through admission
// control, run time-sliced against each other (and the antagonist),
// depart through transactional reclamation, and die to injected
// TenantCrash faults with their pages drained or handed off to the
// antagonist. The run is synchronous and goroutine-free and honours
// Run's purity contract — identical spec identities, arbiter config,
// and Config yield a bit-identical Result — so churn cells memoize and
// parallelize through the sched grid like any other cell.
//
// With cfg.CheckInvariants set, the machine's page accounting, the
// per-tenant RSS sum, and the arbiter's quota sum are re-verified after
// every lifecycle event (registration, departure, crash, rollback,
// retry); the first violation lands in Result.InvariantErr.
func RunChurn(spec ChurnSpec, acfg tenancy.ArbiterConfig, cfg Config) Result {
	if spec.Capacity < 1 {
		panic("harness: RunChurn needs capacity >= 1")
	}
	if spec.SlotBytes <= 0 {
		panic("harness: RunChurn needs SlotBytes > 0")
	}
	chunk := spec.ChunkAccesses
	if chunk <= 0 {
		chunk = 512
	}
	defer func() {
		for _, c := range spec.Clients {
			c.Workload.Close()
		}
		if spec.Antagonist != nil {
			spec.Antagonist.Workload.Close()
		}
	}()

	m, inj, cfg := buildMachine(int64(spec.Capacity)*spec.SlotBytes, cfg)
	plane := tenancy.NewDynamicPlane(m, spec.Capacity, acfg)

	// Result rows: antagonist first (it registers first), then every
	// client in arrival order — admitted or not.
	nRows := len(spec.Clients)
	antRow := -1
	if spec.Antagonist != nil {
		antRow = 0
		nRows++
	}
	res := Result{
		Workload: fmt.Sprintf("churn[%d clients/cap %d]", len(spec.Clients), spec.Capacity),
		Policy:   churnPolicyName(spec),
		Ratio:    cfg.Ratio,
	}
	res.Tenants = make([]TenantResult, nRows)
	churn := &ChurnStats{Capacity: spec.Capacity, Clients: len(spec.Clients)}
	res.Churn = churn

	// The control period is the fastest policy interval in the spec.
	ctlInterval := int64(policies.DefaultTickInterval)
	each := func(c *ChurnClient) {
		if iv := c.Policy.Interval(); iv > 0 && iv < ctlInterval {
			ctlInterval = iv
		}
	}
	for i := range spec.Clients {
		each(&spec.Clients[i])
	}
	if spec.Antagonist != nil {
		each(spec.Antagonist)
	}
	if spec.PeriodNs > 0 {
		ctlInterval = spec.PeriodNs
	}

	slotRun := make([]*churnRun, spec.Capacity)
	// replaying is the slot currently mid-batch, excluded from crash
	// victim selection (killing the tenant whose accesses are being
	// replayed would let a dead tenant keep allocating).
	replaying := -1
	rowOf := func(client int) int { // client index -> result row
		if antRow >= 0 {
			return client + 1
		}
		return client
	}
	checkErr := func() {
		if !cfg.CheckInvariants || res.InvariantErr != nil {
			return
		}
		res.InvariantErr = churnInvariants(m, plane)
	}

	admit := func(client int, c *ChurnClient) (int, error) {
		if c.Workload.FootprintBytes() > spec.SlotBytes {
			panic(fmt.Sprintf("harness: churn client %q footprint %d > SlotBytes %d",
				c.Name, c.Workload.FootprintBytes(), spec.SlotBytes))
		}
		name := c.Name
		if name == "" {
			name = c.Workload.Name()
		}
		slot, err := plane.Register(tenancy.Tenant{Name: name, Weight: c.Weight, Class: c.Class})
		if err != nil {
			return -1, err
		}
		c.Policy.AttachEnv(plane.View(slot))
		iv := c.Policy.Interval()
		if iv <= 0 {
			iv = policies.DefaultTickInterval
		}
		slotRun[slot] = &churnRun{
			client: client, w: c.Workload, pol: c.Policy,
			next: m.Now() + iv, intv: iv,
		}
		row := antRow
		if client >= 0 {
			row = rowOf(client)
		}
		res.Tenants[row] = TenantResult{
			Name:   name,
			Weight: c.Weight,
			Class:  c.Class.String(),
		}
		checkErr()
		return slot, nil
	}

	// snapshot records the departing/crashed tenant's final counters
	// into its result row — before reclamation zeroes them.
	arb := plane.Arbiter()
	snapshot := func(slot, row int, completed, crashed bool) {
		tc := m.TenantCounters(memsim.TenantID(slot))
		tr := &res.Tenants[row]
		tr.FastAccesses = tc.FastAccesses
		tr.SlowAccesses = tc.SlowAccesses
		tr.HitRatio = tc.DRAMRatio()
		tr.AppNs = tc.AppNs
		tr.FastPages = m.TenantUsedPages(memsim.TenantID(slot), memsim.Fast)
		tr.QuotaPages = arb.Quota(slot)
		tr.Promotions = tc.Promotions
		tr.Demotions = tc.Demotions
		tr.AdmissionDenials = arb.Denials(slot)
		tr.Preemptions = arb.Preemptions(slot)
		tr.Completed = completed
		tr.Crashed = crashed
		tr.P99Ns = p99Cost(m, tc)
	}

	pending := 0 // next client to admit
	antSlot := -1
	if spec.Antagonist != nil {
		slot, err := admit(-1, spec.Antagonist)
		if err != nil {
			panic("harness: antagonist registration failed: " + err.Error())
		}
		antSlot = slot
	}
	// Initial cohort: fill the plane before time starts (initial
	// registrations are exempt from arrival backpressure).
	for pending < len(spec.Clients) {
		if _, err := admit(pending, &spec.Clients[pending]); err != nil {
			break
		}
		pending++
	}

	crashes := 0
	victimCursor := 0
	// depart finishes slot's tenant: snapshot, then drain (or hand off
	// to the antagonist for odd-numbered crashes). An interrupted
	// reclamation leaves the slot draining; RetryDrains picks it up.
	depart := func(slot int, crashed bool) {
		r := slotRun[slot]
		completed := !crashed
		snapshot(slot, rowOf(r.client), completed, crashed)
		if completed {
			churn.Completed++
		} else {
			churn.Crashed++
		}
		handoff := -1
		var err error
		if crashed {
			if crashes%2 == 1 && antSlot >= 0 {
				handoff = antSlot
			}
			crashes++
			err = plane.Crash(slot, handoff)
		} else {
			err = plane.Deregister(slot, handoff)
		}
		if err != nil && !errors.Is(err, tenancy.ErrReclaimInterrupted) {
			panic("harness: churn departure failed: " + err.Error())
		}
		r.w.Close()
		slotRun[slot] = nil
		checkErr()
	}

	nextCtl := ctlInterval
	lifecycle := func(now int64) {
		plane.BeginPeriod()
		plane.RetryDrains()
		checkErr()
		// Injected tenant crash: kill one resident client (never the
		// antagonist, never the slot being replayed — callers pass it
		// via victimExempt below).
		if inj != nil && inj.CrashTenant(now) {
			for probe := 0; probe < spec.Capacity; probe++ {
				v := (victimCursor + probe) % spec.Capacity
				if v == antSlot || v == replaying || slotRun[v] == nil {
					continue
				}
				victimCursor = v + 1
				depart(v, true)
				break
			}
		}
		// Arrivals: one per period, plus any injected burst, all subject
		// to the plane's backpressure.
		arrivals := 1
		if inj != nil {
			arrivals += inj.ArrivalBurst(now)
		}
		for i := 0; i < arrivals && pending < len(spec.Clients); i++ {
			if _, err := admit(pending, &spec.Clients[pending]); err != nil {
				break // full or throttled; retry next period
			}
			pending++
		}
		if a := plane.ActiveTenants(); a > churn.PeakActive {
			churn.PeakActive = a
		}
		// Policy ticks for every resident tenant that is due.
		for slot := 0; slot < spec.Capacity; slot++ {
			if r := slotRun[slot]; r != nil && now >= r.next {
				r.pol.Tick(now)
				res.Ticks++
				r.next = now + r.intv
			}
		}
		nextCtl = now + ctlInterval
	}

	idleRounds := 0
	for {
		progressed := false
		for slot := 0; slot < spec.Capacity; slot++ {
			r := slotRun[slot]
			if r == nil {
				continue
			}
			if r.pos >= len(r.batch) {
				batch, ok := r.w.Next()
				if !ok {
					if slot == antSlot {
						// The antagonist stays registered (its residency
						// keeps pressuring the arbiter); it just goes idle.
						slotRun[slot] = nil
					} else {
						depart(slot, false)
					}
					continue
				}
				r.batch, r.pos = batch, 0
			}
			end := r.pos + chunk
			if end > len(r.batch) {
				end = len(r.batch)
			}
			m.SetCurrentTenant(memsim.TenantID(slot))
			replaying = slot
			off := uint64(slot) * uint64(spec.SlotBytes)
			for _, acc := range r.batch[r.pos:end] {
				m.Access(acc.Addr+off, acc.Write)
				if m.Now() >= nextCtl {
					lifecycle(m.Now())
				}
			}
			replaying = -1
			n := end - r.pos
			r.pos = end
			res.Accesses += int64(n)
			row := rowOf(r.client)
			if r.client < 0 {
				row = antRow
			}
			res.Tenants[row].Accesses += int64(n)
			progressed = true
		}
		if progressed {
			idleRounds = 0
			continue
		}
		// No resident tenant replayed anything: either we are done, or
		// arrivals/drains are blocked. Run lifecycle steps off the clock
		// to unwedge; give up after a bound so permanently failing
		// reclamation faults cannot hang the run.
		busy := pending < len(spec.Clients)
		for slot := 0; slot < spec.Capacity && !busy; slot++ {
			if slotRun[slot] != nil && slot != antSlot {
				busy = true
			}
		}
		draining := 0
		for slot := 0; slot < spec.Capacity; slot++ {
			if plane.State(slot) == tenancy.StateDraining {
				draining++
			}
		}
		if !busy && draining == 0 {
			break
		}
		if idleRounds++; idleRounds > 4*spec.Capacity+100 {
			churn.UnresolvedDrains = draining
			churn.Unadmitted = len(spec.Clients) - pending
			break
		}
		lifecycle(m.Now())
	}

	// The antagonist never departs; snapshot it in place.
	if antSlot >= 0 {
		snapshot(antSlot, antRow, true, false)
	}

	c := m.Counters()
	res.ExecNs = m.Now()
	res.Misses = c.FastAccesses + c.SlowAccesses
	res.DRAMRatio = c.DRAMRatio()
	res.Migrations = c.Migrations
	res.Promotions = c.Promotions
	res.Demotions = c.Demotions
	res.MigratedBytes = c.MigratedBytes
	res.Faults = c.Faults
	res.MigrationFailures = c.MigrationFailures
	res.BackgroundNs = m.BackgroundNs()
	res.ArbiterRebalances = arb.Rebalances()
	if inj != nil {
		res.FaultStats = inj.Stats()
	}
	checkErr()

	st := plane.Stats()
	churn.Registrations = st.Registrations
	churn.Deregistrations = st.Deregistrations
	churn.Throttled = st.RegistrationsThrottled
	churn.ReclaimRollbacks = st.ReclaimRollbacks
	churn.PagesDrained = st.PagesDrained
	churn.PagesHandedOff = st.PagesHandedOff
	churnClassSummary(res.Tenants, antRow, churn)
	return res
}

// churnInvariants checks the machine's accounting plus the tenancy
// cross-invariants: per-tenant RSS sums to machine RSS, and the active
// quota sum covers the fast tier (static/dynamic modes).
func churnInvariants(m *memsim.Machine, p *tenancy.Plane) error {
	if err := m.CheckInvariants(); err != nil {
		return err
	}
	var sum int
	for i := 0; i < p.Capacity(); i++ {
		sum += m.TenantUsedPages(memsim.TenantID(i), memsim.Fast) +
			m.TenantUsedPages(memsim.TenantID(i), memsim.Slow)
	}
	if total := m.UsedPages(memsim.Fast) + m.UsedPages(memsim.Slow); sum != total {
		return fmt.Errorf("harness: tenant RSS sum %d != machine RSS %d", sum, total)
	}
	if p.Arbiter().Mode() != tenancy.ModeOff && p.ActiveTenants() > 0 {
		fastCap := m.CapacityPages(memsim.Fast)
		want := fastCap
		if n := p.ActiveTenants(); n > fastCap {
			want = n // per-tenant floor of 1 can exceed capacity
		}
		if got := p.Arbiter().QuotaSum(); got < want {
			return fmt.Errorf("harness: active quota sum %d < %d (fast tier stranded)", got, want)
		}
	}
	return nil
}

// p99Cost reconstructs a tenant's tail access cost from its discrete
// access-outcome distribution: every access cost one of the machine's
// cache-hit, fast-read, or slow-read constants (write costs are folded
// into their tier's read bucket — the tail tier is what matters). The
// statistic is the mean cost of the slowest 1% of accesses (the p99
// tail mean): unlike the raw discrete percentile, which can only ever
// be one of the three constants, it is continuous in the slow-access
// fraction, so shaving slow accesses off a tenant's tail always moves
// it. Returns 0 for a tenant with no accesses.
func p99Cost(m *memsim.Machine, tc memsim.TenantCounters) float64 {
	type bucket struct {
		cost float64
		n    uint64
	}
	bs := []bucket{
		{m.Config().CacheHitNs, tc.CacheHits},
		{m.ReadCostNs(memsim.Fast), tc.FastAccesses},
		{m.ReadCostNs(memsim.Slow), tc.SlowAccesses},
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].cost > bs[j].cost })
	var total uint64
	for _, b := range bs {
		total += b.n
	}
	if total == 0 {
		return 0
	}
	tail := total / 100
	if tail == 0 {
		tail = 1
	}
	var costSum float64
	remaining := tail
	for _, b := range bs {
		n := b.n
		if n > remaining {
			n = remaining
		}
		costSum += float64(n) * b.cost
		remaining -= n
		if remaining == 0 {
			break
		}
	}
	return costSum / float64(tail)
}

// churnClassSummary fills the per-class aggregates: mean p99 and Jain's
// index over hit ratios, per SLO class, over the client rows (the
// antagonist row is excluded — it is infrastructure, not a client).
func churnClassSummary(rows []TenantResult, antRow int, churn *ChurnStats) {
	var latP99, batP99 []float64
	var latHit, batHit []float64
	for i, r := range rows {
		if i == antRow || r.Accesses == 0 {
			continue
		}
		if r.Class == "latency" {
			latP99 = append(latP99, r.P99Ns)
			latHit = append(latHit, r.HitRatio)
		} else {
			batP99 = append(batP99, r.P99Ns)
			batHit = append(batHit, r.HitRatio)
		}
	}
	churn.LatencyP99Ns = meanOf(latP99)
	churn.BatchP99Ns = meanOf(batP99)
	churn.JainLatency = JainIndex(latHit)
	churn.JainBatch = JainIndex(batHit)
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// churnPolicyName mirrors tenantPolicyName over a churn spec.
func churnPolicyName(spec ChurnSpec) string {
	if len(spec.Clients) == 0 {
		if spec.Antagonist != nil {
			return spec.Antagonist.Policy.Name()
		}
		return "none"
	}
	first := spec.Clients[0].Policy.Name()
	for _, c := range spec.Clients[1:] {
		if c.Policy.Name() != first {
			return "mixed"
		}
	}
	return first
}
