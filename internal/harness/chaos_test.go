package harness

import (
	"math"
	"testing"

	"artmem/internal/core"
	"artmem/internal/faultinject"
	"artmem/internal/workloads"
)

// chaosWorkload builds a fresh XSBench instance at test scale. Each run
// needs its own instance (workloads are single-use).
func chaosWorkload(t *testing.T) (workloads.Workload, int64) {
	t.Helper()
	spec, err := workloads.ByName("XSBench")
	if err != nil {
		t.Fatal(err)
	}
	prof := workloads.QuickProfile()
	return spec.New(prof), prof.PageSize()
}

// chaosSchedule is the acceptance-criteria fault mix: 10% transient
// migration failures (with bursts, as busy pages stay busy) plus a
// periodic sampling outage that goes dry for a fifth of every 10ms of
// virtual time.
func chaosSchedule() *faultinject.Config {
	return &faultinject.Config{
		Seed:               99,
		MigrationFailProb:  0.10,
		MigrationBurstMean: 3,
		SampleDropPeriodic: faultinject.Periodic{
			PeriodNs:   10_000_000,
			DurationNs: 2_000_000,
		},
	}
}

func runChaos(t *testing.T, faults *faultinject.Config) (Result, core.FaultStats) {
	t.Helper()
	w, pageSize := chaosWorkload(t)
	pol := core.New(core.Config{Seed: 1})
	res := Run(w, pol, Config{
		PageSize:        pageSize,
		Ratio:           Ratio{Fast: 1, Slow: 4},
		Faults:          faults,
		CheckInvariants: true,
	})
	return res, pol.FaultStats()
}

func TestChaosHitRatioWithinBoundOfFaultFree(t *testing.T) {
	base, _ := runChaos(t, nil)
	faulty, fs := runChaos(t, chaosSchedule())

	if base.InvariantErr != nil {
		t.Fatalf("fault-free run violated invariants: %v", base.InvariantErr)
	}
	if faulty.InvariantErr != nil {
		t.Fatalf("chaos run violated invariants: %v", faulty.InvariantErr)
	}
	// The schedule must actually have injected faults and the policy must
	// actually have absorbed them — otherwise the bound is vacuous.
	if faulty.FaultStats.MigrationFailures == 0 {
		t.Fatal("fault schedule injected no migration failures")
	}
	if faulty.FaultStats.DroppedSamples == 0 {
		t.Fatal("fault schedule dropped no samples")
	}
	if fs.Retries == 0 {
		t.Error("policy recorded no retries under 10% failure rate")
	}
	// Acceptance bound: hit ratio within 15% (relative) of fault-free.
	if base.DRAMRatio <= 0 {
		t.Fatalf("fault-free DRAM ratio %g", base.DRAMRatio)
	}
	rel := math.Abs(faulty.DRAMRatio-base.DRAMRatio) / base.DRAMRatio
	if rel > 0.15 {
		t.Errorf("chaos DRAM ratio %.4f vs fault-free %.4f: %.1f%% apart, want <= 15%%",
			faulty.DRAMRatio, base.DRAMRatio, rel*100)
	}
	t.Logf("fault-free ratio %.4f, chaos ratio %.4f (%.1f%% apart); %d injected failures, %d retries, %d skips, %d degraded ticks",
		base.DRAMRatio, faulty.DRAMRatio, rel*100,
		faulty.FaultStats.MigrationFailures, fs.Retries, fs.SkippedPages, fs.DegradedTicks)
}

func TestChaosTotalMigrationOutageStillTerminates(t *testing.T) {
	// Every migration fails for the whole run: the control loop must
	// finish the workload (skip-and-continue, never abort or spin) with
	// zero migrations and intact accounting.
	res, fs := runChaos(t, &faultinject.Config{
		MigrationOutages: []faultinject.Window{{StartNs: 0, EndNs: math.MaxInt64}},
	})
	if res.InvariantErr != nil {
		t.Fatalf("invariants: %v", res.InvariantErr)
	}
	if res.Migrations != 0 {
		t.Errorf("%d migrations during a total outage", res.Migrations)
	}
	if res.Ticks == 0 {
		t.Error("control loop stopped ticking under the outage")
	}
	if fs.SkippedPages == 0 {
		t.Error("no skips recorded during a total outage")
	}
}

func TestChaosHeavyMixedFaults(t *testing.T) {
	// Heavier-than-acceptance mix: bursty migration failures, periodic
	// sampling outages, ring overflow, and 4x bandwidth degradation, all
	// at once. The run must stay consistent; performance may suffer.
	res, _ := runChaos(t, &faultinject.Config{
		Seed:               5,
		MigrationFailProb:  0.35,
		MigrationBurstMean: 6,
		SampleDropPeriodic: faultinject.Periodic{PeriodNs: 5_000_000, DurationNs: 2_500_000},
		RingOverflowWindows: []faultinject.Window{
			{StartNs: 20_000_000, EndNs: 40_000_000},
		},
		BandwidthDegradeFactor: 4,
		BandwidthDegradePeriodic: faultinject.Periodic{
			PeriodNs: 8_000_000, DurationNs: 4_000_000,
		},
	})
	if res.InvariantErr != nil {
		t.Fatalf("invariants under heavy faults: %v", res.InvariantErr)
	}
	if res.FaultStats.MigrationFailures == 0 || res.FaultStats.DroppedSamples == 0 {
		t.Errorf("heavy schedule was inert: %+v", res.FaultStats)
	}
	if res.DRAMRatio < 0 || res.DRAMRatio > 1 {
		t.Errorf("DRAM ratio %g out of range", res.DRAMRatio)
	}
}

func TestChaosDeterministicReplay(t *testing.T) {
	// Chaos runs are reproducible: identical workload, policy, and fault
	// schedule produce bit-identical results.
	a, _ := runChaos(t, chaosSchedule())
	b, _ := runChaos(t, chaosSchedule())
	if a.ExecNs != b.ExecNs || a.DRAMRatio != b.DRAMRatio ||
		a.Migrations != b.Migrations || a.FaultStats != b.FaultStats {
		t.Errorf("chaos replay diverged:\n a: exec=%d ratio=%g mig=%d faults=%+v\n b: exec=%d ratio=%g mig=%d faults=%+v",
			a.ExecNs, a.DRAMRatio, a.Migrations, a.FaultStats,
			b.ExecNs, b.DRAMRatio, b.Migrations, b.FaultStats)
	}
}

func TestChaosSamplingOutageDegradesAndRecovers(t *testing.T) {
	// A long total sampling blackout in the middle of the run: the agent
	// must enter degraded mode during the blackout and re-engage RL
	// afterwards, ending the run out of degraded mode.
	w, pageSize := chaosWorkload(t)
	// The quick-profile run spans ~8 decision periods (10ms each), so use
	// a low degradation threshold and a mid-run blackout covering ~4
	// periods with live samples on both sides.
	pol := core.New(core.Config{Seed: 1, DegradeAfter: 2})
	res := Run(w, pol, Config{
		PageSize: pageSize,
		Ratio:    Ratio{Fast: 1, Slow: 4},
		Faults: &faultinject.Config{
			SampleDropWindows: []faultinject.Window{
				{StartNs: 20_000_000, EndNs: 60_000_000},
			},
		},
		CheckInvariants: true,
	})
	if res.InvariantErr != nil {
		t.Fatalf("invariants: %v", res.InvariantErr)
	}
	fs := pol.FaultStats()
	if fs.DegradedEntries == 0 {
		t.Error("sampling blackout never tripped degraded mode")
	}
	if fs.DegradedTicks == 0 {
		t.Error("no degraded ticks recorded")
	}
	if pol.Degraded() {
		t.Error("agent still degraded after samples returned")
	}
}
