// Package harness drives complete simulations: it sizes a machine from a
// workload's footprint and a DRAM:PM ratio, attaches a tiering policy,
// replays the workload's access trace, and fires the policy's periodic
// tick on the virtual clock. The Result captures everything the paper's
// evaluation reports: simulated execution time, DRAM access ratio,
// migration counts and volume, fault counts, background CPU overhead,
// and (optionally) migration/ratio time series for the
// behaviour-over-time figures (12, 17).
package harness

import (
	"fmt"

	"artmem/internal/faultinject"
	"artmem/internal/memsim"
	"artmem/internal/policies"
	"artmem/internal/stats"
	"artmem/internal/workloads"
)

// Ratio is a DRAM:PM capacity ratio, e.g. {1, 4} for 1:4. The paper
// splits each workload's footprint across the tiers in this proportion
// (§6.1: "we set the memory ratios to 2:1, 1:1, 1:2, 1:4, 1:8, 1:16").
type Ratio struct {
	Fast int
	Slow int
}

// String formats the ratio as "1:4".
func (r Ratio) String() string { return fmt.Sprintf("%d:%d", r.Fast, r.Slow) }

// FastBytes returns the fast-tier size for a footprint split at this
// ratio.
func (r Ratio) FastBytes(footprint int64) int64 {
	return footprint * int64(r.Fast) / int64(r.Fast+r.Slow)
}

// PaperRatios are the six configurations of Figure 7.
var PaperRatios = []Ratio{{Fast: 2, Slow: 1}, {Fast: 1, Slow: 1}, {Fast: 1, Slow: 2}, {Fast: 1, Slow: 4}, {Fast: 1, Slow: 8}, {Fast: 1, Slow: 16}}

// Config parameterizes one simulation run.
type Config struct {
	// PageSize is the migration granularity; 0 uses the profile default
	// from the workload scale (the caller passes it explicitly).
	PageSize int64
	// Ratio splits the footprint between the tiers.
	Ratio Ratio
	// SlowLatencyNs, when non-zero, overrides the slow tier's latency
	// (the relative-latency sensitivity study, Figure 16b).
	SlowLatencyNs float64
	// SlowBWGBs, when non-zero, overrides the slow tier's bandwidth.
	SlowBWGBs float64
	// CacheLines overrides the CPU cache model size; 0 keeps the
	// default, negative disables the cache.
	CacheLines int
	// FastHeadroom reserves extra fast-tier pages beyond the ratio split
	// (some experiments give the fast tier slack); expressed in pages.
	FastHeadroom int
	// CollectSeries enables migration/ratio time-series capture.
	CollectSeries bool
	// Faults, when non-nil, installs a deterministic fault injector on
	// the machine before the policy attaches: chaos runs replay the same
	// workload under injected migration failures, sampling outages, and
	// bandwidth degradation (see internal/faultinject).
	Faults *faultinject.Config
	// CheckInvariants verifies the machine's page accounting after every
	// policy tick and at the end of the run; the first violation is
	// reported in Result.InvariantErr. O(pages) per tick — meant for
	// tests and chaos runs, not benchmarking.
	CheckInvariants bool
	// Shards selects the machine build: 0 replays on a plain
	// memsim.Machine (the seed path), >= 1 on a memsim.ShardedMachine
	// with that many shards, the policy attached through its Env
	// surface (the policy must implement policies.EnvPolicy — every
	// shipped policy does). Shards == 1 is the determinism control:
	// the one-shard machine delegates verbatim, so its results are
	// byte-identical to the plain path (the shardscale experiment pins
	// this). Replay stays single-threaded and on the virtual clock, so
	// sharded runs cache and parallelize like any other cell.
	Shards int
	// TierChain, when non-empty, selects an N-tier chain machine built
	// from the spec (internal/tier.ParseChain; e.g.
	// "DRAM:cap=12.5%/CXL:cap=25%/PM") and is consumed by RunTiered —
	// percentage capacities resolve against the workload footprint, and
	// Ratio is ignored. Run panics if it is set: chain replays need one
	// policy agent per boundary, which only RunTiered can construct.
	TierChain string
	// NonExclusive enables Nomad-style shadow copies on the chain: a
	// promotion leaves a reclaimable clean copy in the source tier, so
	// demoting an unwritten page back is a free discard.
	NonExclusive bool
	// BoundaryBudget caps migrations per tier boundary per policy tick
	// on chain runs; 0 leaves boundaries unmetered.
	BoundaryBudget int
}

// Result is the outcome of one run.
type Result struct {
	Workload string
	Policy   string
	Ratio    Ratio

	// ExecNs is the simulated application execution time — the paper's
	// headline metric.
	ExecNs int64
	// Accesses is the number of trace accesses replayed; Misses the
	// subset that reached memory (did not hit the CPU cache).
	Accesses int64
	Misses   uint64
	// DRAMRatio is the exact fast-tier share of memory accesses (the
	// "perf"-measured ratio of §3.2).
	DRAMRatio float64
	// Migration activity.
	Migrations    uint64
	Promotions    uint64
	Demotions     uint64
	MigratedBytes uint64
	// Faults counts NUMA-hint faults taken (fault-driven policies).
	Faults uint64
	// BackgroundNs is virtual CPU time spent off the critical path
	// (sampling, scanning, RL computation, overlapped migration copy).
	BackgroundNs float64
	// Ticks is the number of policy periods that fired.
	Ticks int
	// MigrationFailures counts transiently failed MovePage attempts
	// (non-zero only under fault injection).
	MigrationFailures uint64
	// FaultStats snapshots the injector's counters when Config.Faults
	// was set; zero otherwise.
	FaultStats faultinject.Stats
	// InvariantErr is the first page-accounting violation detected when
	// Config.CheckInvariants was set; nil when the invariants held.
	InvariantErr error

	// Tenants holds per-tenant results when the run was multi-tenant
	// (RunTenants); nil for single-tenant runs. ArbiterRebalances
	// counts dynamic quota rebalances the arbiter executed.
	Tenants           []TenantResult
	ArbiterRebalances uint64

	// Churn holds the lifecycle aggregates of a RunChurn run; nil
	// otherwise. Lives on Result so churn outcomes flow through the
	// sched run cache like every other cell output.
	Churn *ChurnStats

	// Stages holds the aggregated span-journal stage attribution when
	// the run drove the serving frontend with span recording (the
	// latency experiment); nil otherwise.
	Stages *StageStats

	// Tiers holds the per-tier and per-boundary outcome of an N-tier
	// chain run (RunTiered); nil for two-tier runs.
	Tiers *TierStats

	// MigrationSeries (pages migrated per tick) and RatioSeries
	// (windowed DRAM access ratio per tick), when collected.
	MigrationSeries stats.Series
	RatioSeries     stats.Series
}

// BandwidthGBps returns the achieved memory bandwidth implied by the
// run: 64 bytes per miss over the execution time.
func (r Result) BandwidthGBps() float64 {
	if r.ExecNs == 0 {
		return 0
	}
	return float64(r.Misses) * 64 / float64(r.ExecNs)
}

// OverheadFraction returns background CPU time relative to execution
// time (the §6.4 overhead metric).
func (r Result) OverheadFraction() float64 {
	if r.ExecNs == 0 {
		return 0
	}
	return r.BackgroundNs / float64(r.ExecNs)
}

// Canonical returns a deterministic string encoding of the Config,
// suitable for hashing into a run-cache key (internal/sched). The
// Faults pointer is flattened to its pointee so two configs with
// distinct but equal injector configurations encode identically. The
// encoding deliberately goes through %+v of the whole struct: a field
// added to Config (or to faultinject.Config) changes every key, so the
// cache can never conflate runs across a schema change.
func (c Config) Canonical() string {
	faults := "nil"
	if c.Faults != nil {
		faults = fmt.Sprintf("%+v", *c.Faults)
	}
	flat := c
	flat.Faults = nil
	return fmt.Sprintf("%+v|faults=%s", flat, faults)
}

// Run replays workload w under policy pol and returns the Result. It
// closes the workload before returning.
//
// Purity contract: Run is a pure function of its inputs' identities.
// Workload constructors are deterministic in (spec name, Profile),
// policies are deterministic in their construction parameters
// (including pretrained Q-tables and seeds), and the simulation
// advances on a virtual clock with no wall-clock, goroutine-ordering,
// or map-iteration dependence — so one (workload identity, policy
// identity, Config) triple always yields the same Result, bit for bit.
// The cell scheduler relies on this contract twice over: memoized
// results may substitute for recomputation (internal/sched's cache),
// and any worker interleaving must produce identical tables. Code that
// breaks the contract (a policy reading wall time, a workload sharing
// mutable state across constructions) breaks caching, not just
// parallel runs; internal/exp's determinism test guards it.
func Run(w workloads.Workload, pol policies.Policy, cfg Config) Result {
	defer w.Close()
	if cfg.TierChain != "" {
		panic("harness: Config.TierChain requires RunTiered (one agent per boundary)")
	}
	m, inj, cfg := buildRunMachine(w.FootprintBytes(), pol, cfg)

	interval := pol.Interval()
	if interval <= 0 {
		interval = policies.DefaultTickInterval
	}
	res := Result{Workload: w.Name(), Policy: pol.Name(), Ratio: cfg.Ratio}
	nextTick := interval
	var prevMig uint64
	var prevFast, prevSlow uint64

	for {
		batch, ok := w.Next()
		if !ok {
			break
		}
		for _, acc := range batch {
			m.Access(acc.Addr, acc.Write)
			if m.Now() >= nextTick {
				pol.Tick(m.Now())
				res.Ticks++
				nextTick = m.Now() + interval
				if cfg.CheckInvariants && res.InvariantErr == nil {
					res.InvariantErr = m.CheckInvariants()
				}
				if cfg.CollectSeries {
					c := m.Counters()
					res.MigrationSeries.Append(m.Now(), float64(c.Migrations-prevMig))
					prevMig = c.Migrations
					df := c.FastAccesses - prevFast
					ds := c.SlowAccesses - prevSlow
					prevFast, prevSlow = c.FastAccesses, c.SlowAccesses
					if df+ds > 0 {
						res.RatioSeries.Append(m.Now(), float64(df)/float64(df+ds))
					}
				}
			}
		}
		res.Accesses += int64(len(batch))
	}

	c := m.Counters()
	res.ExecNs = m.Now()
	res.Misses = c.FastAccesses + c.SlowAccesses
	res.DRAMRatio = c.DRAMRatio()
	res.Migrations = c.Migrations
	res.Promotions = c.Promotions
	res.Demotions = c.Demotions
	res.MigratedBytes = c.MigratedBytes
	res.Faults = c.Faults
	res.MigrationFailures = c.MigrationFailures
	res.BackgroundNs = m.BackgroundNs()
	if inj != nil {
		res.FaultStats = inj.Stats()
	}
	if cfg.CheckInvariants && res.InvariantErr == nil {
		res.InvariantErr = m.CheckInvariants()
	}
	return res
}

// runMachine is the machine surface Run replays against: the policy's
// Env plus the replay-side methods Env deliberately omits. Both
// *memsim.Machine and *memsim.ShardedMachine satisfy it.
type runMachine interface {
	memsim.Env
	Access(addr uint64, write bool)
	BackgroundNs() float64
	CheckInvariants() error
}

// buildRunMachine builds the replay machine per Config.Shards and
// attaches the policy: the plain Machine via Attach when Shards == 0,
// a ShardedMachine via the policy's Env surface otherwise.
func buildRunMachine(foot int64, pol policies.Policy, cfg Config) (runMachine, *faultinject.Injector, Config) {
	if cfg.Shards <= 0 {
		m, inj, cfg := buildMachine(foot, cfg)
		pol.Attach(m)
		return m, inj, cfg
	}
	ep, ok := pol.(policies.EnvPolicy)
	if !ok {
		panic(fmt.Sprintf("harness: policy %s cannot attach to a sharded machine (no EnvPolicy surface)", pol.Name()))
	}
	mcfg, cfg := machineConfig(foot, cfg)
	sm := memsim.NewShardedMachine(mcfg, cfg.Shards)
	var inj *faultinject.Injector
	if cfg.Faults != nil {
		inj = faultinject.New(*cfg.Faults)
		sm.SetFaultInjector(inj)
	}
	ep.AttachEnv(sm)
	return sm, inj, cfg
}

// buildMachine sizes a machine from a footprint and the run Config,
// applying defaults, tier overrides, and the optional fault injector.
// It returns the normalized Config so callers share one view of the
// applied defaults.
func buildMachine(foot int64, cfg Config) (*memsim.Machine, *faultinject.Injector, Config) {
	mcfg, cfg := machineConfig(foot, cfg)
	m := memsim.NewMachine(mcfg)
	var inj *faultinject.Injector
	if cfg.Faults != nil {
		inj = faultinject.New(*cfg.Faults)
		m.SetFaultInjector(inj)
	}
	return m, inj, cfg
}

// machineConfig normalizes the run Config and derives the memsim
// configuration shared by the plain and sharded builds.
func machineConfig(foot int64, cfg Config) (memsim.Config, Config) {
	if cfg.PageSize <= 0 {
		cfg.PageSize = 2 << 20
	}
	if cfg.Ratio.Fast == 0 && cfg.Ratio.Slow == 0 {
		cfg.Ratio = Ratio{1, 1}
	}
	fastBytes := cfg.Ratio.FastBytes(foot)
	mcfg := memsim.DefaultConfig(foot, fastBytes, cfg.PageSize)
	mcfg.Fast.CapacityPages += cfg.FastHeadroom
	if mcfg.Fast.CapacityPages < 1 {
		mcfg.Fast.CapacityPages = 1
	}
	if cfg.SlowLatencyNs > 0 {
		mcfg.Slow.LatencyNs = cfg.SlowLatencyNs
	}
	if cfg.SlowBWGBs > 0 {
		mcfg.Slow.ReadBWGBs = cfg.SlowBWGBs
		mcfg.Slow.WriteBWGBs = cfg.SlowBWGBs / 3
	}
	if cfg.CacheLines > 0 {
		mcfg.CacheLines = cfg.CacheLines
	} else if cfg.CacheLines < 0 {
		mcfg.CacheLines = 0
	}
	return mcfg, cfg
}
