package harness

import (
	"strings"

	"artmem/internal/memsim"
	"artmem/internal/policies"
	"artmem/internal/tenancy"
	"artmem/internal/workloads"
)

// TenantSpec describes one tenant of a multi-tenant run: its workload,
// its policy (attached to a tenant-scoped view, so per-tenant ArtMem
// agents and per-tenant baselines both work), and its arbiter weight.
type TenantSpec struct {
	// Name labels the tenant; "" uses the workload name.
	Name string
	// Weight is the tenant's fast-tier and bandwidth share; 0 means 1.
	Weight int
	// Workload is the tenant's access trace; RunTenants closes it.
	Workload workloads.Workload
	// Policy manages the tenant's pages. Any EnvPolicy works:
	// core.ArtMem and every baseline in internal/policies.
	Policy policies.EnvPolicy
}

// TenantResult is one tenant's slice of a multi-tenant Result.
type TenantResult struct {
	Name   string
	Weight int
	// Accesses is the tenant's replayed trace length; FastAccesses and
	// SlowAccesses its cache-missing splits, and HitRatio the
	// fast-tier share (the per-tenant DRAM access ratio).
	Accesses     int64
	FastAccesses uint64
	SlowAccesses uint64
	HitRatio     float64
	// AppNs is application time charged while the tenant ran; the
	// tenant's throughput is Accesses/AppNs.
	AppNs float64
	// FastPages is the tenant's final fast-tier residency; QuotaPages
	// its final arbiter quota (0 = unlimited).
	FastPages  int
	QuotaPages int
	// Migration activity and admission-control denials.
	Promotions       uint64
	Demotions        uint64
	AdmissionDenials uint64

	// Churn-run fields (RunChurn); zero-valued for RunTenants rows.
	// Class is the SLO class name ("batch"/"latency"); Completed is
	// false when the tenant crashed before finishing its trace; P99Ns is
	// the tenant's reconstructed 99th-percentile access cost;
	// Preemptions counts batch-pool budget the tenant preempted.
	Class       string
	Completed   bool
	Crashed     bool
	P99Ns       float64
	Preemptions uint64
}

// Throughput returns the tenant's accesses per microsecond of
// application time; 0 when no time was charged.
func (t TenantResult) Throughput() float64 {
	if t.AppNs == 0 {
		return 0
	}
	return float64(t.Accesses) * 1e3 / t.AppNs
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) over the
// values, in (0,1]; 1 is perfectly fair. Degenerate all-zero input
// reports 1.
func JainIndex(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// RunTenants replays N tenant workloads concurrently on one machine
// under the tenancy control plane and returns a Result whose Tenants
// field carries the per-tenant breakdown. Concurrency is simulated the
// way workloads.Mixed does — round-robin batch interleaving with each
// tenant's addresses offset into its own region — but every tenant
// keeps its own identity: the machine charges accesses to the current
// tenant, first touch assigns ownership, and each policy sees only its
// tenant's world through the plane's views.
//
// The run is synchronous and goroutine-free, so it honours the same
// purity contract as Run: identical (specs identities, arbiter config,
// Config) always yield the identical Result, bit for bit, which is
// what lets the fairness experiment run through the sched cell grid.
func RunTenants(specs []TenantSpec, acfg tenancy.ArbiterConfig, cfg Config) Result {
	if len(specs) == 0 {
		panic("harness: RunTenants needs at least one tenant")
	}
	defer func() {
		for _, s := range specs {
			s.Workload.Close()
		}
	}()

	var foot int64
	offsets := make([]uint64, len(specs))
	tenants := make([]tenancy.Tenant, len(specs))
	for i, s := range specs {
		offsets[i] = uint64(foot)
		foot += s.Workload.FootprintBytes()
		name := s.Name
		if name == "" {
			name = s.Workload.Name()
		}
		tenants[i] = tenancy.Tenant{Name: name, Weight: s.Weight}
	}

	m, inj, cfg := buildMachine(foot, cfg)
	plane := tenancy.NewPlane(m, tenants, acfg)
	intervals := make([]int64, len(specs))
	// The control period (arbiter budget refill + rebalance cadence) is
	// the fastest policy interval.
	var ctlInterval int64
	for i, s := range specs {
		s.Policy.AttachEnv(plane.View(i))
		intervals[i] = s.Policy.Interval()
		if intervals[i] <= 0 {
			intervals[i] = policies.DefaultTickInterval
		}
		if ctlInterval == 0 || intervals[i] < ctlInterval {
			ctlInterval = intervals[i]
		}
	}

	res := Result{
		Workload: tenantNames(tenants),
		Policy:   tenantPolicyName(specs),
		Ratio:    cfg.Ratio,
	}
	next := make([]int64, len(specs))
	for i := range next {
		next[i] = intervals[i]
	}
	nextCtl := ctlInterval
	perTenantAccesses := make([]int64, len(specs))
	var prevMig uint64
	var prevFast, prevSlow uint64

	done := make([]bool, len(specs))
	live := len(specs)
	turn := 0
	for live > 0 {
		i := turn
		turn = (turn + 1) % len(specs)
		if done[i] {
			continue
		}
		batch, ok := specs[i].Workload.Next()
		if !ok {
			done[i] = true
			live--
			continue
		}
		m.SetCurrentTenant(memsim.TenantID(i))
		off := offsets[i]
		for _, acc := range batch {
			m.Access(acc.Addr+off, acc.Write)
			if m.Now() >= nextCtl {
				now := m.Now()
				plane.BeginPeriod()
				for j := range specs {
					if now >= next[j] {
						specs[j].Policy.Tick(now)
						res.Ticks++
						next[j] = now + intervals[j]
					}
				}
				nextCtl = now + ctlInterval
				if cfg.CheckInvariants && res.InvariantErr == nil {
					res.InvariantErr = m.CheckInvariants()
				}
				if cfg.CollectSeries {
					c := m.Counters()
					res.MigrationSeries.Append(now, float64(c.Migrations-prevMig))
					prevMig = c.Migrations
					df := c.FastAccesses - prevFast
					ds := c.SlowAccesses - prevSlow
					prevFast, prevSlow = c.FastAccesses, c.SlowAccesses
					if df+ds > 0 {
						res.RatioSeries.Append(now, float64(df)/float64(df+ds))
					}
				}
			}
		}
		res.Accesses += int64(len(batch))
		perTenantAccesses[i] += int64(len(batch))
	}

	c := m.Counters()
	res.ExecNs = m.Now()
	res.Misses = c.FastAccesses + c.SlowAccesses
	res.DRAMRatio = c.DRAMRatio()
	res.Migrations = c.Migrations
	res.Promotions = c.Promotions
	res.Demotions = c.Demotions
	res.MigratedBytes = c.MigratedBytes
	res.Faults = c.Faults
	res.MigrationFailures = c.MigrationFailures
	res.BackgroundNs = m.BackgroundNs()
	if inj != nil {
		res.FaultStats = inj.Stats()
	}
	if cfg.CheckInvariants && res.InvariantErr == nil {
		res.InvariantErr = m.CheckInvariants()
	}

	arb := plane.Arbiter()
	res.ArbiterRebalances = arb.Rebalances()
	res.Tenants = make([]TenantResult, len(specs))
	for i := range specs {
		tc := m.TenantCounters(memsim.TenantID(i))
		res.Tenants[i] = TenantResult{
			Name:             tenants[i].Name,
			Weight:           tenants[i].Weight,
			Accesses:         perTenantAccesses[i],
			FastAccesses:     tc.FastAccesses,
			SlowAccesses:     tc.SlowAccesses,
			HitRatio:         tc.DRAMRatio(),
			AppNs:            tc.AppNs,
			FastPages:        m.TenantUsedPages(memsim.TenantID(i), memsim.Fast),
			QuotaPages:       arb.Quota(i),
			Promotions:       tc.Promotions,
			Demotions:        tc.Demotions,
			AdmissionDenials: arb.Denials(i),
		}
	}
	return res
}

// tenantNames joins tenant names as "A+B+C".
func tenantNames(ts []tenancy.Tenant) string {
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return strings.Join(names, "+")
}

// tenantPolicyName reports the shared policy name when every tenant
// runs the same policy, or the per-tenant names joined with "+".
func tenantPolicyName(specs []TenantSpec) string {
	first := specs[0].Policy.Name()
	same := true
	for _, s := range specs[1:] {
		if s.Policy.Name() != first {
			same = false
			break
		}
	}
	if same {
		return first
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Policy.Name()
	}
	return strings.Join(names, "+")
}
