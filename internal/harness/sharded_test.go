package harness

import (
	"fmt"
	"testing"

	"artmem/internal/policies"
)

// shardedResultFields canonically encodes a Result for byte-identity
// comparison.
func shardedResultFields(r Result) string {
	return fmt.Sprintf("%+v", r)
}

// TestRunShardsOneIsByteIdenticalToSeed pins the harness-level
// determinism control: Shards == 1 routes through the sharded machine's
// verbatim one-shard delegation and must reproduce the plain-Machine
// run exactly — every counter, the virtual clock, the background time.
func TestRunShardsOneIsByteIdenticalToSeed(t *testing.T) {
	mk := func() policies.Policy { return policies.NewMEMTIS(policies.MEMTISConfig{}) }
	cfg := Config{PageSize: 64 * 1024, Ratio: Ratio{Fast: 1, Slow: 4}}
	seed := Run(smallPattern(300_000), mk(), cfg)
	cfg.Shards = 1
	sharded := Run(smallPattern(300_000), mk(), cfg)
	a, b := shardedResultFields(seed), shardedResultFields(sharded)
	if a != b {
		t.Errorf("one-shard run diverged from seed:\nseed    %+v\nsharded %+v", a, b)
	}
}

// TestRunShardsMultiIsDeterministicAndSound runs the same workload at 4
// shards twice: the runs must agree bit for bit (the cache contract),
// replay every access, and keep the per-shard page accounting intact.
func TestRunShardsMultiIsDeterministicAndSound(t *testing.T) {
	mk := func() policies.Policy { return policies.NewMEMTIS(policies.MEMTISConfig{}) }
	cfg := Config{PageSize: 64 * 1024, Ratio: Ratio{Fast: 1, Slow: 4},
		Shards: 4, CheckInvariants: true}
	r1 := Run(smallPattern(300_000), mk(), cfg)
	r2 := Run(smallPattern(300_000), mk(), cfg)
	if r1.InvariantErr != nil {
		t.Fatalf("invariants violated: %v", r1.InvariantErr)
	}
	if r1.Accesses < 300_000 {
		t.Errorf("replayed %d accesses, want >= 300000", r1.Accesses)
	}
	if shardedResultFields(r1) != shardedResultFields(r2) {
		t.Errorf("4-shard run not deterministic:\nr1 %+v\nr2 %+v",
			shardedResultFields(r1), shardedResultFields(r2))
	}
	if r1.Misses == 0 || r1.ExecNs == 0 {
		t.Errorf("degenerate result: %+v", shardedResultFields(r1))
	}
}
