package harness

import (
	"math"
	"reflect"
	"testing"

	"artmem/internal/core"
	"artmem/internal/faultinject"
	"artmem/internal/policies"
	"artmem/internal/tenancy"
	"artmem/internal/workloads"
)

// tenantSpecs builds a fresh three-tenant mix at test scale: two ArtMem
// agents and one MEMTIS baseline, weights by footprint. Workloads are
// single-use, so every run needs a fresh set.
func tenantSpecs(t *testing.T) ([]TenantSpec, int64) {
	t.Helper()
	prof := workloads.QuickProfile()
	names := []string{"XSBench", "SSSP", "YCSB"}
	specs := make([]TenantSpec, len(names))
	for i, name := range names {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		w := spec.New(prof)
		var pol policies.EnvPolicy
		if i == 2 {
			pol = policies.NewMEMTIS(policies.MEMTISConfig{})
		} else {
			pol = core.New(core.Config{Seed: uint64(i) + 1})
		}
		specs[i] = TenantSpec{
			Name:     name,
			Weight:   int(w.FootprintBytes() / prof.PageSize()),
			Workload: w,
			Policy:   pol,
		}
	}
	return specs, prof.PageSize()
}

func runTenantsOnce(t *testing.T, faults *faultinject.Config) Result {
	t.Helper()
	specs, pageSize := tenantSpecs(t)
	return RunTenants(specs, tenancy.ArbiterConfig{
		Mode:      tenancy.ModeDynamic,
		Admission: true,
	}, Config{
		PageSize:        pageSize,
		Ratio:           Ratio{Fast: 1, Slow: 4},
		Faults:          faults,
		CheckInvariants: true,
	})
}

// TestRunTenantsChaosAccountingInvariants is the tenancy property test:
// under injected migration failures, sampling outages, and bandwidth
// degradation, the per-tenant page accounting must stay consistent with
// the machine totals. CheckInvariants recounts (owner, tier) over all
// allocated pages every control period — any drift between tenant RSS
// and machine occupancy surfaces in Result.InvariantErr.
func TestRunTenantsChaosAccountingInvariants(t *testing.T) {
	res := runTenantsOnce(t, &faultinject.Config{
		Seed:               99,
		MigrationFailProb:  0.10,
		MigrationBurstMean: 3,
		SampleDropPeriodic: faultinject.Periodic{
			PeriodNs:   10_000_000,
			DurationNs: 2_000_000,
		},
	})
	if res.InvariantErr != nil {
		t.Fatalf("tenant accounting drifted under chaos: %v", res.InvariantErr)
	}
	if res.FaultStats.MigrationFailures == 0 {
		t.Fatal("chaos run injected no migration failures (schedule not live)")
	}
	checkTenantSums(t, res)
}

// TestRunTenantsFaultFree covers the same aggregation properties on a
// clean run, plus the per-tenant fields the fairness experiment reads.
func TestRunTenantsFaultFree(t *testing.T) {
	res := runTenantsOnce(t, nil)
	if res.InvariantErr != nil {
		t.Fatalf("invariants: %v", res.InvariantErr)
	}
	checkTenantSums(t, res)
	for _, tr := range res.Tenants {
		if tr.HitRatio < 0 || tr.HitRatio > 1 {
			t.Errorf("%s: hit ratio %v out of range", tr.Name, tr.HitRatio)
		}
		if tr.QuotaPages <= 0 {
			t.Errorf("%s: quota = %d under dynamic arbiter, want > 0", tr.Name, tr.QuotaPages)
		}
		if tr.AppNs <= 0 || tr.Throughput() <= 0 {
			t.Errorf("%s: no application time charged (AppNs=%v)", tr.Name, tr.AppNs)
		}
	}
	if res.Workload != "XSBench+SSSP+YCSB" {
		t.Errorf("Workload = %q", res.Workload)
	}
	if res.Policy != "ArtMem+ArtMem+MEMTIS" {
		t.Errorf("Policy = %q (per-tenant policies should join)", res.Policy)
	}
}

// checkTenantSums verifies the per-tenant slices add up to the
// machine-wide result.
func checkTenantSums(t *testing.T, res Result) {
	t.Helper()
	var acc int64
	var fast, slow, promo, demo uint64
	for _, tr := range res.Tenants {
		acc += tr.Accesses
		fast += tr.FastAccesses
		slow += tr.SlowAccesses
		promo += tr.Promotions
		demo += tr.Demotions
	}
	if acc != res.Accesses {
		t.Errorf("tenant accesses sum to %d, run replayed %d", acc, res.Accesses)
	}
	if fast+slow != res.Misses {
		t.Errorf("tenant misses sum to %d, machine counted %d", fast+slow, res.Misses)
	}
	if promo != res.Promotions || demo != res.Demotions {
		t.Errorf("tenant migrations sum to %d+%d, machine counted %d+%d",
			promo, demo, res.Promotions, res.Demotions)
	}
}

// TestRunTenantsDeterministic pins the purity contract that lets the
// fairness experiment run through the sched cell cache: identical specs
// and config yield the identical Result, field for field.
func TestRunTenantsDeterministic(t *testing.T) {
	a := runTenantsOnce(t, nil)
	b := runTenantsOnce(t, nil)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical multi-tenant runs differ:\n%+v\n%+v", a, b)
	}
}

func TestJainIndex(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{0, 0}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{1, 3}, 0.8},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JainIndex(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}
