package harness

import (
	"fmt"
	"testing"

	"artmem/internal/core"
	"artmem/internal/policies"
	"artmem/internal/workloads"
)

// artmemMk returns a RunTiered agent factory with per-boundary seed
// decorrelation on top of cfg.
func artmemMk(cfg core.Config) func(b int) policies.EnvPolicy {
	return func(b int) policies.EnvPolicy {
		c := cfg
		c.Seed += uint64(b)
		return core.New(c)
	}
}

// TestRunTieredTwoTierMatchesRun pins the compatibility contract at
// the harness level: a two-tier chain carrying the default DRAM/PM
// parameters, replayed through RunTiered's boundary decomposition,
// produces the same Result as the legacy Run path — same virtual time,
// same counters, same policy behaviour, bit for bit.
func TestRunTieredTwoTierMatchesRun(t *testing.T) {
	const pageSize = 64 * 1024
	ratio := Ratio{Fast: 1, Slow: 1}
	legacy := Run(smallPattern(300_000), core.New(core.Config{SamplePeriod: 1}),
		Config{PageSize: pageSize, Ratio: ratio})

	fastPages := ratio.FastBytes(8<<20) / pageSize
	tiered := RunTiered(smallPattern(300_000), artmemMk(core.Config{SamplePeriod: 1}),
		Config{PageSize: pageSize, Ratio: ratio,
			TierChain: fmt.Sprintf("DRAM:cap=%d/PM", fastPages)})

	if tiered.Tiers == nil || len(tiered.Tiers.Names) != 2 {
		t.Fatalf("tiered run missing TierStats: %+v", tiered.Tiers)
	}
	type pinned struct {
		ExecNs        int64
		Accesses      int64
		Misses        uint64
		DRAMRatio     float64
		Migrations    uint64
		Promotions    uint64
		Demotions     uint64
		MigratedBytes uint64
		Faults        uint64
		Ticks         int
		BackgroundNs  float64
	}
	pin := func(r Result) pinned {
		return pinned{r.ExecNs, r.Accesses, r.Misses, r.DRAMRatio, r.Migrations,
			r.Promotions, r.Demotions, r.MigratedBytes, r.Faults, r.Ticks, r.BackgroundNs}
	}
	if got, want := pin(tiered), pin(legacy); got != want {
		t.Errorf("two-tier chain diverged from legacy run:\n got %+v\nwant %+v", got, want)
	}
	if tiered.Tiers.BoundaryPromotions[0] != tiered.Promotions {
		t.Errorf("boundary promotions %d != machine promotions %d",
			tiered.Tiers.BoundaryPromotions[0], tiered.Promotions)
	}
}

// pingPong returns a workload whose hot set alternates between two
// regions each phase, so pages repeatedly heat, cool, and reheat — the
// access pattern where non-exclusive migration pays (demote = free
// discard onto the still-clean shadow).
func pingPong(phases int, accessesPerPhase int64) workloads.Workload {
	const foot = 8 << 20
	pat := &workloads.Pattern{Name: "ping-pong", Footprint: foot}
	for i := 0; i < phases; i++ {
		start := int64(4 << 20)
		if i%2 == 1 {
			start = 6 << 20
		}
		pat.Phases = append(pat.Phases, workloads.Phase{
			Name:     fmt.Sprintf("phase-%d", i),
			Accesses: accessesPerPhase,
			Regions: []workloads.Region{
				{Start: start, Size: 1 << 20, Weight: 0.95},
				{Start: 0, Size: foot, Weight: 0.05},
			},
		})
	}
	return workloads.WithInitSweep(pat.NewWorkload(1), 0)
}

// TestNonExclusiveAvoidsReMigration pins the tentpole's payoff (ISSUE
// 10 acceptance): on a ping-pong workload, non-exclusive mode completes
// a measurable share of demotions as free shadow discards and moves
// strictly fewer bytes than exclusive mode on the identical replay.
func TestNonExclusiveAvoidsReMigration(t *testing.T) {
	cfg := Config{PageSize: 64 * 1024, TierChain: "DRAM:cap=48/PM",
		CacheLines: -1, CheckInvariants: true}
	mk := artmemMk(core.Config{SamplePeriod: 1})

	excl := RunTiered(pingPong(8, 150_000), mk, cfg)
	necfg := cfg
	necfg.NonExclusive = true
	nonx := RunTiered(pingPong(8, 150_000), mk, necfg)

	if excl.InvariantErr != nil || nonx.InvariantErr != nil {
		t.Fatalf("invariants: excl=%v nonx=%v", excl.InvariantErr, nonx.InvariantErr)
	}
	if excl.Tiers.ShadowDiscards != 0 {
		t.Fatalf("exclusive run reported %d shadow discards", excl.Tiers.ShadowDiscards)
	}
	if nonx.Tiers.ShadowDiscards == 0 {
		t.Fatalf("non-exclusive run never discarded onto a shadow (demotions=%d)",
			nonx.Demotions)
	}
	if nonx.MigratedBytes >= excl.MigratedBytes {
		t.Errorf("non-exclusive moved %d bytes, exclusive %d — shadows saved nothing",
			nonx.MigratedBytes, excl.MigratedBytes)
	}
}

// TestRunTieredThreeTier smoke-tests a full 3-tier replay with budgets
// and invariant checking: the middle tier participates (it serves
// accesses and both boundaries migrate) and accounting stays clean.
func TestRunTieredThreeTier(t *testing.T) {
	cfg := Config{PageSize: 64 * 1024,
		TierChain:       "DRAM:cap=12.5%/CXL:cap=25%/PM",
		BoundaryBudget:  64,
		CacheLines:      -1,
		CheckInvariants: true}
	r := RunTiered(smallPattern(400_000), artmemMk(core.Config{SamplePeriod: 1}), cfg)
	if r.InvariantErr != nil {
		t.Fatalf("invariants: %v", r.InvariantErr)
	}
	ts := r.Tiers
	if ts == nil || len(ts.Names) != 3 {
		t.Fatalf("TierStats: %+v", ts)
	}
	if ts.Names[1] != "CXL" {
		t.Fatalf("tier names %v", ts.Names)
	}
	var acc uint64
	for _, a := range ts.Accesses {
		acc += a
	}
	if acc != r.Misses {
		t.Errorf("per-tier accesses sum %d != misses %d", acc, r.Misses)
	}
	if ts.Accesses[1] == 0 {
		t.Errorf("middle tier served no accesses")
	}
	if ts.BoundaryPromotions[1]+ts.BoundaryDemotions[1] == 0 {
		t.Errorf("lower boundary never migrated")
	}
	if r.Promotions != ts.BoundaryPromotions[0]+ts.BoundaryPromotions[1] {
		t.Errorf("promotion attribution mismatch: %d != %v", r.Promotions, ts.BoundaryPromotions)
	}
}

// TestRunRejectsTierChain pins the guard: the legacy Run path refuses
// chain configs instead of silently ignoring them.
func TestRunRejectsTierChain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted a TierChain config")
		}
	}()
	Run(smallPattern(1000), policies.NewStatic(), Config{
		PageSize: 64 * 1024, TierChain: "DRAM:cap=4/PM"})
}

// TestRunTieredDeterministic pins the purity contract for chain runs:
// identical inputs yield identical Results, the property the sched
// cache and parallel experiment replay rest on.
func TestRunTieredDeterministic(t *testing.T) {
	cfg := Config{PageSize: 64 * 1024, CacheLines: -1,
		TierChain: "DRAM:cap=12.5%/CXL:cap=25%/PM", NonExclusive: true}
	mk := artmemMk(core.Config{SamplePeriod: 1})
	a := RunTiered(pingPong(4, 100_000), mk, cfg)
	b := RunTiered(pingPong(4, 100_000), mk, cfg)
	if a.ExecNs != b.ExecNs || a.Migrations != b.Migrations ||
		a.MigratedBytes != b.MigratedBytes || a.DRAMRatio != b.DRAMRatio ||
		a.Tiers.ShadowDiscards != b.Tiers.ShadowDiscards {
		t.Errorf("chain replay not deterministic:\n a %+v\n b %+v", a, b)
	}
}
