package harness

import (
	"fmt"
	"reflect"
	"testing"

	"artmem/internal/core"
	"artmem/internal/dist"
	"artmem/internal/faultinject"
	"artmem/internal/memsim"
	"artmem/internal/policies"
	"artmem/internal/tenancy"
	"artmem/internal/workloads"
)

// testChurnSpec builds a fresh churn schedule at test scale: `clients`
// short-lived skewed clients (every third one latency-class, every
// fourth an ArtMem agent, the rest MEMTIS) cycling through a 6-slot
// plane against a shifting-hotspot antagonist. Workloads are
// single-use, so every run needs a fresh spec.
func testChurnSpec(clients int) ChurnSpec {
	const slotPages = 32
	const pageSize = 4096
	spec := ChurnSpec{
		Capacity:  6,
		SlotBytes: slotPages * pageSize,
		PeriodNs:  100_000,
	}
	// Short policy intervals: a churn client lives ~100k virtual ns, so
	// the default 10ms tick would never fire during its lifetime.
	const tick = 20_000
	for i := 0; i < clients; i++ {
		var pol policies.EnvPolicy
		if i%4 == 0 {
			pol = core.New(core.Config{Seed: uint64(i) + 1, SamplePeriod: 4, TickInterval: tick})
		} else {
			pol = policies.NewMEMTIS(policies.MEMTISConfig{TickInterval: tick})
		}
		class := tenancy.ClassBatch
		if i%3 == 0 {
			class = tenancy.ClassLatency
		}
		spec.Clients = append(spec.Clients, ChurnClient{
			Name:     fmt.Sprintf("client%d", i),
			Class:    class,
			Workload: workloads.NewChurnClient(fmt.Sprintf("client%d", i), 24*pageSize, 12_000, uint64(i)+7),
			Policy:   pol,
		})
	}
	spec.Antagonist = &ChurnClient{
		Name:     "antagonist",
		Weight:   2,
		Workload: workloads.NewChurnAntagonist(slotPages*pageSize, 200_000, 3),
		Policy:   policies.NewMEMTIS(policies.MEMTISConfig{TickInterval: tick}),
	}
	return spec
}

func churnArbiter() tenancy.ArbiterConfig {
	return tenancy.ArbiterConfig{
		Mode:                    tenancy.ModeStatic,
		Admission:               true,
		BandwidthPagesPerPeriod: 24,
		MaxArrivalsPerPeriod:    2,
	}
}

func churnFaults() *faultinject.Config {
	return &faultinject.Config{
		Seed:                 10,
		TenantCrashProb:      0.15,
		ReclaimInterruptProb: 0.02, // per reclaimed page; higher never commits
		ArrivalBurstProb:     0.2,
		ArrivalBurstMax:      3,
	}
}

// TestChaosChurnLifecycleInvariants is the headline chaos test: tenants
// arrive in bursts, die mid-period, and have their reclamations
// interrupted, while the machine's page accounting, the per-tenant RSS
// sum, and the arbiter's quota sum are re-verified after every
// lifecycle event.
func TestChaosChurnLifecycleInvariants(t *testing.T) {
	res := RunChurn(testChurnSpec(30), churnArbiter(), Config{
		PageSize:        4096,
		Ratio:           Ratio{Fast: 1, Slow: 4},
		Faults:          churnFaults(),
		CheckInvariants: true,
	})
	if res.InvariantErr != nil {
		t.Fatalf("invariant violated under churn chaos: %v", res.InvariantErr)
	}
	c := res.Churn
	if c == nil {
		t.Fatal("no churn stats")
	}
	if c.Completed+c.Crashed+c.Unadmitted != c.Clients {
		t.Fatalf("client ledger does not balance: %+v", c)
	}
	if c.Crashed == 0 {
		t.Error("no injected crashes fired; raise TenantCrashProb")
	}
	if c.ReclaimRollbacks == 0 {
		t.Error("no reclamation rollbacks; raise ReclaimInterruptProb")
	}
	if res.FaultStats.TenantCrashes == 0 || res.FaultStats.ReclaimInterrupts == 0 {
		t.Errorf("injector stats did not count churn faults: %+v", res.FaultStats)
	}
	if c.UnresolvedDrains != 0 {
		t.Errorf("%d drains never committed despite probabilistic faults", c.UnresolvedDrains)
	}
	if c.PeakActive > c.Capacity {
		t.Errorf("peak active %d exceeds capacity %d", c.PeakActive, c.Capacity)
	}
	// Every admitted client produced a snapshot row with accesses.
	rows := 0
	for _, tr := range res.Tenants[1:] { // row 0 is the antagonist
		if tr.Accesses > 0 {
			rows++
		}
	}
	if rows != c.Completed+c.Crashed {
		t.Errorf("%d rows with traffic, want %d", rows, c.Completed+c.Crashed)
	}
}

// TestChaosChurnDeterministic pins the purity contract: the same spec
// identities and fault seed yield a bit-identical Result, which is what
// lets churn cells memoize and parallelize through the sched grid.
func TestChaosChurnDeterministic(t *testing.T) {
	run := func() Result {
		return RunChurn(testChurnSpec(16), churnArbiter(), Config{
			PageSize:        4096,
			Ratio:           Ratio{Fast: 1, Slow: 4},
			Faults:          churnFaults(),
			CheckInvariants: true,
		})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("churn run is not deterministic:\n a=%+v\n b=%+v", a.Churn, b.Churn)
	}
}

// TestChaosChurnPermanentReclaimFault wedges every reclamation
// transaction forever (a window covering all of time) and checks the
// run still terminates, with the wedged slots reported as unresolved
// drains and the accounting intact — rollback after rollback, nothing
// leaks.
func TestChaosChurnPermanentReclaimFault(t *testing.T) {
	res := RunChurn(testChurnSpec(8), churnArbiter(), Config{
		PageSize: 4096,
		Ratio:    Ratio{Fast: 1, Slow: 4},
		Faults: &faultinject.Config{
			Seed:                    11,
			ReclaimInterruptWindows: []faultinject.Window{{StartNs: 0, EndNs: 1 << 62}},
		},
		CheckInvariants: true,
	})
	if res.InvariantErr != nil {
		t.Fatalf("invariant violated: %v", res.InvariantErr)
	}
	if res.Churn.UnresolvedDrains == 0 {
		t.Error("expected wedged drains under a permanent reclamation fault")
	}
	if res.Churn.ReclaimRollbacks == 0 {
		t.Error("expected rollbacks under a permanent reclamation fault")
	}
}

// TestChaosChurnRandomizedPlaneSchedule is the churn-accounting
// property test, one level below RunChurn: a seeded random schedule of
// register / touch / deregister / crash / retry events runs directly
// against a Plane, and after every event the per-tenant RSS must sum to
// the machine RSS and CheckInvariants must pass.
func TestChaosChurnRandomizedPlaneSchedule(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const pages, fastPages, cap = 96, 24, 5
			mcfg := memsim.DefaultConfig(pages*4096, fastPages*4096, 4096)
			mcfg.CacheLines = 0
			m := memsim.NewMachine(mcfg)
			inj := faultinject.New(faultinject.Config{
				Seed:                 seed,
				ReclaimInterruptProb: 0.3,
			})
			m.SetFaultInjector(inj)
			p := tenancy.NewDynamicPlane(m, cap, tenancy.ArbiterConfig{
				Mode: tenancy.ModeStatic, Admission: true, BandwidthPagesPerPeriod: 8,
			})
			rng := dist.NewRNG(seed ^ 0xfeed)

			check := func(event string) {
				t.Helper()
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("after %s: %v", event, err)
				}
				sum := 0
				for i := 0; i < cap; i++ {
					sum += m.TenantUsedPages(memsim.TenantID(i), memsim.Fast) +
						m.TenantUsedPages(memsim.TenantID(i), memsim.Slow)
				}
				if total := m.UsedPages(memsim.Fast) + m.UsedPages(memsim.Slow); sum != total {
					t.Fatalf("after %s: tenant RSS sum %d != machine RSS %d", event, sum, total)
				}
			}

			reg := 0
			for step := 0; step < 400; step++ {
				slot := rng.Intn(cap)
				switch rng.Intn(6) {
				case 0, 1: // register into any empty slot
					if _, err := p.Register(tenancy.Tenant{
						Name:  fmt.Sprintf("t%d", reg),
						Class: tenancy.SLOClass(rng.Intn(2)),
					}); err == nil {
						reg++
					}
					check("register")
				case 2: // touch pages as an active tenant
					if p.State(slot) == tenancy.StateActive {
						m.SetCurrentTenant(memsim.TenantID(slot))
						base := uint64(slot) * 16
						for k := 0; k < 4; k++ {
							m.Access((base+uint64(rng.Intn(16)))*4096, rng.Intn(3) == 0)
						}
						check("touch")
					}
				case 3: // graceful deregister, drain
					if p.State(slot) != tenancy.StateEmpty {
						p.Deregister(slot, -1)
						check("deregister")
					}
				case 4: // crash with handoff to a random other slot
					if p.State(slot) != tenancy.StateEmpty {
						p.Crash(slot, rng.Intn(cap))
						check("crash")
					}
				case 5:
					p.RetryDrains()
					p.BeginPeriod()
					check("retry")
				}
			}
			// Clear faults and drain everything: the plane must empty.
			m.SetFaultInjector(nil)
			for i := 0; i < cap; i++ {
				if p.State(i) == tenancy.StateActive {
					p.Deregister(i, -1)
				}
			}
			if left := p.RetryDrains(); left != 0 {
				t.Fatalf("%d slots still draining after faults cleared", left)
			}
			check("final drain")
			if got := m.UsedPages(memsim.Fast) + m.UsedPages(memsim.Slow); got != 0 {
				t.Fatalf("%d pages leaked after all tenants drained", got)
			}
		})
	}
}

// TestChaosChurnSLOPreemption checks the class asymmetry end to end:
// with identical clients and seeds, flipping some clients to the
// latency class must buy them preempted promotion bandwidth (denials
// shift toward the batch class), not error them.
func TestChaosChurnSLOPreemption(t *testing.T) {
	run := func(slo bool) Result {
		spec := testChurnSpec(18)
		if !slo {
			for i := range spec.Clients {
				spec.Clients[i].Class = tenancy.ClassBatch
			}
		}
		acfg := churnArbiter()
		acfg.BandwidthPagesPerPeriod = 6 // 1/tenant/period: preemption pressure
		return RunChurn(spec, acfg, Config{
			PageSize:        4096,
			Ratio:           Ratio{Fast: 1, Slow: 4},
			CheckInvariants: true,
		})
	}
	withSLO, flat := run(true), run(false)
	if withSLO.InvariantErr != nil || flat.InvariantErr != nil {
		t.Fatalf("invariants: %v / %v", withSLO.InvariantErr, flat.InvariantErr)
	}
	var preempts uint64
	for _, tr := range withSLO.Tenants {
		if tr.Class == "latency" {
			preempts += tr.Preemptions
		}
	}
	if preempts == 0 {
		t.Error("latency clients never preempted the batch pool")
	}
	if withSLO.Churn.LatencyP99Ns > withSLO.Churn.BatchP99Ns {
		t.Errorf("latency class p99 %.0f worse than batch %.0f under SLO arbitration",
			withSLO.Churn.LatencyP99Ns, withSLO.Churn.BatchP99Ns)
	}
}
