package harness

// StageStats aggregates a serving run's span-journal stage attribution
// (Result.Stages): whole-virtual-nanosecond totals per pipeline stage
// across every recorded span, plus end-to-end latency quantiles. Lives
// on Result — like ChurnStats — so lockstep serving outcomes flow
// through the sched run cache with everything else.
type StageStats struct {
	// Spans is the number of spans aggregated (rate-1 sampling in the
	// lockstep experiments: one per accepted batch).
	Spans int64
	// Per-stage totals. Decode, Coalesce, and Ack are zero in lockstep
	// runs — the driver calls Submit and Pump back to back, so no
	// virtual time elapses in those stages; they are live only when a
	// wall clock drives the server (cmd/artload).
	DecodeNs   int64
	QueueNs    int64
	StallNs    int64
	CoalesceNs int64
	ApplyNs    int64
	AckNs      int64
	// P50Ns and P99Ns are quantiles of per-span end-to-end latency
	// (sum of the six stages), exact — computed by sorting, not from
	// histogram buckets.
	P50Ns int64
	P99Ns int64
}

// TotalNs returns the sum of the per-stage totals.
func (s StageStats) TotalNs() int64 {
	return s.DecodeNs + s.QueueNs + s.StallNs + s.CoalesceNs + s.ApplyNs + s.AckNs
}

// AvgNs divides a stage total by the span count, 0 when empty.
func (s StageStats) AvgNs(total int64) int64 {
	if s.Spans == 0 {
		return 0
	}
	return total / s.Spans
}
