package harness

import (
	"testing"

	"artmem/internal/core"
	"artmem/internal/policies"
	"artmem/internal/workloads"
)

func TestRatioString(t *testing.T) {
	if got := (Ratio{Fast: 1, Slow: 4}).String(); got != "1:4" {
		t.Errorf("String = %q", got)
	}
}

func TestRatioFastBytes(t *testing.T) {
	cases := []struct {
		r    Ratio
		foot int64
		want int64
	}{
		{Ratio{Fast: 1, Slow: 1}, 1000, 500},
		{Ratio{Fast: 2, Slow: 1}, 900, 600},
		{Ratio{Fast: 1, Slow: 4}, 1000, 200},
		{Ratio{Fast: 1, Slow: 0}, 777, 777},
	}
	for _, tc := range cases {
		if got := tc.r.FastBytes(tc.foot); got != tc.want {
			t.Errorf("%s.FastBytes(%d) = %d, want %d", tc.r, tc.foot, got, tc.want)
		}
	}
}

func TestPaperRatiosMatchEvaluation(t *testing.T) {
	want := []string{"2:1", "1:1", "1:2", "1:4", "1:8", "1:16"}
	if len(PaperRatios) != len(want) {
		t.Fatalf("got %d ratios", len(PaperRatios))
	}
	for i, r := range PaperRatios {
		if r.String() != want[i] {
			t.Errorf("ratio %d = %s, want %s", i, r, want[i])
		}
	}
}

// smallPattern returns a quick synthetic workload for harness tests.
func smallPattern(accesses int64) workloads.Workload {
	pat := &workloads.Pattern{
		Name:      "hot-in-upper-half",
		Footprint: 8 << 20,
		Phases: []workloads.Phase{{
			Name:     "p",
			Accesses: accesses,
			Regions: []workloads.Region{
				{Start: 5 << 20, Size: 1 << 20, Weight: 0.9},
				{Start: 0, Size: 8 << 20, Weight: 0.1},
			},
		}},
	}
	return workloads.WithInitSweep(pat.NewWorkload(1), 0)
}

func TestRunProducesConsistentResult(t *testing.T) {
	r := Run(smallPattern(300_000), policies.NewStatic(), Config{
		PageSize: 64 * 1024, Ratio: Ratio{Fast: 1, Slow: 1}})
	if r.Workload != "hot-in-upper-half" || r.Policy != "Static" {
		t.Errorf("labels = %q/%q", r.Workload, r.Policy)
	}
	if r.Accesses < 300_000 {
		t.Errorf("accesses = %d", r.Accesses)
	}
	if r.ExecNs <= 0 {
		t.Errorf("exec = %d", r.ExecNs)
	}
	if r.DRAMRatio < 0 || r.DRAMRatio > 1 {
		t.Errorf("DRAMRatio = %g", r.DRAMRatio)
	}
	if r.Ticks == 0 {
		t.Errorf("no policy ticks fired")
	}
	if r.Misses == 0 || r.Misses > uint64(r.Accesses) {
		t.Errorf("misses = %d of %d", r.Misses, r.Accesses)
	}
	if r.BandwidthGBps() <= 0 {
		t.Errorf("bandwidth = %g", r.BandwidthGBps())
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		return Run(smallPattern(200_000), core.New(core.Config{Seed: 3}), Config{
			PageSize: 64 * 1024, Ratio: Ratio{Fast: 1, Slow: 2}})
	}
	a, b := run(), run()
	if a.ExecNs != b.ExecNs || a.Migrations != b.Migrations ||
		a.DRAMRatio != b.DRAMRatio {
		t.Errorf("identical runs diverged: %+v vs %+v", a, b)
	}
}

func TestRunCollectSeries(t *testing.T) {
	r := Run(smallPattern(300_000), core.New(core.Config{}), Config{
		PageSize: 64 * 1024, Ratio: Ratio{Fast: 1, Slow: 1}, CollectSeries: true})
	if r.MigrationSeries.Len() == 0 {
		t.Errorf("no migration series collected")
	}
	if r.RatioSeries.Len() == 0 {
		t.Errorf("no ratio series collected")
	}
	// Series timestamps are within the run.
	for _, ts := range r.MigrationSeries.T {
		if ts <= 0 || ts > r.ExecNs {
			t.Fatalf("series timestamp %d outside (0, %d]", ts, r.ExecNs)
		}
	}
}

func TestSlowLatencyOverrideSlowsSlowHeavyRuns(t *testing.T) {
	// At ratio 1:8 most accesses hit the slow tier; tripling its latency
	// must lengthen execution.
	base := Run(smallPattern(200_000), policies.NewStatic(), Config{
		PageSize: 64 * 1024, Ratio: Ratio{Fast: 1, Slow: 8}})
	slow := Run(smallPattern(200_000), policies.NewStatic(), Config{
		PageSize: 64 * 1024, Ratio: Ratio{Fast: 1, Slow: 8}, SlowLatencyNs: 1000})
	if slow.ExecNs <= base.ExecNs {
		t.Errorf("1000ns slow tier (%d) not slower than 323ns (%d)",
			slow.ExecNs, base.ExecNs)
	}
}

func TestCacheLinesOverride(t *testing.T) {
	// Disabling the cache makes every access a miss.
	r := Run(smallPattern(100_000), policies.NewStatic(), Config{
		PageSize: 64 * 1024, Ratio: Ratio{Fast: 1, Slow: 1}, CacheLines: -1})
	if r.Misses != uint64(r.Accesses) {
		t.Errorf("cache disabled but misses %d != accesses %d", r.Misses, r.Accesses)
	}
}

func TestDefaultsApplied(t *testing.T) {
	// Zero config: 2MB pages, 1:1 ratio.
	r := Run(smallPattern(50_000), policies.NewStatic(), Config{})
	if r.Ratio.Fast != 1 || r.Ratio.Slow != 1 {
		t.Errorf("default ratio = %s", r.Ratio)
	}
}

func TestDRAMOnlyRunHasPerfectRatio(t *testing.T) {
	r := Run(smallPattern(100_000), policies.NewStatic(), Config{
		PageSize: 64 * 1024, Ratio: Ratio{Fast: 1, Slow: 0}})
	if r.DRAMRatio != 1 {
		t.Errorf("DRAM-only ratio = %g", r.DRAMRatio)
	}
}

func TestOverheadFraction(t *testing.T) {
	r := Result{ExecNs: 1000, BackgroundNs: 30}
	if got := r.OverheadFraction(); got != 0.03 {
		t.Errorf("OverheadFraction = %g", got)
	}
	if got := (Result{}).OverheadFraction(); got != 0 {
		t.Errorf("zero-exec OverheadFraction = %g", got)
	}
	if got := (Result{}).BandwidthGBps(); got != 0 {
		t.Errorf("zero-exec BandwidthGBps = %g", got)
	}
}

// ArtMem must beat Static on a hot-in-slow pattern at harness level —
// the repository's headline behaviour.
func TestArtMemBeatsStaticOnHotSlowPattern(t *testing.T) {
	// Small CPU cache (256KB) so the 1MB hot region actually reaches
	// memory, and a 1ms RL interval so the short run spans many periods.
	cfg := Config{PageSize: 64 * 1024, Ratio: Ratio{Fast: 1, Slow: 1},
		CacheLines: 1 << 12}
	static := Run(smallPattern(800_000), policies.NewStatic(), cfg)
	art := Run(smallPattern(800_000),
		core.New(core.Config{TickInterval: 1_000_000}), cfg)
	if art.ExecNs >= static.ExecNs {
		t.Errorf("ArtMem (%.1fms) not faster than Static (%.1fms)",
			float64(art.ExecNs)/1e6, float64(static.ExecNs)/1e6)
	}
	if art.DRAMRatio <= static.DRAMRatio {
		t.Errorf("ArtMem ratio %.3f not above Static %.3f",
			art.DRAMRatio, static.DRAMRatio)
	}
}

func TestFastHeadroomExtendsCapacity(t *testing.T) {
	// With headroom, a 0-byte fast split still leaves room for pages.
	r := Run(smallPattern(50_000), policies.NewStatic(), Config{
		PageSize: 64 * 1024, Ratio: Ratio{Fast: 0, Slow: 1}, FastHeadroom: 4})
	if r.DRAMRatio == 0 {
		t.Errorf("headroom pages unused: ratio %g", r.DRAMRatio)
	}
}

func TestTicksMonotoneWithInterval(t *testing.T) {
	r := Run(smallPattern(400_000), core.New(core.Config{TickInterval: 2_000_000}),
		Config{PageSize: 64 * 1024, Ratio: Ratio{Fast: 1, Slow: 1}, CollectSeries: true})
	for i := 1; i < r.MigrationSeries.Len(); i++ {
		if r.MigrationSeries.T[i] <= r.MigrationSeries.T[i-1] {
			t.Fatalf("tick timestamps not increasing at %d", i)
		}
		if gap := r.MigrationSeries.T[i] - r.MigrationSeries.T[i-1]; gap < 2_000_000 {
			t.Fatalf("ticks %d apart, below the 2ms interval", gap)
		}
	}
}
