package exp

import (
	"fmt"
	"sync"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/policies"
	"artmem/internal/rl"
	"artmem/internal/sched"
	"artmem/internal/workloads"
)

// policySpec pairs a policy's display name and canonical identity with
// its constructor. The id must capture everything that influences the
// policy's behaviour — construction parameters and, for ArtMem,
// pretraining provenance — because the run cache keys on it; the name
// is what tables print.
type policySpec struct {
	name string
	id   string
	mk   func() policies.Policy
}

// baselineSpec returns the spec for a registry baseline, whose name is
// its complete identity (baseline constructors take no parameters in
// experiment grids).
func baselineSpec(name string) policySpec {
	return policySpec{name: name, id: name, mk: func() policies.Policy { return mustPolicy(name) }}
}

// spec returns a fully custom policy spec (e.g. MEMTIS with a
// threshold override); id must extend the name with every parameter.
func spec(name, id string, mk func() policies.Policy) policySpec {
	return policySpec{name: name, id: id, mk: mk}
}

// artmemSpec returns the standard evaluated ArtMem: cfg on top of
// Q-tables pretrained on Liblinear (§6.2), as ArtMemPolicy builds.
func (o Options) artmemSpec(cfg core.Config) policySpec {
	return o.artmemTrainedSpec("Liblinear", cfg.Algorithm, cfg)
}

// artmemTrainedSpec returns an ArtMem variant pretrained on an
// arbitrary workload/algorithm (the Figure 13/14 studies).
func (o Options) artmemTrainedSpec(train string, alg rl.Algorithm, cfg core.Config) policySpec {
	return policySpec{
		name: "ArtMem",
		id:   artmemID(train, alg, cfg),
		mk: func() policies.Policy {
			mig, thr := TrainTables(o, train, alg)
			c := cfg
			c.Algorithm = alg
			c.PretrainedMig, c.PretrainedThr = mig, thr
			return core.New(c)
		},
	}
}

// artmemID canonically encodes an ArtMem configuration plus its
// pretraining provenance. The Q-table pointers are dropped from the
// encoding — they are not comparable values — and replaced by the
// (train workload, algorithm) pair that deterministically produces
// them under TrainTables, which also folds in the profile via the
// cell key.
func artmemID(train string, alg rl.Algorithm, cfg core.Config) string {
	c := cfg
	c.PretrainedMig, c.PretrainedThr = nil, nil
	return fmt.Sprintf("ArtMem|train=%s|alg=%d|cfg=%+v", train, alg, c)
}

// allPolicySpecs returns the eight evaluated systems of AllPolicies as
// grid specs.
func (o Options) allPolicySpecs() []policySpec {
	var ps []policySpec
	for _, f := range policies.Baselines() {
		if f.Name == "Static" {
			continue // Static is only the Figure 2 normalization baseline
		}
		ps = append(ps, baselineSpec(f.Name))
	}
	return append(ps, o.artmemSpec(core.Config{}))
}

// ---- grid ------------------------------------------------------------------

// grid collects an experiment's cells in declaration order. Cell
// indices are stable handles: run() returns results positioned exactly
// as the cells were added, whatever the scheduler's worker count, so
// rendering code indexes results instead of sequencing runs.
type grid struct {
	o     Options
	cells []sched.Cell
}

// newGrid starts an empty grid under the experiment's options.
func (o Options) newGrid() *grid { return &grid{o: o} }

// add declares one standard cell — workload × policy × config at the
// experiment profile — and returns its index. The workload and policy
// are constructed inside the cell so declaration stays cheap and
// cached cells never build either.
func (g *grid) add(workload string, pol policySpec, cfg harness.Config) int {
	o := g.o
	if cfg.PageSize == 0 {
		cfg.PageSize = o.Profile.PageSize()
	}
	return g.addCell(sched.Key(workload, o.Profile, pol.id, cfg, ""), func() harness.Result {
		spec, err := workloads.ByName(workload)
		if err != nil {
			panic(err)
		}
		res := harness.Run(spec.New(o.Profile), pol.mk(), cfg)
		o.logf("  %s/%s@%s: exec=%.1fms ratio=%.3f mig=%d",
			res.Workload, res.Policy, res.Ratio, float64(res.ExecNs)/1e6,
			res.DRAMRatio, res.Migrations)
		return res
	})
}

// addCell declares a fully custom cell (a non-standard setup such as
// Figure 16a's fixed fast tier); the caller supplies the complete
// cache key, normally via sched.Key with a disambiguating extra.
func (g *grid) addCell(key string, run func() harness.Result) int {
	g.cells = append(g.cells, sched.Cell{Key: key, Run: run})
	return len(g.cells) - 1
}

// run executes every declared cell through the experiment's scheduler
// and returns results indexed by the handles add returned.
func (g *grid) run() []harness.Result {
	return g.o.scheduler().RunGrid(g.cells)
}

// defaultSched serves experiments run without an explicit scheduler
// (tests, library callers): serial execution with a process-wide
// memoizing cache, so repeated cells across experiments still compute
// once. cmd/artbench always installs its own scheduler.
var (
	defaultSchedOnce sync.Once
	defaultSched     *sched.Scheduler
)

// scheduler returns the options' scheduler, or the process default.
func (o Options) scheduler() *sched.Scheduler {
	if o.Sched != nil {
		return o.Sched
	}
	defaultSchedOnce.Do(func() {
		defaultSched = sched.New(sched.Config{Workers: 1, Cache: sched.NewCache("")})
	})
	return defaultSched
}
