package exp

import (
	"fmt"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/textplot"
)

// ShardScale is the sharded-machine validation study (DESIGN.md §12).
// It is not a paper figure: it pins the scale-out substrate's two
// contracts before anything is built on it. Fidelity — how far the
// simulated outcome drifts as the machine is split into independently
// locked shards (per-shard LRU, PEBS, clock; capacity moving only
// through cross-shard transfer transactions) — and determinism: the
// one-shard machine must reproduce the unsharded seed simulator bit
// for bit, and every cell must render identically at any scheduler
// worker count (the parallel-replay test runs this experiment at 1 and
// 8 workers and compares bytes).
func ShardScale() Experiment {
	return Experiment{
		ID:    "shardscale",
		Title: "Shard-scale study: fidelity and determinism of the sharded machine",
		Paper: "not in the paper — validates the concurrent-machine substrate: 1 shard reproduces the seed exactly; drift stays bounded as shards grow",
		Run: func(o Options) []textplot.Table {
			shardCounts := []int{0, 1, 2, 4, 8}
			if o.Quick {
				shardCounts = []int{0, 1, 4}
			}
			works := []string{"YCSB", "XSBench"}
			if o.Quick {
				works = works[:1]
			}
			pols := []policySpec{baselineSpec("TPP"), o.artmemSpec(core.Config{})}
			ratio := harness.Ratio{Fast: 1, Slow: 4}

			g := o.newGrid()
			cell := map[[3]int]int{}
			for wi, w := range works {
				for pi, p := range pols {
					for si, n := range shardCounts {
						cell[[3]int{wi, pi, si}] = g.add(w, p, harness.Config{
							Ratio: ratio, Shards: n})
					}
				}
			}
			res := g.run()

			exec := textplot.Table{
				Title:  "Makespan by shard count, normalized to the unsharded seed",
				Header: append([]string{"workload", "system"}, shardHeaders(shardCounts)...),
				Note:   "shards=0 is the seed Machine; shards>=1 the sharded machine (1 delegates verbatim). ExecNs is the max shard clock, so N shards replaying in lockstep approach 1/N — the modeled parallel speedup, not simulation drift; fidelity drift is the ratio/migration columns below",
			}
			ident := textplot.Table{
				Title:  "Determinism and fidelity summary",
				Header: []string{"workload", "system", "1-shard == seed", "DRAM ratio (seed)", "DRAM ratio (max shards)", "migrations (seed)", "migrations (max shards)"},
			}
			for wi, w := range works {
				for pi, p := range pols {
					seed := res[cell[[3]int{wi, pi, 0}]]
					row := []any{w, p.name}
					for si := range shardCounts {
						r := res[cell[[3]int{wi, pi, si}]]
						row = append(row, normalize(float64(r.ExecNs), float64(seed.ExecNs)))
					}
					exec.AddRow(row...)

					one := res[cell[[3]int{wi, pi, 1}]]
					same := one.ExecNs == seed.ExecNs &&
						one.DRAMRatio == seed.DRAMRatio &&
						one.Migrations == seed.Migrations &&
						one.Misses == seed.Misses &&
						one.BackgroundNs == seed.BackgroundNs
					sameStr := "yes"
					if !same {
						sameStr = "NO — DETERMINISM BROKEN"
					}
					last := res[cell[[3]int{wi, pi, len(shardCounts) - 1}]]
					ident.AddRow(w, p.name, sameStr,
						seed.DRAMRatio, last.DRAMRatio,
						int(seed.Migrations), int(last.Migrations))
				}
			}
			return []textplot.Table{exec, ident}
		},
	}
}

// shardHeaders labels the shard-count sweep columns.
func shardHeaders(counts []int) []string {
	hs := make([]string, len(counts))
	for i, n := range counts {
		if n == 0 {
			hs[i] = "seed"
		} else {
			hs[i] = fmt.Sprintf("%d shard", n)
		}
	}
	return hs
}
