package exp

import (
	"strconv"
	"strings"
	"testing"

	"artmem/internal/sched"
	"artmem/internal/workloads"
)

// fairnessJainFromSummary renders the fairness experiment and parses
// the Jain column of its summary table, keyed by arbiter label.
func fairnessJainFromSummary(t *testing.T, o Options) map[string]float64 {
	t.Helper()
	e, err := ByID("fairness")
	if err != nil {
		t.Fatal(err)
	}
	tables := e.Run(o)
	if len(tables) != 2 {
		t.Fatalf("fairness rendered %d tables, want 2", len(tables))
	}
	jain := map[string]float64{}
	for _, line := range strings.Split(tables[1].Render(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		label := fields[0]
		if label != "arbiter-off" && label != "static+admission" && label != "dynamic+admission" {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad jain cell in %q: %v", line, err)
		}
		jain[label] = v
	}
	if len(jain) != 3 {
		t.Fatalf("summary table missing arbiter rows:\n%s", tables[1].Render())
	}
	return jain
}

// TestFairnessJainImprovesWithArbiter is the experiment's acceptance
// criterion: with admission control on, the Jain fairness index over
// the three tenants' normalized service must strictly beat the
// arbiter-off baseline — in the rendered table, at both static and
// dynamic quota postures.
func TestFairnessJainImprovesWithArbiter(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tenant experiment runs take a while")
	}
	o := QuickOptions()
	o.Profile = workloads.Profile{Div: 512, PatternAccesses: 400_000, AppAccesses: 200_000, Seed: 1}
	o.Sched = sched.New(sched.Config{Workers: 4, Cache: sched.NewCache("")})

	jain := fairnessJainFromSummary(t, o)
	off := jain["arbiter-off"]
	for _, label := range []string{"static+admission", "dynamic+admission"} {
		if jain[label] <= off {
			t.Errorf("%s jain %.3f does not improve on arbiter-off %.3f", label, jain[label], off)
		}
	}
}
