// Package exp defines one reproducible experiment per table and figure
// of the paper's evaluation (the per-experiment index in DESIGN.md §3).
// Each experiment declares its workload × policy × configuration sweep
// as a grid of independent cells (grid.go), runs the grid through the
// internal/sched scheduler — which parallelizes and memoizes cells
// without changing a byte of output (DESIGN.md §7) — and renders the
// same rows/series the paper reports, as text tables, by indexing the
// returned results. cmd/artbench and the top-level benchmarks are thin
// wrappers around this package.
package exp

import (
	"fmt"
	"sync"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/policies"
	"artmem/internal/rl"
	"artmem/internal/sched"
	"artmem/internal/textplot"
	"artmem/internal/workloads"
)

// Options control an experiment run.
type Options struct {
	// Profile sets the workload scale.
	Profile workloads.Profile
	// Quick trims sweeps (fewer ratios/workloads) for smoke runs.
	Quick bool
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
	// Sched executes the experiment's cell grids (worker pool + run
	// cache). Nil falls back to a process-wide serial scheduler with an
	// in-memory cache; cmd/artbench installs a parallel one.
	Sched *sched.Scheduler
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{Profile: workloads.DefaultProfile()}
}

// QuickOptions returns a fast smoke-run configuration.
func QuickOptions() Options {
	return Options{Profile: workloads.QuickProfile(), Quick: true}
}

// BenchOptions returns the scale used by the repository's testing.B
// benchmarks: large enough for the shapes to emerge, small enough that
// the full suite finishes in minutes.
func BenchOptions() Options {
	return Options{
		Profile: workloads.Profile{
			Div:             128,
			PatternAccesses: 12_000_000,
			AppAccesses:     3_000_000,
			Seed:            1,
		},
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	// ID is the registry key, e.g. "fig7".
	ID string
	// Title describes the experiment.
	Title string
	// Paper summarizes what the paper reports, for comparison.
	Paper string
	// Run executes the experiment and returns its result tables.
	Run func(o Options) []textplot.Table
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		Table2(), Fig1(), Fig2(), Fig3(), Fig4(),
		Fig7(), Fig8(), Fig9(), Fig10(), Fig11(),
		Fig12(), Fig13(), Fig14(), Fig15(),
		Fig16a(), Fig16b(), Fig16c(), Fig17(), Overheads(),
		LiblinearSampling(), PageSize(), Fairness(), Churn(),
		ServeBench(), Latency(), ShardScale(), Tiers(),
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// ---- pretrained agent ------------------------------------------------------

// trainKey identifies a pretraining cache entry.
type trainKey struct {
	div      int64
	accesses int64
	seed     uint64
	alg      rl.Algorithm
	workload string
}

var (
	trainMu    sync.Mutex
	trainCache = map[trainKey]*trainedTables{}
)

// trainedTables is one memoized pretraining run; done is closed once
// mig/thr are valid, so concurrent requests for the same key coalesce
// onto a single training (parallel grid cells frequently race here)
// instead of training redundantly.
type trainedTables struct {
	done     chan struct{}
	mig, thr *rl.Table
}

// TrainTables pretrains ArtMem Q-tables by running the named workload
// at two memory ratios (the paper primes its agent on Liblinear, §6.2).
// Results are memoized per profile; concurrent callers with the same
// key share one training run. The returned tables are shared — callers
// must pass them on as pretraining input (core.Config copies them) and
// never mutate them.
func TrainTables(o Options, workload string, alg rl.Algorithm) (mig, thr *rl.Table) {
	key := trainKey{o.Profile.Div, o.Profile.AppAccesses, o.Profile.Seed, alg, workload}
	trainMu.Lock()
	if t, ok := trainCache[key]; ok {
		trainMu.Unlock()
		<-t.done
		return t.mig, t.thr
	}
	t := &trainedTables{done: make(chan struct{})}
	trainCache[key] = t
	trainMu.Unlock()
	defer close(t.done)

	spec, err := workloads.ByName(workload)
	if err != nil {
		panic(err)
	}
	o.logf("pretraining ArtMem on %s", workload)
	var prevMig, prevThr *rl.Table
	for round, ratio := range []harness.Ratio{
		{Fast: 1, Slow: 1}, {Fast: 1, Slow: 2}, {Fast: 1, Slow: 8}, {Fast: 1, Slow: 16},
	} {
		pol := core.New(core.Config{
			Algorithm:     alg,
			Seed:          o.Profile.Seed + uint64(round),
			PretrainedMig: prevMig,
			PretrainedThr: prevThr,
		})
		harness.Run(spec.New(o.Profile), pol, harness.Config{
			PageSize: o.Profile.PageSize(),
			Ratio:    ratio,
		})
		prevMig, prevThr = pol.QTables()
	}
	t.mig, t.thr = prevMig, prevThr
	return prevMig, prevThr
}

// ArtMemPolicy returns a fresh ArtMem policy with pretrained Q-tables
// applied on top of cfg.
func (o Options) ArtMemPolicy(cfg core.Config) *core.ArtMem {
	mig, thr := TrainTables(o, "Liblinear", cfg.Algorithm)
	cfg.PretrainedMig = mig
	cfg.PretrainedThr = thr
	return core.New(cfg)
}

// AllPolicies returns the eight evaluated systems: the seven baselines
// of Table 1 plus ArtMem (pretrained).
func (o Options) AllPolicies() []policies.Factory {
	fs := []policies.Factory{}
	for _, f := range policies.Baselines() {
		if f.Name == "Static" {
			continue // Static is only the Figure 2 normalization baseline
		}
		fs = append(fs, f)
	}
	fs = append(fs, policies.Factory{
		Name: "ArtMem",
		New:  func() policies.Policy { return o.ArtMemPolicy(core.Config{}) },
	})
	return fs
}

// ---- shared run helpers ------------------------------------------------------

// runOne executes a single workload/policy/ratio combination directly,
// bypassing the scheduler and its cache. Grid experiments declare
// cells instead (see grid.go); runOne remains for the two setups the
// cell model cannot express: runs whose policy carries evolving state
// across iterations (Figure 14's retraining chains, where the Q-tables
// are not part of any cacheable identity) and runs that inspect the
// policy object after the run (the §6.4 overhead accounting).
func (o Options) runOne(workload string, pol policies.Policy, cfg harness.Config) harness.Result {
	spec, err := workloads.ByName(workload)
	if err != nil {
		panic(err)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = o.Profile.PageSize()
	}
	res := harness.Run(spec.New(o.Profile), pol, cfg)
	o.logf("  %s/%s@%s: exec=%.1fms ratio=%.3f mig=%d",
		res.Workload, res.Policy, res.Ratio, float64(res.ExecNs)/1e6,
		res.DRAMRatio, res.Migrations)
	return res
}

// ratios returns the experiment's memory-ratio sweep, trimmed in quick
// mode.
func (o Options) ratios() []harness.Ratio {
	if o.Quick {
		return []harness.Ratio{{Fast: 1, Slow: 1}, {Fast: 1, Slow: 8}}
	}
	return harness.PaperRatios
}

// appNames returns the evaluated application list, trimmed in quick mode.
func (o Options) appNames() []string {
	if o.Quick {
		return []string{"YCSB", "CC", "XSBench", "Liblinear"}
	}
	names := make([]string, len(workloads.Apps))
	for i, s := range workloads.Apps {
		names[i] = s.Name
	}
	return names
}

// normalize divides each value by base, guarding zero.
func normalize(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return v / base
}
