package exp

import (
	"fmt"

	"artmem/internal/core"
	"artmem/internal/faultinject"
	"artmem/internal/harness"
	"artmem/internal/policies"
	"artmem/internal/sched"
	"artmem/internal/tenancy"
	"artmem/internal/textplot"
	"artmem/internal/workloads"
)

// Churn-study geometry. The plane is deliberately much smaller than the
// client population — the point is lifecycle pressure, not co-residency
// — and the page size is fixed at 4KB so cell identity does not depend
// on the profile's scaled huge page.
const (
	churnCapacity  = 8
	churnSlotPages = 32
	churnPageSize  = 4096
	// churnClientPages is each client's footprint; it must fit a slot.
	churnClientPages = 24
	// churnTickNs is the per-client policy interval: clients live on the
	// order of 100k virtual ns, so the default 10ms tick would never
	// fire during a client's residency.
	churnTickNs = 20_000
	// churnPeriodNs is the control period (arrivals, crash rolls, budget
	// refills, drain retries).
	churnPeriodNs = 100_000
)

// churnScales is the tenant-count sweep: the paper-scale study runs 100
// and 1000 tenants through the 8-slot plane; quick mode trims the
// queue, not the mechanism.
func churnScales(o Options) []int {
	if o.Quick {
		return []int{40, 120}
	}
	return []int{100, 1000}
}

// churnAccesses is the per-client trace length, scaled from the profile
// with a floor that keeps each client resident for a few control
// periods.
func churnAccesses(o Options) int64 {
	a := o.Profile.AppAccesses / 800
	if a < 2_000 {
		a = 2_000
	}
	return a
}

// churnArbiterCfg is the arbiter posture of the churn study: static
// weighted quotas with admission control, a promotion budget scarce
// enough (one page per slot per period) that SLO preemption matters,
// registration backpressure of two arrivals per period, and a 3x
// latency-class quota boost so latency tenants' hot sets land in the
// fast tier at first touch.
func churnArbiterCfg() tenancy.ArbiterConfig {
	return tenancy.ArbiterConfig{
		Mode:                    tenancy.ModeStatic,
		Admission:               true,
		BandwidthPagesPerPeriod: churnCapacity,
		MaxArrivalsPerPeriod:    2,
		LatencyQuotaBoost:       3,
	}
}

// churnFaultCfg is the deterministic chaos schedule: injected tenant
// crashes, per-page reclamation interrupts, and arrival bursts, all on
// per-class RNG streams derived from the profile seed.
func churnFaultCfg(o Options) *faultinject.Config {
	return &faultinject.Config{
		Seed:                 o.Profile.Seed ^ 0x5ca1ab1e,
		TenantCrashProb:      0.03,
		ReclaimInterruptProb: 0.02,
		ArrivalBurstProb:     0.2,
		ArrivalBurstMax:      3,
	}
}

// churnSpecFor builds the deterministic client queue for one cell:
// every fourth client is a fresh ArtMem agent (the rest MEMTIS), every
// third is latency-class when slo is set, and a shifting-hotspot
// antagonist holds slot 0 for the whole run. Workloads are single-use,
// so every run builds a fresh spec.
func churnSpecFor(o Options, clients int, slo bool) harness.ChurnSpec {
	spec := harness.ChurnSpec{
		Capacity:  churnCapacity,
		SlotBytes: churnSlotPages * churnPageSize,
		PeriodNs:  churnPeriodNs,
	}
	accs := churnAccesses(o)
	for i := 0; i < clients; i++ {
		var pol policies.EnvPolicy
		if i%4 == 0 {
			pol = core.New(core.Config{
				Seed:         o.Profile.Seed + uint64(i) + 1,
				SamplePeriod: 4,
				TickInterval: churnTickNs,
			})
		} else {
			pol = policies.NewMEMTIS(policies.MEMTISConfig{TickInterval: churnTickNs})
		}
		class := tenancy.ClassBatch
		if slo && i%3 == 0 {
			class = tenancy.ClassLatency
		}
		name := fmt.Sprintf("client%d", i)
		spec.Clients = append(spec.Clients, harness.ChurnClient{
			Name:     name,
			Class:    class,
			Workload: workloads.NewChurnClient(name, churnClientPages*churnPageSize, accs, o.Profile.Seed+uint64(i)+7),
			Policy:   pol,
		})
	}
	spec.Antagonist = &harness.ChurnClient{
		Name:     "antagonist",
		Weight:   2,
		Workload: workloads.NewChurnAntagonist(churnSlotPages*churnPageSize, int64(clients)*accs/4, o.Profile.Seed+3),
		Policy:   policies.NewMEMTIS(policies.MEMTISConfig{TickInterval: churnTickNs}),
	}
	return spec
}

// churnKey canonically identifies one churn cell for the run cache: the
// client count and class posture plus every constant that shapes the
// spec (geometry, trace length, policy mix, tick and period, arbiter).
func churnKey(o Options, clients int, slo bool, cfg harness.Config) string {
	extra := fmt.Sprintf(
		"churn|clients=%d|slo=%v|cap=%d|slotpages=%d|clientpages=%d|accs=%d|tick=%d|period=%d|mix=artmem/4+memtis|arb=%+v",
		clients, slo, churnCapacity, churnSlotPages, churnClientPages,
		churnAccesses(o), churnTickNs, churnPeriodNs, churnArbiterCfg())
	return sched.Key("churn", o.Profile, "mixed", cfg, extra)
}

// churnClassRow sums per-class admission outcomes over the client rows
// of one churn result (row 0 is the antagonist, excluded).
func churnClassRow(res harness.Result, class string) (clients int, preempt, denied uint64) {
	for _, tr := range res.Tenants[1:] {
		if tr.Accesses == 0 || tr.Class != class {
			continue
		}
		clients++
		preempt += tr.Preemptions
		denied += tr.AdmissionDenials
	}
	return
}

// Churn runs the tenant-lifecycle study: 100 and 1000 short-lived
// tenants cycle through an 8-slot plane under injected crashes,
// reclamation interrupts, and arrival bursts, with a permanent
// antagonist pressuring the fast tier throughout. Each scale runs
// twice: once with every third client in the latency SLO class (whose
// promotion budget may preempt the pooled batch budget) and once with
// every client in the batch class.
//
// The study reports per-class tail latency (mean reconstructed p99
// access cost) and Jain's fairness index over per-client hit ratios,
// plus the lifecycle ledger: completions, crashes, throttled
// registrations, reclamation rollbacks, and drained/handed-off pages.
// Invariants (machine page accounting, per-tenant RSS sum, arbiter
// quota sum) are re-checked after every lifecycle event; a violation
// fails the run's table.
func Churn() Experiment {
	return Experiment{
		ID:    "churn",
		Title: "Tenant churn: lifecycle, SLO classes, and overload-safe arbitration",
		Paper: "ArtMem deploys per-memcg agents as cgroups come and go; the control plane must keep accounting exact and latency tenants ahead of batch under churn",
		Run: func(o Options) []textplot.Table {
			cfg := harness.Config{
				PageSize:        churnPageSize,
				Ratio:           harness.Ratio{Fast: 1, Slow: 4},
				Faults:          churnFaultCfg(o),
				CheckInvariants: true,
			}
			postures := []struct {
				label string
				slo   bool
			}{
				{"slo-classes", true},
				{"all-batch", false},
			}
			scales := churnScales(o)
			g := o.newGrid()
			idx := make([][]int, len(scales))
			for si, n := range scales {
				idx[si] = make([]int, len(postures))
				for pi, p := range postures {
					n, p := n, p
					idx[si][pi] = g.addCell(churnKey(o, n, p.slo, cfg), func() harness.Result {
						res := harness.RunChurn(churnSpecFor(o, n, p.slo), churnArbiterCfg(), cfg)
						c := res.Churn
						o.logf("  churn/%d/%s: done=%d crash=%d throttled=%d rollbacks=%d",
							n, p.label, c.Completed, c.Crashed, c.Throttled, c.ReclaimRollbacks)
						return res
					})
				}
			}
			res := g.run()

			classes := textplot.Table{
				Title: "per-class outcomes under churn (8-slot plane, 1:4 DRAM:PM, antagonist resident)",
				Header: []string{"tenants", "posture", "class", "clients",
					"mean p99 ns", "jain(hit)", "preempt", "denied"},
				Note: "p99 is the mean reconstructed 99th-percentile access cost per client; preempt counts batch-pool budget latency tenants preempted",
			}
			for si, n := range scales {
				for pi, p := range postures {
					r := res[idx[si][pi]]
					rows := []struct {
						class string
						p99   float64
						jain  float64
					}{
						{"latency", r.Churn.LatencyP99Ns, r.Churn.JainLatency},
						{"batch", r.Churn.BatchP99Ns, r.Churn.JainBatch},
					}
					for _, row := range rows {
						cnt, preempt, denied := churnClassRow(r, row.class)
						if cnt == 0 {
							continue // all-batch posture has no latency rows
						}
						classes.AddRow(fmt.Sprintf("%d", n), p.label, row.class,
							fmt.Sprintf("%d", cnt), row.p99, row.jain,
							fmt.Sprintf("%d", preempt), fmt.Sprintf("%d", denied))
					}
				}
			}

			ledger := textplot.Table{
				Title: "lifecycle ledger (invariants re-checked after every event)",
				Header: []string{"tenants", "posture", "done", "crashed", "regs",
					"throttled", "rollbacks", "drained", "handoff", "unresolved", "peak", "invariants"},
				Note: "throttled counts registrations deferred by arrival backpressure; rollbacks are reclamation transactions undone by injected interrupts",
			}
			for si, n := range scales {
				for pi, p := range postures {
					r := res[idx[si][pi]]
					c := r.Churn
					inv := "ok"
					if r.InvariantErr != nil {
						inv = r.InvariantErr.Error()
					}
					ledger.AddRow(fmt.Sprintf("%d", n), p.label,
						fmt.Sprintf("%d", c.Completed), fmt.Sprintf("%d", c.Crashed),
						fmt.Sprintf("%d", c.Registrations), fmt.Sprintf("%d", c.Throttled),
						fmt.Sprintf("%d", c.ReclaimRollbacks), fmt.Sprintf("%d", c.PagesDrained),
						fmt.Sprintf("%d", c.PagesHandedOff), fmt.Sprintf("%d", c.UnresolvedDrains),
						fmt.Sprintf("%d", c.PeakActive), inv)
				}
			}
			return []textplot.Table{classes, ledger}
		},
	}
}
