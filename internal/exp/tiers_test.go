package exp

import (
	"strconv"
	"testing"
)

// TestTiersExperimentShape runs the tier-chain study at quick scale and
// pins its two claims: the 3-tier chain's makespan column is populated
// and sane (every normalized value positive), and on the ping-pong
// workload the non-exclusive row reports shadow discards the exclusive
// row cannot (its discard count is structurally zero).
func TestTiersExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs take a while")
	}
	e, err := ByID("tiers")
	if err != nil {
		t.Fatal(err)
	}
	tables := e.Run(QuickOptions())
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2 (crossover, shadow)", len(tables))
	}
	cross, shadow := tables[0], tables[1]

	if len(cross.Rows) == 0 {
		t.Fatal("crossover table empty")
	}
	for _, row := range cross.Rows {
		norm, err := strconv.ParseFloat(row[3], 64)
		if err != nil || norm <= 0 {
			t.Errorf("bad 3-tier/2-tier ratio %q in row %v", row[3], row)
		}
	}

	// Shadow table rows: workload, mode, migrations, migrated MB,
	// shadow discards, discard share, invalidates, exec.
	found := false
	for _, row := range shadow.Rows {
		discards, err := strconv.Atoi(row[4])
		if err != nil {
			t.Fatalf("bad discard cell %q in row %v", row[4], row)
		}
		if row[1] == "exclusive" && discards != 0 {
			t.Errorf("exclusive run reported %d shadow discards: %v", discards, row)
		}
		if row[0] == "PingPong" && row[1] == "non-exclusive" {
			found = true
			if discards == 0 {
				t.Errorf("ping-pong non-exclusive run discarded nothing: %v", row)
			}
		}
	}
	if !found {
		t.Error("no PingPong non-exclusive row in shadow table")
	}
}
