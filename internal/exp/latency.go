package exp

import (
	"fmt"
	"sort"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/memsim"
	"artmem/internal/sched"
	"artmem/internal/serve"
	"artmem/internal/telemetry"
	"artmem/internal/textplot"
	"artmem/internal/workloads"
)

// The latency experiment runs the serving frontend in lockstep with
// rate-1 span sampling and the machine's virtual clock injected as
// serve.Config.Clock: every stage duration in every span is an exact
// virtual-nanosecond integer, so the attribution tables reproduce byte
// for byte on every run and cache like any other grid cell
// (Result.Stages). Decode, coalesce, and ack are structurally zero in
// lockstep — Submit and Pump run back to back with no wall time — and
// the tables print them anyway to pin that invariant.

// latencySLOObjective is the objective the lockstep SLO monitor scores
// batches against. Virtual batch latencies sit in the hundreds of
// microseconds (one 256-record pass is ~25 virtual µs and the last
// batch of a round queues behind seven of them), so the 2 ms live-class
// objective would never burn; this tightened variant sits just above
// the burst-free tail — burst-free cells stay within budget while
// migration bursts push batches past it.
func latencySLOObjective() telemetry.SLOObjective {
	return telemetry.SLOObjective{
		Class:         "latency",
		LatencyNs:     300_000,
		LatencyTarget: 0.99,
		LossTarget:    0.999,
	}
}

// latencyBurstSweep is the migration-burst sweep: pages ping-ponged
// between tiers after each submission round, injecting deterministic
// migration stall into queued batches' residency.
func latencyBurstSweep(o Options) []int {
	if o.Quick {
		return []int{0, 128}
	}
	return []int{0, 32, 128, 512}
}

// latencyWorkloads is the per-workload attribution sweep.
func latencyWorkloads(o Options) []string {
	if o.Quick {
		return []string{"YCSB", "CC"}
	}
	return []string{"YCSB", "CC", "XSBench", "Liblinear"}
}

// pingPongPages migrates up to n allocated fast-tier pages to the slow
// tier and immediately back, on the background path (MovePage), so the
// configured interference fraction of each transfer lands in
// MigrationStallNs while the tier layout is left exactly as found.
// Deterministic: pages are scanned in id order.
func pingPongPages(m *memsim.Machine, n int) {
	if n <= 0 {
		return
	}
	moved := 0
	for p := memsim.PageID(0); int(p) < m.NumPages() && moved < n; p++ {
		if !m.Allocated(p) || m.TierOf(p) != memsim.Fast {
			continue
		}
		if m.MovePage(p, memsim.Slow) != nil {
			continue
		}
		// The fast slot just vacated is free, so the return cannot fail.
		m.MovePage(p, memsim.Fast)
		moved++
	}
}

// runLatencyCell replays one workload through the lockstep server with
// rate-1 span sampling, ping-ponging burstPages pages after every
// submission round, and aggregates the span journal into
// Result.Stages.
func runLatencyCell(o Options, spec workloads.Spec, burstPages int) harness.Result {
	probe := spec.New(o.Profile)
	foot := probe.FootprintBytes()
	probe.Close()
	mcfg := memsim.DefaultConfig(foot, foot/5, o.Profile.PageSize())
	mcfg.CacheLines = 0
	sys := core.NewSystem(core.SystemConfig{Machine: mcfg, Policy: core.Config{Seed: o.Profile.Seed}})
	// Never Start()ed: the machine's clock advances only under the
	// pump's AccessBatch passes and the injected bursts, making every
	// span a pure function of the submitted traffic.
	m := sys.Machine()

	journal := telemetry.NewSpanJournal(1<<15, 1)
	slo := telemetry.NewSLOMonitor(
		[]telemetry.SLOObjective{latencySLOObjective()}, nil, m.Now)
	srv := serve.NewServer(serve.Config{
		Backend: serve.NewSystemBackend(sys),
		// One batch per pass: with the default cap a whole round would
		// coalesce into a single pass and every batch would share its
		// timestamps, hiding head-of-line queue wait entirely.
		CoalesceRecords: serveBatchRecords,
		Clock:           m.Now,
		Spans:           journal,
		StallNs:         func() int64 { return int64(m.Counters().MigrationStallNs) },
		SLO:             slo,
	})

	streams := make([][][]serve.Record, serveClients)
	for i := range streams {
		streams[i] = serveBatches(o, spec, i)
	}

	var seq uint64
	var acked int64
	for remaining := true; remaining; {
		remaining = false
		for i := range streams {
			if len(streams[i]) == 0 {
				continue
			}
			remaining = true
			recs := streams[i][0]
			streams[i] = streams[i][1:]
			seq++
			if err := srv.Submit(0, seq, recs, func(r serve.Result) {
				if r.Err == nil {
					acked++
				}
			}); err != nil {
				panic(err) // queue is drained every round; admission cannot shed
			}
		}
		// Interference lands while the round's batches are queued, so
		// the pump attributes it to the stall stage, not queue wait.
		pingPongPages(m, burstPages)
		for srv.Pump(0) > 0 {
		}
	}
	srv.Drain()

	spans := journal.Spans(0)
	st := &harness.StageStats{Spans: int64(len(spans))}
	totals := make([]int64, 0, len(spans))
	for _, sp := range spans {
		st.DecodeNs += sp.DecodeNs
		st.QueueNs += sp.QueueNs
		st.StallNs += sp.StallNs
		st.CoalesceNs += sp.CoalesceNs
		st.ApplyNs += sp.ApplyNs
		st.AckNs += sp.AckNs
		totals = append(totals, sp.TotalNs())
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	if n := len(totals); n > 0 {
		st.P50Ns = totals[n/2]
		st.P99Ns = totals[n*99/100]
	}

	c := m.Counters()
	res := harness.Result{
		Workload:      spec.Name,
		Policy:        "serve-latency",
		ExecNs:        m.Now(),
		Accesses:      acked,
		Misses:        c.FastAccesses + c.SlowAccesses,
		DRAMRatio:     c.DRAMRatio(),
		Migrations:    c.Migrations,
		MigratedBytes: c.MigratedBytes,
		Stages:        st,
	}
	// The SLO monitor is cell-local, so its widest-window latency burn
	// rides out on BackgroundNs (otherwise unused here: nothing runs
	// off the critical path in an un-Started system).
	rep := slo.Report()
	if len(rep.Tenants) > 0 && len(rep.Tenants[0].Windows) > 0 {
		res.BackgroundNs = rep.Tenants[0].Windows[len(rep.Tenants[0].Windows)-1].LatencyBurn
	}
	return res
}

// Latency runs the end-to-end latency-attribution study: the lockstep
// serving frontend with rate-1 span sampling on the machine's virtual
// clock, sweeping injected migration-burst intensity and then the
// workload mix. Queue wait, migration stall, and apply time are
// attributed per batch from the span journal; the SLO monitor scores
// the same batches against a tightened latency objective, so the burn
// column shows interference consuming error budget.
func Latency() Experiment {
	return Experiment{
		ID:    "latency",
		Title: "Serving latency attribution: span stages under migration interference",
		Paper: "the paper attributes tail latency to migration interference on the critical path (§3.3, Figure 5); the serving frontend must attribute the same stall out of end-to-end batch latency",
		Run: func(o Options) []textplot.Table {
			g := o.newGrid()
			type cellRef struct {
				label string
				idx   int
			}

			var burstCells []cellRef
			ycsb, err := workloads.ByName("YCSB")
			if err != nil {
				panic(err)
			}
			for _, burst := range latencyBurstSweep(o) {
				b := burst
				idx := g.addCell(
					sched.Key("YCSB", o.Profile, "serve-latency", harness.Config{},
						fmt.Sprintf("latency|burst=%d", b)),
					func() harness.Result {
						res := runLatencyCell(o, ycsb, b)
						o.logf("  latency/burst=%d: spans=%d stall=%dns p99=%dns",
							b, res.Stages.Spans, res.Stages.StallNs, res.Stages.P99Ns)
						return res
					})
				burstCells = append(burstCells, cellRef{fmt.Sprintf("%d", b), idx})
			}

			var wlCells []cellRef
			const wlBurst = 128
			for _, name := range latencyWorkloads(o) {
				name := name
				spec, err := workloads.ByName(name)
				if err != nil {
					panic(err)
				}
				idx := g.addCell(
					sched.Key(name, o.Profile, "serve-latency", harness.Config{},
						fmt.Sprintf("latency|burst=%d", wlBurst)),
					func() harness.Result {
						res := runLatencyCell(o, spec, wlBurst)
						o.logf("  latency/%s: spans=%d stall=%dns p99=%dns",
							name, res.Stages.Spans, res.Stages.StallNs, res.Stages.P99Ns)
						return res
					})
				wlCells = append(wlCells, cellRef{name, idx})
			}

			results := g.run()

			stageRow := func(t *textplot.Table, label string, r harness.Result) {
				s := r.Stages
				t.AddRow(label, fmt.Sprintf("%d", s.Spans),
					fmt.Sprintf("%d", s.AvgNs(s.QueueNs)),
					fmt.Sprintf("%d", s.AvgNs(s.StallNs)),
					fmt.Sprintf("%d", s.AvgNs(s.CoalesceNs)),
					fmt.Sprintf("%d", s.AvgNs(s.ApplyNs)),
					fmt.Sprintf("%d", s.AvgNs(s.AckNs)),
					fmt.Sprintf("%d", s.P50Ns), fmt.Sprintf("%d", s.P99Ns),
					// BackgroundNs carries the latency-class burn rate out
					// of runLatencyCell (the monitor is cell-local).
					r.BackgroundNs)
			}
			header := []string{"", "batches", "avg queue", "avg stall", "avg coalesce",
				"avg apply", "avg ack", "p50 total", "p99 total", "slo burn"}

			burst := textplot.Table{
				Title: fmt.Sprintf("stage attribution vs. migration bursts (YCSB, %d clients, %d-record batches, virtual ns)",
					serveClients, serveBatchRecords),
				Header: append([]string{"burst pages"}, header[1:]...),
				Note:   "rate-1 span sampling on the virtual clock; bursts ping-pong pages on the background path while batches queue, so their app-visible cost lands in the stall column; coalesce/ack are structurally 0 in lockstep",
			}
			for _, c := range burstCells {
				stageRow(&burst, c.label, results[c.idx])
			}

			wl := textplot.Table{
				Title:  fmt.Sprintf("stage attribution by workload (%d-page bursts)", wlBurst),
				Header: append([]string{"workload"}, header[1:]...),
				Note:   "slo burn is the tightened latency-class burn rate (300us objective, 1% budget): burn > 1 means the cell is spending error budget faster than the objective allows",
			}
			for _, c := range wlCells {
				stageRow(&wl, c.label, results[c.idx])
			}
			return []textplot.Table{burst, wl}
		},
	}
}
