package exp

import (
	"errors"
	"fmt"

	"artmem/internal/core"
	"artmem/internal/memsim"
	"artmem/internal/serve"
	"artmem/internal/textplot"
	"artmem/internal/workloads"
)

// Serving-study geometry. The serving frontend is exercised in lockstep
// — Submit and Pump called synchronously from one goroutine, the server
// never Start()ed — so every number in the tables is an integer count
// reproduced exactly on every run: no wall clock, no goroutine
// scheduling, no network.
const (
	// serveClients is the synthetic client population; each client
	// replays its own decorrelated trace (Spec.NewSeeded).
	serveClients = 8
	// serveBatchRecords is the records-per-batch each client submits —
	// the wire protocol's typical frame payload.
	serveBatchRecords = 256
)

// serveAccesses is the per-client trace length, scaled from the profile
// with a floor that keeps the coalescing and backpressure shapes
// visible at quick scale.
func serveAccesses(o Options) int64 {
	a := o.Profile.AppAccesses / 100
	if a < 8_192 {
		a = 8_192
	}
	return a
}

// serveQueueSweep is the admission-control sweep: ingress-queue bounds
// in records, from one batch above a single round's submissions down
// to effectively unbounded.
func serveQueueSweep(o Options) []int {
	if o.Quick {
		return []int{1_024, 16_384}
	}
	return []int{1_024, 4_096, 16_384, 65_536}
}

// serveCoalesceSweep is the coalescing-cap sweep in records per backend
// pass.
func serveCoalesceSweep(o Options) []int {
	if o.Quick {
		return []int{serveBatchRecords, 4_096}
	}
	return []int{serveBatchRecords, 1_024, 4_096, 16_384}
}

// countingBackend wraps a Backend and counts the coalesced passes the
// server's pump actually issues — the experiment's view of how many
// records one backend call amortizes.
type countingBackend struct {
	inner   serve.Backend
	passes  uint64
	records uint64
}

func (b *countingBackend) Slots() int           { return b.inner.Slots() }
func (b *countingBackend) Check(slot int) error { return b.inner.Check(slot) }

func (b *countingBackend) AccessBatch(slot int, addrs []uint64, writes []bool) {
	b.passes++
	b.records += uint64(len(addrs))
	b.inner.AccessBatch(slot, addrs, writes)
}

func (b *countingBackend) AllocRange(slot int, addr, size uint64) int {
	return b.inner.AllocRange(slot, addr, size)
}

func (b *countingBackend) FreeRange(slot int, addr, size uint64) int {
	return b.inner.FreeRange(slot, addr, size)
}

// serveLedger is one lockstep run's integer outcome.
type serveLedger struct {
	submitted int // batches offered to Submit
	acked     int // done callbacks with nil Err
	shed      int // refused at the door with ErrOverloaded
	rejected  int // done callbacks with non-nil Err
	passes    uint64
	records   uint64
	peakQueue int
	leftover  int // records still queued after Drain (must be 0)
	invErr    error
}

// serveBatches chops client i's trace into submit-ready record batches.
func serveBatches(o Options, spec workloads.Spec, client int) [][]serve.Record {
	w := workloads.Limit(spec.NewSeeded(o.Profile, uint64(client)*1_000+1), serveAccesses(o))
	defer w.Close()
	var batches [][]serve.Record
	cur := make([]serve.Record, 0, serveBatchRecords)
	for {
		b, ok := w.Next()
		if !ok {
			break
		}
		for _, a := range b {
			cur = append(cur, serve.Record{Op: serve.OpAccess, Addr: a.Addr, Write: a.Write})
			if len(cur) == serveBatchRecords {
				batches = append(batches, cur)
				cur = make([]serve.Record, 0, serveBatchRecords)
			}
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// runServeCell drives one lockstep serving run: serveClients clients
// round-robin one batch each per round, then the driver pumps
// pumpsPerRound times. With pumpsPerRound 0 the driver instead drains
// the queue completely each round (service keeps up — the coalescing
// study); a positive value caps service so the queue grows and
// admission control sheds (the backpressure study). Shed batches are
// dropped, as a non-retrying client would.
func runServeCell(o Options, spec workloads.Spec, queueRecords, coalesce, pumpsPerRound int) serveLedger {
	probe := spec.New(o.Profile)
	foot := probe.FootprintBytes()
	probe.Close()
	mcfg := memsim.DefaultConfig(foot, foot/5, o.Profile.PageSize())
	mcfg.CacheLines = 0
	sys := core.NewSystem(core.SystemConfig{Machine: mcfg, Policy: core.Config{Seed: o.Profile.Seed}})
	// Never Start()ed: no sampling/migration goroutines, so the machine
	// state after the run is a pure function of the submitted traffic.

	cb := &countingBackend{inner: serve.NewSystemBackend(sys)}
	srv := serve.NewServer(serve.Config{
		Backend:         cb,
		QueueRecords:    queueRecords,
		CoalesceRecords: coalesce,
	})

	streams := make([][][]serve.Record, serveClients)
	for i := range streams {
		streams[i] = serveBatches(o, spec, i)
	}

	var led serveLedger
	var seq uint64
	for remaining := true; remaining; {
		remaining = false
		for i := range streams {
			if len(streams[i]) == 0 {
				continue
			}
			remaining = true
			recs := streams[i][0]
			streams[i] = streams[i][1:]
			seq++
			led.submitted++
			err := srv.Submit(0, seq, recs, func(r serve.Result) {
				if r.Err != nil {
					led.rejected++
				} else {
					led.acked++
				}
			})
			switch {
			case err == nil:
			case errors.Is(err, serve.ErrOverloaded):
				led.shed++
			default:
				led.rejected++
			}
		}
		if q := srv.QueuedRecords(0); q > led.peakQueue {
			led.peakQueue = q
		}
		if pumpsPerRound <= 0 {
			for srv.Pump(0) > 0 {
			}
		} else {
			for p := 0; p < pumpsPerRound; p++ {
				srv.Pump(0)
			}
		}
	}
	srv.Drain()
	led.leftover = srv.QueuedRecords(0)
	led.passes, led.records = cb.passes, cb.records
	led.invErr = sys.Machine().CheckInvariants()
	return led
}

// ServeBench runs the serving-frontend study in deterministic lockstep:
// the same Server core the network layer drives, fed synchronously
// (Submit + Pump, no goroutines), so the coalescing and
// admission-control ledgers are exact integer counts.
//
// The backpressure table fixes the coalescing cap at one batch per pump
// and sweeps the ingress-queue bound while clients submit twice as fast
// as the pump retires: a small bound sheds aggressively with a shallow
// queue, a large one buffers more and sheds less, and in every cell
// submitted == acked + shed + rejected with nothing queued after Drain.
// The coalescing table lets service keep up and sweeps the coalescing
// cap: backend passes shrink as more records merge per pass while the
// records applied stay constant.
func ServeBench() Experiment {
	return Experiment{
		ID:    "servebench",
		Title: "Serving frontend: lockstep coalescing and admission-control ledgers",
		Paper: "the kernel prototype's hot-page tracking amortizes per-access work into batched scans; the serving frontend must amortize per-record work into coalesced passes and bound ingress memory under overload",
		Run: func(o Options) []textplot.Table {
			spec, err := workloads.ByName("YCSB")
			if err != nil {
				panic(err)
			}

			inv := func(l serveLedger) string {
				if l.invErr != nil {
					return l.invErr.Error()
				}
				if l.leftover != 0 {
					return fmt.Sprintf("%d records leaked past Drain", l.leftover)
				}
				if l.acked+l.shed+l.rejected != l.submitted {
					return "ledger does not balance"
				}
				return "ok"
			}

			back := textplot.Table{
				Title: fmt.Sprintf("admission control under 2x overcommit (%d clients, %d-record batches, 1 pump/round)",
					serveClients, serveBatchRecords),
				Header: []string{"queue cap", "submitted", "acked", "shed", "rejected", "peak queued", "ledger"},
				Note:   "lockstep: clients submit 8 batches/round, the pump retires up to 4; shed batches are dropped at the door (ErrOverloaded), never queued",
			}
			for _, qcap := range serveQueueSweep(o) {
				// Coalesce 4 batches per pump against 8 submitted per
				// round: deterministic 2x overcommit.
				l := runServeCell(o, spec, qcap, 4*serveBatchRecords, 1)
				o.logf("  servebench/backpressure q=%d: submitted=%d acked=%d shed=%d peak=%d",
					qcap, l.submitted, l.acked, l.shed, l.peakQueue)
				back.AddRow(fmt.Sprintf("%d", qcap), fmt.Sprintf("%d", l.submitted),
					fmt.Sprintf("%d", l.acked), fmt.Sprintf("%d", l.shed),
					fmt.Sprintf("%d", l.rejected), fmt.Sprintf("%d", l.peakQueue), inv(l))
			}

			coal := textplot.Table{
				Title:  "coalescing: records merged per backend pass (service keeps up)",
				Header: []string{"coalesce cap", "batches", "backend passes", "records applied", "records/pass", "ledger"},
				Note:   "one pass is one backend AccessBatch call; the cap bounds how many queued batches a pump merges into it",
			}
			for _, ccap := range serveCoalesceSweep(o) {
				l := runServeCell(o, spec, 1<<20, ccap, 0)
				perPass := float64(l.records) / float64(l.passes)
				o.logf("  servebench/coalesce cap=%d: passes=%d records=%d",
					ccap, l.passes, l.records)
				coal.AddRow(fmt.Sprintf("%d", ccap), fmt.Sprintf("%d", l.acked),
					fmt.Sprintf("%d", l.passes), fmt.Sprintf("%d", l.records),
					perPass, inv(l))
			}
			return []textplot.Table{back, coal}
		},
	}
}
