package exp

import (
	"fmt"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/policies"
	"artmem/internal/sched"
	"artmem/internal/textplot"
	"artmem/internal/workloads"
)

// Tiers is the N-tier chain crossover study (DESIGN.md §13). It is not
// a paper figure: it answers the two questions the chain subsystem
// exists for. First, when does a middle CXL tier pay — at which DRAM
// scarcity does DRAM/CXL/PM beat DRAM/PM, and when is the third tier
// pure migration overhead? Second, how much re-migration does
// non-exclusive (Nomad-style) migration avoid — on a phase-shifting
// workload, what share of demotions complete as free shadow discards,
// and how many migrated bytes do the shadows save?
//
// Every cell replays through harness.RunTiered (one pretrained ArtMem
// agent per tier boundary) and the shared scheduler cache, so the study
// is cacheable and parallel-replay deterministic like every other
// experiment.
func Tiers() Experiment {
	return Experiment{
		ID:    "tiers",
		Title: "Tier-chain study: CXL middle-tier crossover and non-exclusive migration",
		Paper: "not in the paper — validates the N-tier subsystem: 3-tier pays where DRAM is scarce; shadows turn re-demotions into free discards",
		Run: func(o Options) []textplot.Table {
			works := []string{"S2", "YCSB"}
			dramPcts := []float64{6.25, 12.5, 25, 50}
			if o.Quick {
				works = works[:1]
				dramPcts = []float64{12.5, 50}
			}

			g := o.newGrid()

			// Crossover sweep: 2-tier vs 3-tier at each DRAM scarcity.
			// The CXL tier holds a fixed 25% of the footprint; what varies
			// is how much of the hot set spills past DRAM.
			type key struct {
				wi, pi int
				tiers  int
			}
			cell := map[key]int{}
			for wi, w := range works {
				for pi, pct := range dramPcts {
					two := fmt.Sprintf("DRAM:cap=%g%%/PM", pct)
					three := fmt.Sprintf("DRAM:cap=%g%%/CXL:cap=25%%/PM", pct)
					cell[key{wi, pi, 2}] = o.tieredCell(g, w, harness.Config{TierChain: two})
					cell[key{wi, pi, 3}] = o.tieredCell(g, w, harness.Config{TierChain: three})
				}
			}

			// Non-exclusive study on a scarce 3-tier chain, exclusive vs
			// shadow-copy. PingPong is the pattern shadows exist for: a
			// read-mostly hot set alternating between two regions, so
			// pages heat, cool, and reheat while their shadows stay
			// clean. S2 is the write-heavy contrast — its stores
			// invalidate shadows before demotion can use them.
			const neChain = "DRAM:cap=12.5%/CXL:cap=25%/PM"
			neWorks := []string{"PingPong", "S2"}
			ne := map[[2]int]int{} // workload × {0: exclusive, 1: non-exclusive}
			for wi, w := range neWorks {
				mkW := o.neWorkload(w)
				ne[[2]int{wi, 0}] = o.tieredCellW(g, w, mkW, harness.Config{TierChain: neChain})
				ne[[2]int{wi, 1}] = o.tieredCellW(g, w, mkW, harness.Config{
					TierChain: neChain, NonExclusive: true})
			}
			res := g.run()

			cross := textplot.Table{
				Title:  "Middle-tier crossover: 3-tier (DRAM/CXL/PM) makespan normalized to 2-tier (DRAM/PM)",
				Header: []string{"workload", "DRAM cap", "2-tier exec (ms)", "3-tier / 2-tier", "DRAM ratio (2t)", "DRAM ratio (3t)", "CXL accesses"},
				Note:   "<1 means the CXL tier pays: overflow heat lands at 180ns instead of 323ns. The win shrinks as DRAM grows and the hot set fits without help",
			}
			for wi, w := range works {
				for pi, pct := range dramPcts {
					two := res[cell[key{wi, pi, 2}]]
					three := res[cell[key{wi, pi, 3}]]
					var cxl uint64
					if three.Tiers != nil && len(three.Tiers.Accesses) == 3 {
						cxl = three.Tiers.Accesses[1]
					}
					cross.AddRow(w, fmt.Sprintf("%g%%", pct),
						float64(two.ExecNs)/1e6,
						normalize(float64(three.ExecNs), float64(two.ExecNs)),
						two.DRAMRatio, three.DRAMRatio, int(cxl))
				}
			}

			shadow := textplot.Table{
				Title:  "Non-exclusive migration on " + neChain + ": demotions completed as free shadow discards",
				Header: []string{"workload", "mode", "migrations", "migrated MB", "shadow discards", "discard share", "invalidates", "exec (ms)"},
				Note:   "a discard is a demotion whose bytes never move: the clean shadow left by the earlier promotion is still valid. Discard share = discards / demotions",
			}
			for wi, w := range neWorks {
				for mi, mode := range []string{"exclusive", "non-exclusive"} {
					r := res[ne[[2]int{wi, mi}]]
					var disc, inval uint64
					if r.Tiers != nil {
						disc, inval = r.Tiers.ShadowDiscards, r.Tiers.ShadowInvalidates
					}
					share := 0.0
					if r.Demotions > 0 {
						share = float64(disc) / float64(r.Demotions)
					}
					shadow.AddRow(w, mode, int(r.Migrations),
						float64(r.MigratedBytes)/(1<<20), int(disc), share,
						int(inval), float64(r.ExecNs)/1e6)
				}
			}
			return []textplot.Table{cross, shadow}
		},
	}
}

// tieredCell declares one RunTiered cell over a registry workload.
func (o Options) tieredCell(g *grid, workload string, cfg harness.Config) int {
	return o.tieredCellW(g, workload, func() workloads.Workload {
		spec, err := workloads.ByName(workload)
		if err != nil {
			panic(err)
		}
		return spec.New(o.Profile)
	}, cfg)
}

// tieredCellW declares one RunTiered cell: the workload replayed on
// cfg.TierChain with one pretrained ArtMem agent per tier boundary
// (seeds decorrelated per boundary, the way ShardedSystem offsets
// per-shard seeds). The cache key carries the chain and shadow mode
// through cfg's canonical form plus a "tiered" extra separating these
// cells from legacy Run cells; name must identify the workload the way
// a registry name does.
func (o Options) tieredCellW(g *grid, name string, mkW func() workloads.Workload, cfg harness.Config) int {
	if cfg.PageSize == 0 {
		cfg.PageSize = o.Profile.PageSize()
	}
	id := artmemID("Liblinear", 0, core.Config{}) + "|per-boundary"
	return g.addCell(sched.Key(name, o.Profile, id, cfg, "tiered"), func() harness.Result {
		mig, thr := TrainTables(o, "Liblinear", 0)
		mk := func(b int) policies.EnvPolicy {
			c := core.Config{PretrainedMig: mig, PretrainedThr: thr}
			c.Seed += uint64(b)
			return core.New(c)
		}
		res := harness.RunTiered(mkW(), mk, cfg)
		o.logf("  %s@%s: exec=%.1fms ratio=%.3f mig=%d disc=%d",
			res.Workload, cfg.TierChain, float64(res.ExecNs)/1e6,
			res.DRAMRatio, res.Migrations, res.Tiers.ShadowDiscards)
		return res
	})
}

// neWorkload returns the constructor for a non-exclusive-study
// workload: the registry workloads by name, plus the PingPong pattern —
// a read-mostly hot set alternating between two regions each phase, the
// access shape where demote-onto-shadow pays.
func (o Options) neWorkload(name string) func() workloads.Workload {
	if name != "PingPong" {
		return func() workloads.Workload {
			spec, err := workloads.ByName(name)
			if err != nil {
				panic(err)
			}
			return spec.New(o.Profile)
		}
	}
	return func() workloads.Workload {
		p := o.Profile
		foot := p.Bytes(32)
		hot := p.Bytes(6)
		const phases = 6
		pat := &workloads.Pattern{Name: "PingPong", Footprint: foot}
		for i := 0; i < phases; i++ {
			start := foot / 8
			if i%2 == 1 {
				start = foot * 5 / 8
			}
			pat.Phases = append(pat.Phases, workloads.Phase{
				Name:      fmt.Sprintf("phase-%d", i),
				Accesses:  p.PatternAccesses / phases,
				WriteFrac: 0.02,
				Regions: []workloads.Region{
					{Start: start, Size: hot, Weight: 0.95},
					{Start: 0, Size: foot, Weight: 0.05},
				},
			})
		}
		return workloads.WithInitSweep(pat.NewWorkload(p.Seed), 0)
	}
}
