package exp

import (
	"fmt"
	"math"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/rl"
	"artmem/internal/stats"
	"artmem/internal/textplot"
)

// Fig12 reproduces the reward-customization study: migrations over time
// on XSBench with the latency-based reward versus the DRAM-access-ratio
// reward.
func Fig12() Experiment {
	return Experiment{
		ID:    "fig12",
		Title: "Figure 12: migrations over time, latency-based vs ratio-based reward (XSBench)",
		Paper: "latency-based reward adjusts migration decisions with a delay and loses ~3.4% performance on average",
		Run: func(o Options) []textplot.Table {
			ratio := harness.Ratio{Fast: 1, Slow: 4}
			const bins = 24
			t := textplot.Table{
				Title:  "Pages migrated per time slice (XSBench)",
				Header: []string{"reward", "migrations over time", "total", "exec (ms)"},
			}
			var ratioExec, latExec float64
			for _, v := range []struct {
				label string
				cfg   core.Config
			}{
				{"DRAM-ratio", core.Config{}},
				{"latency", core.Config{LatencyReward: true}},
			} {
				r := o.runOne("XSBench", o.ArtMemPolicy(v.cfg), harness.Config{
					Ratio: ratio, CollectSeries: true})
				series := r.MigrationSeries.Bin(0, r.ExecNs, bins)
				t.AddRow(v.label, textplot.Sparkline(series),
					fmt.Sprintf("%d", r.Migrations),
					float64(r.ExecNs)/1e6)
				if v.cfg.LatencyReward {
					latExec = float64(r.ExecNs)
				} else {
					ratioExec = float64(r.ExecNs)
				}
			}
			t.Note = fmt.Sprintf("latency reward runtime = %.3fx of ratio reward",
				normalize(latExec, ratioExec))
			return []textplot.Table{t}
		},
	}
}

// Fig13 reproduces the RL-algorithm comparison: Q-learning vs SARSA
// across scenarios and memory ratios.
func Fig13() Experiment {
	return Experiment{
		ID:    "fig13",
		Title: "Figure 13: Q-learning vs SARSA",
		Paper: "both algorithms perform similarly across workloads and ratios",
		Run: func(o Options) []textplot.Table {
			names := []string{"S1", "S3", "XSBench", "CC"}
			if o.Quick {
				names = []string{"S1", "XSBench"}
			}
			t := textplot.Table{
				Title:  "Mean runtime improvement over Static (geomean across ratios; higher is better)",
				Header: append([]string{"algorithm"}, names...),
			}
			// Expected SARSA is this repository's extension beyond the
			// paper's two algorithms.
			for _, alg := range []rl.Algorithm{rl.QLearning, rl.SARSA, rl.ExpectedSARSA} {
				cells := []any{alg.String()}
				for _, n := range names {
					var speedups []float64
					for _, ratio := range o.ratios() {
						static := o.runOne(n, mustPolicy("Static"), harness.Config{Ratio: ratio})
						mig, thr := TrainTables(o, "Liblinear", alg)
						pol := core.New(core.Config{Algorithm: alg,
							PretrainedMig: mig, PretrainedThr: thr})
						r := o.runOne(n, pol, harness.Config{Ratio: ratio})
						speedups = append(speedups,
							normalize(float64(static.ExecNs), float64(r.ExecNs)))
					}
					cells = append(cells, stats.GeoMean(speedups))
				}
				t.AddRow(cells...)
			}
			return []textplot.Table{t}
		},
	}
}

// Fig14 reproduces the robustness study: a Q-table trained on workload
// i is reused to run workload j; the matrix reports the slowdown versus
// training on workload j itself.
func Fig14() Experiment {
	return Experiment{
		ID:    "fig14",
		Title: "Figure 14: sensitivity to the initial (training) application",
		Paper: "only 7 of 25 train/run combinations degrade more than 10%",
		Run: func(o Options) []textplot.Table {
			names := []string{"Liblinear", "XSBench", "CC", "YCSB", "DLRM"}
			if o.Quick {
				names = []string{"Liblinear", "XSBench", "CC"}
			}
			ratio := harness.Ratio{Fast: 1, Slow: 4}
			// Self-trained reference runtimes.
			self := map[string]float64{}
			for _, n := range names {
				mig, thr := TrainTables(o, n, rl.QLearning)
				pol := core.New(core.Config{PretrainedMig: mig, PretrainedThr: thr})
				self[n] = float64(o.runOne(n, pol, harness.Config{Ratio: ratio}).ExecNs)
			}
			t := textplot.Table{
				Title:  "Slowdown (%) vs self-trained Q-table (rows: trained on; cols: run on)",
				Header: append([]string{"trained on"}, names...),
			}
			over10 := 0
			for _, tr := range names {
				mig, thr := TrainTables(o, tr, rl.QLearning)
				cells := []any{tr}
				for _, run := range names {
					pol := core.New(core.Config{PretrainedMig: mig, PretrainedThr: thr})
					r := o.runOne(run, pol, harness.Config{Ratio: ratio})
					slow := 100 * (float64(r.ExecNs)/self[run] - 1)
					if slow > 10 {
						over10++
					}
					cells = append(cells, fmt.Sprintf("%+.1f", slow))
				}
				t.AddRow(cells...)
			}
			t.Note = fmt.Sprintf("%d of %d combinations degrade more than 10%%",
				over10, len(names)*len(names))

			// §6.3.6 second part: retraining cost under mismatched
			// initialization — iterations (repeated runs carrying the
			// Q-tables forward) to reach 95%% of the self-trained runtime.
			conv := textplot.Table{
				Title:  "Retraining iterations to reach 95% of self-trained performance",
				Header: []string{"trained on", "run on", "iterations"},
				Note:   "paper: between 1 and 6 iterations, average 3",
			}
			pairs := [][2]string{{names[1], names[0]}, {names[2], names[1]}, {names[0], names[2]}}
			for _, pair := range pairs {
				mig, thr := TrainTables(o, pair[0], rl.QLearning)
				target := self[pair[1]] * 1.05
				iters := 0
				for ; iters < 6; iters++ {
					pol := core.New(core.Config{PretrainedMig: mig, PretrainedThr: thr})
					r := o.runOne(pair[1], pol, harness.Config{Ratio: ratio})
					mig, thr = pol.QTables()
					if float64(r.ExecNs) <= target {
						iters++
						break
					}
				}
				conv.AddRow(pair[0], pair[1], fmt.Sprintf("%d", iters))
			}
			return []textplot.Table{t, conv}
		},
	}
}

// Fig15 reproduces the hyperparameter sensitivity sweeps: α, γ, ε,
// sampling period, β, and migration interval.
func Fig15() Experiment {
	return Experiment{
		ID:    "fig15",
		Title: "Figure 15: hyperparameter sensitivity",
		Paper: "optima: α=e⁻², γ=e⁻¹, ε=0.3, β∈[8,10], migration interval 5–15s (scaled: 5–15ms)",
		Run: func(o Options) []textplot.Table {
			// Patterns where adaptive placement clearly matters, so the
			// knobs' effects are visible above the Static floor.
			workloadsUnder := []string{"S3", "S1"}
			if o.Quick {
				workloadsUnder = []string{"S3"}
			}
			ratio := harness.Ratio{Fast: 1, Slow: 4}
			staticNs := map[string]float64{}
			for _, n := range workloadsUnder {
				staticNs[n] = float64(o.runOne(n, mustPolicy("Static"),
					harness.Config{Ratio: ratio}).ExecNs)
			}
			// score returns the geomean speedup over Static for a config.
			score := func(cfg core.Config) float64 {
				var sp []float64
				for _, n := range workloadsUnder {
					r := o.runOne(n, o.ArtMemPolicy(cfg), harness.Config{Ratio: ratio})
					sp = append(sp, normalize(staticNs[n], float64(r.ExecNs)))
				}
				return stats.GeoMean(sp)
			}
			var out []textplot.Table
			sweep := func(title, unit string, vals []float64, mk func(v float64) core.Config) {
				t := textplot.Table{
					Title:  title,
					Header: []string{unit, "speedup vs Static"},
				}
				for _, v := range vals {
					t.AddRow(textplot.FormatFloat(v), score(mk(v)))
				}
				out = append(out, t)
			}
			sweep("(a) learning rate α", "alpha",
				[]float64{math.Exp(-1), math.Exp(-2), math.Exp(-3)},
				func(v float64) core.Config { return core.Config{Alpha: v} })
			sweep("(b) discount factor γ", "gamma",
				[]float64{math.Exp(-0.5), math.Exp(-1), math.Exp(-2)},
				func(v float64) core.Config { return core.Config{Gamma: v} })
			sweep("(c) exploration ε", "epsilon",
				[]float64{0.1, 0.3, 0.5},
				func(v float64) core.Config { return core.Config{Epsilon: v} })
			sweep("(d) sampling period", "period",
				[]float64{5, 10, 40},
				func(v float64) core.Config { return core.Config{SamplePeriod: uint64(v)} })
			sweep("(e) target ratio β", "beta",
				[]float64{6, 8, 9, 10},
				func(v float64) core.Config { return core.Config{Beta: v} })
			sweep("(f) migration interval (ms; paper: seconds)", "interval",
				[]float64{1, 5, 10, 15, 30},
				func(v float64) core.Config {
					return core.Config{TickInterval: int64(v * 1e6)}
				})
			return out
		},
	}
}

// LiblinearSampling reproduces the §6.2 deep-dive on Liblinear: the
// ramp-up of the fast-tier access ratio is limited by sampling accuracy,
// and "by increasing the sampling frequency, at the cost of an
// additional 5.91% overhead ... ArtMem achieves a further 17.11%
// performance improvement on Liblinear".
func LiblinearSampling() Experiment {
	return Experiment{
		ID:    "liblinear-sampling",
		Title: "§6.2: sampling frequency vs Liblinear performance",
		Paper: "denser sampling costs ~6% more overhead and buys ~17% runtime on Liblinear",
		Run: func(o Options) []textplot.Table {
			ratio := harness.Ratio{Fast: 1, Slow: 4}
			t := textplot.Table{
				Title:  "ArtMem on Liblinear at 1:4 with varying PEBS sampling period",
				Header: []string{"sampling period", "exec (ms)", "vs period 10", "bg CPU %"},
			}
			var base float64
			for _, period := range []uint64{10, 5, 2} {
				r := o.runOne("Liblinear",
					o.ArtMemPolicy(core.Config{SamplePeriod: period}),
					harness.Config{Ratio: ratio})
				if base == 0 {
					base = float64(r.ExecNs)
				}
				t.AddRow(fmt.Sprintf("%d", period),
					float64(r.ExecNs)/1e6,
					normalize(float64(r.ExecNs), base),
					fmt.Sprintf("%.2f", 100*r.OverheadFraction()))
			}
			return []textplot.Table{t}
		},
	}
}

// PageSize is an extension experiment (no paper counterpart): sweep the
// migration granularity. The paper fixes 2MB huge pages (§5, "we use
// 2MB huge pages as the default page migration unit"); the simulator
// makes the trade-off measurable — smaller pages track hot data more
// precisely but pay more per-page fixed costs, larger pages amplify
// migration volume.
func PageSize() Experiment {
	return Experiment{
		ID:    "pagesize",
		Title: "extension: migration page-size sensitivity (XSBench, ArtMem)",
		Paper: "no counterpart — the paper fixes 2MB pages; this sweeps the scaled equivalents",
		Run: func(o Options) []textplot.Table {
			ratio := harness.Ratio{Fast: 1, Slow: 4}
			base := o.Profile.PageSize()
			t := textplot.Table{
				Title:  "ArtMem on XSBench at 1:4 with varying page size",
				Header: []string{"page size (KB)", "exec (ms)", "migrated MB", "DRAM ratio"},
			}
			seen := map[int64]bool{}
			for _, ps := range []int64{base / 4, base, base * 4} {
				if ps < 4096 {
					ps = 4096
				}
				if seen[ps] {
					continue
				}
				seen[ps] = true
				r := o.runOne("XSBench", o.ArtMemPolicy(core.Config{}),
					harness.Config{Ratio: ratio, PageSize: ps})
				t.AddRow(fmt.Sprintf("%d", ps>>10),
					float64(r.ExecNs)/1e6,
					float64(r.MigratedBytes)/(1<<20),
					r.DRAMRatio)
			}
			return []textplot.Table{t}
		},
	}
}
