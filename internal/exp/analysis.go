package exp

import (
	"fmt"
	"math"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/rl"
	"artmem/internal/stats"
	"artmem/internal/textplot"
)

// Fig12 reproduces the reward-customization study: migrations over time
// on XSBench with the latency-based reward versus the DRAM-access-ratio
// reward.
func Fig12() Experiment {
	return Experiment{
		ID:    "fig12",
		Title: "Figure 12: migrations over time, latency-based vs ratio-based reward (XSBench)",
		Paper: "latency-based reward adjusts migration decisions with a delay and loses ~3.4% performance on average",
		Run: func(o Options) []textplot.Table {
			ratio := harness.Ratio{Fast: 1, Slow: 4}
			const bins = 24
			variants := []struct {
				label string
				cfg   core.Config
			}{
				{"DRAM-ratio", core.Config{}},
				{"latency", core.Config{LatencyReward: true}},
			}
			g := o.newGrid()
			cell := make([]int, len(variants))
			for vi, v := range variants {
				cell[vi] = g.add("XSBench", o.artmemSpec(v.cfg), harness.Config{
					Ratio: ratio, CollectSeries: true})
			}
			res := g.run()
			t := textplot.Table{
				Title:  "Pages migrated per time slice (XSBench)",
				Header: []string{"reward", "migrations over time", "total", "exec (ms)"},
			}
			var ratioExec, latExec float64
			for vi, v := range variants {
				r := res[cell[vi]]
				series := r.MigrationSeries.Bin(0, r.ExecNs, bins)
				t.AddRow(v.label, textplot.Sparkline(series),
					fmt.Sprintf("%d", r.Migrations),
					float64(r.ExecNs)/1e6)
				if v.cfg.LatencyReward {
					latExec = float64(r.ExecNs)
				} else {
					ratioExec = float64(r.ExecNs)
				}
			}
			t.Note = fmt.Sprintf("latency reward runtime = %.3fx of ratio reward",
				normalize(latExec, ratioExec))
			return []textplot.Table{t}
		},
	}
}

// Fig13 reproduces the RL-algorithm comparison: Q-learning vs SARSA
// across scenarios and memory ratios.
func Fig13() Experiment {
	return Experiment{
		ID:    "fig13",
		Title: "Figure 13: Q-learning vs SARSA",
		Paper: "both algorithms perform similarly across workloads and ratios",
		Run: func(o Options) []textplot.Table {
			names := []string{"S1", "S3", "XSBench", "CC"}
			if o.Quick {
				names = []string{"S1", "XSBench"}
			}
			// Expected SARSA is this repository's extension beyond the
			// paper's two algorithms.
			algs := []rl.Algorithm{rl.QLearning, rl.SARSA, rl.ExpectedSARSA}
			ratios := o.ratios()
			g := o.newGrid()
			// Static references per workload × ratio (shared across
			// algorithms by the cache), then one cell per algorithm point.
			static := make([][]int, len(names))
			for ni, n := range names {
				static[ni] = make([]int, len(ratios))
				for ri, ratio := range ratios {
					static[ni][ri] = g.add(n, baselineSpec("Static"), harness.Config{Ratio: ratio})
				}
			}
			cell := make([][][]int, len(algs))
			for ai, alg := range algs {
				cell[ai] = make([][]int, len(names))
				for ni, n := range names {
					cell[ai][ni] = make([]int, len(ratios))
					for ri, ratio := range ratios {
						cell[ai][ni][ri] = g.add(n,
							o.artmemTrainedSpec("Liblinear", alg, core.Config{}),
							harness.Config{Ratio: ratio})
					}
				}
			}
			res := g.run()
			t := textplot.Table{
				Title:  "Mean runtime improvement over Static (geomean across ratios; higher is better)",
				Header: append([]string{"algorithm"}, names...),
			}
			for ai, alg := range algs {
				cells := []any{alg.String()}
				for ni := range names {
					var speedups []float64
					for ri := range ratios {
						speedups = append(speedups, normalize(
							float64(res[static[ni][ri]].ExecNs),
							float64(res[cell[ai][ni][ri]].ExecNs)))
					}
					cells = append(cells, stats.GeoMean(speedups))
				}
				t.AddRow(cells...)
			}
			return []textplot.Table{t}
		},
	}
}

// Fig14 reproduces the robustness study: a Q-table trained on workload
// i is reused to run workload j; the matrix reports the slowdown versus
// training on workload j itself.
func Fig14() Experiment {
	return Experiment{
		ID:    "fig14",
		Title: "Figure 14: sensitivity to the initial (training) application",
		Paper: "only 7 of 25 train/run combinations degrade more than 10%",
		Run: func(o Options) []textplot.Table {
			names := []string{"Liblinear", "XSBench", "CC", "YCSB", "DLRM"}
			if o.Quick {
				names = []string{"Liblinear", "XSBench", "CC"}
			}
			ratio := harness.Ratio{Fast: 1, Slow: 4}
			g := o.newGrid()
			// The full train × run matrix; its diagonal doubles as the
			// self-trained reference (identical cell keys — the cache
			// computes each diagonal entry once).
			cell := make([][]int, len(names))
			for ti, tr := range names {
				cell[ti] = make([]int, len(names))
				for ni, run := range names {
					cell[ti][ni] = g.add(run,
						o.artmemTrainedSpec(tr, rl.QLearning, core.Config{}),
						harness.Config{Ratio: ratio})
				}
			}
			res := g.run()
			// Self-trained reference runtimes (the matrix diagonal).
			self := map[string]float64{}
			for ni, n := range names {
				self[n] = float64(res[cell[ni][ni]].ExecNs)
			}
			t := textplot.Table{
				Title:  "Slowdown (%) vs self-trained Q-table (rows: trained on; cols: run on)",
				Header: append([]string{"trained on"}, names...),
			}
			over10 := 0
			for ti, tr := range names {
				cells := []any{tr}
				for ni, run := range names {
					r := res[cell[ti][ni]]
					slow := 100 * (float64(r.ExecNs)/self[run] - 1)
					if slow > 10 {
						over10++
					}
					cells = append(cells, fmt.Sprintf("%+.1f", slow))
				}
				t.AddRow(cells...)
			}
			t.Note = fmt.Sprintf("%d of %d combinations degrade more than 10%%",
				over10, len(names)*len(names))

			// §6.3.6 second part: retraining cost under mismatched
			// initialization — iterations (repeated runs carrying the
			// Q-tables forward) to reach 95%% of the self-trained runtime.
			conv := textplot.Table{
				Title:  "Retraining iterations to reach 95% of self-trained performance",
				Header: []string{"trained on", "run on", "iterations"},
				Note:   "paper: between 1 and 6 iterations, average 3",
			}
			pairs := [][2]string{{names[1], names[0]}, {names[2], names[1]}, {names[0], names[2]}}
			for _, pair := range pairs {
				mig, thr := TrainTables(o, pair[0], rl.QLearning)
				target := self[pair[1]] * 1.05
				iters := 0
				for ; iters < 6; iters++ {
					pol := core.New(core.Config{PretrainedMig: mig, PretrainedThr: thr})
					r := o.runOne(pair[1], pol, harness.Config{Ratio: ratio})
					mig, thr = pol.QTables()
					if float64(r.ExecNs) <= target {
						iters++
						break
					}
				}
				conv.AddRow(pair[0], pair[1], fmt.Sprintf("%d", iters))
			}
			return []textplot.Table{t, conv}
		},
	}
}

// Fig15 reproduces the hyperparameter sensitivity sweeps: α, γ, ε,
// sampling period, β, and migration interval.
func Fig15() Experiment {
	return Experiment{
		ID:    "fig15",
		Title: "Figure 15: hyperparameter sensitivity",
		Paper: "optima: α=e⁻², γ=e⁻¹, ε=0.3, β∈[8,10], migration interval 5–15s (scaled: 5–15ms)",
		Run: func(o Options) []textplot.Table {
			// Patterns where adaptive placement clearly matters, so the
			// knobs' effects are visible above the Static floor.
			workloadsUnder := []string{"S3", "S1"}
			if o.Quick {
				workloadsUnder = []string{"S3"}
			}
			ratio := harness.Ratio{Fast: 1, Slow: 4}
			g := o.newGrid()
			static := make([]int, len(workloadsUnder))
			for ni, n := range workloadsUnder {
				static[ni] = g.add(n, baselineSpec("Static"), harness.Config{Ratio: ratio})
			}
			// Declare every sweep point's cells first, run the whole grid
			// once, then render each sweep table from the indexed results.
			type point struct {
				val   float64
				cells []int // one per workload under test
			}
			declare := func(vals []float64, mk func(v float64) core.Config) *[]point {
				pts := make([]point, len(vals))
				for vi, v := range vals {
					pts[vi].val = v
					for _, n := range workloadsUnder {
						pts[vi].cells = append(pts[vi].cells,
							g.add(n, o.artmemSpec(mk(v)), harness.Config{Ratio: ratio}))
					}
				}
				return &pts
			}
			var out []textplot.Table
			var res []harness.Result
			// score returns the geomean speedup over Static for a point.
			score := func(p point) float64 {
				var sp []float64
				for ni := range workloadsUnder {
					sp = append(sp, normalize(
						float64(res[static[ni]].ExecNs),
						float64(res[p.cells[ni]].ExecNs)))
				}
				return stats.GeoMean(sp)
			}
			render := func(title, unit string, pts *[]point) {
				t := textplot.Table{
					Title:  title,
					Header: []string{unit, "speedup vs Static"},
				}
				for _, p := range *pts {
					t.AddRow(textplot.FormatFloat(p.val), score(p))
				}
				out = append(out, t)
			}
			sweeps := []struct {
				title, unit string
				pts         *[]point
			}{
				{"(a) learning rate α", "alpha", declare(
					[]float64{math.Exp(-1), math.Exp(-2), math.Exp(-3)},
					func(v float64) core.Config { return core.Config{Alpha: v} })},
				{"(b) discount factor γ", "gamma", declare(
					[]float64{math.Exp(-0.5), math.Exp(-1), math.Exp(-2)},
					func(v float64) core.Config { return core.Config{Gamma: v} })},
				{"(c) exploration ε", "epsilon", declare(
					[]float64{0.1, 0.3, 0.5},
					func(v float64) core.Config { return core.Config{Epsilon: v} })},
				{"(d) sampling period", "period", declare(
					[]float64{5, 10, 40},
					func(v float64) core.Config { return core.Config{SamplePeriod: uint64(v)} })},
				{"(e) target ratio β", "beta", declare(
					[]float64{6, 8, 9, 10},
					func(v float64) core.Config { return core.Config{Beta: v} })},
				{"(f) migration interval (ms; paper: seconds)", "interval", declare(
					[]float64{1, 5, 10, 15, 30},
					func(v float64) core.Config {
						return core.Config{TickInterval: int64(v * 1e6)}
					})},
			}
			res = g.run()
			for _, s := range sweeps {
				render(s.title, s.unit, s.pts)
			}
			return out
		},
	}
}

// LiblinearSampling reproduces the §6.2 deep-dive on Liblinear: the
// ramp-up of the fast-tier access ratio is limited by sampling accuracy,
// and "by increasing the sampling frequency, at the cost of an
// additional 5.91% overhead ... ArtMem achieves a further 17.11%
// performance improvement on Liblinear".
func LiblinearSampling() Experiment {
	return Experiment{
		ID:    "liblinear-sampling",
		Title: "§6.2: sampling frequency vs Liblinear performance",
		Paper: "denser sampling costs ~6% more overhead and buys ~17% runtime on Liblinear",
		Run: func(o Options) []textplot.Table {
			ratio := harness.Ratio{Fast: 1, Slow: 4}
			periods := []uint64{10, 5, 2}
			g := o.newGrid()
			cell := make([]int, len(periods))
			for pi, period := range periods {
				cell[pi] = g.add("Liblinear",
					o.artmemSpec(core.Config{SamplePeriod: period}),
					harness.Config{Ratio: ratio})
			}
			res := g.run()
			t := textplot.Table{
				Title:  "ArtMem on Liblinear at 1:4 with varying PEBS sampling period",
				Header: []string{"sampling period", "exec (ms)", "vs period 10", "bg CPU %"},
			}
			base := float64(res[cell[0]].ExecNs)
			for pi, period := range periods {
				r := res[cell[pi]]
				t.AddRow(fmt.Sprintf("%d", period),
					float64(r.ExecNs)/1e6,
					normalize(float64(r.ExecNs), base),
					fmt.Sprintf("%.2f", 100*r.OverheadFraction()))
			}
			return []textplot.Table{t}
		},
	}
}

// PageSize is an extension experiment (no paper counterpart): sweep the
// migration granularity. The paper fixes 2MB huge pages (§5, "we use
// 2MB huge pages as the default page migration unit"); the simulator
// makes the trade-off measurable — smaller pages track hot data more
// precisely but pay more per-page fixed costs, larger pages amplify
// migration volume.
func PageSize() Experiment {
	return Experiment{
		ID:    "pagesize",
		Title: "extension: migration page-size sensitivity (XSBench, ArtMem)",
		Paper: "no counterpart — the paper fixes 2MB pages; this sweeps the scaled equivalents",
		Run: func(o Options) []textplot.Table {
			ratio := harness.Ratio{Fast: 1, Slow: 4}
			base := o.Profile.PageSize()
			var sizes []int64
			seen := map[int64]bool{}
			for _, ps := range []int64{base / 4, base, base * 4} {
				if ps < 4096 {
					ps = 4096
				}
				if !seen[ps] {
					seen[ps] = true
					sizes = append(sizes, ps)
				}
			}
			g := o.newGrid()
			cell := make([]int, len(sizes))
			for si, ps := range sizes {
				cell[si] = g.add("XSBench", o.artmemSpec(core.Config{}),
					harness.Config{Ratio: ratio, PageSize: ps})
			}
			res := g.run()
			t := textplot.Table{
				Title:  "ArtMem on XSBench at 1:4 with varying page size",
				Header: []string{"page size (KB)", "exec (ms)", "migrated MB", "DRAM ratio"},
			}
			for si, ps := range sizes {
				r := res[cell[si]]
				t.AddRow(fmt.Sprintf("%d", ps>>10),
					float64(r.ExecNs)/1e6,
					float64(r.MigratedBytes)/(1<<20),
					r.DRAMRatio)
			}
			return []textplot.Table{t}
		},
	}
}
