package exp

import (
	"testing"

	"artmem/internal/harness"
)

// churnRun executes one churn cell directly (no grid) at quick scale.
func churnRunDirect(t *testing.T, o Options, clients int, slo bool) harness.Result {
	t.Helper()
	res := harness.RunChurn(churnSpecFor(o, clients, slo), churnArbiterCfg(), harness.Config{
		PageSize:        churnPageSize,
		Ratio:           harness.Ratio{Fast: 1, Slow: 4},
		Faults:          churnFaultCfg(o),
		CheckInvariants: true,
	})
	if res.InvariantErr != nil {
		t.Fatalf("invariant violated (clients=%d slo=%v): %v", clients, slo, res.InvariantErr)
	}
	return res
}

// churnCohortAggregates recomputes mean p99 and Jain over the hit
// ratios of the clients at queue positions i%3==0 — the cohort that is
// latency-class under the SLO posture — whatever class the run assigned
// them. Row 0 is the antagonist; client i is row i+1.
func churnCohortAggregates(res harness.Result) (p99 float64, jain float64) {
	var p99s, hits []float64
	for i, tr := range res.Tenants[1:] {
		if i%3 != 0 || tr.Accesses == 0 {
			continue
		}
		p99s = append(p99s, tr.P99Ns)
		hits = append(hits, tr.HitRatio)
	}
	var sum float64
	for _, v := range p99s {
		sum += v
	}
	if len(p99s) > 0 {
		p99 = sum / float64(len(p99s))
	}
	return p99, harness.JainIndex(hits)
}

// TestChurnShapeSLOBeatsFlat is the experiment's acceptance criterion:
// the latency-SLO cohort's mean p99 and Jain index must be strictly
// better with SLO arbitration than the identical cohort achieves when
// every client is batch-class — preempting the pooled batch promotion
// budget has to buy the latency tenants real tail latency.
func TestChurnShapeSLOBeatsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("churn shape runs take a while")
	}
	o := QuickOptions()
	const clients = 60
	withSLO := churnRunDirect(t, o, clients, true)
	flat := churnRunDirect(t, o, clients, false)

	sloP99 := withSLO.Churn.LatencyP99Ns
	sloJain := withSLO.Churn.JainLatency
	flatP99, flatJain := churnCohortAggregates(flat)
	if sloP99 >= flatP99 {
		t.Errorf("latency cohort p99 %.1f not strictly better than flat %.1f", sloP99, flatP99)
	}
	if sloJain <= flatJain {
		t.Errorf("latency cohort jain %.4f not strictly better than flat %.4f", sloJain, flatJain)
	}
	var preempts uint64
	for _, tr := range withSLO.Tenants[1:] {
		if tr.Class == "latency" {
			preempts += tr.Preemptions
		}
	}
	if preempts == 0 {
		t.Error("latency clients never preempted the batch pool")
	}
}

// TestChurnCompletesAtScale runs the full experiment — 100 and 1000
// tenants, both postures — end to end through the grid and checks the
// lifecycle ledger balances at every cell: every client completed,
// crashed, or was reported unadmitted, nothing wedged, and no
// invariant violation surfaced in the rendered table.
func TestChurnCompletesAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-tenant churn runs take a while")
	}
	o := QuickOptions()
	o.Quick = false // full scales (100, 1000) at quick trace lengths
	for _, n := range churnScales(o) {
		for _, slo := range []bool{true, false} {
			res := churnRunDirect(t, o, n, slo)
			c := res.Churn
			if c.Completed+c.Crashed+c.Unadmitted != n {
				t.Errorf("clients=%d slo=%v: ledger %d+%d+%d != %d",
					n, slo, c.Completed, c.Crashed, c.Unadmitted, n)
			}
			if c.UnresolvedDrains != 0 || c.Unadmitted != 0 {
				t.Errorf("clients=%d slo=%v: wedged (unresolved=%d unadmitted=%d)",
					n, slo, c.UnresolvedDrains, c.Unadmitted)
			}
			if c.PeakActive > c.Capacity {
				t.Errorf("clients=%d slo=%v: peak %d > capacity %d", n, slo, c.PeakActive, c.Capacity)
			}
		}
	}
}
