package exp

import (
	"strings"
	"sync"
	"testing"

	"artmem/internal/harness"
	"artmem/internal/sched"
	"artmem/internal/workloads"
)

// renderAll runs an experiment and joins its rendered tables, the exact
// bytes artbench would print for it.
func renderAll(e Experiment, o Options) string {
	var b strings.Builder
	for _, t := range e.Run(o) {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelTablesByteIdenticalToSerial is the determinism criterion
// from DESIGN.md §7: for a quick fig2+fig7 subset — plus the
// multi-tenant fairness experiment, whose cells run RunTenants — the
// tables rendered from a serial run and from an 8-worker run must match
// byte for byte. Each run gets a fresh cache so both actually compute
// their cells.
func TestParallelTablesByteIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs take a while")
	}
	o := QuickOptions()
	// Trimmed further than quick scale: determinism does not depend on
	// trace length, and the comparison runs every cell twice.
	o.Profile = workloads.Profile{Div: 512, PatternAccesses: 400_000, AppAccesses: 200_000, Seed: 1}

	for _, id := range []string{"fig2", "fig7", "fairness", "churn", "latency", "shardscale", "tiers"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		serial := o
		serial.Sched = sched.New(sched.Config{Workers: 1, Cache: sched.NewCache("")})
		want := renderAll(e, serial)

		par := o
		par.Sched = sched.New(sched.Config{Workers: 8, Cache: sched.NewCache("")})
		got := renderAll(e, par)

		if want != got {
			t.Errorf("%s: parallel tables differ from serial\n--- serial ---\n%s--- parallel ---\n%s",
				id, want, got)
		}
	}
}

// TestChaosGridMixedExperiments drives mixed experiments through one
// shared parallel scheduler concurrently — synthetic patterns, MEMTIS
// tuning, graph workloads with ArtMem training, and workload mixes all
// at once, twice each. It deliberately stays un-skipped under -short so
// `go test -race -short` (the make check gate) exercises the shared
// workload caches, the training singleflight, and the run cache under
// contention. Both runs of each experiment must render identically.
func TestChaosGridMixedExperiments(t *testing.T) {
	o := QuickOptions()
	// Tiny traces: the point is interleaving, not fidelity, and the race
	// detector multiplies every access.
	o.Profile = workloads.Profile{Div: 512, PatternAccesses: 80_000, AppAccesses: 40_000, Seed: 1}
	o.Sched = sched.New(sched.Config{Workers: 8, Cache: sched.NewCache("")})

	ids := []string{"fig2", "fig4", "fig9", "fig16c"}
	const runsPer = 2
	out := make(map[string][]string, len(ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < runsPer; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := renderAll(e, o)
				mu.Lock()
				out[e.ID] = append(out[e.ID], s)
				mu.Unlock()
			}()
		}
	}
	wg.Wait()

	for _, id := range ids {
		rendered := out[id]
		if len(rendered) != runsPer {
			t.Fatalf("%s: %d runs finished, want %d", id, len(rendered), runsPer)
		}
		if rendered[0] == "" {
			t.Errorf("%s: empty output", id)
		}
		for r := 1; r < runsPer; r++ {
			if rendered[r] != rendered[0] {
				t.Errorf("%s: concurrent run %d rendered differently", id, r)
			}
		}
	}

	// Every one of the second runs should have been served by the shared
	// cache (computed at most once per distinct key).
	done, total := o.Sched.Progress()
	if done != total {
		t.Errorf("progress = %d/%d, want all cells accounted", done, total)
	}
}

// TestDefaultSchedulerIsSerialAndCached covers the fallback used when
// Options.Sched is nil: cells still go through a cache (so repeated
// experiments in one process dedupe) and run serially.
func TestDefaultSchedulerIsSerialAndCached(t *testing.T) {
	var o Options
	s := o.scheduler()
	if s == nil {
		t.Fatal("nil fallback scheduler")
	}
	if s.Workers() != 1 {
		t.Errorf("fallback workers = %d, want 1 (serial)", s.Workers())
	}
	if s2 := o.scheduler(); s2 != s {
		t.Error("fallback scheduler not process-wide")
	}
	withSched := Options{Sched: sched.New(sched.Config{Workers: 4})}
	if withSched.scheduler() != withSched.Sched {
		t.Error("explicit scheduler not used")
	}
}

// TestGridKeysAreUniquePerDistinctCell guards the cache-identity rule:
// within one experiment declaration, two cells that should be distinct
// runs must never share a key. Duplicated keys are legal only when the
// cells are genuinely identical (fig14's diagonal); here we check a
// representative grid-heavy experiment declares as many distinct keys
// as distinct (workload, policy, config) combinations.
func TestGridKeysAreUniquePerDistinctCell(t *testing.T) {
	o := QuickOptions()
	g := o.newGrid()
	seen := map[string]int{}
	for _, ratio := range o.ratios() {
		for _, name := range o.appNames() {
			for _, p := range o.allPolicySpecs() {
				i := g.add(name, p, harness.Config{Ratio: ratio})
				key := g.cells[i].Key
				if prev, dup := seen[key]; dup {
					t.Fatalf("cells %d and %d share key %q", prev, i, key)
				}
				seen[key] = i
			}
		}
	}
}
