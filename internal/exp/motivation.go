package exp

import (
	"fmt"

	"artmem/internal/harness"
	"artmem/internal/memsim"
	"artmem/internal/policies"
	"artmem/internal/stats"
	"artmem/internal/textplot"
	"artmem/internal/workloads"
)

// Table2 reproduces the hardware characterization table: the tier
// latencies and bandwidths the machine model is built from.
func Table2() Experiment {
	return Experiment{
		ID:    "table2",
		Title: "Table 2: memory tier characteristics",
		Paper: "fast 92ns / 81 GB/s, slow 323ns / 26 GB/s",
		Run: func(o Options) []textplot.Table {
			cfg := memsim.DefaultConfig(1<<30, 1<<29, 2<<20)
			t := textplot.Table{
				Title:  "Memory tier model (from paper Table 2)",
				Header: []string{"tier", "latency (ns)", "read BW (GB/s)", "write BW (GB/s)"},
			}
			t.AddRow(cfg.Fast.Name, cfg.Fast.LatencyNs, cfg.Fast.ReadBWGBs, cfg.Fast.WriteBWGBs)
			t.AddRow(cfg.Slow.Name, cfg.Slow.LatencyNs, cfg.Slow.ReadBWGBs, cfg.Slow.WriteBWGBs)
			return []textplot.Table{t}
		},
	}
}

// Fig1 reproduces the four constructed access patterns by measuring
// each pattern's access density across the address space and across
// time — the data behind the paper's Figure 1 scatter plots.
func Fig1() Experiment {
	return Experiment{
		ID:    "fig1",
		Title: "Figure 1: four manually-generated access patterns",
		Paper: "S1 two small intense regions; S2 shifting region; S3 12GB hot region; S4 20GB lukewarm region",
		Run: func(o Options) []textplot.Table {
			var out []textplot.Table
			const spaceBins, timeBins = 16, 8
			for _, pat := range workloads.Patterns(o.Profile) {
				w := pat.NewWorkload(o.Profile.Seed)
				foot := uint64(pat.Footprint)
				counts := make([][]int, spaceBins)
				for i := range counts {
					counts[i] = make([]int, timeBins)
				}
				total := pat.TotalAccesses()
				var i int64
				for {
					b, ok := w.Next()
					if !ok {
						break
					}
					for _, a := range b {
						sb := int(a.Addr * spaceBins / foot)
						tb := int(i * timeBins / total)
						if sb >= spaceBins {
							sb = spaceBins - 1
						}
						if tb >= timeBins {
							tb = timeBins - 1
						}
						counts[sb][tb]++
						i++
					}
				}
				w.Close()
				t := textplot.Table{
					Title:  fmt.Sprintf("%s access density (rows: address space 16ths; cols: run 8ths)", pat.Name),
					Header: []string{"region", "density over time", "share"},
				}
				for sb := 0; sb < spaceBins; sb++ {
					rowTotal := 0
					series := make([]float64, timeBins)
					for tb := 0; tb < timeBins; tb++ {
						rowTotal += counts[sb][tb]
						series[tb] = float64(counts[sb][tb])
					}
					t.AddRow(
						fmt.Sprintf("%2d/16", sb),
						textplot.Sparkline(series),
						fmt.Sprintf("%.1f%%", 100*float64(rowTotal)/float64(i)),
					)
				}
				out = append(out, t)
			}
			return out
		},
	}
}

// Fig2 reproduces the motivation comparison: seven tiering systems plus
// ArtMem on S1–S4 at a 1:1 ratio, normalized to the static (no
// migration) configuration, together with each run's DRAM access ratio.
func Fig2() Experiment {
	return Experiment{
		ID:    "fig2",
		Title: "Figure 2: systems on synthetic patterns (runtime normalized to Static; lower is better)",
		Paper: "each system wins some patterns and loses others (Observation 1); DRAM ratio tracks performance",
		Run: func(o Options) []textplot.Table {
			patterns := []string{"S1", "S2", "S3", "S4"}
			cfg := harness.Config{Ratio: harness.Ratio{Fast: 1, Slow: 1}}
			pols := o.allPolicySpecs()
			g := o.newGrid()
			static := make([]int, len(patterns))
			for pi, pat := range patterns {
				static[pi] = g.add(pat, baselineSpec("Static"), cfg)
			}
			cell := make([][]int, len(pols))
			for si, p := range pols {
				cell[si] = make([]int, len(patterns))
				for pi, pat := range patterns {
					cell[si][pi] = g.add(pat, p, cfg)
				}
			}
			res := g.run()
			perf := textplot.Table{
				Title:  "Normalized runtime (Static = 1.0)",
				Header: append([]string{"system"}, patterns...),
			}
			ratio := textplot.Table{
				Title:  "DRAM access ratio",
				Header: append([]string{"system"}, patterns...),
			}
			for si, p := range pols {
				perfCells := []any{p.name}
				ratioCells := []any{p.name}
				for pi := range patterns {
					r := res[cell[si][pi]]
					perfCells = append(perfCells, normalize(float64(r.ExecNs), float64(res[static[pi]].ExecNs)))
					ratioCells = append(ratioCells, r.DRAMRatio)
				}
				perf.AddRow(perfCells...)
				ratio.AddRow(ratioCells...)
			}
			return []textplot.Table{perf, ratio}
		},
	}
}

// Fig3 reproduces the performance ↔ DRAM-access-ratio correlation: each
// point is one workload run under a system; the paper reports Pearson
// coefficients of 0.89, 0.81 and 0.87 for its three systems.
func Fig3() Experiment {
	return Experiment{
		ID:    "fig3",
		Title: "Figure 3: correlation between performance and DRAM access ratio",
		Paper: "strong positive correlation (Pearson ≈ 0.8-0.9) for every system",
		Run: func(o Options) []textplot.Table {
			systems := []string{"MEMTIS", "AutoTiering", "TPP"}
			names := append([]string{"S1", "S2", "S3", "S4"}, o.appNames()...)
			if o.Quick {
				names = []string{"S1", "S2", "S3", "S4"}
			}
			t := textplot.Table{
				Title:  "Pearson correlation of normalized performance vs DRAM access ratio",
				Header: []string{"system", "pearson r", "points"},
				Note:   "performance normalized to a DRAM-only run of the same workload",
			}
			ratios := []harness.Ratio{{Fast: 1, Slow: 1}, {Fast: 1, Slow: 4}}
			g := o.newGrid()
			// DRAM-only reference per workload, then every system × workload
			// × ratio point of the scatter.
			dramOnly := make([]int, len(names))
			for ni, n := range names {
				dramOnly[ni] = g.add(n, baselineSpec("Static"), harness.Config{Ratio: harness.Ratio{Fast: 1, Slow: 0}})
			}
			cell := make([][][]int, len(systems))
			for si, sys := range systems {
				cell[si] = make([][]int, len(names))
				for ni, n := range names {
					cell[si][ni] = make([]int, len(ratios))
					for ri, ratio := range ratios {
						cell[si][ni][ri] = g.add(n, baselineSpec(sys), harness.Config{Ratio: ratio})
					}
				}
			}
			res := g.run()
			for si, sys := range systems {
				var xs, ys []float64
				for ni := range names {
					for ri := range ratios {
						r := res[cell[si][ni][ri]]
						xs = append(xs, r.DRAMRatio)
						// Higher = better performance (DRAM-only = 1).
						ys = append(ys, normalize(float64(res[dramOnly[ni]].ExecNs), float64(r.ExecNs)))
					}
				}
				t.AddRow(sys, stats.Pearson(xs, ys), len(xs))
			}
			return []textplot.Table{t}
		},
	}
}

// Fig4 reproduces the manual-threshold-tuning study: MEMTIS with its
// default capacity-derived threshold versus a manually tuned one, on
// Liblinear and XSBench — migration volume and normalized runtime.
func Fig4() Experiment {
	return Experiment{
		ID:    "fig4",
		Title: "Figure 4: MEMTIS default vs manually tuned hotness threshold",
		Paper: "tuning cuts Liblinear migrations sharply; performance improves ~47% (Liblinear) and ~42% (XSBench)",
		Run: func(o Options) []textplot.Table {
			names := []string{"Liblinear", "XSBench"}
			ratio := harness.Ratio{Fast: 1, Slow: 4}
			thresholds := []uint32{4, 8, 16, 32}
			memtis := func(thr uint32) policySpec {
				return spec("MEMTIS", fmt.Sprintf("MEMTIS|thr=%d", thr), func() policies.Policy {
					return policies.NewMEMTIS(policies.MEMTISConfig{ThresholdOverride: thr})
				})
			}
			g := o.newGrid()
			def := make([]int, len(names))
			tuned := make([][]int, len(names))
			for ni, n := range names {
				def[ni] = g.add(n, spec("MEMTIS", "MEMTIS|default", func() policies.Policy {
					return policies.NewMEMTIS(policies.MEMTISConfig{})
				}), harness.Config{Ratio: ratio})
				tuned[ni] = make([]int, len(thresholds))
				for ti, thr := range thresholds {
					tuned[ni][ti] = g.add(n, memtis(thr), harness.Config{Ratio: ratio})
				}
			}
			res := g.run()
			mig := textplot.Table{
				Title:  "Migration volume (MB migrated)",
				Header: []string{"workload", "default", "tuned"},
			}
			perf := textplot.Table{
				Title:  "Runtime normalized to default threshold (lower is better)",
				Header: []string{"workload", "default", "tuned", "tuned threshold"},
			}
			for ni, n := range names {
				// Manual tuning: sweep a few fixed thresholds, keep the best
				// runtime (the paper's "manually reducing the hotness bins").
				defRes := res[def[ni]]
				best := defRes
				bestThr := uint32(0)
				for ti, thr := range thresholds {
					if r := res[tuned[ni][ti]]; r.ExecNs < best.ExecNs {
						best, bestThr = r, thr
					}
				}
				mig.AddRow(n, float64(defRes.MigratedBytes)/(1<<20),
					float64(best.MigratedBytes)/(1<<20))
				perf.AddRow(n, 1.0, normalize(float64(best.ExecNs), float64(defRes.ExecNs)),
					fmt.Sprintf("%d", bestThr))
			}
			return []textplot.Table{mig, perf}
		},
	}
}
