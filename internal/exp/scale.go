package exp

import (
	"fmt"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/policies"
	"artmem/internal/textplot"
	"artmem/internal/workloads"
)

// Fig16a reproduces the memory-size scalability study: CC's footprint
// grows from 69GB to 290GB (scaled) with the fast tier fixed at 54GB
// (scaled).
func Fig16a() Experiment {
	return Experiment{
		ID:    "fig16a",
		Title: "Figure 16a: scalability with memory footprint (CC, fixed 54GB fast tier)",
		Paper: "ArtMem's advantage persists (≥6% improvement) as the footprint grows",
		Run: func(o Options) []textplot.Table {
			paperGBs := []float64{69, 137, 200, 290}
			if o.Quick {
				paperGBs = []float64{69, 200}
			}
			fastBytes := o.Profile.Bytes(54)
			t := textplot.Table{
				Title:  "Runtime normalized to AutoNUMA at each size (lower is better)",
				Header: []string{"footprint (paper GB)", "AutoNUMA", "MEMTIS", "ArtMem"},
			}
			for _, gb := range paperGBs {
				// Rebuild CC at the requested footprint by scaling the
				// profile's divisor inversely (bigger graph, same budget).
				prof := o.Profile
				prof.Div = int64(float64(o.Profile.Div) * 69 / gb)
				if prof.Div < 1 {
					prof.Div = 1
				}
				runCC := func(pol policies.Policy) harness.Result {
					spec, _ := workloads.ByName("CC")
					w := spec.New(prof)
					foot := w.FootprintBytes()
					slow := foot - fastBytes
					if slow < 0 {
						slow = 0
					}
					return harness.Run(w, pol, harness.Config{
						PageSize: o.Profile.PageSize(),
						// Fixed fast tier expressed as an exact byte split.
						Ratio: harness.Ratio{Fast: int(fastBytes >> 12), Slow: int(slow >> 12)},
					})
				}
				an := runCC(mustPolicy("AutoNUMA"))
				me := runCC(mustPolicy("MEMTIS"))
				am := runCC(o.ArtMemPolicy(core.Config{}))
				t.AddRow(textplot.FormatFloat(gb),
					1.0,
					normalize(float64(me.ExecNs), float64(an.ExecNs)),
					normalize(float64(am.ExecNs), float64(an.ExecNs)))
			}
			return []textplot.Table{t}
		},
	}
}

// Fig16b reproduces the relative-latency sensitivity study: the slow
// tier is modeled as remote-socket DRAM (152ns), local PM (323ns), and
// remote PM (431ns), running SSSP with a fixed fast tier.
func Fig16b() Experiment {
	return Experiment{
		ID:    "fig16b",
		Title: "Figure 16b: sensitivity to slow-tier latency (SSSP)",
		Paper: "the performance gap between systems widens as the latency gap grows; ArtMem stays best",
		Run: func(o Options) []textplot.Table {
			latencies := []struct {
				name string
				ns   float64
				bw   float64
			}{
				{"remote DRAM (152ns)", 152, 60},
				{"local PM (323ns)", 323, 26},
				{"remote PM (431ns)", 431, 20},
			}
			systems := []string{"AutoNUMA", "TPP", "MEMTIS"}
			t := textplot.Table{
				Title:  "Runtime normalized to AutoNUMA at 152ns (lower is better)",
				Header: append([]string{"slow tier"}, append(systems, "ArtMem")...),
			}
			ratio := harness.Ratio{Fast: 1, Slow: 1}
			var base float64
			for i, lat := range latencies {
				cells := []any{lat.name}
				for _, sys := range systems {
					r := o.runOne("SSSP", mustPolicy(sys), harness.Config{
						Ratio: ratio, SlowLatencyNs: lat.ns, SlowBWGBs: lat.bw})
					if i == 0 && sys == "AutoNUMA" {
						base = float64(r.ExecNs)
					}
					cells = append(cells, normalize(float64(r.ExecNs), base))
				}
				r := o.runOne("SSSP", o.ArtMemPolicy(core.Config{}), harness.Config{
					Ratio: ratio, SlowLatencyNs: lat.ns, SlowBWGBs: lat.bw})
				cells = append(cells, normalize(float64(r.ExecNs), base))
				t.AddRow(cells...)
			}
			return []textplot.Table{t}
		},
	}
}

// Fig16c reproduces the mixed-workload study: concurrent combinations
// of SSSP, XSBench and DLRM.
func Fig16c() Experiment {
	return Experiment{
		ID:    "fig16c",
		Title: "Figure 16c: adaptability to highly irregular (mixed) workloads",
		Paper: "ArtMem beats the second-best method by ~11% on average across the mixes",
		Run: func(o Options) []textplot.Table {
			mixes := []string{"SSSP+XSBench", "SSSP+DLRM", "XSBench+DLRM", "SSSP+XSBench+DLRM"}
			if o.Quick {
				mixes = mixes[:2]
			}
			systems := []string{"AutoNUMA", "TPP", "MEMTIS", "Multi-clock"}
			t := textplot.Table{
				Title:  "Mixed-workload runtime normalized to AutoNUMA (lower is better)",
				Header: append([]string{"mix"}, append(systems, "ArtMem")...),
			}
			for _, mix := range mixes {
				ratio := harness.Ratio{Fast: 1, Slow: 2}
				cells := []any{mix}
				var base float64
				for _, sys := range systems {
					r := o.runOne(mix, mustPolicy(sys), harness.Config{Ratio: ratio})
					if sys == "AutoNUMA" {
						base = float64(r.ExecNs)
					}
					cells = append(cells, normalize(float64(r.ExecNs), base))
				}
				r := o.runOne(mix, o.ArtMemPolicy(core.Config{}), harness.Config{Ratio: ratio})
				cells = append(cells, normalize(float64(r.ExecNs), base))
				t.AddRow(cells...)
			}
			return []textplot.Table{t}
		},
	}
}

// Fig17 reproduces the behaviour-over-time comparison on the mixed
// SSSP+XSBench workload: migration operations and DRAM access ratio per
// time slice for ArtMem versus TPP.
func Fig17() Experiment {
	return Experiment{
		ID:    "fig17",
		Title: "Figure 17: migrations and DRAM ratio over time (SSSP+XSBench mix)",
		Paper: "ArtMem explores early then stabilizes (action 0 at 100% ratio); TPP keeps migrating ~17.5x more",
		Run: func(o Options) []textplot.Table {
			const bins = 24
			ratio := harness.Ratio{Fast: 1, Slow: 2}
			t := textplot.Table{
				Title:  "Behaviour over time",
				Header: []string{"system", "metric", "over time", "total/mean"},
			}
			for _, mk := range []struct {
				name string
				pol  policies.Policy
			}{
				{"ArtMem", o.ArtMemPolicy(core.Config{})},
				{"TPP", mustPolicy("TPP")},
			} {
				r := o.runOne("SSSP+XSBench", mk.pol, harness.Config{
					Ratio: ratio, CollectSeries: true})
				migs := r.MigrationSeries.Bin(0, r.ExecNs, bins)
				rat := r.RatioSeries.BinMean(0, r.ExecNs, bins)
				t.AddRow(mk.name, "migrations", textplot.Sparkline(migs),
					fmt.Sprintf("%d", r.Migrations))
				t.AddRow(mk.name, "DRAM ratio", textplot.Sparkline(rat),
					fmt.Sprintf("%.3f", r.DRAMRatio))
			}
			return []textplot.Table{t}
		},
	}
}

// Overheads reproduces the §6.4 overhead accounting: sampling CPU,
// Q-table computation, and Q-table memory.
func Overheads() Experiment {
	return Experiment{
		ID:    "overheads",
		Title: "§6.4 Overheads: sampling, RL computation, Q-table memory",
		Paper: "sampling ≤3% CPU; Q computation ≤0.07% CPU; Q-tables <10KB",
		Run: func(o Options) []textplot.Table {
			t := textplot.Table{
				Title: "ArtMem overheads",
				Header: []string{"workload", "sampling / exec", "RL compute / exec",
					"all background / exec", "Q-table bytes"},
				Note: "'all background' additionally includes LRU aging scans and the overlapped share of migration copies",
			}
			for _, n := range []string{"XSBench", "CC"} {
				pol := o.ArtMemPolicy(core.Config{})
				r := o.runOne(n, pol, harness.Config{Ratio: harness.Ratio{Fast: 1, Slow: 4}})
				mig, thr := pol.QTables()
				t.AddRow(n,
					fmt.Sprintf("%.2f%%", 100*pol.SamplingOverheadNs()/float64(r.ExecNs)),
					fmt.Sprintf("%.4f%%", 100*pol.RLOverheadNs()/float64(r.ExecNs)),
					fmt.Sprintf("%.2f%%", 100*r.OverheadFraction()),
					fmt.Sprintf("%d", mig.MemoryBytes()+thr.MemoryBytes()))
			}
			return []textplot.Table{t}
		},
	}
}
