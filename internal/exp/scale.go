package exp

import (
	"fmt"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/sched"
	"artmem/internal/textplot"
	"artmem/internal/workloads"
)

// Fig16a reproduces the memory-size scalability study: CC's footprint
// grows from 69GB to 290GB (scaled) with the fast tier fixed at 54GB
// (scaled).
func Fig16a() Experiment {
	return Experiment{
		ID:    "fig16a",
		Title: "Figure 16a: scalability with memory footprint (CC, fixed 54GB fast tier)",
		Paper: "ArtMem's advantage persists (≥6% improvement) as the footprint grows",
		Run: func(o Options) []textplot.Table {
			paperGBs := []float64{69, 137, 200, 290}
			if o.Quick {
				paperGBs = []float64{69, 200}
			}
			fastBytes := o.Profile.Bytes(54)
			pols := []policySpec{
				baselineSpec("AutoNUMA"), baselineSpec("MEMTIS"), o.artmemSpec(core.Config{}),
			}
			g := o.newGrid()
			cell := make([][]int, len(paperGBs))
			for gi, gb := range paperGBs {
				// Rebuild CC at the requested footprint by scaling the
				// profile's divisor inversely (bigger graph, same budget).
				prof := o.Profile
				prof.Div = int64(float64(o.Profile.Div) * 69 / gb)
				if prof.Div < 1 {
					prof.Div = 1
				}
				cell[gi] = make([]int, len(pols))
				for pi, p := range pols {
					p := p
					prof := prof
					// The ratio is derived from the workload footprint inside
					// the cell, so the key carries the fixed fast-tier split
					// as its extra component instead of a Config.Ratio.
					key := sched.Key("CC", prof, p.id,
						harness.Config{PageSize: o.Profile.PageSize()},
						fmt.Sprintf("fixedFast=%d", fastBytes))
					cell[gi][pi] = g.addCell(key, func() harness.Result {
						spec, _ := workloads.ByName("CC")
						w := spec.New(prof)
						foot := w.FootprintBytes()
						slow := foot - fastBytes
						if slow < 0 {
							slow = 0
						}
						return harness.Run(w, p.mk(), harness.Config{
							PageSize: o.Profile.PageSize(),
							// Fixed fast tier expressed as an exact byte split.
							Ratio: harness.Ratio{Fast: int(fastBytes >> 12), Slow: int(slow >> 12)},
						})
					})
				}
			}
			res := g.run()
			t := textplot.Table{
				Title:  "Runtime normalized to AutoNUMA at each size (lower is better)",
				Header: []string{"footprint (paper GB)", "AutoNUMA", "MEMTIS", "ArtMem"},
			}
			for gi, gb := range paperGBs {
				an := res[cell[gi][0]]
				me := res[cell[gi][1]]
				am := res[cell[gi][2]]
				t.AddRow(textplot.FormatFloat(gb),
					1.0,
					normalize(float64(me.ExecNs), float64(an.ExecNs)),
					normalize(float64(am.ExecNs), float64(an.ExecNs)))
			}
			return []textplot.Table{t}
		},
	}
}

// Fig16b reproduces the relative-latency sensitivity study: the slow
// tier is modeled as remote-socket DRAM (152ns), local PM (323ns), and
// remote PM (431ns), running SSSP with a fixed fast tier.
func Fig16b() Experiment {
	return Experiment{
		ID:    "fig16b",
		Title: "Figure 16b: sensitivity to slow-tier latency (SSSP)",
		Paper: "the performance gap between systems widens as the latency gap grows; ArtMem stays best",
		Run: func(o Options) []textplot.Table {
			latencies := []struct {
				name string
				ns   float64
				bw   float64
			}{
				{"remote DRAM (152ns)", 152, 60},
				{"local PM (323ns)", 323, 26},
				{"remote PM (431ns)", 431, 20},
			}
			pols := append([]policySpec{
				baselineSpec("AutoNUMA"), baselineSpec("TPP"), baselineSpec("MEMTIS"),
			}, o.artmemSpec(core.Config{}))
			ratio := harness.Ratio{Fast: 1, Slow: 1}
			g := o.newGrid()
			cell := make([][]int, len(latencies))
			for li, lat := range latencies {
				cell[li] = make([]int, len(pols))
				for pi, p := range pols {
					cell[li][pi] = g.add("SSSP", p, harness.Config{
						Ratio: ratio, SlowLatencyNs: lat.ns, SlowBWGBs: lat.bw})
				}
			}
			res := g.run()
			t := textplot.Table{
				Title:  "Runtime normalized to AutoNUMA at 152ns (lower is better)",
				Header: []string{"slow tier", "AutoNUMA", "TPP", "MEMTIS", "ArtMem"},
			}
			base := float64(res[cell[0][0]].ExecNs) // AutoNUMA at 152ns
			for li, lat := range latencies {
				cells := []any{lat.name}
				for pi := range pols {
					cells = append(cells, normalize(float64(res[cell[li][pi]].ExecNs), base))
				}
				t.AddRow(cells...)
			}
			return []textplot.Table{t}
		},
	}
}

// Fig16c reproduces the mixed-workload study: concurrent combinations
// of SSSP, XSBench and DLRM.
func Fig16c() Experiment {
	return Experiment{
		ID:    "fig16c",
		Title: "Figure 16c: adaptability to highly irregular (mixed) workloads",
		Paper: "ArtMem beats the second-best method by ~11% on average across the mixes",
		Run: func(o Options) []textplot.Table {
			mixes := []string{"SSSP+XSBench", "SSSP+DLRM", "XSBench+DLRM", "SSSP+XSBench+DLRM"}
			if o.Quick {
				mixes = mixes[:2]
			}
			pols := append([]policySpec{
				baselineSpec("AutoNUMA"), baselineSpec("TPP"),
				baselineSpec("MEMTIS"), baselineSpec("Multi-clock"),
			}, o.artmemSpec(core.Config{}))
			ratio := harness.Ratio{Fast: 1, Slow: 2}
			g := o.newGrid()
			cell := make([][]int, len(mixes))
			for mi, mix := range mixes {
				cell[mi] = make([]int, len(pols))
				for pi, p := range pols {
					cell[mi][pi] = g.add(mix, p, harness.Config{Ratio: ratio})
				}
			}
			res := g.run()
			t := textplot.Table{
				Title:  "Mixed-workload runtime normalized to AutoNUMA (lower is better)",
				Header: []string{"mix", "AutoNUMA", "TPP", "MEMTIS", "Multi-clock", "ArtMem"},
			}
			for mi, mix := range mixes {
				cells := []any{mix}
				base := float64(res[cell[mi][0]].ExecNs) // AutoNUMA on this mix
				for pi := range pols {
					cells = append(cells, normalize(float64(res[cell[mi][pi]].ExecNs), base))
				}
				t.AddRow(cells...)
			}
			return []textplot.Table{t}
		},
	}
}

// Fig17 reproduces the behaviour-over-time comparison on the mixed
// SSSP+XSBench workload: migration operations and DRAM access ratio per
// time slice for ArtMem versus TPP.
func Fig17() Experiment {
	return Experiment{
		ID:    "fig17",
		Title: "Figure 17: migrations and DRAM ratio over time (SSSP+XSBench mix)",
		Paper: "ArtMem explores early then stabilizes (action 0 at 100% ratio); TPP keeps migrating ~17.5x more",
		Run: func(o Options) []textplot.Table {
			const bins = 24
			ratio := harness.Ratio{Fast: 1, Slow: 2}
			pols := []policySpec{o.artmemSpec(core.Config{}), baselineSpec("TPP")}
			g := o.newGrid()
			cell := make([]int, len(pols))
			for pi, p := range pols {
				cell[pi] = g.add("SSSP+XSBench", p, harness.Config{
					Ratio: ratio, CollectSeries: true})
			}
			res := g.run()
			t := textplot.Table{
				Title:  "Behaviour over time",
				Header: []string{"system", "metric", "over time", "total/mean"},
			}
			for pi, p := range pols {
				r := res[cell[pi]]
				migs := r.MigrationSeries.Bin(0, r.ExecNs, bins)
				rat := r.RatioSeries.BinMean(0, r.ExecNs, bins)
				t.AddRow(p.name, "migrations", textplot.Sparkline(migs),
					fmt.Sprintf("%d", r.Migrations))
				t.AddRow(p.name, "DRAM ratio", textplot.Sparkline(rat),
					fmt.Sprintf("%.3f", r.DRAMRatio))
			}
			return []textplot.Table{t}
		},
	}
}

// Overheads reproduces the §6.4 overhead accounting: sampling CPU,
// Q-table computation, and Q-table memory. It runs outside the cell
// grid on purpose: the accounting reads the policy object after the
// run (SamplingOverheadNs, RLOverheadNs, QTables), which a cached
// harness.Result cannot reproduce.
func Overheads() Experiment {
	return Experiment{
		ID:    "overheads",
		Title: "§6.4 Overheads: sampling, RL computation, Q-table memory",
		Paper: "sampling ≤3% CPU; Q computation ≤0.07% CPU; Q-tables <10KB",
		Run: func(o Options) []textplot.Table {
			t := textplot.Table{
				Title: "ArtMem overheads",
				Header: []string{"workload", "sampling / exec", "RL compute / exec",
					"all background / exec", "Q-table bytes"},
				Note: "'all background' additionally includes LRU aging scans and the overlapped share of migration copies",
			}
			for _, n := range []string{"XSBench", "CC"} {
				pol := o.ArtMemPolicy(core.Config{})
				r := o.runOne(n, pol, harness.Config{Ratio: harness.Ratio{Fast: 1, Slow: 4}})
				mig, thr := pol.QTables()
				t.AddRow(n,
					fmt.Sprintf("%.2f%%", 100*pol.SamplingOverheadNs()/float64(r.ExecNs)),
					fmt.Sprintf("%.4f%%", 100*pol.RLOverheadNs()/float64(r.ExecNs)),
					fmt.Sprintf("%.2f%%", 100*r.OverheadFraction()),
					fmt.Sprintf("%d", mig.MemoryBytes()+thr.MemoryBytes()))
			}
			return []textplot.Table{t}
		},
	}
}
