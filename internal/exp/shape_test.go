package exp

import (
	"fmt"
	"testing"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/policies"
)

// These tests assert the paper's headline *shapes* at bench scale. They
// are the repository's regression net for the reproduction itself: if a
// model change breaks "ArtMem adapts" or "MEMTIS over-migrates", these
// fail. They run tens of seconds; -short skips them.

func benchScaleRatio() harness.Config {
	return harness.Config{Ratio: harness.Ratio{Fast: 1, Slow: 1}}
}

func TestShapeArtMemBeatsStaticOnAllPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale shape test")
	}
	o := BenchOptions()
	for _, pat := range []string{"S1", "S2", "S3", "S4"} {
		static := o.runOne(pat, policies.NewStatic(), benchScaleRatio())
		art := o.runOne(pat, o.ArtMemPolicy(core.Config{}), benchScaleRatio())
		if art.ExecNs >= static.ExecNs {
			t.Errorf("%s: ArtMem %.1fms not faster than Static %.1fms", pat,
				float64(art.ExecNs)/1e6, float64(static.ExecNs)/1e6)
		}
	}
}

func TestShapeMEMTISOverMigratesOnS1(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale shape test")
	}
	// Observation 3: on S1 MEMTIS's capacity-derived threshold migrates
	// an order of magnitude more than needed; ArtMem migrates far less
	// while reaching a comparable DRAM ratio.
	o := BenchOptions()
	memtis := o.runOne("S1", policies.NewMEMTIS(policies.MEMTISConfig{}), benchScaleRatio())
	art := o.runOne("S1", o.ArtMemPolicy(core.Config{}), benchScaleRatio())
	if art.Migrations*2 >= memtis.Migrations {
		t.Errorf("ArtMem migrations (%d) not well below MEMTIS (%d) on S1",
			art.Migrations, memtis.Migrations)
	}
	if art.DRAMRatio < memtis.DRAMRatio-0.1 {
		t.Errorf("ArtMem ratio %.3f far below MEMTIS %.3f despite S1's small hot set",
			art.DRAMRatio, memtis.DRAMRatio)
	}
}

func TestShapeMEMTISFailsOnRecencyPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale shape test")
	}
	// Observation 1 / pattern S2: EMA-frequency systems retain stale
	// heat; MEMTIS improves little over Static while ArtMem's recency
	// sorting keeps adapting.
	o := BenchOptions()
	static := o.runOne("S2", policies.NewStatic(), benchScaleRatio())
	memtis := o.runOne("S2", policies.NewMEMTIS(policies.MEMTISConfig{}), benchScaleRatio())
	mclock := o.runOne("S2", policies.NewMultiClock(policies.ScanConfig{}), benchScaleRatio())
	art := o.runOne("S2", o.ArtMemPolicy(core.Config{}), benchScaleRatio())
	gain := func(r harness.Result) float64 { return float64(static.ExecNs) / float64(r.ExecNs) }
	// The paper has MEMTIS (with Nimble) worst on S2: its stale EMA heat
	// blocks the moving working set. Recency-driven systems must beat it.
	if gain(memtis) >= gain(mclock) {
		t.Errorf("MEMTIS gain %.2fx not below Multi-clock %.2fx on S2",
			gain(memtis), gain(mclock))
	}
	if gain(art) <= gain(memtis) {
		t.Errorf("ArtMem gain %.2fx not above MEMTIS %.2fx on S2",
			gain(art), gain(memtis))
	}
}

func TestShapePerformanceTracksDRAMRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale shape test")
	}
	// Observation 2 / Figure 3: strong positive correlation.
	o := BenchOptions()
	o.Quick = true // patterns only; enough points for the correlation
	tables := Fig3().Run(o)
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Fatal("fig3 produced nothing")
	}
	for _, row := range tables[0].Rows {
		var r float64
		if _, err := fmt.Sscan(row[1], &r); err != nil {
			t.Fatalf("unparseable Pearson %q", row[1])
		}
		if r < 0.6 {
			t.Errorf("%s: Pearson %g below the paper's strong-correlation claim", row[0], r)
		}
	}
}
