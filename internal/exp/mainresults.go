package exp

import (
	"fmt"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/policies"
	"artmem/internal/textplot"
	"artmem/internal/workloads"
)

// mustPolicy constructs a fresh baseline policy by name.
func mustPolicy(name string) policies.Policy {
	f, err := policies.ByName(name)
	if err != nil {
		panic(err)
	}
	return f.New()
}

func ratioHeaders(ratios []harness.Ratio) []string {
	hs := make([]string, len(ratios))
	for i, r := range ratios {
		hs[i] = r.String()
	}
	return hs
}

// Fig7 reproduces the headline evaluation: eight applications × eight
// systems × six DRAM:PM ratios, runtimes normalized to AutoNUMA at 1:16
// (lower is better). The full grid is 392 independent cells — the
// repo's single heaviest sweep — declared up front and executed by the
// cell scheduler.
func Fig7() Experiment {
	return Experiment{
		ID:    "fig7",
		Title: "Figure 7: application performance across systems and memory ratios",
		Paper: "ArtMem best or near-best almost everywhere; 35%-172% improvements over baselines on average",
		Run: func(o Options) []textplot.Table {
			ratios := o.ratios()
			names := o.appNames()
			pols := o.allPolicySpecs()
			g := o.newGrid()
			// Normalization baselines (AutoNUMA at 1:16) per workload,
			// then the full system × ratio grid per workload.
			base := make([]int, len(names))
			cell := make([][][]int, len(names))
			for wi, wl := range names {
				base[wi] = g.add(wl, baselineSpec("AutoNUMA"), harness.Config{
					Ratio: harness.Ratio{Fast: 1, Slow: 16}})
				cell[wi] = make([][]int, len(pols))
				for pi, p := range pols {
					cell[wi][pi] = make([]int, len(ratios))
					for ri, ratio := range ratios {
						cell[wi][pi][ri] = g.add(wl, p, harness.Config{Ratio: ratio})
					}
				}
			}
			res := g.run()
			var out []textplot.Table
			for wi, wl := range names {
				t := textplot.Table{
					Title:  fmt.Sprintf("%s runtime (normalized to AutoNUMA 1:16; lower is better)", wl),
					Header: append([]string{"system"}, ratioHeaders(ratios)...),
				}
				baseNs := float64(res[base[wi]].ExecNs)
				for pi, p := range pols {
					cells := []any{p.name}
					for ri := range ratios {
						cells = append(cells, normalize(float64(res[cell[wi][pi][ri]].ExecNs), baseNs))
					}
					t.AddRow(cells...)
				}
				out = append(out, t)
			}
			return out
		},
	}
}

// Fig8 reproduces the ablation study: full ArtMem versus the heuristic
// (no RL), no-page-sorting, and base variants, with a DRAM-only run as
// the lower bound.
func Fig8() Experiment {
	return Experiment{
		ID:    "fig8",
		Title: "Figure 8: ablation of ArtMem components",
		Paper: "RL contributes most (more as DRAM shrinks); page sorting adds >10% on PR and XSBench",
		Run: func(o Options) []textplot.Table {
			names := o.appNames()
			ratios := []harness.Ratio{{Fast: 1, Slow: 1}, {Fast: 1, Slow: 8}}
			variants := []struct {
				label string
				cfg   core.Config
			}{
				{"ArtMem-full", core.Config{}},
				{"no-RL (heuristic)", core.Config{DisableRL: true}},
				{"no-sorting", core.Config{DisableSorting: true}},
				{"base (neither)", core.Config{DisableRL: true, DisableSorting: true}},
			}
			g := o.newGrid()
			// DRAM-only lower bound per workload (identical across the two
			// ratio tables — the cache serves the repeats).
			dram := make([]int, len(names))
			for ni, n := range names {
				dram[ni] = g.add(n, baselineSpec("Static"), harness.Config{Ratio: harness.Ratio{Fast: 1, Slow: 0}})
			}
			cell := make([][][]int, len(ratios))
			for ri := range ratios {
				cell[ri] = make([][]int, len(variants))
				for vi, v := range variants {
					cell[ri][vi] = make([]int, len(names))
					for ni, n := range names {
						cell[ri][vi][ni] = g.add(n, o.artmemSpec(v.cfg), harness.Config{Ratio: ratios[ri]})
					}
				}
			}
			res := g.run()
			var out []textplot.Table
			for ri, ratio := range ratios {
				t := textplot.Table{
					Title:  fmt.Sprintf("Runtime at %s, normalized to DRAM-only (lower is better)", ratio),
					Header: append([]string{"variant"}, names...),
				}
				for vi, v := range variants {
					cells := []any{v.label}
					for ni := range names {
						cells = append(cells, normalize(
							float64(res[cell[ri][vi][ni]].ExecNs),
							float64(res[dram[ni]].ExecNs)))
					}
					t.AddRow(cells...)
				}
				out = append(out, t)
			}
			return out
		},
	}
}

// Fig9 reproduces the DRAM-access-ratio comparison between the RL-based
// and heuristic threshold adjustment on SSSP and CC across ratios.
func Fig9() Experiment {
	return Experiment{
		ID:    "fig9",
		Title: "Figure 9: DRAM access ratio, RL vs heuristic adjustment (SSSP, CC)",
		Paper: "RL consistently above heuristic; CC plateaus beyond 1:4 while SSSP climbs gradually",
		Run: func(o Options) []textplot.Table {
			wls := []string{"SSSP", "CC"}
			variants := []struct {
				label string
				cfg   core.Config
			}{
				{"RL-based", core.Config{}},
				{"heuristic", core.Config{DisableRL: true}},
			}
			ratios := o.ratios()
			g := o.newGrid()
			cell := make([][][]int, len(wls))
			for wi, wl := range wls {
				cell[wi] = make([][]int, len(variants))
				for vi, v := range variants {
					cell[wi][vi] = make([]int, len(ratios))
					for ri, ratio := range ratios {
						cell[wi][vi][ri] = g.add(wl, o.artmemSpec(v.cfg), harness.Config{Ratio: ratio})
					}
				}
			}
			res := g.run()
			var out []textplot.Table
			for wi, wl := range wls {
				t := textplot.Table{
					Title:  fmt.Sprintf("%s DRAM access ratio", wl),
					Header: append([]string{"method"}, ratioHeaders(ratios)...),
				}
				for vi, v := range variants {
					cells := []any{v.label}
					for ri := range ratios {
						cells = append(cells, res[cell[wi][vi][ri]].DRAMRatio)
					}
					t.AddRow(cells...)
				}
				out = append(out, t)
			}
			return out
		},
	}
}

// Fig10 reproduces the DAMON-style access footprints of SSSP and CC:
// access density per address-space region over time, the data that
// explains Figure 9's trends (CC's hot set is compact, SSSP's broad).
func Fig10() Experiment {
	return Experiment{
		ID:    "fig10",
		Title: "Figure 10: access footprints of SSSP and CC (DAMON-style)",
		Paper: "CC: hot data concentrated in small regions; SSSP: broad hot distribution with small frequency differences",
		Run: func(o Options) []textplot.Table {
			const spaceBins, timeBins = 24, 10
			var out []textplot.Table
			for _, wl := range []string{"SSSP", "CC"} {
				spec, err := workloads.ByName(wl)
				if err != nil {
					panic(err)
				}
				w := spec.New(o.Profile)
				foot := uint64(w.FootprintBytes())
				counts := make([][]float64, spaceBins)
				for i := range counts {
					counts[i] = make([]float64, timeBins)
				}
				var accesses []workloads.Access
				for {
					b, ok := w.Next()
					if !ok {
						break
					}
					accesses = append(accesses, b...)
				}
				w.Close()
				total := int64(len(accesses))
				for i, a := range accesses {
					sb := int(a.Addr * spaceBins / foot)
					tb := int(int64(i) * timeBins / total)
					if sb >= spaceBins {
						sb = spaceBins - 1
					}
					if tb >= timeBins {
						tb = timeBins - 1
					}
					counts[sb][tb]++
				}
				t := textplot.Table{
					Title:  fmt.Sprintf("%s access heat (rows: address 24ths; cols: run 10ths)", wl),
					Header: []string{"region", "heat over time", "share"},
				}
				for sb := 0; sb < spaceBins; sb++ {
					rowTot := 0.0
					for _, c := range counts[sb] {
						rowTot += c
					}
					t.AddRow(fmt.Sprintf("%2d", sb), textplot.Sparkline(counts[sb]),
						fmt.Sprintf("%.1f%%", 100*rowTot/float64(total)))
				}
				out = append(out, t)
			}
			return out
		},
	}
}

// Fig11 reproduces the migration-volume comparison on CC and DLRM.
func Fig11() Experiment {
	return Experiment{
		ID:    "fig11",
		Title: "Figure 11: page migration volume (CC, DLRM)",
		Paper: "MEMTIS migrates by far the most (capacity-derived threshold); ArtMem and AutoNUMA stay low; DLRM ≪ CC under ArtMem",
		Run: func(o Options) []textplot.Table {
			ratio := harness.Ratio{Fast: 1, Slow: 4}
			pols := o.allPolicySpecs()
			g := o.newGrid()
			cc := make([]int, len(pols))
			dl := make([]int, len(pols))
			for pi, p := range pols {
				cc[pi] = g.add("CC", p, harness.Config{Ratio: ratio})
				dl[pi] = g.add("DLRM", p, harness.Config{Ratio: ratio})
			}
			res := g.run()
			t := textplot.Table{
				Title:  fmt.Sprintf("Pages migrated at %s", ratio),
				Header: []string{"system", "CC", "DLRM"},
			}
			for pi, p := range pols {
				t.AddRow(p.name,
					fmt.Sprintf("%d", res[cc[pi]].Migrations),
					fmt.Sprintf("%d", res[dl[pi]].Migrations))
			}
			return []textplot.Table{t}
		},
	}
}
