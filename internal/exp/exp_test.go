package exp

import (
	"strings"
	"testing"

	"artmem/internal/core"
	"artmem/internal/rl"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	wantIDs := []string{
		"table2", "fig1", "fig2", "fig3", "fig4", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16a", "fig16b", "fig16c", "fig17", "overheads",
		"liblinear-sampling", "pagesize", "fairness", "churn",
		"servebench", "latency", "shardscale", "tiers",
	}
	all := All()
	if len(all) != len(wantIDs) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(wantIDs))
	}
	for i, id := range wantIDs {
		if all[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, all[i].ID, id)
		}
		e, err := ByID(id)
		if err != nil {
			t.Errorf("ByID(%q): %v", id, err)
			continue
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s: incomplete experiment definition", id)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTrainTablesMemoized(t *testing.T) {
	o := QuickOptions()
	m1, t1 := TrainTables(o, "Liblinear", rl.QLearning)
	m2, t2 := TrainTables(o, "Liblinear", rl.QLearning)
	if m1 != m2 || t1 != t2 {
		t.Error("TrainTables not memoized for identical options")
	}
	m3, _ := TrainTables(o, "XSBench", rl.QLearning)
	if m3 == m1 {
		t.Error("different training workloads share a cache entry")
	}
}

func TestArtMemPolicyGetsPretrainedTables(t *testing.T) {
	o := QuickOptions()
	pol := o.ArtMemPolicy(core.Config{})
	if pol == nil {
		t.Fatal("nil policy")
	}
}

func TestAllPoliciesRoster(t *testing.T) {
	o := QuickOptions()
	fs := o.AllPolicies()
	if len(fs) != 8 {
		t.Fatalf("roster has %d systems, want 8 (7 baselines + ArtMem)", len(fs))
	}
	names := map[string]bool{}
	for _, f := range fs {
		names[f.Name] = true
	}
	if names["Static"] {
		t.Error("Static in the evaluated roster")
	}
	if !names["ArtMem"] || !names["MEMTIS"] {
		t.Errorf("roster incomplete: %v", names)
	}
}

// Smoke-run the cheap experiments end-to-end in quick mode; the heavy
// sweeps (fig7, fig14, fig15) are exercised by the benchmarks.
func TestQuickExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs")
	}
	o := QuickOptions()
	for _, id := range []string{"table2", "fig1", "fig4", "fig9", "fig11", "overheads"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			tables := e.Run(o)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				out := tb.Render()
				if len(strings.TrimSpace(out)) == 0 {
					t.Error("empty render")
				}
				if len(tb.Rows) == 0 {
					t.Errorf("table %q has no rows", tb.Title)
				}
			}
		})
	}
}

func TestTable2MatchesPaperNumbers(t *testing.T) {
	tables := Table2().Run(QuickOptions())
	out := tables[0].Render()
	for _, want := range []string{"92", "323", "81", "26"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing paper value %s:\n%s", want, out)
		}
	}
}

// TestEveryExperimentRunsAtQuickScale executes the complete registry at
// miniature scale — the panic/regression net for every experiment code
// path. Run time is a couple of minutes; -short skips it.
func TestEveryExperimentRunsAtQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry smoke run")
	}
	o := QuickOptions()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(o)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Header) == 0 {
					t.Errorf("table %q has no header", tb.Title)
				}
				if out := tb.Render(); len(out) == 0 {
					t.Errorf("table %q renders empty", tb.Title)
				}
			}
		})
	}
}
