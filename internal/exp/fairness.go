package exp

import (
	"fmt"

	"artmem/internal/core"
	"artmem/internal/harness"
	"artmem/internal/sched"
	"artmem/internal/tenancy"
	"artmem/internal/textplot"
	"artmem/internal/workloads"
)

// fairnessWorkloads are the co-located tenants of the contention study:
// S2 is the antagonist — its hotspot shifts every epoch, so its agent
// churns promotions forever — while YCSB and DLRM have stable skewed
// hot sets that an unprotected fast tier lets the antagonist crowd.
var fairnessWorkloads = []string{"S2", "YCSB", "DLRM"}

// fairnessModes are the arbiter postures the experiment compares. Off
// is the memcg-blind baseline: one shared fast tier, first-touch and
// promotion-order wins. Static partitions DRAM by weight and meters
// promotion traffic (TierBPF-style admission control); dynamic
// additionally reallocates quota along the observed hit-ratio
// gradient.
func fairnessModes() []struct {
	label string
	acfg  tenancy.ArbiterConfig
} {
	return []struct {
		label string
		acfg  tenancy.ArbiterConfig
	}{
		{"arbiter-off", tenancy.ArbiterConfig{Mode: tenancy.ModeOff}},
		{"static+admission", tenancy.ArbiterConfig{Mode: tenancy.ModeStatic, Admission: true}},
		{"dynamic+admission", tenancy.ArbiterConfig{Mode: tenancy.ModeDynamic, Admission: true}},
	}
}

// fairnessAgentCfg is tenant i's agent configuration: pretraining as
// the paper primes every memcg's agent, a per-tenant seed so the
// agents explore independently.
func fairnessAgentCfg(o Options, i int) core.Config {
	return core.Config{Seed: o.Profile.Seed + uint64(i)}
}

// fairnessSpecs builds the tenant list. Each tenant weighs in
// proportionally to its footprint, so the weighted static split gives
// every tenant exactly the fast fraction it would have alone on a
// machine at the same DRAM:PM ratio — which is what makes service
// normalized to the isolated run the natural fairness metric.
func fairnessSpecs(o Options) []harness.TenantSpec {
	specs := make([]harness.TenantSpec, len(fairnessWorkloads))
	for i, name := range fairnessWorkloads {
		ws, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		w := ws.New(o.Profile)
		weight := int(w.FootprintBytes() / o.Profile.PageSize())
		if weight < 1 {
			weight = 1
		}
		cfg := fairnessAgentCfg(o, i)
		mig, thr := TrainTables(o, "Liblinear", cfg.Algorithm)
		cfg.PretrainedMig, cfg.PretrainedThr = mig, thr
		specs[i] = harness.TenantSpec{
			Name:     name,
			Weight:   weight,
			Workload: w,
			Policy:   core.New(cfg),
		}
	}
	return specs
}

// fairnessKey canonically identifies one multi-tenant fairness cell
// for the run cache: the tenant set, the per-tenant policy identity,
// and the full arbiter configuration.
func fairnessKey(o Options, acfg tenancy.ArbiterConfig, cfg harness.Config) string {
	extra := fmt.Sprintf("fairness|tenants=%v|w=footprint|pol=%s|seed=per-tenant|arb=%+v",
		fairnessWorkloads, artmemID("Liblinear", 0, core.Config{}), acfg)
	return sched.Key("multi", o.Profile, "ArtMem-per-tenant", cfg, extra)
}

// Fairness reproduces the multi-tenant contention study: three tenants
// with per-tenant ArtMem agents share one machine while the fast-tier
// arbiter sweeps from off (unpartitioned contention) through static
// weighted quotas with admission control to dynamic hit-ratio-gradient
// reallocation.
//
// The fairness metric is normalized service: each tenant's hit ratio
// divided by the hit ratio the same workload + agent achieves alone at
// the same DRAM:PM ratio. A tenant at 1.0 gets exactly its isolated
// service; the arbiter's weighted quotas reproduce the isolated DRAM
// share, so partitioning pulls every tenant toward 1.0, while the
// unpartitioned baseline lets allocation order and the antagonist's
// promotion churn spread service unevenly. The summary reports Jain's
// index over the normalized services per posture.
func Fairness() Experiment {
	return Experiment{
		ID:    "fairness",
		Title: "Multi-tenant fairness: fast-tier arbitration and admission control",
		Paper: "ArtMem deploys per-memcg agents; TierBPF-style admission control keeps one tenant's promotion traffic from crowding out another's hot pages",
		Run: func(o Options) []textplot.Table {
			modes := fairnessModes()
			cfg := harness.Config{
				PageSize: o.Profile.PageSize(),
				Ratio:    harness.Ratio{Fast: 1, Slow: 4},
			}
			g := o.newGrid()
			// Isolated baselines: each tenant's workload alone, same agent
			// identity, same ratio.
			solo := make([]int, len(fairnessWorkloads))
			for i, name := range fairnessWorkloads {
				solo[i] = g.add(name, o.artmemSpec(fairnessAgentCfg(o, i)),
					harness.Config{Ratio: cfg.Ratio})
			}
			idx := make([]int, len(modes))
			for mi, mode := range modes {
				acfg := mode.acfg
				idx[mi] = g.addCell(fairnessKey(o, acfg, cfg), func() harness.Result {
					res := harness.RunTenants(fairnessSpecs(o), acfg, cfg)
					o.logf("  fairness/%s: mig=%d rebal=%d",
						acfg.Mode, res.Migrations, res.ArbiterRebalances)
					return res
				})
			}
			res := g.run()

			soloRatio := make([]float64, len(solo))
			for i, s := range solo {
				soloRatio[i] = res[s].DRAMRatio
			}

			perTenant := textplot.Table{
				Title: "per-tenant service under each arbiter posture (1:4 DRAM:PM)",
				Header: []string{"arbiter", "tenant", "hit ratio", "solo ratio",
					"norm service", "fast pages", "quota", "promo", "denied"},
				Note: "norm service = hit ratio / isolated-run hit ratio; 1.0 means the tenant gets exactly its solo service",
			}
			norms := make([][]float64, len(modes))
			for mi, mode := range modes {
				r := res[idx[mi]]
				norms[mi] = make([]float64, len(r.Tenants))
				for ti, tr := range r.Tenants {
					norms[mi][ti] = normalize(tr.HitRatio, soloRatio[ti])
					perTenant.AddRow(mode.label, tr.Name, tr.HitRatio, soloRatio[ti],
						norms[mi][ti],
						fmt.Sprintf("%d", tr.FastPages), fmt.Sprintf("%d", tr.QuotaPages),
						fmt.Sprintf("%d", tr.Promotions), fmt.Sprintf("%d", tr.AdmissionDenials))
				}
			}

			summary := textplot.Table{
				Title: "fairness summary (Jain index over normalized service; higher is fairer)",
				Header: []string{"arbiter", "jain", "mean norm service", "migrations",
					"denials", "rebalances"},
				Note: "admission control meters each tenant's promotions to its weighted share of migration bandwidth",
			}
			for mi, mode := range modes {
				r := res[idx[mi]]
				var mean float64
				var denials uint64
				for ti, tr := range r.Tenants {
					mean += norms[mi][ti]
					denials += tr.AdmissionDenials
				}
				mean /= float64(len(r.Tenants))
				summary.AddRow(mode.label, harness.JainIndex(norms[mi]), mean,
					fmt.Sprintf("%d", r.Migrations),
					fmt.Sprintf("%d", denials),
					fmt.Sprintf("%d", r.ArbiterRebalances))
			}
			return []textplot.Table{perTenant, summary}
		},
	}
}
