// Package sched is the deterministic cell-level experiment scheduler
// and memoized run cache behind cmd/artbench and internal/exp.
//
// An experiment grid (eight workloads × eight policies × six ratios in
// Figure 7, say) is a slice of independent Cells: each cell pairs a
// stable content-addressed Key with a closure that produces one
// harness.Result. The scheduler executes cells on a bounded worker pool
// and writes each result back at the cell's declared index, so tables
// rendered from the result slice are byte-identical to a serial run at
// any worker count — parallelism changes wall-clock, never values
// (harness.Run is pure; see its documentation for the contract).
//
// The run cache is content-addressed: a cell's Key canonically encodes
// the workload name, the workloads.Profile, the policy identity
// (including any pretraining provenance), and the harness.Config, so
// two cells that would replay the identical simulation share one
// computation. Recurring cells across experiments — the Static
// baselines shared by fig2/fig15, the application runs shared by
// fig7/fig14/fig16 — compute once per process. An optional on-disk
// layer persists results across invocations, keyed additionally by a
// source stamp of the simulator packages (SourceStamp) so any code
// change invalidates the whole layer. Cache hits, misses and
// cells-done/total progress are exported through internal/telemetry
// (see Metrics) and surfaced by artbench -v.
//
// All coordination is per-cell: the scheduler never touches the
// simulator's access hot path, so enabling it adds zero per-access
// overhead (policed by the benchdiff gate).
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"artmem/internal/harness"
)

// Cell is one independent unit of experiment work: a stable cache key
// plus the closure that computes the result. Run must be a pure
// function of the identity encoded in Key — everything that influences
// the Result must be part of the Key, or caching and deduplication
// would conflate distinct runs.
type Cell struct {
	// Key is the canonical cell identity (see Key and exp's helpers).
	Key string
	// Run computes the cell's result. It may be invoked on any worker
	// goroutine, or not at all on a cache hit.
	Run func() harness.Result
}

// Config parameterizes a Scheduler.
type Config struct {
	// Workers bounds concurrent cell execution. 0 (or negative) uses
	// GOMAXPROCS; 1 runs cells serially in declaration order.
	Workers int
	// Cache, when non-nil, memoizes cell results by Key. Nil disables
	// caching (every cell recomputes).
	Cache *Cache
	// Log, when non-nil, receives progress lines (cells done/total and
	// cache hit counts).
	Log func(format string, args ...any)
	// Metrics, when non-nil, receives counter updates; nil disables
	// telemetry without any call-site guards (see NewMetrics).
	Metrics *Metrics
}

// Scheduler executes cell grids. It is safe for concurrent use: several
// experiments may run their grids through one scheduler at once and
// share its cache and worker budget accounting.
type Scheduler struct {
	workers int
	cache   *Cache
	log     func(format string, args ...any)
	metrics *Metrics

	cellsDone  atomic.Int64
	cellsTotal atomic.Int64
}

// New returns a scheduler for the given configuration.
func New(cfg Config) *Scheduler {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	m := cfg.Metrics
	if m == nil {
		m = &Metrics{} // nil counters are no-ops
	}
	if cfg.Cache != nil {
		cfg.Cache.SetMetrics(m)
	}
	return &Scheduler{workers: w, cache: cfg.Cache, log: cfg.Log, metrics: m}
}

// Workers returns the scheduler's worker bound.
func (s *Scheduler) Workers() int { return s.workers }

// Progress returns cells completed and cells declared since the
// scheduler was created (across all grids).
func (s *Scheduler) Progress() (done, total int64) {
	return s.cellsDone.Load(), s.cellsTotal.Load()
}

// RunGrid executes every cell and returns the results indexed exactly
// as the cells were: results[i] is cells[i]'s result regardless of the
// order workers finished them. With Workers == 1 the cells run
// serially in declaration order on the calling goroutine.
func (s *Scheduler) RunGrid(cells []Cell) []harness.Result {
	results := make([]harness.Result, len(cells))
	s.cellsTotal.Add(int64(len(cells)))
	s.metrics.CellsTotal.Add(uint64(len(cells)))
	if s.workers == 1 || len(cells) <= 1 {
		for i := range cells {
			results[i] = s.runCell(cells[i])
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < min(s.workers, len(cells)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = s.runCell(cells[i])
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runCell executes one cell through the cache (if any) and updates
// progress accounting.
func (s *Scheduler) runCell(c Cell) harness.Result {
	var res harness.Result
	if s.cache == nil {
		res = c.Run()
	} else {
		res, _ = s.cache.GetOrRun(c.Key, c.Run)
	}
	done := s.cellsDone.Add(1)
	s.metrics.CellsDone.Inc()
	if s.log != nil {
		st := s.cacheStats()
		s.log("sched: cells %d/%d done (cache: %d mem + %d disk hits, %d misses)",
			done, s.cellsTotal.Load(), st.MemHits, st.DiskHits, st.Misses)
	}
	return res
}

// cacheStats returns the cache's counters, or zeros without a cache.
func (s *Scheduler) cacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.Stats()
}
