package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"artmem/internal/harness"
	"artmem/internal/workloads"
)

// Key builds the canonical identity string for a standard cell: one
// workload replayed under one policy at one harness configuration and
// one profile scale. policy must encode the full policy identity —
// name, construction parameters, and pretraining provenance for
// learned policies (see exp's policy specs). extra disambiguates cells
// whose setup is not fully captured by cfg (for example Figure 16a's
// fixed-fast-tier byte split, which derives Config.Ratio from the
// workload footprint inside the cell); it is "" for ordinary cells.
//
// The encoding leans on %+v of the component structs on purpose: a new
// field added to workloads.Profile or harness.Config automatically
// changes every key, so the cache can never serve results computed
// before the field existed.
func Key(workload string, profile workloads.Profile, policy string, cfg harness.Config, extra string) string {
	return fmt.Sprintf("v1|w=%s|prof=%+v|pol=%s|cfg=%s|x=%s",
		workload, profile, policy, cfg.Canonical(), extra)
}

// hashKey maps a canonical key to the fixed-width hex digest used for
// cache map lookups and disk file names.
func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])[:32]
}
