package sched

import "artmem/internal/telemetry"

// Metrics are the scheduler's telemetry counters. The zero value (and
// every nil counter inside it) is a valid no-op, so the scheduler and
// cache update metrics unconditionally; wiring to a live registry is
// opt-in via NewMetrics.
type Metrics struct {
	// CellsTotal counts cells declared across all grids.
	CellsTotal *telemetry.Counter
	// CellsDone counts cells completed (computed or served from cache).
	CellsDone *telemetry.Counter
	// MemHits counts cache requests served from memory (including
	// coalesced in-flight duplicates).
	MemHits *telemetry.Counter
	// DiskHits counts cache requests served from the persisted layer.
	DiskHits *telemetry.Counter
	// Misses counts cache requests that ran the cell.
	Misses *telemetry.Counter
}

// NewMetrics registers the scheduler series on r and returns the
// bundle. A nil registry yields no-op metrics.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		CellsTotal: r.Counter("artmem_sched_cells_total",
			"experiment cells declared across all grids"),
		CellsDone: r.Counter("artmem_sched_cells_done_total",
			"experiment cells completed (computed or cached)"),
		MemHits: r.Counter("artmem_sched_cache_hits_total",
			"run-cache hits served from memory", telemetry.L("layer", "mem")),
		DiskHits: r.Counter("artmem_sched_cache_hits_total",
			"run-cache hits served from disk", telemetry.L("layer", "disk")),
		Misses: r.Counter("artmem_sched_cache_misses_total",
			"run-cache misses (cell computed)"),
	}
}
