package sched

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"artmem/internal/faultinject"
	"artmem/internal/harness"
	"artmem/internal/telemetry"
	"artmem/internal/workloads"
)

// fakeCell returns a cell whose result encodes i, counting executions.
func fakeCell(i int, runs *atomic.Int64) Cell {
	return Cell{
		Key: fmt.Sprintf("cell-%d", i),
		Run: func() harness.Result {
			runs.Add(1)
			return harness.Result{Workload: fmt.Sprintf("w%d", i), ExecNs: int64(i)}
		},
	}
}

func TestRunGridWritesResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		var runs atomic.Int64
		cells := make([]Cell, 50)
		for i := range cells {
			cells[i] = fakeCell(i, &runs)
		}
		s := New(Config{Workers: workers})
		res := s.RunGrid(cells)
		if len(res) != len(cells) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res), len(cells))
		}
		for i, r := range res {
			if r.ExecNs != int64(i) {
				t.Errorf("workers=%d: results[%d].ExecNs = %d, want %d", workers, i, r.ExecNs, i)
			}
		}
		if runs.Load() != int64(len(cells)) {
			t.Errorf("workers=%d: %d executions, want %d (no cache configured)", workers, runs.Load(), len(cells))
		}
	}
}

func TestSchedulerDefaultsWorkersToGOMAXPROCS(t *testing.T) {
	if w := New(Config{}).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := New(Config{Workers: 3}).Workers(); w != 3 {
		t.Fatalf("explicit workers = %d, want 3", w)
	}
}

func TestCacheHitReturnsIdenticalResult(t *testing.T) {
	c := NewCache("")
	var runs atomic.Int64
	run := func() harness.Result {
		runs.Add(1)
		return harness.Result{Workload: "w", ExecNs: 42, DRAMRatio: 0.75}
	}
	r1, hit1 := c.GetOrRun("k", run)
	r2, hit2 := c.GetOrRun("k", run)
	if hit1 || !hit2 {
		t.Fatalf("hit flags = %v, %v; want false, true", hit1, hit2)
	}
	if runs.Load() != 1 {
		t.Fatalf("run executed %d times, want 1", runs.Load())
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("cached result differs: %+v vs %+v", r1, r2)
	}
	st := c.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.DiskHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestCacheCoalescesConcurrentRequests(t *testing.T) {
	c := NewCache("")
	var runs atomic.Int64
	gate := make(chan struct{})
	run := func() harness.Result {
		<-gate
		runs.Add(1)
		return harness.Result{ExecNs: 7}
	}
	results := make(chan harness.Result, 8)
	for i := 0; i < 8; i++ {
		go func() {
			r, _ := c.GetOrRun("same", run)
			results <- r
		}()
	}
	close(gate)
	for i := 0; i < 8; i++ {
		if r := <-results; r.ExecNs != 7 {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
	if runs.Load() != 1 {
		t.Fatalf("run executed %d times for one key, want 1", runs.Load())
	}
}

func TestDiskCachePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	run := func() harness.Result {
		runs.Add(1)
		return harness.Result{Workload: "CC", Policy: "ArtMem",
			Ratio: harness.Ratio{Fast: 1, Slow: 4}, ExecNs: 1234,
			Migrations: 9, DRAMRatio: 0.5}
	}
	c1 := NewCache(dir)
	want, _ := c1.GetOrRun("k", run)

	c2 := NewCache(dir) // fresh instance, same directory
	got, hit := c2.GetOrRun("k", run)
	if !hit {
		t.Fatal("second instance missed the persisted entry")
	}
	if runs.Load() != 1 {
		t.Fatalf("run executed %d times, want 1", runs.Load())
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("persisted result differs:\nwant %+v\ngot  %+v", want, got)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want one disk hit", st)
	}
}

func TestDiskCacheRejectsCorruptAndMismatchedEntries(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(dir)
	c.GetOrRun("k", func() harness.Result { return harness.Result{ExecNs: 1} })

	// Corrupt the file: a fresh instance must recompute, not fail.
	path := c.path(hashKey("k"))
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	c2 := NewCache(dir)
	r, hit := c2.GetOrRun("k", func() harness.Result { runs.Add(1); return harness.Result{ExecNs: 2} })
	if hit || runs.Load() != 1 || r.ExecNs != 2 {
		t.Fatalf("corrupt entry not recomputed: hit=%v runs=%d res=%+v", hit, runs.Load(), r)
	}

	// A stored key that does not match the request (hash collision
	// stand-in) must also degrade to a recompute.
	other := NewCache(dir)
	if err := os.Rename(other.path(hashKey("k")), other.path(hashKey("different"))); err != nil {
		t.Fatal(err)
	}
	_, hit = other.GetOrRun("different", func() harness.Result { return harness.Result{ExecNs: 3} })
	if hit {
		t.Fatal("key-mismatched entry served as a hit")
	}
}

func TestKeyChangesOnEveryConfigField(t *testing.T) {
	prof := workloads.QuickProfile()
	base := Key("CC", prof, "ArtMem", harness.Config{}, "")
	cfgType := reflect.TypeOf(harness.Config{})
	for i := 0; i < cfgType.NumField(); i++ {
		cfg := harness.Config{}
		poke(reflect.ValueOf(&cfg).Elem().Field(i))
		if got := Key("CC", prof, "ArtMem", cfg, ""); got == base {
			t.Errorf("mutating Config.%s did not change the key", cfgType.Field(i).Name)
		}
	}
	// The non-config identity components must matter too.
	if Key("SSSP", prof, "ArtMem", harness.Config{}, "") == base {
		t.Error("workload name not in key")
	}
	if Key("CC", workloads.DefaultProfile(), "ArtMem", harness.Config{}, "") == base {
		t.Error("profile not in key")
	}
	if Key("CC", prof, "TPP", harness.Config{}, "") == base {
		t.Error("policy identity not in key")
	}
	if Key("CC", prof, "ArtMem", harness.Config{}, "fixedFast=1") == base {
		t.Error("extra component not in key")
	}
}

// poke sets a field to a non-zero value, whatever its type.
func poke(v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(7)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(7.5)
	case reflect.String:
		v.SetString("x")
	case reflect.Pointer:
		p := reflect.New(v.Type().Elem())
		if p.Elem().Kind() == reflect.Struct && p.Elem().NumField() > 0 {
			poke(p.Elem().Field(0))
		}
		v.Set(p)
	case reflect.Struct:
		if v.NumField() > 0 {
			poke(v.Field(0))
		}
	case reflect.Slice:
		e := reflect.New(v.Type().Elem()).Elem()
		poke(e)
		v.Set(reflect.Append(v, e))
	default:
		panic(fmt.Sprintf("poke: unhandled kind %s", v.Kind()))
	}
}

func TestKeyFlattensFaultConfig(t *testing.T) {
	prof := workloads.QuickProfile()
	fc := faultinject.Config{Seed: 3, MigrationFailProb: 0.5}
	a := Key("CC", prof, "p", harness.Config{Faults: &fc}, "")
	fc2 := fc // distinct pointer, equal value
	b := Key("CC", prof, "p", harness.Config{Faults: &fc2}, "")
	if a != b {
		t.Error("equal fault configs behind distinct pointers produced different keys")
	}
	fc2.MigrationFailProb = 0.9
	if c := Key("CC", prof, "p", harness.Config{Faults: &fc2}, ""); c == a {
		t.Error("fault config contents not in key")
	}
}

func TestSourceStamp(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package a\n")
	write("a_test.go", "package a\n")
	s1, err := SourceStamp(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Test files are excluded: changing one keeps the stamp.
	write("a_test.go", "package a // changed\n")
	s2, err := SourceStamp(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("stamp changed on a _test.go edit")
	}
	// Source files are included: any edit cold-starts the cache.
	write("a.go", "package a // changed\n")
	s3, err := SourceStamp(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Error("stamp unchanged after a source edit")
	}
	if _, err := SourceStamp(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing root accepted")
	}
}

func TestMetricsAndProgress(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	c := NewCache("")
	s := New(Config{Workers: 2, Cache: c, Metrics: m})
	cells := []Cell{
		{Key: "a", Run: func() harness.Result { return harness.Result{ExecNs: 1} }},
		{Key: "a", Run: func() harness.Result { return harness.Result{ExecNs: 1} }},
		{Key: "b", Run: func() harness.Result { return harness.Result{ExecNs: 2} }},
	}
	s.RunGrid(cells)
	done, total := s.Progress()
	if done != 3 || total != 3 {
		t.Fatalf("progress = %d/%d, want 3/3", done, total)
	}
	if got := m.CellsDone.Value(); got != 3 {
		t.Errorf("cells done metric = %d", got)
	}
	if got := m.Misses.Value(); got != 2 {
		t.Errorf("miss metric = %d, want 2 (keys a, b)", got)
	}
	if got := m.MemHits.Value(); got != 1 {
		t.Errorf("mem hit metric = %d, want 1 (repeated key a)", got)
	}
}

// TestNilMetricsSafe ensures an unwired scheduler/cache never panics.
func TestNilMetricsSafe(t *testing.T) {
	s := New(Config{Workers: 1, Cache: NewCache("")})
	s.RunGrid([]Cell{{Key: "k", Run: func() harness.Result { return harness.Result{} }}})
}
