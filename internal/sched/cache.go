package sched

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"artmem/internal/harness"
)

// Cache memoizes harness results by canonical cell key. The in-memory
// layer deduplicates within a process (including concurrent requests
// for the same key — the second caller blocks until the first finishes
// rather than recomputing); the optional disk layer persists results
// across invocations.
//
// Results handed out by the cache are shared: callers must treat a
// harness.Result obtained here — including its series slices — as
// immutable.
type Cache struct {
	dir string // "" disables the disk layer

	mu  sync.Mutex
	mem map[string]*cacheEntry

	memHits  atomic.Uint64
	diskHits atomic.Uint64
	misses   atomic.Uint64

	metrics *Metrics
}

// cacheEntry is one in-flight or completed computation. done is closed
// once res is valid.
type cacheEntry struct {
	done chan struct{}
	res  harness.Result
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	// MemHits counts requests served from memory, including requests
	// that waited on an identical in-flight computation.
	MemHits uint64
	// DiskHits counts requests served by reading a persisted result.
	DiskHits uint64
	// Misses counts requests that had to run the cell.
	Misses uint64
}

// Hits returns the total hits across both layers.
func (s CacheStats) Hits() uint64 { return s.MemHits + s.DiskHits }

// HitRate returns hits/(hits+misses) in [0,1], or 0 before any request.
func (s CacheStats) HitRate() float64 {
	total := s.Hits() + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// NewCache returns a cache. dir, when non-empty, enables the disk
// layer rooted there (created on first store); callers key the
// directory by a source stamp of the simulator packages — see
// SourceStamp — so code changes can never replay stale results. An
// empty dir keeps the cache memory-only.
func NewCache(dir string) *Cache {
	return &Cache{dir: dir, mem: make(map[string]*cacheEntry), metrics: &Metrics{}}
}

// SetMetrics attaches telemetry counters (nil detaches). Called by
// sched.New so a scheduler's cache shares its metrics bundle.
func (c *Cache) SetMetrics(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	c.metrics = m
}

// Stats returns a snapshot of the hit/miss counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		MemHits:  c.memHits.Load(),
		DiskHits: c.diskHits.Load(),
		Misses:   c.misses.Load(),
	}
}

// GetOrRun returns the memoized result for key, computing it with run
// on a miss. hit reports whether the result came from either cache
// layer (or from coalescing onto an identical in-flight computation).
func (c *Cache) GetOrRun(key string, run func() harness.Result) (res harness.Result, hit bool) {
	h := hashKey(key)
	c.mu.Lock()
	if e, ok := c.mem[h]; ok {
		c.mu.Unlock()
		<-e.done
		c.memHits.Add(1)
		c.metrics.MemHits.Inc()
		return e.res, true
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.mem[h] = e
	c.mu.Unlock()

	// This goroutine owns the computation; release waiters even if run
	// panics (the panic still propagates and ends the process, but
	// waiters must not deadlock first).
	defer close(e.done)

	if r, ok := c.loadDisk(h, key); ok {
		e.res = r
		c.diskHits.Add(1)
		c.metrics.DiskHits.Inc()
		return e.res, true
	}
	c.misses.Add(1)
	c.metrics.Misses.Inc()
	e.res = run()
	c.storeDisk(h, key, e.res)
	return e.res, false
}

// ---- disk layer ------------------------------------------------------------

// diskEntry is the persisted form of one cached result. The full
// canonical key is stored alongside the result and verified on load,
// so a (vanishingly unlikely) digest collision or a hand-edited file
// degrades to a recompute, never a wrong result.
type diskEntry struct {
	Key    string     `json:"key"`
	Result diskResult `json:"result"`
}

// diskResult mirrors harness.Result with the error field flattened to
// a string: error values do not round-trip through encoding/json.
type diskResult struct {
	harness.Result
	InvariantErr string `json:"invariant_err,omitempty"`
}

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

// loadDisk reads a persisted result, returning ok=false on any miss,
// decode error, or key mismatch.
func (c *Cache) loadDisk(hash, key string) (harness.Result, bool) {
	if c.dir == "" {
		return harness.Result{}, false
	}
	data, err := os.ReadFile(c.path(hash))
	if err != nil {
		return harness.Result{}, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key {
		return harness.Result{}, false
	}
	res := e.Result.Result
	if e.Result.InvariantErr != "" {
		res.InvariantErr = errors.New(e.Result.InvariantErr)
	}
	return res, true
}

// storeDisk persists a result atomically (temp file + rename) so a
// crashed run can never leave a truncated entry behind. Failures are
// silent: the disk layer is an accelerator, not a store of record.
func (c *Cache) storeDisk(hash, key string, res harness.Result) {
	if c.dir == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	dr := diskResult{Result: res}
	if res.InvariantErr != nil {
		dr.InvariantErr = res.InvariantErr.Error()
		dr.Result.InvariantErr = nil
	}
	data, err := json.Marshal(diskEntry{Key: key, Result: dr})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, hash+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(hash)); err != nil {
		os.Remove(tmp.Name())
	}
}
