package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// SourceStamp hashes every non-test .go file under the given roots
// (path and content) into a short hex stamp. The disk cache directory
// is keyed by this stamp: any edit to the simulator source — committed
// or not, unlike a git sha — yields a new stamp and therefore a cold
// cache, which is the invalidation rule (DESIGN.md §7). Roots that do
// not exist are an error so callers fall back to a memory-only cache
// rather than sharing a stamp across different trees.
func SourceStamp(roots ...string) (string, error) {
	h := sha256.New()
	for _, root := range roots {
		if _, err := os.Stat(root); err != nil {
			return "", fmt.Errorf("sched: source stamp root: %w", err)
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || filepath.Ext(path) != ".go" || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			fmt.Fprintf(h, "%s\n", filepath.ToSlash(path))
			h.Write(data)
			return nil
		})
		if err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:12], nil
}
