package tenancy

import (
	"errors"
	"testing"

	"artmem/internal/faultinject"
	"artmem/internal/memsim"
)

func quotaSumOK(t *testing.T, p *Plane) {
	t.Helper()
	if p.Arbiter().Mode() == ModeOff {
		return
	}
	fastCap := p.Machine().CapacityPages(memsim.Fast)
	got := p.Arbiter().QuotaSum()
	want := fastCap
	if n := p.ActiveTenants(); n > fastCap {
		want = n
	}
	if n := p.ActiveTenants(); n == 0 {
		return
	}
	if got < want {
		t.Fatalf("active quota sum = %d, want >= %d (fast capacity must not be stranded)", got, want)
	}
	if p.ActiveTenants() <= fastCap && got != fastCap {
		t.Fatalf("active quota sum = %d, want exactly %d", got, fastCap)
	}
}

func TestRegisterDeregisterRecyclesSlots(t *testing.T) {
	m := testMachine()
	p := NewDynamicPlane(m, 3, ArbiterConfig{Mode: ModeStatic})

	a, err := p.Register(Tenant{Name: "a"})
	if err != nil || a != 0 {
		t.Fatalf("Register a = (%d, %v), want (0, nil)", a, err)
	}
	b, err := p.Register(Tenant{Name: "b", Weight: 3})
	if err != nil || b != 1 {
		t.Fatalf("Register b = (%d, %v), want (1, nil)", b, err)
	}
	quotaSumOK(t, p)
	touchAs(m, memsim.TenantID(a), 0, 6)
	touchAs(m, memsim.TenantID(b), 20, 6)

	// Drain tenant a: its pages leave the machine, its slot empties,
	// the survivor's quota absorbs the whole fast tier.
	if err := p.Deregister(a, -1); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if got := p.State(a); got != StateEmpty {
		t.Fatalf("state after deregister = %v, want empty", got)
	}
	if got := m.TenantUsedPages(memsim.TenantID(a), memsim.Fast) +
		m.TenantUsedPages(memsim.TenantID(a), memsim.Slow); got != 0 {
		t.Fatalf("departed tenant still owns %d pages", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	quotaSumOK(t, p)
	if got := p.Arbiter().Quota(b); got != 16 {
		t.Fatalf("survivor quota = %d, want 16 (whole fast tier)", got)
	}

	// The slot is reusable, and the recycled tenant starts clean.
	c, err := p.Register(Tenant{Name: "c", Class: ClassLatency})
	if err != nil || c != a {
		t.Fatalf("Register c = (%d, %v), want recycled slot %d", c, err, a)
	}
	if got := m.TenantCounters(memsim.TenantID(c)); got != (memsim.TenantCounters{}) {
		t.Fatalf("recycled slot counters = %+v, want zero", got)
	}
	if got := p.Tenant(c).Class; got != ClassLatency {
		t.Fatalf("recycled slot class = %v, want latency", got)
	}
	quotaSumOK(t, p)
	s := p.Stats()
	if s.Registrations != 3 || s.Deregistrations != 1 || s.PagesDrained != 6 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDeregisterHandoffRechargesPages(t *testing.T) {
	m := testMachine()
	p := NewDynamicPlane(m, 2, ArbiterConfig{Mode: ModeStatic})
	a, _ := p.Register(Tenant{Name: "a"})
	b, _ := p.Register(Tenant{Name: "b"})
	touchAs(m, memsim.TenantID(a), 0, 5)
	touchAs(m, memsim.TenantID(b), 30, 3)

	var inherited []memsim.PageID
	p.View(b).SetAllocHook(func(pg memsim.PageID, _ memsim.TierID) {
		inherited = append(inherited, pg)
	})
	if err := p.Deregister(a, b); err != nil {
		t.Fatalf("Deregister with handoff: %v", err)
	}
	if got := m.TenantUsedPages(memsim.TenantID(b), memsim.Fast) +
		m.TenantUsedPages(memsim.TenantID(b), memsim.Slow); got != 8 {
		t.Fatalf("inheritor RSS = %d, want 8", got)
	}
	if len(inherited) != 5 {
		t.Fatalf("inheritor alloc hook saw %d pages, want 5", len(inherited))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().PagesHandedOff; got != 5 {
		t.Fatalf("PagesHandedOff = %d, want 5", got)
	}
	// The machine total never changed: handoff recharges, not frees.
	if got := m.Counters().Freed; got != 0 {
		t.Fatalf("Freed = %d, want 0 for pure handoff", got)
	}
}

func TestReclaimInterruptionRollsBackAndRetries(t *testing.T) {
	m := testMachine()
	inj := faultinject.New(faultinject.Config{
		Seed: 5,
		// Interrupt every reclamation step inside the window; the
		// machine clock is tiny here, so now=0 is inside it.
		ReclaimInterruptWindows: []faultinject.Window{{StartNs: 0, EndNs: 1 << 40}},
	})
	m.SetFaultInjector(inj)
	p := NewDynamicPlane(m, 2, ArbiterConfig{Mode: ModeStatic})
	a, _ := p.Register(Tenant{Name: "a"})
	b, _ := p.Register(Tenant{Name: "b"})
	touchAs(m, memsim.TenantID(a), 0, 6)
	preRSS := [2]int{
		m.TenantUsedPages(memsim.TenantID(a), memsim.Fast),
		m.TenantUsedPages(memsim.TenantID(a), memsim.Slow),
	}

	err := p.Deregister(a, -1)
	if !errors.Is(err, ErrReclaimInterrupted) {
		t.Fatalf("Deregister under interrupt = %v, want ErrReclaimInterrupted", err)
	}
	if got := p.State(a); got != StateDraining {
		t.Fatalf("state after interrupt = %v, want draining", got)
	}
	// Rollback must restore the accounting exactly.
	if got := [2]int{
		m.TenantUsedPages(memsim.TenantID(a), memsim.Fast),
		m.TenantUsedPages(memsim.TenantID(a), memsim.Slow),
	}; got != preRSS {
		t.Fatalf("RSS after rollback = %v, want %v", got, preRSS)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The draining tenant is out of the arbitrated set: promotions
	// denied, survivor holds the whole quota.
	if err := p.View(a).MovePage(0, memsim.Fast); !errors.Is(err, ErrAdmissionDenied) {
		t.Fatalf("draining promotion = %v, want ErrAdmissionDenied", err)
	}
	if got := p.Arbiter().Quota(b); got != 16 {
		t.Fatalf("survivor quota during drain = %d, want 16", got)
	}
	// Same with handoff: interruption mid-transfer rolls back too.
	if err := p.Deregister(a, b); !errors.Is(err, ErrReclaimInterrupted) {
		t.Fatalf("handoff under interrupt = %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().ReclaimRollbacks; got != 2 {
		t.Fatalf("rollbacks = %d, want 2", got)
	}

	// Clear the fault and retry through RetryDrains: the drain commits.
	m.SetFaultInjector(nil)
	if left := p.RetryDrains(); left != 0 {
		t.Fatalf("RetryDrains left %d draining", left)
	}
	if got := p.State(a); got != StateEmpty {
		t.Fatalf("state after retry = %v, want empty", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationBackpressure(t *testing.T) {
	m := testMachine()
	p := NewDynamicPlane(m, 8, ArbiterConfig{Mode: ModeStatic, MaxArrivalsPerPeriod: 2})
	// Pre-period registrations are exempt (one token per slot).
	for i := 0; i < 3; i++ {
		if _, err := p.Register(Tenant{}); err != nil {
			t.Fatalf("initial registration %d: %v", i, err)
		}
	}
	p.BeginPeriod()
	if _, err := p.Register(Tenant{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(Tenant{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(Tenant{}); !errors.Is(err, ErrRegistrationThrottled) {
		t.Fatalf("third arrival this period = %v, want ErrRegistrationThrottled", err)
	}
	p.BeginPeriod()
	if _, err := p.Register(Tenant{}); err != nil {
		t.Fatalf("arrival after refill: %v", err)
	}
	if got := p.Stats().RegistrationsThrottled; got != 1 {
		t.Fatalf("throttled = %d, want 1", got)
	}
}

func TestRegisterFullPlane(t *testing.T) {
	m := testMachine()
	p := NewDynamicPlane(m, 2, ArbiterConfig{})
	p.Register(Tenant{})
	p.Register(Tenant{})
	if _, err := p.Register(Tenant{}); !errors.Is(err, ErrPlaneFull) {
		t.Fatalf("register on full plane = %v, want ErrPlaneFull", err)
	}
	if got := p.Stats().RegistrationsDenied; got != 1 {
		t.Fatalf("denied = %d, want 1", got)
	}
}

func TestLatencyClassPreemptsBatchPool(t *testing.T) {
	m := testMachine()
	p := NewPlane(m, []Tenant{
		{Name: "lat", Class: ClassLatency},
		{Name: "bat", Class: ClassBatch},
	}, ArbiterConfig{
		Mode:                    ModeStatic,
		Admission:               true,
		BandwidthPagesPerPeriod: 4, // 2 each: latency budget 2, batch pool 2
	})
	// Fill fast from the batch tenant, then give both slow pages.
	touchAs(m, 1, 0, 16)
	touchAs(m, 0, 20, 8)
	touchAs(m, 1, 40, 4)
	// Open physical headroom.
	v1 := p.View(1)
	for pg := 0; pg < 6; pg++ {
		if err := v1.MovePage(memsim.PageID(pg), memsim.Slow); err != nil {
			t.Fatalf("demotion: %v", err)
		}
	}
	p.BeginPeriod()

	// Latency tenant promotes 4 pages: 2 on its own budget, 2 preempted
	// from the batch pool.
	v0 := p.View(0)
	for i := 0; i < 4; i++ {
		if err := v0.MovePage(memsim.PageID(20+i), memsim.Fast); err != nil {
			t.Fatalf("latency promotion %d: %v", i, err)
		}
	}
	if got := p.Arbiter().Preemptions(0); got != 2 {
		t.Fatalf("preemptions = %d, want 2", got)
	}
	// The batch tenant's pool is gone: its promotion degrades to a
	// denial (graceful ErrTierFull path), not an error class of its own.
	err := v1.MovePage(40, memsim.Fast)
	if !errors.Is(err, ErrAdmissionDenied) || !errors.Is(err, memsim.ErrTierFull) {
		t.Fatalf("preempted batch promotion = %v, want ErrAdmissionDenied wrapping ErrTierFull", err)
	}
	// A 5th latency promotion is denied too: nothing left to preempt.
	if err := v0.MovePage(24, memsim.Fast); !errors.Is(err, ErrAdmissionDenied) {
		t.Fatalf("latency promotion past all budgets = %v, want denial", err)
	}
	// Next period restores the batch tenant's service: no starvation.
	p.BeginPeriod()
	if err := v1.MovePage(40, memsim.Fast); err != nil {
		t.Fatalf("batch promotion after refill: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyQuotaBoostSkewsSplit(t *testing.T) {
	m := testMachine()
	p := NewDynamicPlane(m, 2, ArbiterConfig{Mode: ModeStatic, LatencyQuotaBoost: 3})
	b, _ := p.Register(Tenant{Name: "batch"})
	l, _ := p.Register(Tenant{Name: "lat", Class: ClassLatency})
	// 16 fast pages at effective weights 1:3 split 4/12.
	if got := p.Arbiter().Quota(b); got != 4 {
		t.Fatalf("batch quota = %d, want 4", got)
	}
	if got := p.Arbiter().Quota(l); got != 12 {
		t.Fatalf("latency quota = %d, want 12", got)
	}
	quotaSumOK(t, p)
	// The latency tenant's promotion budget is boosted the same way.
	// Membership changes keep the effective-weight sum consistent.
	if err := p.Deregister(l, -1); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if got := p.Arbiter().Quota(b); got != 16 {
		t.Fatalf("survivor quota = %d, want the whole fast tier", got)
	}
	quotaSumOK(t, p)

	// Default boost (0 -> 1) leaves the classic equal split untouched.
	p2 := NewDynamicPlane(testMachine(), 2, ArbiterConfig{Mode: ModeStatic})
	b2, _ := p2.Register(Tenant{Name: "batch"})
	l2, _ := p2.Register(Tenant{Name: "lat", Class: ClassLatency})
	if qb, ql := p2.Arbiter().Quota(b2), p2.Arbiter().Quota(l2); qb != ql {
		t.Fatalf("unboosted split %d/%d, want equal", qb, ql)
	}
}
