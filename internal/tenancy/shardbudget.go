package tenancy

// Cross-shard budget arbitration for the sharded machine
// (memsim.ShardedMachine): the control plane hands each shard a
// per-period capacity-borrow budget, and this file decides the split.
// It is the sharded analogue of the arbiter's TierBPF-style promotion
// admission control — budgets meter how much fast-tier capacity a
// shard may pull toward itself per decision period, so a single hot
// shard cannot strip the others bare in one burst.

// SplitBudget divides total budget units across shards proportionally
// to demand, deterministically. The split uses the largest-remainder
// method: each shard gets floor(total*demand/sum) and the leftover
// units go to the largest fractional remainders, ties broken toward
// the lowest shard index — so equal inputs always produce equal
// outputs, which keeps lockstep experiments byte-identical at any
// worker count. Zero aggregate demand splits evenly (remainder to low
// shards); a non-positive total returns all zeros. The result always
// sums to max(total, 0).
func SplitBudget(total int, demand []uint64) []int {
	out := make([]int, len(demand))
	if total <= 0 || len(demand) == 0 {
		return out
	}
	var sum uint64
	for _, d := range demand {
		sum += d
	}
	if sum == 0 {
		for i := range out {
			out[i] = total / len(demand)
			if i < total%len(demand) {
				out[i]++
			}
		}
		return out
	}
	assigned := 0
	rem := make([]uint64, len(demand))
	for i, d := range demand {
		q := uint64(total) * d
		out[i] = int(q / sum)
		rem[i] = q % sum
		assigned += out[i]
	}
	for left := total - assigned; left > 0; left-- {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		out[best]++
		rem[best] = 0
	}
	return out
}
