package tenancy

import "testing"

func sumInts(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// TestSplitBudgetConserves pins the conservation law: the split always
// sums exactly to the total, for proportional, even, and degenerate
// inputs alike.
func TestSplitBudgetConserves(t *testing.T) {
	cases := []struct {
		total  int
		demand []uint64
	}{
		{100, []uint64{1, 2, 3, 4}},
		{7, []uint64{0, 0, 0}},
		{7, []uint64{5, 0, 5}},
		{1, []uint64{1000, 1}},
		{64, []uint64{3, 3, 3, 3, 3, 3, 3, 3}},
		{5, []uint64{1, 1, 1, 1, 1, 1, 1, 1}},
	}
	for _, c := range cases {
		got := SplitBudget(c.total, c.demand)
		if sumInts(got) != c.total {
			t.Errorf("SplitBudget(%d, %v) = %v, sums to %d", c.total, c.demand, got, sumInts(got))
		}
	}
	if got := SplitBudget(0, []uint64{1, 2}); sumInts(got) != 0 {
		t.Errorf("zero total split %v, want zeros", got)
	}
	if got := SplitBudget(-3, []uint64{1, 2}); sumInts(got) != 0 {
		t.Errorf("negative total split %v, want zeros", got)
	}
	if got := SplitBudget(5, nil); len(got) != 0 {
		t.Errorf("empty demand split %v, want empty", got)
	}
}

// TestSplitBudgetProportional checks the proportionality and the
// deterministic tie-break toward low indices.
func TestSplitBudgetProportional(t *testing.T) {
	got := SplitBudget(100, []uint64{1, 3})
	if got[0] != 25 || got[1] != 75 {
		t.Errorf("1:3 split of 100 = %v, want [25 75]", got)
	}
	// Even demand, indivisible total: remainder to the lowest indices.
	got = SplitBudget(5, []uint64{2, 2, 2})
	if got[0] != 2 || got[1] != 2 || got[2] != 1 {
		t.Errorf("even split of 5 = %v, want [2 2 1]", got)
	}
	// Zero-demand shards get nothing while any shard has demand.
	got = SplitBudget(10, []uint64{0, 4, 0, 6})
	if got[0] != 0 || got[2] != 0 || got[1] != 4 || got[3] != 6 {
		t.Errorf("split with idle shards = %v, want [0 4 0 6]", got)
	}
	// Determinism: identical inputs, identical outputs.
	a := SplitBudget(17, []uint64{5, 7, 11})
	for i := 0; i < 10; i++ {
		b := SplitBudget(17, []uint64{5, 7, 11})
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("nondeterministic split: %v vs %v", a, b)
			}
		}
	}
}
