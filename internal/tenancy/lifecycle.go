package tenancy

import (
	"errors"
	"fmt"

	"artmem/internal/memsim"
)

// SLOClass is a tenant's service-level class. The arbiter's admission
// control treats the classes asymmetrically: latency tenants may
// preempt the batch tenants' pooled promotion budget, batch tenants
// degrade gracefully (denied promotions this period) when preempted.
type SLOClass int

const (
	// ClassBatch is the default, best-effort class: throughput-
	// oriented tenants whose promotions yield to latency tenants under
	// bandwidth pressure.
	ClassBatch SLOClass = iota
	// ClassLatency marks a latency-SLO tenant: its promotions are
	// admitted from its own budget first and from the batch pool when
	// that runs out.
	ClassLatency
)

// String returns "batch" or "latency".
func (c SLOClass) String() string {
	if c == ClassLatency {
		return "latency"
	}
	return "batch"
}

// TenantState is a slot's position in the lifecycle state machine:
//
//	Empty ──Register──▶ Active ──Deregister/Crash──▶ Draining
//	  ▲                                                 │
//	  └────────── reclamation transaction commits ──────┘
//
// A slot stays Draining when its reclamation transaction is
// interrupted (the transaction rolls back, accounting intact) and
// leaves via a successful retry.
type TenantState int

const (
	// StateEmpty is an unoccupied slot, claimable by Register.
	StateEmpty TenantState = iota
	// StateActive is a registered tenant: owns pages, holds quota,
	// receives signals, and is arbitrated.
	StateActive
	// StateDraining is a departing tenant whose pages have not yet
	// been reclaimed: out of the arbiter's active set, no signals, all
	// promotions denied; its resident set awaits drain or handoff.
	StateDraining
)

// String returns "empty", "active", or "draining".
func (s TenantState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateDraining:
		return "draining"
	default:
		return "empty"
	}
}

// LifecycleStats counts the plane's lifecycle events.
type LifecycleStats struct {
	// Registrations is the number of tenants admitted.
	Registrations uint64
	// RegistrationsDenied counts registrations refused because every
	// slot was occupied (plane full).
	RegistrationsDenied uint64
	// RegistrationsThrottled counts registrations deferred by the
	// per-period arrival backpressure.
	RegistrationsThrottled uint64
	// Deregistrations is the number of reclamations that committed
	// (graceful departures and crashes both count once, on commit).
	Deregistrations uint64
	// Crashes is the number of forced deregistrations.
	Crashes uint64
	// ReclaimRollbacks counts reclamation transactions that were
	// interrupted by a fault and rolled back.
	ReclaimRollbacks uint64
	// PagesDrained and PagesHandedOff count committed reclamation
	// pages by disposition (freed vs ownership-transferred).
	PagesDrained   uint64
	PagesHandedOff uint64
}

// ErrPlaneFull is returned by Register when every slot is occupied.
var ErrPlaneFull = errors.New("tenancy: no free tenant slot")

// ErrRegistrationThrottled is returned by Register when this period's
// arrival budget (ArbiterConfig.MaxArrivalsPerPeriod) is spent — the
// plane's backpressure signal. The registration may be retried next
// control period.
var ErrRegistrationThrottled = errors.New("tenancy: registration throttled, retry next period")

// ErrReclaimInterrupted is returned by Deregister when the reclamation
// transaction was interrupted by an injected fault and rolled back.
// The slot stays Draining; retry via Deregister or RetryDrains.
var ErrReclaimInterrupted = errors.New("tenancy: reclamation interrupted, rolled back")

// reclaimInjector is the optional churn-fault hook consulted once per
// page of a reclamation transaction. faultinject.Injector implements
// it; the memsim.FaultInjector interface is deliberately not widened
// (that would break every third-party implementer), so the plane
// type-asserts the machine's installed injector instead.
type reclaimInjector interface {
	FailReclaim(now int64) bool
}

// reclaimPageCostNs is the background CPU cost charged per page walked
// by a reclamation transaction (unmapping/recharging work an OS would
// do off the application's critical path).
const reclaimPageCostNs = 100

// Register admits a tenant into the lowest empty slot and returns the
// slot id (also its memsim.TenantID). Registration is admission-
// controlled: a full plane fails with ErrPlaneFull and a spent
// per-period arrival budget with ErrRegistrationThrottled — both
// backpressure the caller rather than degrading the tenants already
// running. The new tenant joins the arbiter's active set immediately:
// quotas are recomputed over the new membership and budgets reopened.
func (p *Plane) Register(t Tenant) (int, error) {
	slot := -1
	for i := range p.slots {
		if p.slots[i].state == StateEmpty {
			slot = i
			break
		}
	}
	if slot < 0 {
		p.stats.RegistrationsDenied++
		return -1, ErrPlaneFull
	}
	if p.arrivalTokens == 0 {
		p.stats.RegistrationsThrottled++
		return -1, ErrRegistrationThrottled
	}
	if p.arrivalTokens > 0 {
		p.arrivalTokens--
	}
	if t.Weight <= 0 {
		t.Weight = 1
	}
	if t.Name == "" {
		t.Name = fmt.Sprintf("tenant%d", slot)
	}
	p.slots[slot] = slotState{t: t, state: StateActive}
	p.insertActive(slot)
	p.arb.addTenant(slot, t.Weight, t.Class)
	p.stats.Registrations++
	return slot, nil
}

// Deregister retires the tenant in `slot`, reclaiming its resident set
// in one transaction: every owned page is either freed (handoffTo < 0)
// or recharged to the active tenant in slot handoffTo. The transaction
// is all-or-nothing — an injected reclamation fault rolls back every
// completed step and returns ErrReclaimInterrupted with the slot left
// Draining (accounting invariants hold at every step; retry later).
// On commit the slot's counters and quota are reset and the slot
// returns to Empty.
//
// The tenant leaves the arbitrated set immediately, before the
// transaction runs: its quota is redistributed, its signals stop, and
// its promotions are denied, so a tenant that crashes mid-migration-
// period cannot keep growing while it drains.
func (p *Plane) Deregister(slot, handoffTo int) error {
	if slot < 0 || slot >= p.capacity {
		return fmt.Errorf("tenancy: Deregister(%d): no such slot", slot)
	}
	s := &p.slots[slot]
	if s.state == StateEmpty {
		return fmt.Errorf("tenancy: Deregister(%d): slot is empty", slot)
	}
	if handoffTo == slot {
		return fmt.Errorf("tenancy: Deregister(%d): cannot hand off to self", slot)
	}
	if s.state == StateActive {
		s.state = StateDraining
		p.removeActive(slot)
		p.arb.removeTenant(slot)
		p.dx.clear(slot)
	}
	// A handoff target that has itself departed falls back to drain:
	// recharging pages to a non-active tenant would leak them.
	if handoffTo >= 0 && (handoffTo >= p.capacity || p.slots[handoffTo].state != StateActive) {
		handoffTo = -1
	}
	p.pendingHandoff[slot] = handoffTo
	if err := p.reclaim(slot, handoffTo); err != nil {
		return err
	}
	if err := p.m.ResetTenant(memsim.TenantID(slot)); err != nil {
		// Reclaim committed, so the tenant owns nothing; failure here
		// is a bookkeeping bug, not an input error.
		panic(fmt.Sprintf("tenancy: post-reclaim reset failed: %v", err))
	}
	s.t = Tenant{}
	s.state = StateEmpty
	p.pendingHandoff[slot] = 0
	p.stats.Deregistrations++
	return nil
}

// Crash force-deregisters the tenant in `slot` — the arrival of a
// tenant's death notice mid-migration-period. It is Deregister's
// transaction with the crash counted; like Deregister it can be
// interrupted and retried (RetryDrains uses the recorded handoff).
func (p *Plane) Crash(slot, handoffTo int) error {
	if slot >= 0 && slot < p.capacity && p.slots[slot].state == StateActive {
		p.stats.Crashes++
	}
	return p.Deregister(slot, handoffTo)
}

// RetryDrains retries the reclamation transaction of every Draining
// slot with its recorded handoff target, in slot order, and returns
// how many slots remain Draining. The control loop calls it each
// period so interrupted departures eventually complete.
func (p *Plane) RetryDrains() int {
	draining := 0
	for i := range p.slots {
		if p.slots[i].state != StateDraining {
			continue
		}
		if err := p.Deregister(i, p.pendingHandoff[i]); err != nil {
			draining++
		}
	}
	return draining
}

// reclaim walks the departing tenant's owned pages in ascending page
// order, freeing or handing off each one, journaling every step. An
// injected interruption replays the journal in reverse — TransferPage
// back or RestorePage — leaving the machine's accounting exactly as
// before the transaction. Handoff alloc-hook notifications for the
// inheriting tenant's policy fire only after the transaction commits,
// so a rollback never leaves the inheritor's LRU tracking pages it
// does not own.
func (p *Plane) reclaim(slot, handoffTo int) error {
	id := memsim.TenantID(slot)
	ri, _ := p.m.FaultInjector().(reclaimInjector)
	type op struct {
		page memsim.PageID
		tier memsim.TierID
	}
	var journal []op
	np := p.m.NumPages()
	remaining := p.m.TenantUsedPages(id, memsim.Fast) + p.m.TenantUsedPages(id, memsim.Slow)
	for page := 0; page < np && remaining > 0; page++ {
		pid := memsim.PageID(page)
		if !p.m.Allocated(pid) || p.m.OwnerOf(pid) != id {
			continue
		}
		if ri != nil && ri.FailReclaim(p.m.Now()) {
			for j := len(journal) - 1; j >= 0; j-- {
				if handoffTo >= 0 {
					if err := p.m.TransferPage(journal[j].page, id); err != nil {
						panic(fmt.Sprintf("tenancy: reclaim rollback transfer failed: %v", err))
					}
				} else if err := p.m.RestorePage(journal[j].page, journal[j].tier); err != nil {
					panic(fmt.Sprintf("tenancy: reclaim rollback restore failed: %v", err))
				}
				p.m.ChargeBackground(reclaimPageCostNs)
			}
			p.stats.ReclaimRollbacks++
			return ErrReclaimInterrupted
		}
		tier := p.m.TierOf(pid)
		if handoffTo >= 0 {
			if err := p.m.TransferPage(pid, memsim.TenantID(handoffTo)); err != nil {
				panic(fmt.Sprintf("tenancy: reclaim handoff failed: %v", err))
			}
		} else if err := p.m.FreePage(pid); err != nil {
			panic(fmt.Sprintf("tenancy: reclaim free failed: %v", err))
		}
		journal = append(journal, op{pid, tier})
		remaining--
		p.m.ChargeBackground(reclaimPageCostNs)
	}
	if handoffTo >= 0 {
		p.stats.PagesHandedOff += uint64(len(journal))
		// Enroll the inherited pages with the inheritor's policy as if
		// first-touched, so they join its LRU structures and remain
		// demotion candidates.
		if h := p.dx.allocs[handoffTo]; h != nil {
			for _, o := range journal {
				h(o.page, p.m.TierOf(o.page))
			}
		}
	} else {
		p.stats.PagesDrained += uint64(len(journal))
	}
	return nil
}

func (p *Plane) insertActive(slot int) {
	i := len(p.active)
	for i > 0 && p.active[i-1] > slot {
		i--
	}
	p.active = append(p.active, 0)
	copy(p.active[i+1:], p.active[i:])
	p.active[i] = slot
}

func (p *Plane) removeActive(slot int) {
	for i, s := range p.active {
		if s == slot {
			p.active = append(p.active[:i], p.active[i+1:]...)
			return
		}
	}
}
