// Package tenancy is the multi-tenant control plane: it turns one
// memsim.Machine into N memcg-analogue tenants, each with first-touch
// page ownership, its own RSS accounting, its own signal streams (PEBS
// samples, NUMA-hint faults, allocation events routed by a demux), and
// its own tiering policy attached through a tenant-scoped machine view
// (TenantView, a memsim.Env). A global fast-tier Arbiter partitions
// DRAM between the tenants via per-tenant page quotas — static
// weighted shares, or a dynamic mode that reallocates quota along the
// observed hit-ratio gradient — and applies TierBPF-style migration
// admission control so one tenant's promotion traffic cannot monopolize
// the shared migration bandwidth. DESIGN.md §8 documents the model.
//
// Nothing in this package is safe for concurrent use; the online
// runtime (core.MultiSystem) serializes all machine, plane, and view
// calls under one lock, and the offline runner (harness.RunTenants) is
// single-threaded by construction.
package tenancy

import (
	"fmt"

	"artmem/internal/memsim"
)

// Tenant describes one tenant of the control plane.
type Tenant struct {
	// Name labels the tenant in reports, telemetry, and endpoints.
	Name string
	// Weight is the tenant's share of the fast tier and of the
	// migration bandwidth budget, relative to the other tenants'
	// weights; 0 means 1.
	Weight int
}

// Plane owns the machine-side tenancy wiring: it enables per-tenant
// accounting on the machine, installs the signal demux, builds the
// arbiter, and hands out tenant views for policies to attach to.
type Plane struct {
	m       *memsim.Machine
	tenants []Tenant
	arb     *Arbiter
	dx      *demux
	views   []*TenantView
}

// NewPlane wires tenants onto a fresh machine (no pages allocated yet;
// memsim panics otherwise) and partitions the fast tier per acfg. The
// plane installs the machine's sampler, fault-handler, and alloc
// hooks; per-tenant policies must install theirs through the views,
// not on the machine directly.
func NewPlane(m *memsim.Machine, tenants []Tenant, acfg ArbiterConfig) *Plane {
	if len(tenants) == 0 {
		panic("tenancy: NewPlane needs at least one tenant")
	}
	ts := make([]Tenant, len(tenants))
	copy(ts, tenants)
	weights := make([]int, len(ts))
	for i := range ts {
		if ts[i].Weight <= 0 {
			ts[i].Weight = 1
		}
		if ts[i].Name == "" {
			ts[i].Name = fmt.Sprintf("tenant%d", i)
		}
		weights[i] = ts[i].Weight
	}
	m.EnableTenants(len(ts))
	dx := newDemux(m, len(ts))
	m.SetSampler(dx)
	m.SetFaultHandler(dx)
	m.SetAllocHook(dx.onAlloc)
	p := &Plane{
		m:       m,
		tenants: ts,
		arb:     newArbiter(m, weights, acfg),
		dx:      dx,
	}
	p.views = make([]*TenantView, len(ts))
	for i := range p.views {
		p.views[i] = &TenantView{plane: p, m: m, id: memsim.TenantID(i)}
	}
	return p
}

// NumTenants returns the number of tenants.
func (p *Plane) NumTenants() int { return len(p.tenants) }

// Tenant returns the i-th tenant's descriptor.
func (p *Plane) Tenant(i int) Tenant { return p.tenants[i] }

// View returns tenant i's machine view, the memsim.Env its policy
// attaches to.
func (p *Plane) View(i int) *TenantView { return p.views[i] }

// Arbiter returns the fast-tier arbiter.
func (p *Plane) Arbiter() *Arbiter { return p.arb }

// Machine returns the underlying machine.
func (p *Plane) Machine() *memsim.Machine { return p.m }

// BeginPeriod starts one control period: it refills the arbiter's
// per-tenant migration admission budgets and, in dynamic mode, runs a
// quota rebalance when due. The control loop calls it once per
// migration period, before ticking the tenant policies.
func (p *Plane) BeginPeriod() { p.arb.beginPeriod() }
