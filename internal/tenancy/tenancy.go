// Package tenancy is the multi-tenant control plane: it turns one
// memsim.Machine into N memcg-analogue tenants, each with first-touch
// page ownership, its own RSS accounting, its own signal streams (PEBS
// samples, NUMA-hint faults, allocation events routed by a demux), and
// its own tiering policy attached through a tenant-scoped machine view
// (TenantView, a memsim.Env). A global fast-tier Arbiter partitions
// DRAM between the tenants via per-tenant page quotas — static
// weighted shares, or a dynamic mode that reallocates quota along the
// observed hit-ratio gradient — and applies TierBPF-style migration
// admission control so one tenant's promotion traffic cannot monopolize
// the shared migration bandwidth. DESIGN.md §8 documents the model.
//
// The plane is built over a fixed number of *slots* (the machine's
// tenant IDs) through which tenants cycle: Register claims an empty
// slot, Deregister drains or hands off the departing tenant's pages in
// a transactional reclamation and returns the slot to the pool.
// DESIGN.md §9 documents the lifecycle state machine.
//
// Nothing in this package is safe for concurrent use; the online
// runtime (core.MultiSystem) serializes all machine, plane, and view
// calls under one lock, and the offline runner (harness.RunTenants /
// RunChurn) is single-threaded by construction.
package tenancy

import (
	"fmt"

	"artmem/internal/memsim"
)

// Tenant describes one tenant of the control plane.
type Tenant struct {
	// Name labels the tenant in reports, telemetry, and endpoints.
	Name string
	// Weight is the tenant's share of the fast tier and of the
	// migration bandwidth budget, relative to the other tenants'
	// weights; 0 means 1.
	Weight int
	// Class is the tenant's SLO class (default ClassBatch).
	Class SLOClass
}

// Plane owns the machine-side tenancy wiring: it enables per-tenant
// accounting on the machine, installs the signal demux, builds the
// arbiter, and hands out tenant views for policies to attach to.
type Plane struct {
	m        *memsim.Machine
	capacity int
	slots    []slotState
	active   []int // active slot ids, ascending
	arb      *Arbiter
	dx       *demux
	views    []*TenantView
	stats    LifecycleStats
	// arrivalTokens is the registration backpressure budget for the
	// current control period (refilled by BeginPeriod); -1 when
	// MaxArrivalsPerPeriod is 0 (unlimited).
	arrivalTokens int
	// pendingHandoff remembers each draining slot's handoff target so
	// an interrupted reclamation can be retried (RetryDrains).
	pendingHandoff []int
}

type slotState struct {
	t     Tenant
	state TenantState
}

// NewPlane wires tenants onto a fresh machine (no pages allocated yet;
// memsim panics otherwise) and partitions the fast tier per acfg. The
// plane installs the machine's sampler, fault-handler, and alloc
// hooks; per-tenant policies must install theirs through the views,
// not on the machine directly. The plane's capacity equals the initial
// tenant count — a fixed-membership plane; use NewDynamicPlane for a
// plane tenants churn through.
func NewPlane(m *memsim.Machine, tenants []Tenant, acfg ArbiterConfig) *Plane {
	if len(tenants) == 0 {
		panic("tenancy: NewPlane needs at least one tenant")
	}
	p := NewDynamicPlane(m, len(tenants), acfg)
	for _, t := range tenants {
		if _, err := p.Register(t); err != nil {
			panic(fmt.Sprintf("tenancy: NewPlane registration failed: %v", err))
		}
	}
	return p
}

// NewDynamicPlane wires an empty plane with the given slot capacity
// onto a fresh machine. Tenants join through Register and leave
// through Deregister; the machine's per-tenant arrays are sized once,
// here, so capacity is fixed for the plane's lifetime. Initial
// registrations (before the first BeginPeriod) are exempt from arrival
// backpressure: the plane starts with one arrival token per slot.
func NewDynamicPlane(m *memsim.Machine, capacity int, acfg ArbiterConfig) *Plane {
	if capacity < 1 {
		panic("tenancy: NewDynamicPlane needs capacity >= 1")
	}
	m.EnableTenants(capacity)
	dx := newDemux(m, capacity)
	m.SetSampler(dx)
	m.SetFaultHandler(dx)
	m.SetAllocHook(dx.onAlloc)
	p := &Plane{
		m:              m,
		capacity:       capacity,
		slots:          make([]slotState, capacity),
		arb:            newArbiter(m, capacity, acfg),
		dx:             dx,
		views:          make([]*TenantView, capacity),
		arrivalTokens:  capacity,
		pendingHandoff: make([]int, capacity),
	}
	for i := range p.views {
		p.views[i] = &TenantView{plane: p, m: m, id: memsim.TenantID(i)}
	}
	return p
}

// Capacity returns the plane's slot count — the maximum number of
// concurrently registered tenants.
func (p *Plane) Capacity() int { return p.capacity }

// NumTenants returns the plane's slot count. Kept as an alias of
// Capacity for fixed-membership callers that iterate every slot.
func (p *Plane) NumTenants() int { return p.capacity }

// ActiveTenants returns the number of slots in StateActive.
func (p *Plane) ActiveTenants() int { return len(p.active) }

// ActiveSlots returns the active slot ids in ascending order. The
// returned slice is the plane's own; callers must not mutate it.
func (p *Plane) ActiveSlots() []int { return p.active }

// Tenant returns slot i's tenant descriptor (the zero Tenant for an
// empty slot; draining slots keep their descriptor until reclamation
// completes).
func (p *Plane) Tenant(i int) Tenant { return p.slots[i].t }

// State returns slot i's lifecycle state.
func (p *Plane) State(i int) TenantState { return p.slots[i].state }

// View returns slot i's machine view, the memsim.Env its policy
// attaches to.
func (p *Plane) View(i int) *TenantView { return p.views[i] }

// Arbiter returns the fast-tier arbiter.
func (p *Plane) Arbiter() *Arbiter { return p.arb }

// Machine returns the underlying machine.
func (p *Plane) Machine() *memsim.Machine { return p.m }

// Stats returns a snapshot of the plane's lifecycle counters.
func (p *Plane) Stats() LifecycleStats { return p.stats }

// BeginPeriod starts one control period: it refills the registration
// backpressure tokens and the arbiter's per-tenant migration admission
// budgets and, in dynamic mode, runs a quota rebalance when due. The
// control loop calls it once per migration period, before ticking the
// tenant policies. O(active tenants).
func (p *Plane) BeginPeriod() {
	if max := p.arb.cfg.MaxArrivalsPerPeriod; max > 0 {
		p.arrivalTokens = max
	} else {
		p.arrivalTokens = -1
	}
	p.arb.beginPeriod()
}
